(* Dev-only cross-validation: encode every program the corpus can emit
   and byte-compare against the system assembler (as + objcopy). *)
module A = Augem
module Enc = Augem_jit.Encoder
module Et = Augem_machine.Etype

let tmp = Filename.temp_file "xval" ".s"
let obj = tmp ^ ".o"
let bin = tmp ^ ".bin"

let gas_bytes (asm : string) : string =
  Out_channel.with_open_text tmp (fun oc -> output_string oc asm);
  let cmd =
    Printf.sprintf
      "as %s -o %s 2>/dev/null && objcopy -O binary --only-section=.text %s %s"
      (Filename.quote tmp) (Filename.quote obj) (Filename.quote obj)
      (Filename.quote bin)
  in
  if Sys.command cmd <> 0 then failwith ("as failed on " ^ tmp);
  In_channel.with_open_bin bin In_channel.input_all

(* The encoder deliberately emits the IR's flags-neutral add/sub as
   lea (see encoder.ml); feed gas the equivalent lea text so the byte
   comparison stays meaningful for those instructions too. *)
let flags_neutral (i : Augem_machine.Insn.t) : Augem_machine.Insn.t =
  let module Insn = Augem_machine.Insn in
  let module Reg = Augem_machine.Reg in
  match i with
  | Insn.Addri (r, n) ->
      Insn.Lea (r, { Insn.base = r; index = None; disp = n })
  | Insn.Addrr (d, s) ->
      let base, index = if s = Reg.Rsp then (s, d) else (d, s) in
      Insn.Lea (d, { Insn.base; index = Some (index, Insn.S1); disp = 0 })
  | Insn.Subri (r, n) ->
      Insn.Lea (r, { Insn.base = r; index = None; disp = -n })
  | i -> i

let () =
  let total = ref 0 and bad = ref 0 in
  List.iter
    (fun arch ->
      List.iter
        (fun et ->
          List.iter
            (fun kernel ->
              let space = A.Tuner.space_for kernel in
              List.iter
                (fun (cand : A.Tuner.candidate) ->
                  match
                    A.generate ~et ~arch ~config:cand.A.Tuner.cand_config
                      ~opts:cand.A.Tuner.cand_opts kernel
                  with
                  | exception _ -> ()
                  | g ->
                      incr total;
                      let avx =
                        arch.A.Machine.Arch.simd = A.Machine.Arch.AVX
                      in
                      let asm =
                        A.assembly
                          {
                            g with
                            A.g_program =
                              {
                                g.A.g_program with
                                Augem_machine.Insn.prog_insns =
                                  List.map flags_neutral
                                    g.A.g_program
                                      .Augem_machine.Insn.prog_insns;
                              };
                          }
                      in
                      let mine =
                        (Enc.encode_program ~avx ~et g.A.g_program).Enc.enc_code
                      in
                      let theirs = gas_bytes asm in
                      if not (String.equal mine theirs) then begin
                        incr bad;
                        if !bad <= 3 then begin
                          Printf.printf "MISMATCH %s %s %s (%d vs %d bytes)\n"
                            arch.A.Machine.Arch.name (Et.name et)
                            (A.Ir.Kernels.name_to_string kernel)
                            (String.length mine) (String.length theirs);
                          (* find first differing byte *)
                          let n =
                            min (String.length mine) (String.length theirs)
                          in
                          let rec fst_diff i =
                            if i >= n then i
                            else if mine.[i] <> theirs.[i] then i
                            else fst_diff (i + 1)
                          in
                          let d = fst_diff 0 in
                          Printf.printf "  first diff at byte %d\n" d;
                          let dump s =
                            String.concat " "
                              (List.init
                                 (min 16 (String.length s - max 0 (d - 4)))
                                 (fun i ->
                                   Printf.sprintf "%02x"
                                     (Char.code s.[max 0 (d - 4) + i])))
                          in
                          Printf.printf "  mine:   %s\n" (dump mine);
                          Printf.printf "  theirs: %s\n" (dump theirs);
                          Out_channel.with_open_text "/tmp/xval_fail.s"
                            (fun oc -> output_string oc asm);
                          if !bad = 1 then begin
                            Out_channel.with_open_bin "/tmp/xval_mine.bin"
                              (fun oc -> output_string oc mine);
                            Out_channel.with_open_bin "/tmp/xval_theirs.bin"
                              (fun oc -> output_string oc theirs)
                          end
                        end
                      end)
                space)
            A.Ir.Kernels.
              [ Gemm; Gemv; Axpy; Dot; Ger; Scal; Copy; Pack_a; Pack_b ])
        [ Et.F64; Et.F32 ])
    A.Machine.Arch.extended;
  Printf.printf "xval: %d programs, %d mismatches\n" !total !bad;
  exit (if !bad = 0 then 0 else 1)
