(* Dev-only: single-kernel native debug. *)
module A = Augem
module Arch = Augem_machine.Arch
module Et = Augem_machine.Etype
module K = Augem_ir.Kernels
module Exec = Augem_sim.Exec_sim
module Enc = Augem_jit.Encoder
module Rt = Augem_jit.Runtime
module Abi = Augem_jit.Abi

let () =
  let arch = List.hd Arch.extended in
  let et = Et.F64 in
  let cand = A.Tuner.safe_baseline in
  let g =
    A.generate ~et ~arch ~config:cand.A.Tuner.cand_config
      ~opts:cand.A.Tuner.cand_opts K.Copy
  in
  let prog = g.A.g_program in
  print_string (A.assembly g);
  let n = 5 in
  let x = Array.init n (fun i -> float_of_int (i + 1)) in
  let y_native = Array.make (n + 2) 9.0 in
  let y_sim = Array.make (n + 2) 9.0 in
  ignore
    (Exec.call ~et ~fuel:1_000_000 prog
       Exec.[ Aint n; Abuf x; Abuf y_sim ]);
  let enc = Enc.encode_program ~avx:true ~et prog in
  let buf = Rt.Exec_buf.load enc.Enc.enc_code in
  Abi.call ~et buf Exec.[ Aint n; Abuf x; Abuf y_native ];
  Rt.Exec_buf.release buf;
  Array.iteri
    (fun i v -> Printf.printf "y[%d] sim=%g native=%g\n" i y_sim.(i) v)
    y_native
