(* Dev-only: exercise the native path end to end. *)
module A = Augem
module Arch = Augem_machine.Arch
module Et = Augem_machine.Etype
module K = Augem_ir.Kernels

let () =
  Printf.printf "host: %s\n%!"
    (String.concat " "
       (List.map
          (fun (n, b) -> Printf.sprintf "%s=%b" n b)
          (A.Native_check.host_features ())));
  (* every kernel x arch x et through the guarded differential check *)
  List.iter
    (fun arch ->
      List.iter
        (fun et ->
          List.iter
            (fun kernel ->
              let cand = A.Tuner.safe_baseline in
              let g =
                A.generate ~et ~arch ~config:cand.A.Tuner.cand_config
                  ~opts:cand.A.Tuner.cand_opts kernel
              in
              let st =
                A.Native_check.check ~arch ~et kernel g.A.g_program
              in
              Printf.printf "%-12s %-4s %-7s %s\n%!" arch.Arch.name
                (Et.name et)
                (K.name_to_string kernel)
                (A.Native_check.status_to_string st))
            [ K.Gemm; K.Gemv; K.Axpy; K.Dot; K.Ger; K.Scal; K.Copy;
              K.Pack_a; K.Pack_b ])
        [ Et.F64; Et.F32 ])
    Arch.extended;
  (* blocked GEMM natively *)
  List.iter
    (fun et ->
      let plan = A.Blocked.plan ~et (List.nth Arch.extended 1) in
      match A.Native_blocked.load plan with
      | A.Native_check.Unsupported m -> Printf.printf "blocked %s: skip %s\n" (Et.name et) m
      | A.Native_check.Rejected m -> Printf.printf "blocked %s: REJECT %s\n" (Et.name et) m
      | A.Native_check.Ready np ->
          (match A.Native_blocked.check np ~m:37 ~n:29 ~k:23 () with
          | Ok () -> Printf.printf "blocked %s check: ok\n%!" (Et.name et)
          | Error m -> Printf.printf "blocked %s check: FAIL %s\n%!" (Et.name et) m);
          let b = A.Native_blocked.time_gemm np ~m:256 ~n:256 ~k:256 () in
          Printf.printf "blocked %s 256^3: %.1f MFLOPS (min %.3g s over %d)\n%!"
            (Et.name et) b.A.Native_blocked.nb_mflops
            b.A.Native_blocked.nb_timing.Augem_jit.Clock.t_min_s
            b.A.Native_blocked.nb_timing.Augem_jit.Clock.t_runs;
          A.Native_blocked.release np)
    [ Et.F64; Et.F32 ]
