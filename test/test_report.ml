(* Report formatting: series tables, speedup summaries, bars. *)

module Report = Augem.Report

let series =
  [
    { Report.s_label = "AUGEM"; s_points = [ (1024, 100.); (2048, 110.) ] };
    { Report.s_label = "OTHER"; s_points = [ (1024, 80.); (2048, 90.) ] };
  ]

let test_means () =
  Alcotest.(check (option (float 1e-9))) "mean" (Some 105.0)
    (Report.series_mean (List.hd series));
  (* an empty series has no mean — not a 0. that masquerades as one *)
  Alcotest.(check (option (float 1e-9))) "empty mean" None (Report.mean []);
  Alcotest.(check (option (float 1e-9)))
    "empty series mean" None
    (Report.series_mean { Report.s_label = "EMPTY"; s_points = [] })

(* the union-of-x-values fix: series measured at disjoint sizes all get
   their rows printed (the old table took rows from the first series
   only) *)
let test_series_table_union () =
  let disjoint =
    [
      { Report.s_label = "A"; s_points = [ (512, 10.) ] };
      { Report.s_label = "B"; s_points = [ (1024, 20.); (256, 5.) ] };
    ]
  in
  let out = Fmt.str "%a" (fun fmt () ->
      Report.pp_series_table fmt ~title:"U" ~x_label:"n" disjoint) () in
  let contains needle =
    let n = String.length needle in
    let rec go i =
      i + n <= String.length out && (String.sub out i n = needle || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains needle))
    [ "256"; "512"; "1024"; "20.0"; "5.0" ];
  (* rows come out sorted: 256 before 512 before 1024 *)
  let idx needle =
    let n = String.length needle in
    let rec go i =
      if i + n > String.length out then -1
      else if String.sub out i n = needle then i
      else go (i + 1)
    in
    go 0
  in
  Alcotest.(check bool) "sorted rows" true
    (idx "256" < idx "512" && idx "512" < idx "1024")

(* empty series must not divide pp_speedups nor crash pp_bars *)
let test_empty_series_guards () =
  let with_empty =
    { Report.s_label = "EMPTY"; s_points = [] } :: series
  in
  let speedups = Fmt.str "%a" (fun fmt () ->
      Report.pp_speedups fmt ~baseline:"AUGEM" with_empty) () in
  Alcotest.(check bool) "no EMPTY speedup row" false
    (let needle = "EMPTY" in
     let n = String.length needle in
     let rec go i =
       i + n <= String.length speedups
       && (String.sub speedups i n = needle || go (i + 1))
     in
     go 0);
  let bars = Fmt.str "%a" (fun fmt () -> Report.pp_bars fmt with_empty) () in
  let lines = String.split_on_char '\n' bars |> List.filter (( <> ) "") in
  Alcotest.(check int) "one bar per series incl. empty" 3 (List.length lines)

let test_series_table () =
  let out = Fmt.str "%a" (fun fmt () ->
      Report.pp_series_table fmt ~title:"T" ~x_label:"n" series) () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true
        (let n = String.length needle in
         let rec go i =
           i + n <= String.length out
           && (String.sub out i n = needle || go (i + 1))
         in
         go 0))
    [ "== T =="; "AUGEM"; "OTHER"; "1024"; "110.0"; "80.0" ]

let test_speedups () =
  let out = Fmt.str "%a" (fun fmt () ->
      Report.pp_speedups fmt ~baseline:"AUGEM" series) () in
  (* 105 / 85 - 1 = +23.5% *)
  Alcotest.(check bool) "quotes +23.5%" true
    (let needle = "+23.5%" in
     let n = String.length needle in
     let rec go i =
       i + n <= String.length out && (String.sub out i n = needle || go (i + 1))
     in
     go 0)

let test_bars () =
  let out = Fmt.str "%a" (fun fmt () -> Report.pp_bars fmt series) () in
  let lines = String.split_on_char '\n' out |> List.filter (( <> ) "") in
  Alcotest.(check int) "one bar per series" 2 (List.length lines);
  (* the best series fills the full bar *)
  Alcotest.(check bool) "bars bounded" true
    (List.for_all (fun l -> String.length l < 120) lines)

let suite =
  [
    Alcotest.test_case "means" `Quick test_means;
    Alcotest.test_case "series table" `Quick test_series_table;
    Alcotest.test_case "series table x union" `Quick test_series_table_union;
    Alcotest.test_case "empty-series guards" `Quick test_empty_series_guards;
    Alcotest.test_case "speedup summary" `Quick test_speedups;
    Alcotest.test_case "bars" `Quick test_bars;
  ]
