(* Validator behind the @blocked-smoke alias: BENCH_full.json — the
   full-matrix blocked-DGEMM sweep the benchmark harness just emitted —
   must parse, carry the documented shape (EXPERIMENTS.md), record a
   passing differential gate for every checked shape, and show the
   blocked path at least 2x the unblocked streaming path at the
   sweep's largest size on every architecture. *)

module Json = Augem.Json

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.eprintf "blocked-smoke: FAIL %s\n" msg)
    fmt

let field ~ctx name v =
  match Json.member name v with
  | Some x -> x
  | None ->
      fail "%s: missing field %S" ctx name;
      Json.Null

let as_list ~ctx name v =
  match field ~ctx name v with
  | Json.List l ->
      if l = [] then fail "%s: field %S is empty" ctx name;
      l
  | Json.Null -> []
  | _ ->
      fail "%s: field %S is not an array" ctx name;
      []

let check_string ~ctx ?expect name v =
  match (field ~ctx name v, expect) with
  | Json.String s, Some e when s <> e ->
      fail "%s: field %S is %S, expected %S" ctx name s e
  | Json.String _, _ -> ()
  | Json.Null, _ -> ()
  | _ -> fail "%s: field %S is not a string" ctx name

let number ~ctx name v =
  match field ~ctx name v with
  | Json.Int i -> float_of_int i
  | Json.Float f -> f
  | Json.Null -> 0.
  | _ ->
      fail "%s: field %S is not a number" ctx name;
      0.

let check_series ~ctx v =
  check_string ~ctx "label" v;
  List.iter
    (fun p ->
      let ctx = ctx ^ ".points[]" in
      ignore (number ~ctx "size" p);
      ignore (number ~ctx "mflops" p))
    (as_list ~ctx "points" v)

let check_full file =
  match Json.of_file file with
  | Error msg -> fail "%s: %s" file msg
  | Ok j ->
      let ctx = Filename.basename file in
      check_string ~ctx ~expect:"full" "experiment" j;
      check_string ~ctx "title" j;
      ignore (number ~ctx "largest" j);
      let arches = as_list ~ctx "arches" j in
      if List.length arches < 2 then
        fail "%s: expected both modelled architectures" ctx;
      List.iter
        (fun a ->
          let ctx = ctx ^ ".arches[]" in
          check_string ~ctx "arch" a;
          check_string ~ctx "model" a;
          let b = field ~ctx "blocking" a in
          List.iter
            (fun d ->
              if number ~ctx:(ctx ^ ".blocking") d b < 1. then
                fail "%s: blocking %s < 1" ctx d)
            [ "mc"; "kc"; "nc" ];
          check_string ~ctx "micro_config" a;
          List.iter (check_series ~ctx:(ctx ^ ".series")) (as_list ~ctx "series" a);
          (* the paper-motivating gate: cache blocking must pay off *)
          let speedup = number ~ctx "speedup_at_largest" a in
          if speedup < 2.0 then
            fail "%s: blocked path only %.2fx the streamed path (want >= 2x)"
              ctx speedup;
          (* every differential shape ran and matched the oracle *)
          List.iter
            (fun d ->
              let ctx = ctx ^ ".differential[]" in
              ignore (number ~ctx "m" d);
              ignore (number ~ctx "n" d);
              ignore (number ~ctx "k" d);
              match field ~ctx "ok" d with
              | Json.Bool true -> ()
              | Json.Bool false -> fail "%s: differential shape failed" ctx
              | _ -> fail "%s: ok is not a bool" ctx)
            (as_list ~ctx "differential" a))
        arches

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "." in
  check_full (Filename.concat dir "BENCH_full.json");
  if !failures > 0 then (
    Printf.eprintf "blocked-smoke: %d validation failure(s)\n" !failures;
    exit 1)
  else print_endline "blocked-smoke: BENCH_full.json valid"
