(* Validator behind the @blocked-smoke alias: BENCH_full.json and
   BENCH_full_f32.json — the full-matrix blocked GEMM sweeps at both
   precisions the benchmark harness just emitted — must parse, carry
   the documented shape (EXPERIMENTS.md), record a passing differential
   gate for every checked shape, and show the blocked path beating the
   unblocked streaming path at the sweep's largest size on every
   architecture (2x for f64, 1.5x for f32 — the streamed baseline's
   bandwidth ceiling is further away at 4 bytes/element).  Across the
   two files, f32 must deliver at least 1.5x the f64 MFLOPS at the
   largest swept size: the whole point of the precision axis is that
   halving the element width roughly doubles the peak. *)

module Json = Augem.Json

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.eprintf "blocked-smoke: FAIL %s\n" msg)
    fmt

let field ~ctx name v =
  match Json.member name v with
  | Some x -> x
  | None ->
      fail "%s: missing field %S" ctx name;
      Json.Null

let as_list ~ctx name v =
  match field ~ctx name v with
  | Json.List l ->
      if l = [] then fail "%s: field %S is empty" ctx name;
      l
  | Json.Null -> []
  | _ ->
      fail "%s: field %S is not an array" ctx name;
      []

let check_string ~ctx ?expect name v =
  match (field ~ctx name v, expect) with
  | Json.String s, Some e when s <> e ->
      fail "%s: field %S is %S, expected %S" ctx name s e
  | Json.String _, _ -> ()
  | Json.Null, _ -> ()
  | _ -> fail "%s: field %S is not a string" ctx name

let number ~ctx name v =
  match field ~ctx name v with
  | Json.Int i -> float_of_int i
  | Json.Float f -> f
  | Json.Null -> 0.
  | _ ->
      fail "%s: field %S is not a number" ctx name;
      0.

let check_series ~ctx v =
  check_string ~ctx "label" v;
  List.iter
    (fun p ->
      let ctx = ctx ^ ".points[]" in
      ignore (number ~ctx "size" p);
      ignore (number ~ctx "mflops" p))
    (as_list ~ctx "points" v)

(* The blocked series' MFLOPS at the largest swept size, for the
   cross-precision ratio check. *)
let blocked_at_largest ~ctx ~largest a =
  let series = as_list ~ctx "series" a in
  let blocked =
    List.find_opt
      (fun s ->
        match Json.member "label" s with
        | Some (Json.String l) -> l = "AUGEM blocked"
        | _ -> false)
      series
  in
  match blocked with
  | None ->
      fail "%s: no \"AUGEM blocked\" series" ctx;
      0.
  | Some s ->
      let pt =
        List.find_opt
          (fun p ->
            number ~ctx:(ctx ^ ".points[]") "size" p = float_of_int largest)
          (as_list ~ctx "points" s)
      in
      (match pt with
      | None ->
          fail "%s: blocked series has no point at largest size %d" ctx largest;
          0.
      | Some p -> number ~ctx:(ctx ^ ".points[]") "mflops" p)

(* Validate one sweep file; returns (arch name, blocked MFLOPS at the
   largest size) per architecture so the caller can compare files. *)
let check_full ~experiment ~min_speedup file : (string * float) list =
  match Json.of_file file with
  | Error msg ->
      fail "%s: %s" file msg;
      []
  | Ok j ->
      let ctx = Filename.basename file in
      check_string ~ctx ~expect:experiment "experiment" j;
      check_string ~ctx "title" j;
      let largest = int_of_float (number ~ctx "largest" j) in
      let arches = as_list ~ctx "arches" j in
      if List.length arches < 2 then
        fail "%s: expected both modelled architectures" ctx;
      List.map
        (fun a ->
          let ctx = ctx ^ ".arches[]" in
          let arch_name =
            match field ~ctx "arch" a with Json.String s -> s | _ -> "?"
          in
          check_string ~ctx "arch" a;
          check_string ~ctx "model" a;
          let b = field ~ctx "blocking" a in
          List.iter
            (fun d ->
              if number ~ctx:(ctx ^ ".blocking") d b < 1. then
                fail "%s: blocking %s < 1" ctx d)
            [ "mc"; "kc"; "nc" ];
          check_string ~ctx "micro_config" a;
          List.iter (check_series ~ctx:(ctx ^ ".series")) (as_list ~ctx "series" a);
          (* the paper-motivating gate: cache blocking must pay off *)
          let speedup = number ~ctx "speedup_at_largest" a in
          if speedup < min_speedup then
            fail
              "%s: blocked path only %.2fx the streamed path (want >= %.1fx)"
              ctx speedup min_speedup;
          (* every differential shape ran and matched the oracle *)
          List.iter
            (fun d ->
              let ctx = ctx ^ ".differential[]" in
              ignore (number ~ctx "m" d);
              ignore (number ~ctx "n" d);
              ignore (number ~ctx "k" d);
              match field ~ctx "ok" d with
              | Json.Bool true -> ()
              | Json.Bool false -> fail "%s: differential shape failed" ctx
              | _ -> fail "%s: ok is not a bool" ctx)
            (as_list ~ctx "differential" a);
          (arch_name, blocked_at_largest ~ctx ~largest a))
        arches

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "." in
  let f64 =
    check_full ~experiment:"full" ~min_speedup:2.0
      (Filename.concat dir "BENCH_full.json")
  in
  let f32 =
    check_full ~experiment:"full_f32" ~min_speedup:1.5
      (Filename.concat dir "BENCH_full_f32.json")
  in
  (* f32 over f64 at the largest size: halving the element width must
     pay off by at least 1.5x on every architecture *)
  List.iter
    (fun (arch, m32) ->
      match List.assoc_opt arch f64 with
      | None -> fail "BENCH_full.json: no f64 entry for arch %s" arch
      | Some m64 ->
          if m64 <= 0. then fail "BENCH_full.json: %s f64 MFLOPS <= 0" arch
          else
            let ratio = m32 /. m64 in
            if ratio < 1.5 then
              fail
                "%s: f32 only %.2fx the f64 MFLOPS at the largest size (want \
                 >= 1.5x)"
                arch ratio)
    f32;
  if !failures > 0 then (
    Printf.eprintf "blocked-smoke: %d validation failure(s)\n" !failures;
    exit 1)
  else
    print_endline
      "blocked-smoke: BENCH_full.json and BENCH_full_f32.json valid"
