(* Validates the @chaos-serve report against the acceptance bar: the
   run must have injected at least 30 distinct fault schedules across
   at least 8 fault points, and every service invariant must have held
   (the chaos CLI already exits nonzero on a violation — this checks
   the coverage floor on top, so a silently-shrunk catalog cannot
   pass). *)

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("FAIL: " ^ s); exit 1) fmt

let () =
  let path =
    match Sys.argv with
    | [| _; p |] -> p
    | _ ->
        prerr_endline "usage: validate_chaos CHAOS_REPORT.txt";
        exit 2
  in
  let lines = In_channel.with_open_text path In_channel.input_lines in
  let summary =
    match
      List.find_opt
        (fun l -> String.length l >= 12 && String.sub l 0 12 = "chaos-serve:")
        lines
    with
    | Some l -> l
    | None -> fail "no chaos-serve summary line in %s" path
  in
  let sessions, schedules, points =
    try
      Scanf.sscanf summary
        "chaos-serve: %d sessions, %d distinct schedules over %d fault points"
        (fun a b c -> (a, b, c))
    with Scanf.Scan_failure _ | End_of_file ->
      fail "unparsable summary line: %s" summary
  in
  if schedules < 30 then
    fail "only %d distinct fault schedules (acceptance floor: 30)" schedules;
  if points < 8 then
    fail "only %d fault points exercised (acceptance floor: 8)" points;
  if
    not
      (List.exists
         (fun l -> String.trim l = "invariants: all held")
         lines)
  then fail "report does not state that every invariant held";
  Printf.printf
    "chaos-serve report OK: %d sessions, %d schedules, %d points, invariants held\n"
    sessions schedules points
