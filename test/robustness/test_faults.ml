(* Mutation meta-test: the harness's fault-detection rate is a
   regression-checked number, not an article of faith.  Every paper
   kernel is generated under its CLI-default configuration, corrupted
   one instruction at a time, and re-verified; the aggregate detection
   rate across all seven kernels must stay at or above 95%. *)

module A = Augem
module Kernels = A.Ir.Kernels
module Pipeline = A.Transform.Pipeline
module Faults = A.Verify.Faults
module Chaos = A.Chaos

let arch = A.Machine.Arch.sandy_bridge

let config_for k =
  match k with
  | Kernels.Gemm -> { Pipeline.default with jam = [ ("j", 4); ("i", 8) ] }
  | Kernels.Gemv -> { Pipeline.default with inner_unroll = Some ("j", 8) }
  | Kernels.Dot ->
      { Pipeline.default with inner_unroll = Some ("i", 8);
        expand_reduction = Some 8 }
  | _ -> { Pipeline.default with inner_unroll = Some ("i", 8) }

let all_kernels = Kernels.[ Gemm; Gemv; Axpy; Dot; Ger; Scal; Copy ]

let program_for k =
  (A.generate ~arch ~config:(config_for k) k).A.g_program

(* The acceptance bar: >= 95% of injected faults detected, aggregated
   over all seven kernels; no single kernel may dip below 90%. *)
let test_detection_rate () =
  let reports =
    List.map
      (fun k -> Chaos.run ~max_faults:200 k (program_for k))
      all_kernels
  in
  List.iter
    (fun r ->
      let rate = Chaos.rate r in
      if rate < 0.90 then
        Alcotest.failf "%s: detection rate %.1f%% below per-kernel floor (%d/%d)"
          r.Chaos.c_kernel (100. *. rate) r.Chaos.c_detected r.Chaos.c_total)
    reports;
  let agg = Chaos.merge reports in
  let rate = Chaos.rate agg in
  Alcotest.(check bool)
    (Printf.sprintf "aggregate detection rate %.2f%% (%d/%d) >= 95%%"
       (100. *. rate) agg.Chaos.c_detected agg.Chaos.c_total)
    true (rate >= 0.95)

(* The same meta-test at single precision for the paper's three f32
   headliners: the looser f32 tolerance must not open detection holes
   (a wrong kernel is wrong by far more than the rounding budget). *)
let test_detection_rate_f32 () =
  let et = A.Machine.Etype.F32 in
  let reports =
    List.map
      (fun k ->
        let prog =
          (A.generate ~et ~arch ~config:(config_for k) k).A.g_program
        in
        Chaos.run ~et ~max_faults:120 k prog)
      Kernels.[ Gemm; Axpy; Dot ]
  in
  List.iter
    (fun r ->
      let rate = Chaos.rate r in
      if rate < 0.90 then
        Alcotest.failf
          "%s: f32 detection rate %.1f%% below per-kernel floor (%d/%d)"
          r.Chaos.c_kernel (100. *. rate) r.Chaos.c_detected r.Chaos.c_total)
    reports;
  let agg = Chaos.merge reports in
  let rate = Chaos.rate agg in
  Alcotest.(check bool)
    (Printf.sprintf "aggregate f32 detection rate %.2f%% (%d/%d) >= 95%%"
       (100. *. rate) agg.Chaos.c_detected agg.Chaos.c_total)
    true (rate >= 0.95)

(* Enumeration is deterministic and covers multiple fault kinds. *)
let test_enumerate_deterministic () =
  let prog = program_for Kernels.Axpy in
  let f1 = Faults.enumerate prog and f2 = Faults.enumerate prog in
  Alcotest.(check bool) "same fault list on re-enumeration" true (f1 = f2);
  Alcotest.(check bool) "non-empty" true (List.length f1 > 0);
  let kinds =
    List.sort_uniq compare
      (List.map (fun f -> Faults.kind_to_string f.Faults.f_kind) f1)
  in
  Alcotest.(check bool)
    (Printf.sprintf "multiple fault kinds enumerated (%s)"
       (String.concat ", " kinds))
    true
    (List.length kinds >= 3)

(* ~unobservable:true strictly widens the enumeration. *)
let test_unobservable_superset () =
  let prog = program_for Kernels.Gemm in
  let base = Faults.enumerate prog in
  let wide = Faults.enumerate ~unobservable:true prog in
  Alcotest.(check bool) "unobservable enumeration is wider" true
    (List.length wide > List.length base);
  List.iter
    (fun f ->
      Alcotest.(check bool) "observable fault also in wide set" true
        (List.mem f wide))
    base

let test_sample_bounds () =
  let prog = program_for Kernels.Dot in
  let all = Faults.enumerate prog in
  let s = Faults.sample ~max:7 prog in
  Alcotest.(check bool) "at most max faults" true (List.length s <= 7);
  Alcotest.(check bool) "sample drawn from enumeration" true
    (List.for_all (fun f -> List.mem f all) s);
  let huge = Faults.sample ~max:100_000 prog in
  Alcotest.(check int) "over-asking returns everything" (List.length all)
    (List.length huge)

(* A fault minted against one program must not silently corrupt a
   different one. *)
let test_stale_fault_rejected () =
  let axpy = program_for Kernels.Axpy in
  let copy = program_for Kernels.Copy in
  let faults = Faults.enumerate axpy in
  let stale =
    List.find_opt
      (fun f ->
        match Faults.apply copy f with
        | _ -> false
        | exception Invalid_argument _ -> true)
      faults
  in
  Alcotest.(check bool) "some axpy fault is stale for copy" true
    (stale <> None)

(* One end-to-end spot check: a specific injected store-drop is caught
   by the harness with a mismatch (not a crash). *)
let test_specific_mutant_detected () =
  let prog = program_for Kernels.Scal in
  let faults = Faults.enumerate prog in
  match
    List.find_opt (fun f -> f.Faults.f_kind = Faults.Drop_store) faults
  with
  | None -> Alcotest.fail "scal enumerates no droppable store"
  | Some f ->
      let mutant = Faults.apply prog f in
      let outcome = A.Harness.verify Kernels.Scal mutant in
      Alcotest.(check bool)
        (Printf.sprintf "dropped store (%s) detected: %s"
           (Faults.describe f) outcome.A.Harness.detail)
        false outcome.A.Harness.ok

let suite =
  [
    Alcotest.test_case "aggregate detection rate >= 95%" `Slow
      test_detection_rate;
    Alcotest.test_case "aggregate f32 detection rate >= 95%" `Slow
      test_detection_rate_f32;
    Alcotest.test_case "enumeration is deterministic" `Quick
      test_enumerate_deterministic;
    Alcotest.test_case "unobservable widens enumeration" `Quick
      test_unobservable_superset;
    Alcotest.test_case "sampling respects bounds" `Quick test_sample_bounds;
    Alcotest.test_case "stale faults are rejected" `Quick
      test_stale_fault_rejected;
    Alcotest.test_case "dropped store is detected" `Quick
      test_specific_mutant_detected;
  ]
