(* Degenerate-shape regression: every tuned kernel on every modelled
   architecture must survive unit dimensions and zero-length vectors —
   the shapes where all main loops are skipped and only remainder (or
   no) code runs. *)

module A = Augem
module Kernels = A.Ir.Kernels
module Harness = A.Harness

let all_kernels = Kernels.[ Gemm; Gemv; Axpy; Dot; Ger; Scal; Copy ]

(* Degenerate cases in isolation, on tuned programs. *)
let test_tuned_kernels_degenerate_cases arch () =
  List.iter
    (fun k ->
      let g = A.tuned ~arch k in
      List.iter
        (fun (label, case) ->
          let outcome = case () in
          if not outcome.Harness.ok then
            Alcotest.failf "%s on %s, degenerate %s: %s"
              (Kernels.name_to_string k)
              arch.A.Machine.Arch.name label outcome.Harness.detail)
        (Harness.degenerate_cases k g.A.g_program))
    all_kernels

(* Full harness (regular shapes + degenerate sweep) on tuned programs. *)
let test_tuned_kernels_full_verify arch () =
  List.iter
    (fun k ->
      let g = A.tuned ~arch k in
      let outcome = A.verify g in
      if not outcome.Harness.ok then
        Alcotest.failf "%s on %s: %s"
          (Kernels.name_to_string k)
          arch.A.Machine.Arch.name outcome.Harness.detail)
    all_kernels

(* degenerate_cases covers the zero-length edge for every
   vector-shaped kernel and unit shapes for the rest. *)
let test_degenerate_case_coverage () =
  let prog = (A.tuned ~arch:A.Machine.Arch.sandy_bridge Kernels.Axpy).A.g_program in
  List.iter
    (fun k ->
      let labels = List.map fst (Harness.degenerate_cases k prog) in
      Alcotest.(check bool)
        (Kernels.name_to_string k ^ " has degenerate cases")
        true
        (labels <> []);
      match k with
      | Kernels.Gemm -> ()
      | _ ->
          Alcotest.(check bool)
            (Kernels.name_to_string k ^ " covers the empty shape")
            true
            (List.mem "n=0" labels))
    all_kernels

let suite =
  List.concat_map
    (fun arch ->
      [
        Alcotest.test_case
          ("degenerate cases, tuned kernels, " ^ arch.A.Machine.Arch.name)
          `Slow
          (test_tuned_kernels_degenerate_cases arch);
        Alcotest.test_case
          ("full verify, tuned kernels, " ^ arch.A.Machine.Arch.name)
          `Slow
          (test_tuned_kernels_full_verify arch);
      ])
    A.Machine.Arch.all
  @ [
      Alcotest.test_case "degenerate case coverage" `Quick
        test_degenerate_case_coverage;
    ]
