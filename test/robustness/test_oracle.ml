(* The per-pass differential oracle: on healthy pipelines it must stay
   silent across every kernel and a sweep of configurations; on seeded
   miscompiles it must convict the exact guilty pass, with a usable IR
   diff. *)

module A = Augem
module Ast = A.Ir.Ast
module Kernels = A.Ir.Kernels
module Pipeline = A.Transform.Pipeline
module Oracle = A.Verify.Oracle

let all_kernels =
  Kernels.[ Gemm; Gemv; Axpy; Dot; Ger; Scal; Copy ]

let config_for k =
  match k with
  | Kernels.Gemm -> { Pipeline.default with jam = [ ("j", 4); ("i", 8) ] }
  | Kernels.Gemv -> { Pipeline.default with inner_unroll = Some ("j", 8) }
  | Kernels.Dot ->
      { Pipeline.default with inner_unroll = Some ("i", 8);
        expand_reduction = Some 8 }
  | _ -> { Pipeline.default with inner_unroll = Some ("i", 8) }

let test_oracle_clean_on_kernels () =
  List.iter
    (fun k ->
      let source = Kernels.kernel_of_name k in
      match Oracle.check source (config_for k) with
      | Ok _ -> ()
      | Error d ->
          Alcotest.failf "oracle convicted a healthy pipeline on %s:\n%s"
            (Kernels.name_to_string k)
            (Oracle.divergence_to_string d))
    all_kernels

(* Same sweep at single precision: the oracle narrows its inputs to the
   kernel's element type, so a healthy f32 pipeline must stay clean. *)
let test_oracle_clean_on_kernels_f32 () =
  List.iter
    (fun k ->
      let source = Kernels.kernel_of_name ~fp:Ast.Float k in
      match Oracle.check source (config_for k) with
      | Ok _ -> ()
      | Error d ->
          Alcotest.failf "oracle convicted a healthy f32 pipeline on %s:\n%s"
            (Kernels.name_to_string ~fp:Ast.Float k)
            (Oracle.divergence_to_string d))
    all_kernels

(* Config sweep: every pass combination the tuner would visit must
   survive the per-pass check, not just the hand-picked defaults. *)
let test_oracle_clean_on_config_sweep () =
  let configs =
    List.concat_map
      (fun u ->
        List.concat_map
          (fun expand ->
            List.map
              (fun pf ->
                {
                  Pipeline.default with
                  inner_unroll = Some ("i", u);
                  expand_reduction = expand;
                  prefetch =
                    Option.map
                      (fun d ->
                        { A.Transform.Prefetch.pf_distance = d;
                          pf_stores = true })
                      pf;
                })
              [ None; Some 4 ])
          [ None; Some 2 ])
      [ 2; 4; 7 ]
  in
  List.iter
    (fun k ->
      let source = Kernels.kernel_of_name k in
      List.iter
        (fun config ->
          match Oracle.check source config with
          | Ok _ -> ()
          | Error d ->
              Alcotest.failf "oracle convicted %s under %s:\n%s"
                (Kernels.name_to_string k)
                (Pipeline.config_to_string config)
                (Oracle.divergence_to_string d))
        configs)
    Kernels.[ Axpy; Dot; Scal; Copy ]

(* A deliberately miscompiling pass: turns every addition inside loop
   bodies into a subtraction.  The oracle must name it, blame the right
   index, and produce a diff. *)
let evil_pass (k : Ast.kernel) : Ast.kernel =
  let rec fix_expr (e : Ast.expr) : Ast.expr =
    match e with
    | Ast.Binop (Ast.Add, a, b) -> Ast.Binop (Ast.Sub, fix_expr a, fix_expr b)
    | Ast.Binop (op, a, b) -> Ast.Binop (op, fix_expr a, fix_expr b)
    | Ast.Neg a -> Ast.Neg (fix_expr a)
    (* leave subscripts alone: corrupting them turns a clean numeric
       divergence into an out-of-bounds interpreter fault *)
    | Ast.Index _ -> e
    | e -> e
  in
  let rec fix_stmt (s : Ast.stmt) : Ast.stmt =
    match s with
    | Ast.For (h, body) ->
        Ast.For
          ( h,
            List.map
              (function
                | Ast.Assign (lv, e) -> Ast.Assign (lv, fix_expr e)
                | s -> fix_stmt s)
              body )
    | Ast.Tagged (t, body) -> Ast.Tagged (t, List.map fix_stmt body)
    | s -> s
  in
  { k with Ast.k_body = List.map fix_stmt k.Ast.k_body }

let splice_after (name : string) (pass : Ast.kernel -> Ast.kernel)
    (after : int) (passes : (string * (Ast.kernel -> Ast.kernel)) list) =
  List.concat
    (List.mapi
       (fun i p -> if i = after then [ p; (name, pass) ] else [ p ])
       passes)

let test_oracle_pinpoints_seeded_miscompile () =
  let source = Kernels.kernel_of_name Kernels.Axpy in
  let config = config_for Kernels.Axpy in
  let passes =
    splice_after "evil-add-to-sub" evil_pass 0 (Pipeline.passes config)
  in
  let inputs = Oracle.default_inputs source in
  match Oracle.check_passes ~inputs source passes with
  | Ok _ -> Alcotest.fail "oracle missed the seeded miscompile"
  | Error d ->
      Alcotest.(check string) "guilty pass named" "evil-add-to-sub" d.Oracle.div_pass;
      Alcotest.(check int) "guilty pass index" 1 d.Oracle.div_pass_index;
      (match d.Oracle.div_reason with
      | Oracle.R_diverged _ -> ()
      | r ->
          Alcotest.failf "expected divergence, got: %s"
            (Oracle.reason_to_string r));
      Alcotest.(check bool) "diff mentions the rewrite" true
        (String.length d.Oracle.div_diff > 0)

(* A pass that emits an ill-typed kernel must be convicted by the
   re-typecheck, not flow downstream. *)
let test_oracle_catches_type_breakage () =
  let break_types (k : Ast.kernel) : Ast.kernel =
    {
      k with
      Ast.k_body =
        k.Ast.k_body @ [ Ast.Assign (Ast.Lvar "no_such_variable", Ast.Int_lit 0) ];
    }
  in
  let source = Kernels.kernel_of_name Kernels.Scal in
  let config = config_for Kernels.Scal in
  let passes =
    splice_after "evil-type-breaker" break_types 1 (Pipeline.passes config)
  in
  match Oracle.check_passes ~inputs:(Oracle.default_inputs source) source passes with
  | Ok _ -> Alcotest.fail "oracle accepted an ill-typed intermediate kernel"
  | Error d -> (
      Alcotest.(check string) "guilty pass named" "evil-type-breaker"
        d.Oracle.div_pass;
      match d.Oracle.div_reason with
      | Oracle.R_type_error _ -> ()
      | r ->
          Alcotest.failf "expected type error, got: %s"
            (Oracle.reason_to_string r))

(* A crashing pass is convicted as a crash, with the sweep intact. *)
let test_oracle_catches_crashing_pass () =
  let crash (_ : Ast.kernel) : Ast.kernel = failwith "synthetic pass crash" in
  let source = Kernels.kernel_of_name Kernels.Copy in
  let config = config_for Kernels.Copy in
  let passes = splice_after "evil-crasher" crash 0 (Pipeline.passes config) in
  match Oracle.check_passes ~inputs:(Oracle.default_inputs source) source passes with
  | Ok _ -> Alcotest.fail "oracle accepted a crashing pass"
  | Error d -> (
      Alcotest.(check string) "guilty pass named" "evil-crasher" d.Oracle.div_pass;
      match d.Oracle.div_reason with
      | Oracle.R_crash m ->
          Alcotest.(check bool) "crash message preserved" true
            (String.length m > 0)
      | r ->
          Alcotest.failf "expected crash, got: %s" (Oracle.reason_to_string r))

(* apply_checked agrees with Pipeline.apply on healthy pipelines. *)
let test_apply_checked_matches_apply () =
  List.iter
    (fun k ->
      let source = Kernels.kernel_of_name k in
      let config = config_for k in
      match Oracle.apply_checked source config with
      | Error d ->
          Alcotest.failf "apply_checked rejected %s: %s"
            (Kernels.name_to_string k)
            (Oracle.divergence_to_string d)
      | Ok checked ->
          let plain = Pipeline.apply source config in
          Alcotest.(check string)
            (Kernels.name_to_string k ^ ": same result as Pipeline.apply")
            (A.Ir.Pp.kernel_to_string plain)
            (A.Ir.Pp.kernel_to_string checked))
    all_kernels

let suite =
  [
    Alcotest.test_case "oracle clean on all kernels" `Quick
      test_oracle_clean_on_kernels;
    Alcotest.test_case "oracle clean on all kernels (f32)" `Quick
      test_oracle_clean_on_kernels_f32;
    Alcotest.test_case "oracle clean on config sweep" `Slow
      test_oracle_clean_on_config_sweep;
    Alcotest.test_case "oracle pinpoints seeded miscompile" `Quick
      test_oracle_pinpoints_seeded_miscompile;
    Alcotest.test_case "oracle catches ill-typed pass output" `Quick
      test_oracle_catches_type_breakage;
    Alcotest.test_case "oracle convicts crashing pass" `Quick
      test_oracle_catches_crashing_pass;
    Alcotest.test_case "apply_checked matches Pipeline.apply" `Quick
      test_apply_checked_matches_apply;
  ]
