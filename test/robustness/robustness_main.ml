(* Hardened-verification suites: per-pass differential oracle,
   fault-injection mutation meta-test, crash-proof tuner diagnostics,
   and degenerate-shape regressions.  Run via `dune runtest` or the
   focused `dune build @robustness` alias. *)

let () =
  Alcotest.run "augem-robustness"
    [
      ("oracle", Test_oracle.suite);
      ("faults", Test_faults.suite);
      ("tuner-diag", Test_tuner_diag.suite);
      ("degenerate", Test_degenerate.suite);
    ]
