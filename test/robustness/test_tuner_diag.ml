(* Crash-proof tuner: a sweep over a hostile search space must never
   raise.  A fully-discarded space degrades to the safe baseline with a
   populated failure-reason histogram; individual broken candidates are
   classified into structured diagnostics and the sweep continues. *)

module A = Augem
module Kernels = A.Ir.Kernels
module Pipeline = A.Transform.Pipeline
module Tuner = A.Tuner
module Diag = A.Verify.Diag

let arch = A.Machine.Arch.sandy_bridge

(* Jam factors far beyond the register file: every candidate dies of
   register pressure, none survives. *)
let hostile_space =
  List.map
    (fun j ->
      {
        Tuner.cand_config =
          { Pipeline.default with jam = [ ("j", j); ("i", 64) ] };
        cand_opts = A.Codegen.Emit.default_options;
      })
    [ 32; 64 ]

(* Acceptance criterion: Tuner.tune on a fully-discarded space returns
   the safe-baseline fallback — no exception — with every discard
   recorded and histogrammed, and the fallback program verifying. *)
let test_fully_discarded_space_falls_back () =
  let r = Tuner.tune ~space:hostile_space arch Kernels.Gemm in
  Alcotest.(check bool) "fell back to safe baseline" true r.Tuner.fell_back;
  Alcotest.(check int) "every candidate visited" (List.length hostile_space)
    r.Tuner.visited;
  Alcotest.(check int) "every candidate discarded" (List.length hostile_space)
    r.Tuner.discarded;
  Alcotest.(check int) "one diagnostic per discard" r.Tuner.discarded
    (List.length r.Tuner.failures);
  Alcotest.(check bool) "failure histogram populated" true
    (r.Tuner.failure_histogram <> []);
  let total_in_histogram =
    List.fold_left (fun acc (_, n) -> acc + n) 0 r.Tuner.failure_histogram
  in
  Alcotest.(check int) "histogram counts every failure" r.Tuner.discarded
    total_in_histogram;
  Alcotest.(check bool) "baseline config is the safe baseline" true
    (r.Tuner.best = Tuner.safe_baseline);
  let outcome = A.Harness.verify Kernels.Gemm r.Tuner.best_program in
  Alcotest.(check bool)
    ("fallback program verifies: " ^ outcome.A.Harness.detail)
    true outcome.A.Harness.ok

(* A step budget of one instruction discards everything as
   budget-exceeded — and still degrades instead of raising. *)
let test_budget_exhaustion_falls_back () =
  let r = Tuner.tune ~max_insns:1 arch Kernels.Axpy in
  Alcotest.(check bool) "fell back" true r.Tuner.fell_back;
  Alcotest.(check bool) "all failures are budget-exceeded" true
    (List.for_all
       (fun d -> d.Diag.d_code = Diag.E_budget_exceeded)
       r.Tuner.failures);
  match r.Tuner.failure_histogram with
  | [ (code, n) ] ->
      Alcotest.(check string) "single histogram bucket"
        (Diag.code_to_string Diag.E_budget_exceeded) code;
      Alcotest.(check int) "bucket counts every candidate" r.Tuner.discarded n
  | h ->
      Alcotest.failf "expected one histogram bucket, got %d" (List.length h)

(* A healthy sweep keeps its existing behaviour: no fallback, and the
   failure list agrees with the discard counter. *)
let test_healthy_sweep_does_not_fall_back () =
  let r = Tuner.tune arch Kernels.Gemm in
  Alcotest.(check bool) "no fallback" false r.Tuner.fell_back;
  Alcotest.(check int) "failures match discard count" r.Tuner.discarded
    (List.length r.Tuner.failures);
  Alcotest.(check bool) "best score positive" true (r.Tuner.best_score > 0.)

(* The catch-all in candidate generation: a structurally broken kernel
   (reference to an undeclared variable) is classified as a structured
   diagnostic, not an escaped exception. *)
let test_generate_candidate_classifies_broken_kernel () =
  let open A.Ir.Ast in
  let good = Kernels.kernel_of_name Kernels.Axpy in
  let broken =
    {
      good with
      k_body =
        good.k_body @ [ Assign (Lvar "no_such_variable", Int_lit 0) ];
    }
  in
  let cand =
    {
      Tuner.cand_config = { Pipeline.default with inner_unroll = Some ("i", 4) };
      cand_opts = A.Codegen.Emit.default_options;
    }
  in
  match Tuner.generate_candidate_diag arch Kernels.Axpy broken cand with
  | Ok _ -> Alcotest.fail "broken kernel generated successfully"
  | Error d ->
      Alcotest.(check string) "classified as type error"
        (Diag.code_to_string Diag.E_type_error)
        (Diag.code_to_string d.Diag.d_code);
      Alcotest.(check string) "kernel recorded" "axpy" d.Diag.d_kernel;
      Alcotest.(check bool) "detail non-empty" true
        (String.length d.Diag.d_detail > 0)

(* The back-compatible option view still works on healthy and hostile
   candidates alike. *)
let test_generate_candidate_option_view () =
  let kernel = Kernels.kernel_of_name Kernels.Gemm in
  let ok_cand =
    {
      Tuner.cand_config = { Pipeline.default with jam = [ ("j", 2); ("i", 4) ] };
      cand_opts = A.Codegen.Emit.default_options;
    }
  in
  (match Tuner.generate_candidate arch kernel ok_cand with
  | Some _ -> ()
  | None -> Alcotest.fail "healthy candidate rejected");
  match Tuner.generate_candidate arch kernel (List.hd hostile_space) with
  | None -> ()
  | Some _ -> Alcotest.fail "register-starved candidate accepted"

(* Regression: generate_candidate used to hardcode Kernels.Gemm into
   the diagnostic, mislabelling failures from every other kernel.  A
   register-starved GEMV candidate must now be diagnosed as "gemv". *)
let test_generate_candidate_labels_real_kernel () =
  let kernel = Kernels.kernel_of_name Kernels.Gemv in
  let starved =
    {
      Tuner.cand_config =
        { Pipeline.default with jam = [ ("j", 64); ("i", 64) ] };
      cand_opts = A.Codegen.Emit.default_options;
    }
  in
  let seen = ref [] in
  (match
     Tuner.generate_candidate ~on_diag:(fun d -> seen := d :: !seen) arch
       kernel starved
   with
  | None -> ()
  | Some _ -> Alcotest.fail "register-starved gemv candidate accepted");
  match !seen with
  | [ d ] ->
      Alcotest.(check string) "diagnostic names the real kernel" "gemv"
        d.Diag.d_kernel
  | ds -> Alcotest.failf "expected exactly one diagnostic, got %d"
            (List.length ds)

(* And an explicit [?kname] wins over inference, for kernels outside
   the built-in set. *)
let test_generate_candidate_explicit_kname () =
  let gemv = Kernels.kernel_of_name Kernels.Gemv in
  let custom = { gemv with A.Ir.Ast.k_name = "my_custom_kernel" } in
  let starved = List.hd hostile_space in
  let seen = ref [] in
  (match
     Tuner.generate_candidate ~kname:Kernels.Ger
       ~on_diag:(fun d -> seen := d :: !seen)
       arch custom starved
   with
  | None -> ()
  | Some _ -> Alcotest.fail "register-starved candidate accepted");
  match !seen with
  | [ d ] ->
      Alcotest.(check string) "explicit kname used" "ger" d.Diag.d_kernel
  | ds -> Alcotest.failf "expected exactly one diagnostic, got %d"
            (List.length ds)

(* The staged-lowering driver attributes rejections to the lowering
   stage that raised: register starvation surfaces inside the
   instruction-selection stage ("emit-body"), and the step budget is
   enforced on the framed-but-unscheduled program ("emit-frame").  The
   stage name rides on the diagnostic so a sweep's failure histogram
   can be read per stage. *)
let test_rejection_attributes_stage () =
  let gemm = Kernels.kernel_of_name Kernels.Gemm in
  (* register-starved candidate: dies in emit-body *)
  (match
     Tuner.generate_candidate_diag arch Kernels.Gemm gemm
       (List.hd hostile_space)
   with
  | Ok _ -> Alcotest.fail "register-starved candidate accepted"
  | Error d ->
      Alcotest.(check string) "out-of-registers code" "out-of-registers"
        (Diag.code_to_string d.Diag.d_code);
      Alcotest.(check (option string))
        "starvation attributed to emit-body" (Some "emit-body")
        d.Diag.d_stage_name;
      Alcotest.(check bool) "stage name rendered" true
        (let s = Diag.to_string d in
         let re = "emit-body" in
         let n = String.length s and m = String.length re in
         let rec find i = i + m <= n && (String.sub s i m = re || find (i + 1)) in
         find 0));
  (* viable candidate under a tiny step budget: rejected at emit-frame,
     before scheduling *)
  let viable =
    {
      Tuner.cand_config = { Pipeline.default with jam = [ ("j", 4); ("i", 8) ] };
      cand_opts = A.Codegen.Emit.default_options;
    }
  in
  match
    Tuner.generate_candidate_diag arch ~max_insns:5 Kernels.Gemm gemm viable
  with
  | Ok _ -> Alcotest.fail "over-budget candidate accepted"
  | Error d ->
      Alcotest.(check string) "budget code" "budget-exceeded"
        (Diag.code_to_string d.Diag.d_code);
      Alcotest.(check (option string))
        "budget attributed to emit-frame" (Some "emit-frame")
        d.Diag.d_stage_name

(* Diag.histogram sorts descending and aggregates by code. *)
let test_histogram_shape () =
  let mk code =
    Diag.make ~code ~stage:Diag.S_codegen ~kernel:"gemm" ~arch:"snb"
      ~config:"-" ~detail:"-" ()
  in
  let h =
    Diag.histogram
      [
        mk Diag.E_codegen;
        mk Diag.E_out_of_registers;
        mk Diag.E_out_of_registers;
        mk Diag.E_out_of_registers;
        mk Diag.E_budget_exceeded;
        mk Diag.E_budget_exceeded;
      ]
  in
  Alcotest.(check (list (pair string int)))
    "aggregated and sorted descending"
    [
      (Diag.code_to_string Diag.E_out_of_registers, 3);
      (Diag.code_to_string Diag.E_budget_exceeded, 2);
      (Diag.code_to_string Diag.E_codegen, 1);
    ]
    h

let suite =
  [
    Alcotest.test_case "fully-discarded space falls back" `Quick
      test_fully_discarded_space_falls_back;
    Alcotest.test_case "budget exhaustion falls back" `Quick
      test_budget_exhaustion_falls_back;
    Alcotest.test_case "healthy sweep does not fall back" `Slow
      test_healthy_sweep_does_not_fall_back;
    Alcotest.test_case "broken kernel classified, not raised" `Quick
      test_generate_candidate_classifies_broken_kernel;
    Alcotest.test_case "option view of candidate generation" `Quick
      test_generate_candidate_option_view;
    Alcotest.test_case "diagnostics name the real kernel (gemv)" `Quick
      test_generate_candidate_labels_real_kernel;
    Alcotest.test_case "explicit kname overrides inference" `Quick
      test_generate_candidate_explicit_kname;
    Alcotest.test_case "rejections attribute the lowering stage" `Quick
      test_rejection_attributes_stage;
    Alcotest.test_case "histogram aggregates and sorts" `Quick
      test_histogram_shape;
  ]
