(* The generated blocked DGEMM driver: differential correctness of the
   packing + macro-kernel layer over degenerate and non-dividing
   shapes.

   Every case runs the full generated stack — pack-A, pack-B and the
   micro-kernel, all simulator-executed assembly — under a deliberately
   tiny blocking so small matrices still take multi-block trips and
   remainder blocks.  [Blocked.check] enforces both oracles: bit-exact
   agreement with the reference macro-kernel loop nest driving the same
   simulated micro-kernel, and tolerance agreement with
   [Level3.dgemm_naive]. *)

module A = Augem
module Blocked = A.Blocked
module Mem_model = A.Sim.Mem_model
module Mat = A.Blas.Matrix
module L3 = A.Blas.Level3
module Arch = A.Machine.Arch

let arch = List.hd Arch.all

(* One plan per test binary: the cross-product sweep plus two pack
   tunes is ~a second; every case reuses it. *)
let plan = lazy (Blocked.plan ~jobs:1 arch)

(* Tiny blocking: forces jc/pc/ic trips and remainder blocks on
   single-digit matrices.  The blocking is a runtime parameter of the
   generated code, so this overrides the plan's tuned triple. *)
let tiny = { Mem_model.bl_mc = 8; bl_kc = 6; bl_nc = 4 }

let check_shape ~m ~n ~k () =
  match Blocked.check (Lazy.force plan) ~blocking:tiny ~m ~n ~k () with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "blocked differential: %s" msg

(* Shapes that historically break blocked GEMM drivers: primes that
   divide by no block dimension, problems smaller than one block, exact
   single blocks, exact multiples, and one-block-plus-remainder. *)
let difficult_shapes =
  [
    ("primes m=17 n=11 k=13", 17, 11, 13);
    ("smaller than one block", 3, 2, 5);
    ("exactly one block", 8, 4, 6);
    ("exact multiple of blocks", 16, 8, 12);
    ("one block + remainder", 9, 5, 7);
    ("m=n=k=1", 1, 1, 1);
    ("single row", 1, 9, 6);
    ("single column", 9, 1, 6);
    ("k smaller than kc", 10, 10, 2);
  ]

let test_shapes =
  List.map
    (fun (label, m, n, k) ->
      Alcotest.test_case label `Quick (check_shape ~m ~n ~k))
    difficult_shapes

(* The tuned blocking also has to work, not just the tiny override. *)
let test_tuned_blocking () =
  match Blocked.check (Lazy.force plan) ~m:23 ~n:17 ~k:19 () with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "tuned blocking: %s" msg

(* alpha/beta handling lives in the macro layer (beta scales C before
   any block, alpha folds into the packed B panel) — check it against
   the naive reference directly. *)
let test_alpha_beta () =
  let p = Lazy.force plan in
  let m = 9 and n = 7 and k = 10 in
  let a = Mat.random ~seed:7 m k in
  let b = Mat.random ~seed:8 k n in
  let c0 = Mat.random ~seed:9 m n in
  let c_gen = Mat.copy c0 in
  let c_ref = Mat.copy c0 in
  ignore (Blocked.gemm ~blocking:tiny ~alpha:2.5 ~beta:(-0.5) p a b c_gen);
  L3.dgemm_naive ~alpha:2.5 ~beta:(-0.5) a b c_ref;
  Alcotest.(check bool)
    "alpha/beta matches dgemm_naive" true
    (Mat.approx_equal ~tol:1e-9 c_ref c_gen)

(* alpha = 0 short-circuits every block trip but must still apply
   beta. *)
let test_alpha_zero () =
  let p = Lazy.force plan in
  let c0 = Mat.random ~seed:10 5 4 in
  let c = Mat.copy c0 in
  let a = Mat.random ~seed:11 5 3 in
  let b = Mat.random ~seed:12 3 4 in
  let stats = Blocked.gemm ~blocking:tiny ~alpha:0. ~beta:2. p a b c in
  Alcotest.(check int) "no micro calls" 0 stats.Blocked.st_micro_calls;
  let ok = ref true in
  for j = 0 to 3 do
    for i = 0 to 4 do
      if not (Float.equal (Mat.get c i j) (2. *. Mat.get c0 i j)) then
        ok := false
    done
  done;
  Alcotest.(check bool) "beta still applied" true !ok

(* The loop nest's call accounting: with blocking (8,6,4) on
   m=17 n=11 k=13, the trips are ic=3, pc=3, jc=3 — 9 pack-B calls
   (one per (jc,pc)) and 27 pack-A/micro calls (one per block). *)
let test_stats_accounting () =
  let p = Lazy.force plan in
  let a = Mat.random ~seed:13 17 13 in
  let b = Mat.random ~seed:14 13 11 in
  let c = Mat.random ~seed:15 17 11 in
  let stats = Blocked.gemm ~blocking:tiny p a b c in
  Alcotest.(check int) "pack_b calls" 9 stats.Blocked.st_pack_b_calls;
  Alcotest.(check int) "pack_a calls" 27 stats.Blocked.st_pack_a_calls;
  Alcotest.(check int) "micro calls" 27 stats.Blocked.st_micro_calls;
  Alcotest.(check bool) "interpreted instructions counted" true
    (stats.Blocked.st_insns > 0)

let test_shape_mismatch () =
  let p = Lazy.force plan in
  let a = Mat.random ~seed:16 4 3 in
  let b = Mat.random ~seed:17 5 2 (* rows <> a.cols *) in
  let c = Mat.random ~seed:18 4 2 in
  Alcotest.check_raises "shape mismatch"
    (Invalid_argument "Blocked.gemm: shape mismatch") (fun () ->
      ignore (Blocked.gemm p a b c))

(* The plan itself: tuned blocking fits the paper's cache-residency
   story and the blocked model beats the streamed one on the tuning
   workload. *)
let test_plan_shape () =
  let p = Lazy.force plan in
  let bl = p.Blocked.pl_blocking in
  Alcotest.(check bool) "positive blocking" true
    (bl.Mem_model.bl_mc > 0 && bl.Mem_model.bl_kc > 0 && bl.Mem_model.bl_nc > 0);
  Alcotest.(check bool) "register tile" true (p.Blocked.pl_mr >= 1 && p.Blocked.pl_nr >= 1);
  Alcotest.(check bool) "blocked >= streamed on tuning workload" true
    (p.Blocked.pl_blocked_mflops >= p.Blocked.pl_streamed_mflops)

let suite =
  test_shapes
  @ [
      Alcotest.test_case "tuned blocking" `Quick test_tuned_blocking;
      Alcotest.test_case "alpha/beta" `Quick test_alpha_beta;
      Alcotest.test_case "alpha=0 short-circuit" `Quick test_alpha_zero;
      Alcotest.test_case "stats accounting" `Quick test_stats_accounting;
      Alcotest.test_case "shape mismatch" `Quick test_shape_mismatch;
      Alcotest.test_case "plan shape" `Quick test_plan_shape;
    ]
