(* The domain pool and the parallel tuning sweep.

   The contract under test: [Pool.map] returns results in item order
   whatever the job count, and [Tuner.tune ~jobs:n] is bit-identical to
   [~jobs:1] — same winner, same score, same failure histogram, same
   sweep-ordered failure list — for every kernel on every modelled
   architecture.  The first-seen-maximum tie-break (which the
   prefetch_opts ordering depends on) is exactly what a naive parallel
   reduction would break. *)

module A = Augem
module Arch = A.Machine.Arch
module Kernels = A.Ir.Kernels
module Tuner = A.Tuner
module Pool = A.Pool
module Diag = A.Verify.Diag

let archs = [ Arch.sandy_bridge; Arch.piledriver ]
let all_kernels = Kernels.[ Gemm; Gemv; Axpy; Dot; Ger; Scal; Copy ]

(* --- the pool itself ----------------------------------------------------- *)

let test_pool_ordered () =
  let items = List.init 100 Fun.id in
  let expected = List.map (fun x -> (x * x) + 1) items in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d preserves item order" jobs)
        expected
        (Pool.map ~jobs (fun x -> (x * x) + 1) items))
    [ 1; 2; 3; 4; 7; 16 ]

let test_pool_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" [] (Pool.map ~jobs:4 succ []);
  Alcotest.(check (list int)) "singleton" [ 2 ] (Pool.map ~jobs:4 succ [ 1 ])

let test_pool_unbalanced_costs () =
  (* items deliberately unequal in cost: the atomic cursor hands them
     out dynamically, and order must still be preserved *)
  let items = List.init 40 (fun i -> if i mod 7 = 0 then 40_000 else 10) in
  let spin n =
    let acc = ref 0 in
    for i = 1 to n do
      acc := !acc + i
    done;
    !acc
  in
  Alcotest.(check (list int))
    "unbalanced work, ordered results"
    (List.map spin items)
    (Pool.map ~jobs:4 spin items)

exception Boom of int

let test_pool_exception_deterministic () =
  (* multiple items raise; the earliest in item order must win, for
     every job count *)
  let items = List.init 30 Fun.id in
  let f x = if x mod 11 = 5 then raise (Boom x) else x in
  List.iter
    (fun jobs ->
      match Pool.map ~jobs f items with
      | _ -> Alcotest.fail "expected an exception"
      | exception Boom x ->
          Alcotest.(check int)
            (Printf.sprintf "jobs=%d raises the earliest failure" jobs)
            5 x)
    [ 1; 2; 4 ]

(* --- sweep determinism --------------------------------------------------- *)

let check_identical ~what (seq : Tuner.result) (par : Tuner.result) =
  Alcotest.(check bool)
    (what ^ ": best candidate identical")
    true
    (seq.Tuner.best = par.Tuner.best);
  Alcotest.(check (float 0.0))
    (what ^ ": best score bit-identical")
    seq.Tuner.best_score par.Tuner.best_score;
  Alcotest.(check bool)
    (what ^ ": best program identical")
    true
    (seq.Tuner.best_program = par.Tuner.best_program);
  Alcotest.(check int) (what ^ ": visited") seq.Tuner.visited par.Tuner.visited;
  Alcotest.(check int)
    (what ^ ": discarded")
    seq.Tuner.discarded par.Tuner.discarded;
  Alcotest.(check bool)
    (what ^ ": fell_back")
    seq.Tuner.fell_back par.Tuner.fell_back;
  Alcotest.(check (list (pair string int)))
    (what ^ ": failure histogram identical")
    seq.Tuner.failure_histogram par.Tuner.failure_histogram;
  Alcotest.(check (list string))
    (what ^ ": failure list identical and sweep-ordered")
    (List.map Diag.to_string seq.Tuner.failures)
    (List.map Diag.to_string par.Tuner.failures)

let test_tune_deterministic_all_kernels () =
  List.iter
    (fun arch ->
      List.iter
        (fun k ->
          let what =
            Printf.sprintf "%s/%s" arch.Arch.name (Kernels.name_to_string k)
          in
          let seq = Tuner.tune ~jobs:1 arch k in
          let par = Tuner.tune ~jobs:4 arch k in
          check_identical ~what seq par)
        all_kernels)
    archs

let test_tune_deterministic_hostile_space () =
  (* a space where most candidates die: the failure list ordering is
     the part parallelism is most likely to scramble *)
  let space =
    List.concat_map
      (fun j ->
        List.map
          (fun i ->
            {
              Tuner.cand_config =
                { A.Transform.Pipeline.default with jam = [ ("j", j); ("i", i) ] };
              cand_opts = A.Codegen.Emit.default_options;
            })
          [ 2; 8; 32; 64 ])
      [ 1; 4; 16; 64 ]
  in
  let seq = Tuner.tune ~space ~jobs:1 Arch.sandy_bridge Kernels.Gemm in
  let par = Tuner.tune ~space ~jobs:3 Arch.sandy_bridge Kernels.Gemm in
  Alcotest.(check bool) "some candidates discarded" true
    (seq.Tuner.discarded > 0);
  check_identical ~what:"hostile space" seq par

let suite =
  [
    Alcotest.test_case "pool preserves item order" `Quick test_pool_ordered;
    Alcotest.test_case "pool edge cases" `Quick test_pool_empty_and_singleton;
    Alcotest.test_case "pool balances unequal costs" `Quick
      test_pool_unbalanced_costs;
    Alcotest.test_case "pool exception determinism" `Quick
      test_pool_exception_deterministic;
    Alcotest.test_case "tune jobs:4 == jobs:1, all kernels x arches" `Slow
      test_tune_deterministic_all_kernels;
    Alcotest.test_case "tune determinism on a mostly-hostile space" `Quick
      test_tune_deterministic_hostile_space;
  ]
