(* The kernel service runtime: wire protocol round-trips, the two-tier
   registry (bounded LRU + disk), single-flight coalescing, overload
   rejection, deadline degradation and metrics consistency.

   Every concurrency assertion is deterministic — gates (a mutex +
   condition the test opens explicitly) and an injectable clock stand
   in for timing; there are no sleeps. *)

module A = Augem
module Arch = A.Machine.Arch
module Kernels = A.Ir.Kernels
module Tuner = A.Tuner
module Json = A.Json
module S = Augem_service
module Proto = S.Proto
module Registry = S.Registry
module Scheduler = S.Scheduler
module Metrics = S.Metrics
module Server = S.Server

let arch = Arch.sandy_bridge

let tiny_space k =
  match Tuner.space_for k with c :: _ -> [ c ] | [] -> Alcotest.fail "empty space"

(* a real (cheap) sweep result to hand out from stub computes *)
let canned = lazy (Tuner.tune ~space:(tiny_space Kernels.Axpy) arch Kernels.Axpy)

let computed ?(expired = false) () =
  { Registry.c_result = Lazy.force canned; c_deadline_expired = expired }

(* --- gates: explicit open/close instead of sleeps ------------------------- *)

type gate = { gm : Mutex.t; gc : Condition.t; mutable opened : bool }

let gate () = { gm = Mutex.create (); gc = Condition.create (); opened = false }

let open_gate g =
  Mutex.protect g.gm (fun () ->
      g.opened <- true;
      Condition.broadcast g.gc)

let wait_gate g =
  Mutex.lock g.gm;
  while not g.opened do
    Condition.wait g.gc g.gm
  done;
  Mutex.unlock g.gm

(* --- proto ---------------------------------------------------------------- *)

let test_proto_round_trip () =
  let space = tiny_space Kernels.Gemv in
  let rq =
    {
      Proto.rq_id = Json.Int 7;
      rq_op =
        Proto.Op_tune
          {
            Proto.tq_kernel = Kernels.Gemv;
            tq_arch = Arch.piledriver;
            tq_et = A.Machine.Etype.F64;
            tq_space = Some space;
            tq_deadline_ms = Some 250.;
          };
    }
  in
  let line = Json.to_string (Proto.request_to_json rq) in
  match Proto.parse_request line with
  | Error (_, e) -> Alcotest.failf "round-trip failed: %s" e.Proto.e_detail
  | Ok rq' -> (
      Alcotest.(check bool) "id" true (rq'.Proto.rq_id = Json.Int 7);
      match rq'.Proto.rq_op with
      | Proto.Op_tune tq ->
          Alcotest.(check string) "kernel" "gemv"
            (Kernels.name_to_string tq.Proto.tq_kernel);
          Alcotest.(check string) "arch" "piledriver" tq.Proto.tq_arch.Arch.name;
          Alcotest.(check bool) "space" true (tq.Proto.tq_space = Some space);
          Alcotest.(check (option (float 0.))) "deadline" (Some 250.)
            tq.Proto.tq_deadline_ms
      | _ -> Alcotest.fail "wrong op")

let bad_code line =
  match Proto.parse_request line with
  | Ok _ -> Alcotest.failf "parse %S unexpectedly succeeded" line
  | Error (_, e) -> e.Proto.e_code

let test_proto_bad_requests () =
  let chk l = Alcotest.(check string) l Proto.e_bad_request (bad_code l) in
  chk "not json at all";
  chk {|{"id":1}|};
  chk {|{"id":1,"op":"frobnicate"}|};
  chk {|{"id":1,"op":"tune","kernel":"nope","arch":"sandybridge"}|};
  chk {|{"id":1,"op":"tune","kernel":"axpy","arch":"vax"}|};
  chk {|{"id":1,"op":"tune","kernel":"axpy","arch":"sandybridge","space":[]}|};
  chk {|{"id":1,"op":"tune","kernel":"axpy","arch":"sandybridge","space":[{"bogus":1}]}|};
  (* the best-effort id is recovered for the error response *)
  match
    Proto.parse_request {|{"id":41,"op":"frobnicate"}|}
  with
  | Error (id, _) -> Alcotest.(check bool) "id recovered" true (id = Json.Int 41)
  | Ok _ -> Alcotest.fail "unexpected parse"

let test_candidate_round_trip () =
  List.iter
    (fun c ->
      match Proto.candidate_of_json (Proto.candidate_to_json c) with
      | Ok c' -> Alcotest.(check bool) "candidate" true (c = c')
      | Error e -> Alcotest.failf "candidate round-trip failed: %s" e)
    (Tuner.space_for Kernels.Gemm)

(* --- registry: tiers and LRU ---------------------------------------------- *)

let test_registry_memory_tier () =
  let t = Registry.create ~lru_capacity:4 () in
  let computes = ref 0 in
  let compute () = incr computes; computed () in
  let space = tiny_space Kernels.Axpy in
  let o1 =
    Registry.find_or_compute t ~arch ~kernel:Kernels.Axpy ~space ~compute
  in
  let o2 =
    Registry.find_or_compute t ~arch ~kernel:Kernels.Axpy ~space ~compute
  in
  Alcotest.(check int) "one compute" 1 !computes;
  Alcotest.(check string) "first is tuned" "tuned"
    (Proto.tier_to_string o1.Registry.o_tier);
  Alcotest.(check string) "second is memory" "memory"
    (Proto.tier_to_string o2.Registry.o_tier);
  Alcotest.(check int) "lru holds it" 1 (Registry.lru_size t)

let test_registry_lru_eviction () =
  let t = Registry.create ~lru_capacity:1 () in
  let computes = ref 0 in
  let compute () = incr computes; computed () in
  let go k = Registry.find_or_compute t ~arch ~kernel:k ~space:(tiny_space k) ~compute in
  ignore (go Kernels.Axpy);
  ignore (go Kernels.Dot) (* evicts axpy: capacity 1 *);
  Alcotest.(check int) "bounded" 1 (Registry.lru_size t);
  let o = go Kernels.Axpy in
  Alcotest.(check int) "evicted key recomputes" 3 !computes;
  Alcotest.(check string) "tier" "tuned" (Proto.tier_to_string o.Registry.o_tier)

let test_registry_disk_tier () =
  let dir = Filename.temp_dir "augem-serve-disk" "" in
  let computes = ref 0 in
  let compute () = incr computes; computed () in
  let space = tiny_space Kernels.Scal in
  let events = ref [] in
  let on_event ~arch:_ ~kernel:_ ev = events := ev :: !events in
  let t1 = Registry.create ~cache_dir:dir ~on_event () in
  ignore (Registry.find_or_compute t1 ~arch ~kernel:Kernels.Scal ~space ~compute);
  (* a fresh registry with an empty L1 but the same disk dir *)
  let t2 = Registry.create ~cache_dir:dir ~on_event () in
  let o = Registry.find_or_compute t2 ~arch ~kernel:Kernels.Scal ~space ~compute in
  Alcotest.(check int) "disk hit avoids the sweep" 1 !computes;
  Alcotest.(check string) "tier" "disk" (Proto.tier_to_string o.Registry.o_tier);
  Alcotest.(check bool) "store event seen" true
    (List.exists (function Tuner.Ev_store -> true | _ -> false) !events);
  Alcotest.(check bool) "disk-hit event seen" true
    (List.exists (function Tuner.Ev_disk_hit -> true | _ -> false) !events)

let test_registry_degraded_not_cached () =
  let t = Registry.create () in
  let computes = ref 0 in
  let compute () = incr computes; computed ~expired:true () in
  let space = tiny_space Kernels.Axpy in
  let o = Registry.find_or_compute t ~arch ~kernel:Kernels.Axpy ~space ~compute in
  Alcotest.(check bool) "degraded" true o.Registry.o_degraded;
  Alcotest.(check int) "not inserted" 0 (Registry.lru_size t);
  ignore (Registry.find_or_compute t ~arch ~kernel:Kernels.Axpy ~space ~compute);
  Alcotest.(check int) "recomputed" 2 !computes

(* --- single flight --------------------------------------------------------- *)

let test_single_flight () =
  let t = Registry.create () in
  let g = gate () in
  let computes = ref 0 in
  let cm = Mutex.create () in
  let compute () =
    Mutex.protect cm (fun () -> incr computes);
    wait_gate g;
    computed ()
  in
  let n = 5 in
  let space = tiny_space Kernels.Axpy in
  let tiers = Array.make n "" in
  let threads =
    List.init n (fun i ->
        Thread.create
          (fun () ->
            let o =
              Registry.find_or_compute t ~arch ~kernel:Kernels.Axpy ~space
                ~compute
            in
            tiers.(i) <- Proto.tier_to_string o.Registry.o_tier)
          ())
  in
  (* only open the gate once every follower has attached to the flight:
     coalescing is then a fact, not a race *)
  Registry.wait_coalesced t (n - 1);
  open_gate g;
  List.iter Thread.join threads;
  Alcotest.(check int) "exactly one sweep" 1 !computes;
  Alcotest.(check int) "everyone else coalesced" (n - 1)
    (Registry.coalesced_total t);
  let count tier =
    Array.fold_left (fun acc s -> if s = tier then acc + 1 else acc) 0 tiers
  in
  Alcotest.(check int) "one tuned" 1 (count "tuned");
  Alcotest.(check int) "n-1 coalesced" (n - 1) (count "coalesced")

let test_single_flight_failure_shared () =
  let t = Registry.create () in
  let g = gate () in
  let compute () = wait_gate g; raise (Proto.Overload "synthetic") in
  let n = 3 in
  let space = tiny_space Kernels.Dot in
  let failures = ref 0 in
  let fm = Mutex.create () in
  let threads =
    List.init n (fun _ ->
        Thread.create
          (fun () ->
            match
              Registry.find_or_compute t ~arch ~kernel:Kernels.Dot ~space
                ~compute
            with
            | exception Proto.Overload _ ->
                Mutex.protect fm (fun () -> incr failures)
            | _ -> ())
          ())
  in
  Registry.wait_coalesced t (n - 1);
  open_gate g;
  List.iter Thread.join threads;
  Alcotest.(check int) "every waiter shares the failure" n !failures;
  (* the failed flight must not wedge the key *)
  let o =
    Registry.find_or_compute t ~arch ~kernel:Kernels.Dot ~space
      ~compute:(fun () -> computed ())
  in
  Alcotest.(check string) "key recovers" "tuned"
    (Proto.tier_to_string o.Registry.o_tier)

(* --- scheduler: overload and deadlines ------------------------------------ *)

let test_scheduler_overload () =
  let sched = Scheduler.create ~workers:1 ~capacity:1 () in
  let g = gate () in
  (* occupy the single worker... *)
  let busy = Scheduler.submit sched (fun () -> wait_gate g) in
  Alcotest.(check bool) "worker job admitted" true (busy <> None);
  (* ...wait until it has actually been picked up (the queue is empty
     again), then fill the queue slot *)
  while Scheduler.pending sched > 0 do Thread.yield () done;
  let queued = Scheduler.submit sched (fun () -> ()) in
  Alcotest.(check bool) "queue slot admitted" true (queued <> None);
  let rejected = Scheduler.submit sched (fun () -> ()) in
  Alcotest.(check bool) "at capacity: rejected" true (rejected = None);
  open_gate g;
  (match busy with Some f -> ignore (Scheduler.await f) | None -> ());
  (match queued with Some f -> ignore (Scheduler.await f) | None -> ());
  Scheduler.shutdown sched

let test_scheduler_deadline_expiry () =
  let clock = ref 0. in
  let sched = Scheduler.create ~workers:1 ~capacity:4 ~now:(fun () -> !clock) () in
  let g = gate () in
  let busy = Scheduler.submit sched (fun () -> wait_gate g) in
  while Scheduler.pending sched > 0 do Thread.yield () done;
  let ran = ref false in
  let doomed =
    Scheduler.submit sched ~deadline:1.0 (fun () -> ran := true)
  in
  clock := 2.0 (* the deadline passes while the job is still queued *);
  open_gate g;
  (match doomed with
  | Some f ->
      (match Scheduler.await f with
      | Scheduler.Expired -> ()
      | _ -> Alcotest.fail "expected Expired")
  | None -> Alcotest.fail "submit rejected");
  Alcotest.(check bool) "expired job never ran" false !ran;
  (match busy with Some f -> ignore (Scheduler.await f) | None -> ());
  Scheduler.shutdown sched

(* --- server: end to end through handle_line -------------------------------- *)

let space_json k =
  Json.to_string (Json.List (List.map Proto.candidate_to_json (tiny_space k)))

let tune_line ?deadline_ms ?(id = 1) k =
  Printf.sprintf
    {|{"id":%d,"op":"tune","kernel":"%s","arch":"sandybridge"%s,"space":%s}|}
    id
    (Kernels.name_to_string k)
    (match deadline_ms with
    | Some ms -> Printf.sprintf {|,"deadline_ms":%g|} ms
    | None -> "")
    (space_json k)

let reply_of line =
  match Json.parse line with
  | Error e -> Alcotest.failf "unparsable response %s: %s" line e
  | Ok j -> j

let jbool path j =
  match Json.member path j with Some (Json.Bool b) -> b | _ -> false

let jstr j path =
  match Json.member path j with Some (Json.String s) -> s | _ -> "<missing>"

let test_server_scripted_sequence () =
  let server = Server.create () in
  let r1 = reply_of (Server.handle_line server (tune_line Kernels.Axpy)) in
  Alcotest.(check bool) "ok" true (jbool "ok" r1);
  Alcotest.(check bool) "not degraded" false (jbool "degraded" r1);
  let prov1 = Option.get (Json.member "provenance" r1) in
  Alcotest.(check string) "cold tier" "tuned" (jstr prov1 "tier");
  let r2 = reply_of (Server.handle_line server (tune_line Kernels.Axpy)) in
  let prov2 = Option.get (Json.member "provenance" r2) in
  Alcotest.(check string) "warm tier" "memory" (jstr prov2 "tier");
  ignore (Server.handle_line server {|{"id":3,"op":"ping"}|});
  ignore (Server.handle_line server "this is not json");
  let m = Server.metrics server in
  Alcotest.(check int) "tune requests" 2 (Metrics.get m "requests.tune");
  Alcotest.(check int) "ping requests" 1 (Metrics.get m "requests.ping");
  Alcotest.(check int) "bad requests" 1 (Metrics.get m "requests.bad");
  Alcotest.(check int) "tuned tier" 1 (Metrics.get m "tiers.memory");
  Alcotest.(check int) "memory tier" 1 (Metrics.get m "tiers.tuned");
  (* the stats reply agrees with the counters *)
  let rs = reply_of (Server.handle_line server {|{"id":4,"op":"stats"}|}) in
  let stats = Option.get (Json.member "stats" rs) in
  let requests = Option.get (Json.member "requests" stats) in
  Alcotest.(check bool) "stats.requests.tune" true
    (Json.member "tune" requests = Some (Json.Int 2));
  Alcotest.(check bool) "stats counted itself" true
    (Json.member "stats" requests = Some (Json.Int 1));
  (* shutdown is acknowledged, then tune is refused *)
  let rsd = reply_of (Server.handle_line server {|{"id":5,"op":"shutdown"}|}) in
  Alcotest.(check bool) "shutdown ok" true (jbool "ok" rsd);
  let refused = reply_of (Server.handle_line server (tune_line Kernels.Dot)) in
  Alcotest.(check string) "tune while stopping" Proto.e_shutting_down
    (jstr (Option.get (Json.member "error" refused)) "code");
  Server.drain server

let test_server_deadline_degrades () =
  let clock = ref 100. in
  let config = { Server.default_config with cfg_workers = 1; cfg_queue = 4 } in
  let server = Server.create ~now:(fun () -> !clock) ~config () in
  let sched = Server.scheduler server in
  let g = gate () in
  (* park the only worker so the tune job sits in the queue *)
  let busy = Scheduler.submit sched (fun () -> wait_gate g) in
  while Scheduler.pending sched > 0 do Thread.yield () done;
  let resp = ref Json.Null in
  let requester =
    Thread.create
      (fun () ->
        resp :=
          reply_of
            (Server.handle_line server
               (tune_line ~deadline_ms:50. Kernels.Gemv)))
      ()
  in
  (* the request is queued once the scheduler holds one pending job *)
  while Scheduler.pending sched < 1 do Thread.yield () done;
  clock := 101. (* 1000 ms later: the 50 ms deadline is long gone *);
  open_gate g;
  Thread.join requester;
  let r = !resp in
  Alcotest.(check bool) "ok" true (jbool "ok" r);
  Alcotest.(check bool) "degraded" true (jbool "degraded" r);
  let prov = Option.get (Json.member "provenance" r) in
  Alcotest.(check bool) "deadline_expired" true (jbool "deadline_expired" prov);
  Alcotest.(check bool) "baseline fell back" true (jbool "fell_back" prov);
  let m = Server.metrics server in
  Alcotest.(check int) "degraded.deadline" 1 (Metrics.get m "degraded.deadline");
  Alcotest.(check int) "degraded answers are not cached" 0
    (Registry.lru_size (Server.registry server));
  (match busy with Some f -> ignore (Scheduler.await f) | None -> ());
  Server.drain server

let test_server_overload_rejects () =
  let config = { Server.default_config with cfg_workers = 1; cfg_queue = 1 } in
  let server = Server.create ~config () in
  let sched = Server.scheduler server in
  let g = gate () in
  let busy = Scheduler.submit sched (fun () -> wait_gate g) in
  while Scheduler.pending sched > 0 do Thread.yield () done;
  let filler = Scheduler.submit sched (fun () -> ()) in
  Alcotest.(check bool) "queue full" true (filler <> None);
  (* worker parked + queue full: admission must reject, structurally *)
  let r = reply_of (Server.handle_line server (tune_line Kernels.Axpy)) in
  Alcotest.(check bool) "not ok" false (jbool "ok" r);
  Alcotest.(check string) "E_overload" Proto.e_overload
    (jstr (Option.get (Json.member "error" r)) "code");
  let m = Server.metrics server in
  Alcotest.(check int) "rejects.overload" 1 (Metrics.get m "rejects.overload");
  open_gate g;
  (match busy with Some f -> ignore (Scheduler.await f) | None -> ());
  (match filler with Some f -> ignore (Scheduler.await f) | None -> ());
  Server.drain server

(* --- metrics --------------------------------------------------------------- *)

let test_metrics_snapshot_consistency () =
  let m = Metrics.create () in
  Metrics.incr_request m "tune";
  Metrics.incr_request m "tune";
  Metrics.incr_tier m Proto.T_memory;
  Metrics.incr_tier m Proto.T_tuned;
  Metrics.incr_overload m;
  Metrics.record_cache_event m
    (Tuner.Ev_disk_corrupt
       (A.Verify.Diag.make ~code:A.Verify.Diag.E_cache_corrupt
          ~stage:A.Verify.Diag.S_cache ~kernel:"axpy" ~arch:"sandybridge"
          ~config:"-" ~detail:"synthetic" ()));
  Metrics.record_cache_event m Tuner.Ev_store;
  Metrics.observe_request_ms m 0.05;
  Metrics.observe_request_ms m 5000.;
  Alcotest.(check int) "requests.tune" 2 (Metrics.get m "requests.tune");
  Alcotest.(check int) "tiers.memory" 1 (Metrics.get m "tiers.memory");
  Alcotest.(check int) "rejects.overload" 1 (Metrics.get m "rejects.overload");
  Alcotest.(check int) "cache.disk_corrupt" 1 (Metrics.get m "cache.disk_corrupt");
  Alcotest.(check int) "cache.stores" 1 (Metrics.get m "cache.stores");
  let j = Metrics.snapshot m in
  let hist = Option.get (Json.member "request_ms" j) in
  (match Json.member "count" hist with
  | Some (Json.Int 2) -> ()
  | v ->
      Alcotest.failf "histogram count: %s"
        (match v with Some v -> Json.to_string v | None -> "missing"));
  (* bucket counts are cumulative-style per-bucket: they sum to count *)
  match Json.member "buckets" hist with
  | Some (Json.List bs) ->
      let total =
        List.fold_left
          (fun acc b ->
            match Json.member "n" b with Some (Json.Int n) -> acc + n | _ -> acc)
          0 bs
      in
      Alcotest.(check int) "buckets sum to count" 2 total
  | _ -> Alcotest.fail "missing buckets"

let suite =
  [
    Alcotest.test_case "proto round-trip" `Quick test_proto_round_trip;
    Alcotest.test_case "proto bad requests" `Quick test_proto_bad_requests;
    Alcotest.test_case "candidate round-trip" `Quick test_candidate_round_trip;
    Alcotest.test_case "registry memory tier" `Quick test_registry_memory_tier;
    Alcotest.test_case "registry LRU eviction" `Quick test_registry_lru_eviction;
    Alcotest.test_case "registry disk tier" `Quick test_registry_disk_tier;
    Alcotest.test_case "degraded not cached" `Quick test_registry_degraded_not_cached;
    Alcotest.test_case "single flight coalesces" `Quick test_single_flight;
    Alcotest.test_case "single flight shares failure" `Quick
      test_single_flight_failure_shared;
    Alcotest.test_case "scheduler overload" `Quick test_scheduler_overload;
    Alcotest.test_case "scheduler deadline expiry" `Quick
      test_scheduler_deadline_expiry;
    Alcotest.test_case "server scripted sequence" `Quick
      test_server_scripted_sequence;
    Alcotest.test_case "server deadline degrades" `Quick
      test_server_deadline_degrades;
    Alcotest.test_case "server overload rejects" `Quick
      test_server_overload_rejects;
    Alcotest.test_case "metrics snapshot" `Quick test_metrics_snapshot_consistency;
  ]
