(* The persistent tuning cache: content addressing (any key component
   change is a miss), corrupt-file tolerance (a bad file is a miss plus
   a structured diagnostic, never a crash), atomicity under concurrent
   writers, and the fallback-poisoning rule (fell_back results are
   never memoized or persisted). *)

module A = Augem
module Arch = A.Machine.Arch
module Kernels = A.Ir.Kernels
module Tuner = A.Tuner
module Cache = A.Tuning_cache
module Pipeline = A.Transform.Pipeline
module Diag = A.Verify.Diag

let fresh_dir () = Filename.temp_dir "augem-cache-test" ""

let key ?(version = "v1") ?(arch = "snb") ?(kernel = "gemm") ?(fp = "aaaa") ()
    =
  ( Cache.keydesc ~version ~arch ~kernel ~fingerprint:fp,
    Cache.digest ~version ~arch ~kernel ~fingerprint:fp )

let store_ok ~dir ~keydesc ~digest v =
  match Cache.store ~dir ~arch:"snb" ~kernel:"gemm" ~keydesc ~digest v with
  | None -> ()
  | Some d -> Alcotest.failf "store failed: %s" (Diag.to_string d)

let load ~dir ~keydesc ~digest : string Cache.load_result =
  Cache.load ~dir ~arch:"snb" ~kernel:"gemm" ~keydesc ~digest

let test_roundtrip_and_digest_miss () =
  let dir = fresh_dir () in
  let keydesc, digest = key () in
  store_ok ~dir ~keydesc ~digest "payload-one";
  (match load ~dir ~keydesc ~digest with
  | Cache.Hit v -> Alcotest.(check string) "roundtrip" "payload-one" v
  | Cache.Miss -> Alcotest.fail "expected hit, got miss"
  | Cache.Corrupt d -> Alcotest.failf "expected hit: %s" (Diag.to_string d));
  (* each key component moves the content address: all misses *)
  List.iter
    (fun (what, (kd, dg)) ->
      match load ~dir ~keydesc:kd ~digest:dg with
      | Cache.Miss -> ()
      | Cache.Hit _ -> Alcotest.failf "%s change must miss" what
      | Cache.Corrupt d ->
          Alcotest.failf "%s change must miss, got corrupt: %s" what
            (Diag.to_string d))
    [
      ("arch", key ~arch:"piledriver" ());
      ("kernel", key ~kernel:"gemv" ());
      ("fingerprint", key ~fp:"bbbb" ());
      ("version", key ~version:"v2" ());
    ]

let expect_corrupt what = function
  | Cache.Corrupt d ->
      Alcotest.(check string)
        (what ^ " classified cache-corrupt")
        (Diag.code_to_string Diag.E_cache_corrupt)
        (Diag.code_to_string d.Diag.d_code);
      Alcotest.(check string)
        (what ^ " at the cache stage")
        (Diag.stage_to_string Diag.S_cache)
        (Diag.stage_to_string d.Diag.d_stage)
  | Cache.Hit _ -> Alcotest.failf "%s: expected corrupt, got hit" what
  | Cache.Miss -> Alcotest.failf "%s: expected corrupt, got miss" what

let test_corrupt_files_are_tolerated () =
  let dir = fresh_dir () in
  let keydesc, digest = key () in
  let file = Cache.path ~dir ~digest in
  let write contents =
    Out_channel.with_open_bin file (fun oc ->
        Out_channel.output_string oc contents)
  in
  (* plain garbage *)
  write "not a cache file at all";
  expect_corrupt "garbage" (load ~dir ~keydesc ~digest);
  (* a valid entry truncated mid-payload *)
  store_ok ~dir ~keydesc ~digest (String.concat "," (List.init 200 string_of_int));
  let valid = In_channel.with_open_bin file In_channel.input_all in
  write (String.sub valid 0 (String.length valid - 7));
  expect_corrupt "truncation" (load ~dir ~keydesc ~digest);
  (* a valid entry whose payload bytes were flipped: checksum catches it *)
  let flipped = Bytes.of_string valid in
  Bytes.set flipped
    (Bytes.length flipped - 3)
    (Char.chr (Char.code (Bytes.get flipped (Bytes.length flipped - 3)) lxor 0xFF));
  write (Bytes.to_string flipped);
  expect_corrupt "bit flip" (load ~dir ~keydesc ~digest);
  (* a file written under another key landing on this digest (collision
     or hand-copied file): the embedded key description rejects it *)
  let other_kd, _ = key ~kernel:"gemv" () in
  store_ok ~dir ~keydesc:other_kd ~digest "foreign";
  expect_corrupt "key mismatch" (load ~dir ~keydesc ~digest);
  (* and after all of that, a fresh store heals the entry *)
  store_ok ~dir ~keydesc ~digest "healed";
  match load ~dir ~keydesc ~digest with
  | Cache.Hit v -> Alcotest.(check string) "healed" "healed" v
  | _ -> Alcotest.fail "store after corruption must hit"

let test_tuned_persists_and_survives_corruption () =
  let dir = fresh_dir () in
  let arch = Arch.sandy_bridge in
  (* the in-memory memo is process-wide and other suites may already
     hold the default (arch, kernel, space) key — in which case tuned
     answers from memory and never touches disk.  Reversing the space
     keeps it healthy but gives this test its own content address. *)
  let space = List.rev (Tuner.space_for Kernels.Gemv) in
  let r1 = Tuner.tuned ~cache_dir:dir ~space arch Kernels.Gemv in
  Alcotest.(check bool) "healthy sweep" false r1.Tuner.fell_back;
  let fingerprint = Tuner.space_fingerprint space in
  let keydesc =
    Cache.keydesc ~version:Tuner.tuner_version ~arch:arch.Arch.name
      ~kernel:"gemv" ~fingerprint
  in
  let digest =
    Cache.digest ~version:Tuner.tuner_version ~arch:arch.Arch.name
      ~kernel:"gemv" ~fingerprint
  in
  let file = Cache.path ~dir ~digest in
  Alcotest.(check bool) "cache file written" true (Sys.file_exists file);
  (match
     Cache.load ~dir ~arch:arch.Arch.name ~kernel:"gemv" ~keydesc ~digest
   with
  | Cache.Hit (r : Tuner.result) ->
      Alcotest.(check (float 0.0))
        "persisted result carries the score" r1.Tuner.best_score
        r.Tuner.best_score
  | _ -> Alcotest.fail "expected a disk hit");
  (* corrupt the file: tuned must neither crash nor trust it *)
  Out_channel.with_open_bin file (fun oc ->
      Out_channel.output_string oc "scribbled over");
  let corrupt_before = Cache.stats.Cache.corrupt in
  let r2 = Tuner.tuned ~cache_dir:dir ~space arch Kernels.Gemv in
  Alcotest.(check (float 0.0))
    "same result after corruption" r1.Tuner.best_score r2.Tuner.best_score;
  (* r2 came from the in-memory memo (same process), so the corrupt
     file was not even read; evict nothing and probe the disk layer
     directly to confirm the corrupt path counts *)
  (match
     Cache.load ~dir ~arch:arch.Arch.name ~kernel:"gemv" ~keydesc ~digest
   with
  | Cache.Corrupt _ -> ()
  | _ -> Alcotest.fail "scribbled file must read corrupt");
  Alcotest.(check bool) "corrupt counter advanced" true
    (Cache.stats.Cache.corrupt > corrupt_before)

let test_concurrent_writers_leave_valid_file () =
  let dir = fresh_dir () in
  let keydesc, digest = key ~kernel:"race" () in
  let payload = String.concat "-" (List.init 500 string_of_int) in
  let writer () =
    for _ = 1 to 30 do
      (match
         Cache.store ~dir ~arch:"snb" ~kernel:"race" ~keydesc ~digest payload
       with
      | None -> ()
      | Some d -> Alcotest.failf "racing store failed: %s" (Diag.to_string d));
      match load ~dir ~keydesc ~digest with
      | Cache.Hit _ | Cache.Miss -> ()
      | Cache.Corrupt d ->
          Alcotest.failf "reader saw a torn file: %s" (Diag.to_string d)
    done
  in
  let d1 = Domain.spawn writer and d2 = Domain.spawn writer in
  writer ();
  Domain.join d1;
  Domain.join d2;
  match load ~dir ~keydesc ~digest with
  | Cache.Hit (v : string) -> Alcotest.(check string) "final file valid" payload v
  | _ -> Alcotest.fail "expected a valid final file"

(* Two domains racing through the full memoized path on one key: the
   mutex-guarded memo and the atomic store must leave a valid entry. *)
let test_concurrent_tuned_same_key () =
  let dir = fresh_dir () in
  let arch = Arch.piledriver in
  (* reversed space: a content address no other suite has memoized, so
     both domains really go through the full compute-and-store path *)
  let space = List.rev (Tuner.space_for Kernels.Scal) in
  let t1 =
    Domain.spawn (fun () -> Tuner.tuned ~cache_dir:dir ~space arch Kernels.Scal)
  in
  let t2 =
    Domain.spawn (fun () -> Tuner.tuned ~cache_dir:dir ~space arch Kernels.Scal)
  in
  let r1 = Domain.join t1 and r2 = Domain.join t2 in
  Alcotest.(check (float 0.0))
    "both domains agree" r1.Tuner.best_score r2.Tuner.best_score;
  let fingerprint = Tuner.space_fingerprint space in
  let keydesc =
    Cache.keydesc ~version:Tuner.tuner_version ~arch:arch.Arch.name
      ~kernel:"scal" ~fingerprint
  in
  let digest =
    Cache.digest ~version:Tuner.tuner_version ~arch:arch.Arch.name
      ~kernel:"scal" ~fingerprint
  in
  match
    Cache.load ~dir ~arch:arch.Arch.name ~kernel:"scal" ~keydesc ~digest
  with
  | Cache.Hit (r : Tuner.result) ->
      Alcotest.(check (float 0.0))
        "persisted entry matches" r1.Tuner.best_score r.Tuner.best_score
  | Cache.Miss -> Alcotest.fail "no cache file after racing tuned calls"
  | Cache.Corrupt d -> Alcotest.failf "torn cache file: %s" (Diag.to_string d)

(* The fallback-poisoning bugfix: a sweep that degraded to the safe
   baseline (hostile caller-supplied space) must be neither memoized
   nor persisted, and must not shadow the healthy default-space
   entry. *)
let hostile_space =
  List.map
    (fun j ->
      {
        Tuner.cand_config =
          { Pipeline.default with jam = [ ("j", j); ("i", 64) ] };
        cand_opts = A.Codegen.Emit.default_options;
      })
    [ 32; 64 ]

let test_fell_back_never_cached () =
  let dir = fresh_dir () in
  let arch = Arch.sandy_bridge in
  let r1 = Tuner.tuned ~cache_dir:dir ~space:hostile_space arch Kernels.Gemm in
  Alcotest.(check bool) "hostile space fell back" true r1.Tuner.fell_back;
  (* not memoized: a second call re-tunes (distinct result object)
     rather than replaying the poisoned one *)
  let r2 = Tuner.tuned ~cache_dir:dir ~space:hostile_space arch Kernels.Gemm in
  Alcotest.(check bool) "fallback not memoized" false (r1 == r2);
  (* not persisted: no disk entry under the hostile fingerprint *)
  let fingerprint = Tuner.space_fingerprint hostile_space in
  let keydesc =
    Cache.keydesc ~version:Tuner.tuner_version ~arch:arch.Arch.name
      ~kernel:"gemm" ~fingerprint
  in
  let digest =
    Cache.digest ~version:Tuner.tuner_version ~arch:arch.Arch.name
      ~kernel:"gemm" ~fingerprint
  in
  (match
     Cache.load ~dir ~arch:arch.Arch.name ~kernel:"gemm" ~keydesc ~digest
   with
  | Cache.Miss -> ()
  | Cache.Hit _ -> Alcotest.fail "fallback result was persisted"
  | Cache.Corrupt d -> Alcotest.failf "unexpected: %s" (Diag.to_string d));
  (* and a healthy default-space sweep on the same (arch, kernel) is
     untouched by the hostile one *)
  let healthy = Tuner.tuned ~cache_dir:dir arch Kernels.Gemm in
  Alcotest.(check bool) "default space unaffected" false
    healthy.Tuner.fell_back;
  Alcotest.(check bool) "healthy result, not the baseline" true
    (healthy.Tuner.best_score > 0.)

(* A fallback entry planted on disk (foreign writer, older tuner) must
   be ignored on load, not replayed. *)
let test_planted_fallback_entry_ignored () =
  let dir = fresh_dir () in
  let arch = Arch.sandy_bridge in
  let fallback = Tuner.tune ~space:hostile_space arch Kernels.Gemm in
  Alcotest.(check bool) "planted result fell back" true
    fallback.Tuner.fell_back;
  (* plant it under the DEFAULT space's content address *)
  let fingerprint = Tuner.space_fingerprint (Tuner.space_for Kernels.Gemm) in
  let keydesc =
    Cache.keydesc ~version:Tuner.tuner_version ~arch:arch.Arch.name
      ~kernel:"gemm" ~fingerprint
  in
  let digest =
    Cache.digest ~version:Tuner.tuner_version ~arch:arch.Arch.name
      ~kernel:"gemm" ~fingerprint
  in
  store_ok ~dir ~keydesc ~digest fallback;
  let r = Tuner.tuned ~cache_dir:dir arch Kernels.Gemm in
  Alcotest.(check bool) "planted fallback ignored" false r.Tuner.fell_back;
  Alcotest.(check bool) "re-tuned to a real winner" true
    (r.Tuner.best_score > 0.)

(* The `augem cache` inspection surface: [entries] lists only cache
   files (sorted, sized, header-validated without unmarshalling),
   [validate] agrees with what [load] would accept, and [clear] removes
   exactly the cache entries. *)
let test_entries_validate_clear () =
  let dir = fresh_dir () in
  Alcotest.(check int) "empty dir" 0 (List.length (Cache.entries ~dir));
  Alcotest.(check int) "missing dir" 0
    (List.length (Cache.entries ~dir:(Filename.concat dir "nope")));
  let keydesc, digest = key () in
  store_ok ~dir ~keydesc ~digest "payload-one";
  let keydesc2, digest2 = key ~kernel:"gemv" () in
  store_ok ~dir ~keydesc:keydesc2 ~digest:digest2 "payload-two";
  (* a corrupt entry and a foreign file *)
  let bad = Cache.path ~dir ~digest:"feedfacefeedfacefeedfacefeedface" in
  Out_channel.with_open_bin bad (fun oc ->
      Out_channel.output_string oc "not a cache file");
  Out_channel.with_open_bin (Filename.concat dir "README.txt") (fun oc ->
      Out_channel.output_string oc "left alone");
  let es = Cache.entries ~dir in
  Alcotest.(check int) "three cache entries, foreign file skipped" 3
    (List.length es);
  Alcotest.(check bool) "sorted by file name" true
    (let names = List.map (fun e -> e.Cache.e_file) es in
     names = List.sort String.compare names);
  List.iter
    (fun e ->
      Alcotest.(check bool) ("sized: " ^ e.Cache.e_file) true (e.Cache.e_bytes > 0))
    es;
  let valid, corrupt =
    List.partition (fun e -> Result.is_ok e.Cache.e_key) es
  in
  Alcotest.(check int) "two valid" 2 (List.length valid);
  Alcotest.(check int) "one corrupt" 1 (List.length corrupt);
  (* validate returns the embedded keydesc, matching what was stored *)
  Alcotest.(check bool) "keydescs recovered" true
    (List.sort compare (List.map (fun e -> e.Cache.e_key) valid)
    = List.sort compare [ Ok keydesc; Ok keydesc2 ]);
  (* clear removes the cache entries (even corrupt ones), nothing else *)
  Alcotest.(check int) "cleared three" 3 (Cache.clear ~dir);
  Alcotest.(check int) "now empty" 0 (List.length (Cache.entries ~dir));
  Alcotest.(check bool) "foreign file untouched" true
    (Sys.file_exists (Filename.concat dir "README.txt"))

let suite =
  [
    Alcotest.test_case "roundtrip + per-component digest miss" `Quick
      test_roundtrip_and_digest_miss;
    Alcotest.test_case "entries/validate/clear inspection" `Quick
      test_entries_validate_clear;
    Alcotest.test_case "corrupt files tolerated (5 modes)" `Quick
      test_corrupt_files_are_tolerated;
    Alcotest.test_case "tuned persists; survives corruption" `Quick
      test_tuned_persists_and_survives_corruption;
    Alcotest.test_case "concurrent writers leave a valid file" `Quick
      test_concurrent_writers_leave_valid_file;
    Alcotest.test_case "concurrent tuned on one key" `Quick
      test_concurrent_tuned_same_key;
    Alcotest.test_case "fell_back never memoized or persisted" `Quick
      test_fell_back_never_cached;
    Alcotest.test_case "planted fallback disk entry ignored" `Quick
      test_planted_fallback_entry_ignored;
  ]
