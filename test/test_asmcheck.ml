(* The static machine-code verifier: per-lint unit tests on hand-built
   programs, a zero-findings sweep over the shipped kernel corpus and a
   sampled slice of the tuning space, and the asm-level mutation
   meta-test (the static analogue of test/robustness/test_faults.ml:
   inject faults the checker must catch, measure the detection rate). *)

module A = Augem
module Insn = A.Machine.Insn
module Reg = A.Machine.Reg
module Kernels = A.Ir.Kernels
module Pipeline = A.Transform.Pipeline
module Asmcheck = A.Analysis.Asmcheck
module Diag = A.Verify.Diag
module Chaos = A.Chaos

let prog insns = { Insn.prog_name = "t"; prog_insns = insns }
let m ?index ?(disp = 0) base = Insn.mem ?index ~disp base

(* Precise entry state with no arguments: only callee-saved + rsp. *)
let bare = Asmcheck.config_for ~avx:true ~params:[]
let lax = Asmcheck.conservative ~avx:true

let has l fs = List.exists (fun f -> f.Asmcheck.f_lint = l) fs
let has_error l fs = has l (Asmcheck.errors fs)

let check_has ?(config = bare) name lint insns =
  let fs = Asmcheck.check ~config (prog insns) in
  Alcotest.(check bool)
    (name ^ ": reports " ^ Asmcheck.lint_name lint)
    true (has lint fs)

let check_clean ?(config = bare) name insns =
  let fs = Asmcheck.check ~config (prog insns) in
  Alcotest.(check (list string))
    (name ^ ": no findings")
    []
    (List.map Asmcheck.finding_to_string fs)

(* --- per-lint unit tests ------------------------------------------- *)

let test_malformed_cfg () =
  check_has "jump to nowhere" Asmcheck.L_malformed_cfg
    [ Insn.Jmp "nowhere"; Insn.Ret ];
  check_has "no ret" Asmcheck.L_malformed_cfg [ Insn.Movri (Reg.Rax, 1) ];
  check_has "duplicate label" Asmcheck.L_malformed_cfg
    [ Insn.Label "l"; Insn.Label "l"; Insn.Ret ]

let test_undef_read () =
  check_has "fp op on undefined sources" Asmcheck.L_undef_read
    [
      Insn.Vop { op = Insn.Fadd; w = Insn.W128; dst = 3; src1 = 4; src2 = 5 };
      Insn.Ret;
    ];
  (* the same program is clean under the conservative entry state,
     where xmm0-7 may carry arguments *)
  let fs =
    Asmcheck.check ~config:lax
      (prog
         [
           Insn.Vop
             { op = Insn.Fadd; w = Insn.W128; dst = 0; src1 = 4; src2 = 5 };
           Insn.Ret;
         ])
  in
  Alcotest.(check bool) "defined under conservative entry" false
    (has Asmcheck.L_undef_read fs)

let test_partial_path_undef () =
  (* defined on the fallthrough path only: Jcc guards the definition *)
  check_has "defined on one path only" Asmcheck.L_undef_read
    [
      Insn.Movri (Reg.Rax, 0);
      Insn.Cmpri (Reg.Rax, 0);
      Insn.Jcc (Insn.Ceq, "skip");
      Insn.Movri (Reg.Rcx, 7);
      Insn.Label "skip";
      Insn.Movrr (Reg.Rdx, Reg.Rcx);
      Insn.Ret;
    ]

let test_mem_base_undef () =
  check_has "load through undefined base" Asmcheck.L_mem_base_undef
    [
      Insn.Vload { w = Insn.W128; dst = 0; src = m Reg.Rcx };
      Insn.Ret;
    ]

let test_flags_undef () =
  check_has "branch with no compare" Asmcheck.L_flags_undef
    [ Insn.Jcc (Insn.Clt, "l"); Insn.Label "l"; Insn.Ret ];
  check_clean "branch after compare"
    [
      Insn.Movri (Reg.Rax, 0);
      Insn.Cmpri (Reg.Rax, 4);
      Insn.Jcc (Insn.Clt, "l");
      Insn.Label "l";
      Insn.Ret;
    ]

let test_callee_saved_clobber () =
  check_has "rbx clobbered without save" Asmcheck.L_callee_saved_clobber
    [ Insn.Movri (Reg.Rbx, 1); Insn.Ret ];
  check_clean "rbx saved and restored"
    [ Insn.Push Reg.Rbx; Insn.Movri (Reg.Rbx, 1); Insn.Pop Reg.Rbx; Insn.Ret ]

let test_stack_imbalance () =
  check_has "push without pop" Asmcheck.L_stack_imbalance
    [ Insn.Push Reg.Rbx; Insn.Ret ];
  check_has "rsp adjustment not rebalanced" Asmcheck.L_stack_imbalance
    [ Insn.Subri (Reg.Rsp, 32); Insn.Ret ]

let test_save_slot_clobber () =
  check_has "only saved copy overwritten" Asmcheck.L_save_slot_clobber
    [
      Insn.Push Reg.Rbp;
      Insn.Movrr (Reg.Rbp, Reg.Rsp);
      Insn.Subri (Reg.Rsp, 16);
      Insn.Storeq (m ~disp:(-8) Reg.Rbp, Reg.Rbx);
      Insn.Movri (Reg.Rbx, 7);
      Insn.Movri (Reg.Rax, 0);
      Insn.Storeq (m ~disp:(-8) Reg.Rbp, Reg.Rax);
      Insn.Loadq (Reg.Rbx, m ~disp:(-8) Reg.Rbp);
      Insn.Movrr (Reg.Rsp, Reg.Rbp);
      Insn.Pop Reg.Rbp;
      Insn.Ret;
    ]

let test_uninit_slot_load () =
  check_has "reload without spill" Asmcheck.L_uninit_slot_load
    [
      Insn.Push Reg.Rbp;
      Insn.Movrr (Reg.Rbp, Reg.Rsp);
      Insn.Subri (Reg.Rsp, 16);
      Insn.Loadq (Reg.Rax, m ~disp:(-8) Reg.Rbp);
      Insn.Movrr (Reg.Rsp, Reg.Rbp);
      Insn.Pop Reg.Rbp;
      Insn.Ret;
    ];
  check_clean "spill then reload"
    [
      Insn.Push Reg.Rbp;
      Insn.Movrr (Reg.Rbp, Reg.Rsp);
      Insn.Subri (Reg.Rsp, 16);
      Insn.Movri (Reg.Rax, 3);
      Insn.Storeq (m ~disp:(-8) Reg.Rbp, Reg.Rax);
      Insn.Loadq (Reg.Rcx, m ~disp:(-8) Reg.Rbp);
      Insn.Movrr (Reg.Rsp, Reg.Rbp);
      Insn.Pop Reg.Rbp;
      Insn.Ret;
    ]

let test_dirty_upper () =
  let zero256 =
    Insn.Vop { op = Insn.Fxor; w = Insn.W256; dst = 0; src1 = 0; src2 = 0 }
  in
  let fs = Asmcheck.check ~config:lax (prog [ zero256; Insn.Ret ]) in
  Alcotest.(check bool) "256-bit state dirty at ret" true
    (has Asmcheck.L_dirty_upper fs);
  let fs =
    Asmcheck.check ~config:lax (prog [ zero256; Insn.Vzeroupper; Insn.Ret ])
  in
  Alcotest.(check bool) "vzeroupper cleans the upper state" false
    (has Asmcheck.L_dirty_upper fs)

let test_sse_lints () =
  let sse = Asmcheck.conservative ~avx:false in
  let fs =
    Asmcheck.check ~config:sse
      (prog
         [
           Insn.Vop
             { op = Insn.Fadd; w = Insn.W128; dst = 1; src1 = 2; src2 = 3 };
           Insn.Ret;
         ])
  in
  Alcotest.(check bool) "dst <> src1 in SSE mode" true
    (has_error Asmcheck.L_sse_two_operand fs);
  let fs =
    Asmcheck.check ~config:sse
      (prog
         [
           Insn.Vop
             { op = Insn.Fadd; w = Insn.W256; dst = 0; src1 = 0; src2 = 1 };
           Insn.Ret;
         ])
  in
  Alcotest.(check bool) "256-bit op in SSE mode" true
    (has_error Asmcheck.L_sse_wide fs);
  let fs =
    Asmcheck.check ~config:sse
      (prog
         [
           Insn.Vop
             { op = Insn.Fadd; w = Insn.W128; dst = 2; src1 = 2; src2 = 3 };
           Insn.Ret;
         ])
  in
  Alcotest.(check bool) "dst = src1 is fine in SSE mode" false
    (has Asmcheck.L_sse_two_operand fs)

let test_unreachable_and_dead () =
  let fs =
    Asmcheck.check ~config:bare
      (prog
         [
           Insn.Jmp "end";
           Insn.Movri (Reg.Rax, 1);
           Insn.Label "end";
           Insn.Ret;
         ])
  in
  Alcotest.(check bool) "code after jmp unreachable" true
    (has Asmcheck.L_unreachable fs);
  Alcotest.(check bool) "unreachable is a warning, not an error" false
    (has_error Asmcheck.L_unreachable fs);
  let fs =
    Asmcheck.check ~config:lax
      (prog
         [
           Insn.Vop
             { op = Insn.Fmov; w = Insn.W128; dst = 9; src1 = 1; src2 = 1 };
           Insn.Ret;
         ])
  in
  Alcotest.(check bool) "fp result never read" true
    (has Asmcheck.L_dead_write fs);
  Alcotest.(check bool) "dead write is a warning, not an error" false
    (has_error Asmcheck.L_dead_write fs)

let test_check_exn () =
  let bad = prog [ Insn.Movri (Reg.Rbx, 1); Insn.Ret ] in
  (match Asmcheck.check_exn ~config:bare bad with
  | () -> Alcotest.fail "check_exn did not raise on a clobbered rbx"
  | exception Asmcheck.Lint_error (_, fs) ->
      Alcotest.(check bool) "error findings attached" true (fs <> []));
  Asmcheck.check_exn ~config:bare (prog [ Insn.Ret ])

(* --- the shipped corpus: zero findings everywhere ------------------- *)

let config_for k =
  match k with
  | Kernels.Gemm -> { Pipeline.default with jam = [ ("j", 4); ("i", 8) ] }
  | Kernels.Gemv -> { Pipeline.default with inner_unroll = Some ("j", 8) }
  | Kernels.Dot ->
      {
        Pipeline.default with
        inner_unroll = Some ("i", 8);
        expand_reduction = Some 8;
      }
  | _ -> { Pipeline.default with inner_unroll = Some ("i", 8) }

let all_kernels = Kernels.[ Gemm; Gemv; Axpy; Dot; Ger; Scal; Copy ]
let arches = A.Machine.Arch.[ sandy_bridge; piledriver ]

let test_corpus_clean () =
  List.iter
    (fun arch ->
      List.iter
        (fun k ->
          let g = A.generate ~arch ~config:(config_for k) k in
          let params = (Kernels.kernel_of_name k).A.Ir.Ast.k_params in
          let fs =
            A.Verify.Oracle.check_static
              ~avx:(arch.A.Machine.Arch.simd = A.Machine.Arch.AVX)
              ~params g.A.g_program
          in
          if fs <> [] then
            Alcotest.failf "%s on %s: %s"
              (Kernels.name_to_string k)
              arch.A.Machine.Arch.name
              (String.concat "; " (List.map Asmcheck.finding_to_string fs)))
        all_kernels)
    arches

(* The same zero-findings sweep at single precision: f32 kernels carry
   ps-suffixed vector ops and 4-byte strides, and the checker's typed
   register discipline must accept all of them. *)
let test_corpus_clean_f32 () =
  let et = A.Machine.Etype.F32 in
  List.iter
    (fun arch ->
      List.iter
        (fun k ->
          let g = A.generate ~et ~arch ~config:(config_for k) k in
          let params =
            (Kernels.kernel_of_name ~fp:A.Ir.Ast.Float k).A.Ir.Ast.k_params
          in
          let fs =
            A.Verify.Oracle.check_static
              ~avx:(arch.A.Machine.Arch.simd = A.Machine.Arch.AVX)
              ~params g.A.g_program
          in
          if fs <> [] then
            Alcotest.failf "f32 %s on %s: %s"
              (Kernels.name_to_string ~fp:A.Ir.Ast.Float k)
              arch.A.Machine.Arch.name
              (String.concat "; " (List.map Asmcheck.finding_to_string fs)))
        all_kernels)
    arches

(* A deterministic slice of every kernel's tuning space: candidates the
   tuner generates must pass the very gate the tuner now applies, so no
   sampled candidate may produce a lint diagnostic. *)
let test_tuning_space_sampled_clean () =
  List.iter
    (fun arch ->
      List.iter
        (fun k ->
          let space = A.Tuner.space_for k in
          let step = max 1 (List.length space / 10) in
          let source = Kernels.kernel_of_name k in
          List.iteri
            (fun i cand ->
              if i mod step = 0 then
                match A.Tuner.generate_candidate_diag arch k source cand with
                | Ok p ->
                    let fs =
                      A.Verify.Oracle.check_static
                        ~avx:(arch.A.Machine.Arch.simd = A.Machine.Arch.AVX)
                        ~params:source.A.Ir.Ast.k_params p
                    in
                    if fs <> [] then
                      Alcotest.failf "%s on %s candidate %d: %s"
                        (Kernels.name_to_string k)
                        arch.A.Machine.Arch.name i
                        (String.concat "; "
                           (List.map Asmcheck.finding_to_string fs))
                | Error d ->
                    if d.Diag.d_code = Diag.E_lint then
                      Alcotest.failf "%s on %s candidate %d discarded: %s"
                        (Kernels.name_to_string k)
                        arch.A.Machine.Arch.name i (Diag.to_string d))
            space)
        all_kernels)
    arches

(* --- asm-level mutation meta-test ----------------------------------- *)

let test_static_detection_rate () =
  let reports =
    List.concat_map
      (fun arch ->
        List.map
          (fun k ->
            let g = A.generate ~arch ~config:(config_for k) k in
            Chaos.run_static ~max_faults:200 ~arch k g.A.g_program)
          all_kernels)
      arches
  in
  List.iter
    (fun r ->
      let rate = Chaos.rate r in
      if rate < 0.90 then
        Alcotest.failf "%s: static detection %.1f%% below per-kernel floor \
                        (%d/%d)"
          r.Chaos.c_kernel (100. *. rate) r.Chaos.c_detected r.Chaos.c_total)
    reports;
  let agg = Chaos.merge reports in
  let rate = Chaos.rate agg in
  Alcotest.(check bool)
    (Printf.sprintf "aggregate static detection %.2f%% (%d/%d) >= 95%%"
       (100. *. rate) agg.Chaos.c_detected agg.Chaos.c_total)
    true (rate >= 0.95)

(* Static mutation coverage at single precision: the checker's typed
   lanes (ps vs pd) must keep catching asm-level corruption of the
   three f32 headliner kernels on both arches. *)
let test_static_detection_rate_f32 () =
  let et = A.Machine.Etype.F32 in
  let reports =
    List.concat_map
      (fun arch ->
        List.map
          (fun k ->
            let g = A.generate ~et ~arch ~config:(config_for k) k in
            Chaos.run_static ~et ~max_faults:120 ~arch k g.A.g_program)
          Kernels.[ Gemm; Axpy; Dot ])
      arches
  in
  List.iter
    (fun r ->
      let rate = Chaos.rate r in
      if rate < 0.90 then
        Alcotest.failf
          "%s: f32 static detection %.1f%% below per-kernel floor (%d/%d)"
          r.Chaos.c_kernel (100. *. rate) r.Chaos.c_detected r.Chaos.c_total)
    reports;
  let agg = Chaos.merge reports in
  let rate = Chaos.rate agg in
  Alcotest.(check bool)
    (Printf.sprintf "aggregate f32 static detection %.2f%% (%d/%d) >= 95%%"
       (100. *. rate) agg.Chaos.c_detected agg.Chaos.c_total)
    true (rate >= 0.95)

let test_asm_fault_enumeration_deterministic () =
  let g =
    A.generate ~arch:A.Machine.Arch.sandy_bridge
      ~config:(config_for Kernels.Gemm) Kernels.Gemm
  in
  let module Faults = A.Verify.Faults in
  let f1 = Faults.enumerate_asm g.A.g_program
  and f2 = Faults.enumerate_asm g.A.g_program in
  Alcotest.(check bool) "same asm fault list on re-enumeration" true (f1 = f2);
  Alcotest.(check bool) "non-empty" true (f1 <> []);
  let s = Faults.sample_asm ~max:16 g.A.g_program in
  Alcotest.(check int) "sample respects max" 16 (List.length s)

(* --- integration wiring --------------------------------------------- *)

let test_diag_strings () =
  Alcotest.(check string) "E_lint code" "lint-findings"
    (Diag.code_to_string Diag.E_lint);
  Alcotest.(check string) "S_asmcheck stage" "asmcheck"
    (Diag.stage_to_string Diag.S_asmcheck)

let test_postcondition_gate () =
  let was = Asmcheck.postcondition_enabled () in
  Asmcheck.set_postcondition true;
  Fun.protect
    ~finally:(fun () -> Asmcheck.set_postcondition was)
    (fun () ->
      List.iter
        (fun arch ->
          ignore
            (A.generate ~arch ~config:(config_for Kernels.Gemm) Kernels.Gemm))
        arches)

let test_vzeroupper_threading () =
  let g =
    A.generate ~arch:A.Machine.Arch.sandy_bridge
      ~config:(config_for Kernels.Gemm) Kernels.Gemm
  in
  let insns = g.A.g_program.Insn.prog_insns in
  Alcotest.(check bool) "AVX gemm carries a real Vzeroupper" true
    (List.mem Insn.Vzeroupper insns);
  Alcotest.(check bool) "no comment-encoded vzeroupper remains" false
    (List.mem (Insn.Comment "vzeroupper") insns);
  Alcotest.(check string) "prints as the bare mnemonic" "vzeroupper"
    (A.Machine.Att.insn_str ~et:A.Machine.Etype.F64 ~avx:true Insn.Vzeroupper)

let suite =
  [
    Alcotest.test_case "lint: malformed cfg" `Quick test_malformed_cfg;
    Alcotest.test_case "lint: undef read" `Quick test_undef_read;
    Alcotest.test_case "lint: partial-path undef" `Quick
      test_partial_path_undef;
    Alcotest.test_case "lint: mem base undef" `Quick test_mem_base_undef;
    Alcotest.test_case "lint: flags undef" `Quick test_flags_undef;
    Alcotest.test_case "lint: callee-saved clobber" `Quick
      test_callee_saved_clobber;
    Alcotest.test_case "lint: stack imbalance" `Quick test_stack_imbalance;
    Alcotest.test_case "lint: save slot clobber" `Quick
      test_save_slot_clobber;
    Alcotest.test_case "lint: uninit slot load" `Quick test_uninit_slot_load;
    Alcotest.test_case "lint: dirty upper" `Quick test_dirty_upper;
    Alcotest.test_case "lint: sse encoding" `Quick test_sse_lints;
    Alcotest.test_case "lint: unreachable and dead" `Quick
      test_unreachable_and_dead;
    Alcotest.test_case "check_exn raises on errors" `Quick test_check_exn;
    Alcotest.test_case "corpus: zero findings (7 kernels x 2 arches)" `Quick
      test_corpus_clean;
    Alcotest.test_case "f32 corpus: zero findings (7 kernels x 2 arches)"
      `Quick test_corpus_clean_f32;
    Alcotest.test_case "tuning space sample: zero findings" `Slow
      test_tuning_space_sampled_clean;
    Alcotest.test_case "static detection rate >= 95%" `Slow
      test_static_detection_rate;
    Alcotest.test_case "f32 static detection rate >= 95%" `Slow
      test_static_detection_rate_f32;
    Alcotest.test_case "asm fault enumeration deterministic" `Quick
      test_asm_fault_enumeration_deterministic;
    Alcotest.test_case "diagnostic wiring strings" `Quick test_diag_strings;
    Alcotest.test_case "emit postcondition gate" `Quick
      test_postcondition_gate;
    Alcotest.test_case "vzeroupper threading" `Quick test_vzeroupper_threading;
  ]
