	.text
	.globl sdot_kernel
	.type sdot_kernel, @function
sdot_kernel:
	pushq %rbp
	vxorps %xmm12, %xmm12, %xmm12
	movq %rdi, %r9
	movq %rsp, %rbp
	subq $7, %r9
	movq %rbx, -8(%rbp)
	vmovaps %xmm12, %xmm13
	movq %r9, -56(%rbp)
	movq $0, %r8
	vxorps %ymm12, %ymm12, %ymm12
	movq -56(%rbp), %r9
	subq $96, %rsp
	movq %rsi, %rax
	movq %rdx, %rbx
	movq %rcx, -64(%rbp)
	movq %rdx, -72(%rbp)
	movq %rsi, -80(%rbp)
	cmpq %r9, %r8
	jge .Lend2
.Lbody1:
	# <mmUnrolledCOMP n=8>
	vmovups (%rax), %ymm0
	addq $8, %r8
	vmovups (%rbx), %ymm4
	cmpq %r9, %r8
	prefetcht0 256(%rax)
	prefetcht0 256(%rbx)
	addq $32, %rax
	addq $32, %rbx
	vfmadd231ps %ymm4, %ymm0, %ymm12
	jl .Lbody1
.Lend2:
	vaddss %xmm12, %xmm13, %xmm14
	movq -80(%rbp), %rcx
	movq -72(%rbp), %rsi
	leaq (%rcx,%r8,4), %rdx
	leaq (%rsi,%r8,4), %r9
	movq %r8, %r10
	movq %rax, -88(%rbp)
	movq %r10, %r8
	movq %rbx, -96(%rbp)
	cmpq %rdi, %r8
	vmovaps %xmm14, %xmm13
	vshufps $85, %xmm12, %xmm12, %xmm14
	vaddss %xmm14, %xmm13, %xmm15
	vshufps $170, %xmm12, %xmm12, %xmm14
	vmovaps %xmm15, %xmm13
	vaddss %xmm14, %xmm13, %xmm15
	vshufps $255, %xmm12, %xmm12, %xmm14
	vmovaps %xmm15, %xmm13
	vaddss %xmm14, %xmm13, %xmm15
	vextractf128 $1, %ymm12, %xmm14
	vmovaps %xmm15, %xmm13
	vaddss %xmm14, %xmm13, %xmm15
	vextractf128 $1, %ymm12, %xmm14
	vshufps $85, %xmm14, %xmm14, %xmm14
	vmovaps %xmm15, %xmm13
	vaddss %xmm14, %xmm13, %xmm15
	vextractf128 $1, %ymm12, %xmm14
	vshufps $170, %xmm14, %xmm14, %xmm14
	vmovaps %xmm15, %xmm13
	vaddss %xmm14, %xmm13, %xmm15
	vextractf128 $1, %ymm12, %xmm14
	vshufps $255, %xmm14, %xmm14, %xmm14
	vmovaps %xmm15, %xmm13
	vaddss %xmm14, %xmm13, %xmm15
	vmovaps %xmm15, %xmm13
	jge .Lend4
.Lbody3:
	# <mmCOMP n=1>
	vmovss (%rdx), %xmm0
	vmovss (%r9), %xmm4
	addq $1, %r8
	prefetcht0 32(%rdx)
	prefetcht0 32(%r9)
	addq $4, %rdx
	addq $4, %r9
	cmpq %rdi, %r8
	vmovaps %xmm0, %xmm14
	vmovaps %xmm4, %xmm15
	vmulss %xmm15, %xmm14, %xmm0
	vmovaps %xmm0, %xmm1
	vaddss %xmm1, %xmm13, %xmm0
	vmovaps %xmm0, %xmm13
	jl .Lbody3
.Lend4:
	# <mmSTORE n=1>
	movq -64(%rbp), %rax
	vmovss (%rax), %xmm8
	vmovaps %xmm8, %xmm12
	vaddss %xmm12, %xmm13, %xmm14
	vmovaps %xmm14, %xmm13
	vmovss %xmm13, (%rax)
	movq -8(%rbp), %rbx
	vzeroupper
	movq %rbp, %rsp
	popq %rbp
	ret
	.size sdot_kernel, .-sdot_kernel
