	.text
	.globl dgemv_kernel
	.type dgemv_kernel, @function
dgemv_kernel:
	pushq %rbp
	movq %rsp, %rbp
	movq %r8, %rax
	movq %rbx, -8(%rbp)
	movq $0, %rbx
	subq $160, %rsp
	movq %r12, -24(%rbp)
	movq %rax, -56(%rbp)
	movq %rcx, -64(%rbp)
	movq %rdx, -72(%rbp)
	movq %rsi, -80(%rbp)
	movq %rdi, -88(%rbp)
	movq %r8, -96(%rbp)
	movq %r9, -104(%rbp)
	cmpq %rsi, %rbx
	jge .Lend2
.Lbody1:
	movq -56(%rbp), %rax
	movq -72(%rbp), %rcx
	vbroadcastsd (%rax), %ymm4
	movq %rcx, %rdx
	movq %rbx, %rsi
	movq -88(%rbp), %r10
	imulq %rsi, %rdx
	prefetcht0 64(%rax)
	movq %r10, %r11
	movq -64(%rbp), %rsi
	subq $7, %r11
	leaq (%rsi,%rdx,8), %rdi
	movq %r11, -112(%rbp)
	movq -104(%rbp), %rdx
	movq $0, %r9
	movq -112(%rbp), %r11
	movq %rdx, %r8
	cmpq %r11, %r9
	jge .Lend4
.Lbody3:
	# <mvUnrolledCOMP n=8>
	vmovupd (%rdi), %ymm0
	addq $8, %r9
	vmovupd (%r8), %ymm8
	cmpq %r11, %r9
	prefetcht0 512(%rdi)
	prefetchw 512(%r8)
	vfmadd231pd %ymm4, %ymm0, %ymm8
	vmovupd %ymm8, (%r8)
	vmovupd 32(%r8), %ymm8
	vmovupd 32(%rdi), %ymm0
	addq $64, %rdi
	vfmadd231pd %ymm4, %ymm0, %ymm8
	vmovupd %ymm8, 32(%r8)
	addq $64, %r8
	jl .Lbody3
.Lend4:
	movq -72(%rbp), %rax
	movq %rbx, %rdx
	movq %rax, %rcx
	movq %r9, %r12
	imulq %rdx, %rcx
	movq %r9, %rdx
	addq %rdx, %rcx
	movq -64(%rbp), %rdx
	leaq (%rdx,%rcx,8), %rsi
	movq -104(%rbp), %rcx
	leaq (%rcx,%r9,8), %r11
	movq %r12, %r9
	movq %rdi, -120(%rbp)
	movq %r8, -128(%rbp)
	cmpq %r10, %r9
	jge .Lend6
.Lbody5:
	# <mvCOMP n=1>
	vmovsd (%rsi), %xmm0
	vmovsd (%r11), %xmm8
	addq $1, %r9
	prefetcht0 64(%rsi)
	prefetchw 64(%r11)
	addq $8, %rsi
	cmpq %r10, %r9
	vmovapd %xmm0, %xmm12
	vmovapd %xmm8, %xmm13
	vmulsd %xmm4, %xmm12, %xmm14
	vmovapd %xmm14, %xmm12
	vaddsd %xmm12, %xmm13, %xmm14
	vmovapd %xmm14, %xmm13
	vmovsd %xmm13, (%r11)
	addq $8, %r11
	jl .Lbody5
.Lend6:
	movq -56(%rbp), %rax
	addq $1, %rbx
	addq $8, %rax
	movq -80(%rbp), %rcx
	movq %rax, -56(%rbp)
	movq %rsi, -136(%rbp)
	movq %r9, -144(%rbp)
	movq %r11, -152(%rbp)
	cmpq %rcx, %rbx
	jl .Lbody1
.Lend2:
	movq -8(%rbp), %rbx
	movq -24(%rbp), %r12
	vzeroupper
	movq %rbp, %rsp
	popq %rbp
	ret
	.size dgemv_kernel, .-dgemv_kernel
