	.text
	.globl saxpy_kernel
	.type saxpy_kernel, @function
saxpy_kernel:
	pushq %rbp
	movq %rsp, %rbp
	movq %rdi, %r8
	vmovss %xmm0, -80(%rbp)
	subq $7, %r8
	movq %rbx, -8(%rbp)
	vbroadcastss -80(%rbp), %ymm10
	movq %r8, -88(%rbp)
	movq $0, %rcx
	movq -88(%rbp), %r8
	subq $128, %rsp
	movq %rsi, %rax
	movq %rdx, %rbx
	movq %rdx, -96(%rbp)
	movq %rsi, -104(%rbp)
	cmpq %r8, %rcx
	jge .Lend2
.Lbody1:
	# <mvUnrolledCOMP n=8>
	vmovups (%rax), %ymm0
	addq $8, %rcx
	vmovups (%rbx), %ymm5
	cmpq %r8, %rcx
	prefetcht0 256(%rax)
	prefetchw 256(%rbx)
	addq $32, %rax
	vfmadd231ps %ymm10, %ymm0, %ymm5
	vmovups %ymm5, (%rbx)
	addq $32, %rbx
	jl .Lbody1
.Lend2:
	movq -104(%rbp), %rdx
	movq -96(%rbp), %r8
	leaq (%rdx,%rcx,4), %rsi
	leaq (%r8,%rcx,4), %r9
	movq %rcx, %r10
	movq %rax, -112(%rbp)
	movq %r10, %rcx
	movq %rbx, -120(%rbp)
	cmpq %rdi, %rcx
	jge .Lend4
.Lbody3:
	# <mvCOMP n=1>
	vmovss (%rsi), %xmm0
	vmovss (%r9), %xmm5
	addq $1, %rcx
	prefetcht0 32(%rsi)
	prefetchw 32(%r9)
	addq $4, %rsi
	cmpq %rdi, %rcx
	vmovaps %xmm0, %xmm11
	vmovaps %xmm5, %xmm12
	vmulss %xmm10, %xmm11, %xmm13
	vmovaps %xmm13, %xmm11
	vaddss %xmm11, %xmm12, %xmm13
	vmovaps %xmm13, %xmm12
	vmovss %xmm12, (%r9)
	addq $4, %r9
	jl .Lbody3
.Lend4:
	movq -8(%rbp), %rbx
	vzeroupper
	movq %rbp, %rsp
	popq %rbp
	ret
	.size saxpy_kernel, .-saxpy_kernel
