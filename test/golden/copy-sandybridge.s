	.text
	.globl dcopy_kernel
	.type dcopy_kernel, @function
dcopy_kernel:
	pushq %rbp
	movq %rdi, %r8
	movq %rsp, %rbp
	movq $0, %rcx
	subq $7, %r8
	movq %rbx, -8(%rbp)
	subq $96, %rsp
	movq %r8, -56(%rbp)
	movq -56(%rbp), %r8
	movq %rsi, %rax
	movq %rdx, %rbx
	movq %rdx, -64(%rbp)
	movq %rsi, -72(%rbp)
	cmpq %r8, %rcx
	jge .Lend2
.Lbody1:
	# <svUnrolledCOPY n=8>
	vmovupd (%rax), %ymm0
	prefetcht0 512(%rax)
	addq $8, %rcx
	prefetcht0 512(%rbx)
	cmpq %r8, %rcx
	vmovupd %ymm0, (%rbx)
	vmovupd 32(%rax), %ymm0
	addq $64, %rax
	vmovupd %ymm0, 32(%rbx)
	addq $64, %rbx
	jl .Lbody1
.Lend2:
	movq -72(%rbp), %rdx
	movq -64(%rbp), %r8
	movq %rcx, %r10
	leaq (%rdx,%rcx,8), %rsi
	leaq (%r8,%rcx,8), %r9
	movq %r10, %rcx
	movq %rax, -80(%rbp)
	movq %rbx, -88(%rbp)
	cmpq %rdi, %rcx
	jge .Lend4
.Lbody3:
	# <svCOPY n=1>
	vmovsd (%rsi), %xmm0
	prefetcht0 64(%rsi)
	addq $1, %rcx
	addq $8, %rsi
	prefetcht0 64(%r9)
	cmpq %rdi, %rcx
	vmovapd %xmm0, %xmm10
	vmovsd %xmm10, (%r9)
	addq $8, %r9
	jl .Lbody3
.Lend4:
	movq -8(%rbp), %rbx
	vzeroupper
	movq %rbp, %rsp
	popq %rbp
	ret
	.size dcopy_kernel, .-dcopy_kernel
