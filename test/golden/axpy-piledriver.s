	.text
	.globl daxpy_kernel
	.type daxpy_kernel, @function
daxpy_kernel:
	pushq %rbp
	movq %rsp, %rbp
	movq %rdi, %r8
	vmovsd %xmm0, -80(%rbp)
	subq $7, %r8
	movq %rbx, -8(%rbp)
	vbroadcastsd -80(%rbp), %ymm10
	movq %r8, -88(%rbp)
	movq $0, %rcx
	movq -88(%rbp), %r8
	subq $128, %rsp
	movq %rsi, %rax
	movq %rdx, %rbx
	movq %rdx, -96(%rbp)
	movq %rsi, -104(%rbp)
	cmpq %r8, %rcx
	jge .Lend2
.Lbody1:
	# <mvUnrolledCOMP n=8>
	vmovupd (%rax), %ymm0
	addq $8, %rcx
	vmovupd (%rbx), %ymm5
	cmpq %r8, %rcx
	prefetcht0 512(%rax)
	prefetchw 512(%rbx)
	vfmadd231pd %ymm10, %ymm0, %ymm5
	vmovupd %ymm5, (%rbx)
	vmovupd 32(%rbx), %ymm5
	vmovupd 32(%rax), %ymm0
	addq $64, %rax
	vfmadd231pd %ymm10, %ymm0, %ymm5
	vmovupd %ymm5, 32(%rbx)
	addq $64, %rbx
	jl .Lbody1
.Lend2:
	movq -104(%rbp), %rdx
	movq -96(%rbp), %r8
	leaq (%rdx,%rcx,8), %rsi
	leaq (%r8,%rcx,8), %r9
	movq %rcx, %r10
	movq %rax, -112(%rbp)
	movq %r10, %rcx
	movq %rbx, -120(%rbp)
	cmpq %rdi, %rcx
	jge .Lend4
.Lbody3:
	# <mvCOMP n=1>
	vmovsd (%rsi), %xmm0
	vmovsd (%r9), %xmm5
	addq $1, %rcx
	prefetcht0 64(%rsi)
	prefetchw 64(%r9)
	addq $8, %rsi
	cmpq %rdi, %rcx
	vmovapd %xmm0, %xmm11
	vmovapd %xmm5, %xmm12
	vmulsd %xmm10, %xmm11, %xmm13
	vmovapd %xmm13, %xmm11
	vaddsd %xmm11, %xmm12, %xmm13
	vmovapd %xmm13, %xmm12
	vmovsd %xmm12, (%r9)
	addq $8, %r9
	jl .Lbody3
.Lend4:
	movq -8(%rbp), %rbx
	vzeroupper
	movq %rbp, %rsp
	popq %rbp
	ret
	.size daxpy_kernel, .-daxpy_kernel
