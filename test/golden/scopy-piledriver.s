	.text
	.globl scopy_kernel
	.type scopy_kernel, @function
scopy_kernel:
	pushq %rbp
	movq %rdi, %r8
	movq %rsp, %rbp
	subq $7, %r8
	movq %rbx, -8(%rbp)
	movq %r8, -56(%rbp)
	movq $0, %rcx
	movq -56(%rbp), %r8
	subq $96, %rsp
	movq %rsi, %rax
	movq %rdx, %rbx
	movq %rdx, -64(%rbp)
	movq %rsi, -72(%rbp)
	cmpq %r8, %rcx
	jge .Lend2
.Lbody1:
	# <svUnrolledCOPY n=8>
	vmovups (%rax), %ymm0
	addq $8, %rcx
	prefetcht0 256(%rax)
	prefetchw 256(%rbx)
	addq $32, %rax
	cmpq %r8, %rcx
	vmovups %ymm0, (%rbx)
	addq $32, %rbx
	jl .Lbody1
.Lend2:
	movq -72(%rbp), %rdx
	movq -64(%rbp), %r8
	leaq (%rdx,%rcx,4), %rsi
	leaq (%r8,%rcx,4), %r9
	movq %rcx, %r10
	movq %rax, -80(%rbp)
	movq %r10, %rcx
	movq %rbx, -88(%rbp)
	cmpq %rdi, %rcx
	jge .Lend4
.Lbody3:
	# <svCOPY n=1>
	vmovss (%rsi), %xmm0
	prefetcht0 32(%rsi)
	addq $1, %rcx
	addq $4, %rsi
	prefetchw 32(%r9)
	cmpq %rdi, %rcx
	vmovaps %xmm0, %xmm10
	vmovss %xmm10, (%r9)
	addq $4, %r9
	jl .Lbody3
.Lend4:
	movq -8(%rbp), %rbx
	vzeroupper
	movq %rbp, %rsp
	popq %rbp
	ret
	.size scopy_kernel, .-scopy_kernel
