	.text
	.globl sger_kernel
	.type sger_kernel, @function
sger_kernel:
	pushq %rbp
	movq %rsp, %rbp
	movq %r8, %rax
	movq %rbx, -8(%rbp)
	movq $0, %rbx
	subq $192, %rsp
	movq %r12, -24(%rbp)
	movq %rax, -56(%rbp)
	movq %rcx, -64(%rbp)
	movq %rdx, -72(%rbp)
	movq %rsi, -80(%rbp)
	movq %rdi, -88(%rbp)
	movq %r8, -96(%rbp)
	movq %r9, -104(%rbp)
	cmpq %rsi, %rbx
	jge .Lend2
.Lbody1:
	movq -56(%rbp), %rax
	movq -72(%rbp), %rcx
	vmovss (%rax), %xmm8
	movq %rcx, %rdx
	movq %rbx, %rsi
	prefetcht0 32(%rax)
	movq -88(%rbp), %r10
	imulq %rsi, %rdx
	movq %r10, %r11
	movq -104(%rbp), %rsi
	subq $7, %r11
	leaq (%rsi,%rdx,4), %rdi
	vmovaps %xmm8, %xmm12
	movq %r11, -144(%rbp)
	movq -64(%rbp), %rdx
	movq $0, %r9
	movq -144(%rbp), %r11
	vmulss %xmm0, %xmm12, %xmm13
	movq %rdx, %r8
	cmpq %r11, %r9
	vmovss %xmm13, -136(%rbp)
	vbroadcastss -136(%rbp), %ymm14
	jge .Lend4
.Lbody3:
	# <mvUnrolledCOMP n=8>
	vmovups (%r8), %ymm4
	addq $8, %r9
	vmovups (%rdi), %ymm1
	cmpq %r11, %r9
	prefetchw 256(%rdi)
	prefetcht0 256(%r8)
	addq $32, %r8
	vfmadd231ps %ymm14, %ymm4, %ymm1
	vmovups %ymm1, (%rdi)
	addq $32, %rdi
	jl .Lbody3
.Lend4:
	movq -72(%rbp), %rax
	movq %rbx, %rdx
	movq %rax, %rcx
	movq %r9, %r12
	imulq %rdx, %rcx
	movq %r9, %rdx
	addq %rdx, %rcx
	movq -104(%rbp), %rdx
	leaq (%rdx,%rcx,4), %rsi
	movq -64(%rbp), %rcx
	leaq (%rcx,%r9,4), %r11
	movq %r12, %r9
	movq %rdi, -152(%rbp)
	movq %r8, -160(%rbp)
	cmpq %r10, %r9
	jge .Lend6
.Lbody5:
	# <mvCOMP n=1>
	vmovss (%r11), %xmm4
	vmovss (%rsi), %xmm1
	addq $1, %r9
	prefetchw 32(%rsi)
	prefetcht0 32(%r11)
	addq $4, %r11
	cmpq %r10, %r9
	vmovaps %xmm4, %xmm12
	vmovaps %xmm1, %xmm13
	vmulss %xmm14, %xmm12, %xmm15
	vmovaps %xmm15, %xmm12
	vaddss %xmm12, %xmm13, %xmm15
	vmovaps %xmm15, %xmm13
	vmovss %xmm13, (%rsi)
	addq $4, %rsi
	jl .Lbody5
.Lend6:
	movq -56(%rbp), %rax
	addq $1, %rbx
	addq $4, %rax
	movq -80(%rbp), %rcx
	movq %rax, -56(%rbp)
	movq %rsi, -168(%rbp)
	movq %r9, -176(%rbp)
	movq %r11, -184(%rbp)
	cmpq %rcx, %rbx
	jl .Lbody1
.Lend2:
	movq -8(%rbp), %rbx
	movq -24(%rbp), %r12
	vzeroupper
	movq %rbp, %rsp
	popq %rbp
	ret
	.size sger_kernel, .-sger_kernel
