	.text
	.globl sgemv_kernel
	.type sgemv_kernel, @function
sgemv_kernel:
	pushq %rbp
	movq %rsp, %rbp
	movq %r8, %rax
	subq $160, %rsp
	movq %rbx, -8(%rbp)
	movq $0, %rbx
	movq %r12, -24(%rbp)
	movq %rax, -56(%rbp)
	movq %rcx, -64(%rbp)
	movq %rdx, -72(%rbp)
	movq %rsi, -80(%rbp)
	movq %rdi, -88(%rbp)
	movq %r8, -96(%rbp)
	movq %r9, -104(%rbp)
	cmpq %rsi, %rbx
	jge .Lend2
.Lbody1:
	movq -56(%rbp), %rax
	movq -72(%rbp), %rcx
	movq %rbx, %rsi
	vbroadcastss (%rax), %ymm4
	movq %rcx, %rdx
	movq -88(%rbp), %r10
	prefetcht0 32(%rax)
	movq $0, %r9
	imulq %rsi, %rdx
	movq %r10, %r11
	movq -64(%rbp), %rsi
	subq $7, %r11
	leaq (%rsi,%rdx,4), %rdi
	movq -104(%rbp), %rdx
	movq %rdx, %r8
	movq %r11, -112(%rbp)
	movq -112(%rbp), %r11
	cmpq %r11, %r9
	jge .Lend4
.Lbody3:
	# <mvUnrolledCOMP n=8>
	vmovups (%rdi), %ymm0
	vmovups (%r8), %ymm8
	addq $8, %r9
	prefetcht0 256(%rdi)
	prefetcht0 256(%r8)
	addq $32, %rdi
	cmpq %r11, %r9
	vmulps %ymm4, %ymm0, %ymm12
	vaddps %ymm12, %ymm8, %ymm8
	vmovups %ymm8, (%r8)
	addq $32, %r8
	jl .Lbody3
.Lend4:
	movq -72(%rbp), %rax
	movq %rbx, %rdx
	movq %r9, %r12
	movq %rax, %rcx
	movq %rdi, -120(%rbp)
	movq %r8, -128(%rbp)
	imulq %rdx, %rcx
	movq %r9, %rdx
	addq %rdx, %rcx
	movq -64(%rbp), %rdx
	leaq (%rdx,%rcx,4), %rsi
	movq -104(%rbp), %rcx
	leaq (%rcx,%r9,4), %r11
	movq %r12, %r9
	cmpq %r10, %r9
	jge .Lend6
.Lbody5:
	# <mvCOMP n=1>
	vmovss (%rsi), %xmm0
	vmovss (%r11), %xmm8
	addq $1, %r9
	prefetcht0 32(%rsi)
	prefetcht0 32(%r11)
	addq $4, %rsi
	cmpq %r10, %r9
	vmovaps %xmm0, %xmm12
	vmulss %xmm4, %xmm12, %xmm14
	vmovaps %xmm8, %xmm13
	vmovaps %xmm14, %xmm12
	vaddss %xmm12, %xmm13, %xmm14
	vmovaps %xmm14, %xmm13
	vmovss %xmm13, (%r11)
	addq $4, %r11
	jl .Lbody5
.Lend6:
	movq -56(%rbp), %rax
	addq $1, %rbx
	movq -80(%rbp), %rcx
	addq $4, %rax
	movq %rsi, -136(%rbp)
	movq %r9, -144(%rbp)
	movq %rax, -56(%rbp)
	movq %r11, -152(%rbp)
	cmpq %rcx, %rbx
	jl .Lbody1
.Lend2:
	movq -8(%rbp), %rbx
	movq -24(%rbp), %r12
	vzeroupper
	movq %rbp, %rsp
	popq %rbp
	ret
	.size sgemv_kernel, .-sgemv_kernel
