	.text
	.globl dscal_kernel
	.type dscal_kernel, @function
dscal_kernel:
	pushq %rbp
	movq %rsp, %rbp
	movq %rdi, %rcx
	vmovsd %xmm0, -80(%rbp)
	subq $7, %rcx
	movq %rbx, -8(%rbp)
	vbroadcastsd -80(%rbp), %ymm8
	movq %rcx, -88(%rbp)
	movq $0, %rbx
	movq -88(%rbp), %rcx
	subq $112, %rsp
	movq %rsi, %rax
	movq %rsi, -96(%rbp)
	cmpq %rcx, %rbx
	jge .Lend2
.Lbody1:
	# <svUnrolledSCAL n=8>
	vmovupd (%rax), %ymm0
	addq $8, %rbx
	prefetchw 512(%rax)
	cmpq %rcx, %rbx
	vmulpd %ymm8, %ymm0, %ymm0
	vmovupd %ymm0, (%rax)
	vmovupd 32(%rax), %ymm0
	vmulpd %ymm8, %ymm0, %ymm0
	vmovupd %ymm0, 32(%rax)
	addq $64, %rax
	jl .Lbody1
.Lend2:
	movq -96(%rbp), %rcx
	movq %rbx, %rsi
	leaq (%rcx,%rbx,8), %rdx
	movq %rsi, %rbx
	movq %rax, -104(%rbp)
	cmpq %rdi, %rbx
	jge .Lend4
.Lbody3:
	# <svSCAL n=1>
	vmovsd (%rdx), %xmm0
	prefetchw 64(%rdx)
	addq $1, %rbx
	cmpq %rdi, %rbx
	vmovapd %xmm0, %xmm9
	vmulsd %xmm8, %xmm9, %xmm10
	vmovapd %xmm10, %xmm9
	vmovsd %xmm9, (%rdx)
	addq $8, %rdx
	jl .Lbody3
.Lend4:
	movq -8(%rbp), %rbx
	vzeroupper
	movq %rbp, %rsp
	popq %rbp
	ret
	.size dscal_kernel, .-dscal_kernel
