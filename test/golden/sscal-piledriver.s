	.text
	.globl sscal_kernel
	.type sscal_kernel, @function
sscal_kernel:
	pushq %rbp
	movq %rsp, %rbp
	movq %rdi, %rcx
	vmovss %xmm0, -80(%rbp)
	subq $7, %rcx
	movq %rbx, -8(%rbp)
	vbroadcastss -80(%rbp), %ymm8
	movq %rcx, -88(%rbp)
	movq $0, %rbx
	movq -88(%rbp), %rcx
	subq $112, %rsp
	movq %rsi, %rax
	movq %rsi, -96(%rbp)
	cmpq %rcx, %rbx
	jge .Lend2
.Lbody1:
	# <svUnrolledSCAL n=8>
	vmovups (%rax), %ymm0
	addq $8, %rbx
	prefetchw 256(%rax)
	cmpq %rcx, %rbx
	vmulps %ymm8, %ymm0, %ymm0
	vmovups %ymm0, (%rax)
	addq $32, %rax
	jl .Lbody1
.Lend2:
	movq -96(%rbp), %rcx
	movq %rbx, %rsi
	leaq (%rcx,%rbx,4), %rdx
	movq %rsi, %rbx
	movq %rax, -104(%rbp)
	cmpq %rdi, %rbx
	jge .Lend4
.Lbody3:
	# <svSCAL n=1>
	vmovss (%rdx), %xmm0
	prefetchw 32(%rdx)
	addq $1, %rbx
	cmpq %rdi, %rbx
	vmovaps %xmm0, %xmm9
	vmulss %xmm8, %xmm9, %xmm10
	vmovaps %xmm10, %xmm9
	vmovss %xmm9, (%rdx)
	addq $4, %rdx
	jl .Lbody3
.Lend4:
	movq -8(%rbp), %rbx
	vzeroupper
	movq %rbp, %rsp
	popq %rbp
	ret
	.size sscal_kernel, .-sscal_kernel
