	.text
	.globl spack_a_kernel
	.type spack_a_kernel, @function
spack_a_kernel:
	pushq %rbp
	movq %rsp, %rbp
	movq $0, %rax
	subq $144, %rsp
	movq %rbx, -8(%rbp)
	movq %r12, -24(%rbp)
	movq %rcx, -56(%rbp)
	movq %rdx, -64(%rbp)
	movq %rsi, -72(%rbp)
	movq %rdi, -80(%rbp)
	movq %r8, -88(%rbp)
	cmpq %rsi, %rax
	jge .Lend2
.Lbody1:
	movq -64(%rbp), %rbx
	movq %rax, %rdx
	movq %rax, %r8
	movq %rbx, %rcx
	imulq %rdx, %rcx
	movq -56(%rbp), %rdx
	leaq (%rdx,%rcx,4), %rsi
	movq -80(%rbp), %rcx
	movq %rcx, %rdi
	movq %rcx, %r10
	imulq %r8, %rdi
	movq -88(%rbp), %r8
	subq $7, %r10
	leaq (%r8,%rdi,4), %r9
	movq %r10, -96(%rbp)
	movq $0, %rdi
	movq -96(%rbp), %r10
	cmpq %r10, %rdi
	jge .Lend4
.Lbody3:
	# <svUnrolledCOPY n=8>
	vmovups (%rsi), %ymm0
	prefetcht0 256(%rsi)
	addq $8, %rdi
	addq $32, %rsi
	prefetcht0 256(%r9)
	cmpq %r10, %rdi
	vmovups %ymm0, (%r9)
	addq $32, %r9
	jl .Lbody3
.Lend4:
	movq -64(%rbp), %rbx
	movq %rax, %r8
	movq %rax, %r11
	movq %rbx, %rdx
	movq %rsi, -104(%rbp)
	movq %r9, -112(%rbp)
	imulq %r8, %rdx
	movq %rdi, %r8
	addq %r8, %rdx
	movq -56(%rbp), %r8
	leaq (%r8,%rdx,4), %r10
	movq %rcx, %rdx
	imulq %r11, %rdx
	movq %rdi, %r11
	addq %r11, %rdx
	movq -88(%rbp), %r11
	leaq (%r11,%rdx,4), %r12
	movq %rdi, %rdx
	movq %rdx, %rdi
	cmpq %rcx, %rdi
	jge .Lend6
.Lbody5:
	# <svCOPY n=1>
	vmovss (%r10), %xmm0
	prefetcht0 32(%r10)
	addq $1, %rdi
	addq $4, %r10
	prefetcht0 32(%r12)
	cmpq %rcx, %rdi
	vmovaps %xmm0, %xmm10
	vmovss %xmm10, (%r12)
	addq $4, %r12
	jl .Lbody5
.Lend6:
	addq $1, %rax
	movq -72(%rbp), %rbx
	movq %rdi, -120(%rbp)
	movq %r10, -128(%rbp)
	movq %r12, -136(%rbp)
	cmpq %rbx, %rax
	jl .Lbody1
.Lend2:
	movq -8(%rbp), %rbx
	movq -24(%rbp), %r12
	vzeroupper
	movq %rbp, %rsp
	popq %rbp
	ret
	.size spack_a_kernel, .-spack_a_kernel
