	.text
	.globl ddot_kernel
	.type ddot_kernel, @function
ddot_kernel:
	pushq %rbp
	movq %rdi, %r9
	movq %rsp, %rbp
	vxorpd %xmm12, %xmm12, %xmm12
	movq $0, %r8
	subq $7, %r9
	movq %rbx, -8(%rbp)
	vmovapd %xmm12, %xmm13
	subq $96, %rsp
	movq %r9, -56(%rbp)
	movq -56(%rbp), %r9
	vxorpd %ymm12, %ymm12, %ymm12
	movq %rsi, %rax
	vxorpd %ymm14, %ymm14, %ymm14
	movq %rdx, %rbx
	movq %rcx, -64(%rbp)
	movq %rdx, -72(%rbp)
	movq %rsi, -80(%rbp)
	cmpq %r9, %r8
	jge .Lend2
.Lbody1:
	# <mmUnrolledCOMP n=8>
	vmovupd (%rax), %ymm0
	vmovupd (%rbx), %ymm4
	addq $8, %r8
	prefetcht0 512(%rax)
	prefetcht0 512(%rbx)
	cmpq %r9, %r8
	vmulpd %ymm4, %ymm0, %ymm15
	vmovupd 32(%rax), %ymm0
	vmovupd 32(%rbx), %ymm4
	addq $64, %rax
	addq $64, %rbx
	vmulpd %ymm4, %ymm0, %ymm1
	vaddpd %ymm15, %ymm12, %ymm12
	vaddpd %ymm1, %ymm14, %ymm14
	jl .Lbody1
.Lend2:
	vaddsd %xmm12, %xmm13, %xmm15
	movq -80(%rbp), %rcx
	movq -72(%rbp), %rsi
	movq %r8, %r10
	leaq (%rcx,%r8,8), %rdx
	leaq (%rsi,%r8,8), %r9
	movq %r10, %r8
	movq %rax, -88(%rbp)
	movq %rbx, -96(%rbp)
	cmpq %rdi, %r8
	vmovapd %xmm15, %xmm13
	vunpckhpd %xmm12, %xmm12, %xmm15
	vaddsd %xmm15, %xmm13, %xmm0
	vextractf128 $1, %ymm12, %xmm15
	vmovapd %xmm0, %xmm13
	vaddsd %xmm15, %xmm13, %xmm0
	vextractf128 $1, %ymm12, %xmm15
	vunpckhpd %xmm15, %xmm15, %xmm15
	vmovapd %xmm0, %xmm13
	vaddsd %xmm15, %xmm13, %xmm0
	vmovapd %xmm0, %xmm13
	vaddsd %xmm14, %xmm13, %xmm15
	vmovapd %xmm15, %xmm13
	vunpckhpd %xmm14, %xmm14, %xmm15
	vaddsd %xmm15, %xmm13, %xmm0
	vextractf128 $1, %ymm14, %xmm15
	vmovapd %xmm0, %xmm13
	vaddsd %xmm15, %xmm13, %xmm0
	vextractf128 $1, %ymm14, %xmm15
	vunpckhpd %xmm15, %xmm15, %xmm15
	vmovapd %xmm0, %xmm13
	vaddsd %xmm15, %xmm13, %xmm0
	vmovapd %xmm0, %xmm13
	jge .Lend4
.Lbody3:
	# <mmCOMP n=1>
	vmovsd (%rdx), %xmm0
	vmovsd (%r9), %xmm4
	addq $1, %r8
	prefetcht0 64(%rdx)
	prefetcht0 64(%r9)
	addq $8, %rdx
	addq $8, %r9
	cmpq %rdi, %r8
	vmovapd %xmm0, %xmm15
	vmovapd %xmm4, %xmm0
	vmulsd %xmm0, %xmm15, %xmm1
	vmovapd %xmm1, %xmm2
	vaddsd %xmm2, %xmm13, %xmm1
	vmovapd %xmm1, %xmm13
	jl .Lbody3
.Lend4:
	# <mmSTORE n=1>
	movq -64(%rbp), %rax
	vmovsd (%rax), %xmm8
	vmovapd %xmm8, %xmm12
	vaddsd %xmm12, %xmm13, %xmm14
	vmovapd %xmm14, %xmm13
	vmovsd %xmm13, (%rax)
	movq -8(%rbp), %rbx
	vzeroupper
	movq %rbp, %rsp
	popq %rbp
	ret
	.size ddot_kernel, .-ddot_kernel
