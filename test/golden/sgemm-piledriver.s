	.text
	.globl sgemm_kernel
	.type sgemm_kernel, @function
sgemm_kernel:
	pushq %rbp
	movq %rsp, %rbp
	movq $0, %rax
	movq %rbx, -8(%rbp)
	movq %rdx, %rbx
	subq $3, %rbx
	subq $368, %rsp
	movq %rbx, -56(%rbp)
	movq -56(%rbp), %rbx
	movq %r12, -24(%rbp)
	movq %r13, -32(%rbp)
	movq %r14, -40(%rbp)
	movq %r15, -48(%rbp)
	movq %rcx, -64(%rbp)
	movq %rdx, -72(%rbp)
	movq %rsi, -80(%rbp)
	movq %rdi, -88(%rbp)
	movq %r8, -96(%rbp)
	movq %r9, -104(%rbp)
	cmpq %rbx, %rax
	jge .Lend2
.Lbody1:
	movq -64(%rbp), %rbx
	movq %rax, %rdx
	movq %rbx, %rcx
	movq %rbx, %rdi
	imulq %rdx, %rcx
	movq 16(%rbp), %rdx
	leaq (%rdx,%rcx,4), %rsi
	movq %rax, %r8
	movq %rbx, %rcx
	imulq %r8, %rdi
	addq %rdi, %rcx
	movq %rbx, %r8
	leaq (%rdx,%rcx,4), %rdi
	movq $2, %rcx
	imulq %r8, %rcx
	movq %rbx, %r8
	movq %rax, %r9
	movq %rax, %r10
	imulq %r9, %r8
	movq %rbx, %r9
	addq %r8, %rcx
	movq %rsi, -120(%rbp)
	leaq (%rdx,%rcx,4), %r8
	movq $3, %rcx
	imulq %r9, %rcx
	movq %rbx, %r9
	imulq %r10, %r9
	movq -88(%rbp), %r10
	movq %r10, %r11
	addq %r9, %rcx
	subq $7, %r11
	leaq (%rdx,%rcx,4), %r9
	movq %r11, -112(%rbp)
	movq $0, %rcx
	movq -112(%rbp), %r11
	movq %rdi, -128(%rbp)
	movq %r8, -136(%rbp)
	movq %r9, -144(%rbp)
	cmpq %r11, %rcx
	jge .Lend4
.Lbody3:
	movq -80(%rbp), %r10
	movq %rax, %r12
	vxorps %ymm8, %ymm8, %ymm8
	movq %r10, %r11
	movq %r10, %r14
	vxorps %ymm9, %ymm9, %ymm9
	imulq %r12, %r11
	movq -104(%rbp), %r12
	vxorps %ymm10, %ymm10, %ymm10
	leaq (%r12,%r11,4), %r13
	movq %rax, %r15
	vxorps %ymm11, %ymm11, %ymm11
	movq -120(%rbp), %rbx
	movq %r10, %r11
	imulq %r15, %r14
	prefetchw 256(%rbx)
	movq %r10, %r15
	addq %r14, %r11
	movq %rax, %rbx
	leaq (%r12,%r11,4), %r14
	movq $2, %r11
	imulq %r15, %r11
	movq %r10, %r15
	movq -128(%rbp), %rdx
	imulq %rbx, %r15
	prefetchw 256(%rdx)
	addq %r15, %r11
	movq -136(%rbp), %rsi
	leaq (%r12,%r11,4), %rbx
	prefetchw 256(%rsi)
	movq -144(%rbp), %rdi
	movq $3, %r11
	movq %r10, %r15
	prefetchw 256(%rdi)
	imulq %r15, %r11
	movq %r10, %r15
	movq %rax, %rdx
	movq -88(%rbp), %rsi
	imulq %rdx, %r15
	movq %rsi, %rdi
	addq %r15, %r11
	movq $8, %r15
	leaq (%r12,%r11,4), %rdx
	imulq %rdi, %r15
	movq -96(%rbp), %r8
	movq $0, %r11
	movq %r15, -152(%rbp)
	leaq (%r8,%rcx,4), %r9
	movq -152(%rbp), %rdi
	cmpq %r10, %r11
	jge .Lend6
.Lbody5:
	# <mmUnrolledCOMP n=32>
	vmovups (%r9), %ymm0
	movq -88(%rbp), %rsi
	addq $1, %r11
	vbroadcastss (%r13), %ymm4
	cmpq %r10, %r11
	prefetcht0 (%r9,%rdi,4)
	prefetcht0 32(%r13)
	leaq (%r9,%rsi,4), %r9
	addq $4, %r13
	prefetcht0 32(%r14)
	prefetcht0 32(%rbx)
	prefetcht0 32(%rdx)
	vfmadd231ps %ymm4, %ymm0, %ymm8
	vbroadcastss (%r14), %ymm4
	addq $4, %r14
	vfmadd231ps %ymm4, %ymm0, %ymm9
	vbroadcastss (%rbx), %ymm4
	addq $4, %rbx
	vfmadd231ps %ymm4, %ymm0, %ymm10
	vbroadcastss (%rdx), %ymm4
	addq $4, %rdx
	vfmadd231ps %ymm4, %ymm0, %ymm11
	jl .Lbody5
.Lend6:
	# <mmUnrolledSTORE n=8>
	# <mmUnrolledSTORE n=8>
	# <mmUnrolledSTORE n=8>
	# <mmUnrolledSTORE n=8>
	movq -120(%rbp), %rsi
	addq $8, %rcx
	vmovups (%rsi), %ymm12
	vaddps %ymm8, %ymm12, %ymm12
	vmovups %ymm12, (%rsi)
	addq $32, %rsi
	movq -128(%rbp), %rdi
	vmovups (%rdi), %ymm8
	vaddps %ymm9, %ymm8, %ymm8
	vmovups %ymm8, (%rdi)
	addq $32, %rdi
	movq -136(%rbp), %r8
	vmovups (%r8), %ymm8
	vaddps %ymm10, %ymm8, %ymm8
	vmovups %ymm8, (%r8)
	addq $32, %r8
	movq -144(%rbp), %r12
	vmovups (%r12), %ymm8
	vaddps %ymm11, %ymm8, %ymm8
	vmovups %ymm8, (%r12)
	addq $32, %r12
	movq -112(%rbp), %r15
	movq %rbx, -160(%rbp)
	movq %rdx, -168(%rbp)
	movq %rsi, -120(%rbp)
	movq %rdi, -128(%rbp)
	movq %r8, -136(%rbp)
	movq %r9, -176(%rbp)
	movq %r11, -184(%rbp)
	movq %r12, -144(%rbp)
	movq %r13, -192(%rbp)
	movq %r14, -200(%rbp)
	cmpq %r15, %rcx
	jl .Lbody3
.Lend4:
	movq -64(%rbp), %rbx
	movq %rax, %rsi
	movq %rbx, %rdx
	movq %rbx, %r8
	imulq %rsi, %rdx
	movq %rcx, %rsi
	addq %rsi, %rdx
	movq 16(%rbp), %rsi
	leaq (%rsi,%rdx,4), %rdi
	movq %rax, %r9
	movq %rbx, %rdx
	imulq %r9, %r8
	addq %r8, %rdx
	movq %rcx, %r8
	addq %r8, %rdx
	movq %rbx, %r9
	leaq (%rsi,%rdx,4), %r8
	movq $2, %rdx
	imulq %r9, %rdx
	movq %rbx, %r9
	movq %rax, %r10
	movq %rax, %r11
	imulq %r10, %r9
	movq %rbx, %r10
	addq %r9, %rdx
	movq %rcx, %r9
	addq %r9, %rdx
	movq %rdi, -208(%rbp)
	leaq (%rsi,%rdx,4), %r9
	movq $3, %rdx
	imulq %r10, %rdx
	movq %rbx, %r10
	imulq %r11, %r10
	movq %r8, -216(%rbp)
	addq %r10, %rdx
	movq %rcx, %r10
	addq %r10, %rdx
	movq %r9, -224(%rbp)
	leaq (%rsi,%rdx,4), %r10
	movq %rcx, %rdx
	movq %rdx, %rcx
	movq -88(%rbp), %rdx
	movq %r10, -232(%rbp)
	cmpq %rdx, %rcx
	jge .Lend8
.Lbody7:
	movq -80(%rbp), %r10
	movq %rax, %r12
	vxorps %xmm12, %xmm12, %xmm12
	movq %r10, %r11
	movq %r10, %r14
	imulq %r12, %r11
	movq -104(%rbp), %r12
	vmovaps %xmm12, %xmm13
	vxorps %xmm12, %xmm12, %xmm12
	leaq (%r12,%r11,4), %r13
	movq %rax, %r15
	movq -208(%rbp), %rbx
	movq %r10, %r11
	vmovaps %xmm12, %xmm14
	vxorps %xmm12, %xmm12, %xmm12
	imulq %r15, %r14
	prefetchw 32(%rbx)
	movq %r10, %r15
	addq %r14, %r11
	movq %rax, %rbx
	vmovaps %xmm12, %xmm15
	vxorps %xmm12, %xmm12, %xmm12
	leaq (%r12,%r11,4), %r14
	movq $2, %r11
	imulq %r15, %r11
	movq %r10, %r15
	vmovaps %xmm12, %xmm0
	movq -216(%rbp), %rdx
	imulq %rbx, %r15
	prefetchw 32(%rdx)
	addq %r15, %r11
	movq -224(%rbp), %rsi
	leaq (%r12,%r11,4), %rbx
	prefetchw 32(%rsi)
	movq -232(%rbp), %rdi
	movq $3, %r11
	movq %r10, %r15
	prefetchw 32(%rdi)
	imulq %r15, %r11
	movq %r10, %r15
	movq %rax, %rdx
	movq -88(%rbp), %rsi
	imulq %rdx, %r15
	movq %rsi, %rdi
	addq %r15, %r11
	movq $8, %r15
	leaq (%r12,%r11,4), %rdx
	imulq %rdi, %r15
	movq -96(%rbp), %r8
	movq $0, %r11
	movq %r15, -240(%rbp)
	leaq (%r8,%rcx,4), %r9
	movq -240(%rbp), %rdi
	cmpq %r10, %r11
	jge .Lend10
.Lbody9:
	# <mmUnrolledCOMP n=4>
	vmovss (%r9), %xmm1
	vmovss (%r13), %xmm4
	movq -88(%rbp), %rsi
	addq $1, %r11
	prefetcht0 (%r9,%rdi,4)
	prefetcht0 32(%r13)
	addq $4, %r13
	cmpq %r10, %r11
	prefetcht0 32(%r14)
	prefetcht0 32(%rbx)
	prefetcht0 32(%rdx)
	vmovaps %xmm1, %xmm12
	vmovaps %xmm4, %xmm1
	vmovss (%r14), %xmm4
	addq $4, %r14
	vmulss %xmm1, %xmm12, %xmm2
	vmovss (%r9), %xmm1
	vmovaps %xmm1, %xmm12
	vmovaps %xmm4, %xmm1
	vmovss (%rbx), %xmm4
	addq $4, %rbx
	vmovaps %xmm2, %xmm3
	vaddss %xmm3, %xmm13, %xmm2
	vmovaps %xmm2, %xmm13
	vmulss %xmm1, %xmm12, %xmm2
	vmovss (%r9), %xmm1
	vmovaps %xmm1, %xmm12
	vmovaps %xmm4, %xmm1
	vmovss (%rdx), %xmm4
	addq $4, %rdx
	vmovaps %xmm2, %xmm3
	vaddss %xmm3, %xmm14, %xmm2
	vmovaps %xmm2, %xmm14
	vmulss %xmm1, %xmm12, %xmm2
	vmovss (%r9), %xmm1
	leaq (%r9,%rsi,4), %r9
	vmovaps %xmm1, %xmm12
	vmovaps %xmm4, %xmm1
	vmovaps %xmm2, %xmm3
	vaddss %xmm3, %xmm15, %xmm2
	vmovaps %xmm2, %xmm15
	vmulss %xmm1, %xmm12, %xmm2
	vmovaps %xmm2, %xmm3
	vaddss %xmm3, %xmm0, %xmm2
	vmovaps %xmm2, %xmm0
	jl .Lbody9
.Lend10:
	# <mmSTORE n=1>
	# <mmSTORE n=1>
	# <mmSTORE n=1>
	# <mmSTORE n=1>
	movq -208(%rbp), %rsi
	addq $1, %rcx
	vmovss (%rsi), %xmm8
	vmovaps %xmm8, %xmm12
	vaddss %xmm12, %xmm13, %xmm1
	vmovaps %xmm1, %xmm13
	vmovss %xmm13, (%rsi)
	addq $4, %rsi
	movq -216(%rbp), %rdi
	vmovss (%rdi), %xmm8
	vmovaps %xmm8, %xmm12
	vaddss %xmm12, %xmm14, %xmm13
	vmovaps %xmm13, %xmm14
	vmovss %xmm14, (%rdi)
	addq $4, %rdi
	movq -224(%rbp), %r8
	vmovss (%r8), %xmm8
	vmovaps %xmm8, %xmm12
	vaddss %xmm12, %xmm15, %xmm13
	vmovaps %xmm13, %xmm15
	vmovss %xmm15, (%r8)
	addq $4, %r8
	movq -232(%rbp), %r12
	vmovss (%r12), %xmm8
	vmovaps %xmm8, %xmm12
	vaddss %xmm12, %xmm0, %xmm13
	vmovaps %xmm13, %xmm0
	vmovss %xmm0, (%r12)
	addq $4, %r12
	movq -88(%rbp), %r15
	movq %rbx, -248(%rbp)
	movq %rdx, -256(%rbp)
	movq %rsi, -208(%rbp)
	movq %rdi, -216(%rbp)
	movq %r8, -224(%rbp)
	movq %r9, -264(%rbp)
	movq %r11, -184(%rbp)
	movq %r12, -232(%rbp)
	movq %r13, -272(%rbp)
	movq %r14, -280(%rbp)
	cmpq %r15, %rcx
	jl .Lbody7
.Lend8:
	addq $4, %rax
	movq -56(%rbp), %rbx
	movq %rcx, -288(%rbp)
	cmpq %rbx, %rax
	jl .Lbody1
.Lend2:
	movq %rax, %rbx
	movq %rbx, %rax
	movq -72(%rbp), %rbx
	cmpq %rbx, %rax
	jge .Lend12
.Lbody11:
	movq -64(%rbp), %rbx
	movq %rax, %rdx
	movq %rbx, %rcx
	movq -88(%rbp), %rdi
	imulq %rdx, %rcx
	movq %rdi, %r8
	movq 16(%rbp), %rdx
	subq $7, %r8
	leaq (%rdx,%rcx,4), %rsi
	movq %r8, -296(%rbp)
	movq $0, %rcx
	movq -296(%rbp), %r8
	movq %rsi, -304(%rbp)
	cmpq %r8, %rcx
	jge .Lend14
.Lbody13:
	movq -80(%rbp), %rdi
	movq %rax, %r9
	vxorps %ymm8, %ymm8, %ymm8
	movq %rdi, %r8
	movq -304(%rbp), %rbx
	imulq %r9, %r8
	movq -88(%rbp), %r12
	prefetchw 256(%rbx)
	movq -104(%rbp), %r9
	movq $8, %r11
	movq %r12, %r13
	leaq (%r9,%r8,4), %r10
	imulq %r13, %r11
	movq -96(%rbp), %rdx
	movq $0, %r8
	movq %r11, -312(%rbp)
	leaq (%rdx,%rcx,4), %rsi
	movq -312(%rbp), %r11
	cmpq %rdi, %r8
	jge .Lend16
.Lbody15:
	# <mmUnrolledCOMP n=8>
	vmovups (%rsi), %ymm0
	addq $1, %r8
	vbroadcastss (%r10), %ymm4
	cmpq %rdi, %r8
	prefetcht0 (%rsi,%r11,4)
	prefetcht0 32(%r10)
	leaq (%rsi,%r12,4), %rsi
	addq $4, %r10
	vfmadd231ps %ymm4, %ymm0, %ymm8
	jl .Lbody15
.Lend16:
	# <mmUnrolledSTORE n=8>
	movq -304(%rbp), %rbx
	addq $8, %rcx
	vmovups (%rbx), %ymm9
	vaddps %ymm8, %ymm9, %ymm9
	vmovups %ymm9, (%rbx)
	addq $32, %rbx
	movq -296(%rbp), %rdx
	movq %rbx, -304(%rbp)
	movq %rsi, -320(%rbp)
	movq %r8, -184(%rbp)
	movq %r10, -328(%rbp)
	cmpq %rdx, %rcx
	jl .Lbody13
.Lend14:
	movq -64(%rbp), %rbx
	movq %rax, %rsi
	movq %rbx, %rdx
	imulq %rsi, %rdx
	movq %rcx, %rsi
	addq %rsi, %rdx
	movq 16(%rbp), %rsi
	leaq (%rsi,%rdx,4), %rdi
	movq %rcx, %rdx
	movq %rdx, %rcx
	movq -88(%rbp), %rdx
	movq %rdi, -336(%rbp)
	cmpq %rdx, %rcx
	jge .Lend18
.Lbody17:
	movq -80(%rbp), %rdi
	movq %rax, %r9
	vxorps %xmm12, %xmm12, %xmm12
	movq %rdi, %r8
	movq -336(%rbp), %rbx
	imulq %r9, %r8
	movq -88(%rbp), %r12
	prefetchw 32(%rbx)
	vmovaps %xmm12, %xmm13
	movq -104(%rbp), %r9
	movq $8, %r11
	movq %r12, %r13
	leaq (%r9,%r8,4), %r10
	imulq %r13, %r11
	movq -96(%rbp), %rdx
	movq $0, %r8
	movq %r11, -344(%rbp)
	leaq (%rdx,%rcx,4), %rsi
	movq -344(%rbp), %r11
	cmpq %rdi, %r8
	jge .Lend20
.Lbody19:
	# <mmCOMP n=1>
	vmovss (%rsi), %xmm0
	vmovss (%r10), %xmm4
	addq $1, %r8
	prefetcht0 (%rsi,%r11,4)
	prefetcht0 32(%r10)
	leaq (%rsi,%r12,4), %rsi
	addq $4, %r10
	cmpq %rdi, %r8
	vmovaps %xmm0, %xmm12
	vmovaps %xmm4, %xmm14
	vmulss %xmm14, %xmm12, %xmm15
	vmovaps %xmm15, %xmm0
	vaddss %xmm0, %xmm13, %xmm15
	vmovaps %xmm15, %xmm13
	jl .Lbody19
.Lend20:
	# <mmSTORE n=1>
	movq -336(%rbp), %rbx
	addq $1, %rcx
	vmovss (%rbx), %xmm8
	cmpq %r12, %rcx
	vmovaps %xmm8, %xmm12
	vaddss %xmm12, %xmm13, %xmm14
	vmovaps %xmm14, %xmm13
	vmovss %xmm13, (%rbx)
	addq $4, %rbx
	movq %rbx, -336(%rbp)
	movq %rsi, -352(%rbp)
	movq %r8, -184(%rbp)
	movq %r10, -360(%rbp)
	jl .Lbody17
.Lend18:
	addq $1, %rax
	movq -72(%rbp), %rbx
	movq %rcx, -288(%rbp)
	cmpq %rbx, %rax
	jl .Lbody11
.Lend12:
	movq -8(%rbp), %rbx
	movq -24(%rbp), %r12
	movq -32(%rbp), %r13
	movq -40(%rbp), %r14
	movq -48(%rbp), %r15
	vzeroupper
	movq %rbp, %rsp
	popq %rbp
	ret
	.size sgemm_kernel, .-sgemm_kernel
