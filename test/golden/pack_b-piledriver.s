	.text
	.globl dpack_b_kernel
	.type dpack_b_kernel, @function
dpack_b_kernel:
	pushq %rbp
	movq %rsp, %rbp
	movq $0, %rax
	subq $144, %rsp
	movq %rbx, -8(%rbp)
	movq %r12, -24(%rbp)
	movq %rcx, -56(%rbp)
	movq %rdx, -64(%rbp)
	movq %rsi, -72(%rbp)
	movq %rdi, -80(%rbp)
	movq %r8, -88(%rbp)
	cmpq %rsi, %rax
	jge .Lend2
.Lbody1:
	movq -64(%rbp), %rbx
	movq %rax, %rdx
	movq %rbx, %rcx
	movq %rax, %r8
	imulq %rdx, %rcx
	movq -56(%rbp), %rdx
	leaq (%rdx,%rcx,8), %rsi
	movq -80(%rbp), %rcx
	movq %rcx, %rdi
	movq %rcx, %r10
	imulq %r8, %rdi
	movq -88(%rbp), %r8
	subq $7, %r10
	leaq (%r8,%rdi,8), %r9
	movq %r10, -96(%rbp)
	movq $0, %rdi
	movq -96(%rbp), %r10
	cmpq %r10, %rdi
	jge .Lend4
.Lbody3:
	# <svUnrolledCOPY n=8>
	vmovupd (%rsi), %ymm0
	addq $8, %rdi
	prefetcht0 512(%rsi)
	prefetchw 512(%r9)
	cmpq %r10, %rdi
	vmovupd %ymm0, (%r9)
	vmovupd 32(%rsi), %ymm0
	addq $64, %rsi
	vmovupd %ymm0, 32(%r9)
	addq $64, %r9
	jl .Lbody3
.Lend4:
	movq -64(%rbp), %rbx
	movq %rax, %r8
	movq %rbx, %rdx
	movq %rax, %r11
	imulq %r8, %rdx
	movq %rdi, %r8
	addq %r8, %rdx
	movq -56(%rbp), %r8
	leaq (%r8,%rdx,8), %r10
	movq %rcx, %rdx
	imulq %r11, %rdx
	movq %rdi, %r11
	addq %r11, %rdx
	movq -88(%rbp), %r11
	leaq (%r11,%rdx,8), %r12
	movq %rdi, %rdx
	movq %rdx, %rdi
	movq %rsi, -104(%rbp)
	movq %r9, -112(%rbp)
	cmpq %rcx, %rdi
	jge .Lend6
.Lbody5:
	# <svCOPY n=1>
	vmovsd (%r10), %xmm0
	prefetcht0 64(%r10)
	addq $1, %rdi
	addq $8, %r10
	prefetchw 64(%r12)
	cmpq %rcx, %rdi
	vmovapd %xmm0, %xmm10
	vmovsd %xmm10, (%r12)
	addq $8, %r12
	jl .Lbody5
.Lend6:
	addq $1, %rax
	movq -72(%rbp), %rbx
	movq %rdi, -120(%rbp)
	movq %r10, -128(%rbp)
	movq %r12, -136(%rbp)
	cmpq %rbx, %rax
	jl .Lbody1
.Lend2:
	movq -8(%rbp), %rbx
	movq -24(%rbp), %r12
	vzeroupper
	movq %rbp, %rsp
	popq %rbp
	ret
	.size dpack_b_kernel, .-dpack_b_kernel
