(* Validates the @native-smoke artifacts.

   Two halves, both of which skip gracefully — with an explicit
   `skipped:true` marker, never silently — when the host CPU lacks the
   SIMD features the generated code needs:

   1. The three-way differential (native vs simulator vs reference
      BLAS) on every kernel x both precisions, run in-process through
      the same guarded path `augem generate --native` uses.  Any Fail
      is fatal; a Skip is only legal when cpuid actually reports the
      feature missing.

   2. The structure of BENCH_native.json as emitted by
      `bench/main.exe --native-smoke`: host feature map, per-precision
      measured points with positive MFLOPS and timing metadata, the
      differential gate recorded as all-ok, and the SGEMM-vs-DGEMM
      measured ordering at the largest size agreeing with the model's
      predicted ordering. *)

module A = Augem
module Arch = A.Machine.Arch
module Et = A.Machine.Etype
module K = A.Ir.Kernels
module Json = A.Json

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("FAIL: " ^ s); exit 1) fmt

let member path j =
  match Json.member path j with
  | Some v -> v
  | None -> fail "missing field %S in %s" path (Json.to_string j)

(* --- half 1: the differential sweep ------------------------------------- *)

let kernels =
  K.[ Gemm; Gemv; Axpy; Dot; Ger; Scal; Copy; Pack_a; Pack_b ]

let differential_sweep () =
  if not (A.Native_check.host_supported ()) then begin
    print_endline "native differential sweep: skipped:true (host lacks SSE2+AVX)";
    false
  end
  else begin
    let checked = ref 0 and skipped = ref 0 in
    List.iter
      (fun (arch : Arch.t) ->
        List.iter
          (fun et ->
            List.iter
              (fun kernel ->
                let cand = A.Tuner.safe_baseline in
                let g =
                  A.generate ~et ~arch ~config:cand.A.Tuner.cand_config
                    ~opts:cand.A.Tuner.cand_opts kernel
                in
                match A.Native_check.check ~arch ~et kernel g.A.g_program with
                | A.Native_check.Pass -> incr checked
                | A.Native_check.Skip m ->
                    incr skipped;
                    Printf.printf "  skip %s %s %s: %s\n" arch.Arch.name
                      (Et.name et) (K.name_to_string kernel) m
                | A.Native_check.Fail m ->
                    fail "differential %s %s %s: %s" arch.Arch.name
                      (Et.name et) (K.name_to_string kernel) m)
              kernels)
          [ Et.F64; Et.F32 ])
      Arch.extended;
    Printf.printf
      "native differential sweep: %d kernel/arch/precision combinations \
       pass (%d feature-skipped)\n"
      !checked !skipped;
    if !checked = 0 then
      fail "host claims SSE2+AVX but every differential check skipped";
    true
  end

(* --- half 2: BENCH_native.json ------------------------------------------ *)

let check_point p =
  (match member "mflops" p with
  | Json.Float f when f > 0. -> ()
  | x -> fail "point.mflops: expected positive, got %s" (Json.to_string x));
  (match member "predicted_mflops" p with
  | Json.Float f when f > 0. -> ()
  | x -> fail "point.predicted_mflops: %s" (Json.to_string x));
  (match member "runs" p with
  | Json.Int n when n >= 1 -> ()
  | x -> fail "point.runs: %s" (Json.to_string x));
  match member "min_s" p with
  | Json.Float f when f > 0. -> ()
  | x -> fail "point.min_s: %s" (Json.to_string x)

(* measured MFLOPS at the largest size of one precision entry *)
let at_largest pr =
  let points =
    match member "points" pr with
    | Json.List l -> l
    | x -> fail "points: expected a list, got %s" (Json.to_string x)
  in
  if points = [] then fail "points: empty";
  List.iter check_point points;
  let best =
    List.fold_left
      (fun (sz0, _m0 as acc) p ->
        match (member "size" p, member "mflops" p) with
        | Json.Int sz, Json.Float m -> if sz > sz0 then (sz, m) else acc
        | _ -> fail "point: malformed size/mflops")
      (min_int, 0.) points
  in
  best

let predicted_at_largest pr =
  let points =
    match member "points" pr with Json.List l -> l | _ -> assert false
  in
  List.fold_left
    (fun (sz0, _m0 as acc) p ->
      match (member "size" p, member "predicted_mflops" p) with
      | Json.Int sz, Json.Float m -> if sz > sz0 then (sz, m) else acc
      | _ -> fail "point: malformed size/predicted_mflops")
    (min_int, 0.) points

let check_precision pr =
  match member "skipped" pr with
  | Json.Bool true ->
      (match member "reason" pr with
      | Json.String s ->
          Printf.printf "  %s: skipped:true (%s)\n"
            (Json.to_string (member "name" pr)) s
      | x -> fail "skipped precision without a reason: %s" (Json.to_string x));
      None
  | Json.Bool false ->
      (match member "differential" pr with
      | Json.List (_ :: _ as diffs) ->
          List.iter
            (fun d ->
              match member "ok" d with
              | Json.Bool true -> ()
              | x -> fail "differential.ok: %s" (Json.to_string x))
            diffs
      | x -> fail "differential: expected non-empty list, got %s"
               (Json.to_string x));
      Some pr
  | x -> fail "precision.skipped: expected bool, got %s" (Json.to_string x)

let check_bench path =
  let j =
    match Json.of_file path with
    | Ok j -> j
    | Error e -> fail "%s: %s" path e
  in
  (match member "experiment" j with
  | Json.String "native" -> ()
  | x -> fail "experiment: %s" (Json.to_string x));
  (* host map: every entry a bool *)
  (match member "host" j with
  | Json.Obj fields ->
      List.iter
        (fun (k, v) ->
          match v with
          | Json.Bool _ -> ()
          | x -> fail "host.%s: expected bool, got %s" k (Json.to_string x))
        fields
  | x -> fail "host: expected object, got %s" (Json.to_string x));
  match member "skipped" j with
  | Json.Bool true ->
      (match member "reason" j with
      | Json.String s ->
          Printf.printf "BENCH_native.json: skipped:true (%s)\n" s
      | x -> fail "skipped bench without a reason: %s" (Json.to_string x))
  | Json.Bool false -> (
      let precisions =
        match member "precisions" j with
        | Json.List l -> List.filter_map check_precision l
        | x -> fail "precisions: %s" (Json.to_string x)
      in
      let find name =
        List.find_opt
          (fun pr ->
            match member "name" pr with
            | Json.String s -> String.equal s name
            | _ -> false)
          precisions
      in
      match (find "DGEMM", find "SGEMM") with
      | Some d, Some s ->
          let sz_d, m_d = at_largest d and sz_s, m_s = at_largest s in
          if sz_d <> sz_s then
            fail "DGEMM/SGEMM largest sizes differ: %d vs %d" sz_d sz_s;
          let _, p_d = predicted_at_largest d
          and _, p_s = predicted_at_largest s in
          (* the measured ordering at the largest size must agree with
             the model's predicted ordering (f32 has twice the lane
             count, so both should favour SGEMM) *)
          if (m_s > m_d) <> (p_s > p_d) then
            fail
              "measured ordering at size %d (SGEMM %.0f vs DGEMM %.0f) \
               contradicts predicted (%.0f vs %.0f)"
              sz_d m_s m_d p_s p_d;
          Printf.printf
            "BENCH_native.json: DGEMM %.0f / SGEMM %.0f MFLOPS measured at \
             %d^3; ordering matches model\n"
            m_d m_s sz_d
      | _ ->
          (* a precision may be feature-skipped (e.g. no AVX for f32
             only is impossible here, but keep the structure honest) *)
          Printf.printf
            "BENCH_native.json: fewer than two runnable precisions; \
             ordering check skipped\n")
  | x -> fail "skipped: expected bool, got %s" (Json.to_string x)

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "." in
  let ran = differential_sweep () in
  check_bench (Filename.concat dir "BENCH_native.json");
  if ran then print_endline "native-smoke artifacts OK"
  else print_endline "native-smoke artifacts OK (host-skipped)"
