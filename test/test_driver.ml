(* The staged-lowering driver: golden byte-identity against the
   pre-refactor assembly (the refactor moved code, not semantics),
   trace determinism (two runs of the same lowering agree stage by
   stage), the `augem explain` trace contract (enough named stages,
   each with stats, timing, fingerprint and snapshot), and the
   transformation-script fixpoint over every configuration the tuner
   can visit. *)

module A = Augem
module Arch = A.Machine.Arch
module Kernels = A.Ir.Kernels
module Pipeline = A.Transform.Pipeline
module Prefetch = A.Transform.Prefetch
module Script = A.Transform.Script
module Trace = A.Driver.Trace
module Lower = A.Driver.Lower

let archs = [ Arch.sandy_bridge; Arch.piledriver ]

(* Short names used by the golden corpus file layout
   (golden/<kernel>-<arch>.s). *)
let short_name = function
  | Kernels.Gemm -> "gemm"
  | Kernels.Gemv -> "gemv"
  | Kernels.Axpy -> "axpy"
  | Kernels.Dot -> "dot"
  | Kernels.Ger -> "ger"
  | Kernels.Scal -> "scal"
  | Kernels.Copy -> "copy"
  | Kernels.Pack_a -> "pack_a"
  | Kernels.Pack_b -> "pack_b"

(* The CLI's per-kernel default configuration (bin/augem_cli.ml,
   [config_of_flags] with no flags): the goldens were captured through
   `augem generate` under exactly these settings. *)
let cli_default_config (k : Kernels.name) : Pipeline.config =
  let base =
    match k with
    | Kernels.Gemm -> { Pipeline.default with jam = [ ("j", 4); ("i", 8) ] }
    | Kernels.Gemv -> { Pipeline.default with inner_unroll = Some ("j", 8) }
    | Kernels.Dot ->
        { Pipeline.default with inner_unroll = Some ("i", 8);
          expand_reduction = Some 8 }
    | Kernels.Axpy | Kernels.Ger | Kernels.Scal | Kernels.Copy
    | Kernels.Pack_a ->
        { Pipeline.default with inner_unroll = Some ("i", 8) }
    | Kernels.Pack_b ->
        { Pipeline.default with inner_unroll = Some ("l", 8) }
  in
  {
    base with
    prefetch = Some { Prefetch.pf_distance = 8; pf_stores = true };
  }

let every_pair f =
  List.iter
    (fun (name, _) -> List.iter (fun arch -> f name arch) archs)
    Kernels.all

(* --- golden byte-identity ---------------------------------------------- *)

(* Both precisions: the f64 corpus is <kernel>-<arch>.s, the f32 corpus
   is the BLAS-style s<kernel>-<arch>.s (captured through `augem
   generate --precision f32` under the same per-kernel defaults). *)
let ets = A.Machine.Etype.[ F64; F32 ]

let golden_base et name (arch : Arch.t) =
  let prefix = match et with A.Machine.Etype.F64 -> "" | F32 -> "s" in
  Printf.sprintf "%s%s-%s.s" prefix (short_name name) arch.Arch.name

let golden_file base =
  (* `dune runtest` runs in the test directory; `dune exec
     test/main.exe` runs at the project root *)
  let candidates =
    [ Filename.concat "golden" base;
      Filename.concat (Filename.concat "test" "golden") base ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some f -> f
  | None -> Alcotest.failf "golden file %s not found" base

let test_golden_assembly () =
  List.iter
    (fun et ->
      every_pair (fun name arch ->
          let file = golden_file (golden_base et name arch) in
          let expected = In_channel.with_open_bin file In_channel.input_all in
          let got =
            A.assembly
              (A.generate ~et ~arch ~config:(cli_default_config name) name)
          in
          if not (String.equal expected got) then
            Alcotest.failf
              "%s %s on %s: assembly differs from %s (%d vs %d bytes)"
              (A.Machine.Etype.name et) (short_name name) arch.Arch.name file
              (String.length got) (String.length expected)))
    ets

(* --- trace determinism -------------------------------------------------- *)

let stage_key (r : Trace.stage_record) =
  Printf.sprintf "%d %s %s %s" r.Trace.sr_index r.Trace.sr_name
    r.Trace.sr_kind r.Trace.sr_fingerprint

let test_trace_deterministic () =
  every_pair (fun name arch ->
      let config = cli_default_config name in
      let t1 = A.explain ~arch ~config name in
      let t2 = A.explain ~arch ~config name in
      Alcotest.(check (list string))
        (Printf.sprintf "%s/%s stage records" (short_name name) arch.Arch.name)
        (List.map stage_key t1.Trace.tr_stages)
        (List.map stage_key t2.Trace.tr_stages);
      if not (Trace.program t1 = Trace.program t2) then
        Alcotest.failf "%s on %s: programs differ between identical runs"
          (short_name name) arch.Arch.name)

(* --- the explain trace contract ----------------------------------------- *)

let test_explain_trace_contract () =
  every_pair (fun name arch ->
      let opts = { Lower.default_opts with Lower.snapshots = true } in
      let t = A.explain ~opts ~arch ~config:(cli_default_config name) name in
      let where = Printf.sprintf "%s/%s" (short_name name) arch.Arch.name in
      let n = List.length t.Trace.tr_stages in
      if n < 8 then Alcotest.failf "%s: only %d stages (want >= 8)" where n;
      let names = Trace.stage_names t in
      Alcotest.(check int)
        (where ^ " stage names unique")
        n
        (List.length (List.sort_uniq String.compare names));
      (* the backend stages are always present, in lowering order *)
      List.iter
        (fun s ->
          if not (List.mem s names) then
            Alcotest.failf "%s: stage %S missing from %s" where s
              (String.concat ", " names))
        [
          "identify-templates"; "plan-vectorization"; "bind-parameters";
          "emit-body"; "emit-frame"; "schedule";
        ];
      List.iter
        (fun (r : Trace.stage_record) ->
          let swhere = Printf.sprintf "%s stage %S" where r.Trace.sr_name in
          if r.Trace.sr_stats = [] then Alcotest.failf "%s: no stats" swhere;
          if r.Trace.sr_ms < 0.0 then
            Alcotest.failf "%s: negative wall time" swhere;
          Alcotest.(check int)
            (swhere ^ " fingerprint is an MD5 hex digest")
            32
            (String.length r.Trace.sr_fingerprint);
          match r.Trace.sr_artifact with
          | Some a when String.length a > 0 -> ()
          | Some _ -> Alcotest.failf "%s: empty snapshot" swhere
          | None -> Alcotest.failf "%s: snapshot missing" swhere)
        t.Trace.tr_stages;
      (* the trace carries the endpoints the CLI renders *)
      (match Trace.optimized t with
      | Some _ -> ()
      | None -> Alcotest.failf "%s: optimized kernel missing" where);
      if (Trace.program t).A.Machine.Insn.prog_insns = [] then
        Alcotest.failf "%s: empty final program" where)

(* Without snapshots (the tuner path), traces must not retain rendered
   artifacts — they are per-candidate and would dominate memory. *)
let test_no_snapshots_by_default () =
  let t =
    A.explain ~arch:Arch.sandy_bridge
      ~config:(cli_default_config Kernels.Gemm)
      Kernels.Gemm
  in
  List.iter
    (fun (r : Trace.stage_record) ->
      if r.Trace.sr_artifact <> None then
        Alcotest.failf "stage %S retained a snapshot without opts.snapshots"
          r.Trace.sr_name)
    t.Trace.tr_stages

(* --- script fixpoint over the tuner's search spaces ---------------------- *)

let script_of_candidate (c : A.Tuner.candidate) : Script.t =
  {
    Script.sc_config = c.A.Tuner.cand_config;
    sc_prefer =
      (match c.A.Tuner.cand_opts.A.Codegen.Emit.prefer with
      | A.Codegen.Plan.Prefer_auto -> `Auto
      | A.Codegen.Plan.Prefer_vdup -> `Vdup
      | A.Codegen.Plan.Prefer_shuf -> `Shuf);
    sc_width =
      Option.map A.Machine.Insn.width_bits
        c.A.Tuner.cand_opts.A.Codegen.Emit.max_width;
  }

(* Every configuration the tuner can visit must survive
   [to_string] |> [parse] exactly: the script language is the exchange
   format for tuning results, so a lossy corner means an unreproducible
   sweep winner. *)
let test_script_fixpoint_over_spaces () =
  let checked = ref 0 in
  List.iter
    (fun (name, _) ->
      List.iter
        (fun c ->
          let s = script_of_candidate c in
          let src = Script.to_string s in
          match Script.parse src with
          | Error msg ->
              Alcotest.failf "%s candidate failed to re-parse: %s\n%s"
                (short_name name) msg src
          | Ok s' ->
              incr checked;
              if s' <> s then
                Alcotest.failf "%s candidate not a fixpoint:\n%s\nvs\n%s"
                  (short_name name) src (Script.to_string s'))
        (A.Tuner.space_for name))
    Kernels.all;
  Alcotest.(check bool)
    "covered the whole space" true (!checked > 100)

let suite =
  [
    Alcotest.test_case
      "golden assembly byte-identical (9 kernels x 2 arches x 2 precisions)"
      `Quick test_golden_assembly;
    Alcotest.test_case "trace deterministic across runs" `Quick
      test_trace_deterministic;
    Alcotest.test_case "explain trace contract (stages, stats, snapshots)"
      `Quick test_explain_trace_contract;
    Alcotest.test_case "no snapshots unless requested" `Quick
      test_no_snapshots_by_default;
    Alcotest.test_case "script to_string/parse fixpoint over tuner spaces"
      `Quick test_script_fixpoint_over_spaces;
  ]
