(* Validates the @serve-smoke artifacts: the response transcript of a
   scripted stdio serving session (serve_responses.txt) and the smoke
   serving-benchmark artifact (BENCH_serve.json).

   The checks mirror the issue's acceptance bar: a first request is
   answered from a real sweep (tier "tuned") with non-degraded
   assembly, the identical second request is an in-memory hit, the
   stats snapshot agrees exactly with the scripted sequence, and the
   benchmark's warm-path mean latency is at least 10x below cold. *)

module Json = Augem.Json

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("FAIL: " ^ s); exit 1) fmt

let parse_line what line =
  match Json.parse line with
  | Ok j -> j
  | Error e -> fail "%s: unparsable JSON (%s): %s" what e line

let member path j =
  match Json.member path j with
  | Some v -> v
  | None -> fail "missing field %S in %s" path (Json.to_string j)

let expect_int what v j =
  match j with
  | Json.Int n when n = v -> ()
  | _ -> fail "%s: expected %d, got %s" what v (Json.to_string j)

let expect_str what v j =
  match j with
  | Json.String s when s = v -> ()
  | _ -> fail "%s: expected %S, got %s" what v (Json.to_string j)

let expect_bool what v j =
  match j with
  | Json.Bool b when b = v -> ()
  | _ -> fail "%s: expected %b, got %s" what v (Json.to_string j)

let check_responses path =
  let lines = In_channel.with_open_text path In_channel.input_lines in
  let lines = List.filter (fun l -> String.trim l <> "") lines in
  (match lines with
  | [ _; _; _; _ ] -> ()
  | _ -> fail "expected 4 response lines in %s, got %d" path (List.length lines));
  let r = Array.of_list (List.map (parse_line "response") lines) in
  (* 1: cold tune — a sweep ran, nothing degraded, assembly present *)
  expect_int "r1.id" 1 (member "id" r.(0));
  expect_bool "r1.ok" true (member "ok" r.(0));
  expect_bool "r1.degraded" false (member "degraded" r.(0));
  let prov1 = member "provenance" r.(0) in
  expect_str "r1.tier" "tuned" (member "tier" prov1);
  expect_bool "r1.fell_back" false (member "fell_back" prov1);
  (match member "assembly" r.(0) with
  | Json.String s when String.length s > 0 ->
      (* a real kernel, not a placeholder: it must carry a text section *)
      if not (String.length s > 16) then fail "r1.assembly implausibly short"
  | _ -> fail "r1.assembly missing or empty");
  (* 2: identical request — the bounded in-memory tier answers *)
  expect_int "r2.id" 2 (member "id" r.(1));
  expect_str "r2.tier" "memory" (member "tier" (member "provenance" r.(1)));
  (* 3: ping *)
  expect_bool "r3.pong" true (member "pong" r.(2));
  (* 4: stats consistent with exactly this scripted sequence *)
  let stats = member "stats" r.(3) in
  let requests = member "requests" stats in
  expect_int "stats.requests.tune" 2 (member "tune" requests);
  expect_int "stats.requests.ping" 1 (member "ping" requests);
  expect_int "stats.requests.stats" 1 (member "stats" requests);
  let tiers = member "tiers" stats in
  expect_int "stats.tiers.tuned" 1 (member "tuned" tiers);
  expect_int "stats.tiers.memory" 1 (member "memory" tiers);
  expect_int "stats.tiers.coalesced" 0 (member "coalesced" tiers);
  expect_int "stats.rejects.overload" 0 (member "overload" (member "rejects" stats));
  expect_int "stats.errors" 0 (member "errors" stats);
  (* an undisturbed session: the resilience gauges exist and are all
     quiet — no worker died, no circuit opened, nothing quarantined *)
  let res = member "resilience" stats in
  expect_int "stats.resilience.worker_deaths" 0 (member "worker_deaths" res);
  expect_int "stats.resilience.worker_restarts" 0 (member "worker_restarts" res);
  expect_int "stats.resilience.breaker_open" 0 (member "breaker_open" res);
  expect_int "stats.resilience.breaker_open_total" 0
    (member "breaker_open_total" res);
  expect_int "stats.resilience.cache_quarantined" 0
    (member "cache_quarantined" res);
  (match member "degraded" stats with
  | degraded ->
      expect_int "stats.degraded.lost" 0 (member "lost" degraded);
      expect_int "stats.degraded.breaker_open" 0 (member "breaker_open" degraded));
  (match member "uptime_ms" stats with
  | Json.Float f when f >= 0. -> ()
  | Json.Int n when n >= 0 -> ()
  | x -> fail "stats.uptime_ms: expected a non-negative number, got %s"
           (Json.to_string x));
  (* native-capability object: a "supported" verdict plus one boolean
     per cpuid-probed SIMD feature (the set depends on the host, so
     only the structure is checked) *)
  let native = member "native" stats in
  (match member "supported" native with
  | Json.Bool _ -> ()
  | x -> fail "stats.native.supported: expected a bool, got %s"
           (Json.to_string x));
  (match native with
  | Json.Obj fields ->
      if List.length fields < 2 then
        fail "stats.native: expected per-feature booleans beside 'supported'";
      List.iter
        (fun (k, v) ->
          match v with
          | Json.Bool _ -> ()
          | x -> fail "stats.native.%s: expected a bool, got %s" k
                   (Json.to_string x))
        fields
  | x -> fail "stats.native: expected an object, got %s" (Json.to_string x));
  (* both tune requests are in the latency histogram (only tune
     requests pay a measurable admission-to-response path) *)
  expect_int "stats.request_ms.count" 2 (member "count" (member "request_ms" stats))

let check_bench path =
  let j =
    match Json.of_file path with
    | Ok j -> j
    | Error e -> fail "%s: %s" path e
  in
  expect_str "mode" "smoke" (member "mode" j);
  let cold = member "cold" j and warm = member "warm" j in
  let count which v =
    match member "count" v with
    | Json.Int n when n > 0 -> n
    | x -> fail "%s.count: %s" which (Json.to_string x)
  in
  let cold_n = count "cold" cold and warm_n = count "warm" warm in
  let speedup =
    match member "speedup" j with
    | Json.Float f -> f
    | Json.Int n -> float_of_int n
    | x -> fail "speedup: %s" (Json.to_string x)
  in
  if speedup < 10. then
    fail "warm path only %.1fx faster than cold (acceptance floor: 10x)" speedup;
  (* the embedded stats snapshot agrees with the request counts *)
  let stats = member "stats" j in
  let tiers = member "tiers" stats in
  expect_int "bench stats.tiers.memory" warm_n (member "memory" tiers);
  expect_int "bench stats.tiers.tuned" cold_n (member "tuned" tiers);
  expect_int "bench stats.requests.tune" (cold_n + warm_n)
    (member "tune" (member "requests" stats))

let () =
  match Sys.argv with
  | [| _; responses; bench |] ->
      check_responses responses;
      check_bench bench;
      print_endline "serve-smoke artifacts OK"
  | _ ->
      prerr_endline "usage: validate_serve RESPONSES.txt BENCH_serve.json";
      exit 2
