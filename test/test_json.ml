(* The JSON layer under the service wire protocol: string-escape
   corner cases (\uXXXX strictness, surrogate pairs, control
   characters) and a parse<->emit round-trip property over randomly
   generated finite values. *)

module Json = Augem.Json

let parse_ok s =
  match Json.parse s with
  | Ok v -> v
  | Error e -> Alcotest.failf "parse %S failed: %s" s e

let parse_err s =
  match Json.parse s with
  | Ok v -> Alcotest.failf "parse %S unexpectedly succeeded: %s" s (Json.to_string v)
  | Error _ -> ()

let check_json = Alcotest.testable (Fmt.of_to_string Json.to_string) ( = )

let test_escape_emit () =
  Alcotest.(check string)
    "control escapes" {|"\b\f\n\r\t"|}
    (Json.to_string (Json.String "\b\012\n\r\t"));
  Alcotest.(check string)
    "low control chars use \\u" {|"\u0001\u001f"|}
    (Json.to_string (Json.String "\001\031"));
  Alcotest.(check string)
    "quote and backslash" {|"a\"b\\c"|}
    (Json.to_string (Json.String "a\"b\\c"))

let test_escape_parse () =
  Alcotest.check check_json "basic escapes" (Json.String "a\"b\\c/\b\012\n\r\t")
    (parse_ok {|"a\"b\\c\/\b\f\n\r\t"|});
  Alcotest.check check_json "\\u BMP" (Json.String "\xe2\x82\xac")
    (parse_ok {|"€"|});
  Alcotest.check check_json "surrogate pair" (Json.String "\xf0\x9f\x98\x80")
    (parse_ok {|"😀"|})

let test_escape_strictness () =
  (* exactly four strict hex digits: OCaml's int_of_string underscore
     leniency must not leak into the wire format *)
  parse_err {|"\u_123"|};
  parse_err {|"\u12"|};
  parse_err {|"\u12G4"|};
  parse_err {|"\uD800"|} (* lone high surrogate *);
  parse_err {|"\uDC00"|} (* lone low surrogate *);
  parse_err {|"\uD800x"|};
  parse_err {|"\x41"|} (* not a JSON escape *)

let test_number_edges () =
  (match parse_ok "123456789012345678901234567890" with
  | Json.Float _ -> ()
  | v ->
      Alcotest.failf "big integer should fall back to Float, got %s"
        (Json.to_string v));
  Alcotest.check check_json "int max" (Json.Int max_int)
    (parse_ok (string_of_int max_int));
  Alcotest.check check_json "negative" (Json.Int (-42)) (parse_ok "-42");
  Alcotest.check check_json "float" (Json.Float 1.5) (parse_ok "1.5")

let test_round_trip_units () =
  let rt v = Alcotest.check check_json (Json.to_string v) v (parse_ok (Json.to_string v)) in
  rt (Json.String "\b\012\127");
  rt (Json.String "embedded\nnewline");
  rt (Json.Obj [ ("k\twith\ttabs", Json.List [ Json.Null; Json.Bool false ]) ]);
  rt (Json.Float 0.1);
  rt (Json.Float (-3.0));
  rt (Json.Int 0)

(* --- fuzz: parse (to_string v) = Ok v ------------------------------------ *)

let arb_value =
  let open QCheck in
  let leaf =
    Gen.oneof
      [
        Gen.return Json.Null;
        Gen.map (fun b -> Json.Bool b) Gen.bool;
        Gen.map (fun i -> Json.Int i) Gen.int;
        (* finite floats only: non-finite emits as null by design *)
        Gen.map (fun f -> Json.Float f) (Gen.float_range (-1e9) 1e9);
        Gen.map (fun s -> Json.String s) Gen.string;
      ]
  in
  let value =
    Gen.sized (fun n ->
        Gen.fix
          (fun self n ->
            if n = 0 then leaf
            else
              Gen.oneof
                [
                  leaf;
                  Gen.map
                    (fun xs -> Json.List xs)
                    (Gen.list_size (Gen.int_bound 4) (self (n / 2)));
                  Gen.map
                    (fun kvs ->
                      (* dedupe keys: Obj is an assoc list and duplicate
                         keys would not survive member-wise comparison *)
                      let seen = Hashtbl.create 8 in
                      Json.Obj
                        (List.filter
                           (fun (k, _) ->
                             if Hashtbl.mem seen k then false
                             else (Hashtbl.add seen k (); true))
                           kvs))
                    (Gen.list_size (Gen.int_bound 4)
                       (Gen.pair Gen.(string_size (int_bound 8)) (self (n / 2))));
                ])
          (min n 6))
  in
  make ~print:Json.to_string value

let fuzz_round_trip =
  QCheck.Test.make ~name:"parse (to_string v) = Ok v" ~count:500 arb_value
    (fun v ->
      match Json.parse (Json.to_string v) with
      | Ok v' -> v = v'
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "escape emit" `Quick test_escape_emit;
    Alcotest.test_case "escape parse" `Quick test_escape_parse;
    Alcotest.test_case "escape strictness" `Quick test_escape_strictness;
    Alcotest.test_case "number edges" `Quick test_number_edges;
    Alcotest.test_case "round-trip units" `Quick test_round_trip_units;
    QCheck_alcotest.to_alcotest fuzz_round_trip;
  ]
