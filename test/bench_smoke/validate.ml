(* Validator behind the @bench-smoke alias: the JSON artifacts the
   benchmark harness just emitted must parse and carry the documented
   shape (EXPERIMENTS.md), so downstream plotting scripts can rely on
   the keys without running the full sweep. *)

module Json = Augem.Json

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.eprintf "bench-smoke: FAIL %s\n" msg)
    fmt

let field ~ctx name v =
  match Json.member name v with
  | Some x -> x
  | None ->
      fail "%s: missing field %S" ctx name;
      Json.Null

let as_list ~ctx name v =
  match field ~ctx name v with
  | Json.List l ->
      if l = [] then fail "%s: field %S is empty" ctx name;
      l
  | Json.Null -> []
  | _ ->
      fail "%s: field %S is not an array" ctx name;
      []

let check_string ~ctx ?expect name v =
  match (field ~ctx name v, expect) with
  | Json.String s, Some e when s <> e ->
      fail "%s: field %S is %S, expected %S" ctx name s e
  | Json.String _, _ -> ()
  | Json.Null, _ -> ()
  | _ -> fail "%s: field %S is not a string" ctx name

let check_number ~ctx name v =
  match field ~ctx name v with
  | Json.Int _ | Json.Float _ | Json.Null -> ()
  | _ -> fail "%s: field %S is not a number" ctx name

let check_point ~ctx v =
  check_number ~ctx "size" v;
  check_number ~ctx "mflops" v

let check_series ~ctx v =
  check_string ~ctx "label" v;
  List.iter (check_point ~ctx:(ctx ^ ".points")) (as_list ~ctx "points" v);
  check_number ~ctx "mean_mflops" v

let check_fig18 file =
  match Json.of_file file with
  | Error msg -> fail "%s: %s" file msg
  | Ok j ->
      let ctx = Filename.basename file in
      check_string ~ctx ~expect:"fig18" "experiment" j;
      check_string ~ctx "title" j;
      check_string ~ctx "kernel" j;
      check_string ~ctx "x_label" j;
      List.iter
        (fun a ->
          let ctx = ctx ^ ".arches[]" in
          check_string ~ctx "arch" a;
          check_string ~ctx "model" a;
          List.iter (check_series ~ctx:(ctx ^ ".series")) (as_list ~ctx "series" a);
          List.iter
            (fun s ->
              let ctx = ctx ^ ".speedups[]" in
              check_string ~ctx "baseline" s;
              check_string ~ctx "vs" s;
              check_number ~ctx "percent" s)
            (as_list ~ctx "speedups" a))
        (as_list ~ctx "arches" j)

let check_sweep file =
  match Json.of_file file with
  | Error msg -> fail "%s: %s" file msg
  | Ok j ->
      let ctx = Filename.basename file in
      check_string ~ctx ~expect:"sweep" "experiment" j;
      check_number ~ctx "jobs" j;
      List.iter
        (fun r ->
          let ctx = ctx ^ ".runs[]" in
          check_string ~ctx "arch" r;
          check_string ~ctx "kernel" r;
          check_number ~ctx "visited" r;
          check_number ~ctx "discarded" r;
          (match field ~ctx "fell_back" r with
          | Json.Bool b ->
              if b then fail "%s: smoke sweep fell back to the baseline" ctx
          | Json.Null -> ()
          | _ -> fail "%s: fell_back is not a bool" ctx);
          check_string ~ctx "best_config" r;
          check_number ~ctx "best_mflops" r)
        (as_list ~ctx "runs" j);
      List.iter
        (fun t ->
          let ctx = ctx ^ ".timings[]" in
          check_number ~ctx "jobs" t;
          check_number ~ctx "wall_s" t;
          check_number ~ctx "candidates" t;
          check_number ~ctx "candidates_per_sec" t)
        (as_list ~ctx "timings" j);
      check_number ~ctx "speedup" j

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "." in
  check_fig18 (Filename.concat dir "BENCH_fig18.json");
  check_sweep (Filename.concat dir "BENCH_sweep.json");
  if !failures > 0 then (
    Printf.eprintf "bench-smoke: %d validation failure(s)\n" !failures;
    exit 1)
  else print_endline "bench-smoke: BENCH_fig18.json and BENCH_sweep.json valid"
