(* The x86-64 encoder and the native execution path.

   Encoding is locked by golden byte tables (golden/enc_*.hex): every
   opcode x operand-form x precision the kernel corpus emits is
   rendered to hex and compared as one string, the same mechanism as
   the AT&T printer's att_table.txt.  Regenerate after an intentional
   encoder change with

     dune exec test/main.exe -- gengold test/golden

   from the repository root.  Branch assembly is covered by label
   round-trip tests (encode -> decode displacement -> same target),
   including a deliberately out-of-range rel8 forced to rel32, and the
   flags-hazard audit's rejections.  The native differential tests
   skip on hosts without the required SIMD features. *)

module A = Augem
module Enc = A.Jit.Encoder
module Insn = A.Machine.Insn
module Reg = A.Machine.Reg
module Et = A.Machine.Etype
module Arch = A.Machine.Arch
module K = A.Ir.Kernels

(* --- golden table builders --------------------------------------------- *)

let row buf label body =
  Buffer.add_string buf (Printf.sprintf "%-40s| %s\n" label body)

let enc_row buf ~avx ~et label i =
  let body =
    try Enc.to_hex (Enc.encode_insn ~avx ~et i)
    with Enc.Encode_error m -> "<encode_error: " ^ m ^ ">"
  in
  row buf label body

let modes = [ ("avx", true); ("sse", false) ]
let ets = [ Et.F64; Et.F32 ]
let widths = Insn.[ ("w64", W64); ("w128", W128); ("w256", W256) ]

(* Vector register-register forms: every fpop at every width and
   precision, in both encodings, at low and high (REX-requiring)
   register numbers, plus the whole-register move/shuffle family. *)
let vec_table () =
  let buf = Buffer.create 16384 in
  let fpops =
    Insn.[ ("fadd", Fadd); ("fsub", Fsub); ("fmul", Fmul); ("fdiv", Fdiv);
           ("fxor", Fxor); ("fmov", Fmov); ("fma231", Fma231);
           ("fhadd", Fhadd); ("funpckl", Funpckl); ("funpckh", Funpckh) ]
  in
  List.iter
    (fun (mn, avx) ->
      List.iter
        (fun et ->
          List.iter
            (fun (wn, w) ->
              List.iter
                (fun (opn, op) ->
                  List.iter
                    (fun (rn, dst, src1, src2) ->
                      enc_row buf ~avx ~et
                        (Printf.sprintf "%s %s %s %s %s" mn (Et.name et) wn
                           opn rn)
                        (Insn.Vop { op; w; dst; src1; src2 }))
                    (* low regs; high regs (REX/VEX R,X,B); the mova
                       store-form special case (high src, low dst) *)
                    [ ("lo", 1, 2, 3); ("hi", 9, 10, 11); ("mix", 1, 9, 2) ])
                fpops;
              List.iter
                (fun (rn, dst, a, b, c) ->
                  enc_row buf ~avx ~et
                    (Printf.sprintf "%s %s %s fma4 %s" mn (Et.name et) wn rn)
                    (Insn.Vfma4 { w; dst; a; b; c }))
                [ ("lo", 1, 2, 3, 4); ("hi", 9, 10, 11, 12) ];
              List.iter
                (fun (opn, i) ->
                  enc_row buf ~avx ~et
                    (Printf.sprintf "%s %s %s %s" mn (Et.name et) wn opn)
                    i)
                [
                  ("vshuf", Insn.Vshuf { w; dst = 1; src1 = 2; src2 = 3; imm = 1 });
                  ("vblend", Insn.Vblend { w; dst = 1; src1 = 2; src2 = 3; imm = 5 });
                ])
            widths;
          List.iter
            (fun (opn, i) ->
              enc_row buf ~avx ~et
                (Printf.sprintf "%s %s %s" mn (Et.name et) opn)
                i)
            [
              ("vperm128", Insn.Vperm128 { dst = 1; src1 = 2; src2 = 3; imm = 0x21 });
              ("vextract128", Insn.Vextract128 { dst = 1; src = 9; lane = 1 });
              ("movq_xr lo", Insn.Movq_xr { dst = 1; src = Reg.Rax });
              ("movq_xr hi", Insn.Movq_xr { dst = 9; src = Reg.R13 });
            ])
        ets)
    modes;
  Buffer.contents buf

(* Vector memory forms: loads, stores and broadcasts over every
   addressing-mode corner the ModRM/SIB encoder special-cases (rsp and
   r12 force a SIB byte; rbp and r13 force an explicit displacement;
   index scaling). *)
let mem_table () =
  let buf = Buffer.create 16384 in
  let mems =
    Reg.
      [
        ("(rbx)", { Insn.base = Rbx; index = None; disp = 0 });
        ("8(rbx)", { Insn.base = Rbx; index = None; disp = 8 });
        ("1024(rbx)", { Insn.base = Rbx; index = None; disp = 1024 });
        ("-8(r14)", { Insn.base = R14; index = None; disp = -8 });
        ("(rsp)", { Insn.base = Rsp; index = None; disp = 0 });
        ("(rbp)", { Insn.base = Rbp; index = None; disp = 0 });
        ("(r12)", { Insn.base = R12; index = None; disp = 0 });
        ("(r13)", { Insn.base = R13; index = None; disp = 0 });
        ( "16(rbx,rcx,8)",
          { Insn.base = Rbx; index = Some (Rcx, Insn.S8); disp = 16 } );
        ( "(rbx,r9,4)",
          { Insn.base = Rbx; index = Some (R9, Insn.S4); disp = 0 } );
        ( "(r13,rdx,2)",
          { Insn.base = R13; index = Some (Rdx, Insn.S2); disp = 0 } );
      ]
  in
  List.iter
    (fun (mn, avx) ->
      List.iter
        (fun et ->
          List.iter
            (fun (wn, w) ->
              List.iter
                (fun (memn, m) ->
                  enc_row buf ~avx ~et
                    (Printf.sprintf "%s %s %s vload %s" mn (Et.name et) wn memn)
                    (Insn.Vload { w; dst = 4; src = m });
                  enc_row buf ~avx ~et
                    (Printf.sprintf "%s %s %s vstore %s" mn (Et.name et) wn
                       memn)
                    (Insn.Vstore { w; src = 12; dst = m });
                  enc_row buf ~avx ~et
                    (Printf.sprintf "%s %s %s vbcast %s" mn (Et.name et) wn
                       memn)
                    (Insn.Vbroadcast { w; dst = 4; src = m }))
                mems)
            widths)
        ets)
    modes;
  Buffer.contents buf

(* Integer/control forms.  Precision- and SIMD-mode-independent, so one
   pass; includes the flags-neutral lea encoding of add/sub, the rax
   accumulator short form of cmp, imm8 vs imm32 selection, and the
   rsp-index swap in register adds. *)
let gpr_table () =
  let buf = Buffer.create 8192 in
  let m_rbx8 = { Insn.base = Reg.Rbx; index = None; disp = 8 } in
  let m_sib =
    { Insn.base = Reg.Rcx; index = Some (Reg.Rdx, Insn.S8); disp = 32 }
  in
  let rows =
    Reg.
      [
        ("movri rax 42", Insn.Movri (Rax, 42));
        ("movri r13 42", Insn.Movri (R13, 42));
        ("movri rbx -1", Insn.Movri (Rbx, -1));
        ("movabs rcx", Insn.Movabs (Rcx, 0x1234_5678_9abc_def0L));
        ("movrr rbx rcx", Insn.Movrr (Rbx, Rcx));
        ("movrr r8 r15", Insn.Movrr (R8, R15));
        ("loadq rbx 8(rbx)", Insn.Loadq (Rbx, m_rbx8));
        ("loadq r9 sib", Insn.Loadq (R9, m_sib));
        ("storeq 8(rbx) rbx", Insn.Storeq (m_rbx8, Rbx));
        ("storeq sib r9", Insn.Storeq (m_sib, R9));
        ("addri rbx 8", Insn.Addri (Rbx, 8));
        ("addri rax 128", Insn.Addri (Rax, 128));
        ("addri r12 8", Insn.Addri (R12, 8));
        ("addri rbp -8", Insn.Addri (Rbp, -8));
        ("addrr rbx rcx", Insn.Addrr (Rbx, Rcx));
        ("addrr rbx rsp", Insn.Addrr (Rbx, Rsp));
        ("addrr rsp rsp", Insn.Addrr (Rsp, Rsp));
        ("subri rbx 8", Insn.Subri (Rbx, 8));
        ("subri rax 300", Insn.Subri (Rax, 300));
        ("subrr rbx rcx", Insn.Subrr (Rbx, Rcx));
        ("imulrr rbx rcx", Insn.Imulrr (Rbx, Rcx));
        ("imulri rbx rcx 24", Insn.Imulri (Rbx, Rcx, 24));
        ("imulri rbx rcx 300", Insn.Imulri (Rbx, Rcx, 300));
        ("shlri rbx 1", Insn.Shlri (Rbx, 1));
        ("shlri rbx 3", Insn.Shlri (Rbx, 3));
        ("negr rbx", Insn.Negr (Rbx));
        ("lea rbx 8(rbx)", Insn.Lea (Rbx, m_rbx8));
        ("lea r9 sib", Insn.Lea (R9, m_sib));
        ("cmprr rbx rcx", Insn.Cmprr (Rbx, Rcx));
        ("cmpri rbx 8", Insn.Cmpri (Rbx, 8));
        ("cmpri rax 128", Insn.Cmpri (Rax, 128));
        ("push rbx", Insn.Push Rbx);
        ("push r12", Insn.Push R12);
        ("pop rbx", Insn.Pop Rbx);
        ("pop r12", Insn.Pop R12);
        ("ret", Insn.Ret);
        ("vzeroupper", Insn.Vzeroupper);
        ("prefetcht0 8(rbx)", Insn.Prefetch (Insn.Pf_t0, m_rbx8));
        ("prefetchw sib", Insn.Prefetch (Insn.Pf_w, m_sib));
        ("comment", Insn.Comment "elided");
      ]
  in
  List.iter (fun (l, i) -> enc_row buf ~avx:true ~et:Et.F64 l i) rows;
  Buffer.contents buf

(* Branch assembly through [encode_program]: whole programs with
   backward and forward targets at each condition code, plus the rel8
   -> rel32 relaxation.  Each program dumps its code bytes and its
   fixup records. *)
let prog name insns = { Insn.prog_name = name; prog_insns = insns }

let pad n =
  (* 10 encoded bytes each: enough to push a branch out of rel8 range *)
  List.init n (fun _ -> Insn.Movabs (Reg.Rax, 0x0102_0304_0506_0708L))

let cond_name =
  Insn.(
    function
    | Clt -> "l" | Cle -> "le" | Cgt -> "g" | Cge -> "ge" | Ceq -> "e"
    | Cne -> "ne")

let branch_programs () =
  let back cc =
    prog
      ("back_" ^ cond_name cc)
      [
        Insn.Label "top"; Insn.Addri (Reg.Rbx, 8); Insn.Cmprr (Reg.Rbx, Reg.Rcx);
        Insn.Jcc (cc, "top"); Insn.Ret;
      ]
  in
  let fwd cc =
    prog
      ("fwd_" ^ cond_name cc)
      [
        Insn.Cmprr (Reg.Rbx, Reg.Rcx); Insn.Jcc (cc, "out");
        Insn.Movri (Reg.Rax, 1); Insn.Label "out"; Insn.Ret;
      ]
  in
  let ccs = Insn.[ Clt; Cle; Cgt; Cge; Ceq; Cne ] in
  List.map back ccs @ List.map fwd ccs
  @ [
      prog "jmp_back" [ Insn.Label "top"; Insn.Jmp "top"; Insn.Ret ];
      prog "jmp_fwd" [ Insn.Jmp "out"; Insn.Label "out"; Insn.Ret ];
      (* long branches: the pad forces every rel8 out of range *)
      prog "long_back"
        ([ Insn.Label "top" ] @ pad 20
        @ [ Insn.Cmprr (Reg.Rbx, Reg.Rcx); Insn.Jcc (Insn.Clt, "top");
            Insn.Ret ]);
      prog "long_fwd"
        ([ Insn.Cmprr (Reg.Rbx, Reg.Rcx); Insn.Jcc (Insn.Cge, "out") ]
        @ pad 20
        @ [ Insn.Label "out"; Insn.Ret ]);
    ]

let branch_table () =
  let buf = Buffer.create 8192 in
  List.iter
    (fun p ->
      let e = Enc.encode_program ~avx:true ~et:Et.F64 p in
      row buf p.Insn.prog_name (Enc.to_hex e.Enc.enc_code);
      List.iter
        (fun (f : Enc.fixup) ->
          row buf
            (Printf.sprintf "  fixup %s" f.Enc.fx_label)
            (Printf.sprintf "at=%d size=%d next=%d target=%d" f.Enc.fx_at
               f.Enc.fx_size f.Enc.fx_next
               (Enc.resolve_fixup e f)))
        e.Enc.enc_fixups)
    (branch_programs ());
  Buffer.contents buf

let tables =
  [
    ("enc_vec.hex", vec_table);
    ("enc_mem.hex", mem_table);
    ("enc_gpr.hex", gpr_table);
    ("enc_branch.hex", branch_table);
  ]

(* Regeneration entry point (main.ml's `gengold DIR` subcommand). *)
let write_golden dir =
  List.iter
    (fun (base, build) ->
      let path = Filename.concat dir base in
      Out_channel.with_open_bin path (fun oc -> output_string oc (build ()));
      Printf.printf "wrote %s\n" path)
    tables

let golden_path base =
  let candidates =
    [ Filename.concat "golden" base;
      Filename.concat (Filename.concat "test" "golden") base ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some f -> f
  | None -> Alcotest.failf "golden file %s not found" base

let test_golden base build () =
  let expected =
    In_channel.with_open_bin (golden_path base) In_channel.input_all
  in
  Alcotest.(check string)
    (base ^ " matches golden (regenerate: test/main.exe gengold test/golden)")
    expected (build ())

(* --- label fixups: encode -> decode -> same target ---------------------- *)

(* Every fixup in every branch program must decode back to the byte
   offset of its label: the round-trip inverse of branch assembly,
   independent of the golden bytes. *)
let test_fixup_roundtrip () =
  List.iter
    (fun p ->
      let e = Enc.encode_program ~avx:true ~et:Et.F64 p in
      Alcotest.(check bool)
        (p.Insn.prog_name ^ ": has fixups")
        true
        (e.Enc.enc_fixups <> []);
      List.iter
        (fun (f : Enc.fixup) ->
          let target =
            match List.assoc_opt f.Enc.fx_label e.Enc.enc_labels with
            | Some t -> t
            | None ->
                Alcotest.failf "%s: fixup label %s not in enc_labels"
                  p.Insn.prog_name f.Enc.fx_label
          in
          Alcotest.(check int)
            (Printf.sprintf "%s: %s resolves" p.Insn.prog_name f.Enc.fx_label)
            target
            (Enc.resolve_fixup e f))
        e.Enc.enc_fixups)
    (branch_programs ())

(* The pad in long_back/long_fwd places the target > 127 bytes away:
   relaxation must have widened those displacement fields to rel32
   (and kept the short ones at rel8). *)
let test_fixup_relaxation () =
  let sizes name =
    let p =
      List.find (fun p -> String.equal p.Insn.prog_name name)
        (branch_programs ())
    in
    let e = Enc.encode_program ~avx:true ~et:Et.F64 p in
    List.map (fun (f : Enc.fixup) -> f.Enc.fx_size) e.Enc.enc_fixups
  in
  Alcotest.(check (list int)) "short backward loop stays rel8" [ 1 ]
    (sizes "back_l");
  Alcotest.(check (list int)) "long backward branch widened to rel32" [ 4 ]
    (sizes "long_back");
  Alcotest.(check (list int)) "long forward branch widened to rel32" [ 4 ]
    (sizes "long_fwd")

(* --- flags-hazard audit ------------------------------------------------- *)

(* sub/imul/shl/neg have no flags-neutral encoding; one of them between
   a cmp and its jcc would silently redirect the branch on hardware, so
   the encoder must reject the program outright. *)
let test_flags_audit_rejects () =
  let bad =
    prog "bad"
      [
        Insn.Label "top"; Insn.Cmprr (Reg.Rbx, Reg.Rcx);
        Insn.Subrr (Reg.Rdx, Reg.Rsi); Insn.Jcc (Insn.Clt, "top"); Insn.Ret;
      ]
  in
  (match Enc.encode_program ~avx:true ~et:Et.F64 bad with
  | exception Enc.Encode_error _ -> ()
  | _ -> Alcotest.fail "sub between cmp and jcc must be rejected");
  (* the flags-neutral lea encodings must NOT trip the audit *)
  let ok =
    prog "ok"
      [
        Insn.Label "top"; Insn.Cmprr (Reg.Rbx, Reg.Rcx);
        Insn.Addri (Reg.Rdx, 8); Insn.Addrr (Reg.Rsi, Reg.Rdi);
        Insn.Subri (Reg.R8, 16); Insn.Jcc (Insn.Clt, "top"); Insn.Ret;
      ]
  in
  ignore (Enc.encode_program ~avx:true ~et:Et.F64 ok);
  (* a jcc with no reaching cmp at all is equally unprovable *)
  let orphan = prog "orphan" [ Insn.Label "top"; Insn.Jcc (Insn.Ceq, "top") ] in
  match Enc.encode_program ~avx:true ~et:Et.F64 orphan with
  | exception Enc.Encode_error _ -> ()
  | _ -> Alcotest.fail "jcc without a reaching cmp must be rejected"

(* --- native execution (host-gated) -------------------------------------- *)

let native_guard () =
  if not (A.Native_check.host_supported ()) then begin
    Printf.printf "skipped: host CPU lacks SSE2+AVX\n";
    false
  end
  else true

(* The full guarded path on a couple of kernels at both precisions:
   lint gate, feature check, JIT, then the three-way differential
   (native vs simulator vs reference BLAS) over the harness sweep. *)
let test_native_differential () =
  if native_guard () then
    List.iter
      (fun et ->
        List.iter
          (fun kernel ->
            let arch = Arch.haswell in
            let cand = A.Tuner.safe_baseline in
            let g =
              A.generate ~et ~arch ~config:cand.A.Tuner.cand_config
                ~opts:cand.A.Tuner.cand_opts kernel
            in
            match A.Native_check.check ~arch ~et kernel g.A.g_program with
            | A.Native_check.Pass -> ()
            | A.Native_check.Skip m ->
                Printf.printf "%s %s: skipped (%s)\n"
                  (K.name_to_string kernel) (Et.name et) m
            | A.Native_check.Fail m ->
                Alcotest.failf "%s %s: %s" (K.name_to_string kernel)
                  (Et.name et) m)
          [ K.Copy; K.Dot; K.Gemm ])
      [ Et.F64; Et.F32 ]

(* Rejected programs must never reach executable memory: a kernel with
   a flags hazard comes back Fail/Rejected from the gate, not loaded. *)
let test_native_gate_rejects () =
  if native_guard () then begin
    let bad =
      prog "bad"
        [
          Insn.Label "top"; Insn.Cmprr (Reg.Rbx, Reg.Rcx);
          Insn.Subrr (Reg.Rdx, Reg.Rsi); Insn.Jcc (Insn.Clt, "top"); Insn.Ret;
        ]
    in
    match A.Native_check.load ~avx:true ~et:Et.F64 bad with
    | A.Native_check.Ready _ -> Alcotest.fail "hazardous program was loaded"
    | A.Native_check.Rejected _ | A.Native_check.Unsupported _ -> ()
  end

let suite =
  List.map
    (fun (base, build) ->
      Alcotest.test_case ("golden " ^ base) `Quick (test_golden base build))
    tables
  @ [
      Alcotest.test_case "label fixups round-trip" `Quick
        test_fixup_roundtrip;
      Alcotest.test_case "rel8 -> rel32 relaxation" `Quick
        test_fixup_relaxation;
      Alcotest.test_case "flags-hazard audit" `Quick test_flags_audit_rejects;
      Alcotest.test_case "native three-way differential" `Slow
        test_native_differential;
      Alcotest.test_case "native gate rejects hazards" `Quick
        test_native_gate_rejects;
    ]
