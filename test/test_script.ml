(* The transformation-script language (the mini-POET layer). *)

module A = Augem
module Script = A.Transform.Script
module Pipeline = A.Transform.Pipeline

let parse_ok src =
  match Script.parse src with
  | Ok t -> t
  | Error m -> Alcotest.failf "script rejected: %s" m

let test_basic () =
  let t = parse_ok "unroll_jam j 4\nunroll_jam i 8\nprefetch 4\n" in
  Alcotest.(check (list (pair string int)))
    "jam order" [ ("j", 4); ("i", 8) ]
    t.Script.sc_config.Pipeline.jam;
  match t.Script.sc_config.Pipeline.prefetch with
  | Some p -> Alcotest.(check int) "distance" 4 p.A.Transform.Prefetch.pf_distance
  | None -> Alcotest.fail "prefetch lost"

let test_comments_and_semicolons () =
  let t =
    parse_ok "# a tuning script\nunroll i 8; expand 8  # reduction\nprefer shuf"
  in
  Alcotest.(check bool) "unroll" true
    (t.Script.sc_config.Pipeline.inner_unroll = Some ("i", 8));
  Alcotest.(check bool) "expand" true
    (t.Script.sc_config.Pipeline.expand_reduction = Some 8);
  Alcotest.(check bool) "prefer" true (t.Script.sc_prefer = `Shuf)

let test_switches () =
  let t =
    parse_ok "strength_reduce off\nscalar_replace off\nprefetch off\nwidth 128"
  in
  Alcotest.(check bool) "sr off" false t.Script.sc_config.Pipeline.strength_reduce;
  Alcotest.(check bool) "scalar off" false t.Script.sc_config.Pipeline.scalar_replace;
  Alcotest.(check bool) "pf off" true (t.Script.sc_config.Pipeline.prefetch = None);
  Alcotest.(check bool) "width" true (t.Script.sc_width = Some 128)

let test_errors () =
  List.iter
    (fun src ->
      match Script.parse src with
      | Ok _ -> Alcotest.failf "accepted bad script: %s" src
      | Error _ -> ())
    [ "unroll_jam j"; "unroll i zero"; "prefetch -3"; "frobnicate 2";
      "width 512"; "strength_reduce maybe" ]

(* Errors carry the 1-based source line of the offending directive, in
   both the [Error] rendering and the structured exception payload. *)
let test_error_line_numbers () =
  let expect_line src line =
    (match Script.parse src with
    | Ok _ -> Alcotest.failf "accepted bad script: %s" src
    | Error msg ->
        let prefix = Printf.sprintf "line %d: " line in
        if not (String.starts_with ~prefix msg) then
          Alcotest.failf "expected %S prefix, got %S" prefix msg);
    match Script.parse_exn src with
    | exception Script.Script_error (l, _) ->
        Alcotest.(check int) ("structured line for " ^ String.escaped src) line l
    | _ -> Alcotest.failf "parse_exn accepted bad script: %s" src
  in
  expect_line "frobnicate 2" 1;
  (* blank and comment lines still count toward line numbers *)
  expect_line "unroll_jam j 4\n\n# comment\nunroll i zero" 4;
  (* ';'-separated directives share their source line *)
  expect_line "unroll i 8\nprefetch 4; width 512\nprefer shuf" 2;
  expect_line "unroll_jam j 4\nunroll_jam i" 2

let test_roundtrip () =
  let t =
    parse_ok
      "unroll_jam j 2\nunroll_jam i 8\nunroll l 4\nexpand 4\nprefetch 8\nprefer vdup\nwidth 256\n"
  in
  let t' = parse_ok (Script.to_string t) in
  Alcotest.(check string) "print/parse fixpoint" (Script.to_string t)
    (Script.to_string t')

let test_drives_pipeline () =
  (* a script-configured GEMM generates and verifies *)
  let t = parse_ok "unroll_jam j 2\nunroll_jam i 8\nprefetch 4" in
  let g =
    A.generate_scripted ~arch:A.Machine.Arch.piledriver ~script:t
      A.Ir.Kernels.Gemm
  in
  let v = A.verify g in
  Alcotest.(check bool) "verified" true v.A.Harness.ok

let test_width_cap_respected () =
  let t = parse_ok "unroll_jam j 2\nunroll_jam i 8\nwidth 128" in
  let g =
    A.generate_scripted ~arch:A.Machine.Arch.sandy_bridge ~script:t
      A.Ir.Kernels.Gemm
  in
  let widest =
    List.fold_left
      (fun acc i ->
        match i with
        | A.Machine.Insn.Vop { w; _ } | A.Machine.Insn.Vload { w; _ } ->
            max acc (A.Machine.Insn.width_bits w)
        | _ -> acc)
      0 g.A.g_program.A.Machine.Insn.prog_insns
  in
  Alcotest.(check int) "capped at 128" 128 widest

let suite =
  [
    Alcotest.test_case "basic directives" `Quick test_basic;
    Alcotest.test_case "comments and semicolons" `Quick
      test_comments_and_semicolons;
    Alcotest.test_case "switches" `Quick test_switches;
    Alcotest.test_case "error reporting" `Quick test_errors;
    Alcotest.test_case "errors carry 1-based line numbers" `Quick
      test_error_line_numbers;
    Alcotest.test_case "print/parse round trip" `Quick test_roundtrip;
    Alcotest.test_case "script drives the pipeline" `Quick test_drives_pipeline;
    Alcotest.test_case "width cap respected" `Quick test_width_cap_respected;
  ]
