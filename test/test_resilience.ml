(* The resilience layer: fault points, the circuit breaker, retry
   backoff, worker supervision, lost-job degradation, single-flight
   failure propagation, crash-consistent cache recovery (including the
   kill-at-every-write-step torture test) and the seeded chaos driver.

   Clocks are injected and faults are scripted (point, hit, action)
   triples, so everything timing-like is deterministic; the only waits
   are bounded polls on genuinely asynchronous supervision events
   (a replacement domain coming up). *)

module A = Augem
module Arch = A.Machine.Arch
module Kernels = A.Ir.Kernels
module Tuner = A.Tuner
module Cache = A.Tuning_cache
module Json = A.Json
module R = Augem_resilience
module F = R.Faultpoint
module Breaker = R.Breaker
module Retry = R.Retry
module Taskq = Augem_parallel.Taskq
module S = Augem_service
module Proto = S.Proto
module Registry = S.Registry
module Scheduler = S.Scheduler
module Metrics = S.Metrics
module Server = S.Server

let arch = Arch.sandy_bridge

let tiny_space k =
  match Tuner.space_for k with c :: _ -> [ c ] | [] -> Alcotest.fail "empty space"

let canned = lazy (Tuner.tune ~space:(tiny_space Kernels.Axpy) arch Kernels.Axpy)
let computed () = { Registry.c_result = Lazy.force canned; c_deadline_expired = false }

(* every test that arms triggers must leave the global registry clean *)
let with_faults f =
  Fun.protect
    ~finally:(fun () ->
      F.disarm ();
      F.reset_counters ())
    (fun () ->
      F.disarm ();
      F.reset_counters ();
      f ())

(* bounded poll for genuinely asynchronous events (domain respawn) *)
let eventually ?(timeout_s = 10.) what pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () -. t0 > timeout_s then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Thread.delay 0.002;
      go ()
    end
  in
  go ()

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      (try Unix.rmdir path with _ -> ())
  | _ -> ( try Sys.remove path with _ -> ())
  | exception Unix.Unix_error _ -> ()

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "augem-resilience-%d-%d" (Unix.getpid ()) !n)
    in
    rm_rf d;
    d

(* --- fault points ---------------------------------------------------------- *)

let fp = "test.point"
let () = F.register fp

let test_faultpoint_nth_hit () =
  with_faults (fun () ->
      F.arm [ { F.tr_point = fp; tr_hit = 3; tr_action = F.Fail } ];
      F.hit fp;
      F.hit fp;
      (match F.hit fp with
      | () -> Alcotest.fail "3rd hit should inject"
      | exception F.Injected p -> Alcotest.(check string) "point" fp p);
      (* the trigger fires exactly once *)
      F.hit fp;
      Alcotest.(check int) "hits counted" 4 (F.hit_count fp);
      Alcotest.(check int) "one injection" 1 (F.injected_total ()))

let test_faultpoint_disarmed () =
  with_faults (fun () ->
      F.hit fp;
      Alcotest.(check int) "counted" 1 (F.hit_count fp);
      Alcotest.(check int) "nothing injected" 0 (F.injected_total ());
      Alcotest.(check string) "bytes untouched" "hello" (F.corrupting fp "hello"))

let test_faultpoint_corrupting () =
  with_faults (fun () ->
      F.arm [ { F.tr_point = fp; tr_hit = 1; tr_action = F.Corrupt 7 } ];
      let a = F.corrupting fp "the quick brown fox jumps over it" in
      F.reset_counters ();
      F.arm [ { F.tr_point = fp; tr_hit = 1; tr_action = F.Corrupt 7 } ];
      let b = F.corrupting fp "the quick brown fox jumps over it" in
      Alcotest.(check string) "deterministic mangling" a b;
      Alcotest.(check bool) "actually mangled" true
        (a <> "the quick brown fox jumps over it"))

(* --- circuit breaker ------------------------------------------------------- *)

let test_breaker_state_machine () =
  let now = ref 0. in
  let b = Breaker.create ~threshold:2 ~cooldown_s:10. ~now:(fun () -> !now) () in
  let k = "key" in
  Alcotest.(check bool) "closed admits" true (Breaker.admit b k = Breaker.Allow);
  Breaker.failure b k;
  Alcotest.(check bool) "one failure still admits" true
    (Breaker.admit b k = Breaker.Allow);
  Breaker.failure b k;
  Alcotest.(check string) "opened at threshold" "open" (Breaker.state_name b k);
  Alcotest.(check bool) "open rejects" true (Breaker.admit b k = Breaker.Reject);
  Alcotest.(check int) "opened_total" 1 (Breaker.opened_total b);
  Alcotest.(check int) "rejected_total" 1 (Breaker.rejected_total b);
  now := 11.;
  Alcotest.(check bool) "cooldown elapses to a probe" true
    (Breaker.admit b k = Breaker.Probe);
  (* while the probe is outstanding, others are rejected *)
  Alcotest.(check bool) "probe outstanding rejects" true
    (Breaker.admit b k = Breaker.Reject);
  Breaker.failure b k;
  Alcotest.(check string) "failed probe re-opens" "open" (Breaker.state_name b k);
  Alcotest.(check int) "re-open counted" 2 (Breaker.opened_total b);
  now := 22.;
  Alcotest.(check bool) "second probe" true (Breaker.admit b k = Breaker.Probe);
  Breaker.success b k;
  Alcotest.(check string) "probe success closes" "closed" (Breaker.state_name b k);
  Alcotest.(check bool) "closed again" true (Breaker.admit b k = Breaker.Allow);
  Alcotest.(check int) "no open keys left" 0 (Breaker.open_now b)

let test_breaker_per_key () =
  let b = Breaker.create ~threshold:1 ~cooldown_s:10. ~now:(fun () -> 0.) () in
  Breaker.failure b "bad";
  Alcotest.(check bool) "bad key rejected" true
    (Breaker.admit b "bad" = Breaker.Reject);
  Alcotest.(check bool) "other key unaffected" true
    (Breaker.admit b "good" = Breaker.Allow)

(* --- retry ----------------------------------------------------------------- *)

let test_retry_schedule () =
  let p = { Retry.r_max = 5; r_base_ms = 100.; r_cap_ms = 800.; r_seed = 42 } in
  let d1 = Retry.delays_ms p and d2 = Retry.delays_ms p in
  Alcotest.(check int) "five delays" 5 (List.length d1);
  Alcotest.(check bool) "deterministic in seed" true (d1 = d2);
  Alcotest.(check bool) "different seed desynchronizes" true
    (d1 <> Retry.delays_ms { p with r_seed = 43 });
  (* each delay lands in [0.5, 1.0] x the exponential envelope (capped) *)
  List.iteri
    (fun i d ->
      let envelope = min p.Retry.r_cap_ms (100. *. (2. ** float_of_int i)) in
      if d < (0.5 *. envelope) -. 1e-9 || d > envelope +. 1e-9 then
        Alcotest.failf "delay %d = %.1f outside [%.1f, %.1f]" (i + 1) d
          (0.5 *. envelope) envelope)
    d1

let test_retry_classification () =
  let p = { Retry.r_max = 3; r_base_ms = 1.; r_cap_ms = 10.; r_seed = 0 } in
  let attempts = ref 0 in
  let flaky () =
    incr attempts;
    if !attempts < 3 then Error `Transient else Ok !attempts
  in
  (match Retry.run p ~retryable:(fun e -> e = `Transient) flaky with
  | Ok 3 -> ()
  | _ -> Alcotest.fail "flaky call should succeed on attempt 3");
  (* non-retryable errors return immediately *)
  let attempts = ref 0 in
  (match
     Retry.run p
       ~retryable:(fun e -> e = `Transient)
       (fun () ->
         incr attempts;
         Error `Fatal)
   with
  | Error `Fatal -> Alcotest.(check int) "no retry on fatal" 1 !attempts
  | _ -> Alcotest.fail "fatal should not be retried");
  (* the budget is exhausted after 1 + r_max attempts *)
  let attempts = ref 0 in
  (match
     Retry.run p
       ~retryable:(fun _ -> true)
       (fun () ->
         incr attempts;
         Error `Transient)
   with
  | Error `Transient -> Alcotest.(check int) "budget" 4 !attempts
  | _ -> Alcotest.fail "should exhaust retries")

(* --- worker supervision ---------------------------------------------------- *)

let test_taskq_kill_respawn () =
  with_faults (fun () ->
      let t = Taskq.create ~workers:1 ~capacity:8 ~restart_budget:2 () in
      F.arm [ { F.tr_point = "taskq.worker"; tr_hit = 1; tr_action = F.Kill } ];
      let abandoned = ref false in
      let ran = ref false in
      Alcotest.(check bool) "submit accepted" true
        (Taskq.submit t
           ~on_abandon:(fun () -> abandoned := true)
           (fun () -> ran := true));
      eventually "the killed job to be abandoned" (fun () -> !abandoned);
      Alcotest.(check bool) "killed job never ran" false !ran;
      (* the supervisor brings up a replacement that drains new work *)
      let second = ref false in
      ignore (Taskq.submit t (fun () -> second := true));
      eventually "the respawned worker to run a task" (fun () -> !second);
      Alcotest.(check int) "one death" 1 (Taskq.deaths t);
      Alcotest.(check int) "one respawn" 1 (Taskq.restarts t);
      Alcotest.(check int) "live again" 1 (Taskq.live_workers t);
      Taskq.shutdown t)

let test_taskq_restart_budget () =
  with_faults (fun () ->
      let t = Taskq.create ~workers:1 ~capacity:8 ~restart_budget:0 () in
      F.arm [ { F.tr_point = "taskq.worker"; tr_hit = 1; tr_action = F.Kill } ];
      let abandoned = ref false in
      ignore (Taskq.submit t ~on_abandon:(fun () -> abandoned := true) ignore);
      eventually "the job to be abandoned" (fun () -> !abandoned);
      eventually "the death to be counted" (fun () -> Taskq.deaths t = 1);
      Alcotest.(check int) "budget exhausted: no respawn" 0 (Taskq.restarts t);
      Alcotest.(check int) "no workers left" 0 (Taskq.live_workers t);
      Taskq.shutdown t)

let test_taskq_injected_failure_abandons () =
  (* an ordinary injected exception before the task body must not
     leave the future dangling: the worker survives, the task is
     abandoned *)
  with_faults (fun () ->
      let t = Taskq.create ~workers:1 ~capacity:8 ~restart_budget:2 () in
      F.arm [ { F.tr_point = "taskq.worker"; tr_hit = 1; tr_action = F.Fail } ];
      let abandoned = ref false in
      ignore (Taskq.submit t ~on_abandon:(fun () -> abandoned := true) ignore);
      eventually "the failed pickup to abandon" (fun () -> !abandoned);
      Alcotest.(check int) "worker survived" 0 (Taskq.deaths t);
      let second = ref false in
      ignore (Taskq.submit t (fun () -> second := true));
      eventually "the same worker to keep draining" (fun () -> !second);
      Taskq.shutdown t)

let test_scheduler_lost () =
  with_faults (fun () ->
      let s = Scheduler.create ~workers:1 ~capacity:4 ~restart_budget:2 () in
      F.arm [ { F.tr_point = "scheduler.job"; tr_hit = 1; tr_action = F.Kill } ];
      (match Scheduler.submit s (fun () -> 1) with
      | None -> Alcotest.fail "submit rejected"
      | Some fut -> (
          match Scheduler.await fut with
          | Scheduler.Lost -> ()
          | Scheduler.Done _ -> Alcotest.fail "job should have been lost"
          | Scheduler.Expired -> Alcotest.fail "unexpected expiry"
          | Scheduler.Failed e ->
              Alcotest.failf "unexpected failure: %s" (Printexc.to_string e)));
      eventually "the replacement worker" (fun () -> Scheduler.live_workers s = 1);
      (* the pool still works afterwards *)
      (match Scheduler.submit s (fun () -> 2) with
      | Some fut ->
          Alcotest.(check bool) "next job runs" true
            (Scheduler.await fut = Scheduler.Done 2)
      | None -> Alcotest.fail "submit rejected after respawn");
      Alcotest.(check int) "death counted" 1 (Scheduler.worker_deaths s);
      Scheduler.shutdown s)

(* --- single-flight failure propagation ------------------------------------- *)

exception Boom

let test_registry_leader_death_propagates () =
  let t = Registry.create ~lru_capacity:4 () in
  let space = tiny_space Kernels.Axpy in
  let m = Mutex.create () in
  let c = Condition.create () in
  let entered = ref false in
  let released = ref false in
  let compute () =
    (* announce leadership, then die only after both waiters have
       attached to this flight *)
    Mutex.protect m (fun () ->
        entered := true;
        Condition.broadcast c);
    Mutex.protect m (fun () ->
        while not !released do
          Condition.wait c m
        done);
    raise Boom
  in
  let outcomes = Array.make 3 `Pending in
  let worker i =
    Thread.create
      (fun () ->
        match
          Registry.find_or_compute t ~arch ~kernel:Kernels.Axpy ~space ~compute
        with
        | _ -> outcomes.(i) <- `Ok
        | exception Boom -> outcomes.(i) <- `Boom
        | exception e -> outcomes.(i) <- `Other (Printexc.to_string e))
      ()
  in
  let t0 = worker 0 in
  (* wait until the flight exists so 1 and 2 attach instead of leading *)
  Mutex.protect m (fun () ->
      while not !entered do
        Condition.wait c m
      done);
  let t1 = worker 1 and t2 = worker 2 in
  Registry.wait_coalesced t 2;
  Mutex.protect m (fun () ->
      released := true;
      Condition.broadcast c);
  Thread.join t0;
  Thread.join t1;
  Thread.join t2;
  Array.iteri
    (fun i o ->
      match o with
      | `Boom -> ()
      | `Ok -> Alcotest.failf "caller %d unexpectedly succeeded" i
      | `Other e -> Alcotest.failf "caller %d got %s" i e
      | `Pending -> Alcotest.failf "caller %d never finished" i)
    outcomes;
  (* the key is retryable: the failed flight was fully cleaned up *)
  let o =
    Registry.find_or_compute t ~arch ~kernel:Kernels.Axpy ~space
      ~compute:(fun () -> computed ())
  in
  Alcotest.(check string) "key retryable after failure" "tuned"
    (Proto.tier_to_string o.Registry.o_tier)

let test_registry_breaker_integration () =
  let now = ref 0. in
  let b = Breaker.create ~threshold:2 ~cooldown_s:10. ~now:(fun () -> !now) () in
  let t = Registry.create ~lru_capacity:4 ~breaker:b () in
  let space = tiny_space Kernels.Dot in
  let failing () = raise Boom in
  let go compute =
    Registry.find_or_compute t ~arch ~kernel:Kernels.Dot ~space ~compute
  in
  (match go failing with
  | _ -> Alcotest.fail "compute should fail"
  | exception Boom -> ());
  (match go failing with
  | _ -> Alcotest.fail "compute should fail"
  | exception Boom -> ());
  (* two consecutive failures at threshold 2: the circuit is open *)
  (match go failing with
  | _ -> Alcotest.fail "open circuit must not compute"
  | exception Breaker.Open_circuit _ -> ());
  Alcotest.(check int) "no compute while open" 1 (Breaker.rejected_total b);
  now := 11.;
  (* cooldown over: this caller carries the probe, and its success
     closes the circuit *)
  let o = go (fun () -> computed ()) in
  Alcotest.(check string) "probe computed" "tuned"
    (Proto.tier_to_string o.Registry.o_tier);
  Alcotest.(check int) "circuit closed" 0 (Breaker.open_now b)

(* --- crash-consistent cache ------------------------------------------------ *)

let cache_key () =
  let fingerprint = Tuner.space_fingerprint (tiny_space Kernels.Axpy) in
  let kd =
    Cache.keydesc ~version:Tuner.tuner_version ~arch:"sandybridge" ~kernel:"axpy"
      ~fingerprint
  in
  let dg =
    Cache.digest ~version:Tuner.tuner_version ~arch:"sandybridge" ~kernel:"axpy"
      ~fingerprint
  in
  (kd, dg)

let store_value dir =
  let kd, dg = cache_key () in
  Cache.store ~dir ~arch:"sandybridge" ~kernel:"axpy" ~keydesc:kd ~digest:dg
    (Lazy.force canned)

let load_value dir : Tuner.result Cache.load_result =
  let kd, dg = cache_key () in
  Cache.load ~dir ~arch:"sandybridge" ~kernel:"axpy" ~keydesc:kd ~digest:dg

let test_cache_recover_quarantines () =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      Alcotest.(check bool) "store ok" true (store_value dir = None);
      (* crash debris: an orphaned tmp and a torn entry *)
      Out_channel.with_open_bin
        (Filename.concat dir "augem-tune-0000.tmp")
        (fun oc -> Out_channel.output_string oc "half a write");
      Out_channel.with_open_bin
        (Filename.concat dir "augem-tune-0000torn.cache")
        (fun oc -> Out_channel.output_string oc "AUGEM-TUNE-CACHE 1\ntorn");
      let r = Cache.recover ~dir () in
      Alcotest.(check int) "valid entry kept" 1 r.Cache.rc_valid;
      Alcotest.(check int) "torn entry quarantined" 1 r.Cache.rc_quarantined;
      Alcotest.(check int) "tmp quarantined" 1 r.Cache.rc_tmp_quarantined;
      (* quarantined files are preserved for post-mortem, not deleted *)
      let qdir = Filename.concat dir Cache.quarantine_dirname in
      Alcotest.(check int) "quarantine holds both" 2
        (Array.length (Sys.readdir qdir));
      (match load_value dir with
      | Cache.Hit _ -> ()
      | _ -> Alcotest.fail "valid entry must still load");
      (* recovery is idempotent *)
      let r2 = Cache.recover ~dir () in
      Alcotest.(check int) "second scan quarantines nothing" 0
        (r2.Cache.rc_quarantined + r2.Cache.rc_tmp_quarantined))

(* Kill the store at every step of the write protocol; after recovery
   the cache must hold either the complete entry or nothing — and a
   fresh store must succeed. *)
let test_cache_kill_at_every_write_step () =
  let steps =
    [
      ("cache.store.tmp_created", F.Fail, `Tmp_debris);
      ("cache.store.written", F.Fail, `Tmp_debris);
      ("cache.store.synced", F.Fail, `Tmp_debris);
      ("cache.store.renamed", F.Fail, `Complete);
      ("cache.store.payload", F.Corrupt 13, `Torn_entry);
    ]
  in
  List.iter
    (fun (point, action, expected) ->
      with_faults (fun () ->
          let dir = fresh_dir () in
          Fun.protect
            ~finally:(fun () -> rm_rf dir)
            (fun () ->
              F.arm [ { F.tr_point = point; tr_hit = 1; tr_action = action } ];
              (match (action, store_value dir) with
              | F.Fail, _ -> Alcotest.failf "%s: store should have crashed" point
              | _, None -> () (* a torn write "succeeds" *)
              | _, Some d ->
                  Alcotest.failf "%s: unexpected diag %s" point
                    (A.Verify.Diag.to_string d)
              | exception F.Injected _ -> ());
              F.disarm ();
              let r = Cache.recover ~dir () in
              (match expected with
              | `Tmp_debris ->
                  Alcotest.(check int)
                    (point ^ ": tmp debris quarantined")
                    1 r.Cache.rc_tmp_quarantined;
                  (match load_value dir with
                  | Cache.Miss -> ()
                  | _ -> Alcotest.failf "%s: expected a miss after crash" point)
              | `Complete ->
                  Alcotest.(check int)
                    (point ^ ": completed entry kept")
                    1 r.Cache.rc_valid;
                  (match load_value dir with
                  | Cache.Hit _ -> ()
                  | _ -> Alcotest.failf "%s: completed entry must load" point)
              | `Torn_entry ->
                  Alcotest.(check int)
                    (point ^ ": torn entry quarantined")
                    1 r.Cache.rc_quarantined;
                  (match load_value dir with
                  | Cache.Miss -> ()
                  | _ -> Alcotest.failf "%s: torn entry must be gone" point));
              (* after recovery, the same key stores and loads cleanly *)
              (match store_value dir with
              | None -> ()
              | Some d ->
                  Alcotest.failf "%s: post-recovery store failed: %s" point
                    (A.Verify.Diag.to_string d));
              match load_value dir with
              | Cache.Hit _ -> ()
              | _ -> Alcotest.failf "%s: post-recovery load failed" point)))
    steps

(* --- server integration ---------------------------------------------------- *)

let base_config =
  {
    Server.default_config with
    cfg_workers = 1;
    cfg_queue = 4;
    cfg_lru = 4;
    cfg_cache_dir = None;
    cfg_breaker_threshold = 0;
    cfg_recover = false;
  }

let tune_line ?(id = 1) kernel =
  Printf.sprintf {|{"id":%d,"op":"tune","kernel":"%s","arch":"sandybridge"}|} id
    kernel

let parse_json what line =
  match Json.parse line with
  | Ok j -> j
  | Error e -> Alcotest.failf "%s: unparsable response (%s): %s" what e line

let jget what j name =
  match Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "%s: missing %s in %s" what name (Json.to_string j)

let test_server_lost_worker_degrades () =
  with_faults (fun () ->
      let t =
        Server.create ~config:{ base_config with cfg_restart_budget = 2 } ()
      in
      F.arm [ { F.tr_point = "scheduler.job"; tr_hit = 1; tr_action = F.Kill } ];
      let j = parse_json "lost" (Server.handle_line t (tune_line "axpy")) in
      Alcotest.(check bool) "ok" true (jget "lost" j "ok" = Json.Bool true);
      Alcotest.(check bool) "degraded" true
        (jget "lost" j "degraded" = Json.Bool true);
      Alcotest.(check int) "counted as lost" 1
        (Metrics.get (Server.metrics t) "degraded.lost");
      (* degraded results are not cached: the key retries to a real sweep *)
      F.disarm ();
      let j2 = parse_json "retry" (Server.handle_line t (tune_line ~id:2 "axpy")) in
      Alcotest.(check bool) "retry not degraded" true
        (jget "retry" j2 "degraded" = Json.Bool false);
      ignore (Server.handle_line t {|{"id":3,"op":"stats"}|});
      let m = Server.metrics t in
      Alcotest.(check int) "worker death gauge" 1 (Metrics.get m "worker_deaths");
      Alcotest.(check int) "worker restart gauge" 1
        (Metrics.get m "worker_restarts");
      Server.drain t)

let test_server_breaker_serves_baseline () =
  with_faults (fun () ->
      let now = ref 0. in
      let t =
        Server.create
          ~now:(fun () -> !now)
          ~config:
            {
              base_config with
              cfg_breaker_threshold = 1;
              cfg_breaker_cooldown_ms = 10_000.;
            }
          ()
      in
      (* one injected compute failure at threshold 1 opens the key *)
      F.arm
        [ { F.tr_point = "registry.compute"; tr_hit = 1; tr_action = F.Fail } ];
      let j1 = parse_json "fail" (Server.handle_line t (tune_line "dot")) in
      Alcotest.(check bool) "first fails" true
        (jget "fail" j1 "ok" = Json.Bool false);
      F.disarm ();
      let j2 = parse_json "open" (Server.handle_line t (tune_line ~id:2 "dot")) in
      Alcotest.(check bool) "served ok" true (jget "open" j2 "ok" = Json.Bool true);
      Alcotest.(check bool) "degraded baseline" true
        (jget "open" j2 "degraded" = Json.Bool true);
      let prov = jget "open" j2 "provenance" in
      Alcotest.(check bool) "annotated breaker_open" true
        (jget "open" prov "breaker_open" = Json.Bool true);
      ignore (Server.handle_line t {|{"id":3,"op":"stats"}|});
      let m = Server.metrics t in
      Alcotest.(check int) "breaker-degraded counted" 1
        (Metrics.get m "degraded.breaker_open");
      Alcotest.(check int) "open gauge" 1 (Metrics.get m "breaker_open");
      Alcotest.(check int) "opened total gauge" 1
        (Metrics.get m "breaker_open_total");
      (* after the cooldown, the probe runs a real sweep and closes it *)
      now := 11.;
      let j3 = parse_json "probe" (Server.handle_line t (tune_line ~id:4 "dot")) in
      Alcotest.(check bool) "probe succeeds" true
        (jget "probe" j3 "degraded" = Json.Bool false);
      Server.drain t)

let test_server_recovers_cache_at_boot () =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      Unix.mkdir dir 0o755;
      Out_channel.with_open_bin
        (Filename.concat dir "augem-tune-0.tmp")
        (fun oc -> Out_channel.output_string oc "debris");
      let t =
        Server.create
          ~config:
            { base_config with cfg_cache_dir = Some dir; cfg_recover = true }
          ()
      in
      Alcotest.(check int) "debris quarantined at boot" 1
        (Metrics.get (Server.metrics t) "cache_quarantined");
      let stats =
        parse_json "stats" (Server.handle_line t {|{"id":1,"op":"stats"}|})
      in
      let body = jget "stats" stats "stats" in
      let res = jget "stats" body "resilience" in
      Alcotest.(check bool) "snapshot carries quarantine count" true
        (jget "stats" res "cache_quarantined" = Json.Int 1);
      (match jget "stats" body "uptime_ms" with
      | Json.Float f when f >= 0. -> ()
      | Json.Int n when n >= 0 -> ()
      | v -> Alcotest.failf "bad uptime_ms: %s" (Json.to_string v));
      Server.drain t)

(* --- the chaos driver ------------------------------------------------------ *)

let test_chaos_drive_mini () =
  (* one pass over the whole fault-point catalog; the full 40-session
     run is the @chaos-serve alias *)
  let o = S.Chaos_serve.run ~sessions:14 ~seed:3 () in
  (match o.S.Chaos_serve.co_violations with
  | [] -> ()
  | vs -> Alcotest.failf "invariants violated:\n%s" (String.concat "\n" vs));
  Alcotest.(check int) "whole catalog covered" 14
    (List.length o.S.Chaos_serve.co_points);
  Alcotest.(check bool) "faults actually fired" true
    (o.S.Chaos_serve.co_injected > 0);
  Alcotest.(check bool) "schedules distinct" true
    (o.S.Chaos_serve.co_schedules >= 12)

let suite =
  [
    Alcotest.test_case "faultpoint: exact nth hit" `Quick test_faultpoint_nth_hit;
    Alcotest.test_case "faultpoint: disarmed is a no-op" `Quick
      test_faultpoint_disarmed;
    Alcotest.test_case "faultpoint: deterministic corruption" `Quick
      test_faultpoint_corrupting;
    Alcotest.test_case "breaker: state machine" `Quick test_breaker_state_machine;
    Alcotest.test_case "breaker: per-key isolation" `Quick test_breaker_per_key;
    Alcotest.test_case "retry: seeded schedule" `Quick test_retry_schedule;
    Alcotest.test_case "retry: classification and budget" `Quick
      test_retry_classification;
    Alcotest.test_case "taskq: kill, respawn, drain" `Quick
      test_taskq_kill_respawn;
    Alcotest.test_case "taskq: restart budget exhausts" `Quick
      test_taskq_restart_budget;
    Alcotest.test_case "taskq: injected failure abandons the task" `Quick
      test_taskq_injected_failure_abandons;
    Alcotest.test_case "scheduler: lost jobs resolve" `Quick test_scheduler_lost;
    Alcotest.test_case "registry: leader death reaches every waiter" `Quick
      test_registry_leader_death_propagates;
    Alcotest.test_case "registry: breaker opens, probes, closes" `Quick
      test_registry_breaker_integration;
    Alcotest.test_case "cache: recover quarantines debris" `Quick
      test_cache_recover_quarantines;
    Alcotest.test_case "cache: kill at every write step" `Quick
      test_cache_kill_at_every_write_step;
    Alcotest.test_case "server: lost worker degrades" `Quick
      test_server_lost_worker_degrades;
    Alcotest.test_case "server: open circuit serves baseline" `Quick
      test_server_breaker_serves_baseline;
    Alcotest.test_case "server: cache recovery at boot" `Quick
      test_server_recovers_cache_at_boot;
    Alcotest.test_case "chaos: catalog pass holds invariants" `Quick
      test_chaos_drive_mini;
  ]
