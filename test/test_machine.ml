(* Machine model: AT&T printing, read/write sets, dependence graphs and
   the list scheduler. *)

module Insn = Augem.Machine.Insn
module Reg = Augem.Machine.Reg
module Att = Augem.Machine.Att
module Arch = Augem.Machine.Arch
module Depgraph = Augem.Machine.Depgraph

let att ?(avx = true) ?(et = Augem.Machine.Etype.F64) i =
  Att.insn_str ~et ~avx i

let test_att_sse_vs_avx () =
  let add = Insn.Vop { op = Insn.Fadd; w = Insn.W128; dst = 1; src1 = 1; src2 = 2 } in
  Alcotest.(check string) "sse add" "addpd %xmm2, %xmm1" (att ~avx:false add);
  Alcotest.(check string) "avx add" "vaddpd %xmm2, %xmm1, %xmm1" (att ~avx:true add);
  let add256 = Insn.Vop { op = Insn.Fadd; w = Insn.W256; dst = 0; src1 = 1; src2 = 2 } in
  Alcotest.(check string) "avx 256" "vaddpd %ymm2, %ymm1, %ymm0" (att add256)

let test_att_sse_three_operand_rejected () =
  let bad = Insn.Vop { op = Insn.Fadd; w = Insn.W128; dst = 0; src1 = 1; src2 = 2 } in
  (match att ~avx:false bad with
  | exception Att.Print_error _ -> ()
  | s -> Alcotest.failf "SSE three-operand printed as %s" s)

let test_att_fma () =
  let fma = Insn.Vop { op = Insn.Fma231; w = Insn.W256; dst = 3; src1 = 4; src2 = 5 } in
  Alcotest.(check string) "fma3" "vfmadd231pd %ymm5, %ymm4, %ymm3" (att fma);
  let fma4 = Insn.Vfma4 { w = Insn.W128; dst = 0; a = 1; b = 2; c = 3 } in
  Alcotest.(check string) "fma4" "vfmaddpd %xmm3, %xmm2, %xmm1, %xmm0" (att fma4)

let test_att_memory () =
  let m = Insn.mem ~index:(Reg.Rcx, Insn.S8) ~disp:16 Reg.Rax in
  Alcotest.(check string) "mem" "vmovupd 16(%rax,%rcx,8), %ymm7"
    (att (Insn.Vload { w = Insn.W256; dst = 7; src = m }));
  Alcotest.(check string) "broadcast" "vbroadcastsd (%rbx), %ymm2"
    (att (Insn.Vbroadcast { w = Insn.W256; dst = 2; src = Insn.mem Reg.Rbx }))

let test_att_control () =
  Alcotest.(check string) "jcc" "jl .Lbody1" (att (Insn.Jcc (Insn.Clt, ".Lbody1")));
  Alcotest.(check string) "cmp order" "cmpq %rbx, %rax"
    (att (Insn.Cmprr (Reg.Rax, Reg.Rbx)));
  Alcotest.(check string) "prefetch" "prefetcht0 64(%rsi)"
    (att (Insn.Prefetch (Insn.Pf_t0, Insn.mem ~disp:64 Reg.Rsi)))

let test_reads_writes () =
  let i = Insn.Vop { op = Insn.Fma231; w = Insn.W256; dst = 1; src1 = 2; src2 = 3 } in
  Alcotest.(check bool) "fma reads dst" true (List.mem (Reg.Vr 1) (Insn.reads i));
  Alcotest.(check bool) "fma writes dst" true (List.mem (Reg.Vr 1) (Insn.writes i));
  let z = Insn.Vop { op = Insn.Fxor; w = Insn.W256; dst = 4; src1 = 4; src2 = 4 } in
  Alcotest.(check (list string)) "zero idiom reads nothing" []
    (List.map Reg.name (Insn.reads z));
  let st = Insn.Vstore { w = Insn.W128; src = 5; dst = Insn.mem Reg.Rdi } in
  Alcotest.(check bool) "store reads value and base" true
    (List.mem (Reg.Vr 5) (Insn.reads st) && List.mem (Reg.Gp Reg.Rdi) (Insn.reads st));
  Alcotest.(check (list string)) "store writes no register" []
    (List.map Reg.name (Insn.writes st))

let test_flops () =
  Alcotest.(check int) "ymm fma = 8 flops" 8
    (Insn.flops (Insn.Vop { op = Insn.Fma231; w = Insn.W256; dst = 0; src1 = 1; src2 = 2 }));
  Alcotest.(check int) "xmm add = 2" 2
    (Insn.flops (Insn.Vop { op = Insn.Fadd; w = Insn.W128; dst = 0; src1 = 0; src2 = 1 }));
  Alcotest.(check int) "load = 0" 0
    (Insn.flops (Insn.Vload { w = Insn.W256; dst = 0; src = Insn.mem Reg.Rax }))

(* --- dependence graph ----------------------------------------------------- *)

let sample_block =
  Insn.
    [
      Vload { w = W256; dst = 0; src = mem Reg.Rax };
      Vload { w = W256; dst = 1; src = mem ~disp:32 Reg.Rax };
      Vop { op = Fmul; w = W256; dst = 2; src1 = 0; src2 = 1 };
      Vop { op = Fadd; w = W256; dst = 3; src1 = 3; src2 = 2 };
      Vstore { w = W256; src = 3; dst = mem Reg.Rbx };
    ]

let test_depgraph_raw_chain () =
  let g = Depgraph.build sample_block in
  (* the multiply depends on both loads *)
  let preds i = List.map fst g.Depgraph.nodes.(i).Depgraph.preds in
  Alcotest.(check bool) "mul <- loads" true
    (List.mem 0 (preds 2) && List.mem 1 (preds 2));
  Alcotest.(check bool) "add <- mul" true (List.mem 2 (preds 3));
  Alcotest.(check bool) "store <- add" true (List.mem 3 (preds 4))

let test_depgraph_loads_independent () =
  let g = Depgraph.build sample_block in
  Alcotest.(check (list int)) "load 1 has no preds" []
    (List.map fst g.Depgraph.nodes.(1).Depgraph.preds)

let test_depgraph_memory_disambiguation () =
  let insns =
    Insn.
      [
        Vstore { w = W64; src = 0; dst = mem ~disp:0 Reg.Rax };
        Vload { w = W64; dst = 1; src = mem ~disp:8 Reg.Rax }; (* disjoint *)
        Vload { w = W64; dst = 2; src = mem ~disp:0 Reg.Rax }; (* overlaps *)
      ]
  in
  let g = Depgraph.build insns in
  Alcotest.(check (list int)) "disjoint load free" []
    (List.map fst g.Depgraph.nodes.(1).Depgraph.preds);
  Alcotest.(check bool) "overlapping load ordered" true
    (List.mem 0 (List.map fst g.Depgraph.nodes.(2).Depgraph.preds))

let test_scheduler_topological () =
  let arch = Arch.sandy_bridge in
  let order, makespan = Depgraph.list_schedule arch sample_block in
  Alcotest.(check int) "all scheduled" (List.length sample_block)
    (List.length order);
  (* order must respect dependences *)
  let pos = Array.make (List.length sample_block) 0 in
  List.iteri (fun idx id -> pos.(id) <- idx) order;
  let g = Depgraph.build sample_block in
  Array.iter
    (fun n ->
      List.iter
        (fun (p, _) ->
          Alcotest.(check bool) "pred before succ" true
            (pos.(p) < pos.(n.Depgraph.id)))
        n.Depgraph.preds)
    g.Depgraph.nodes;
  Alcotest.(check bool) "makespan covers latency chain" true (makespan >= 3)

let test_scheduler_resource_bound () =
  (* 8 independent 256-bit multiplies on Sandy Bridge (1 mul pipe):
     at least 8 cycles *)
  let insns =
    List.init 8 (fun i ->
        Insn.Vop { op = Insn.Fmul; w = Insn.W256; dst = i; src1 = i; src2 = i })
  in
  let _, makespan = Depgraph.list_schedule ~rename:true Arch.sandy_bridge insns in
  Alcotest.(check bool) "mul throughput bound" true (makespan >= 8)

let test_scheduler_width_splitting () =
  (* Piledriver splits 256-bit ops: 8 ymm FMAs on two 128-bit pipes
     need at least 8 cycles; Sandy Bridge-like native 256 would take 8
     on one pipe too, so compare against a 4-wide machine *)
  let insns =
    List.init 8 (fun i ->
        Insn.Vop { op = Insn.Fma231; w = Insn.W256; dst = i; src1 = i; src2 = i })
  in
  let _, pd = Depgraph.list_schedule ~rename:true Arch.piledriver insns in
  Alcotest.(check bool) "pd >= 8 cycles (2x128 pipes)" true (pd >= 8)

let test_peak_mflops () =
  Alcotest.(check (float 1.0)) "snb peak" 24800.0 (Arch.peak_mflops Arch.sandy_bridge);
  Alcotest.(check (float 1.0)) "pd peak" 22400.0 (Arch.peak_mflops Arch.piledriver);
  (* haswell: 2 fma pipes x 4 lanes x 2 flops x 3.7 GHz *)
  Alcotest.(check (float 1.0)) "hsw peak" 59200.0 (Arch.peak_mflops Arch.haswell)

let test_by_name () =
  List.iter
    (fun (a : Arch.t) ->
      match Arch.by_name a.Arch.name with
      | Some a' -> Alcotest.(check string) a.Arch.name a.Arch.name a'.Arch.name
      | None -> Alcotest.failf "%s not found" a.Arch.name)
    Arch.extended;
  Alcotest.(check bool) "unknown rejected" true (Arch.by_name "epyc" = None)

let test_movabs_print () =
  Alcotest.(check string) "movabs" "movabsq $-1, %rax"
    (att (Insn.Movabs (Reg.Rax, -1L)))

let test_uops_for () =
  Alcotest.(check int) "256 on snb = 1" 1
    (Arch.uops_for Arch.sandy_bridge Insn.W256);
  Alcotest.(check int) "256 on pd = 2" 2 (Arch.uops_for Arch.piledriver Insn.W256);
  Alcotest.(check int) "128 on pd = 1" 1 (Arch.uops_for Arch.piledriver Insn.W128)

(* Golden table of the AT&T printer over every FP operation x vector
   width x precision x encoding discipline (golden/att_table.txt): the
   mnemonic/suffix selection (sd/pd vs ss/ps, VEX vs legacy) is a flat
   enumerable surface, so lock all 120 cells at once.  Combinations the
   printer rejects are recorded as <print_error: ...> rows. *)
let test_att_golden_table () =
  let fpops =
    Insn.[ ("fadd", Fadd); ("fsub", Fsub); ("fmul", Fmul); ("fdiv", Fdiv);
           ("fxor", Fxor); ("fmov", Fmov); ("fma231", Fma231);
           ("fhadd", Fhadd); ("funpckl", Funpckl); ("funpckh", Funpckh) ]
  in
  let widths = Insn.[ ("w64", W64); ("w128", W128); ("w256", W256) ] in
  let ets = Augem.Machine.Etype.[ F64; F32 ] in
  let buf = Buffer.create 4096 in
  List.iter
    (fun avx ->
      List.iter
        (fun et ->
          List.iter
            (fun (wn, w) ->
              List.iter
                (fun (opn, op) ->
                  let i = Insn.Vop { op; w; dst = 1; src1 = 1; src2 = 2 } in
                  let s =
                    try Att.insn_str ~et ~avx i
                    with Att.Print_error m -> "<print_error: " ^ m ^ ">"
                  in
                  Buffer.add_string buf
                    (Printf.sprintf "%s %s %-7s %-8s| %s\n"
                       (if avx then "avx" else "sse")
                       (Augem.Machine.Etype.name et)
                       wn opn s))
                fpops)
            widths)
        ets)
    [ true; false ];
  let file =
    let base = "att_table.txt" in
    let candidates =
      [ Filename.concat "golden" base;
        Filename.concat (Filename.concat "test" "golden") base ]
    in
    match List.find_opt Sys.file_exists candidates with
    | Some f -> f
    | None -> Alcotest.failf "golden file %s not found" base
  in
  let expected = In_channel.with_open_bin file In_channel.input_all in
  Alcotest.(check string)
    "AT&T fpop x width x precision table matches golden" expected
    (Buffer.contents buf)

let suite =
  [
    Alcotest.test_case "AT&T SSE vs AVX encodings" `Quick test_att_sse_vs_avx;
    Alcotest.test_case "AT&T fpop x width x precision golden table" `Quick
      test_att_golden_table;
    Alcotest.test_case "SSE three-operand rejected" `Quick
      test_att_sse_three_operand_rejected;
    Alcotest.test_case "FMA mnemonics" `Quick test_att_fma;
    Alcotest.test_case "memory operands" `Quick test_att_memory;
    Alcotest.test_case "control flow and prefetch" `Quick test_att_control;
    Alcotest.test_case "read/write sets" `Quick test_reads_writes;
    Alcotest.test_case "flop counting" `Quick test_flops;
    Alcotest.test_case "dependence graph RAW chain" `Quick
      test_depgraph_raw_chain;
    Alcotest.test_case "independent loads" `Quick test_depgraph_loads_independent;
    Alcotest.test_case "memory disambiguation" `Quick
      test_depgraph_memory_disambiguation;
    Alcotest.test_case "scheduler preserves dependences" `Quick
      test_scheduler_topological;
    Alcotest.test_case "scheduler respects throughput" `Quick
      test_scheduler_resource_bound;
    Alcotest.test_case "scheduler splits wide uops" `Quick
      test_scheduler_width_splitting;
    Alcotest.test_case "peak MFLOPS" `Quick test_peak_mflops;
    Alcotest.test_case "architecture lookup" `Quick test_by_name;
    Alcotest.test_case "movabs printing" `Quick test_movabs_print;
    Alcotest.test_case "uop widths" `Quick test_uops_for;
  ]
