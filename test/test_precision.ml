(* The precision axis end-to-end (the `@precision` alias): f32 kernels
   through the per-pass differential oracle, the f32 golden corpus, and
   the naive-vs-blocked SGEMM differential at a long K=1024 reduction —
   the shape the old fixed 1e-9 tolerance could not survive.  The
   tolerance itself is regression-tested in both directions: the
   element-type- and K-scaled default accepts correct f32 rounding, and
   still rejects a genuinely wrong result. *)

module A = Augem
module Ast = A.Ir.Ast
module Arch = A.Machine.Arch
module Etype = A.Machine.Etype
module Kernels = A.Ir.Kernels
module Pipeline = A.Transform.Pipeline
module Oracle = A.Verify.Oracle
module Mat = A.Blas.Matrix
module L3 = A.Blas.Level3

let archs = [ Arch.sandy_bridge; Arch.piledriver ]

let all_kernels =
  Kernels.[ Gemm; Gemv; Axpy; Dot; Ger; Scal; Copy; Pack_a; Pack_b ]

let config_for k =
  match k with
  | Kernels.Gemm -> { Pipeline.default with jam = [ ("j", 4); ("i", 8) ] }
  | Kernels.Gemv -> { Pipeline.default with inner_unroll = Some ("j", 8) }
  | Kernels.Dot ->
      { Pipeline.default with inner_unroll = Some ("i", 8);
        expand_reduction = Some 8 }
  | Kernels.Pack_b -> { Pipeline.default with inner_unroll = Some ("l", 8) }
  | _ -> { Pipeline.default with inner_unroll = Some ("i", 8) }

(* --- f32 per-pass oracle ------------------------------------------------ *)

let test_oracle_clean_f32 () =
  List.iter
    (fun k ->
      let source = Kernels.kernel_of_name ~fp:Ast.Float k in
      match Oracle.check source (config_for k) with
      | Ok _ -> ()
      | Error d ->
          Alcotest.failf "oracle convicted a healthy f32 pipeline on %s:\n%s"
            (Kernels.name_to_string ~fp:Ast.Float k)
            (Oracle.divergence_to_string d))
    all_kernels

(* --- f32 end-to-end verification ---------------------------------------- *)

let test_verify_f32_all_kernels () =
  List.iter
    (fun (arch : Arch.t) ->
      List.iter
        (fun k ->
          let g =
            A.generate ~et:Etype.F32 ~arch ~config:(config_for k) k
          in
          let outcome = A.verify g in
          if not outcome.A.Harness.ok then
            Alcotest.failf "f32 %s on %s failed verification: %s"
              (Kernels.name_to_string ~fp:Ast.Float k)
              arch.Arch.name outcome.A.Harness.detail)
        all_kernels)
    archs

(* --- f32 golden corpus --------------------------------------------------- *)

let golden_file base =
  let candidates =
    [ Filename.concat "golden" base;
      Filename.concat (Filename.concat "test" "golden") base ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some f -> f
  | None -> Alcotest.failf "golden file %s not found" base

let short_name = function
  | Kernels.Gemm -> "gemm"
  | Kernels.Gemv -> "gemv"
  | Kernels.Axpy -> "axpy"
  | Kernels.Dot -> "dot"
  | Kernels.Ger -> "ger"
  | Kernels.Scal -> "scal"
  | Kernels.Copy -> "copy"
  | Kernels.Pack_a -> "pack_a"
  | Kernels.Pack_b -> "pack_b"

let cli_default_config k =
  let base = config_for k in
  {
    base with
    Pipeline.prefetch =
      Some { A.Transform.Prefetch.pf_distance = 8; pf_stores = true };
  }

let test_golden_f32 () =
  List.iter
    (fun (arch : Arch.t) ->
      List.iter
        (fun k ->
          let base =
            Printf.sprintf "s%s-%s.s" (short_name k) arch.Arch.name
          in
          let file = golden_file base in
          let expected = In_channel.with_open_bin file In_channel.input_all in
          let got =
            A.assembly
              (A.generate ~et:Etype.F32 ~arch
                 ~config:(cli_default_config k) k)
          in
          if not (String.equal expected got) then
            Alcotest.failf "f32 %s on %s: assembly differs from %s"
              (short_name k) arch.Arch.name file)
        all_kernels)
    archs

(* --- blocked SGEMM differential at a long reduction ---------------------- *)

(* Tuning an f32 blocked plan is expensive; share one across the suite. *)
let plan32 =
  lazy (A.Blocked.plan ~et:Etype.F32 ~jobs:1 Arch.sandy_bridge)

(* K=1024 accumulates ~1024 f32 rounding steps against the f64 naive
   reference: the old fixed 1e-9 tolerance rejects a perfectly correct
   SGEMM here, the relative K- and epsilon-scaled default accepts it. *)
let test_blocked_f32_long_k () =
  let p = Lazy.force plan32 in
  (match A.Blocked.check p ~m:32 ~n:24 ~k:1024 () with
  | Ok _ -> ()
  | Error e ->
      Alcotest.failf "f32 blocked differential failed at K=1024: %s" e);
  match A.Blocked.check ~tol:1e-9 p ~m:32 ~n:24 ~k:1024 () with
  | Ok _ ->
      Alcotest.fail
        "fixed 1e-9 tolerance accepted f32 at K=1024 — rounding should \
         exceed it"
  | Error _ -> ()

(* The scaled tolerance must not be so loose it passes a genuinely
   wrong result: corrupt one element of the blocked product by far more
   than the rounding budget and the naive comparison has to fail. *)
let test_tolerance_rejects_wrong_result () =
  let p = Lazy.force plan32 in
  let et = Etype.F32 in
  let m, n, k = (32, 24, 1024) in
  let nar (mat : Mat.t) =
    Array.iteri
      (fun i x -> mat.Mat.data.(i) <- Etype.round et x)
      mat.Mat.data;
    mat
  in
  let a = nar (Mat.random ~seed:7 m k) in
  let b = nar (Mat.random ~seed:8 k n) in
  let c0 = nar (Mat.random ~seed:9 m n) in
  let c_naive = Mat.copy c0 in
  let c_gen = Mat.copy c0 in
  L3.dgemm_naive ~alpha:1.0 ~beta:1.0 a b c_naive;
  ignore (A.Blocked.gemm p a b c_gen);
  let tol = Etype.tol ~k et in
  Alcotest.(check bool)
    "correct f32 result within scaled tolerance" true
    (Mat.approx_equal ~tol c_naive c_gen);
  (* a 10% relative error on one element is a bug, not rounding *)
  c_gen.Mat.data.(0) <- (c_gen.Mat.data.(0) *. 1.1) +. 1.0;
  Alcotest.(check bool)
    "corrupted result rejected by scaled tolerance" false
    (Mat.approx_equal ~tol c_naive c_gen)

let suite =
  [
    Alcotest.test_case "f32 oracle clean on all kernels" `Quick
      test_oracle_clean_f32;
    Alcotest.test_case "f32 verify all kernels on both arches" `Slow
      test_verify_f32_all_kernels;
    Alcotest.test_case "f32 golden assembly byte-identical" `Quick
      test_golden_f32;
    Alcotest.test_case "f32 blocked differential at K=1024" `Slow
      test_blocked_f32_long_k;
    Alcotest.test_case "scaled tolerance rejects a wrong result" `Slow
      test_tolerance_rejects_wrong_result;
  ]
