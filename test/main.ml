(* Test entry point.  With AUGEM_FAST set (the `dune build @fast`
   alias), the slow meta-suites — fuzzing, end-to-end integration and
   the multi-domain sweep tests — are skipped, leaving the pure unit
   suites for a quick inner-loop signal.  The default `dune runtest`
   always runs everything. *)

let fast = Sys.getenv_opt "AUGEM_FAST" <> None

let unit_suites =
  [
    ("poly", Test_poly.suite);
    ("ir", Test_ir.suite);
    ("analysis", Test_analysis.suite);
    ("asmcheck", Test_asmcheck.suite);
    ("transform", Test_transform.suite);
    ("templates", Test_templates.suite);
    ("script", Test_script.suite);
    ("machine", Test_machine.suite);
    ("sim", Test_sim.suite);
    ("blas", Test_blas.suite);
    ("codegen", Test_codegen.suite);
    ("driver", Test_driver.suite);
    ("autotune", Test_autotune.suite);
    ("cache", Test_cache.suite);
    ("baselines", Test_baselines.suite);
    ("blocked", Test_blocked.suite);
    ("report", Test_report.suite);
    ("extensions", Test_extensions.suite);
    ("json", Test_json.suite);
    ("service", Test_service.suite);
    ("resilience", Test_resilience.suite);
    ("jit", Test_jit.suite);
  ]

let slow_suites =
  [
    ("parallel", Test_parallel.suite);
    ("fuzz", Test_fuzz.suite);
    ("integration", Test_integration.suite);
    ("precision", Test_precision.suite);
  ]

let () =
  (* `main.exe gengold DIR` regenerates the encoder's golden byte
     tables (test/golden/enc_*.hex) after an intentional change. *)
  match Array.to_list Sys.argv with
  | _ :: "gengold" :: dir :: _ ->
      Test_jit.write_golden dir;
      exit 0
  | _ ->
      Alcotest.run "augem" (unit_suites @ if fast then [] else slow_suites)
