let () =
  Alcotest.run "augem"
    [
      ("poly", Test_poly.suite);
      ("ir", Test_ir.suite);
      ("analysis", Test_analysis.suite);
      ("asmcheck", Test_asmcheck.suite);
      ("transform", Test_transform.suite);
      ("templates", Test_templates.suite);
      ("script", Test_script.suite);
      ("machine", Test_machine.suite);
      ("sim", Test_sim.suite);
      ("blas", Test_blas.suite);
      ("codegen", Test_codegen.suite);
      ("autotune", Test_autotune.suite);
      ("parallel", Test_parallel.suite);
      ("cache", Test_cache.suite);
      ("baselines", Test_baselines.suite);
      ("report", Test_report.suite);
      ("extensions", Test_extensions.suite);
      ("fuzz", Test_fuzz.suite);
      ("integration", Test_integration.suite);
    ]
