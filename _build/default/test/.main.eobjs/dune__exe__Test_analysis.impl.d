test/test_analysis.ml: Alcotest Augem List Set String
