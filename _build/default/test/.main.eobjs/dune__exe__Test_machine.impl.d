test/test_machine.ml: Alcotest Array Augem List
