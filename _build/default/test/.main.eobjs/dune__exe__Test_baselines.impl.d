test/test_baselines.ml: Alcotest Augem List Printf
