test/main.mli:
