test/test_ir.ml: Alcotest Array Augem Float List
