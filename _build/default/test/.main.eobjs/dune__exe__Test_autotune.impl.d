test/test_autotune.ml: Alcotest Augem List Printf
