test/test_sim.ml: Alcotest Array Augem Int64 List
