test/test_codegen.ml: Alcotest Array Augem Float Int64 List Printf
