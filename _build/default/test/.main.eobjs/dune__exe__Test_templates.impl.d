test/test_templates.ml: Alcotest Array Augem Float List Printf String
