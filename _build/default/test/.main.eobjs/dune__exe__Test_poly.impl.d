test/test_poly.ml: Alcotest Augem List QCheck QCheck_alcotest
