test/test_report.ml: Alcotest Augem Fmt List String
