test/test_fuzz.ml: Array Augem Float Fmt List Option QCheck QCheck_alcotest
