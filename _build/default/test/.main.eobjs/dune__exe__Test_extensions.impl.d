test/test_extensions.ml: Alcotest Array Augem Float List Printf String
