test/test_script.ml: Alcotest Augem List
