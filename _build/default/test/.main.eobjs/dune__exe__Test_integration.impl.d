test/test_integration.ml: Alcotest Array Augem Float Gen List Printf QCheck QCheck_alcotest String
