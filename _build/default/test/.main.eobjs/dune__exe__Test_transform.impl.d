test/test_transform.ml: Alcotest Array Augem Float List Option Printf QCheck QCheck_alcotest String
