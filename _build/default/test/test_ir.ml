(* IR semantics: the interpreter against the reference BLAS, the
   pretty-printer/parser round trip, the type checker, and the
   simplifier. *)

module Ast = Augem.Ir.Ast
module Pp = Augem.Ir.Pp
module Eval = Augem.Ir.Eval
module Parser = Augem.Ir.Parser
module Typecheck = Augem.Ir.Typecheck
module Simplify = Augem.Ir.Simplify
module Kernels = Augem.Ir.Kernels
module L1 = Augem.Blas.Level1
module L3 = Augem.Blas.Level3

let fill seed n =
  let state = ref (seed land 0x3FFFFFFF) in
  Array.init n (fun _ ->
      state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
      (float_of_int !state /. 1073741824.0 *. 2.0) -. 1.0)

let close a b = Float.abs (a -. b) <= 1e-9 *. (1.0 +. Float.abs a +. Float.abs b)
let arrays_close a b = Array.for_all2 close a b

(* --- interpreter vs reference BLAS -------------------------------------- *)

let test_eval_gemm () =
  let mc = 6 and kc = 7 and n = 5 and ldc = 8 in
  let pa = fill 1 (mc * kc) and pb = fill 2 (kc * n) in
  let c1 = fill 3 (ldc * n) in
  let c2 = Array.copy c1 in
  let _ =
    Eval.run Kernels.gemm
      Eval.[ Aint mc; Aint kc; Aint n; Aint ldc; Abuf pa; Abuf pb; Abuf c1 ]
  in
  L3.micro_kernel_ref ~mc ~kc ~nc:n ~pa ~pb ~c_data:c2 ~c_off:0 ~ldc;
  Alcotest.(check bool) "gemm kernel = reference micro-kernel" true
    (arrays_close c1 c2)

let test_eval_gemm_packed () =
  let mc = 4 and kc = 5 and n = 6 and ldc = 4 in
  let pa = fill 4 (mc * kc) in
  let pb_stream = fill 5 (kc * n) in
  (* interleave: B[l*n + j] = stream[j*kc + l] *)
  let pb_il = Array.make (kc * n) 0. in
  for j = 0 to n - 1 do
    for l = 0 to kc - 1 do
      pb_il.((l * n) + j) <- pb_stream.((j * kc) + l)
    done
  done;
  let c1 = fill 6 (ldc * n) in
  let c2 = Array.copy c1 in
  let _ =
    Eval.run Kernels.gemm_packed
      Eval.[ Aint mc; Aint kc; Aint n; Aint ldc; Abuf pa; Abuf pb_il; Abuf c1 ]
  in
  L3.micro_kernel_ref ~mc ~kc ~nc:n ~pa ~pb:pb_stream ~c_data:c2 ~c_off:0 ~ldc;
  Alcotest.(check bool) "packed gemm = reference" true (arrays_close c1 c2)

let test_eval_axpy () =
  let n = 13 in
  let x = fill 7 n and y1 = fill 8 n in
  let y2 = Array.copy y1 in
  let _ =
    Eval.run Kernels.axpy Eval.[ Aint n; Adouble 0.75; Abuf x; Abuf y1 ]
  in
  L1.daxpy n 0.75 x y2;
  Alcotest.(check bool) "axpy" true (arrays_close y1 y2)

let test_eval_dot () =
  let n = 17 in
  let x = fill 9 n and y = fill 10 n in
  let out = [| 0.25 |] in
  let _ = Eval.run Kernels.dot Eval.[ Aint n; Abuf x; Abuf y; Abuf out ] in
  Alcotest.(check bool) "dot" true (close out.(0) (0.25 +. L1.ddot n x y))

let test_eval_ger () =
  let m = 7 and n = 4 in
  let lda = m + 1 in
  let a1 = fill 30 (lda * n) in
  let a2 = Array.copy a1 in
  let x = fill 31 m and y = fill 32 n in
  let _ =
    Eval.run Kernels.ger
      Eval.[ Aint m; Aint n; Aint lda; Adouble 1.5; Abuf x; Abuf y; Abuf a1 ]
  in
  let mat = Augem.Blas.Matrix.{ data = a2; rows = m; cols = n; ld = lda } in
  Augem.Blas.Level2.dger ~alpha:1.5 mat x y;
  Alcotest.(check bool) "ger" true (arrays_close a1 a2)

let test_eval_scal_copy () =
  let n = 9 in
  let x1 = fill 33 n in
  let x2 = Array.copy x1 in
  let _ = Eval.run Kernels.scal Eval.[ Aint n; Adouble 0.5; Abuf x1 ] in
  L1.dscal n 0.5 x2;
  Alcotest.(check bool) "scal" true (arrays_close x1 x2);
  let src = fill 34 n and dst = Array.make n 0. in
  let _ = Eval.run Kernels.copy Eval.[ Aint n; Abuf src; Abuf dst ] in
  Alcotest.(check bool) "copy" true (arrays_close src dst)

let test_eval_gemv () =
  let m = 9 and n = 4 in
  let lda = m + 1 in
  let a = fill 11 (lda * n) and x = fill 12 n in
  let y1 = fill 13 m in
  let y2 = Array.copy y1 in
  let _ =
    Eval.run Kernels.gemv
      Eval.[ Aint m; Aint n; Aint lda; Abuf a; Abuf x; Abuf y1 ]
  in
  let mat = Augem.Blas.Matrix.{ data = a; rows = m; cols = n; ld = lda } in
  Augem.Blas.Level2.dgemv ~alpha:1.0 ~beta:1.0 mat x y2;
  Alcotest.(check bool) "gemv" true (arrays_close y1 y2)

let test_eval_stats () =
  let n = 10 in
  let x = fill 14 n and y = fill 15 n in
  let out = [| 0. |] in
  let stats = Eval.run Kernels.dot Eval.[ Aint n; Abuf x; Abuf y; Abuf out ] in
  (* n multiplies + n adds + final add *)
  Alcotest.(check int) "flops" ((2 * n) + 1) stats.Eval.flops;
  Alcotest.(check int) "loads" ((2 * n) + 1) stats.Eval.loads;
  Alcotest.(check int) "stores" 1 stats.Eval.stores

let test_eval_out_of_bounds () =
  let k =
    Ast.
      {
        k_name = "oob";
        k_params = [ { p_name = "X"; p_type = Ptr Double } ];
        k_body = [ Assign (Lindex ("X", Int_lit 5), Double_lit 1.0) ];
      }
  in
  Alcotest.check_raises "store beyond end"
    (Eval.Eval_error "store X[5] out of bounds (length 3)") (fun () ->
      ignore (Eval.run k [ Eval.Abuf (Array.make 3 0.) ]))

(* --- parser / printer ---------------------------------------------------- *)

let test_parse_roundtrip () =
  List.iter
    (fun k ->
      let text = Pp.kernel_to_string k in
      match Parser.parse_kernel_result text with
      | Error msg -> Alcotest.failf "%s failed to reparse: %s" k.Ast.k_name msg
      | Ok k' ->
          Alcotest.(check string)
            (k.Ast.k_name ^ " round trip")
            text (Pp.kernel_to_string k'))
    (Kernels.gemm_packed :: List.map snd Kernels.all)

let test_parse_plus_equals () =
  let src = "void f(int n, double* x) { int i; for (i = 0; i < n; i += 1) { x[i] += 2.0; } }" in
  match Parser.parse_kernel_result src with
  | Error m -> Alcotest.fail m
  | Ok k ->
      let buf = Array.make 4 1.0 in
      let _ = Eval.run k Eval.[ Aint 4; Abuf buf ] in
      Alcotest.(check (float 1e-12)) "+=" 3.0 buf.(2)

let test_parse_comments_and_prefetch () =
  let src =
    "void f(double* x) { /* block\n comment */ // line\n \
     __builtin_prefetch(x + 4, 0); x[0] = 1.0; }"
  in
  match Parser.parse_kernel_result src with
  | Error m -> Alcotest.fail m
  | Ok k -> (
      match k.Ast.k_body with
      | [ Ast.Prefetch (Ast.Prefetch_read, "x", Ast.Int_lit 4); _ ] -> ()
      | _ -> Alcotest.fail "unexpected body shape")

let test_parse_errors () =
  let cases =
    [
      "void f(int n) { n = ; }";
      "void f(int n) { for (i = 0; i < n; i += 1) { } }"; (* undeclared i *)
      "void f(double* x) { x[0] = x; }"; (* type error *)
      "void f(int n) { double d; d = n; }"; (* int into double *)
      "int f() { }"; (* not void *)
    ]
  in
  List.iter
    (fun src ->
      match Parser.parse_kernel_result src with
      | Ok _ -> Alcotest.failf "accepted bad input: %s" src
      | Error _ -> ())
    cases

(* --- typecheck ----------------------------------------------------------- *)

let test_typecheck_kernels () =
  List.iter
    (fun (_, k) ->
      match Typecheck.well_typed k with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: %s" k.Ast.k_name m)
    Kernels.all

let test_typecheck_rejects () =
  let bad =
    Ast.
      {
        k_name = "bad";
        k_params = [ { p_name = "x"; p_type = Double } ];
        k_body = [ Assign (Lvar "x", Int_lit 1) ];
      }
  in
  match Typecheck.well_typed bad with
  | Ok () -> Alcotest.fail "accepted double := int"
  | Error _ -> ()

(* --- simplify ------------------------------------------------------------ *)

let test_simplify_preserves_semantics () =
  let k = Kernels.gemm in
  let k' = Simplify.simplify_kernel k in
  let mc = 4 and kc = 3 and n = 2 and ldc = 5 in
  let pa = fill 20 (mc * kc) and pb = fill 21 (kc * n) in
  let c1 = fill 22 (ldc * n) in
  let c2 = Array.copy c1 in
  let args c =
    Eval.[ Aint mc; Aint kc; Aint n; Aint ldc; Abuf pa; Abuf pb; Abuf c ]
  in
  let _ = Eval.run k (args c1) in
  let _ = Eval.run k' (args c2) in
  Alcotest.(check bool) "same result" true (arrays_close c1 c2)

let test_simplify_folds () =
  let e = Ast.(Binop (Add, Binop (Mul, Int_lit 3, Int_lit 4), Int_lit 0)) in
  Alcotest.(check string) "3*4+0" "12"
    (Pp.expr_to_string (Simplify.simplify_expr e))

let test_subst () =
  let e = Ast.(Binop (Add, Var "i", Index ("A", Var "i"))) in
  let e' = Ast.subst_expr "i" (Ast.Int_lit 7) e in
  Alcotest.(check string) "subst" "7 + A[7]" (Pp.expr_to_string e')

let suite =
  [
    Alcotest.test_case "eval gemm vs reference" `Quick test_eval_gemm;
    Alcotest.test_case "eval packed gemm vs reference" `Quick
      test_eval_gemm_packed;
    Alcotest.test_case "eval axpy vs reference" `Quick test_eval_axpy;
    Alcotest.test_case "eval dot vs reference" `Quick test_eval_dot;
    Alcotest.test_case "eval gemv vs reference" `Quick test_eval_gemv;
    Alcotest.test_case "eval ger vs reference" `Quick test_eval_ger;
    Alcotest.test_case "eval scal/copy vs reference" `Quick
      test_eval_scal_copy;
    Alcotest.test_case "eval operation counters" `Quick test_eval_stats;
    Alcotest.test_case "eval bounds checking" `Quick test_eval_out_of_bounds;
    Alcotest.test_case "print/parse round trip" `Quick test_parse_roundtrip;
    Alcotest.test_case "parser accepts +=" `Quick test_parse_plus_equals;
    Alcotest.test_case "parser comments and prefetch" `Quick
      test_parse_comments_and_prefetch;
    Alcotest.test_case "parser rejects malformed input" `Quick
      test_parse_errors;
    Alcotest.test_case "paper kernels are well-typed" `Quick
      test_typecheck_kernels;
    Alcotest.test_case "typechecker rejects mismatches" `Quick
      test_typecheck_rejects;
    Alcotest.test_case "simplify preserves semantics" `Quick
      test_simplify_preserves_semantics;
    Alcotest.test_case "simplify folds constants" `Quick test_simplify_folds;
    Alcotest.test_case "substitution" `Quick test_subst;
  ]
