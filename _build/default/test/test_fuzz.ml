(* Whole-pipeline fuzzing: randomly generated mini-C kernels are pushed
   through randomly chosen optimization configurations and the full
   code generator, and the generated assembly (executed on the
   functional simulator) must agree with the IR interpreter on the same
   inputs.  This exercises the template matchers, every vectorization
   strategy, the scalar fall-backs, remainder loops, register spilling
   and the scheduler, on programs nobody hand-picked. *)

module A = Augem
module Ast = A.Ir.Ast
module Eval = A.Ir.Eval
module Exec = A.Sim.Exec_sim
module Pipeline = A.Transform.Pipeline
module Arch = A.Machine.Arch

(* --- random kernel generator --------------------------------------------- *)

(* Kernels over one int size parameter [n], 2-3 double arrays and an
   optional double scalar; bodies are loops over [0, n) whose statements
   are drawn from DLA-shaped patterns.  Array subscripts stay within
   [0, 4n + 8): buffers are allocated accordingly. *)

type spec = {
  sp_arrays : int; (* 2 or 3 *)
  sp_has_alpha : bool;
  sp_stmts : stmt_pattern list;
  sp_two_level : bool; (* wrap in an outer loop over [0, 3) *)
  sp_config : Pipeline.config;
  sp_arch_idx : int; (* 0 = sandy bridge, 1 = piledriver, 2 = sse *)
}

and stmt_pattern =
  | P_axpy of int * int (* Q[i + c] += P[i] * alpha-or-s *)
  | P_dotacc of int * int (* s += P[i+c1] * Q[i+c2] *)
  | P_copy of int (* Q[i + c] = P[i] *)
  | P_scale_store of int (* R[i+c] += P[i] * s *)
  | P_scale of int (* Q[i] = Q[i] * alpha-or-s  (svSCAL) *)

let arch_of_idx = function
  | 0 -> Arch.sandy_bridge
  | 1 -> Arch.piledriver
  | _ ->
      { Arch.sandy_bridge with Arch.name = "fuzz-sse"; simd = Arch.SSE;
        fma = Arch.No_fma; vec_bits = 128; native_fp_bits = 128 }

let array_name i = [| "P"; "Q"; "R" |].(i)

let gen_spec =
  QCheck.Gen.(
    let* sp_arrays = int_range 2 3 in
    let* sp_has_alpha = bool in
    let* n_stmts = int_range 1 3 in
    let* sp_stmts =
      list_size (return n_stmts)
        (oneof
           [
             map2 (fun a b -> P_axpy (a, b)) (int_range 0 2) (int_range 0 1);
             map2 (fun a b -> P_dotacc (a, b)) (int_range 0 2) (int_range 0 2);
             map (fun a -> P_copy a) (int_range 0 2);
             map (fun a -> P_scale_store a) (int_range 0 2);
             map (fun a -> P_scale a) (int_range 0 2);
           ])
    in
    let* sp_two_level = bool in
    let* unroll = oneofl [ 1; 2; 3; 4; 7; 8 ] in
    let* expand = oneofl [ None; Some 2; Some 4 ] in
    let* pf = oneofl [ None; Some 4 ] in
    let* sp_arch_idx = int_range 0 2 in
    let config =
      {
        Pipeline.default with
        inner_unroll = Some ("i", unroll);
        expand_reduction = expand;
        prefetch =
          Option.map
            (fun d -> { A.Transform.Prefetch.pf_distance = d; pf_stores = true })
            pf;
      }
    in
    return
      { sp_arrays; sp_has_alpha; sp_stmts; sp_two_level; sp_config = config;
        sp_arch_idx })

(* Materialize the kernel AST for a spec. *)
let kernel_of_spec (sp : spec) : Ast.kernel =
  let open Ast in
  let arr k = array_name (k mod sp.sp_arrays) in
  let scal = if sp.sp_has_alpha then Var "alpha" else Var "s0" in
  let idx ?(ofs = 0) () =
    if sp.sp_two_level then (Var "j" *! Int_lit 3) +! Var "i" +! Int_lit ofs
    else Var "i" +! Int_lit ofs
  in
  let stmt_of = function
    | P_axpy (a, c) ->
        let q = arr (a + 1) in
        Assign
          ( Lindex (q, idx ~ofs:c ()),
            Index (q, idx ~ofs:c ()) +! (Index (arr a, idx ()) *! scal) )
    | P_dotacc (a, b) ->
        Assign
          ( Lvar "acc",
            Var "acc" +! (Index (arr a, idx ()) *! Index (arr b, idx ~ofs:1 ()))
          )
    | P_copy a ->
        Assign (Lindex (arr (a + 1), idx ~ofs:2 ()), Index (arr a, idx ()))
    | P_scale_store a ->
        let r = arr (a + 2) in
        Assign
          ( Lindex (r, idx ~ofs:1 ()),
            Index (r, idx ~ofs:1 ()) +! (Index (arr a, idx ()) *! Var "s0") )
    | P_scale a ->
        let q = arr a in
        Assign (Lindex (q, idx ()), Index (q, idx ()) *! scal)
  in
  let inner =
    For
      ( { loop_var = "i"; loop_init = Int_lit 0; loop_cmp = Lt;
          loop_bound = Var "n"; loop_step = Int_lit 1 },
        List.map stmt_of sp.sp_stmts )
  in
  let looped =
    if sp.sp_two_level then
      For
        ( { loop_var = "j"; loop_init = Int_lit 0; loop_cmp = Lt;
            loop_bound = Int_lit 3; loop_step = Int_lit 1 },
          [ inner ] )
    else inner
  in
  let body =
    [
      Decl (Int, "i", None);
      Decl (Int, "j", None);
      Decl (Double, "acc", None);
      Decl (Double, "s0", None);
      Assign (Lvar "acc", Double_lit 0.);
      Assign (Lvar "s0", Index ("P", Int_lit 0));
      looped;
      Assign
        ( Lindex ("P", Int_lit 0),
          Index ("P", Int_lit 0) +! Var "acc" );
    ]
  in
  {
    k_name = "fuzz_kernel";
    k_params =
      [ { p_name = "n"; p_type = Int } ]
      @ (if sp.sp_has_alpha then [ { p_name = "alpha"; p_type = Double } ]
         else [])
      @ List.filteri
          (fun i _ -> i < sp.sp_arrays)
          [
            { p_name = "P"; p_type = Ptr Double };
            { p_name = "Q"; p_type = Ptr Double };
            { p_name = "R"; p_type = Ptr Double };
          ];
    k_body = body;
  }

let print_spec sp =
  Fmt.str "%a [%s on %s]" A.Ir.Pp.pp_kernel (kernel_of_spec sp)
    (Pipeline.config_to_string sp.sp_config)
    (arch_of_idx sp.sp_arch_idx).Arch.name

let arb_spec = QCheck.make ~print:print_spec gen_spec

(* --- the property ---------------------------------------------------------- *)

let fill seed n =
  let state = ref (seed land 0x3FFFFFFF) in
  Array.init n (fun _ ->
      state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
      (float_of_int !state /. 1073741824.0 *. 2.0) -. 1.0)

let close a b = Float.abs (a -. b) <= 1e-8 *. (1.0 +. Float.abs a +. Float.abs b)

let run_spec (sp : spec) : bool =
  let kernel = kernel_of_spec sp in
  let arch = arch_of_idx sp.sp_arch_idx in
  match
    let optimized = Pipeline.apply kernel sp.sp_config in
    let prog = A.Codegen.Emit.generate ~arch optimized in
    A.Codegen.Schedule.run arch prog
  with
  | exception A.Codegen.Regfile.Out_of_registers _ -> true (* legal discard *)
  | prog ->
      List.for_all
        (fun n ->
          let len = (4 * n) + 16 in
          let mk k = fill ((n * 37) + k) len in
          let bufs_ref = List.init sp.sp_arrays mk in
          let bufs_sim = List.map Array.copy bufs_ref in
          let eval_args =
            [ Eval.Aint n ]
            @ (if sp.sp_has_alpha then [ Eval.Adouble 1.5 ] else [])
            @ List.map (fun b -> Eval.Abuf b) bufs_ref
          in
          let exec_args =
            [ Exec.Aint n ]
            @ (if sp.sp_has_alpha then [ Exec.Adouble 1.5 ] else [])
            @ List.map (fun b -> Exec.Abuf b) bufs_sim
          in
          let _ = Eval.run kernel eval_args in
          let _ = Exec.call prog exec_args in
          List.for_all2
            (fun a b -> Array.for_all2 close a b)
            bufs_ref bufs_sim)
        [ 5; 16; 23 ]

let prop_pipeline_fuzz =
  QCheck.Test.make ~name:"random kernels x random configs: asm == interpreter"
    ~count:70 arb_spec run_spec

let suite = [ QCheck_alcotest.to_alcotest prop_pipeline_fuzz ]
