(* Source-to-source optimizations: every pass, and every random
   configuration of the whole pipeline, must preserve the semantics of
   the four paper kernels (checked by the IR interpreter) and
   well-typedness. *)

module Ast = Augem.Ir.Ast
module Eval = Augem.Ir.Eval
module Typecheck = Augem.Ir.Typecheck
module Kernels = Augem.Ir.Kernels
module Unroll = Augem.Transform.Unroll
module Strength_reduction = Augem.Transform.Strength_reduction
module Scalar_repl = Augem.Transform.Scalar_repl
module Prefetch = Augem.Transform.Prefetch
module Pipeline = Augem.Transform.Pipeline
module Pp = Augem.Ir.Pp

let fill seed n =
  let state = ref (seed land 0x3FFFFFFF) in
  Array.init n (fun _ ->
      state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
      (float_of_int !state /. 1073741824.0 *. 2.0) -. 1.0)

let close a b = Float.abs (a -. b) <= 1e-9 *. (1.0 +. Float.abs a +. Float.abs b)

(* Run kernel and transformed kernel on the same inputs; compare every
   output buffer. *)
let equivalent ?(sizes = [ (8, 6, 16); (13, 5, 9); (4, 4, 4) ]) k k' =
  List.for_all
    (fun (m, n, kk) ->
      let outputs k_run seed =
        match k_run.Ast.k_name with
        | "dgemm_kernel" | "dgemm_kernel_packed" ->
            let ldc = m + 2 in
            let pa = fill seed (m * kk) and pb = fill (seed + 1) (kk * n) in
            let c = fill (seed + 2) (ldc * n) in
            let _ =
              Eval.run k_run
                Eval.[ Aint m; Aint kk; Aint n; Aint ldc; Abuf pa; Abuf pb;
                       Abuf c ]
            in
            c
        | "dgemv_kernel" ->
            let lda = m + 1 in
            let a = fill seed (lda * n) and x = fill (seed + 1) n in
            let y = fill (seed + 2) m in
            let _ =
              Eval.run k_run
                Eval.[ Aint m; Aint n; Aint lda; Abuf a; Abuf x; Abuf y ]
            in
            y
        | "daxpy_kernel" ->
            let x = fill seed m and y = fill (seed + 1) m in
            let _ =
              Eval.run k_run Eval.[ Aint m; Adouble 1.3; Abuf x; Abuf y ]
            in
            y
        | "ddot_kernel" ->
            let x = fill seed m and y = fill (seed + 1) m in
            let out = [| 0.5 |] in
            let _ =
              Eval.run k_run Eval.[ Aint m; Abuf x; Abuf y; Abuf out ]
            in
            out
        | other -> Alcotest.failf "unknown kernel %s" other
      in
      let seed = (m * 131) + n in
      Array.for_all2 close (outputs k seed) (outputs k' seed))
    sizes

let check_pass name k k' =
  (match Typecheck.well_typed k' with
  | Ok () -> ()
  | Error m ->
      Alcotest.failf "%s: output ill-typed: %s\n%s" name m
        (Pp.kernel_to_string k'));
  Alcotest.(check bool) (name ^ " preserves semantics") true (equivalent k k')

(* --- individual passes --------------------------------------------------- *)

let test_unroll_jam_gemm () =
  List.iter
    (fun (j, i) ->
      let k' =
        Unroll.unroll_and_jam
          (Unroll.unroll_and_jam Kernels.gemm ~loop_var:"j" ~factor:j)
          ~loop_var:"i" ~factor:i
      in
      check_pass (Printf.sprintf "unroll&jam j=%d i=%d" j i) Kernels.gemm k')
    [ (1, 1); (2, 2); (3, 2); (2, 5); (4, 4) ]

let test_unroll_inner () =
  List.iter
    (fun f ->
      let k' = Unroll.unroll Kernels.axpy ~loop_var:"i" ~factor:f in
      check_pass (Printf.sprintf "unroll %d" f) Kernels.axpy k')
    [ 1; 2; 3; 4; 7; 8 ]

let test_expand_accumulators () =
  List.iter
    (fun (f, w) ->
      let k' = Unroll.unroll Kernels.dot ~loop_var:"i" ~factor:f in
      let k' = Unroll.expand_accumulators k' ~loop_var:"i" ~ways:w in
      check_pass (Printf.sprintf "expand f=%d w=%d" f w) Kernels.dot k')
    [ (4, 4); (8, 4); (8, 8); (6, 2) ]

let test_strength_reduction () =
  List.iter
    (fun (name, k) ->
      check_pass ("strength reduction " ^ name) k (Strength_reduction.run k))
    [ ("gemm", Kernels.gemm); ("gemv", Kernels.gemv); ("axpy", Kernels.axpy);
      ("dot", Kernels.dot); ("gemm_packed", Kernels.gemm_packed) ]

let test_strength_reduction_introduces_pointers () =
  let k' = Strength_reduction.run Kernels.gemm in
  let ptrs = Augem.Analysis.Arrays.pointer_vars k' in
  Alcotest.(check bool) "derived pointers introduced" true
    (List.exists (fun p -> String.length p > 4 && String.sub p 0 4 = "ptr_") ptrs)

let test_scalar_replacement () =
  List.iter
    (fun (name, k) ->
      let k' = Scalar_repl.run (Strength_reduction.run k) in
      check_pass ("scalar replacement " ^ name) k k')
    [ ("gemm", Kernels.gemm); ("gemv", Kernels.gemv); ("axpy", Kernels.axpy);
      ("dot", Kernels.dot) ]

let test_scalar_replacement_three_address () =
  (* after the pass, no floating-point assignment nests operators *)
  let k' = Scalar_repl.run (Strength_reduction.run Kernels.gemm) in
  let rec max_depth = function
    | Ast.Int_lit _ | Ast.Double_lit _ | Ast.Var _ -> 0
    | Ast.Index (_, e) -> max_depth e
    | Ast.Neg e -> 1 + max_depth e
    | Ast.Binop (_, a, b) -> 1 + max (max_depth a) (max_depth b)
  in
  let rec check = function
    | Ast.Assign (Ast.Lvar v, e) ->
        (* double assignments must be single-operation *)
        if
          (not (String.length v > 3 && String.sub v 0 3 = "ptr"))
          && max_depth e > 1
        then Alcotest.failf "not three-address: %s" (Pp.stmt_to_string (Ast.Assign (Ast.Lvar v, e)))
    | Ast.For (_, body) -> List.iter check body
    | Ast.If (_, _, _, t, f) ->
        List.iter check t;
        List.iter check f
    | _ -> ()
  in
  List.iter check k'.Ast.k_body

let test_prefetch_insertion () =
  let k = Strength_reduction.run Kernels.axpy in
  let k' = Prefetch.insert k { Prefetch.pf_distance = 8; pf_stores = true } in
  check_pass "prefetch" k k';
  let rec count = function
    | Ast.Prefetch _ -> 1
    | Ast.For (_, b) | Ast.Tagged (_, b) -> List.fold_left (fun a s -> a + count s) 0 b
    | Ast.If (_, _, _, t, f) ->
        List.fold_left (fun a s -> a + count s) 0 (t @ f)
    | _ -> 0
  in
  let total = List.fold_left (fun a s -> a + count s) 0 k'.Ast.k_body in
  Alcotest.(check bool) "prefetches inserted" true (total >= 2)

let test_prefetch_hints () =
  let k = Strength_reduction.run Kernels.axpy in
  let k' = Prefetch.insert k { Prefetch.pf_distance = 4; pf_stores = true } in
  let rec hints acc = function
    | Ast.Prefetch (h, _, _) -> h :: acc
    | Ast.For (_, b) -> List.fold_left hints acc b
    | _ -> acc
  in
  let all = List.fold_left hints [] k'.Ast.k_body in
  Alcotest.(check bool) "read and write hints present" true
    (List.mem Ast.Prefetch_read all && List.mem Ast.Prefetch_write all)

(* --- whole-pipeline property test ---------------------------------------- *)

let gen_gemm_config =
  QCheck.Gen.(
    let* j = int_range 1 4 in
    let* i = int_range 1 8 in
    let* pf = oneofl [ None; Some 4; Some 8 ] in
    return
      {
        Pipeline.default with
        jam = [ ("j", j); ("i", i) ];
        prefetch =
          Option.map (fun d -> { Prefetch.pf_distance = d; pf_stores = true }) pf;
      })

let arb_gemm_config =
  QCheck.make ~print:Pipeline.config_to_string gen_gemm_config

let prop_pipeline_gemm =
  QCheck.Test.make ~name:"random pipeline configs preserve gemm semantics"
    ~count:25 arb_gemm_config (fun cfg ->
      let k' = Pipeline.apply Kernels.gemm cfg in
      equivalent Kernels.gemm k')

let gen_vec_config loop =
  QCheck.Gen.(
    let* u = int_range 1 10 in
    let* e = oneofl [ None; Some 2; Some 4; Some u ] in
    return
      {
        Pipeline.default with
        inner_unroll = Some (loop, u);
        expand_reduction = e;
      })

let prop_pipeline_dot =
  QCheck.Test.make ~name:"random pipeline configs preserve dot semantics"
    ~count:25
    (QCheck.make ~print:Pipeline.config_to_string (gen_vec_config "i"))
    (fun cfg ->
      let k' = Pipeline.apply Kernels.dot cfg in
      equivalent Kernels.dot k')

let prop_pipeline_gemv =
  QCheck.Test.make ~name:"random pipeline configs preserve gemv semantics"
    ~count:18
    (QCheck.make ~print:Pipeline.config_to_string (gen_vec_config "j"))
    (fun cfg ->
      let k' = Pipeline.apply Kernels.gemv cfg in
      equivalent Kernels.gemv k')

let suite =
  [
    Alcotest.test_case "unroll&jam on gemm" `Quick test_unroll_jam_gemm;
    Alcotest.test_case "inner unrolling on axpy" `Quick test_unroll_inner;
    Alcotest.test_case "accumulator expansion on dot" `Quick
      test_expand_accumulators;
    Alcotest.test_case "strength reduction on all kernels" `Quick
      test_strength_reduction;
    Alcotest.test_case "strength reduction introduces pointers" `Quick
      test_strength_reduction_introduces_pointers;
    Alcotest.test_case "scalar replacement on all kernels" `Quick
      test_scalar_replacement;
    Alcotest.test_case "scalar replacement yields three-address code" `Quick
      test_scalar_replacement_three_address;
    Alcotest.test_case "prefetch insertion" `Quick test_prefetch_insertion;
    Alcotest.test_case "prefetch read/write hints" `Quick test_prefetch_hints;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_pipeline_gemm; prop_pipeline_dot; prop_pipeline_gemv ]
