(* The empirical tuner: every (architecture, kernel) pair must yield a
   viable, verified configuration; discarded counts reflect register
   pressure; the cache is stable. *)

module A = Augem
module Arch = A.Machine.Arch
module Kernels = A.Ir.Kernels
module Tuner = A.Tuner

let archs = [ Arch.sandy_bridge; Arch.piledriver ]
let kernels = Kernels.[ Gemm; Gemv; Axpy; Dot; Ger ]

let test_tuner_finds_config () =
  List.iter
    (fun arch ->
      List.iter
        (fun k ->
          let r = Tuner.tuned arch k in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s positive score" arch.Arch.name
               (Kernels.name_to_string k))
            true (r.Tuner.best_score > 0.);
          Alcotest.(check bool) "visited some configurations" true
            (r.Tuner.visited > 1))
        kernels)
    archs

let test_tuned_kernels_verify () =
  List.iter
    (fun arch ->
      List.iter
        (fun k ->
          let r = Tuner.tuned arch k in
          let o = A.Harness.verify k r.Tuner.best_program in
          if not o.A.Harness.ok then
            Alcotest.failf "tuned %s on %s: %s" (Kernels.name_to_string k)
              arch.Arch.name o.A.Harness.detail)
        kernels)
    archs

let test_gemm_discards_big_blockings () =
  (* the gemm space contains configurations that exceed 16 SIMD
     registers; they must be discarded, not crash *)
  let r = Tuner.tune Arch.sandy_bridge Kernels.Gemm in
  Alcotest.(check bool) "some discarded" true (r.Tuner.discarded > 0)

let test_tuner_beats_minimum () =
  (* the tuned gemm must beat the no-unrolling baseline by a wide margin *)
  let arch = Arch.sandy_bridge in
  let r = Tuner.tuned arch Kernels.Gemm in
  let base =
    let cfg = { A.Transform.Pipeline.default with jam = [ ("j", 1); ("i", 1) ] } in
    let g = A.generate ~arch ~config:cfg Kernels.Gemm in
    (A.predict g (Tuner.reference_workload Kernels.Gemm)).A.Sim.Perf.e_mflops
  in
  Alcotest.(check bool)
    (Printf.sprintf "tuned %.0f > 2x scalar %.0f" r.Tuner.best_score base)
    true
    (r.Tuner.best_score > 2.0 *. base)

let test_cache_stable () =
  let r1 = Tuner.tuned Arch.piledriver Kernels.Axpy in
  let r2 = Tuner.tuned Arch.piledriver Kernels.Axpy in
  Alcotest.(check bool) "same result object" true (r1 == r2)

let test_explicit_workload () =
  let r =
    Tuner.tune ~workload:(A.Sim.Perf.W_gemm { m = 1024; n = 1024; k = 256 })
      Arch.piledriver Kernels.Gemm
  in
  Alcotest.(check bool) "positive" true (r.Tuner.best_score > 0.)

let suite =
  [
    Alcotest.test_case "tuner finds configurations" `Slow
      test_tuner_finds_config;
    Alcotest.test_case "tuned kernels verify" `Slow test_tuned_kernels_verify;
    Alcotest.test_case "register pressure discards" `Slow
      test_gemm_discards_big_blockings;
    Alcotest.test_case "tuned gemm beats scalar baseline" `Quick
      test_tuner_beats_minimum;
    Alcotest.test_case "tuning cache" `Quick test_cache_stable;
    Alcotest.test_case "explicit workload" `Quick test_explicit_workload;
  ]
