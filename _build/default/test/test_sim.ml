(* The functional simulator: per-instruction semantics (shuffles,
   blends, FMA, stack discipline, control flow) and the cycle model's
   sanity properties. *)

module Insn = Augem.Machine.Insn
module Reg = Augem.Machine.Reg
module Arch = Augem.Machine.Arch
module Exec = Augem.Sim.Exec_sim
module Cycle = Augem.Sim.Cycle_sim
module Mem = Augem.Sim.Mem_model
module Cache = Augem.Sim.Cache_sim

(* run a straight-line snippet writing lane values of register [out]
   into the result buffer *)
let run_snippet ?(nlanes = 4) (body : Insn.t list) ~(out : int) :
    float array =
  let buf = Array.make nlanes 0. in
  let prog =
    Insn.
      {
        prog_name = "snippet";
        prog_insns =
          body
          @ [
              Vstore
                { w = (if nlanes = 4 then W256 else W128);
                  src = out;
                  dst = mem Reg.Rdi };
              Ret;
            ];
      }
  in
  let _ = Exec.call prog [ Exec.Abuf buf ] in
  buf

(* load constants into a vector register from a buffer *)
let with_consts (values : float array) (k : int -> Insn.t list) :
    Insn.t list * Exec.arg list =
  ignore values;
  ignore k;
  ([], [])

let test_shufpd () =
  (* xmm0 = (1,2); xmm1 = (3,4); shufpd imm=1 -> (xmm0[1], xmm1[0]) = (2,3) *)
  let buf_in = [| 1.; 2.; 3.; 4. |] in
  let prog =
    Insn.
      {
        prog_name = "t";
        prog_insns =
          [
            Vload { w = W128; dst = 0; src = mem Reg.Rdi };
            Vload { w = W128; dst = 1; src = mem ~disp:16 Reg.Rdi };
            Vshuf { w = W128; dst = 2; src1 = 0; src2 = 1; imm = 1 };
            Vstore { w = W128; src = 2; dst = mem Reg.Rsi };
            Ret;
          ];
      }
  in
  let out = Array.make 2 0. in
  let _ = Exec.call prog [ Exec.Abuf buf_in; Exec.Abuf out ] in
  Alcotest.(check (array (float 0.))) "shufpd" [| 2.; 3. |] out

let test_blendpd () =
  let buf_in = [| 1.; 2.; 3.; 4. |] in
  let prog =
    Insn.
      {
        prog_name = "t";
        prog_insns =
          [
            Vload { w = W128; dst = 0; src = mem Reg.Rdi };
            Vload { w = W128; dst = 1; src = mem ~disp:16 Reg.Rdi };
            Vblend { w = W128; dst = 2; src1 = 0; src2 = 1; imm = 2 };
            Vstore { w = W128; src = 2; dst = mem Reg.Rsi };
            Ret;
          ];
      }
  in
  let out = Array.make 2 0. in
  let _ = Exec.call prog [ Exec.Abuf buf_in; Exec.Abuf out ] in
  Alcotest.(check (array (float 0.))) "blendpd $2" [| 1.; 4. |] out

let test_broadcast_and_unpck () =
  let buf_in = [| 7.; 9. |] in
  let prog =
    Insn.
      {
        prog_name = "t";
        prog_insns =
          [
            Vbroadcast { w = W256; dst = 0; src = mem ~disp:8 Reg.Rdi };
            Vstore { w = W256; src = 0; dst = mem Reg.Rsi };
            Ret;
          ];
      }
  in
  let out = Array.make 4 0. in
  let _ = Exec.call prog [ Exec.Abuf buf_in; Exec.Abuf out ] in
  Alcotest.(check (array (float 0.))) "vbroadcastsd" [| 9.; 9.; 9.; 9. |] out

let test_extract_and_hadd () =
  let buf_in = [| 1.; 2.; 3.; 4. |] in
  let prog =
    Insn.
      {
        prog_name = "t";
        prog_insns =
          [
            Vload { w = W256; dst = 0; src = mem Reg.Rdi };
            Vextract128 { dst = 1; src = 0; lane = 1 };
            (* hadd: (v1[0]+v1[1], v1[0]+v1[1]) with both sources = v1 *)
            Vop { op = Fhadd; w = W128; dst = 2; src1 = 1; src2 = 1 };
            Vstore { w = W128; src = 2; dst = mem Reg.Rsi };
            Ret;
          ];
      }
  in
  let out = Array.make 2 0. in
  let _ = Exec.call prog [ Exec.Abuf buf_in; Exec.Abuf out ] in
  Alcotest.(check (array (float 0.))) "extract+hadd" [| 7.; 7. |] out

let test_vperm2f128 () =
  let buf_in = [| 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8. |] in
  let prog =
    Insn.
      {
        prog_name = "t";
        prog_insns =
          [
            Vload { w = W256; dst = 0; src = mem Reg.Rdi };
            Vload { w = W256; dst = 1; src = mem ~disp:32 Reg.Rdi };
            (* imm 0x21: low = src1 high (3,4); high = src2 low (5,6) *)
            Vperm128 { dst = 2; src1 = 0; src2 = 1; imm = 0x21 };
            (* low nibble 8: zeroed; high nibble 3: src2 high *)
            Vperm128 { dst = 3; src1 = 0; src2 = 1; imm = 0x38 };
            Vstore { w = W256; src = 2; dst = mem Reg.Rsi };
            Vstore { w = W256; src = 3; dst = mem ~disp:32 Reg.Rsi };
            Ret;
          ];
      }
  in
  let out = Array.make 8 9. in
  let _ = Exec.call prog [ Exec.Abuf buf_in; Exec.Abuf out ] in
  Alcotest.(check (array (float 0.))) "vperm2f128"
    [| 3.; 4.; 5.; 6.; 0.; 0.; 7.; 8. |] out

let test_vblend_256 () =
  let buf_in = [| 1.; 2.; 3.; 4.; 10.; 20.; 30.; 40. |] in
  let prog =
    Insn.
      {
        prog_name = "t";
        prog_insns =
          [
            Vload { w = W256; dst = 0; src = mem Reg.Rdi };
            Vload { w = W256; dst = 1; src = mem ~disp:32 Reg.Rdi };
            Vblend { w = W256; dst = 2; src1 = 0; src2 = 1; imm = 0b0101 };
            Vstore { w = W256; src = 2; dst = mem Reg.Rsi };
            Ret;
          ];
      }
  in
  let out = Array.make 4 0. in
  let _ = Exec.call prog [ Exec.Abuf buf_in; Exec.Abuf out ] in
  Alcotest.(check (array (float 0.))) "vblendpd" [| 10.; 2.; 30.; 4. |] out

let test_scalar_upper_lane_semantics () =
  (* vaddsd: lane 0 computed, upper lanes from src1 *)
  let buf_in = [| 1.; 2.; 3.; 4.; 100.; 0.; 0.; 0. |] in
  let prog =
    Insn.
      {
        prog_name = "t";
        prog_insns =
          [
            Vload { w = W256; dst = 0; src = mem Reg.Rdi };
            Vload { w = W64; dst = 1; src = mem ~disp:32 Reg.Rdi };
            Vop { op = Fadd; w = W64; dst = 2; src1 = 0; src2 = 1 };
            Vstore { w = W256; src = 2; dst = mem Reg.Rsi };
            Ret;
          ];
      }
  in
  let out = Array.make 4 9. in
  let _ = Exec.call prog [ Exec.Abuf buf_in; Exec.Abuf out ] in
  Alcotest.(check (array (float 0.))) "vaddsd upper lanes"
    [| 101.; 2.; 3.; 4. |] out

let test_fma_semantics () =
  let buf_in = [| 2.; 3.; 5.; 7.; 11.; 13.; 17.; 19. |] in
  let prog =
    Insn.
      {
        prog_name = "t";
        prog_insns =
          [
            Vload { w = W128; dst = 0; src = mem Reg.Rdi };
            Vload { w = W128; dst = 1; src = mem ~disp:16 Reg.Rdi };
            Vload { w = W128; dst = 2; src = mem ~disp:32 Reg.Rdi };
            (* dst += src1*src2: v2 = v2 + v0*v1 = (11+2*5, 13+3*7) *)
            Vop { op = Fma231; w = W128; dst = 2; src1 = 0; src2 = 1 };
            (* FMA4: v3 = v0*v1 + v2 *)
            Vfma4 { w = W128; dst = 3; a = 0; b = 1; c = 2 };
            Vstore { w = W128; src = 2; dst = mem Reg.Rsi };
            Vstore { w = W128; src = 3; dst = mem ~disp:16 Reg.Rsi };
            Ret;
          ];
      }
  in
  let out = Array.make 4 0. in
  let _ = Exec.call prog [ Exec.Abuf buf_in; Exec.Abuf out ] in
  Alcotest.(check (array (float 1e-12))) "fma3 then fma4"
    [| 21.; 34.; 31.; 55. |] out

let test_control_flow_and_stack () =
  (* compute sum 1..n with a loop, push/pop around it *)
  let prog =
    Insn.
      {
        prog_name = "t";
        prog_insns =
          [
            Push Reg.Rbx;
            Movri (Reg.Rax, 0); (* acc *)
            Movri (Reg.Rbx, 1); (* i *)
            Label ".Lloop";
            Cmprr (Reg.Rbx, Reg.Rdi);
            Jcc (Cgt, ".Ldone");
            Addrr (Reg.Rax, Reg.Rbx);
            Addri (Reg.Rbx, 1);
            Jmp ".Lloop";
            Label ".Ldone";
            Movq_xr { dst = 0; src = Reg.Rax };
            Pop Reg.Rbx;
            Ret;
          ];
      }
  in
  let st = Exec.create () in
  let _ = Exec.run st prog in
  (* rdi = 0 by default: loop does not run; rerun with an argument *)
  let st = Exec.create () in
  Exec.set_gpr st Reg.Rdi 10L;
  let _ = Exec.run st prog in
  Alcotest.(check int64) "sum 1..10" 55L (Exec.get_gpr st Reg.Rax)

let test_movabs_double () =
  let prog =
    Insn.
      {
        prog_name = "t";
        prog_insns =
          [
            Movabs (Reg.Rax, Int64.bits_of_float (-3.25));
            Movq_xr { dst = 0; src = Reg.Rax };
            Vstore { w = W64; src = 0; dst = mem Reg.Rdi };
            Ret;
          ];
      }
  in
  let out = [| 0. |] in
  let _ = Exec.call prog [ Exec.Abuf out ] in
  Alcotest.(check (float 0.)) "negative literal" (-3.25) out.(0)

let test_stack_args () =
  (* more than 6 integer args: the 7th arrives on the stack *)
  let prog =
    Insn.
      {
        prog_name = "t";
        prog_insns =
          [
            Push Reg.Rbp;
            Movrr (Reg.Rbp, Reg.Rsp);
            Loadq (Reg.Rax, mem ~disp:16 Reg.Rbp);
            Movq_xr { dst = 0; src = Reg.Rax };
            Vstore { w = W64; src = 0; dst = mem Reg.Rdi };
            Pop Reg.Rbp;
            Ret;
          ];
      }
  in
  let out = [| 0. |] in
  let _ =
    Exec.call prog
      Exec.[ Abuf out; Aint 1; Aint 2; Aint 3; Aint 4; Aint 5; Aint 42 ]
  in
  Alcotest.(check (float 0.)) "7th argument via stack"
    (Int64.float_of_bits 42L) out.(0)

let test_fault_on_unaligned () =
  let prog =
    Insn.
      {
        prog_name = "t";
        prog_insns =
          [ Vload { w = W64; dst = 0; src = mem ~disp:4 Reg.Rdi }; Ret ];
      }
  in
  match Exec.call prog [ Exec.Abuf [| 1.0 |] ] with
  | exception Exec.Sim_error _ -> ()
  | _ -> Alcotest.fail "expected unaligned fault"

(* --- cycle model ---------------------------------------------------------- *)

let gemm_prog arch =
  let cfg =
    { Augem.Transform.Pipeline.default with jam = [ ("j", 2); ("i", 8) ] }
  in
  (Augem.generate ~arch ~config:cfg Augem.Ir.Kernels.Gemm).Augem.g_program

let test_hot_loop_detection () =
  let arch = Arch.sandy_bridge in
  let p = gemm_prog arch in
  match Cycle.hot_loop arch p with
  | None -> Alcotest.fail "no hot loop found"
  | Some li ->
      Alcotest.(check int) "flops/iter of 2x8 avx kernel" 32
        li.Cycle.li_flops;
      Alcotest.(check bool) "has prefetches" true (li.Cycle.li_prefetches > 0)

let test_steady_cycles_bounds () =
  let arch = Arch.sandy_bridge in
  let p = gemm_prog arch in
  match Cycle.hot_loop arch p with
  | None -> Alcotest.fail "no hot loop"
  | Some li ->
      (* lower bound: 4 ymm multiplies on one pipe = 4 cycles *)
      Alcotest.(check bool) "cycles >= mul throughput bound" true
        (li.Cycle.li_cycles >= 4.0);
      Alcotest.(check bool) "cycles bounded above" true
        (li.Cycle.li_cycles <= 40.0)

let test_efficiency_monotone_in_isa () =
  (* the same blocking is less efficient on an SSE-only machine *)
  let sse =
    { Arch.sandy_bridge with Arch.name = "snb-sse-test"; simd = Arch.SSE;
      fma = Arch.No_fma; vec_bits = 128; native_fp_bits = 128 }
  in
  let e_avx = Cycle.kernel_efficiency Arch.sandy_bridge (gemm_prog Arch.sandy_bridge) in
  let e_sse = Cycle.kernel_efficiency sse (gemm_prog sse) in
  Alcotest.(check bool) "both positive" true (e_avx > 0.2 && e_sse > 0.2);
  (* both near their own peaks: efficiency relative to peak comparable *)
  Alcotest.(check bool) "avx kernel efficient" true (e_avx > 0.5)

let test_mem_model_residency () =
  let a = Arch.sandy_bridge in
  Alcotest.(check string) "small in L1" "L1"
    (Mem.level_name (Mem.residency a 1024));
  Alcotest.(check string) "big in DRAM" "DRAM"
    (Mem.level_name (Mem.residency a (512 * 1024 * 1024)))

let test_mem_model_prefetch_helps () =
  let a = Arch.piledriver in
  let c1 = Mem.stream_cycles a ~working_set:(64 * 1024 * 1024) ~traffic:1e6 ~prefetch:true in
  let c2 = Mem.stream_cycles a ~working_set:(64 * 1024 * 1024) ~traffic:1e6 ~prefetch:false in
  Alcotest.(check bool) "prefetch reduces stream time" true (c1 < c2)

let test_cache_sim_basics () =
  let c = Cache.create_cache ~name:"t" ~size_bytes:1024 ~ways:2 ~line:64 in
  (* 1024/(2*64) = 8 sets *)
  Alcotest.(check bool) "cold miss" false (Cache.access_line c 0);
  Alcotest.(check bool) "hit" true (Cache.access_line c 0);
  (* two lines mapping to set 0: 0 and 8; both fit (2 ways) *)
  Alcotest.(check bool) "second way" false (Cache.access_line c 8);
  Alcotest.(check bool) "both resident" true (Cache.access_line c 0);
  (* third conflicting line evicts LRU (line 8) *)
  Alcotest.(check bool) "conflict miss" false (Cache.access_line c 16);
  Alcotest.(check bool) "line 0 kept (MRU)" true (Cache.access_line c 0);
  Alcotest.(check bool) "line 8 evicted" false (Cache.access_line c 8)

let test_cache_hierarchy_locality () =
  (* streaming a small buffer twice: second pass hits in L1 *)
  let h = Cache.of_arch Arch.sandy_bridge in
  for _pass = 1 to 2 do
    for i = 0 to 255 do
      Cache.access h ~addr:(8 * i) ~bytes:8 ~store:false
    done
  done;
  let levels, dram = Cache.stats h in
  let l1 = List.hd levels in
  (* 32 cold line misses; 480 hits *)
  Alcotest.(check int) "l1 misses" 32 l1.Cache.ls_misses;
  Alcotest.(check int) "dram fetches" 32 dram;
  Alcotest.(check bool) "l1 hit rate high" true (Cache.hit_rate l1 > 0.9)

let test_cache_on_generated_kernel () =
  (* an L1-resident AXPY has a high hit rate; each 64-byte line is
     touched 8 times (8 doubles) *)
  let arch = Arch.sandy_bridge in
  let g = Augem.tuned ~arch Augem.Ir.Kernels.Axpy in
  let h = Cache.of_arch arch in
  let n = 512 in
  let x = Array.init n float_of_int and y = Array.make n 1.0 in
  let _ =
    Exec.call ~on_access:(Cache.access h) g.Augem.g_program
      Exec.[ Aint n; Adouble 2.0; Abuf x; Abuf y ]
  in
  let levels, _ = Cache.stats h in
  Alcotest.(check bool) "L1 hit rate > 70%" true
    (Cache.hit_rate (List.hd levels) > 0.7)

let test_perf_monotone_in_size () =
  (* GEMM MFLOPS grows with problem size (overhead amortizes) *)
  let arch = Arch.sandy_bridge in
  let p = gemm_prog arch in
  let at m = (Augem.Sim.Perf.predict arch p (Augem.Sim.Perf.W_gemm { m; n = m; k = 256 })).Augem.Sim.Perf.e_mflops in
  Alcotest.(check bool) "1024 < 4096" true (at 1024 < at 4096 +. 1.0)

let suite =
  [
    Alcotest.test_case "shufpd" `Quick test_shufpd;
    Alcotest.test_case "blendpd" `Quick test_blendpd;
    Alcotest.test_case "vbroadcastsd" `Quick test_broadcast_and_unpck;
    Alcotest.test_case "vextractf128 + haddpd" `Quick test_extract_and_hadd;
    Alcotest.test_case "vperm2f128" `Quick test_vperm2f128;
    Alcotest.test_case "vblendpd 256" `Quick test_vblend_256;
    Alcotest.test_case "scalar op upper lanes" `Quick
      test_scalar_upper_lane_semantics;
    Alcotest.test_case "FMA3 and FMA4" `Quick test_fma_semantics;
    Alcotest.test_case "control flow and stack" `Quick
      test_control_flow_and_stack;
    Alcotest.test_case "movabs double literal" `Quick test_movabs_double;
    Alcotest.test_case "stack-passed arguments" `Quick test_stack_args;
    Alcotest.test_case "unaligned access faults" `Quick test_fault_on_unaligned;
    Alcotest.test_case "hot loop detection" `Quick test_hot_loop_detection;
    Alcotest.test_case "steady-state cycle bounds" `Quick
      test_steady_cycles_bounds;
    Alcotest.test_case "efficiency across ISAs" `Quick
      test_efficiency_monotone_in_isa;
    Alcotest.test_case "cache residency" `Quick test_mem_model_residency;
    Alcotest.test_case "prefetch improves streaming" `Quick
      test_mem_model_prefetch_helps;
    Alcotest.test_case "cache sim LRU/associativity" `Quick
      test_cache_sim_basics;
    Alcotest.test_case "cache hierarchy locality" `Quick
      test_cache_hierarchy_locality;
    Alcotest.test_case "cache stats on generated kernel" `Quick
      test_cache_on_generated_kernel;
    Alcotest.test_case "MFLOPS monotone in size" `Quick
      test_perf_monotone_in_size;
  ]
