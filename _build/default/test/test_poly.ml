(* Polynomial normal form: ring laws, linear decomposition, and
   expression round-trips. *)

module Poly = Augem.Ir.Poly
module Ast = Augem.Ir.Ast

let vars = [ "i"; "j"; "l"; "Mc"; "Kc"; "LDC" ]

(* random polynomial generator via random expressions.  The size is
   capped: nested multiplications multiply monomial counts, so an
   unbounded generator can produce polynomials with 2^n terms. *)
let gen_expr =
  QCheck.Gen.(
    sized_size (int_bound 8)
    @@ fix (fun self n ->
        if n <= 1 then
          oneof
            [
              map (fun i -> Ast.Int_lit i) (int_range (-9) 9);
              map (fun v -> Ast.Var v) (oneofl vars);
            ]
        else
          oneof
            [
              map2
                (fun a b -> Ast.Binop (Ast.Add, a, b))
                (self (n / 2)) (self (n / 2));
              map2
                (fun a b -> Ast.Binop (Ast.Sub, a, b))
                (self (n / 2)) (self (n / 2));
              map2
                (fun a b -> Ast.Binop (Ast.Mul, a, b))
                (self (n / 2)) (self (n / 2));
              map (fun a -> Ast.Neg a) (self (n - 1));
            ]))

let arb_expr = QCheck.make ~print:Augem.Ir.Pp.expr_to_string gen_expr

(* evaluate an integer expression under an environment *)
let rec eval env = function
  | Ast.Int_lit n -> n
  | Ast.Var v -> List.assoc v env
  | Ast.Binop (Ast.Add, a, b) -> eval env a + eval env b
  | Ast.Binop (Ast.Sub, a, b) -> eval env a - eval env b
  | Ast.Binop (Ast.Mul, a, b) -> eval env a * eval env b
  | Ast.Binop (Ast.Div, a, b) -> eval env a / eval env b
  | Ast.Neg a -> -eval env a
  | Ast.Double_lit _ | Ast.Index _ -> assert false

let env_of_seed seed =
  List.mapi (fun i v -> (v, ((seed * (i + 3)) mod 7) - 3)) vars

let prop_roundtrip =
  QCheck.Test.make ~name:"of_expr/to_expr preserves value" ~count:500 arb_expr
    (fun e ->
      match Poly.of_expr e with
      | None -> QCheck.assume_fail ()
      | Some p ->
          let e' = Poly.to_expr p in
          List.for_all
            (fun seed ->
              let env = env_of_seed seed in
              eval env e = eval env e')
            [ 1; 2; 5; 11 ])

let prop_add_commutes =
  QCheck.Test.make ~name:"polynomial addition commutes" ~count:300
    (QCheck.pair arb_expr arb_expr) (fun (a, b) ->
      match (Poly.of_expr a, Poly.of_expr b) with
      | Some pa, Some pb -> Poly.equal (Poly.add pa pb) (Poly.add pb pa)
      | _ -> QCheck.assume_fail ())

let prop_mul_distributes =
  QCheck.Test.make ~name:"multiplication distributes over addition"
    ~count:200
    (QCheck.triple arb_expr arb_expr arb_expr)
    (fun (a, b, c) ->
      match (Poly.of_expr a, Poly.of_expr b, Poly.of_expr c) with
      | Some pa, Some pb, Some pc ->
          Poly.equal
            (Poly.mul pa (Poly.add pb pc))
            (Poly.add (Poly.mul pa pb) (Poly.mul pa pc))
      | _ -> QCheck.assume_fail ())

let prop_sub_self_zero =
  QCheck.Test.make ~name:"p - p = 0" ~count:300 arb_expr (fun e ->
      match Poly.of_expr e with
      | Some p -> Poly.is_zero (Poly.sub p p)
      | None -> QCheck.assume_fail ())

let prop_split_linear =
  QCheck.Test.make ~name:"split_linear reconstructs p = base + v*stride"
    ~count:300 arb_expr (fun e ->
      match Poly.of_expr e with
      | None -> QCheck.assume_fail ()
      | Some p -> (
          match Poly.split_linear "i" p with
          | None -> true (* nonlinear in i: nothing to check *)
          | Some (base, stride) ->
              (not (Poly.mem_var "i" base))
              && (not (Poly.mem_var "i" stride))
              && Poly.equal p
                   (Poly.add base (Poly.mul (Poly.var "i") stride))))

let unit_tests =
  [
    Alcotest.test_case "constants fold" `Quick (fun () ->
        let p = Poly.add (Poly.const 2) (Poly.const 3) in
        Alcotest.(check (option int)) "2+3" (Some 5) (Poly.to_const p));
    Alcotest.test_case "x - x is zero" `Quick (fun () ->
        Alcotest.(check bool) "zero" true
          (Poly.is_zero (Poly.sub (Poly.var "x") (Poly.var "x"))));
    Alcotest.test_case "l*Mc + i splits on l" `Quick (fun () ->
        let p =
          Poly.add (Poly.mul (Poly.var "l") (Poly.var "Mc")) (Poly.var "i")
        in
        match Poly.split_linear "l" p with
        | Some (base, stride) ->
            Alcotest.(check bool) "base = i" true (Poly.equal base (Poly.var "i"));
            Alcotest.(check bool) "stride = Mc" true
              (Poly.equal stride (Poly.var "Mc"))
        | None -> Alcotest.fail "expected linear split");
    Alcotest.test_case "nonlinear split rejected" `Quick (fun () ->
        let p = Poly.mul (Poly.var "i") (Poly.var "i") in
        Alcotest.(check bool) "i*i not linear" true
          (Poly.split_linear "i" p = None));
    Alcotest.test_case "vars are collected sorted" `Quick (fun () ->
        let p =
          Poly.add (Poly.mul (Poly.var "j") (Poly.var "a")) (Poly.var "b")
        in
        Alcotest.(check (list string)) "vars" [ "a"; "b"; "j" ] (Poly.vars p));
    Alcotest.test_case "division prevents conversion" `Quick (fun () ->
        let e = Ast.Binop (Ast.Div, Ast.Var "i", Ast.Int_lit 2) in
        Alcotest.(check bool) "no poly" true (Poly.of_expr e = None));
  ]

let suite =
  unit_tests
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_roundtrip; prop_add_commutes; prop_mul_distributes;
        prop_sub_self_zero; prop_split_linear;
      ]
