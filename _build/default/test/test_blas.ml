(* Reference BLAS substrate: Level-1/2/3 numerics, the Goto blocking
   against the naive triple loop, packing layouts, and algebraic
   identities (TRSM inverts TRMM, SYRK symmetry, ...). *)

module Mat = Augem.Blas.Matrix
module L1 = Augem.Blas.Level1
module L2 = Augem.Blas.Level2
module L3 = Augem.Blas.Level3

let close a b = Float.abs (a -. b) <= 1e-9 *. (1.0 +. Float.abs a +. Float.abs b)

(* --- level 1 -------------------------------------------------------------- *)

let arb_vec =
  QCheck.(
    make
      ~print:(fun a -> String.concat ";" (Array.to_list (Array.map string_of_float a)))
      Gen.(
        let* n = int_range 1 50 in
        array_size (return n) (float_range (-10.) 10.)))

let prop_dot_commutes =
  QCheck.Test.make ~name:"ddot commutes" ~count:200 (QCheck.pair arb_vec arb_vec)
    (fun (x, y) ->
      let n = min (Array.length x) (Array.length y) in
      close (L1.ddot n x y) (L1.ddot n y x))

let prop_axpy_linear =
  QCheck.Test.make ~name:"daxpy twice = daxpy of sum" ~count:200
    (QCheck.triple arb_vec QCheck.(float_range (-5.) 5.) QCheck.(float_range (-5.) 5.))
    (fun (x, a, b) ->
      let n = Array.length x in
      let y1 = Array.make n 0. and y2 = Array.make n 0. in
      L1.daxpy n a x y1;
      L1.daxpy n b x y1;
      L1.daxpy n (a +. b) x y2;
      Array.for_all2 close y1 y2)

let prop_nrm2_dot =
  QCheck.Test.make ~name:"dnrm2^2 = ddot x x" ~count:200 arb_vec (fun x ->
      let n = Array.length x in
      let nrm = L1.dnrm2 n x in
      close (nrm *. nrm) (L1.ddot n x x))

let test_idamax () =
  Alcotest.(check int) "idamax" 2 (L1.idamax 4 [| 1.; -2.; 5.; 4. |]);
  Alcotest.(check int) "idamax negative" 1 (L1.idamax 3 [| 1.; -7.; 5. |])

let test_dscal_dswap_dcopy () =
  let x = [| 1.; 2.; 3. |] and y = [| 4.; 5.; 6. |] in
  L1.dscal 3 2.0 x;
  Alcotest.(check (array (float 0.))) "dscal" [| 2.; 4.; 6. |] x;
  L1.dswap 3 x y;
  Alcotest.(check (array (float 0.))) "dswap" [| 4.; 5.; 6. |] x;
  let z = Array.make 3 0. in
  L1.dcopy 3 y z;
  Alcotest.(check (array (float 0.))) "dcopy" [| 2.; 4.; 6. |] z;
  Alcotest.(check (float 1e-12)) "dasum" 15.0 (L1.dasum 3 x)

(* --- level 2 -------------------------------------------------------------- *)

let test_gemv_trans () =
  let a = Mat.random ~seed:3 5 4 in
  let x = Array.init 5 float_of_int in
  let y = Array.make 4 0. in
  L2.dgemv ~trans:L2.Trans ~alpha:1.0 ~beta:0.0 a x y;
  (* compare with explicit transpose *)
  let at = L3.transpose a in
  let y' = Array.make 4 0. in
  L2.dgemv ~alpha:1.0 ~beta:0.0 at x y';
  Alcotest.(check bool) "A^T x" true (Array.for_all2 close y y')

let test_ger_rank1 () =
  let m = 4 and n = 3 in
  let a = Mat.create m n in
  let x = Array.init m (fun i -> float_of_int (i + 1)) in
  let y = Array.init n (fun j -> float_of_int (j + 2)) in
  L2.dger ~alpha:2.0 a x y;
  Alcotest.(check (float 1e-12)) "a(2,1)" (2.0 *. 3.0 *. 3.0) (Mat.get a 2 1)

let test_trsv_inverts_trmv () =
  let n = 8 in
  let l = Mat.random_lower ~seed:9 n in
  let x = Array.init n (fun i -> float_of_int (i - 3) /. 2.) in
  let b = Array.copy x in
  L2.dtrmv l b; (* b = L x *)
  L2.dtrsv l b; (* b = L^-1 L x = x *)
  Alcotest.(check bool) "round trip" true (Array.for_all2 close b x)

let test_symv () =
  let n = 5 in
  let a = Mat.random_symmetric ~seed:4 n in
  let x = Array.init n (fun i -> float_of_int i /. 3.) in
  let y1 = Array.make n 0. and y2 = Array.make n 0. in
  L2.dsymv ~alpha:1.0 ~beta:0.0 a x y1;
  L2.dgemv ~alpha:1.0 ~beta:0.0 a x y2;
  Alcotest.(check bool) "symv = gemv on full symmetric" true
    (Array.for_all2 close y1 y2)

(* --- level 3 -------------------------------------------------------------- *)

let arb_shape =
  QCheck.(
    make
      ~print:(fun (m, k, n) -> Printf.sprintf "%dx%dx%d" m k n)
      Gen.(triple (int_range 1 40) (int_range 1 40) (int_range 1 40)))

let prop_blocked_equals_naive =
  QCheck.Test.make ~name:"blocked GEMM = naive GEMM" ~count:60 arb_shape
    (fun (m, k, n) ->
      let a = Mat.random ~seed:m m k in
      let b = Mat.random ~seed:(k + 1) k n in
      let c1 = Mat.random ~seed:(n + 2) m n in
      let c2 = Mat.copy c1 in
      L3.dgemm_naive ~alpha:1.5 ~beta:0.5 a b c1;
      L3.dgemm_blocked
        ~blocking:{ L3.bk_mc = 8; bk_kc = 6; bk_nc = 5 }
        ~alpha:1.5 ~beta:0.5 a b c2;
      Mat.approx_equal c1 c2)

let test_packing_roundtrip () =
  let b = Mat.random ~seed:13 7 5 in
  let kc = 4 and nc = 3 in
  let buf = Array.make (kc * nc) 0. in
  L3.pack_b b ~l0:2 ~j0:1 ~kc ~nc buf;
  Alcotest.(check (float 0.)) "stream layout" (Mat.get b 3 2) buf.((1 * kc) + 1);
  let buf2 = Array.make (kc * nc) 0. in
  L3.pack_b_interleaved b ~l0:2 ~j0:1 ~kc ~nc buf2;
  Alcotest.(check (float 0.)) "interleaved layout" (Mat.get b 3 2)
    buf2.((1 * nc) + 1)

let test_symm () =
  let n = 12 in
  let a = Mat.random_symmetric ~seed:21 n in
  let b = Mat.random ~seed:22 n n in
  let c1 = Mat.random ~seed:23 n n in
  let c2 = Mat.copy c1 in
  L3.dsymm ~side:L3.Left ~alpha:1.0 ~beta:1.0 a b c1;
  (* reference: full symmetric gemm *)
  L3.dgemm_naive ~alpha:1.0 ~beta:1.0 a b c2;
  Alcotest.(check bool) "symm = gemm(full)" true (Mat.approx_equal c1 c2)

let test_syrk () =
  let n = 9 and k = 6 in
  let a = Mat.random ~seed:31 n k in
  let c = Mat.create n n in
  L3.dsyrk ~alpha:1.0 ~beta:0.0 a c;
  (* lower triangle must hold A A^T *)
  let full = Mat.create n n in
  L3.dgemm_naive ~alpha:1.0 ~beta:0.0 a (L3.transpose a) full;
  let ok = ref true in
  for j = 0 to n - 1 do
    for i = j to n - 1 do
      if not (close (Mat.get c i j) (Mat.get full i j)) then ok := false
    done
  done;
  Alcotest.(check bool) "syrk lower triangle" true !ok

let test_syr2k () =
  let n = 7 and k = 5 in
  let a = Mat.random ~seed:41 n k in
  let b = Mat.random ~seed:42 n k in
  let c = Mat.create n n in
  L3.dsyr2k ~alpha:1.0 ~beta:0.0 a b c;
  let full = Mat.create n n in
  L3.dgemm_naive ~alpha:1.0 ~beta:0.0 a (L3.transpose b) full;
  L3.dgemm_naive ~alpha:1.0 ~beta:1.0 b (L3.transpose a) full;
  let ok = ref true in
  for j = 0 to n - 1 do
    for i = j to n - 1 do
      if not (close (Mat.get c i j) (Mat.get full i j)) then ok := false
    done
  done;
  Alcotest.(check bool) "syr2k lower triangle" true !ok

let test_trmm () =
  let n = 20 and rhs = 7 in
  let l = Mat.random_lower ~seed:51 n in
  let b = Mat.random ~seed:52 n rhs in
  let b1 = Mat.copy b in
  L3.dtrmm ~alpha:1.0 l b1;
  (* reference: full gemm with the triangular matrix *)
  let b2 = Mat.create n rhs in
  L3.dgemm_naive ~alpha:1.0 ~beta:0.0 l b b2;
  Alcotest.(check bool) "trmm = L*B" true (Mat.approx_equal b1 b2)

let test_trsm_inverts_trmm () =
  let n = 33 and rhs = 6 in
  let l = Mat.random_lower ~seed:61 n in
  let b = Mat.random ~seed:62 n rhs in
  let x = Mat.copy b in
  L3.dtrmm ~alpha:1.0 l x; (* x = L b *)
  L3.dtrsm ~alpha:1.0 l x; (* x = b *)
  Alcotest.(check bool) "trsm . trmm = id" true
    (Mat.approx_equal ~tol:1e-7 x b)

let test_trsm_small_blocks_cross () =
  (* blocked TRSM crosses diagonal-block boundaries correctly *)
  let n = 100 and rhs = 3 in
  let l = Mat.random_lower ~seed:71 n in
  let b = Mat.random ~seed:72 n rhs in
  let x = Mat.copy b in
  L3.dtrsm ~alpha:1.0 l x;
  (* check L x = b column-wise via trmv *)
  let ok = ref true in
  for j = 0 to rhs - 1 do
    let col = Array.init n (fun i -> Mat.get x i j) in
    L2.dtrmv l col;
    for i = 0 to n - 1 do
      if not (close col.(i) (Mat.get b i j)) then ok := false
    done
  done;
  Alcotest.(check bool) "L (trsm b) = b" true !ok

let test_alpha_beta_handling () =
  let m = 5 and k = 4 and n = 3 in
  let a = Mat.random ~seed:81 m k in
  let b = Mat.random ~seed:82 k n in
  let c = Mat.random ~seed:83 m n in
  let c0 = Mat.copy c in
  (* alpha = 0: C := beta*C *)
  L3.dgemm_blocked ~alpha:0.0 ~beta:2.0 a b c;
  let ok = ref true in
  for j = 0 to n - 1 do
    for i = 0 to m - 1 do
      if not (close (Mat.get c i j) (2.0 *. Mat.get c0 i j)) then ok := false
    done
  done;
  Alcotest.(check bool) "beta scaling" true !ok

let suite =
  [
    Alcotest.test_case "idamax" `Quick test_idamax;
    Alcotest.test_case "dscal/dswap/dcopy/dasum" `Quick test_dscal_dswap_dcopy;
    Alcotest.test_case "gemv transpose" `Quick test_gemv_trans;
    Alcotest.test_case "ger rank-1 update" `Quick test_ger_rank1;
    Alcotest.test_case "trsv inverts trmv" `Quick test_trsv_inverts_trmv;
    Alcotest.test_case "symv vs gemv" `Quick test_symv;
    Alcotest.test_case "packing layouts" `Quick test_packing_roundtrip;
    Alcotest.test_case "symm" `Quick test_symm;
    Alcotest.test_case "syrk" `Quick test_syrk;
    Alcotest.test_case "syr2k" `Quick test_syr2k;
    Alcotest.test_case "trmm" `Quick test_trmm;
    Alcotest.test_case "trsm inverts trmm" `Quick test_trsm_inverts_trmm;
    Alcotest.test_case "trsm across blocks" `Quick test_trsm_small_blocks_cross;
    Alcotest.test_case "alpha/beta handling" `Quick test_alpha_beta_handling;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_dot_commutes; prop_axpy_linear; prop_nrm2_dot;
        prop_blocked_equals_naive ]
