(* Library models: every modelled library's kernels are functionally
   correct (they all run on the simulator against the reference BLAS),
   and the paper's qualitative ordering holds on the reference
   workloads. *)

module A = Augem
module Arch = A.Machine.Arch
module Kernels = A.Ir.Kernels
module Lib = A.Library
module Perf = A.Sim.Perf

let archs = [ Arch.sandy_bridge; Arch.piledriver ]
let kernels = Kernels.[ Gemm; Gemv; Axpy; Dot; Ger ]

let test_all_libraries_verify () =
  List.iter
    (fun arch ->
      List.iter
        (fun k ->
          List.iter
            (fun lib ->
              let _, prog = Lib.generate lib arch k in
              let o = A.Harness.verify k prog in
              if not o.A.Harness.ok then
                Alcotest.failf "%s %s on %s: %s"
                  (Lib.display_name arch lib)
                  (Kernels.name_to_string k) arch.Arch.name o.A.Harness.detail)
            Lib.all)
        kernels)
    archs

let workload_for = A.Tuner.reference_workload

let test_augem_wins_reference_workloads () =
  List.iter
    (fun arch ->
      List.iter
        (fun k ->
          let w = workload_for k in
          let augem = Lib.predict Lib.AUGEM arch k w in
          List.iter
            (fun lib ->
              if lib <> Lib.AUGEM then
                let other = Lib.predict lib arch k w in
                Alcotest.(check bool)
                  (Printf.sprintf "AUGEM (%.0f) >= %s (%.0f) on %s/%s" augem
                     (Lib.display_name arch lib) other arch.Arch.name
                     (Kernels.name_to_string k))
                  true
                  (augem >= other *. 0.999))
            Lib.all)
        kernels)
    archs

let test_goto_half_gemm () =
  (* GotoBLAS (SSE2-only) lands at roughly half the AVX GEMM rate on
     Sandy Bridge — the paper's headline GotoBLAS gap *)
  let w = workload_for Kernels.Gemm in
  List.iter
    (fun arch ->
      let augem = Lib.predict Lib.AUGEM arch Kernels.Gemm w in
      let goto = Lib.predict Lib.GotoBLAS arch Kernels.Gemm w in
      let ratio = augem /. goto in
      Alcotest.(check bool)
        (Printf.sprintf "ratio %.2f in [1.5, 3.0] on %s" ratio arch.Arch.name)
        true
        (ratio >= 1.5 && ratio <= 3.0))
    archs

let test_vendor_close_on_gemm () =
  (* the vendor library is within ~10% of AUGEM on GEMM (paper: 1.4% /
     2.6%) *)
  let w = workload_for Kernels.Gemm in
  List.iter
    (fun arch ->
      let augem = Lib.predict Lib.AUGEM arch Kernels.Gemm w in
      let vendor = Lib.predict Lib.Vendor arch Kernels.Gemm w in
      Alcotest.(check bool)
        (Printf.sprintf "vendor within 10%% (%.0f vs %.0f)" vendor augem)
        true
        (vendor >= 0.90 *. augem))
    archs

let test_vendor_level1_prefetch_gap () =
  (* vendor AXPY lacks software prefetch: a visible gap at streaming
     sizes (paper: 19.7% on Sandy Bridge, 45.5% on Piledriver) *)
  let w = Perf.W_axpy { n = 150_000 } in
  List.iter
    (fun arch ->
      let augem = Lib.predict Lib.AUGEM arch Kernels.Axpy w in
      let vendor = Lib.predict Lib.Vendor arch Kernels.Axpy w in
      let gap = (augem /. vendor -. 1.) *. 100. in
      Alcotest.(check bool)
        (Printf.sprintf "axpy gap %.1f%% in [10, 80] on %s" gap arch.Arch.name)
        true
        (gap >= 10. && gap <= 80.))
    archs

let test_display_names () =
  Alcotest.(check string) "intel vendor" "MKL 11.0"
    (Lib.display_name Arch.sandy_bridge Lib.Vendor);
  Alcotest.(check string) "amd vendor" "ACML 5.3.0"
    (Lib.display_name Arch.piledriver Lib.Vendor)

let test_goto_arch_is_sse () =
  let a = Lib.effective_arch Arch.sandy_bridge Lib.GotoBLAS in
  Alcotest.(check bool) "sse mode" true (a.Arch.simd = Arch.SSE);
  Alcotest.(check int) "128-bit" 128 a.Arch.vec_bits

let suite =
  [
    Alcotest.test_case "all libraries verify" `Slow test_all_libraries_verify;
    Alcotest.test_case "AUGEM wins reference workloads" `Slow
      test_augem_wins_reference_workloads;
    Alcotest.test_case "GotoBLAS at half on GEMM" `Quick test_goto_half_gemm;
    Alcotest.test_case "vendor close on GEMM" `Quick test_vendor_close_on_gemm;
    Alcotest.test_case "vendor Level-1 prefetch gap" `Quick
      test_vendor_level1_prefetch_gap;
    Alcotest.test_case "display names" `Quick test_display_names;
    Alcotest.test_case "GotoBLAS model is SSE2" `Quick test_goto_arch_is_sse;
  ]
