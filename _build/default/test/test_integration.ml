(* End-to-end integration: the generated assembly micro-kernel running
   inside the Goto-blocked GEMM driver on the functional simulator,
   the C-text front end feeding the whole pipeline, and the Table-6
   routine path. *)

module A = Augem
module Arch = A.Machine.Arch
module Kernels = A.Ir.Kernels
module Mat = A.Blas.Matrix
module L3 = A.Blas.Level3
module Exec = A.Sim.Exec_sim

let sim_kernel prog : L3.micro_kernel =
 fun ~mc ~kc ~nc ~pa ~pb ~c_data ~c_off ~ldc ->
  let len = min (ldc * nc) (Array.length c_data - c_off) in
  let view = Array.sub c_data c_off len in
  let _ =
    Exec.call prog
      Exec.[ Aint mc; Aint kc; Aint nc; Aint ldc; Abuf pa; Abuf pb; Abuf view ]
  in
  Array.blit view 0 c_data c_off len

let tuned_gemm_prog arch = (A.tuned ~arch Kernels.Gemm).A.g_program

let test_blocked_gemm_with_simulated_kernel () =
  let arch = Arch.sandy_bridge in
  let kernel = sim_kernel (tuned_gemm_prog arch) in
  List.iter
    (fun (m, k, n) ->
      let a = Mat.random ~seed:m m k in
      let b = Mat.random ~seed:(k + 7) k n in
      let c1 = Mat.random ~seed:(n + 3) m n in
      let c2 = Mat.copy c1 in
      L3.dgemm_naive ~alpha:1.0 ~beta:1.0 a b c1;
      L3.dgemm_blocked
        ~blocking:{ L3.bk_mc = 16; bk_kc = 12; bk_nc = 8 }
        ~kernel ~alpha:1.0 ~beta:1.0 a b c2;
      Alcotest.(check bool)
        (Printf.sprintf "blocked+simulated %dx%dx%d" m k n)
        true
        (Mat.approx_equal ~tol:1e-10 c1 c2))
    [ (16, 12, 8); (17, 13, 9); (32, 24, 16); (5, 3, 2); (40, 1, 7) ]

let prop_blocked_sim_random_shapes =
  QCheck.Test.make ~name:"blocked GEMM with simulated kernel, random shapes"
    ~count:6
    QCheck.(
      make
        ~print:(fun (m, k, n) -> Printf.sprintf "%dx%dx%d" m k n)
        Gen.(triple (int_range 1 24) (int_range 1 20) (int_range 1 16)))
    (fun (m, k, n) ->
      let arch = Arch.piledriver in
      let kernel = sim_kernel (tuned_gemm_prog arch) in
      let a = Mat.random ~seed:(m * 3) m k in
      let b = Mat.random ~seed:(k * 5) k n in
      let c1 = Mat.random ~seed:(n * 7) m n in
      let c2 = Mat.copy c1 in
      L3.dgemm_naive ~alpha:1.0 ~beta:1.0 a b c1;
      L3.dgemm_blocked
        ~blocking:{ L3.bk_mc = 8; bk_kc = 6; bk_nc = 4 }
        ~kernel ~alpha:1.0 ~beta:1.0 a b c2;
      Mat.approx_equal ~tol:1e-10 c1 c2)

let test_trsm_with_simulated_kernel () =
  (* the paper's TRSM decomposition: simulated GEMM kernel handles the
     trailing update *)
  let arch = Arch.sandy_bridge in
  let kernel = sim_kernel (tuned_gemm_prog arch) in
  let n = 70 and rhs = 5 in
  let l = Mat.random_lower ~seed:91 n in
  let b = Mat.random ~seed:92 n rhs in
  let x = Mat.copy b in
  L3.dtrsm ~blocking:{ L3.bk_mc = 16; bk_kc = 12; bk_nc = 8 } ~kernel
    ~alpha:1.0 l x;
  let x' = Mat.copy x in
  L3.dtrmm ~alpha:1.0 l x';
  Alcotest.(check bool) "L(trsm) = b" true (Mat.approx_equal ~tol:1e-7 x' b)

let test_c_text_to_simulated_execution () =
  let source =
    {|
void saxpby(int n, double a, double b, double* X, double* Y)
{
  int i;
  double t;
  for (i = 0; i < n; i += 1) {
    t = X[i] * a;
    Y[i] = Y[i] + t;
    Y[i] = Y[i] + X[i] * b;
  }
}
|}
  in
  match A.Ir.Parser.parse_kernel_result source with
  | Error m -> Alcotest.fail m
  | Ok k ->
      let cfg =
        { A.Transform.Pipeline.default with inner_unroll = Some ("i", 4) }
      in
      let optimized = A.Transform.Pipeline.apply k cfg in
      let prog = A.Codegen.Emit.generate ~arch:Arch.piledriver optimized in
      let n = 11 in
      let x = Array.init n (fun i -> float_of_int (i + 1)) in
      let y = Array.make n 1.0 in
      let _ =
        Exec.call prog
          Exec.[ Aint n; Adouble 2.0; Adouble 3.0; Abuf x; Abuf y ]
      in
      let expected = Array.init n (fun i -> 1.0 +. (5.0 *. x.(i))) in
      Alcotest.(check bool) "y = 1 + 5x" true
        (Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-12) expected y)

let test_assembly_listing_sane () =
  let g = A.tuned ~arch:Arch.piledriver Kernels.Gemm in
  let asm = A.assembly g in
  List.iter
    (fun needle ->
      let found =
        let rec go i =
          i + String.length needle <= String.length asm
          && (String.sub asm i (String.length needle) = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) ("contains " ^ needle) true found)
    [ "dgemm_kernel:"; "vfmadd231pd"; "prefetcht0"; "ret"; ".globl" ]

let suite =
  [
    Alcotest.test_case "blocked GEMM with simulated kernel" `Slow
      test_blocked_gemm_with_simulated_kernel;
    Alcotest.test_case "TRSM with simulated kernel" `Slow
      test_trsm_with_simulated_kernel;
    Alcotest.test_case "C text to simulated execution" `Quick
      test_c_text_to_simulated_execution;
    Alcotest.test_case "assembly listing" `Quick test_assembly_listing_sane;
    QCheck_alcotest.to_alcotest prop_blocked_sim_random_shapes;
  ]
