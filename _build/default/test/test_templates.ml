(* The Template Identifier: the paper's Figure 14 structure must be
   recovered from the optimized GEMM, the unit templates from the other
   kernels, and the tagged form must reproduce the matched code
   exactly. *)

module Ast = Augem.Ir.Ast
module Kernels = Augem.Ir.Kernels
module Pipeline = Augem.Transform.Pipeline
module T = Augem.Templates.Template
module M = Augem.Templates.Matcher

let optimize k cfg = Pipeline.apply k cfg

let region_names k cfg =
  let ak = M.identify (optimize k cfg) in
  List.map (fun r -> (T.region_name r, T.region_size r)) (M.regions ak)

let test_gemm_2x2_matches_figure14 () =
  (* paper Figure 14: one mmUnrolledCOMP of 4 in loop l, two
     mmUnrolledSTOREs of 2 after it (split by C pointer) *)
  let cfg = { Pipeline.default with jam = [ ("j", 2); ("i", 2) ] } in
  let names = region_names Kernels.gemm cfg in
  let main = List.filteri (fun i _ -> i < 3) names in
  Alcotest.(check (list (pair string int)))
    "main loop regions"
    [ ("mmUnrolledCOMP", 4); ("mmUnrolledSTORE", 2); ("mmUnrolledSTORE", 2) ]
    main

let test_gemm_4x8 () =
  let cfg = { Pipeline.default with jam = [ ("j", 4); ("i", 8) ] } in
  match region_names Kernels.gemm cfg with
  | ("mmUnrolledCOMP", 32) :: rest ->
      let stores = List.filter (fun (n, _) -> n = "mmUnrolledSTORE") rest in
      (* 4 groups in the main loop (one per j column) plus one in the
         j-remainder loop's main i loop *)
      Alcotest.(check int) "store groups of 8" 5
        (List.length (List.filter (fun (_, s) -> s = 8) stores))
  | other ->
      Alcotest.failf "unexpected first region: %s"
        (String.concat ";" (List.map fst other))

let test_gemv_matches_mv () =
  let cfg = { Pipeline.default with inner_unroll = Some ("j", 4) } in
  match region_names Kernels.gemv cfg with
  | ("mvUnrolledCOMP", 4) :: _ -> ()
  | other ->
      Alcotest.failf "unexpected: %s"
        (String.concat ";"
           (List.map (fun (n, s) -> Printf.sprintf "%s/%d" n s) other))

let test_axpy_matches_mv () =
  let cfg = { Pipeline.default with inner_unroll = Some ("i", 8) } in
  match region_names Kernels.axpy cfg with
  | ("mvUnrolledCOMP", 8) :: _ -> ()
  | other -> Alcotest.failf "got %d regions" (List.length other)

let test_dot_matches_mm () =
  let cfg =
    { Pipeline.default with inner_unroll = Some ("i", 4);
      expand_reduction = Some 4 }
  in
  let names = region_names Kernels.dot cfg in
  (match names with
  | ("mmUnrolledCOMP", 4) :: _ -> ()
  | _ -> Alcotest.fail "dot main loop should match mmUnrolledCOMP");
  (* the final res_out[0] += res is an mmSTORE *)
  Alcotest.(check bool) "final mmSTORE" true
    (List.mem ("mmSTORE", 1) names)

let test_tagged_reproduces_code () =
  (* converting to the tagged kernel and stripping tags must preserve
     semantics (region_stmts are exactly the matched statements) *)
  let cfg = { Pipeline.default with jam = [ ("j", 2); ("i", 4) ] } in
  let k' = optimize Kernels.gemm cfg in
  let tagged = M.to_tagged_kernel (M.identify k') in
  let fill seed n =
    let state = ref seed in
    Array.init n (fun _ ->
        state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
        float_of_int (!state mod 100) /. 10.)
  in
  let mc = 8 and kc = 6 and n = 4 and ldc = 8 in
  let run k =
    let pa = fill 1 (mc * kc) and pb = fill 2 (kc * n) in
    let c = fill 3 (ldc * n) in
    let _ =
      Augem.Ir.Eval.run k
        Augem.Ir.Eval.
          [ Aint mc; Aint kc; Aint n; Aint ldc; Abuf pa; Abuf pb; Abuf c ]
    in
    c
  in
  Alcotest.(check bool) "tagged == plain" true
    (Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-12) (run k') (run tagged))

let test_no_match_without_scalar_replacement () =
  (* without three-address lowering nothing matches *)
  let cfg =
    { Pipeline.default with jam = [ ("j", 2); ("i", 2) ]; scalar_replace = false }
  in
  let ak = M.identify (optimize Kernels.gemm cfg) in
  Alcotest.(check int) "no regions" 0 (List.length (M.regions ak))

let test_live_temporaries_block_matching () =
  (* a region whose temporary is used afterwards must not match *)
  let open Ast in
  let body =
    [
      Decl (Double, "t0", None);
      Decl (Double, "t1", None);
      Decl (Double, "t2", None);
      Decl (Double, "r", Some (Double_lit 0.));
      Decl (Double, "keep", None);
      Assign (Lvar "t0", Index ("A", Int_lit 0));
      Assign (Lvar "t1", Index ("B", Int_lit 0));
      Assign (Lvar "t2", Binop (Mul, Var "t0", Var "t1"));
      Assign (Lvar "r", Binop (Add, Var "r", Var "t2"));
      (* t2 used again: the mmCOMP above must be rejected *)
      Assign (Lvar "keep", Var "t2");
      Assign (Lindex ("C", Int_lit 0), Var "keep");
      Assign (Lindex ("C", Int_lit 1), Var "r");
    ]
  in
  let k =
    {
      k_name = "t";
      k_params =
        [
          { p_name = "A"; p_type = Ptr Double };
          { p_name = "B"; p_type = Ptr Double };
          { p_name = "C"; p_type = Ptr Double };
        ];
      k_body = body;
    }
  in
  let ak = M.identify k in
  Alcotest.(check int) "no regions (live temp)" 0 (List.length (M.regions ak))

let test_store_group_split_by_pointer () =
  let cfg = { Pipeline.default with jam = [ ("j", 2); ("i", 2) ] } in
  let ak = M.identify (optimize Kernels.gemm cfg) in
  let stores =
    List.filter_map
      (function T.Mm_unrolled_store l -> Some l | _ -> None)
      (M.regions ak)
  in
  (* the two stores in the main loop touch different C pointers *)
  match stores with
  | g1 :: g2 :: _ ->
      let c1 = (List.hd g1).T.ms_c and c2 = (List.hd g2).T.ms_c in
      Alcotest.(check bool) "distinct C streams" true (c1 <> c2)
  | _ -> Alcotest.fail "expected two store groups"

let test_region_params () =
  let cfg = { Pipeline.default with jam = [ ("j", 2); ("i", 2) ] } in
  let ak = M.identify (optimize Kernels.gemm cfg) in
  match M.regions ak with
  | T.Mm_unrolled_comp group :: _ ->
      Alcotest.(check int) "n = 4" 4 (List.length group);
      let first = List.hd group in
      Alcotest.(check bool) "A stream shared" true
        (List.for_all (fun m -> m.T.mc_a = first.T.mc_a) group)
  | _ -> Alcotest.fail "expected comp region first"

let suite =
  [
    Alcotest.test_case "gemm 2x2 matches Figure 14" `Quick
      test_gemm_2x2_matches_figure14;
    Alcotest.test_case "gemm 4x8 groups" `Quick test_gemm_4x8;
    Alcotest.test_case "gemv matches mvUnrolledCOMP" `Quick
      test_gemv_matches_mv;
    Alcotest.test_case "axpy matches mvUnrolledCOMP" `Quick
      test_axpy_matches_mv;
    Alcotest.test_case "dot matches mmUnrolledCOMP + mmSTORE" `Quick
      test_dot_matches_mm;
    Alcotest.test_case "tagged kernel reproduces code" `Quick
      test_tagged_reproduces_code;
    Alcotest.test_case "no match without scalar replacement" `Quick
      test_no_match_without_scalar_replacement;
    Alcotest.test_case "live temporaries block matching" `Quick
      test_live_temporaries_block_matching;
    Alcotest.test_case "store groups split by pointer" `Quick
      test_store_group_split_by_pointer;
    Alcotest.test_case "region structure" `Quick test_region_params;
  ]
