(* Code generation: end-to-end verification of generated assembly
   against the reference BLAS across kernels, architectures, vector
   strategies and tuning configurations — including the scheduler, the
   SSE-only mode, FMA4, and the Shuf method on the packed GEMM. *)

module A = Augem
module Ast = A.Ir.Ast
module Kernels = A.Ir.Kernels
module Pipeline = A.Transform.Pipeline
module Arch = A.Machine.Arch
module Insn = A.Machine.Insn
module Emit = A.Codegen.Emit
module Reg = A.Machine.Reg
module Regfile = A.Codegen.Regfile
module Gpralloc = A.Codegen.Gpralloc

let archs = [ Arch.sandy_bridge; Arch.piledriver ]

let sse_arch =
  { Arch.sandy_bridge with Arch.name = "sse-test"; simd = Arch.SSE;
    fma = Arch.No_fma; vec_bits = 128; native_fp_bits = 128 }

let fma4_arch = { Arch.piledriver with Arch.name = "pd-fma4"; fma = Arch.FMA4 }

let check_kernel ?(schedule = true) ~arch ~config name kernel =
  let g = A.generate ~arch ~config kernel in
  let prog =
    if schedule then g.A.g_program
    else
      (* regenerate unscheduled *)
      Emit.generate ~arch (Pipeline.apply (Kernels.kernel_of_name kernel) config)
  in
  let o = A.Harness.verify kernel prog in
  if not o.A.Harness.ok then
    Alcotest.failf "%s on %s: %s" name arch.Arch.name o.A.Harness.detail

let gemm_cfg j i = { Pipeline.default with jam = [ ("j", j); ("i", i) ] }

let vec_cfg v u ~expand =
  {
    Pipeline.default with
    inner_unroll = Some (v, u);
    expand_reduction = (if expand then Some u else None);
  }

(* --- grid of configurations ----------------------------------------------- *)

let test_gemm_grid () =
  List.iter
    (fun arch ->
      List.iter
        (fun (j, i) ->
          match check_kernel ~arch ~config:(gemm_cfg j i)
                  (Printf.sprintf "gemm %dx%d" j i) Kernels.Gemm
          with
          | () -> ()
          | exception Regfile.Out_of_registers _ -> () (* legal discard *))
        [ (1, 1); (1, 4); (2, 2); (2, 4); (2, 8); (4, 4); (4, 8); (2, 12);
          (6, 8); (2, 16); (3, 4); (1, 12) ])
    archs

let test_gemm_unscheduled () =
  List.iter
    (fun arch ->
      check_kernel ~schedule:false ~arch ~config:(gemm_cfg 2 8)
        "gemm unscheduled" Kernels.Gemm)
    archs

let test_gemv_grid () =
  List.iter
    (fun arch ->
      List.iter
        (fun u ->
          check_kernel ~arch ~config:(vec_cfg "j" u ~expand:false)
            (Printf.sprintf "gemv u=%d" u) Kernels.Gemv)
        [ 1; 2; 4; 8; 16 ])
    archs

let test_axpy_grid () =
  List.iter
    (fun arch ->
      List.iter
        (fun u ->
          check_kernel ~arch ~config:(vec_cfg "i" u ~expand:false)
            (Printf.sprintf "axpy u=%d" u) Kernels.Axpy)
        [ 1; 2; 3; 4; 8; 16 ])
    archs

let test_dot_grid () =
  List.iter
    (fun arch ->
      List.iter
        (fun (u, e) ->
          let config =
            { Pipeline.default with inner_unroll = Some ("i", u);
              expand_reduction = e }
          in
          check_kernel ~arch ~config
            (Printf.sprintf "dot u=%d" u) Kernels.Dot)
        [ (1, None); (4, Some 4); (8, Some 8); (8, Some 4); (16, Some 8) ])
    archs

(* --- special modes --------------------------------------------------------- *)

let test_sse_only () =
  List.iter
    (fun (name, kernel, config) ->
      check_kernel ~arch:sse_arch ~config name kernel)
    [
      ("sse gemm", Kernels.Gemm, gemm_cfg 2 4);
      ("sse gemv", Kernels.Gemv, vec_cfg "j" 4 ~expand:false);
      ("sse axpy", Kernels.Axpy, vec_cfg "i" 8 ~expand:false);
      ("sse dot", Kernels.Dot, vec_cfg "i" 8 ~expand:true);
    ]

let test_fma4 () =
  List.iter
    (fun (name, kernel, config) ->
      check_kernel ~arch:fma4_arch ~config name kernel)
    [
      ("fma4 gemm", Kernels.Gemm, gemm_cfg 2 8);
      ("fma4 axpy", Kernels.Axpy, vec_cfg "i" 8 ~expand:false);
    ];
  (* FMA4 kernels contain vfmaddpd *)
  let g = A.generate ~arch:fma4_arch ~config:(gemm_cfg 2 8) Kernels.Gemm in
  let has_fma4 =
    List.exists
      (function Insn.Vfma4 _ -> true | _ -> false)
      g.A.g_program.Insn.prog_insns
  in
  Alcotest.(check bool) "uses FMA4" true has_fma4

let test_shuf_method () =
  (* the Shuf vectorization on the interleaved-B GEMM, W128 *)
  List.iter
    (fun arch ->
      let config = gemm_cfg 2 2 in
      let opts =
        { Emit.prefer = A.Codegen.Plan.Prefer_shuf;
          max_width = Some Insn.W128 }
      in
      let optimized = Pipeline.apply Kernels.gemm_packed config in
      let prog = Emit.generate ~arch ~opts optimized in
      let prog = A.Codegen.Schedule.run arch prog in
      (* shuffles must actually appear *)
      let has_shuf =
        List.exists
          (function Insn.Vshuf _ -> true | _ -> false)
          prog.Insn.prog_insns
      in
      Alcotest.(check bool) "contains shufpd" true has_shuf;
      let o = A.Harness.verify_gemm ~packed:true prog in
      if not o.A.Harness.ok then
        Alcotest.failf "shuf gemm on %s: %s" arch.Arch.name o.A.Harness.detail;
      (* non-divisible shapes too *)
      let o2 =
        A.Harness.verify_gemm ~packed:true
          ~shape:{ A.Harness.sh_m = 7; sh_n = 5; sh_k = 6; sh_ld_slack = 1 }
          prog
      in
      if not o2.A.Harness.ok then
        Alcotest.failf "shuf gemm remainder on %s: %s" arch.Arch.name
          o2.A.Harness.detail)
    archs

let test_vdup_vs_shuf_same_result () =
  let arch = Arch.sandy_bridge in
  let optimized = Pipeline.apply Kernels.gemm_packed (gemm_cfg 2 2) in
  let run opts =
    let prog = Emit.generate ~arch ~opts optimized in
    let mc = 6 and kc = 5 and n = 4 and ldc = 6 in
    let pa = Array.init (mc * kc) (fun i -> float_of_int (i mod 7) -. 3.) in
    let pb = Array.init (kc * n) (fun i -> float_of_int (i mod 5) -. 2.) in
    let c = Array.make (ldc * n) 1.0 in
    let _ =
      A.Sim.Exec_sim.call prog
        A.Sim.Exec_sim.
          [ Aint mc; Aint kc; Aint n; Aint ldc; Abuf pa; Abuf pb; Abuf c ]
    in
    c
  in
  let c1 = run { Emit.prefer = A.Codegen.Plan.Prefer_auto; max_width = None } in
  let c2 =
    run { Emit.prefer = A.Codegen.Plan.Prefer_shuf; max_width = Some Insn.W128 }
  in
  Alcotest.(check bool) "vdup == shuf results" true
    (Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-9) c1 c2)

(* --- scheduler equivalence -------------------------------------------------- *)

let test_scheduler_preserves_semantics () =
  List.iter
    (fun arch ->
      List.iter
        (fun (kernel, config) ->
          let optimized =
            Pipeline.apply (Kernels.kernel_of_name kernel) config
          in
          let prog = Emit.generate ~arch optimized in
          let scheduled = A.Codegen.Schedule.run arch prog in
          let o1 = A.Harness.verify kernel prog in
          let o2 = A.Harness.verify kernel scheduled in
          if not (o1.A.Harness.ok && o2.A.Harness.ok) then
            Alcotest.failf "scheduling broke %s on %s"
              (Kernels.name_to_string kernel)
              arch.Arch.name)
        [
          (Kernels.Gemm, gemm_cfg 2 8);
          (Kernels.Gemv, vec_cfg "j" 8 ~expand:false);
          (Kernels.Dot, vec_cfg "i" 8 ~expand:true);
        ])
    archs

(* --- structural checks -------------------------------------------------------- *)

let test_prologue_epilogue () =
  let g = A.generate ~arch:Arch.sandy_bridge ~config:(gemm_cfg 2 4) Kernels.Gemm in
  let insns = g.A.g_program.Insn.prog_insns in
  (match insns with
  | Insn.Push Reg.Rbp :: Insn.Movrr (Reg.Rbp, Reg.Rsp) :: _ -> ()
  | _ -> Alcotest.fail "missing frame setup");
  (match List.rev insns with
  | Insn.Ret :: Insn.Pop Reg.Rbp :: Insn.Movrr (Reg.Rsp, Reg.Rbp) :: _ -> ()
  | _ -> Alcotest.fail "missing frame teardown")

let test_callee_saved_preserved () =
  (* execute and check rbx/r12-r15 restored *)
  let g = A.generate ~arch:Arch.sandy_bridge ~config:(gemm_cfg 2 8) Kernels.Gemm in
  let st = A.Sim.Exec_sim.create () in
  let sentinel = 0x1234_5678L in
  List.iter (fun r -> A.Sim.Exec_sim.set_gpr st r sentinel)
    [ A.Machine.Reg.Rbx; A.Machine.Reg.R12; A.Machine.Reg.R13;
      A.Machine.Reg.R14; A.Machine.Reg.R15 ];
  (* minimal arguments so the kernel runs zero-trip loops *)
  A.Sim.Exec_sim.set_gpr st A.Machine.Reg.Rdi 0L;
  A.Sim.Exec_sim.set_gpr st A.Machine.Reg.Rsi 0L;
  A.Sim.Exec_sim.set_gpr st A.Machine.Reg.Rdx 0L;
  A.Sim.Exec_sim.set_gpr st A.Machine.Reg.Rcx 0L;
  let _ = A.Sim.Exec_sim.run st g.A.g_program in
  List.iter
    (fun r ->
      Alcotest.(check int64)
        (A.Machine.Reg.gpr_name r ^ " preserved")
        sentinel
        (A.Sim.Exec_sim.get_gpr st r))
    [ A.Machine.Reg.Rbx; A.Machine.Reg.R12; A.Machine.Reg.R13;
      A.Machine.Reg.R14; A.Machine.Reg.R15 ]

let test_fma_only_on_fma_machines () =
  let has_fma prog =
    List.exists
      (function
        | Insn.Vop { op = Insn.Fma231; _ } | Insn.Vfma4 _ -> true
        | _ -> false)
      prog.Insn.prog_insns
  in
  let snb = A.generate ~arch:Arch.sandy_bridge ~config:(gemm_cfg 2 8) Kernels.Gemm in
  let pd = A.generate ~arch:Arch.piledriver ~config:(gemm_cfg 2 8) Kernels.Gemm in
  Alcotest.(check bool) "no FMA on Sandy Bridge" false (has_fma snb.A.g_program);
  Alcotest.(check bool) "FMA on Piledriver" true (has_fma pd.A.g_program)

let test_vector_width_per_arch () =
  let widest prog =
    List.fold_left
      (fun acc i ->
        match i with
        | Insn.Vload { w; _ } | Insn.Vop { w; _ } ->
            max acc (Insn.width_bits w)
        | _ -> acc)
      0 prog.Insn.prog_insns
  in
  let snb = A.generate ~arch:Arch.sandy_bridge ~config:(gemm_cfg 2 8) Kernels.Gemm in
  let sse =
    Emit.generate ~arch:sse_arch (Pipeline.apply Kernels.gemm (gemm_cfg 2 4))
  in
  Alcotest.(check int) "snb uses 256-bit" 256 (widest snb.A.g_program);
  Alcotest.(check int) "sse capped at 128-bit" 128 (widest sse)

(* --- register allocators ------------------------------------------------------ *)

let test_regfile_queues () =
  let rf = Regfile.create ~nregs:16 ~array_classes:[ "A"; "B"; "C" ] in
  let ra = Regfile.alloc_temp rf ~cls:"A" in
  let rb = Regfile.alloc_temp rf ~cls:"B" in
  let rc = Regfile.alloc_temp rf ~cls:"C" in
  (* per-array queues are disjoint: R/m = 4 registers apart *)
  Alcotest.(check bool) "distinct queues" true
    (ra <> rb && rb <> rc && ra <> rc);
  Alcotest.(check bool) "A queue first" true (ra < rb && rb < rc)

let test_regfile_release () =
  let rf = Regfile.create ~nregs:16 ~array_classes:[ "A" ] in
  let r = Regfile.alloc_lanes rf ~cls:"A" ~vars:[ "x"; "y" ] in
  Alcotest.(check bool) "x bound" true
    (Regfile.residence rf "x" = Some (Regfile.Lane (r, 0)));
  (* y still live: nothing released *)
  Regfile.release_dead rf ~live:(fun v -> v = "y");
  Alcotest.(check bool) "still bound while y lives" true
    (Regfile.residence rf "y" <> None);
  Regfile.release_dead rf ~live:(fun _ -> false);
  Alcotest.(check bool) "released" true (Regfile.residence rf "x" = None);
  Alcotest.(check int) "all free again" 16 (Regfile.free_count rf)

let test_regfile_exhaustion () =
  let rf = Regfile.create ~nregs:4 ~array_classes:[ "A" ] in
  let _ = Regfile.alloc_temp rf ~cls:"A" in
  let _ = Regfile.alloc_temp rf ~cls:"A" in
  let _ = Regfile.alloc_temp rf ~cls:"A" in
  let _ = Regfile.alloc_temp rf ~cls:"A" in
  match Regfile.alloc_temp rf ~cls:"A" with
  | exception Regfile.Out_of_registers _ -> ()
  | _ -> Alcotest.fail "expected exhaustion"

let test_gpralloc_spill_reload () =
  (* allocate more variables than registers; values must survive
     eviction and reload.  The output buffer pointer is registered as a
     pinned variable so the allocator keeps it live. *)
  let out = ref [] in
  let g = Gpralloc.create ~emit:(fun i -> out := i :: !out) in
  Gpralloc.bind_incoming g ~var:"buf" ~reg:Reg.Rdi;
  Gpralloc.pin g "buf";
  let nvars = 20 in
  for v = 0 to nvars - 1 do
    let r = Gpralloc.def g (Printf.sprintf "v%d" v) in
    out := Insn.Movri (r, 100 + v) :: !out
  done;
  (* read each back (reload code is emitted through [out], so the
     store is pushed immediately after its reload) *)
  for v = 0 to nvars - 1 do
    let r = Gpralloc.get g (Printf.sprintf "v%d" v) in
    let rb = Gpralloc.get g "buf" ~avoid:[ r ] in
    out := Insn.Storeq (Insn.mem ~disp:(8 * v) rb, r) :: !out
  done;
  let frame = (Gpralloc.frame_bytes g + 15) / 16 * 16 in
  let prog =
    Insn.
      {
        prog_name = "spill";
        prog_insns =
          [ Push Reg.Rbp; Movrr (Reg.Rbp, Reg.Rsp); Subri (Reg.Rsp, frame) ]
          @ List.rev !out
          @ [ Movrr (Reg.Rsp, Reg.Rbp); Pop Reg.Rbp; Ret ];
      }
  in
  let buf = Array.make nvars 0. in
  let _ = A.Sim.Exec_sim.call prog [ A.Sim.Exec_sim.Abuf buf ] in
  (* buf holds raw int64 bit patterns; read them back *)
  Array.iteri
    (fun v bits ->
      Alcotest.(check int)
        (Printf.sprintf "v%d survives spilling" v)
        (100 + v)
        (Int64.to_int (Int64.bits_of_float bits)))
    buf

let suite =
  [
    Alcotest.test_case "gemm configuration grid" `Slow test_gemm_grid;
    Alcotest.test_case "gemm unscheduled" `Quick test_gemm_unscheduled;
    Alcotest.test_case "gemv unroll grid" `Quick test_gemv_grid;
    Alcotest.test_case "axpy unroll grid" `Quick test_axpy_grid;
    Alcotest.test_case "dot unroll/expand grid" `Quick test_dot_grid;
    Alcotest.test_case "SSE-only generation" `Quick test_sse_only;
    Alcotest.test_case "FMA4 generation" `Quick test_fma4;
    Alcotest.test_case "Shuf method on packed GEMM" `Quick test_shuf_method;
    Alcotest.test_case "Vdup and Shuf agree" `Quick test_vdup_vs_shuf_same_result;
    Alcotest.test_case "scheduler preserves semantics" `Slow
      test_scheduler_preserves_semantics;
    Alcotest.test_case "prologue and epilogue" `Quick test_prologue_epilogue;
    Alcotest.test_case "callee-saved registers preserved" `Quick
      test_callee_saved_preserved;
    Alcotest.test_case "FMA selection per ISA" `Quick
      test_fma_only_on_fma_machines;
    Alcotest.test_case "vector width per architecture" `Quick
      test_vector_width_per_arch;
    Alcotest.test_case "regfile per-array queues" `Quick test_regfile_queues;
    Alcotest.test_case "regfile release on death" `Quick test_regfile_release;
    Alcotest.test_case "regfile exhaustion" `Quick test_regfile_exhaustion;
    Alcotest.test_case "gpralloc spill/reload" `Quick test_gpralloc_spill_reload;
  ]
