(* Report formatting: series tables, speedup summaries, bars. *)

module Report = Augem.Report

let series =
  [
    { Report.s_label = "AUGEM"; s_points = [ (1024, 100.); (2048, 110.) ] };
    { Report.s_label = "OTHER"; s_points = [ (1024, 80.); (2048, 90.) ] };
  ]

let test_means () =
  Alcotest.(check (float 1e-9)) "mean" 105.0
    (Report.series_mean (List.hd series));
  Alcotest.(check (float 1e-9)) "empty mean" 0.0 (Report.mean [])

let test_series_table () =
  let out = Fmt.str "%a" (fun fmt () ->
      Report.pp_series_table fmt ~title:"T" ~x_label:"n" series) () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true
        (let n = String.length needle in
         let rec go i =
           i + n <= String.length out
           && (String.sub out i n = needle || go (i + 1))
         in
         go 0))
    [ "== T =="; "AUGEM"; "OTHER"; "1024"; "110.0"; "80.0" ]

let test_speedups () =
  let out = Fmt.str "%a" (fun fmt () ->
      Report.pp_speedups fmt ~baseline:"AUGEM" series) () in
  (* 105 / 85 - 1 = +23.5% *)
  Alcotest.(check bool) "quotes +23.5%" true
    (let needle = "+23.5%" in
     let n = String.length needle in
     let rec go i =
       i + n <= String.length out && (String.sub out i n = needle || go (i + 1))
     in
     go 0)

let test_bars () =
  let out = Fmt.str "%a" (fun fmt () -> Report.pp_bars fmt series) () in
  let lines = String.split_on_char '\n' out |> List.filter (( <> ) "") in
  Alcotest.(check int) "one bar per series" 2 (List.length lines);
  (* the best series fills the full bar *)
  Alcotest.(check bool) "bars bounded" true
    (List.for_all (fun l -> String.length l < 120) lines)

let suite =
  [
    Alcotest.test_case "means" `Quick test_means;
    Alcotest.test_case "series table" `Quick test_series_table;
    Alcotest.test_case "speedup summary" `Quick test_speedups;
    Alcotest.test_case "bars" `Quick test_bars;
  ]
