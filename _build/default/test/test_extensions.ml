(* Extension templates beyond the paper's six (svSCAL / svCOPY) and the
   GER kernel: matching, vectorization, and end-to-end correctness. *)

module A = Augem
module Arch = A.Machine.Arch
module Insn = A.Machine.Insn
module Kernels = A.Ir.Kernels
module Pipeline = A.Transform.Pipeline
module T = A.Templates.Template
module M = A.Templates.Matcher

let archs = [ Arch.sandy_bridge; Arch.piledriver ]

let unroll8 =
  { Pipeline.default with Pipeline.inner_unroll = Some ("i", 8) }

let region_names k cfg =
  let ak = M.identify (Pipeline.apply (Kernels.kernel_of_name k) cfg) in
  List.map (fun r -> (T.region_name r, T.region_size r)) (M.regions ak)

let test_scal_matches () =
  match region_names Kernels.Scal unroll8 with
  | ("svUnrolledSCAL", 8) :: _ -> ()
  | other ->
      Alcotest.failf "unexpected: %s"
        (String.concat ";"
           (List.map (fun (n, s) -> Printf.sprintf "%s/%d" n s) other))

let test_copy_matches () =
  match region_names Kernels.Copy unroll8 with
  | ("svUnrolledCOPY", 8) :: _ -> ()
  | other -> Alcotest.failf "got %d regions" (List.length other)

let test_ger_matches_mv () =
  match region_names Kernels.Ger unroll8 with
  | ("mvUnrolledCOMP", 8) :: _ -> ()
  | _ -> Alcotest.fail "ger inner loop should match mvUnrolledCOMP"

let test_self_copy_not_matched () =
  (* X[i+1] = X[i] must NOT match svCOPY (loop-carried dependence) *)
  let src =
    "void shift(int n, double* X) { int i; for (i = 0; i < n; i += 1) { \
     X[i + 1] = X[i]; } }"
  in
  match A.Ir.Parser.parse_kernel_result src with
  | Error m -> Alcotest.fail m
  | Ok k ->
      let ak = M.identify (Pipeline.apply k unroll8) in
      let copies =
        List.filter
          (function T.Sv_unrolled_copy _ -> true | _ -> false)
          (M.regions ak)
      in
      Alcotest.(check int) "no svCOPY regions" 0 (List.length copies)

let test_self_scale_shift_correct () =
  (* the self-referential shift still compiles correctly (scalar path) *)
  let src =
    "void shift(int n, double* X) { int i; for (i = 0; i < n; i += 1) { \
     X[i + 1] = X[i]; } }"
  in
  let k =
    match A.Ir.Parser.parse_kernel_result src with
    | Ok k -> k
    | Error m -> Alcotest.fail m
  in
  List.iter
    (fun arch ->
      let optimized = Pipeline.apply k unroll8 in
      let prog = A.Codegen.Emit.generate ~arch optimized in
      let prog = A.Codegen.Schedule.run arch prog in
      let n = 13 in
      let x_ref = Array.init (n + 2) (fun i -> float_of_int i +. 0.5) in
      let x_sim = Array.copy x_ref in
      let _ = A.Ir.Eval.run k A.Ir.Eval.[ Aint n; Abuf x_ref ] in
      let _ = A.Sim.Exec_sim.call prog A.Sim.Exec_sim.[ Aint n; Abuf x_sim ] in
      Alcotest.(check bool)
        ("shift on " ^ arch.Arch.name)
        true
        (Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-12) x_ref x_sim))
    archs

let test_scal_copy_verify_grid () =
  List.iter
    (fun arch ->
      List.iter
        (fun u ->
          List.iter
            (fun kname ->
              let cfg =
                { Pipeline.default with Pipeline.inner_unroll = Some ("i", u) }
              in
              let g = A.generate ~arch ~config:cfg kname in
              let v = A.verify g in
              if not v.A.Harness.ok then
                Alcotest.failf "%s u=%d on %s: %s"
                  (Kernels.name_to_string kname)
                  u arch.Arch.name v.A.Harness.detail)
            Kernels.[ Scal; Copy; Ger ])
        [ 1; 2; 4; 8; 16 ])
    archs

let test_scal_vectorized () =
  let g = A.generate ~arch:Arch.sandy_bridge ~config:unroll8 Kernels.Scal in
  let has_packed_mul =
    List.exists
      (function
        | Insn.Vop { op = Insn.Fmul; w = Insn.W256; _ } -> true
        | _ -> false)
      g.A.g_program.Insn.prog_insns
  in
  Alcotest.(check bool) "uses vmulpd ymm" true has_packed_mul

let test_copy_vectorized () =
  let g = A.generate ~arch:Arch.sandy_bridge ~config:unroll8 Kernels.Copy in
  let wide_moves =
    List.filter
      (function
        | Insn.Vload { w = Insn.W256; _ } | Insn.Vstore { w = Insn.W256; _ } ->
            true
        | _ -> false)
      g.A.g_program.Insn.prog_insns
  in
  Alcotest.(check bool) "block moves" true (List.length wide_moves >= 4)

let test_tuned_extensions_verify () =
  List.iter
    (fun arch ->
      List.iter
        (fun kname ->
          let g = A.tuned ~arch kname in
          let v = A.verify g in
          Alcotest.(check bool)
            (Kernels.name_to_string kname ^ " on " ^ arch.Arch.name)
            true v.A.Harness.ok)
        Kernels.[ Scal; Copy; Ger ])
    archs

let suite =
  [
    Alcotest.test_case "dscal matches svUnrolledSCAL" `Quick test_scal_matches;
    Alcotest.test_case "dcopy matches svUnrolledCOPY" `Quick test_copy_matches;
    Alcotest.test_case "dger matches mvUnrolledCOMP" `Quick test_ger_matches_mv;
    Alcotest.test_case "self-copy not matched" `Quick test_self_copy_not_matched;
    Alcotest.test_case "self-copy compiles correctly" `Quick
      test_self_scale_shift_correct;
    Alcotest.test_case "scal/copy/ger unroll grid" `Slow
      test_scal_copy_verify_grid;
    Alcotest.test_case "dscal vectorizes" `Quick test_scal_vectorized;
    Alcotest.test_case "dcopy vectorizes" `Quick test_copy_vectorized;
    Alcotest.test_case "tuned extension kernels verify" `Slow
      test_tuned_extensions_verify;
  ]
