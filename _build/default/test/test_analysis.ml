(* Dataflow analyses: liveness (including the loop back-edge fixpoint)
   and the array inventory used for register-queue partitioning. *)

module Ast = Augem.Ir.Ast
module Liveness = Augem.Analysis.Liveness
module Arrays = Augem.Analysis.Arrays
module Kernels = Augem.Ir.Kernels
module SS = Set.Make (String)

let live_after stmts ~live_out =
  Liveness.annotate stmts ~live_out:(SS.of_list live_out)

let test_straightline () =
  let open Ast in
  let stmts =
    [
      Assign (Lvar "a", Double_lit 1.0);
      Assign (Lvar "b", Binop (Add, Var "a", Double_lit 2.0));
      Assign (Lvar "a", Binop (Mul, Var "b", Var "b"));
    ]
  in
  match live_after stmts ~live_out:[ "a" ] with
  | [ (_, l1); (_, l2); (_, l3) ] ->
      Alcotest.(check bool) "a live after stmt1" true (SS.mem "a" l1);
      Alcotest.(check bool) "b live after stmt2" true (SS.mem "b" l2);
      Alcotest.(check bool) "b dead after stmt3" false (SS.mem "b" l3);
      Alcotest.(check bool) "a live at exit" true (SS.mem "a" l3)
  | _ -> Alcotest.fail "arity"

let test_kill_before_use () =
  let open Ast in
  let stmts =
    [ Assign (Lvar "x", Double_lit 0.0); Assign (Lvar "y", Var "x") ]
  in
  match live_after stmts ~live_out:[] with
  | [ (_, l1); (_, l2) ] ->
      Alcotest.(check bool) "x live between" true (SS.mem "x" l1);
      Alcotest.(check bool) "nothing at exit" true (SS.is_empty l2)
  | _ -> Alcotest.fail "arity"

let test_loop_fixpoint () =
  (* a variable read in a loop body is live across the back edge even
     after the statement that re-assigns it later in the body *)
  let open Ast in
  let loop =
    For
      ( { loop_var = "i"; loop_init = Int_lit 0; loop_cmp = Lt;
          loop_bound = Var "n"; loop_step = Int_lit 1 },
        [
          Assign (Lvar "acc", Binop (Add, Var "acc", Var "x"));
          Assign (Lvar "x", Binop (Mul, Var "x", Double_lit 0.5));
        ] )
  in
  let live_in = Liveness.live_stmt loop ~live_out:SS.empty in
  Alcotest.(check bool) "acc live into loop" true (SS.mem "acc" live_in);
  Alcotest.(check bool) "x live into loop" true (SS.mem "x" live_in);
  Alcotest.(check bool) "n live into loop" true (SS.mem "n" live_in);
  Alcotest.(check bool) "loop var not live before init" false
    (SS.mem "i" live_in)

let test_store_keeps_array_live () =
  let open Ast in
  let s = Assign (Lindex ("C", Var "i"), Var "v") in
  let live = Liveness.live_stmt s ~live_out:SS.empty in
  List.iter
    (fun v -> Alcotest.(check bool) (v ^ " live") true (SS.mem v live))
    [ "C"; "i"; "v" ]

let test_defs_block () =
  let open Ast in
  let stmts =
    [
      Decl (Double, "t", None);
      Assign (Lvar "t", Double_lit 1.0);
      For
        ( { loop_var = "i"; loop_init = Int_lit 0; loop_cmp = Lt;
            loop_bound = Int_lit 4; loop_step = Int_lit 1 },
          [ Assign (Lvar "s", Var "t") ] );
    ]
  in
  let defs = Liveness.defs_block stmts in
  Alcotest.(check (list string)) "defs" [ "i"; "s"; "t" ] (SS.elements defs)

let test_base_array_of () =
  List.iter
    (fun (derived, base) ->
      Alcotest.(check string) derived base (Arrays.base_array_of derived))
    [
      ("ptr_A0", "A"); ("ptr_C12", "C"); ("A", "A"); ("ptr_B", "B");
      ("X", "X"); ("res_out", "res_out");
    ]

let test_pointer_inventory () =
  let k = Augem.Transform.Strength_reduction.run Kernels.gemm in
  let bases = Arrays.base_arrays k in
  Alcotest.(check (list string)) "base arrays" [ "A"; "B"; "C" ] bases

let test_accesses () =
  let accs = Arrays.accesses_of_kernel Kernels.axpy in
  let stores = List.filter (fun a -> a.Arrays.acc_is_store) accs in
  Alcotest.(check int) "one store stream" 1 (List.length stores);
  Alcotest.(check string) "store to Y" "Y" (List.hd stores).Arrays.acc_array

let suite =
  [
    Alcotest.test_case "straight-line liveness" `Quick test_straightline;
    Alcotest.test_case "kill before use" `Quick test_kill_before_use;
    Alcotest.test_case "loop back-edge fixpoint" `Quick test_loop_fixpoint;
    Alcotest.test_case "stores keep operands live" `Quick
      test_store_keeps_array_live;
    Alcotest.test_case "defs of a block" `Quick test_defs_block;
    Alcotest.test_case "base array naming" `Quick test_base_array_of;
    Alcotest.test_case "array inventory after SR" `Quick test_pointer_inventory;
    Alcotest.test_case "access collection" `Quick test_accesses;
  ]
