(* Full-stack integration: a complete DGEMM where the Goto-blocked
   driver (packing, cache blocking) from the BLAS substrate calls the
   AUGEM-generated assembly micro-kernel, executed instruction by
   instruction on the functional simulator.  The result is compared
   against the naive triple loop.

   This is exactly how the paper's generated GEMM kernel is deployed
   inside OpenBLAS: the framework generates the Mc x Kc x N inner
   kernel, the library supplies the blocking and packing around it.

     dune exec examples/blocked_gemm.exe *)

module A = Augem
module Arch = A.Machine.Arch
module Exec = A.Sim.Exec_sim
module Mat = A.Blas.Matrix
module L3 = A.Blas.Level3

let () =
  let arch = Arch.sandy_bridge in
  let g = A.tuned ~arch A.Ir.Kernels.Gemm in
  Fmt.pr "micro-kernel: tuned %s on %s@."
    (A.Transform.Pipeline.config_to_string g.A.g_config)
    arch.Arch.name;

  (* micro-kernel callback backed by the simulated generated assembly *)
  let sim_calls = ref 0 in
  let sim_insns = ref 0 in
  let kernel ~mc ~kc ~nc ~pa ~pb ~c_data ~c_off ~ldc =
    incr sim_calls;
    (* expose the C tile as a buffer the simulator can mutate *)
    let len = min (ldc * nc) (Array.length c_data - c_off) in
    let view = Array.sub c_data c_off len in
    let r =
      Exec.call g.A.g_program
        Exec.[ Aint mc; Aint kc; Aint nc; Aint ldc; Abuf pa; Abuf pb;
               Abuf view ]
    in
    sim_insns := !sim_insns + r.Exec.r_executed;
    Array.blit view 0 c_data c_off len
  in

  (* a deliberately awkward problem size: exercises every remainder *)
  let m = 37 and k = 29 and n = 23 in
  let a = Mat.random ~seed:5 m k in
  let b = Mat.random ~seed:6 k n in
  let c0 = Mat.random ~seed:7 m n in
  let c_naive = Mat.copy c0 in
  let c_sim = Mat.copy c0 in
  L3.dgemm_naive ~alpha:1.0 ~beta:1.0 a b c_naive;
  L3.dgemm_blocked
    ~blocking:{ L3.bk_mc = 16; bk_kc = 12; bk_nc = 8 }
    ~kernel ~alpha:1.0 ~beta:1.0 a b c_sim;
  Fmt.pr "C = A(%dx%d) * B(%dx%d) + C@." m k k n;
  Fmt.pr "micro-kernel invocations (simulated assembly): %d@." !sim_calls;
  Fmt.pr "instructions interpreted: %d@." !sim_insns;
  Fmt.pr "max |naive - blocked/simulated| = %.3g@."
    (Mat.max_abs_diff c_naive c_sim);
  Fmt.pr "match: %b@." (Mat.approx_equal ~tol:1e-12 c_naive c_sim)
