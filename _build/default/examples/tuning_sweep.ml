(* The empirical-tuning landscape the Optimized C Kernel Generator
   searches (paper section 2.1): every unroll&jam configuration of the
   GEMM kernel is generated, and its steady-state cycles/iteration and
   predicted MFLOPS are shown.  Configurations that exceed the SIMD
   register file fail to generate, exactly like a real tuning run
   discards build failures.

     dune exec examples/tuning_sweep.exe *)

module A = Augem
module Arch = A.Machine.Arch

let () =
  List.iter
    (fun arch ->
      Fmt.pr "=== %s ===@." arch.Arch.name;
      Fmt.pr "%8s %8s %12s %12s %10s@." "jam j" "jam i" "cycles/iter"
        "flops/iter" "MFLOPS";
      List.iter
        (fun j ->
          List.iter
            (fun i ->
              let config =
                { A.Transform.Pipeline.default with
                  jam = [ ("j", j); ("i", i) ] }
              in
              match A.generate ~arch ~config A.Ir.Kernels.Gemm with
              | g -> (
                  match
                    A.predict g
                      (A.Sim.Perf.W_gemm { m = 4096; n = 4096; k = 256 })
                  with
                  | est ->
                      Fmt.pr "%8d %8d %12.2f %12d %10.0f@." j i
                        est.A.Sim.Perf.e_cycles_per_iter
                        est.A.Sim.Perf.e_flops_per_iter
                        est.A.Sim.Perf.e_mflops
                  | exception A.Sim.Perf.No_hot_loop _ ->
                      Fmt.pr "%8d %8d %12s@." j i "-")
              | exception A.Codegen.Regfile.Out_of_registers _ ->
                  Fmt.pr "%8d %8d %12s@." j i "out of registers")
            [ 2; 4; 8; 12; 16 ])
        [ 1; 2; 4; 6 ];
      let r = A.Tuner.tuned arch A.Ir.Kernels.Gemm in
      Fmt.pr "tuner pick: %s -> %.0f MFLOPS@.@."
        (A.Transform.Pipeline.config_to_string r.A.Tuner.best.A.Tuner.cand_config)
        r.A.Tuner.best_score)
    [ Arch.sandy_bridge; Arch.piledriver ]
