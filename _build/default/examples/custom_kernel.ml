(* Feeding AUGEM a kernel written as C text: the framework's front end
   accepts the same "simple C implementation" subset shown in the
   paper's figures.  Here we compile a DSCAL-like kernel (y[i] = y[i] *
   alpha, expressed through the mvCOMP-compatible form y[i] += x[i] *
   alpha with x = y pre-scaled) and a user-written triad kernel, then
   execute the generated assembly on the simulator.

     dune exec examples/custom_kernel.exe *)

module A = Augem
module Arch = A.Machine.Arch
module Exec = A.Sim.Exec_sim

let triad_source =
  {|
void triad(int N, double alpha, double* X, double* Y)
{
  int i;
  for (i = 0; i < N; i += 1) {
    Y[i] = Y[i] + X[i] * alpha;   // STREAM triad step
  }
}
|}

let () =
  let arch = Arch.piledriver in
  match A.Ir.Parser.parse_kernel_result triad_source with
  | Error msg -> Fmt.epr "parse error: %s@." msg
  | Ok kernel ->
      Fmt.pr "--- parsed kernel ---@.%a@.@." A.Ir.Pp.pp_kernel kernel;

      (* unroll by 8 and prefetch 8 iterations ahead *)
      let config =
        {
          A.Transform.Pipeline.default with
          inner_unroll = Some ("i", 8);
        }
      in
      let optimized = A.Transform.Pipeline.apply kernel config in
      let prog = A.Codegen.Emit.generate ~arch optimized in
      let prog = A.Codegen.Schedule.run arch prog in
      Fmt.pr "--- generated assembly (Piledriver: FMA3) ---@.%s@."
        (A.Machine.Att.program_to_string prog);

      (* run it: Y += alpha * X on a 23-element vector (with remainder) *)
      let n = 23 in
      let alpha = 2.5 in
      let x = Array.init n (fun i -> float_of_int i) in
      let y = Array.init n (fun i -> float_of_int (100 + i)) in
      let expected = Array.mapi (fun i yi -> yi +. (alpha *. x.(i))) y in
      let _ = Exec.call prog Exec.[ Aint n; Adouble alpha; Abuf x; Abuf y ] in
      let ok = Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-12) expected y in
      Fmt.pr "simulated execution correct: %b@." ok;
      Fmt.pr "y[0..5] = %a@."
        Fmt.(list ~sep:(any ", ") (fmt "%.1f"))
        (Array.to_list (Array.sub y 0 6))
