(* Quickstart: generate a tuned DGEMM micro-kernel for Sandy Bridge,
   verify it against the reference BLAS on the functional simulator,
   and estimate its performance with the cycle model.

     dune exec examples/quickstart.exe *)

module A = Augem
module Arch = A.Machine.Arch

let () =
  let arch = Arch.sandy_bridge in

  (* 1. let the auto-tuner pick unroll&jam factors and prefetching *)
  let g = A.tuned ~arch A.Ir.Kernels.Gemm in
  Fmt.pr "tuned configuration: %s@.@."
    (A.Transform.Pipeline.config_to_string g.A.g_config);

  (* 2. the input is the paper's Figure 12 "simple C implementation" *)
  Fmt.pr "--- simple C input ---@.%a@.@." A.Ir.Pp.pp_kernel g.A.g_source;

  (* 3. the generated assembly (hot loop shown) *)
  let asm = A.assembly g in
  let lines = String.split_on_char '\n' asm in
  (* the hot loop: the span from the last label that precedes a vmulpd
     up to its backward branch *)
  let contains sub l =
    let n = String.length sub in
    let rec go i = i + n <= String.length l && (String.sub l i n = sub || go (i + 1)) in
    go 0
  in
  let hot =
    let rec find acc current started = function
      | [] -> List.rev acc
      | l :: rest ->
          if contains ".Lbody" l && contains ":" l then
            find acc [ l ] false rest
          else
            let current = l :: current in
            let started = started || contains "vmul" l || contains "fmadd" l in
            if contains "\tjl " l && started then List.rev current
            else if contains "\tjl " l then find acc [] false rest
            else find acc current started rest
    in
    find [] [] false lines
  in
  Fmt.pr "--- generated hot loop (%d lines of assembly total) ---@."
    (List.length lines);
  List.iter print_endline hot;
  Fmt.pr "@.";

  (* 4. execute the assembly on the functional simulator and compare
        with the reference BLAS *)
  let v = A.verify g in
  Fmt.pr "verification against reference BLAS: %s@." v.A.Harness.detail;

  (* 5. estimate performance at a paper-sized problem *)
  let est = A.predict g (A.Sim.Perf.W_gemm { m = 4096; n = 4096; k = 256 }) in
  Fmt.pr "predicted DGEMM (m=n=4096, k=256): %.0f MFLOPS (peak %.0f)@."
    est.A.Sim.Perf.e_mflops (Arch.peak_mflops arch)
