(* The extension surface beyond the paper: the GER / DSCAL / DCOPY
   kernels (the latter two matched by the new svSCAL / svCOPY
   templates), driven by a transformation script — the mini-POET layer.

     dune exec examples/extension_kernels.exe *)

module A = Augem
module Arch = A.Machine.Arch
module Kernels = A.Ir.Kernels
module T = A.Templates.Template
module M = A.Templates.Matcher

let script_text = "unroll i 8\nprefetch 8\n"

let () =
  let script =
    match A.Transform.Script.parse script_text with
    | Ok s -> s
    | Error m -> failwith m
  in
  Fmt.pr "transformation script:@.%s@." script_text;
  List.iter
    (fun (arch : Arch.t) ->
      Fmt.pr "=== %s ===@." arch.Arch.model;
      List.iter
        (fun kname ->
          let g = A.generate_scripted ~arch ~script kname in
          let v = A.verify g in
          (* which templates did the identifier find? *)
          let regions =
            M.regions (M.identify g.A.g_optimized)
            |> List.map (fun r ->
                   Printf.sprintf "%s(%d)" (T.region_name r) (T.region_size r))
            |> fun l ->
            (match l with x :: _ -> x | [] -> "-")
          in
          let w = A.Tuner.reference_workload kname in
          let est = A.predict g w in
          Fmt.pr "  %-6s matched %-20s verified=%-5b %8.0f M%s/s@."
            (Kernels.name_to_string kname)
            regions v.A.Harness.ok est.A.Sim.Perf.e_mflops
            (match kname with Kernels.Copy -> "elems" | _ -> "flops"))
        Kernels.[ Ger; Scal; Copy ];
      Fmt.pr "@.")
    Arch.extended;
  (* show the generated DSCAL inner loop on Haswell *)
  let g = A.generate_scripted ~arch:Arch.haswell ~script Kernels.Scal in
  let asm = A.assembly g in
  Fmt.pr "--- DSCAL hot loop on %s ---@." Arch.haswell.Arch.model;
  let lines = String.split_on_char '\n' asm in
  let from_body =
    let rec go = function
      | [] -> []
      | l :: rest ->
          if String.length l > 6 && String.sub l 0 6 = ".Lbody" then l :: rest
          else go rest
    in
    go lines
  in
  let rec upto_jl = function
    | [] -> []
    | l :: rest ->
        if String.length l > 3 && String.sub l 1 2 = "jl" then [ l ]
        else l :: upto_jl rest
  in
  List.iter print_endline (upto_jl from_body)
