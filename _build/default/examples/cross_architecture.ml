(* Performance portability: the same simple C GEMM is compiled for
   three machine models — Sandy Bridge (AVX, no FMA), Piledriver
   (FMA3), and an SSE2-only machine (GotoBLAS2's view of the world) —
   and the instruction selection adapts per the paper's Tables 1-4:
   Mul+Add pairs on Sandy Bridge, fused vfmadd231pd on Piledriver,
   two-operand SSE with explicit moves on the SSE target.

     dune exec examples/cross_architecture.exe *)

module A = Augem
module Arch = A.Machine.Arch
module Insn = A.Machine.Insn

let sse_machine =
  {
    Arch.sandy_bridge with
    Arch.name = "sse2-only";
    model = "SSE2 baseline machine";
    simd = Arch.SSE;
    fma = Arch.No_fma;
    vec_bits = 128;
    native_fp_bits = 128;
  }

let count_mnemonics (prog : Insn.program) =
  let tally = Hashtbl.create 16 in
  List.iter
    (fun i ->
      let key =
        match i with
        | Insn.Vop { op = Insn.Fmul; w; _ } ->
            Some (if w = Insn.W256 then "vmulpd(ymm)" else "mulpd/sd")
        | Insn.Vop { op = Insn.Fadd; w; _ } ->
            Some (if w = Insn.W256 then "vaddpd(ymm)" else "addpd/sd")
        | Insn.Vop { op = Insn.Fma231; _ } -> Some "vfmadd231pd"
        | Insn.Vfma4 _ -> Some "vfmaddpd (FMA4)"
        | Insn.Vbroadcast { w = Insn.W256; _ } -> Some "vbroadcastsd"
        | Insn.Vbroadcast { w = Insn.W128; _ } -> Some "movddup"
        | Insn.Vload _ -> Some "loads"
        | Insn.Vstore _ -> Some "stores"
        | Insn.Prefetch _ -> Some "prefetch"
        | _ -> None
      in
      match key with
      | Some k ->
          Hashtbl.replace tally k
            (1 + Option.value ~default:0 (Hashtbl.find_opt tally k))
      | None -> ())
    prog.Insn.prog_insns;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally []
  |> List.sort compare

let () =
  let config =
    { A.Transform.Pipeline.default with jam = [ ("j", 2); ("i", 8) ] }
  in
  List.iter
    (fun arch ->
      let g = A.generate ~arch ~config A.Ir.Kernels.Gemm in
      let v = A.verify g in
      let est =
        A.predict g (A.Sim.Perf.W_gemm { m = 2048; n = 2048; k = 256 })
      in
      Fmt.pr "=== %s (%s) ===@." arch.Arch.name arch.Arch.model;
      Fmt.pr "verified: %b;  predicted DGEMM 2048^2: %.0f MFLOPS (peak %.0f)@."
        v.A.Harness.ok est.A.Sim.Perf.e_mflops (Arch.peak_mflops arch);
      List.iter (fun (k, n) -> Fmt.pr "  %-18s %4d@." k n) (count_mnemonics g.A.g_program);
      Fmt.pr "@.")
    [ Arch.sandy_bridge; Arch.piledriver; sse_machine ]
