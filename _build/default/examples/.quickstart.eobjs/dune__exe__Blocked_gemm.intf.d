examples/blocked_gemm.mli:
