examples/quickstart.mli:
