examples/quickstart.ml: Augem Fmt List String
