examples/extension_kernels.ml: Augem Fmt List Printf String
