examples/cross_architecture.ml: Augem Fmt Hashtbl List Option
