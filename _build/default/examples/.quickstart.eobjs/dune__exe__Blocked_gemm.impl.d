examples/blocked_gemm.ml: Array Augem Fmt
