examples/extension_kernels.mli:
