examples/tuning_sweep.ml: Augem Fmt List
