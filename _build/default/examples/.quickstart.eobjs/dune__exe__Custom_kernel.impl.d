examples/custom_kernel.ml: Array Augem Float Fmt
