lib/ir/ast.ml: List Option String
