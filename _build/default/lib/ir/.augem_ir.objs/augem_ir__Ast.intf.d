lib/ir/ast.mli:
