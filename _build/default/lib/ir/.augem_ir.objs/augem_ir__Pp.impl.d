lib/ir/pp.ml: Ast Float Fmt String
