lib/ir/lexer.mli:
