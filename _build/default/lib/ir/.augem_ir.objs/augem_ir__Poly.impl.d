lib/ir/poly.ml: Ast Fmt Int List Map Option Pp String
