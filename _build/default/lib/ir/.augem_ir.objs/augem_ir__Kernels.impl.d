lib/ir/kernels.ml: Ast
