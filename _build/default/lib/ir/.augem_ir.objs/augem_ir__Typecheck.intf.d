lib/ir/typecheck.mli: Ast Hashtbl
