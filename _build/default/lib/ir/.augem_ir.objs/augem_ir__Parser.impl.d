lib/ir/parser.ml: Ast Fmt Lexer List Printf String Typecheck
