lib/ir/eval.ml: Array Ast Fmt Hashtbl List
