lib/ir/poly.mli: Ast Format Map
