lib/ir/kernels.mli: Ast
