lib/ir/simplify.ml: Ast List Option Poly
