lib/ir/eval.mli: Ast
