(** Type checking of the mini-C IR.

    Catches malformed programs produced by buggy transformation passes
    long before they reach code generation; every pass in
    [lib/transform] is tested to preserve well-typedness. *)

exception Type_error of string

(** Mutable typing environment: variable name to declared type. *)
type env = (string, Ast.dtype) Hashtbl.t

(** Infer the type of an expression; raises {!Type_error}. *)
val type_of_expr : env -> Ast.expr -> Ast.dtype

(** Check one statement, extending the environment with declarations. *)
val check_stmt : env -> Ast.stmt -> unit

(** The environment induced by a kernel's parameters. *)
val initial_env : Ast.kernel -> env

(** Check a whole kernel; raises {!Type_error} on the first problem. *)
val check_kernel : Ast.kernel -> unit

(** Like {!check_kernel}, as a result. *)
val well_typed : Ast.kernel -> (unit, string) result
