(* Multilinear integer polynomials over scalar variables, the normal
   form used for array index arithmetic.  Strength reduction needs to
   decompose an index expression [l*Mc + i] into a part that varies
   with a given loop variable (the stride) and a loop-invariant base;
   polynomials make that decomposition exact instead of syntactic. *)

(* A monomial is a sorted list of variable names (a variable may repeat,
   giving powers); a polynomial maps monomials to integer
   coefficients. *)
module Mono = struct
  type t = string list

  let compare = compare

  let mul (a : t) (b : t) : t = List.sort String.compare (a @ b)
end

module Mmap = Map.Make (Mono)

type t = int Mmap.t

let zero : t = Mmap.empty

let normalize (p : t) : t = Mmap.filter (fun _ c -> c <> 0) p

let const n : t = if n = 0 then zero else Mmap.singleton [] n

let var v : t = Mmap.singleton [ v ] 1

let add (a : t) (b : t) : t =
  normalize
    (Mmap.union (fun _ x y -> Some (x + y)) a b)

let neg (a : t) : t = Mmap.map (fun c -> -c) a

let sub a b = add a (neg b)

let mul (a : t) (b : t) : t =
  Mmap.fold
    (fun ma ca acc ->
      Mmap.fold
        (fun mb cb acc ->
          let m = Mono.mul ma mb in
          let c = ca * cb in
          Mmap.update m
            (function None -> Some c | Some c' -> Some (c + c'))
            acc)
        b acc)
    a Mmap.empty
  |> normalize

let scale k (a : t) : t = if k = 0 then zero else Mmap.map (fun c -> c * k) a

let equal (a : t) (b : t) = Mmap.equal Int.equal (normalize a) (normalize b)

let is_zero p = Mmap.is_empty (normalize p)

let to_const (p : t) : int option =
  match Mmap.bindings (normalize p) with
  | [] -> Some 0
  | [ ([], c) ] -> Some c
  | _ -> None

let vars (p : t) : string list =
  Mmap.fold (fun m _ acc -> m @ acc) p []
  |> List.sort_uniq String.compare

let mem_var v p = List.mem v (vars p)

(* Split [p] as [base + v * stride] when [v] occurs only linearly (i.e.
   no monomial contains [v] twice).  Returns [None] if [v] occurs
   nonlinearly. *)
let split_linear v (p : t) : (t * t) option =
  let exception Nonlinear in
  try
    let base, stride =
      Mmap.fold
        (fun m c (base, stride) ->
          let occur = List.length (List.filter (String.equal v) m) in
          match occur with
          | 0 -> (add base (Mmap.singleton m c), stride)
          | 1 ->
              let m' = List.filter (fun x -> not (String.equal x v)) m in
              (base, add stride (Mmap.singleton m' c))
          | _ -> raise Nonlinear)
        p (zero, zero)
    in
    Some (base, stride)
  with Nonlinear -> None

(* Conversion from IR expressions.  Fails (returns None) on double
   literals, array accesses, or division, which cannot appear in the
   index arithmetic we strength-reduce. *)
let rec of_expr (e : Ast.expr) : t option =
  match e with
  | Ast.Int_lit n -> Some (const n)
  | Ast.Var v -> Some (var v)
  | Ast.Binop (Ast.Add, a, b) -> map2 add a b
  | Ast.Binop (Ast.Sub, a, b) -> map2 sub a b
  | Ast.Binop (Ast.Mul, a, b) -> map2 mul a b
  | Ast.Neg a -> Option.map neg (of_expr a)
  | Ast.Double_lit _ | Ast.Index _ | Ast.Binop (Ast.Div, _, _) -> None

and map2 f a b =
  match (of_expr a, of_expr b) with
  | Some pa, Some pb -> Some (f pa pb)
  | _ -> None

(* Conversion back to a compact IR expression: constants first within a
   monomial, monomials in a deterministic order. *)
let to_expr (p : t) : Ast.expr =
  let mono_expr (m, c) =
    let vars = List.map (fun v -> Ast.Var v) m in
    let factors =
      if c = 1 && vars <> [] then vars else Ast.Int_lit c :: vars
    in
    match factors with
    | [] -> Ast.Int_lit 1
    | f :: rest -> List.fold_left (fun acc x -> Ast.Binop (Ast.Mul, acc, x)) f rest
  in
  match Mmap.bindings (normalize p) with
  | [] -> Ast.Int_lit 0
  | b :: rest ->
      List.fold_left
        (fun acc ((_, c) as m) ->
          if c < 0 then
            Ast.Binop (Ast.Sub, acc, mono_expr (fst m, -c))
          else Ast.Binop (Ast.Add, acc, mono_expr m))
        (mono_expr b) rest

let pp fmt p = Pp.pp_expr fmt (to_expr p)

let to_string p = Fmt.str "%a" pp p
