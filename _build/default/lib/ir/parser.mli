(** Recursive-descent parser for the mini-C front end.

    Accepts the kernel sources shown in the paper's Figures 12 and
    15-17: a single [void] function over [int] / [double] / [double*]
    parameters, declarations, assignments (including [+=]), canonical
    counted [for] loops, [if] with a single comparison, and
    [__builtin_prefetch].  Parsed kernels are type-checked before being
    returned. *)

exception Parse_error of string * int
(** Message and byte offset. *)

(** Parse a kernel from C text.  Raises {!Parse_error},
    {!Lexer.Lex_error} or {!Typecheck.Type_error}. *)
val parse_kernel : string -> Ast.kernel

(** Like {!parse_kernel}, with all failures as [Error message]. *)
val parse_kernel_result : string -> (Ast.kernel, string) result
