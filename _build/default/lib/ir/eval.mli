(** Reference interpreter for the mini-C IR — the semantic oracle.

    The output of every transformation pass and of the whole assembly
    pipeline is checked against this interpreter; it also counts memory
    and floating-point operations for the performance model's tests. *)

exception Eval_error of string

(** Runtime values: integers, doubles, and pointers as
    (buffer, element offset) pairs. *)
type value =
  | Vint of int
  | Vdouble of float
  | Vptr of float array * int

(** Dynamic operation counters, filled in by a run. *)
type stats = {
  mutable loads : int;
  mutable stores : int;
  mutable flops : int;
  mutable prefetches : int;
}

(** Arguments to a kernel invocation.  [Abuf] arrays are mutated in
    place (pointer parameters). *)
type arg =
  | Aint of int
  | Adouble of float
  | Abuf of float array

(** Run a kernel on the given arguments.  Array accesses are
    bounds-checked; loops carry a step budget against divergence.
    Raises {!Eval_error} on any fault. *)
val run : Ast.kernel -> arg list -> stats
