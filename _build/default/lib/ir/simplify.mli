(** Expression and statement simplification: constant folding plus
    polynomial normalization of integer index expressions.

    Run after loop restructuring so that indices like
    [(j + 1) * Kc + l] present a canonical face to strength reduction
    and template matching. *)

val simplify_expr : Ast.expr -> Ast.expr

(** Normalize an integer index expression through {!Poly} when
    possible; otherwise just fold constants. *)
val norm_index : Ast.expr -> Ast.expr

val simplify_stmt : Ast.stmt -> Ast.stmt
val simplify_kernel : Ast.kernel -> Ast.kernel
