(** Multilinear integer polynomials over scalar variables — the normal
    form for array index arithmetic.

    Strength reduction decomposes an index expression such as
    [l*Mc + i] into a loop-invariant base plus a per-iteration stride;
    this module makes that decomposition exact instead of syntactic. *)

(** Monomials: a multiset of variable names (repetition = power). *)
module Mono : sig
  type t = string list

  val compare : t -> t -> int
  val mul : t -> t -> t
end

(** Maps from monomials to integer coefficients. *)
module Mmap : Map.S with type key = Mono.t

(** A polynomial, normalized: no zero coefficients. *)
type t = int Mmap.t

val zero : t
val const : int -> t
val var : string -> t
val add : t -> t -> t
val neg : t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** [scale k p] is [k * p]. *)
val scale : int -> t -> t

val equal : t -> t -> bool
val is_zero : t -> bool

(** [Some c] iff the polynomial is the constant [c]. *)
val to_const : t -> int option

(** Variables occurring in the polynomial, sorted, without duplicates. *)
val vars : t -> string list

val mem_var : string -> t -> bool

(** [split_linear v p] is [Some (base, stride)] with
    [p = base + v * stride] and neither part mentioning [v], when [v]
    occurs at most linearly; [None] if [v] occurs nonlinearly. *)
val split_linear : string -> t -> (t * t) option

(** Conversion from an IR expression.  [None] on doubles, array
    accesses or division, which cannot appear in reducible index
    arithmetic. *)
val of_expr : Ast.expr -> t option

(** Conversion back to a compact, deterministic IR expression. *)
val to_expr : t -> Ast.expr

val pp : Format.formatter -> t -> unit
val to_string : t -> string
