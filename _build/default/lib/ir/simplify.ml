(* Expression and statement simplification: constant folding plus
   polynomial normalization of integer index expressions.  Run after
   loop restructuring so that indices like [(j + 1) * Kc + l] present a
   canonical face to strength reduction and template matching. *)

open Ast

let rec fold_expr e =
  match e with
  | Int_lit _ | Double_lit _ | Var _ -> e
  | Index (a, i) -> Index (a, norm_index i)
  | Neg a -> (
      match fold_expr a with
      | Int_lit n -> Int_lit (-n)
      | Double_lit f -> Double_lit (-.f)
      | a' -> Neg a')
  | Binop (op, a, b) -> (
      let a = fold_expr a and b = fold_expr b in
      match (op, a, b) with
      | _, Int_lit x, Int_lit y -> (
          match op with
          | Add -> Int_lit (x + y)
          | Sub -> Int_lit (x - y)
          | Mul -> Int_lit (x * y)
          | Div -> if y <> 0 then Int_lit (x / y) else Binop (op, a, b))
      | _, Double_lit x, Double_lit y -> (
          match op with
          | Add -> Double_lit (x +. y)
          | Sub -> Double_lit (x -. y)
          | Mul -> Double_lit (x *. y)
          | Div -> Double_lit (x /. y))
      | Add, x, Int_lit 0 | Add, Int_lit 0, x -> x
      | Sub, x, Int_lit 0 -> x
      | Mul, _, Int_lit 0 | Mul, Int_lit 0, _ -> Int_lit 0
      | Mul, x, Int_lit 1 | Mul, Int_lit 1, x -> x
      | Add, x, Double_lit 0. | Add, Double_lit 0., x -> x
      | Mul, x, Double_lit 1. | Mul, Double_lit 1., x -> x
      | _ -> Binop (op, a, b))

(* Normalize an integer index expression through the polynomial
   representation when possible; otherwise just fold constants. *)
and norm_index e =
  let e = fold_expr e in
  match Poly.of_expr e with
  | Some p -> Poly.to_expr p
  | None -> e

let simplify_expr e = fold_expr e

let rec simplify_stmt s =
  match s with
  | Decl (t, v, init) -> Decl (t, v, Option.map simplify_expr init)
  | Assign (Lindex (a, i), e) ->
      Assign (Lindex (a, norm_index i), simplify_expr e)
  | Assign (lv, e) -> Assign (lv, simplify_expr e)
  | For (h, body) ->
      let h =
        {
          h with
          loop_init = simplify_expr h.loop_init;
          loop_bound = simplify_expr h.loop_bound;
          loop_step = simplify_expr h.loop_step;
        }
      in
      For (h, List.map simplify_stmt body)
  | If (a, c, b, t, f) ->
      If
        ( simplify_expr a,
          c,
          simplify_expr b,
          List.map simplify_stmt t,
          List.map simplify_stmt f )
  | Prefetch (h, base, off) -> Prefetch (h, base, norm_index off)
  | Comment _ -> s
  | Tagged (tag, body) -> Tagged (tag, List.map simplify_stmt body)

let simplify_kernel k = { k with k_body = List.map simplify_stmt k.k_body }
