(** C-syntax pretty printing of the IR, used by the CLI phase dumps,
    the examples, and golden tests.  [Pp.kernel_to_string] output
    re-parses to an identical kernel (tested). *)

val pp_dtype : Format.formatter -> Ast.dtype -> unit
val binop_str : Ast.binop -> string
val cmpop_str : Ast.cmpop -> string
val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_lvalue : Format.formatter -> Ast.lvalue -> unit
val pp_stmt : indent:int -> Format.formatter -> Ast.stmt -> unit
val pp_body : indent:int -> Format.formatter -> Ast.stmt list -> unit
val pp_param : Format.formatter -> Ast.param -> unit
val pp_kernel : Format.formatter -> Ast.kernel -> unit
val expr_to_string : Ast.expr -> string
val stmt_to_string : Ast.stmt -> string
val kernel_to_string : Ast.kernel -> string
