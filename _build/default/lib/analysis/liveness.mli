(** Backward liveness analysis over the structured IR.

    The paper uses global live ranges to decide when a scalar's
    register can be released and to annotate template regions with
    their live-out variables (its section 3.1). *)

module SS : Set.S with type elt = string and type t = Set.Make(String).t

val reads_expr : Augem_ir.Ast.expr -> SS.t
val reads_lvalue : Augem_ir.Ast.lvalue -> SS.t

(** Scalars written by one statement (stores through pointers kill
    nothing). *)
val defs_stmt : Augem_ir.Ast.stmt -> SS.t

(** Scalars assigned anywhere in a block, including loop counters. *)
val defs_block : Augem_ir.Ast.stmt list -> SS.t

(** [live_stmt s ~live_out] is the set of scalars live before [s].
    Loops reach a fixpoint over the back edge (zero-or-more-trips
    semantics). *)
val live_stmt : Augem_ir.Ast.stmt -> live_out:SS.t -> SS.t

val live_block : Augem_ir.Ast.stmt list -> live_out:SS.t -> SS.t

(** Pair each statement with the set of scalars live {e after} it. *)
val annotate :
  Augem_ir.Ast.stmt list ->
  live_out:SS.t ->
  (Augem_ir.Ast.stmt * SS.t) list

(** {!annotate} over a kernel body with empty live-out. *)
val kernel_live_annotations :
  Augem_ir.Ast.kernel -> (Augem_ir.Ast.stmt * SS.t) list
