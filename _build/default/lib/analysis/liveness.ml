(* Backward liveness analysis over the structured IR.  The paper uses
   global live ranges to decide when a scalar's register can be released
   and to annotate template regions with their live-out variables
   (section 3.1: "the live range of each variable is computed globally
   during the template identification process"). *)

module SS = Set.Make (String)

open Augem_ir.Ast

let reads_expr e = SS.of_list (expr_vars e)

let reads_lvalue = function
  | Lvar _ -> SS.empty
  | Lindex (a, i) -> SS.add a (reads_expr i)

(* Variables written by a statement (scalar definitions only; stores
   through pointers do not kill anything). *)
let defs_stmt = function
  | Decl (_, v, _) -> SS.singleton v
  | Assign (Lvar v, _) -> SS.singleton v
  | Assign (Lindex _, _) | For _ | If _ | Prefetch _ | Comment _ | Tagged _ ->
      SS.empty

let rec defs_block stmts =
  List.fold_left
    (fun acc s ->
      match s with
      | For (h, body) -> SS.union acc (SS.add h.loop_var (defs_block body))
      | If (_, _, _, t, f) ->
          SS.union acc (SS.union (defs_block t) (defs_block f))
      | Tagged (_, body) -> SS.union acc (defs_block body)
      | s -> SS.union acc (defs_stmt s))
    SS.empty stmts

(* live_in of a statement given variables live after it. *)
let rec live_stmt (s : stmt) ~(live_out : SS.t) : SS.t =
  match s with
  | Decl (_, v, init) ->
      let gen = match init with Some e -> reads_expr e | None -> SS.empty in
      SS.union gen (SS.remove v live_out)
  | Assign (Lvar v, e) -> SS.union (reads_expr e) (SS.remove v live_out)
  | Assign (Lindex (a, i), e) ->
      live_out |> SS.add a |> SS.union (reads_expr i) |> SS.union (reads_expr e)
  | Prefetch (_, base, off) -> live_out |> SS.add base |> SS.union (reads_expr off)
  | Comment _ -> live_out
  | Tagged (_, body) -> live_block body ~live_out
  | If (a, _, b, t, f) ->
      let lt = live_block t ~live_out and lf = live_block f ~live_out in
      SS.union lt lf |> SS.union (reads_expr a) |> SS.union (reads_expr b)
  | For (h, body) ->
      (* The loop may execute zero or more times.  Variables live at the
         loop head are: uses of the header, live_out (zero-trip case),
         and the fixpoint of the body with the back edge. *)
      let header_uses =
        SS.union (reads_expr h.loop_bound) (reads_expr h.loop_step)
        |> SS.add h.loop_var
      in
      let rec fix acc =
        let body_out = SS.union acc (SS.union live_out header_uses) in
        let body_in = live_block body ~live_out:body_out in
        let acc' = SS.union acc body_in in
        if SS.equal acc acc' then acc else fix acc'
      in
      let body_in = fix SS.empty in
      SS.union live_out header_uses
      |> SS.union body_in
      |> SS.union (reads_expr h.loop_init)
      |> SS.remove h.loop_var
      |> SS.union (reads_expr h.loop_init)

and live_block (stmts : stmt list) ~(live_out : SS.t) : SS.t =
  List.fold_right (fun s acc -> live_stmt s ~live_out:acc) stmts live_out

(* [annotate stmts ~live_out] pairs each statement with the set of
   variables live *after* it. *)
let annotate (stmts : stmt list) ~(live_out : SS.t) : (stmt * SS.t) list =
  let rec go = function
    | [] -> (live_out, [])
    | s :: rest ->
        let after, annotated = go rest in
        let before = live_stmt s ~live_out:after in
        ignore before;
        (live_stmt s ~live_out:after, (s, after) :: annotated)
  in
  snd (go stmts)

(* Live-out sets relevant to a kernel body: nothing is live at function
   exit except memory, so scalar live_out is empty. *)
let kernel_live_annotations (k : kernel) : (stmt * SS.t) list =
  annotate k.k_body ~live_out:SS.empty
