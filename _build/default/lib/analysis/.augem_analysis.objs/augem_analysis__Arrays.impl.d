lib/analysis/arrays.ml: Augem_ir List Set String
