lib/analysis/arrays.mli: Augem_ir
