lib/analysis/liveness.mli: Augem_ir Set String
