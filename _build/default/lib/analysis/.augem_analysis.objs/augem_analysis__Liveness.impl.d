lib/analysis/liveness.ml: Augem_ir List Set String
