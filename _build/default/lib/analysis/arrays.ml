(* Collect the array (pointer) variables a kernel touches and summarize
   how they are accessed.  The register allocator dedicates R/m physical
   registers to each of the m arrays (paper section 3.1), so it needs
   this inventory up front. *)

module SS = Set.Make (String)

open Augem_ir.Ast

type access = {
  acc_array : string;
  acc_index : expr;
  acc_is_store : bool;
}

let rec accesses_expr acc = function
  | Int_lit _ | Double_lit _ | Var _ -> acc
  | Index (a, i) ->
      accesses_expr
        ({ acc_array = a; acc_index = i; acc_is_store = false } :: acc)
        i
  | Binop (_, x, y) -> accesses_expr (accesses_expr acc x) y
  | Neg x -> accesses_expr acc x

let rec accesses_stmt acc = function
  | Decl (_, _, Some e) -> accesses_expr acc e
  | Decl (_, _, None) | Comment _ -> acc
  | Assign (Lvar _, e) -> accesses_expr acc e
  | Assign (Lindex (a, i), e) ->
      let acc = { acc_array = a; acc_index = i; acc_is_store = true } :: acc in
      accesses_expr (accesses_expr acc i) e
  | For (h, body) ->
      let acc = accesses_expr acc h.loop_init in
      let acc = accesses_expr acc h.loop_bound in
      let acc = accesses_expr acc h.loop_step in
      List.fold_left accesses_stmt acc body
  | If (a, _, b, t, f) ->
      let acc = accesses_expr (accesses_expr acc a) b in
      let acc = List.fold_left accesses_stmt acc t in
      List.fold_left accesses_stmt acc f
  | Prefetch (_, _, off) -> accesses_expr acc off
  | Tagged (_, body) -> List.fold_left accesses_stmt acc body

let accesses_of_kernel (k : kernel) : access list =
  List.rev (List.fold_left accesses_stmt [] k.k_body)

(* Pointer-typed variables declared or passed to the kernel, in
   declaration order.  This includes derived pointers introduced by
   strength reduction ([ptr_A], [ptr_C0], ...). *)
let pointer_vars (k : kernel) : string list =
  let from_params =
    List.filter_map
      (fun p -> match p.p_type with Ptr _ -> Some p.p_name | _ -> None)
      k.k_params
  in
  let rec from_stmts acc = function
    | [] -> acc
    | Decl (Ptr _, v, _) :: rest -> from_stmts (v :: acc) rest
    | (For (_, body) | Tagged (_, body)) :: rest ->
        from_stmts (from_stmts acc body) rest
    | If (_, _, _, t, f) :: rest ->
        from_stmts (from_stmts (from_stmts acc t) f) rest
    | (Decl _ | Assign _ | Prefetch _ | Comment _) :: rest -> from_stmts acc rest
  in
  from_params @ List.rev (from_stmts [] k.k_body)

(* Arrays actually referenced via indexing. *)
let referenced_arrays (k : kernel) : string list =
  accesses_of_kernel k
  |> List.map (fun a -> a.acc_array)
  |> List.sort_uniq String.compare

(* For the paper's register partitioning we group derived pointers with
   the original array they were derived from, using the naming
   convention of the strength reduction pass ([ptr_A] and [ptr_A1]
   belong to [A]). *)
let base_array_of (name : string) : string =
  let strip_prefix s =
    match String.index_opt s '_' with
    | Some i when String.length s > i + 1 && String.sub s 0 i = "ptr" ->
        String.sub s (i + 1) (String.length s - i - 1)
    | _ -> s
  in
  let s = strip_prefix name in
  (* drop a trailing numeric suffix: C0 -> C *)
  let n = String.length s in
  let rec first_digit i =
    if i = 0 then 0
    else
      let c = s.[i - 1] in
      if c >= '0' && c <= '9' then first_digit (i - 1) else i
  in
  let cut = first_digit n in
  if cut = 0 || cut = n then s else String.sub s 0 cut

(* Distinct base arrays of a kernel: the m in the R/m partition. *)
let base_arrays (k : kernel) : string list =
  referenced_arrays k
  |> List.map base_array_of
  |> List.sort_uniq String.compare
