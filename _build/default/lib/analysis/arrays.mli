(** Inventory of the array (pointer) variables a kernel touches.

    The register allocator dedicates R/m physical registers to each of
    the m base arrays (paper section 3.1), so it needs this inventory
    up front. *)

(** One array access site. *)
type access = {
  acc_array : string;
  acc_index : Augem_ir.Ast.expr;
  acc_is_store : bool;
}

val accesses_of_kernel : Augem_ir.Ast.kernel -> access list

(** Pointer-typed parameters and locals, in declaration order —
    including pointers introduced by strength reduction. *)
val pointer_vars : Augem_ir.Ast.kernel -> string list

(** Arrays actually referenced via indexing, sorted. *)
val referenced_arrays : Augem_ir.Ast.kernel -> string list

(** The base array a derived pointer belongs to, by the strength
    reduction pass's naming convention: [ptr_A0] and [ptr_A1] map to
    [A]; unknown names map to themselves. *)
val base_array_of : string -> string

(** Distinct base arrays — the m of the R/m register partition. *)
val base_arrays : Augem_ir.Ast.kernel -> string list
