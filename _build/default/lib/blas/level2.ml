(* Reference Level-2 BLAS.  The GEMV column sweep mirrors the structure
   of the paper's Figure 15 kernel (an AXPY per column), and GER is the
   routine the paper's Table 6 builds from the Level-1 kernels. *)

open Matrix

type trans =
  | No_trans
  | Trans

(* y := alpha * op(A) * x + beta * y *)
let dgemv ?(trans = No_trans) ~alpha ~beta (a : t) (x : float array)
    (y : float array) =
  let m = a.rows and n = a.cols in
  (match trans with
  | No_trans ->
      if Array.length x < n || Array.length y < m then
        invalid_arg "dgemv: vector too short"
  | Trans ->
      if Array.length x < m || Array.length y < n then
        invalid_arg "dgemv: vector too short");
  match trans with
  | No_trans ->
      if beta <> 1. then
        for i = 0 to m - 1 do
          y.(i) <- beta *. y.(i)
        done;
      (* column sweep: y += (alpha * x[j]) * A(:, j) *)
      for j = 0 to n - 1 do
        let s = alpha *. x.(j) in
        if s <> 0. then
          for i = 0 to m - 1 do
            y.(i) <- y.(i) +. (get a i j *. s)
          done
      done
  | Trans ->
      for j = 0 to n - 1 do
        let acc = ref 0. in
        for i = 0 to m - 1 do
          acc := !acc +. (get a i j *. x.(i))
        done;
        y.(j) <- (beta *. y.(j)) +. (alpha *. !acc)
      done

(* A := alpha * x * y^T + A (rank-1 update) *)
let dger ~alpha (a : t) (x : float array) (y : float array) =
  let m = a.rows and n = a.cols in
  if Array.length x < m || Array.length y < n then
    invalid_arg "dger: vector too short";
  for j = 0 to n - 1 do
    let s = alpha *. y.(j) in
    if s <> 0. then
      for i = 0 to m - 1 do
        set a i j (get a i j +. (x.(i) *. s))
      done
  done

(* y := alpha * A * x + beta * y, A symmetric (lower storage) *)
let dsymv ~alpha ~beta (a : t) (x : float array) (y : float array) =
  let n = a.rows in
  for i = 0 to n - 1 do
    y.(i) <- beta *. y.(i)
  done;
  for j = 0 to n - 1 do
    let s = alpha *. x.(j) in
    for i = 0 to n - 1 do
      let aij = if i >= j then get a i j else get a j i in
      y.(i) <- y.(i) +. (aij *. s)
    done
  done

(* x := op(L) * x for lower-triangular L *)
let dtrmv ?(trans = No_trans) (l : t) (x : float array) =
  let n = l.rows in
  match trans with
  | No_trans ->
      for i = n - 1 downto 0 do
        let acc = ref 0. in
        for j = 0 to i do
          acc := !acc +. (get l i j *. x.(j))
        done;
        x.(i) <- !acc
      done
  | Trans ->
      for i = 0 to n - 1 do
        let acc = ref 0. in
        for j = i to n - 1 do
          acc := !acc +. (get l j i *. x.(j))
        done;
        x.(i) <- !acc
      done

(* solve L * x = b in place (forward substitution) *)
let dtrsv (l : t) (x : float array) =
  let n = l.rows in
  for i = 0 to n - 1 do
    let acc = ref x.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (get l i j *. x.(j))
    done;
    x.(i) <- !acc /. get l i i
  done
