(** Reference Level-1 BLAS over plain float arrays: the numeric oracle
    for generated AXPY/DOT/SCAL/COPY kernels and building block of the
    Level-2 routines.  All routines check vector lengths. *)

val daxpy : int -> float -> float array -> float array -> unit
(** [daxpy n alpha x y]: y := alpha*x + y. *)

val ddot : int -> float array -> float array -> float
val dscal : int -> float -> float array -> unit
val dcopy : int -> float array -> float array -> unit
val dswap : int -> float array -> float array -> unit

val dnrm2 : int -> float array -> float
(** Euclidean norm, scaled against overflow. *)

val dasum : int -> float array -> float

val idamax : int -> float array -> int
(** Index of the largest-magnitude element (0-based; -1 when empty). *)
