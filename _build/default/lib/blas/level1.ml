(* Reference Level-1 BLAS over plain float arrays, used as the numeric
   oracle for generated AXPY/DOT kernels and as building blocks for the
   Level-2 routines. *)

let check_len name n (x : float array) =
  if Array.length x < n then
    invalid_arg (Printf.sprintf "%s: vector shorter than n=%d" name n)

(* y := alpha * x + y *)
let daxpy n alpha (x : float array) (y : float array) =
  check_len "daxpy" n x;
  check_len "daxpy" n y;
  for i = 0 to n - 1 do
    y.(i) <- y.(i) +. (alpha *. x.(i))
  done

(* dot product *)
let ddot n (x : float array) (y : float array) : float =
  check_len "ddot" n x;
  check_len "ddot" n y;
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

(* x := alpha * x *)
let dscal n alpha (x : float array) =
  check_len "dscal" n x;
  for i = 0 to n - 1 do
    x.(i) <- alpha *. x.(i)
  done

(* y := x *)
let dcopy n (x : float array) (y : float array) =
  check_len "dcopy" n x;
  check_len "dcopy" n y;
  Array.blit x 0 y 0 n

(* swap x and y *)
let dswap n (x : float array) (y : float array) =
  check_len "dswap" n x;
  check_len "dswap" n y;
  for i = 0 to n - 1 do
    let t = x.(i) in
    x.(i) <- y.(i);
    y.(i) <- t
  done

(* Euclidean norm, with scaling against overflow *)
let dnrm2 n (x : float array) : float =
  check_len "dnrm2" n x;
  let scale = ref 0. and ssq = ref 1. in
  for i = 0 to n - 1 do
    let xi = Float.abs x.(i) in
    if xi > 0. then
      if !scale < xi then begin
        ssq := 1. +. (!ssq *. (!scale /. xi) *. (!scale /. xi));
        scale := xi
      end
      else ssq := !ssq +. ((xi /. !scale) *. (xi /. !scale))
  done;
  !scale *. sqrt !ssq

(* sum of absolute values *)
let dasum n (x : float array) : float =
  check_len "dasum" n x;
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. Float.abs x.(i)
  done;
  !acc

(* index of the element with largest absolute value (0-based) *)
let idamax n (x : float array) : int =
  check_len "idamax" n x;
  if n <= 0 then -1
  else begin
    let best = ref 0 in
    for i = 1 to n - 1 do
      if Float.abs x.(i) > Float.abs x.(!best) then best := i
    done;
    !best
  end
