(** Reference Level-2 BLAS.  The GEMV column sweep mirrors the paper's
    Figure 15 kernel (an AXPY per column); GER is the Table 6 routine
    built from the Level-1 kernels. *)

type trans =
  | No_trans
  | Trans

(** [dgemv ~trans ~alpha ~beta a x y]: y := alpha*op(A)*x + beta*y. *)
val dgemv :
  ?trans:trans ->
  alpha:float ->
  beta:float ->
  Matrix.t ->
  float array ->
  float array ->
  unit

(** [dger ~alpha a x y]: A := alpha*x*y^T + A. *)
val dger : alpha:float -> Matrix.t -> float array -> float array -> unit

(** Symmetric matrix-vector product (full storage, symmetric values). *)
val dsymv :
  alpha:float -> beta:float -> Matrix.t -> float array -> float array -> unit

(** [dtrmv l x]: x := op(L)*x for lower-triangular L. *)
val dtrmv : ?trans:trans -> Matrix.t -> float array -> unit

(** [dtrsv l x]: solve L*y = x in place (forward substitution). *)
val dtrsv : Matrix.t -> float array -> unit
