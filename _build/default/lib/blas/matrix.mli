(** Column-major dense matrices (the BLAS convention) backed by flat
    float arrays. *)

type t = {
  data : float array;
  rows : int;
  cols : int;
  ld : int;  (** leading dimension, >= rows *)
}

val create : ?ld:int -> int -> int -> t
val init : ?ld:int -> int -> int -> (int -> int -> float) -> t
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val copy : t -> t

(** Deterministic pseudo-random fill in [-1, 1] (no global RNG). *)
val random : ?seed:int -> ?ld:int -> int -> int -> t

val random_symmetric : ?seed:int -> int -> t

(** Lower-triangular with a well-conditioned diagonal (for TRSM). *)
val random_lower : ?seed:int -> int -> t

val random_upper : ?seed:int -> int -> t
val max_abs_diff : t -> t -> float
val approx_equal : ?tol:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
