lib/blas/level2.mli: Matrix
