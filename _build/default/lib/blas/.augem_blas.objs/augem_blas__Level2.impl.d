lib/blas/level2.ml: Array Matrix
