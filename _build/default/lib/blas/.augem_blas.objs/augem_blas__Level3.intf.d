lib/blas/level3.mli: Matrix
