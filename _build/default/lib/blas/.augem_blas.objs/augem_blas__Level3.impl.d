lib/blas/level3.ml: Array Matrix
