lib/blas/matrix.ml: Array Float Fmt
