lib/blas/level1.ml: Array Float Printf
