lib/blas/matrix.mli: Format
