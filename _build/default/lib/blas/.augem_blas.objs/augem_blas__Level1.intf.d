lib/blas/level1.mli:
