(* Reference Level-3 BLAS.

   [dgemm_naive] is the semantics oracle.  [dgemm_blocked] implements
   Goto's block-partitioned algorithm (the one the paper's GEMM kernel
   plugs into): loops over Kc x Nc panels of B and Mc x Kc blocks of A,
   packs both into contiguous buffers in exactly the layouts the
   generated micro-kernel expects (A[l*Mc + i], B[j*Kc + l]), and calls
   a micro-kernel callback on each packed pair — by default the
   reference micro-kernel, in tests the simulated generated assembly.

   The remaining routines (SYMM, SYRK, SYR2K, TRMM, TRSM) follow the
   standard cast-onto-GEMM decompositions of Goto & van de Geijn,
   "High-performance implementation of the level-3 BLAS": the bulk of
   their flops run through [dgemm_blocked]; TRSM additionally performs
   small triangular solves that do not map onto GEMM — the structural
   reason AUGEM loses only TRSM in the paper's Table 6. *)

open Matrix

(* C := alpha * A * B + beta * C, naive triple loop. *)
let dgemm_naive ~alpha ~beta (a : t) (b : t) (c : t) =
  let m = a.rows and k = a.cols and n = b.cols in
  if b.rows <> k || c.rows <> m || c.cols <> n then
    invalid_arg "dgemm: shape mismatch";
  for j = 0 to n - 1 do
    for i = 0 to m - 1 do
      let acc = ref 0. in
      for l = 0 to k - 1 do
        acc := !acc +. (get a i l *. get b l j)
      done;
      set c i j ((beta *. get c i j) +. (alpha *. !acc))
    done
  done

(* --- packing ----------------------------------------------------------- *)

(* Pack an mc x kc block of A starting at (i0, l0) into [buf] in the
   micro-kernel layout A[l*mc + i]. *)
let pack_a (a : t) ~i0 ~l0 ~mc ~kc (buf : float array) =
  for l = 0 to kc - 1 do
    for i = 0 to mc - 1 do
      buf.((l * mc) + i) <- get a (i0 + i) (l0 + l)
    done
  done

(* Pack a kc x nc block of B starting at (l0, j0) into the per-column
   stream layout B[j*kc + l]. *)
let pack_b (b : t) ~l0 ~j0 ~kc ~nc (buf : float array) =
  for j = 0 to nc - 1 do
    for l = 0 to kc - 1 do
      buf.((j * kc) + l) <- get b (l0 + l) (j0 + j)
    done
  done

(* Pack the same block in the interleaved layout B[l*nc + j] that the
   Shuf vectorization method requires. *)
let pack_b_interleaved (b : t) ~l0 ~j0 ~kc ~nc (buf : float array) =
  for l = 0 to kc - 1 do
    for j = 0 to nc - 1 do
      buf.((l * nc) + j) <- get b (l0 + l) (j0 + j)
    done
  done

(* The reference micro-kernel: C(mc x nc) += packed_A * packed_B with
   the packed layouts above and C at leading dimension ldc, starting at
   element [c_off] of [c_data].  Matches the semantics of the paper's
   Figure 12 kernel. *)
let micro_kernel_ref ~mc ~kc ~nc ~(pa : float array) ~(pb : float array)
    ~(c_data : float array) ~c_off ~ldc =
  for j = 0 to nc - 1 do
    for i = 0 to mc - 1 do
      let acc = ref 0. in
      for l = 0 to kc - 1 do
        acc := !acc +. (pa.((l * mc) + i) *. pb.((j * kc) + l))
      done;
      let idx = c_off + (j * ldc) + i in
      c_data.(idx) <- c_data.(idx) +. !acc
    done
  done

type micro_kernel =
  mc:int ->
  kc:int ->
  nc:int ->
  pa:float array ->
  pb:float array ->
  c_data:float array ->
  c_off:int ->
  ldc:int ->
  unit

type blocking = {
  bk_mc : int;
  bk_kc : int;
  bk_nc : int;
}

let default_blocking = { bk_mc = 128; bk_kc = 256; bk_nc = 512 }

(* C := alpha * A * B + beta * C by the Goto algorithm. *)
let dgemm_blocked ?(blocking = default_blocking)
    ?(kernel : micro_kernel = micro_kernel_ref) ~alpha ~beta (a : t) (b : t)
    (c : t) =
  let m = a.rows and k = a.cols and n = b.cols in
  if b.rows <> k || c.rows <> m || c.cols <> n then
    invalid_arg "dgemm: shape mismatch";
  (* beta and alpha handling: scale C once, fold alpha into packed A *)
  if beta <> 1. then
    for j = 0 to n - 1 do
      for i = 0 to m - 1 do
        set c i j (beta *. get c i j)
      done
    done;
  if alpha = 0. then ()
  else begin
    let { bk_mc; bk_kc; bk_nc } = blocking in
    let pa = Array.make (bk_mc * bk_kc) 0. in
    let pb = Array.make (bk_kc * bk_nc) 0. in
    let j0 = ref 0 in
    while !j0 < n do
      let nc = min bk_nc (n - !j0) in
      let l0 = ref 0 in
      while !l0 < k do
        let kc = min bk_kc (k - !l0) in
        pack_b b ~l0:!l0 ~j0:!j0 ~kc ~nc pb;
        if alpha <> 1. then
          for idx = 0 to (kc * nc) - 1 do
            pb.(idx) <- alpha *. pb.(idx)
          done;
        let i0 = ref 0 in
        while !i0 < m do
          let mc = min bk_mc (m - !i0) in
          pack_a a ~i0:!i0 ~l0:!l0 ~mc ~kc pa;
          kernel ~mc ~kc ~nc ~pa ~pb ~c_data:c.data
            ~c_off:((!j0 * c.ld) + !i0) ~ldc:c.ld;
          i0 := !i0 + mc
        done;
        l0 := !l0 + kc
      done;
      j0 := !j0 + nc
    done
  end

let dgemm = dgemm_blocked

(* transpose view materialized (reference code, clarity first) *)
let transpose (a : t) : t = init a.cols a.rows (fun i j -> get a j i)

type side =
  | Left
  | Right

(* --- SYMM: C := alpha * A * B + beta * C with A symmetric ------------- *)
let dsymm ?blocking ?kernel ~(side : side) ~alpha ~beta (a : t) (b : t) (c : t)
    =
  (* materialize the full symmetric matrix (lower storage) and cast to
     GEMM: the flops all run through the GEMM kernel *)
  let n = a.rows in
  let full = init n n (fun i j -> if i >= j then get a i j else get a j i) in
  match side with
  | Left -> dgemm_blocked ?blocking ?kernel ~alpha ~beta full b c
  | Right -> dgemm_blocked ?blocking ?kernel ~alpha ~beta b full c

(* --- SYRK: C := alpha * A * A^T + beta * C (lower) --------------------- *)
let dsyrk ?blocking ?kernel ~alpha ~beta (a : t) (c : t) =
  let at = transpose a in
  let full = create c.rows c.cols in
  for j = 0 to c.cols - 1 do
    for i = 0 to c.rows - 1 do
      set full i j (get c i j)
    done
  done;
  dgemm_blocked ?blocking ?kernel ~alpha ~beta a at full;
  (* only the lower triangle of C is referenced/updated *)
  for j = 0 to c.cols - 1 do
    for i = j to c.rows - 1 do
      set c i j (get full i j)
    done
  done

(* --- SYR2K: C := alpha * (A * B^T + B * A^T) + beta * C (lower) -------- *)
let dsyr2k ?blocking ?kernel ~alpha ~beta (a : t) (b : t) (c : t) =
  let full = create c.rows c.cols in
  for j = 0 to c.cols - 1 do
    for i = 0 to c.rows - 1 do
      set full i j (get c i j)
    done
  done;
  dgemm_blocked ?blocking ?kernel ~alpha ~beta a (transpose b) full;
  dgemm_blocked ?blocking ?kernel ~alpha ~beta:1. b (transpose a) full;
  for j = 0 to c.cols - 1 do
    for i = j to c.rows - 1 do
      set c i j (get full i j)
    done
  done

(* --- TRMM: B := alpha * L * B with L lower-triangular ------------------ *)
(* Blocked: partition L in Nb-sized diagonal blocks; the off-diagonal
   update is GEMM, the diagonal part a small triangular multiply. *)
let trmm_block = 64

let dtrmm ?blocking ?kernel ~alpha (l : t) (b : t) =
  let n = l.rows and rhs = b.cols in
  let nb = trmm_block in
  (* process block rows bottom-up so inputs are unmodified *)
  let i0 = ref (((n - 1) / nb) * nb) in
  while !i0 >= 0 do
    let ib = min nb (n - !i0) in
    (* diagonal: B[i0..i0+ib) := L(i0 block diag) * B(block) *)
    for j = 0 to rhs - 1 do
      for i = !i0 + ib - 1 downto !i0 do
        let acc = ref 0. in
        for t = !i0 to i do
          acc := !acc +. (get l i t *. get b t j)
        done;
        set b i j !acc
      done
    done;
    (* off-diagonal: B(block) += L(i0.., 0..i0) * B(0..i0) — GEMM *)
    if !i0 > 0 then begin
      let l21 = init ib !i0 (fun i j -> get l (!i0 + i) j) in
      let b1 = init !i0 rhs (fun i j -> get b i j) in
      let view = init ib rhs (fun i j -> get b (!i0 + i) j) in
      dgemm_blocked ?blocking ?kernel ~alpha:1. ~beta:1. l21 b1 view;
      for j = 0 to rhs - 1 do
        for i = 0 to ib - 1 do
          set b (!i0 + i) j (get view i j)
        done
      done
    end;
    i0 := !i0 - nb
  done;
  if alpha <> 1. then
    for j = 0 to rhs - 1 do
      for i = 0 to n - 1 do
        set b i j (alpha *. get b i j)
      done
    done

(* --- TRSM: B := alpha * L^-1 * B with L lower-triangular --------------- *)
(* The paper's two-step decomposition: B1 := L11^-1 B1 (small solve,
   translated straightforwardly — not GEMM-accelerated), then
   B2 := B2 - L21 * B1 (GEMM). *)
let dtrsm ?blocking ?kernel ~alpha (l : t) (b : t) =
  let n = l.rows and rhs = b.cols in
  if alpha <> 1. then
    for j = 0 to rhs - 1 do
      for i = 0 to n - 1 do
        set b i j (alpha *. get b i j)
      done
    done;
  let nb = trmm_block in
  let i0 = ref 0 in
  while !i0 < n do
    let ib = min nb (n - !i0) in
    (* step 1: small forward substitution on the diagonal block *)
    for j = 0 to rhs - 1 do
      for i = !i0 to !i0 + ib - 1 do
        let acc = ref (get b i j) in
        for t = !i0 to i - 1 do
          acc := !acc -. (get l i t *. get b t j)
        done;
        set b i j (!acc /. get l i i)
      done
    done;
    (* step 2: trailing update B2 -= L21 * B1 — GEMM *)
    if !i0 + ib < n then begin
      let rows = n - !i0 - ib in
      let l21 = init rows ib (fun i j -> get l (!i0 + ib + i) (!i0 + j)) in
      let b1 = init ib rhs (fun i j -> get b (!i0 + i) j) in
      let view = init rows rhs (fun i j -> get b (!i0 + ib + i) j) in
      dgemm_blocked ?blocking ?kernel ~alpha:(-1.) ~beta:1. l21 b1 view;
      for j = 0 to rhs - 1 do
        for i = 0 to rows - 1 do
          set b (!i0 + ib + i) j (get view i j)
        done
      done
    end;
    i0 := !i0 + nb
  done
