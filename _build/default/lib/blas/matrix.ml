(* Column-major dense matrices (the BLAS convention) backed by flat
   float arrays. *)

type t = {
  data : float array;
  rows : int;
  cols : int;
  ld : int; (* leading dimension: >= rows *)
}

let create ?ld rows cols =
  let ld = match ld with Some l -> max l rows | None -> rows in
  { data = Array.make (ld * cols) 0.; rows; cols; ld }

let init ?ld rows cols f =
  let m = create ?ld rows cols in
  for j = 0 to cols - 1 do
    for i = 0 to rows - 1 do
      m.data.((j * m.ld) + i) <- f i j
    done
  done;
  m

let get m i j = m.data.((j * m.ld) + i)
let set m i j x = m.data.((j * m.ld) + i) <- x

let copy m =
  { m with data = Array.copy m.data }

(* Deterministic pseudo-random fill (no external RNG dependence). *)
let random ?(seed = 42) ?ld rows cols =
  let state = ref (seed land 0x3FFFFFFF) in
  let next () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    (float_of_int !state /. 1073741824.0 *. 2.0) -. 1.0
  in
  init ?ld rows cols (fun _ _ -> next ())

let random_symmetric ?(seed = 7) n =
  let m = random ~seed n n in
  for j = 0 to n - 1 do
    for i = 0 to j - 1 do
      set m j i (get m i j)
    done
  done;
  m

(* Lower-triangular with a well-conditioned diagonal (for TRSM/TRMM). *)
let random_lower ?(seed = 11) n =
  let m = random ~seed n n in
  for j = 0 to n - 1 do
    for i = 0 to n - 1 do
      if i < j then set m i j 0.
      else if i = j then set m i j (2.0 +. Float.abs (get m i j))
    done
  done;
  m

let random_upper ?seed n =
  let l = random_lower ?seed n in
  init n n (fun i j -> get l j i)

let max_abs_diff a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "shape mismatch";
  let worst = ref 0. in
  for j = 0 to a.cols - 1 do
    for i = 0 to a.rows - 1 do
      worst := Float.max !worst (Float.abs (get a i j -. get b i j))
    done
  done;
  !worst

let approx_equal ?(tol = 1e-9) a b =
  let scale =
    1.0
    +. Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0. a.data
  in
  max_abs_diff a b <= tol *. scale

let pp fmt m =
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      Fmt.pf fmt "%10.4f " (get m i j)
    done;
    Fmt.pf fmt "@\n"
  done
