(** Reference Level-3 BLAS.

    [dgemm_naive] is the semantics oracle.  [dgemm_blocked] implements
    Goto's block-partitioned algorithm — the one the paper's GEMM
    kernel plugs into — packing A and B into the exact layouts the
    generated micro-kernel expects and invoking a micro-kernel callback
    per packed pair (by default the reference micro-kernel; in tests,
    the simulated generated assembly).

    SYMM, SYRK, SYR2K, TRMM and TRSM follow the standard cast-onto-GEMM
    decompositions of Goto & van de Geijn; TRSM's small triangular
    solves do not map onto GEMM — the structural reason AUGEM loses
    only TRSM in the paper's Table 6. *)

val dgemm_naive : alpha:float -> beta:float -> Matrix.t -> Matrix.t -> Matrix.t -> unit

(** Pack an mc x kc block of A at (i0, l0) into the micro-kernel layout
    A[l*mc + i]. *)
val pack_a :
  Matrix.t -> i0:int -> l0:int -> mc:int -> kc:int -> float array -> unit

(** Pack a kc x nc block of B at (l0, j0) into the per-column stream
    layout B[j*kc + l]. *)
val pack_b :
  Matrix.t -> l0:int -> j0:int -> kc:int -> nc:int -> float array -> unit

(** Same block in the interleaved layout B[l*nc + j] required by the
    Shuf vectorization method. *)
val pack_b_interleaved :
  Matrix.t -> l0:int -> j0:int -> kc:int -> nc:int -> float array -> unit

(** The reference micro-kernel over packed operands (the semantics of
    the paper's Figure 12 kernel). *)
val micro_kernel_ref :
  mc:int ->
  kc:int ->
  nc:int ->
  pa:float array ->
  pb:float array ->
  c_data:float array ->
  c_off:int ->
  ldc:int ->
  unit

type micro_kernel =
  mc:int ->
  kc:int ->
  nc:int ->
  pa:float array ->
  pb:float array ->
  c_data:float array ->
  c_off:int ->
  ldc:int ->
  unit

type blocking = {
  bk_mc : int;
  bk_kc : int;
  bk_nc : int;
}

val default_blocking : blocking

(** C := alpha*A*B + beta*C by the Goto algorithm. *)
val dgemm_blocked :
  ?blocking:blocking ->
  ?kernel:micro_kernel ->
  alpha:float ->
  beta:float ->
  Matrix.t ->
  Matrix.t ->
  Matrix.t ->
  unit

val dgemm :
  ?blocking:blocking ->
  ?kernel:micro_kernel ->
  alpha:float ->
  beta:float ->
  Matrix.t ->
  Matrix.t ->
  Matrix.t ->
  unit

val transpose : Matrix.t -> Matrix.t

type side =
  | Left
  | Right

(** SYMM over a symmetric A (lower storage), cast onto GEMM. *)
val dsymm :
  ?blocking:blocking ->
  ?kernel:micro_kernel ->
  side:side ->
  alpha:float ->
  beta:float ->
  Matrix.t ->
  Matrix.t ->
  Matrix.t ->
  unit

(** C := alpha*A*A^T + beta*C, lower triangle. *)
val dsyrk :
  ?blocking:blocking ->
  ?kernel:micro_kernel ->
  alpha:float ->
  beta:float ->
  Matrix.t ->
  Matrix.t ->
  unit

(** C := alpha*(A*B^T + B*A^T) + beta*C, lower triangle. *)
val dsyr2k :
  ?blocking:blocking ->
  ?kernel:micro_kernel ->
  alpha:float ->
  beta:float ->
  Matrix.t ->
  Matrix.t ->
  Matrix.t ->
  unit

(** B := alpha*L*B, L lower-triangular; off-diagonal work through
    GEMM. *)
val dtrmm :
  ?blocking:blocking ->
  ?kernel:micro_kernel ->
  alpha:float ->
  Matrix.t ->
  Matrix.t ->
  unit

(** B := alpha*L^-1*B via the paper's two-step decomposition: small
    diagonal solves (not GEMM-accelerated) plus GEMM trailing
    updates. *)
val dtrsm :
  ?blocking:blocking ->
  ?kernel:micro_kernel ->
  alpha:float ->
  Matrix.t ->
  Matrix.t ->
  unit
