lib/autotune/tuner.mli: Augem_codegen Augem_ir Augem_machine Augem_sim Augem_transform
