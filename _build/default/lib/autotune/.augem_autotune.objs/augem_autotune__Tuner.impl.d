lib/autotune/tuner.ml: Ast Augem_codegen Augem_ir Augem_machine Augem_sim Augem_transform Hashtbl Kernels List Logs Pipeline Prefetch Printf Unroll
