(** Empirical tuning of the Optimized C Kernel Generator's parameters
    (paper section 2.1: the generator "automatically experiments with
    different unrolling and unroll&jam configurations and selects the
    best performing configurations based on the performance of their
    optimized code").

    The performance feedback is the cycle-level model of the generated
    assembly (the substitution for the paper's wall-clock measurements,
    see DESIGN.md).  Configurations that fail to generate — register
    pressure — are discarded, like build failures in a real tuning
    run. *)

type candidate = {
  cand_config : Augem_transform.Pipeline.config;
  cand_opts : Augem_codegen.Emit.options;
}

type result = {
  best : candidate;
  best_program : Augem_machine.Insn.program;
  best_score : float;  (** predicted MFLOPS on the reference workload *)
  visited : int;
  discarded : int;
}

(** The per-kernel search space. *)
val space_for : Augem_ir.Kernels.name -> candidate list

(** A representative point of the paper's evaluation sweep for each
    kernel. *)
val reference_workload : Augem_ir.Kernels.name -> Augem_sim.Perf.workload

exception No_viable_configuration of string

(** Generate one candidate; [None] when the configuration does not fit
    the machine (register pressure). *)
val generate_candidate :
  Augem_machine.Arch.t ->
  Augem_ir.Ast.kernel ->
  candidate ->
  Augem_machine.Insn.program option

(** Score a generated program on a workload; [None] when the program
    has no analyzable hot loop. *)
val score :
  Augem_machine.Arch.t ->
  Augem_machine.Insn.program ->
  Augem_sim.Perf.workload ->
  float option

(** Exhaustive search over the (given or default) space. *)
val tune :
  ?workload:Augem_sim.Perf.workload ->
  ?space:candidate list ->
  Augem_machine.Arch.t ->
  Augem_ir.Kernels.name ->
  result

(** Memoized {!tune} on the reference workload. *)
val tuned : Augem_machine.Arch.t -> Augem_ir.Kernels.name -> result
