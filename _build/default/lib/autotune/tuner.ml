(* Empirical tuning of the Optimized C Kernel Generator's parameters
   (paper section 2.1: "our Optimized C Kernel Generator automatically
   experiments with different unrolling and unroll&jam configurations
   and selects the best performing configurations based on the
   performance of their optimized code").

   The performance feedback is the cycle-level model of the generated
   assembly on the target architecture (the substitution for the
   paper's wall-clock measurements, documented in DESIGN.md).
   Configurations that fail to generate (register pressure) are
   discarded, like build failures in a real tuning run. *)

open Augem_ir
open Augem_transform
module Arch = Augem_machine.Arch
module Insn = Augem_machine.Insn

type candidate = {
  cand_config : Pipeline.config;
  cand_opts : Augem_codegen.Emit.options;
}

type result = {
  best : candidate;
  best_program : Insn.program;
  best_score : float; (* predicted MFLOPS on the reference workload *)
  visited : int;
  discarded : int; (* register-pressure or generation failures *)
}

let log_src = Logs.Src.create "augem.tuner" ~doc:"AUGEM auto-tuner"

module Log = (val Logs.src_log log_src)

(* --- search spaces ------------------------------------------------------ *)

(* prefetching variants first: on a score tie (common for
   compute-bound GEMM, where the model's memory leg is negligible) the
   first-seen maximum wins, and hand-written kernels always prefetch *)
let prefetch_opts =
  [ Some { Prefetch.pf_distance = 8; pf_stores = true };
    Some { Prefetch.pf_distance = 4; pf_stores = true };
    None ]

let gemm_space ?(packed = false) () : candidate list =
  let strategies =
    if packed then [ Augem_codegen.Plan.Prefer_auto; Augem_codegen.Plan.Prefer_shuf ]
    else [ Augem_codegen.Plan.Prefer_auto ]
  in
  List.concat_map
    (fun j ->
      List.concat_map
        (fun i ->
          List.concat_map
            (fun pf ->
              List.map
                (fun prefer ->
                  {
                    cand_config =
                      { Pipeline.default with jam = [ ("j", j); ("i", i) ];
                        prefetch = pf };
                    cand_opts =
                      { Augem_codegen.Emit.default_options with prefer };
                  })
                strategies)
            prefetch_opts)
        [ 4; 8; 12; 16 ])
    [ 1; 2; 4; 6 ]

let vector_space loop_var ~expand () : candidate list =
  List.concat_map
    (fun u ->
      List.map
        (fun pf ->
          {
            cand_config =
              {
                Pipeline.default with
                inner_unroll = Some (loop_var, u);
                expand_reduction = (if expand then Some u else None);
                prefetch = pf;
              };
            cand_opts = Augem_codegen.Emit.default_options;
          })
        prefetch_opts)
    [ 2; 4; 8; 16 ]

let space_for (k : Kernels.name) : candidate list =
  match k with
  | Kernels.Gemm -> gemm_space ()
  | Kernels.Gemv -> vector_space "j" ~expand:false ()
  | Kernels.Axpy -> vector_space "i" ~expand:false ()
  | Kernels.Dot -> vector_space "i" ~expand:true ()
  | Kernels.Ger -> vector_space "i" ~expand:false ()
  | Kernels.Scal -> vector_space "i" ~expand:false ()
  | Kernels.Copy -> vector_space "i" ~expand:false ()

(* Reference workload per kernel (a representative point of the
   evaluation sweeps). *)
let reference_workload (k : Kernels.name) : Augem_sim.Perf.workload =
  match k with
  | Kernels.Gemm -> Augem_sim.Perf.W_gemm { m = 4096; n = 4096; k = 256 }
  | Kernels.Gemv -> Augem_sim.Perf.W_gemv { m = 4096; n = 4096 }
  | Kernels.Axpy -> Augem_sim.Perf.W_axpy { n = 150_000 }
  | Kernels.Dot -> Augem_sim.Perf.W_dot { n = 150_000 }
  | Kernels.Ger -> Augem_sim.Perf.W_gemv { m = 4096; n = 4096 }
  | Kernels.Scal -> Augem_sim.Perf.W_axpy { n = 150_000 }
  | Kernels.Copy -> Augem_sim.Perf.W_axpy { n = 150_000 }

(* --- the loop ----------------------------------------------------------- *)

exception No_viable_configuration of string

let generate_candidate (arch : Arch.t) (kernel : Ast.kernel) (c : candidate) :
    Insn.program option =
  match
    let optimized = Pipeline.apply kernel c.cand_config in
    let prog =
      Augem_codegen.Emit.generate ~arch ~opts:c.cand_opts optimized
    in
    Augem_codegen.Schedule.run arch prog
  with
  | prog -> Some prog
  | exception Augem_codegen.Regfile.Out_of_registers _ -> None
  | exception Augem_codegen.Gpralloc.Gpr_error _ -> None
  | exception Augem_codegen.Ctx.Codegen_error _ -> None
  | exception Unroll.Unroll_error _ -> None

let score (arch : Arch.t) (prog : Insn.program) (w : Augem_sim.Perf.workload) :
    float option =
  match Augem_sim.Perf.predict arch prog w with
  | e -> Some e.Augem_sim.Perf.e_mflops
  | exception Augem_sim.Perf.No_hot_loop _ -> None

let tune ?(workload : Augem_sim.Perf.workload option)
    ?(space : candidate list option) (arch : Arch.t) (name : Kernels.name) :
    result =
  let kernel = Kernels.kernel_of_name name in
  let workload =
    match workload with Some w -> w | None -> reference_workload name
  in
  let space = match space with Some s -> s | None -> space_for name in
  let visited = ref 0 and discarded = ref 0 in
  let best = ref None in
  List.iter
    (fun cand ->
      incr visited;
      match generate_candidate arch kernel cand with
      | None -> incr discarded
      | Some prog -> (
          match score arch prog workload with
          | None -> incr discarded
          | Some s ->
              Log.debug (fun m ->
                  m "%s/%s %s -> %.0f MFLOPS" arch.Arch.name
                    (Kernels.name_to_string name)
                    (Pipeline.config_to_string cand.cand_config)
                    s);
              (match !best with
              | Some (_, _, s') when s' >= s -> ()
              | _ -> best := Some (cand, prog, s))))
    space;
  match !best with
  | None ->
      raise
        (No_viable_configuration
           (Printf.sprintf "%s on %s" (Kernels.name_to_string name)
              arch.Arch.name))
  | Some (cand, prog, s) ->
      {
        best = cand;
        best_program = prog;
        best_score = s;
        visited = !visited;
        discarded = !discarded;
      }

(* Memoized tuning: the sweep benchmarks call this per (arch, kernel). *)
let cache : (string * string, result) Hashtbl.t = Hashtbl.create 8

let tuned (arch : Arch.t) (name : Kernels.name) : result =
  let key = (arch.Arch.name, Kernels.name_to_string name) in
  match Hashtbl.find_opt cache key with
  | Some r -> r
  | None ->
      let r = tune arch name in
      Hashtbl.replace cache key r;
      r
