(* Fresh-name generation for transformation passes: collision-free with
   respect to everything already named in the kernel. *)

module SS = Set.Make (String)

open Augem_ir.Ast

let rec names_of_stmt acc = function
  | Decl (_, v, _) -> SS.add v acc
  | Assign (Lvar v, _) -> SS.add v acc
  | Assign (Lindex (a, _), _) -> SS.add a acc
  | For (h, body) -> List.fold_left names_of_stmt (SS.add h.loop_var acc) body
  | If (_, _, _, t, f) ->
      List.fold_left names_of_stmt (List.fold_left names_of_stmt acc t) f
  | Prefetch (_, base, _) -> SS.add base acc
  | Comment _ -> acc
  | Tagged (_, body) -> List.fold_left names_of_stmt acc body

let names_of_kernel (k : kernel) : SS.t =
  let acc = List.fold_left (fun s p -> SS.add p.p_name s) SS.empty k.k_params in
  List.fold_left names_of_stmt acc k.k_body

type t = {
  mutable used : SS.t;
  counters : (string, int) Hashtbl.t;
}

let create (k : kernel) : t =
  { used = names_of_kernel k; counters = Hashtbl.create 8 }

(* [fresh t base] returns [base0], [base1], ... skipping taken names. *)
let fresh (t : t) (base : string) : string =
  let rec go n =
    let candidate = base ^ string_of_int n in
    if SS.mem candidate t.used then go (n + 1)
    else (
      Hashtbl.replace t.counters base (n + 1);
      t.used <- SS.add candidate t.used;
      candidate)
  in
  go (Option.value ~default:0 (Hashtbl.find_opt t.counters base))

(* Reserve an exact name; returns a suffixed variant on collision. *)
let claim (t : t) (name : string) : string =
  if SS.mem name t.used then fresh t name
  else (
    t.used <- SS.add name t.used;
    name)
