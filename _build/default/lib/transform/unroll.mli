(** Loop unrolling and unroll&jam — the register-blocking
    transformations of the Optimized C Kernel Generator (paper section
    2.1).  Both emit a remainder loop when the trip count is not
    statically divisible by the factor. *)

exception Unroll_error of string

(** Unroll loop [loop_var] by [factor] (innermost loops): the body is
    replicated with the loop variable offset, accumulators carried
    sequentially. *)
val unroll :
  Augem_ir.Ast.kernel -> loop_var:string -> factor:int -> Augem_ir.Ast.kernel

(** Unroll&jam an outer loop: replicate its body per unrolled
    iteration, scalar-expand the scalars it defines ([res] becomes
    [res_0], [res_1], ...), and fuse the replicated inner loops. *)
val unroll_and_jam :
  Augem_ir.Ast.kernel -> loop_var:string -> factor:int -> Augem_ir.Ast.kernel

(** Rewrite each scalar accumulated several times per iteration of
    [loop_var] into [ways] round-robin partial accumulators, zeroed
    before the loop and summed after it.  Reassociates the
    floating-point reduction — standard kernel practice, and the
    prerequisite for vectorizing DOT-style loops. *)
val expand_accumulators :
  Augem_ir.Ast.kernel -> loop_var:string -> ways:int -> Augem_ir.Ast.kernel
