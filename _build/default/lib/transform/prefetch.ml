(* Data prefetching: the last source-to-source optimization of the
   Optimized C Kernel Generator.  For every derived pointer that a loop
   advances (the increments placed by strength reduction), a software
   prefetch of the data [distance] iterations ahead is inserted at the
   top of that loop's body — matching Figure 13, where the C pointers
   are prefetched in the i-loop and the A/B streams in the l-loop. *)

open Augem_ir
open Ast

type config = {
  pf_distance : int; (* iterations ahead *)
  pf_stores : bool; (* also prefetch pointers that are stored through *)
}

let default_config = { pf_distance = 8; pf_stores = true }

module SS = Set.Make (String)

(* Pointers incremented by a statement of the form [p = p + e]. *)
let increment_of = function
  | Assign (Lvar p, Binop (Add, Var p', inc)) when String.equal p p' ->
      Some (p, inc)
  | Decl _ | Assign _ | For _ | If _ | Prefetch _ | Comment _ | Tagged _ ->
      None

(* Pointers stored through anywhere in a block (write streams). *)
let rec stored_pointers acc = function
  | [] -> acc
  | Assign (Lindex (a, _), _) :: rest -> stored_pointers (SS.add a acc) rest
  | (For (_, b) | Tagged (_, b)) :: rest ->
      stored_pointers (stored_pointers acc b) rest
  | If (_, _, _, t, f) :: rest ->
      stored_pointers (stored_pointers (stored_pointers acc t) f) rest
  | (Decl _ | Assign (Lvar _, _) | Prefetch _ | Comment _) :: rest ->
      stored_pointers acc rest

let pointer_decls (k : kernel) : SS.t =
  let acc =
    List.fold_left
      (fun s p -> match p.p_type with Ptr _ -> SS.add p.p_name s | _ -> s)
      SS.empty k.k_params
  in
  let rec go acc = function
    | [] -> acc
    | Decl (Ptr _, v, _) :: rest -> go (SS.add v acc) rest
    | (For (_, b) | Tagged (_, b)) :: rest -> go (go acc b) rest
    | If (_, _, _, t, f) :: rest -> go (go (go acc t) f) rest
    | (Decl _ | Assign _ | Prefetch _ | Comment _) :: rest -> go acc rest
  in
  go acc k.k_body

let insert (k : kernel) (cfg : config) : kernel =
  let pointers = pointer_decls k in
  let rec go_block stmts =
    List.map
      (fun s ->
        match s with
        | For (h, body) ->
            let body = go_block body in
            let incremented =
              List.filter_map
                (fun s ->
                  match increment_of s with
                  | Some (p, inc) when SS.mem p pointers -> Some (p, inc)
                  | _ -> None)
                body
            in
            let writes = stored_pointers SS.empty body in
            let prefetches =
              List.filter_map
                (fun (p, inc) ->
                  let is_write = SS.mem p writes in
                  if is_write && not cfg.pf_stores then None
                  else
                    let hint =
                      if is_write then Prefetch_write else Prefetch_read
                    in
                    let dist =
                      Simplify.simplify_expr
                        (Binop (Mul, Int_lit cfg.pf_distance, inc))
                    in
                    Some (Prefetch (hint, p, dist)))
                incremented
            in
            For (h, prefetches @ body)
        | If (a, c, b, t, f) -> If (a, c, b, go_block t, go_block f)
        | Tagged (tag, body) -> Tagged (tag, go_block body)
        | Decl _ | Assign _ | Prefetch _ | Comment _ -> s)
      stmts
  in
  if cfg.pf_distance <= 0 then k else { k with k_body = go_block k.k_body }
