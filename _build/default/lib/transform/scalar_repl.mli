(** Scalar replacement: lowers compound floating-point assignments to
    the three-address form the Template Identifier matches, producing
    the paper's canonical instruction sequences exactly (mmCOMP,
    mmSTORE, mvCOMP — Figure 3 — plus the svSCAL extension shape).
    Integer and pointer assignments are left alone; temporaries are
    declared at the top of the kernel. *)

val run : Augem_ir.Ast.kernel -> Augem_ir.Ast.kernel
