lib/transform/strength_reduction.mli: Augem_ir
