lib/transform/pipeline.ml: Ast Augem_ir List Prefetch Printf Scalar_repl Simplify Strength_reduction String Typecheck Unroll
