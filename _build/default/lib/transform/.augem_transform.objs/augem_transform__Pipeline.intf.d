lib/transform/pipeline.mli: Augem_ir Prefetch
