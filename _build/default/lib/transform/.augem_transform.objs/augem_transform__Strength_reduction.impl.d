lib/transform/strength_reduction.ml: Ast Augem_analysis Augem_ir Hashtbl List Names Option Poly Printf Set Simplify String
