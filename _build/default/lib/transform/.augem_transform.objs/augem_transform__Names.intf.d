lib/transform/names.mli: Augem_ir
