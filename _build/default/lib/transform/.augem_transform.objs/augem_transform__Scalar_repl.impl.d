lib/transform/scalar_repl.ml: Ast Augem_ir Hashtbl List Names Simplify String
