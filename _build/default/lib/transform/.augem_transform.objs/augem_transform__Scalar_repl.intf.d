lib/transform/scalar_repl.mli: Augem_ir
