lib/transform/unroll.mli: Augem_ir
