lib/transform/script.mli: Pipeline
