lib/transform/prefetch.mli: Augem_ir
