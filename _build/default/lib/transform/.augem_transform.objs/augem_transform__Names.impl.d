lib/transform/names.ml: Augem_ir Hashtbl List Option Set String
