lib/transform/prefetch.ml: Ast Augem_ir List Set Simplify String
