lib/transform/unroll.ml: Ast Augem_analysis Augem_ir Fmt Hashtbl List Names Option Printf Set Simplify String
