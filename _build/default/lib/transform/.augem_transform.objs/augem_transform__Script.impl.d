lib/transform/script.ml: Buffer Fmt List Pipeline Prefetch Printf String
