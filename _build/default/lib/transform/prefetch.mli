(** Data prefetching: for every derived pointer a loop advances (the
    increments placed by strength reduction), a software prefetch of
    the data [pf_distance] iterations ahead is inserted at the top of
    that loop's body — matching paper Figure 13, where the C pointers
    are prefetched in the i loop and the A/B streams in the l loop. *)

type config = {
  pf_distance : int;  (** iterations ahead *)
  pf_stores : bool;  (** also prefetch pointers that are stored through *)
}

val default_config : config
(** Distance 8, stores included. *)

val insert : Augem_ir.Ast.kernel -> config -> Augem_ir.Ast.kernel
