(* The Optimized C Kernel Generator (paper section 2.1): applies the
   five source-to-source optimizations in order — loop unroll&jam, loop
   unrolling, strength reduction, scalar replacement and data
   prefetching — under a tuning configuration that the auto-tuner
   searches over. *)

open Augem_ir

type config = {
  jam : (string * int) list;
      (* outer loops to unroll&jam, applied in list order *)
  inner_unroll : (string * int) option; (* innermost loop unrolling *)
  expand_reduction : int option;
      (* partial-accumulator expansion of the unrolled loop's
         reductions (ways); reassociates FP sums *)
  strength_reduce : bool;
  scalar_replace : bool;
  prefetch : Prefetch.config option;
}

let default =
  {
    jam = [];
    inner_unroll = None;
    expand_reduction = None;
    strength_reduce = true;
    scalar_replace = true;
    prefetch = Some Prefetch.default_config;
  }

let config_to_string (c : config) : string =
  let jam =
    c.jam |> List.map (fun (v, f) -> Printf.sprintf "%s:%d" v f)
    |> String.concat ","
  in
  Printf.sprintf "jam=[%s] unroll=%s sr=%b scalar=%b pf=%s"
    jam
    (match c.inner_unroll with
    | None -> "-"
    | Some (v, f) -> Printf.sprintf "%s:%d" v f)
    c.strength_reduce c.scalar_replace
    (match c.prefetch with
    | None -> "-"
    | Some p -> string_of_int p.Prefetch.pf_distance)

let apply (k : Ast.kernel) (c : config) : Ast.kernel =
  let k =
    List.fold_left
      (fun k (loop_var, factor) -> Unroll.unroll_and_jam k ~loop_var ~factor)
      k c.jam
  in
  let k =
    match c.inner_unroll with
    | None -> k
    | Some (loop_var, factor) -> (
        let k = Unroll.unroll k ~loop_var ~factor in
        match c.expand_reduction with
        | None -> k
        | Some ways -> Unroll.expand_accumulators k ~loop_var ~ways)
  in
  let k = if c.strength_reduce then Strength_reduction.run k else k in
  let k = if c.scalar_replace then Scalar_repl.run k else k in
  let k =
    match c.prefetch with None -> k | Some cfg -> Prefetch.insert k cfg
  in
  let k = Simplify.simplify_kernel k in
  Typecheck.check_kernel k;
  k
