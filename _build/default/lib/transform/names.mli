(** Fresh-name generation for transformation passes, collision-free
    against everything already named in a kernel. *)

type t

val create : Augem_ir.Ast.kernel -> t

(** [fresh t base] returns [base0], [base1], ... skipping names already
    taken. *)
val fresh : t -> string -> string

(** Reserve an exact name; returns a suffixed variant on collision. *)
val claim : t -> string -> string
