(* Loop unrolling and unroll&jam (register blocking), the first two
   source-to-source optimizations of the Optimized C Kernel Generator
   (paper section 2.1).  Both generate a remainder loop when the trip
   count is not statically known to be divisible by the factor. *)

module SS = Set.Make (String)

open Augem_ir
open Ast

exception Unroll_error of string

let err fmt = Fmt.kstr (fun s -> raise (Unroll_error s)) fmt

let const_step h =
  match Simplify.simplify_expr h.loop_step with
  | Int_lit n when n > 0 -> n
  | _ -> err "loop %s does not have a positive constant step" h.loop_var

(* Is the trip count statically a multiple of [factor]?  True when both
   bound and init are integer literals and the loop shape is canonical
   (cmp = Lt). *)
let statically_divisible h ~factor =
  match
    ( h.loop_cmp,
      Simplify.simplify_expr h.loop_init,
      Simplify.simplify_expr h.loop_bound )
  with
  | Lt, Int_lit lo, Int_lit hi ->
      let step = const_step h in
      let trip = if hi > lo then (hi - lo + step - 1) / step else 0 in
      trip mod factor = 0
  | _ -> false

(* Shared remainder-loop construction: continue from the current value
   of the loop variable with the original body. *)
let remainder_loop h body =
  For ({ h with loop_init = Var h.loop_var }, body)

let main_header h ~factor =
  let step = const_step h in
  let bound =
    Simplify.simplify_expr
      (Binop (Sub, h.loop_bound, Int_lit ((factor - 1) * step)))
  in
  { h with loop_bound = bound; loop_step = Int_lit (step * factor) }

(* --- Plain unrolling (innermost loops) ------------------------------- *)

(* Replace uses of the loop variable by [var + c*step] in each copy.
   No scalar renaming: accumulators written by every copy are carried
   sequentially, exactly as in the scalar source. *)
let unroll_body h body ~factor =
  let step = const_step h in
  List.concat
    (List.init factor (fun c ->
         let off = c * step in
         if off = 0 then body
         else
           List.map
             (fun s ->
               Simplify.simplify_stmt
                 (subst_stmt h.loop_var (Binop (Add, Var h.loop_var, Int_lit off)) s))
             body))

(* Unroll loop [target] by [factor].  When the trip count is not
   statically divisible we emit main + remainder as sibling loops,
   which requires handling at the statement-list level. *)
let rec unroll_in_block target factor stmts =
  List.concat_map
    (fun s ->
      match s with
      | For (h, body) when String.equal h.loop_var target ->
          let body = unroll_in_block target factor body in
          if factor <= 1 then [ For (h, body) ]
          else
            let main = For (main_header h ~factor, unroll_body h body ~factor) in
            if statically_divisible h ~factor then [ main ]
            else [ main; remainder_loop h body ]
      | For (h, body) -> [ For (h, unroll_in_block target factor body) ]
      | If (a, c, b, t, f) ->
          [ If (a, c, b, unroll_in_block target factor t,
                unroll_in_block target factor f) ]
      | Tagged (tag, body) -> [ Tagged (tag, unroll_in_block target factor body) ]
      | Decl _ | Assign _ | Prefetch _ | Comment _ -> [ s ])
    stmts

let unroll (k : kernel) ~loop_var ~factor : kernel =
  if factor < 1 then err "unroll factor must be >= 1";
  { k with k_body = unroll_in_block loop_var factor k.k_body }

(* --- reduction accumulator expansion ---------------------------------- *)

(* Scalars accumulated across iterations ([v = v + e] with [v] defined
   outside the loop) serialize the unrolled body on the add latency.
   [expand_accumulators] rewrites each such [v] into [factor] partial
   accumulators [v_0..v_{factor-1}] used round-robin by the unrolled
   copies, initialized to zero before the loop and summed back into [v]
   after it.  This reassociates the floating-point reduction — standard
   practice in hand-written kernels, and a prerequisite for
   vectorizing DOT-style loops. *)

let is_accumulation v = function
  | Assign (Lvar v', Binop (Add, Var v'', _)) ->
      String.equal v v' && String.equal v v''
  | _ -> false

let expand_accumulators (k : kernel) ~loop_var ~ways : kernel =
  if ways < 1 then err "expansion ways must be >= 1";
  let names = Names.create k in
  let decls = ref [] in
  let expand_loop h body =
    let declared_inside =
      List.filter_map (function Decl (_, v, _) -> Some v | _ -> None) body
      |> SS.of_list
    in
    let candidates =
      List.filter_map
        (function
          | Assign (Lvar v, Binop (Add, Var v', _))
            when String.equal v v' && not (SS.mem v declared_inside) ->
              Some v
          | _ -> None)
        body
      |> List.sort_uniq String.compare
    in
    (* keep only scalars whose every update in the body is an
       accumulation and that are not read by other statements *)
    let pure v =
      List.for_all
        (fun s ->
          match s with
          | Assign (Lvar v', _) when String.equal v v' -> is_accumulation v s
          | Assign (_, e) -> not (List.mem v (expr_vars e))
          | Decl (_, _, Some e) -> not (List.mem v (expr_vars e))
          | For _ | If _ -> false (* conservative: no nested control *)
          | Decl (_, _, None) | Prefetch _ | Comment _ | Tagged _ -> true)
        body
    in
    (* expansion only pays off when a variable is accumulated several
       times per iteration (i.e. in the unrolled main loop, not in the
       single-update remainder loop) *)
    let update_count v =
      List.length (List.filter (is_accumulation v) body)
    in
    let accs = List.filter (fun v -> pure v && update_count v >= 2) candidates in
    if accs = [] then [ For (h, body) ]
    else
      let parts =
        List.map
          (fun v ->
            let ps =
              List.init ways (fun c ->
                  Names.claim names (Printf.sprintf "%s_p%d" v c))
            in
            decls := List.map (fun p -> Decl (Double, p, None)) ps @ !decls;
            (v, ps))
          accs
      in
      let counter = Hashtbl.create 4 in
      let body' =
        List.map
          (fun s ->
            match s with
            | Assign (Lvar v, Binop (Add, Var v', e))
              when String.equal v v' && List.mem_assoc v parts ->
                let c =
                  Option.value ~default:0 (Hashtbl.find_opt counter v)
                in
                Hashtbl.replace counter v ((c + 1) mod ways);
                let p = List.nth (List.assoc v parts) c in
                Assign (Lvar p, Binop (Add, Var p, e))
            | s -> s)
          body
      in
      let inits =
        List.concat_map
          (fun (_, ps) -> List.map (fun p -> Assign (Lvar p, Double_lit 0.)) ps)
          parts
      in
      let sums =
        List.concat_map
          (fun (v, ps) ->
            List.map (fun p -> Assign (Lvar v, Binop (Add, Var v, Var p))) ps)
          parts
      in
      inits @ [ For (h, body') ] @ sums
  in
  let rec go_block stmts =
    List.concat_map
      (fun s ->
        match s with
        | For (h, body) when String.equal h.loop_var loop_var ->
            expand_loop h (go_block body)
        | For (h, body) -> [ For (h, go_block body) ]
        | If (a, c, b, t, f) -> [ If (a, c, b, go_block t, go_block f) ]
        | Tagged (tag, body) -> [ Tagged (tag, go_block body) ]
        | Decl _ | Assign _ | Prefetch _ | Comment _ -> [ s ])
      stmts
  in
  let body = go_block k.k_body in
  { k with k_body = List.rev !decls @ body }

(* --- Unroll & jam ----------------------------------------------------- *)

(* Scalars assigned inside the jammed body must be expanded (one copy
   per unrolled iteration): [res] becomes [res_0], [res_1], ... and new
   declarations are emitted before the loop.  Loop variables of inner
   loops are shared between copies, which is what makes jamming legal
   for our canonical counted loops. *)

let rec inner_loop_vars stmts =
  List.fold_left
    (fun acc s ->
      match s with
      | For (h, body) -> SS.union (SS.add h.loop_var acc) (inner_loop_vars body)
      | If (_, _, _, t, f) ->
          SS.union acc (SS.union (inner_loop_vars t) (inner_loop_vars f))
      | Tagged (_, body) -> SS.union acc (inner_loop_vars body)
      | Decl _ | Assign _ | Prefetch _ | Comment _ -> acc)
    SS.empty stmts

(* Jam [copies] (lists of statements with identical shape) by walking
   them in lockstep: matching inner loops are fused, other statements
   are emitted copy-major. *)
let rec jam (copies : stmt list list) : stmt list =
  match copies with
  | [] -> []
  | first :: _ ->
      if List.exists (fun c -> List.length c <> List.length first) copies then
        err "unroll&jam: copies diverged in shape";
      if first = [] then []
      else
        let heads = List.map List.hd copies in
        let tails = List.map List.tl copies in
        let fused =
          match heads with
          | For (h0, _) :: _
            when List.for_all
                   (function For (h, _) -> h = h0 | _ -> false)
                   heads ->
              let bodies =
                List.map
                  (function For (_, b) -> b | _ -> assert false)
                  heads
              in
              [ For (h0, jam bodies) ]
          | _ -> heads
        in
        fused @ jam tails

let unroll_and_jam (k : kernel) ~loop_var ~factor : kernel =
  if factor < 1 then err "unroll&jam factor must be >= 1";
  let names = Names.create k in
  let new_decls = ref [] in
  let rec go_block stmts =
    List.concat_map
      (fun s ->
        match s with
        | For (h, body) when String.equal h.loop_var loop_var ->
            let body = go_block body in
            if factor = 1 then [ For (h, body) ]
            else begin
              let step = const_step h in
              (* Scalars to expand: assigned in the body but not inner
                 loop counters. *)
              let inner_vars = inner_loop_vars body in
              let expanded =
                SS.diff (Augem_analysis.Liveness.defs_block body) inner_vars
                |> SS.elements
              in
              let copy c =
                let off = c * step in
                let substituted =
                  List.map
                    (fun s ->
                      if off = 0 then s
                      else
                        subst_stmt h.loop_var
                          (Binop (Add, Var h.loop_var, Int_lit off))
                          s)
                    body
                in
                (* rename expanded scalars for this copy *)
                List.fold_left
                  (fun stmts v ->
                    let v' = Names.claim names (Printf.sprintf "%s_%d" v c) in
                    new_decls := (v, v') :: !new_decls;
                    List.map (rename_stmt ~from:v ~into:v') stmts)
                  substituted expanded
                |> List.map Simplify.simplify_stmt
              in
              let copies = List.init factor copy in
              let main = For (main_header h ~factor, jam copies) in
              if statically_divisible h ~factor then [ main ]
              else [ main; remainder_loop h body ]
            end
        | For (h, body) -> [ For (h, go_block body) ]
        | If (a, c, b, t, f) -> [ If (a, c, b, go_block t, go_block f) ]
        | Tagged (tag, body) -> [ Tagged (tag, go_block body) ]
        | Decl _ | Assign _ | Prefetch _ | Comment _ -> [ s ])
      stmts
  in
  let body = go_block k.k_body in
  (* Declare the expanded scalars with the type of their original. *)
  let type_of_decl name =
    let rec find stmts =
      List.find_map
        (function
          | Decl (t, v, _) when String.equal v name -> Some t
          | For (_, b) | Tagged (_, b) -> find b
          | If (_, _, _, t, f) -> ( match find t with Some x -> Some x | None -> find f)
          | Decl _ | Assign _ | Prefetch _ | Comment _ -> None)
        stmts
    in
    match find k.k_body with
    | Some t -> t
    | None -> (
        match List.find_opt (fun p -> String.equal p.p_name name) k.k_params with
        | Some p -> p.p_type
        | None -> Double)
  in
  let decls =
    List.rev_map (fun (orig, v') -> Decl (type_of_decl orig, v', None)) !new_decls
  in
  { k with k_body = decls @ body }
