(** Verification harness: runs generated assembly kernels on the
    functional simulator against the reference BLAS on randomized
    inputs — the end-to-end correctness gate for every kernel,
    architecture and tuning configuration. *)

(** Problem shape for the matrix kernels. *)
type shape = {
  sh_m : int;
  sh_n : int;
  sh_k : int;
  sh_ld_slack : int;  (** extra leading-dimension padding *)
}

val default_shape : shape

type outcome = {
  ok : bool;
  detail : string;  (** "ok" or a failure description *)
  sim_result : Augem_sim.Exec_sim.result option;
}

val verify_gemm :
  ?packed:bool ->
  ?seed:int ->
  ?shape:shape ->
  Augem_machine.Insn.program ->
  outcome

val verify_gemv :
  ?seed:int -> ?shape:shape -> Augem_machine.Insn.program -> outcome

val verify_axpy :
  ?seed:int -> ?n:int -> ?alpha:float -> Augem_machine.Insn.program -> outcome

val verify_dot : ?seed:int -> ?n:int -> Augem_machine.Insn.program -> outcome

val verify_ger :
  ?seed:int -> ?shape:shape -> Augem_machine.Insn.program -> outcome

val verify_scal :
  ?seed:int -> ?n:int -> ?alpha:float -> Augem_machine.Insn.program -> outcome

val verify_copy : ?seed:int -> ?n:int -> Augem_machine.Insn.program -> outcome

(** Verify a program implementing the named kernel over several shapes,
    including ones that exercise every remainder loop. *)
val verify :
  Augem_ir.Kernels.name -> Augem_machine.Insn.program -> outcome
