lib/core/harness.ml: Array Augem_blas Augem_ir Augem_machine Augem_sim Float Kernels Printf
