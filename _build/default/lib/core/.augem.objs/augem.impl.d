lib/core/augem.ml: Augem_analysis Augem_autotune Augem_baselines Augem_blas Augem_codegen Augem_ir Augem_machine Augem_sim Augem_templates Augem_transform Harness Option Report
