lib/core/harness.mli: Augem_ir Augem_machine Augem_sim
