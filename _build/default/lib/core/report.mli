(** Table and data-series formatting for the benchmark harness: the
    same rows and series the paper's figures and tables report. *)

type series = {
  s_label : string;
  s_points : (int * float) list;  (** (size, MFLOPS) *)
}

val pp_series_table :
  Format.formatter -> title:string -> x_label:string -> series list -> unit

val mean : float list -> float
val series_mean : series -> float

(** "AUGEM outperforms X by p%" rows, as the paper's prose quotes. *)
val pp_speedups : Format.formatter -> baseline:string -> series list -> unit

(** Plain named-row table (Tables 5 and 6). *)
val pp_table :
  Format.formatter ->
  title:string ->
  header:string list ->
  (string * string list) list ->
  unit

(** Horizontal mean-value bars: a terminal rendition of a figure. *)
val pp_bars : Format.formatter -> series list -> unit
