(* SIMD register allocation following the paper (section 3.1):

   - registers are partitioned into per-array queues, R/m registers per
     base array, so values from different arrays never share a physical
     register and no false dependences are introduced;
   - the global [reg_table] remembers the variable-to-register
     assignment across template regions (Figure 2);
   - a register is released only when every scalar resident in it is no
     longer live.

   A scalar double lives in one lane of a register ([Lane]); a value
   replicated across all lanes (an mv [scal]) is a [Splat].  When a
   class queue is exhausted we borrow from the temporary queue and then
   from any free register — a relaxation of the strict R/m split that
   large register blockings require; configurations that still do not
   fit raise [Out_of_registers] and are discarded by the tuner. *)

exception Out_of_registers of string

type residence =
  | Lane of Augem_machine.Reg.vreg * int
  | Splat of Augem_machine.Reg.vreg

type t = {
  nregs : int;
  owners : (string list * bool) array; (* vars resident; reserved flag *)
  table : (string, residence) Hashtbl.t; (* the paper's reg_table *)
  queues : (string * int list) list; (* class -> preferred registers *)
  class_of_var : (string, string) Hashtbl.t;
}

let classes (t : t) = List.map fst t.queues

(* Partition [nregs] among the given classes, R/m each, leftovers to
   the "tmp" class. *)
let create ~nregs ~(array_classes : string list) : t =
  let m = max 1 (List.length array_classes) in
  let per = max 1 (nregs / (m + 1)) in
  let next = ref 0 in
  let take n =
    let lo = !next in
    let hi = min nregs (lo + n) in
    next := hi;
    List.init (hi - lo) (fun i -> lo + i)
  in
  let queues = List.map (fun c -> (c, take per)) array_classes in
  let tmp = ("tmp", List.init (nregs - !next) (fun i -> !next + i)) in
  {
    nregs;
    owners = Array.make nregs ([], false);
    table = Hashtbl.create 32;
    queues = queues @ [ tmp ];
    class_of_var = Hashtbl.create 32;
  }

let is_free t r =
  let owners, reserved = t.owners.(r) in
  owners = [] && not reserved

let queue_of t cls =
  match List.assoc_opt cls t.queues with Some q -> q | None -> []

(* Reserve a register for internal use (no named variable), e.g. a
   vector temporary inside a template expansion. *)
let alloc_temp t ~cls : int =
  let candidates =
    queue_of t cls @ queue_of t "tmp" @ List.init t.nregs (fun i -> i)
  in
  match List.find_opt (is_free t) candidates with
  | Some r ->
      t.owners.(r) <- ([], true);
      r
  | None ->
      raise
        (Out_of_registers
           (Printf.sprintf "no free SIMD register for class %s" cls))

let free_temp t r =
  let owners, _ = t.owners.(r) in
  t.owners.(r) <- (owners, false)

(* Permanently pin a register that arrived holding a value (e.g. a
   double parameter in xmm0) for variable [var]. *)
let bind_incoming t ~var ~reg =
  t.owners.(reg) <- ([ var ], false);
  Hashtbl.replace t.table var (Lane (reg, 0))

let residence t var = Hashtbl.find_opt t.table var

let set_class t ~var ~cls = Hashtbl.replace t.class_of_var var cls

let class_for t var =
  match Hashtbl.find_opt t.class_of_var var with
  | Some c -> c
  | None -> "tmp"

(* Allocate a fresh register and bind [vars] to its lanes (in lane
   order).  Used for vector accumulators. *)
let alloc_lanes t ~cls ~(vars : string list) : int =
  let r = alloc_temp t ~cls in
  t.owners.(r) <- (vars, false);
  List.iteri (fun i v -> Hashtbl.replace t.table v (Lane (r, i))) vars;
  r

let alloc_scalar t ~var : int =
  let cls = class_for t var in
  let r = alloc_temp t ~cls in
  t.owners.(r) <- ([ var ], false);
  Hashtbl.replace t.table var (Lane (r, 0));
  r

let alloc_splat t ~var ~cls : int =
  let r = alloc_temp t ~cls in
  t.owners.(r) <- ([ var ], false);
  Hashtbl.replace t.table var (Splat r);
  r

(* Rebind a variable that moved (e.g. extracted lane). *)
let rebind t ~var ~(res : residence) =
  (match Hashtbl.find_opt t.table var with
  | Some (Lane (r, _)) | Some (Splat r) ->
      let owners, reserved = t.owners.(r) in
      let owners = List.filter (fun v -> not (String.equal v var)) owners in
      t.owners.(r) <- (owners, reserved)
  | None -> ());
  let r = match res with Lane (r, _) | Splat r -> r in
  let owners, reserved = t.owners.(r) in
  if not (List.mem var owners) then t.owners.(r) <- (var :: owners, reserved);
  Hashtbl.replace t.table var res

(* Release registers whose residents are all dead. *)
let release_dead t ~(live : string -> bool) =
  Array.iteri
    (fun r (owners, reserved) ->
      if owners <> [] && not (List.exists live owners) then begin
        List.iter (Hashtbl.remove t.table) owners;
        t.owners.(r) <- ([], reserved)
      end)
    t.owners

let free_count t =
  let n = ref 0 in
  Array.iteri (fun r _ -> if is_free t r then incr n) t.owners;
  !n

let dump t =
  let b = Buffer.create 128 in
  Array.iteri
    (fun r (owners, reserved) ->
      if owners <> [] || reserved then
        Buffer.add_string b
          (Printf.sprintf "v%d:%s%s " r (String.concat "," owners)
             (if reserved then "*" else "")))
    t.owners;
  Buffer.contents b
