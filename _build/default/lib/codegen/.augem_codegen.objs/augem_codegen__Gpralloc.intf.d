lib/codegen/gpralloc.mli: Augem_machine
