lib/codegen/regfile.mli: Augem_machine
