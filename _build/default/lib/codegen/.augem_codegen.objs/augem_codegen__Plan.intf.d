lib/codegen/plan.mli: Augem_machine Augem_templates
