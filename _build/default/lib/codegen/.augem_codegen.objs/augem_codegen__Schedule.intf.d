lib/codegen/schedule.mli: Augem_machine
