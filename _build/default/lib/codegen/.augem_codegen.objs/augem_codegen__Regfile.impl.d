lib/codegen/regfile.ml: Array Augem_machine Buffer Hashtbl List Printf String
