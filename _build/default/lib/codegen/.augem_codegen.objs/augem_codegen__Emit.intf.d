lib/codegen/emit.mli: Augem_ir Augem_machine Augem_templates Plan
