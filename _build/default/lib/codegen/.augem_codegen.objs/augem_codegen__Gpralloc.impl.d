lib/codegen/gpralloc.ml: Augem_machine Fmt Hashtbl Insn List Reg
