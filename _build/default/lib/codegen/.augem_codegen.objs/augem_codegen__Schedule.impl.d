lib/codegen/schedule.ml: Arch Array Augem_machine Depgraph Insn List
