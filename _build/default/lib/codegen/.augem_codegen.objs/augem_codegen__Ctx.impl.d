lib/codegen/ctx.ml: Arch Ast Augem_ir Augem_machine Fmt Gpralloc Hashtbl Insn Printf Reg Regfile
