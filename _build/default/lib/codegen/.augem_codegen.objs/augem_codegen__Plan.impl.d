lib/codegen/plan.ml: Augem_analysis Augem_machine Augem_templates Hashtbl List Option Printf String
