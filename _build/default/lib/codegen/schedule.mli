(** Instruction scheduling — the "Instruction Selection/Scheduling" leg
    of the Template Optimizer: a resource-constrained list scheduler
    applied per basic block, using the dependence graph and the
    architecture's latency/throughput tables.  The result is a
    dependence-equivalent reordering that hides load and multiply
    latencies, as a hand-tuned kernel would. *)

val schedule_block :
  Augem_machine.Arch.t ->
  Augem_machine.Insn.t list ->
  Augem_machine.Insn.t list

(** Schedule a whole program, block by block (labels, branches and
    stack operations are boundaries). *)
val run :
  Augem_machine.Arch.t ->
  Augem_machine.Insn.program ->
  Augem_machine.Insn.program
