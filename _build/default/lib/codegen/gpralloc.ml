(* General-purpose register allocation for integer scalars, loop
   counters, pointers and the incoming parameters.  On-demand
   allocation with spilling to stack home slots: when every register is
   busy the least-recently-used unpinned variable is evicted (stored to
   its home slot if dirty) and reloaded transparently on next use.
   Loop counters and pointers of the innermost loops are pinned by the
   emitter, so generated hot loops never spill in practice. *)

open Augem_machine

exception Gpr_error of string

let err fmt = Fmt.kstr (fun s -> raise (Gpr_error s)) fmt

type binding = {
  mutable bound : string option; (* variable currently in the register *)
  mutable temp : bool; (* held as an anonymous temporary *)
}

type var_state = {
  mutable home : int option; (* frame offset (negative, rbp-relative) *)
  mutable in_reg : Reg.gpr option;
  mutable dirty : bool; (* register value newer than home slot *)
  mutable last_use : int;
  mutable pinned : bool;
}

type t = {
  emit : Insn.t -> unit;
  regs : (Reg.gpr * binding) list;
  vars : (string, var_state) Hashtbl.t;
  mutable frame_bytes : int; (* home-slot area size *)
  mutable tick : int;
}

let create ~emit =
  {
    emit;
    regs = List.map (fun r -> (r, { bound = None; temp = false }))
        (List.filter (fun r -> r <> Reg.Rsp && r <> Reg.Rbp) Reg.all_gprs);
    vars = Hashtbl.create 32;
    frame_bytes = 0;
    tick = 0;
  }

let state t var =
  match Hashtbl.find_opt t.vars var with
  | Some s -> s
  | None ->
      let s =
        { home = None; in_reg = None; dirty = false; last_use = 0;
          pinned = false }
      in
      Hashtbl.replace t.vars var s;
      s

let touch t s =
  t.tick <- t.tick + 1;
  s.last_use <- t.tick

let home_slot t s =
  match s.home with
  | Some off -> off
  | None ->
      t.frame_bytes <- t.frame_bytes + 8;
      let off = -t.frame_bytes in
      s.home <- Some off;
      off

let home_mem t s = Insn.mem ~disp:(home_slot t s) Reg.Rbp

let binding_of t r = List.assoc r t.regs

(* Evict whatever occupies [r]. *)
let evict t r =
  let b = binding_of t r in
  (match b.bound with
  | None -> ()
  | Some var ->
      let s = state t var in
      if s.pinned then err "attempt to evict pinned variable %s" var;
      if s.dirty then begin
        t.emit (Insn.Storeq (home_mem t s, r));
        s.dirty <- false
      end;
      s.in_reg <- None);
  if b.temp then err "attempt to evict a live temporary register";
  b.bound <- None;
  b.temp <- false

(* Choose a register to allocate: free first, then LRU unpinned. *)
let pick_victim t ~avoid =
  let candidates =
    List.filter (fun (r, _) -> not (List.mem r avoid)) t.regs
  in
  let free =
    List.find_opt (fun (_, b) -> b.bound = None && not b.temp) candidates
  in
  match free with
  | Some (r, _) -> r
  | None ->
      let by_age =
        List.filter_map
          (fun (r, b) ->
            match b.bound with
            | Some v when not b.temp ->
                let s = state t v in
                if s.pinned then None else Some (s.last_use, r)
            | _ -> None)
          candidates
      in
      (match List.sort compare by_age with
      | (_, r) :: _ -> r
      | [] -> err "all general-purpose registers are pinned or temporary")

(* Bind an incoming parameter that already sits in [r]. *)
let bind_incoming t ~var ~reg =
  let b = binding_of t reg in
  b.bound <- Some var;
  b.temp <- false;
  let s = state t var in
  s.in_reg <- Some reg;
  s.dirty <- true;
  touch t s

(* Declare a parameter living on the caller's stack at [disp(%rbp)]. *)
let bind_stack_param t ~var ~disp =
  let s = state t var in
  s.home <- Some disp;
  s.dirty <- false;
  s.in_reg <- None

(* Ensure [var] is in a register, reloading from its home slot if
   spilled.  Fails if the variable was never defined. *)
let get t ?(avoid = []) var : Reg.gpr =
  let s = state t var in
  touch t s;
  match s.in_reg with
  | Some r -> r
  | None -> (
      match s.home with
      | None -> err "use of integer variable %s before definition" var
      | Some off ->
          let r = pick_victim t ~avoid in
          evict t r;
          t.emit (Insn.Loadq (r, Insn.mem ~disp:off Reg.Rbp));
          let b = binding_of t r in
          b.bound <- Some var;
          s.in_reg <- Some r;
          s.dirty <- false;
          r)

(* A register for defining (overwriting) [var]; no reload. *)
let def t ?(avoid = []) var : Reg.gpr =
  let s = state t var in
  touch t s;
  let r =
    match s.in_reg with
    | Some r -> r
    | None ->
        let r = pick_victim t ~avoid in
        evict t r;
        let b = binding_of t r in
        b.bound <- Some var;
        s.in_reg <- Some r;
        r
  in
  s.dirty <- true;
  r

let pin t var =
  let s = state t var in
  s.pinned <- true

let unpin t var =
  let s = state t var in
  s.pinned <- false

(* Anonymous temporary registers. *)
let alloc_temp t ?(avoid = []) () : Reg.gpr =
  let r = pick_victim t ~avoid in
  evict t r;
  let b = binding_of t r in
  b.temp <- true;
  r

let free_temp t r =
  let b = binding_of t r in
  if not b.temp then err "free of a non-temporary register";
  b.temp <- false;
  b.bound <- None

(* Spill every dirty unpinned variable back to memory (at control-flow
   joins).  Pinned variables keep their register across the join — both
   paths leave them in the same place — so they are never spilled or
   invalidated while pinned. *)
let spill_all t =
  List.iter
    (fun (r, b) ->
      match b.bound with
      | Some var ->
          let s = state t var in
          if s.dirty && not s.pinned then begin
            t.emit (Insn.Storeq (home_mem t s, r));
            s.dirty <- false
          end
      | None -> ())
    t.regs

(* Forget all unpinned register contents (after a label reached by a
   jump). *)
let invalidate_all t =
  List.iter
    (fun (_, b) ->
      match b.bound with
      | Some var ->
          let s = state t var in
          if not s.pinned then begin
            if s.dirty then err "invalidate with dirty variable %s" var;
            s.in_reg <- None;
            b.bound <- None
          end
      | None -> ())
    t.regs

let frame_bytes t = t.frame_bytes

(* Has [var] ever been given a value (register or home slot)?  Used to
   memoize loop-invariant synthetic expressions. *)
let is_defined t var =
  match Hashtbl.find_opt t.vars var with
  | Some s -> s.in_reg <> None || s.home <> None
  | None -> false

(* Variables currently pinned (for save/restore around loops). *)
let pinned_vars t =
  Hashtbl.fold (fun v s acc -> if s.pinned then v :: acc else acc) t.vars []


(* Forget a variable entirely: its register binding and home slot are
   dropped (the slot's stack space is not recycled).  Used to scope
   memoized loop invariants to the loop they were hoisted for. *)
let forget t var =
  match Hashtbl.find_opt t.vars var with
  | None -> ()
  | Some s ->
      (match s.in_reg with
      | Some r ->
          let b = binding_of t r in
          b.bound <- None
      | None -> ());
      Hashtbl.remove t.vars var
