(** The Assembly Kernel Generator and the Template Optimizer driver
    (paper Figure 2 and section 2.4).

    Takes a template-annotated kernel and an architecture specification
    and produces a complete x86-64 assembly function: template-tagged
    regions go to the specialized optimizers (SIMD vectorization by the
    Vdup / Shuf / elementwise strategies, per-array register queues,
    FMA3/FMA4 or Mul+Add selection per the paper's Tables 1-4); the
    rest of the low-level C — loop control, pointer updates, prefetches,
    leftover scalar code — is translated straightforwardly; the shared
    reg_table keeps allocation decisions consistent across both.

    Values live as follows: integer scalars and pointers in
    general-purpose registers (spillable to stack home slots), double
    scalars in SIMD register lanes (never spilled), vector accumulators
    in SIMD registers bound lane-per-scalar according to the
    {!Plan}. *)

type options = {
  prefer : Plan.prefer;  (** vectorization strategy preference *)
  max_width : Augem_machine.Insn.vwidth option;
      (** cap the vector width ([None] = the machine's) *)
}

val default_options : options

(** Configurations whose vector working set exceeds the register file
    raise {!Regfile.Out_of_registers}; the tuner discards them. *)
val generate_annotated :
  arch:Augem_machine.Arch.t ->
  ?opts:options ->
  Augem_templates.Matcher.akernel ->
  Augem_machine.Insn.program

(** Identify templates, then generate. *)
val generate :
  arch:Augem_machine.Arch.t ->
  ?opts:options ->
  Augem_ir.Ast.kernel ->
  Augem_machine.Insn.program
