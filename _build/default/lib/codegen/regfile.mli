(** SIMD register allocation following the paper (section 3.1):
    registers are partitioned into per-array queues (R/m per base
    array) so values from different arrays never share a register and
    no false dependences arise; the global reg_table remembers
    variable-to-register assignments across template regions; a
    register is released only when every scalar resident in it is
    dead.

    When a class queue is exhausted, allocation borrows from the
    temporary queue and then any free register — large register
    blockings need this relaxation.  Configurations that still do not
    fit raise {!Out_of_registers} and are discarded by the tuner. *)

exception Out_of_registers of string

(** Where a scalar double lives: one lane of a register, or replicated
    across all lanes (an mv/sv [scal]). *)
type residence =
  | Lane of Augem_machine.Reg.vreg * int
  | Splat of Augem_machine.Reg.vreg

type t

val create : nregs:int -> array_classes:string list -> t
val classes : t -> string list

(** Reserve a register for internal use (a vector temporary inside a
    template expansion); released with {!free_temp}. *)
val alloc_temp : t -> cls:string -> Augem_machine.Reg.vreg

val free_temp : t -> Augem_machine.Reg.vreg -> unit

(** Pin a register that arrived holding a value (e.g. a double
    parameter in xmm0). *)
val bind_incoming : t -> var:string -> reg:Augem_machine.Reg.vreg -> unit

val residence : t -> string -> residence option
val set_class : t -> var:string -> cls:string -> unit
val class_for : t -> string -> string

(** Allocate a fresh register binding [vars] to its lanes in order
    (vector accumulators). *)
val alloc_lanes : t -> cls:string -> vars:string list -> Augem_machine.Reg.vreg

val alloc_scalar : t -> var:string -> Augem_machine.Reg.vreg
val alloc_splat : t -> var:string -> cls:string -> Augem_machine.Reg.vreg

(** Move a variable to a new residence, transferring ownership. *)
val rebind : t -> var:string -> res:residence -> unit

(** Free every register whose residents are all dead according to
    [live]. *)
val release_dead : t -> live:(string -> bool) -> unit

val free_count : t -> int
val dump : t -> string
