(** General-purpose register allocation for integer scalars, loop
    counters, pointers and incoming parameters.

    On-demand allocation with spilling to stack home slots: when every
    register is busy, the least-recently-used unpinned variable is
    evicted (stored to its home slot if dirty) and reloaded
    transparently on next use.  The emitter pins the loop counter and
    pointers of the innermost loop, so generated hot loops are
    spill-free while arbitrarily large loop nests stay compilable. *)

exception Gpr_error of string

type t

(** [create ~emit] routes spill/reload instructions through [emit]
    (the shared output buffer). *)
val create : emit:(Augem_machine.Insn.t -> unit) -> t

(** Internal per-variable state; exposed so the emitter can assign home
    slots to synthetic variables (memoized loop invariants). *)
type var_state

val state : t -> string -> var_state

(** Frame offset of the variable's home slot (allocated on demand,
    negative, rbp-relative). *)
val home_slot : t -> var_state -> int

(** Bind an incoming parameter already sitting in [reg]. *)
val bind_incoming : t -> var:string -> reg:Augem_machine.Reg.gpr -> unit

(** Declare a parameter living on the caller's stack at [disp(%rbp)]. *)
val bind_stack_param : t -> var:string -> disp:int -> unit

(** Ensure the variable is in a register (reloading if spilled);
    [avoid] registers are not chosen as victims. *)
val get :
  t -> ?avoid:Augem_machine.Reg.gpr list -> string -> Augem_machine.Reg.gpr

(** A register for overwriting the variable (no reload); marks dirty. *)
val def :
  t -> ?avoid:Augem_machine.Reg.gpr list -> string -> Augem_machine.Reg.gpr

(** Pinned variables are never evicted, spilled or invalidated — they
    keep their register across control-flow joins. *)
val pin : t -> string -> unit

val unpin : t -> string -> unit

val alloc_temp :
  t -> ?avoid:Augem_machine.Reg.gpr list -> unit -> Augem_machine.Reg.gpr

val free_temp : t -> Augem_machine.Reg.gpr -> unit

(** Store every dirty unpinned variable to its home slot (before a
    control-flow join). *)
val spill_all : t -> unit

(** Forget all unpinned register contents (after a label reached by a
    jump); fails on dirty variables — call {!spill_all} first. *)
val invalidate_all : t -> unit

(** Bytes of home-slot area used so far. *)
val frame_bytes : t -> int

(** Has the variable ever been given a value (register or home)? *)
val is_defined : t -> string -> bool

val pinned_vars : t -> string list

(** Drop a variable entirely (used to scope memoized loop invariants
    to the loop that hoisted them). *)
val forget : t -> string -> unit
