lib/machine/insn.ml: Reg
