lib/machine/arch.mli: Insn
