lib/machine/arch.ml: Insn List Printf String
