lib/machine/att.ml: Buffer Fmt Insn List Printf Reg
