lib/machine/depgraph.ml: Arch Array Hashtbl Insn List Map Option Reg
