lib/machine/depgraph.mli: Arch Insn
