lib/machine/reg.mli:
