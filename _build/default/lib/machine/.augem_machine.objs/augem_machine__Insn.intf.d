lib/machine/insn.mli: Reg
