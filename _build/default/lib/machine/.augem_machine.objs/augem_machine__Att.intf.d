lib/machine/att.mli: Insn
