(** AT&T-syntax printing of the generated assembly.

    When [avx] is set, three-operand VEX encodings are used throughout;
    otherwise legacy SSE two-operand encodings are printed, which
    requires [dst = src1] on register-register operations — instruction
    selection maintains that invariant and the printer enforces it. *)

exception Print_error of string

(** One instruction, without trailing newline. *)
val insn_str : avx:bool -> Insn.t -> string

(** A complete listing with [.text]/[.globl]/[.size] directives. *)
val program_to_string : ?avx:bool -> Insn.program -> string
