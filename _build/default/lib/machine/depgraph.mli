(** Dependence graphs over straight-line instruction sequences, shared
    by the static instruction scheduler (codegen) and the cycle-level
    performance model (sim).

    Edges cover register RAW/WAR/WAW, flags, and memory ordering.
    Memory disambiguation is address-based with register versioning: a
    pointer bumped between two accesses makes their addresses differ
    even though the operand text is identical (iteration replicas in
    the cycle model).  The [rename] mode models an out-of-order core:
    WAR/WAW register edges vanish and accesses through different base
    registers are assumed disjoint (the hardware disambiguator); the
    static scheduler never uses it. *)

type node = {
  id : int;
  insn : Insn.t;
  mutable preds : (int * int) list;  (** (predecessor, edge latency) *)
  mutable succs : int list;
}

type t = { nodes : node array }

(** Result latency of an instruction on an architecture. *)
val latency : Arch.t -> Insn.t -> int

(** Issue slots one instruction occupies (wide ops on narrow
    datapaths split). *)
val uops : Arch.t -> Insn.t -> int

val build : ?arch:Arch.t option -> ?rename:bool -> Insn.t list -> t

(** Critical-path heights (scheduling priority). *)
val heights : ?arch:Arch.t option -> t -> int array

(** Per-cycle capacity of a unit class. *)
val unit_capacity : Arch.t -> Insn.unit_class -> int

(** FMA machines execute adds/multiplies on the FMA pipes: pool them. *)
val pool_of : Arch.t -> Insn.unit_class -> Insn.unit_class

(** Greedy cycle-by-cycle list scheduling.  Returns the issue order
    (node ids) and the makespan in cycles.  [in_order] restricts issue
    to program order (the in-order pipeline model). *)
val list_schedule :
  ?rename:bool -> ?in_order:bool -> Arch.t -> Insn.t list -> int list * int
