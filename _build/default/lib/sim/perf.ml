(* MFLOPS predictor: combines the cycle-level steady-state cost of a
   kernel's hot loop (Cycle_sim) with the streaming-bandwidth bound of
   the memory system (Mem_model) for a given problem size, exactly the
   two-bound reasoning (compute roof vs. bandwidth roof) that governs
   dense linear algebra performance.

   The absolute numbers are those of the modelled microarchitectures;
   the benchmarks compare *libraries* on the *same* model, so relative
   positions — who wins, by what factor — are what carries over from
   the paper. *)

open Augem_machine

type workload =
  | W_gemm of { m : int; n : int; k : int } (* C(m x n) += A(m x k) B(k x n) *)
  | W_gemv of { m : int; n : int } (* y(m) += A(m x n) x(n) *)
  | W_axpy of { n : int }
  | W_dot of { n : int }

let workload_flops = function
  | W_gemm { m; n; k } -> 2.0 *. float_of_int m *. float_of_int n *. float_of_int k
  | W_gemv { m; n } -> 2.0 *. float_of_int m *. float_of_int n
  | W_axpy { n } -> 2.0 *. float_of_int n
  | W_dot { n } -> 2.0 *. float_of_int n

(* Elements touched, for kernels that perform no arithmetic (DCOPY):
   their "MFLOPS" figure is then millions of elements per second. *)
let workload_elements = function
  | W_gemm { m; n; k } -> float_of_int m *. float_of_int n *. float_of_int k
  | W_gemv { m; n } -> float_of_int (m * n)
  | W_axpy { n } | W_dot { n } -> float_of_int n

type estimate = {
  e_mflops : float;
  e_compute_cycles : float;
  e_memory_cycles : float;
  e_flops : float;
  e_level : Mem_model.level;
  e_cycles_per_iter : float;
  e_flops_per_iter : int;
}

(* Fixed call overhead (argument setup, packing-loop startup, BLAS
   interface) in cycles. *)
let call_overhead = 2500.

(* Per-microkernel-invocation overhead for blocked GEMM: accumulator
   zeroing, C tile update, pointer setup. *)
let tile_overhead ~flops_per_iter = 30.0 +. float_of_int flops_per_iter

exception No_hot_loop of string

let analyze_loop ?pipeline_model (arch : Arch.t) (p : Insn.program) :
    Cycle_sim.loop_info =
  match Cycle_sim.hot_loop ?pipeline_model arch p with
  | Some li when li.Cycle_sim.li_flops > 0 || li.Cycle_sim.li_load_bytes > 0
    ->
      li
  | Some _ | None -> raise (No_hot_loop p.Insn.prog_name)

(* Traffic and working-set model per workload (bytes). *)
let memory_profile (w : workload) : int * float =
  match w with
  | W_gemm { m; n; k } ->
      (* Working set of the steady state: the packed panels (sized by
         the blocking, not the problem); traffic: A and B each read and
         repacked once per panel pass, C read+written once. *)
      let fm = float_of_int m and fn = float_of_int n and fk = float_of_int k in
      let traffic = 8.0 *. ((2. *. fm *. fk) +. (2. *. fk *. fn) +. (3. *. fm *. fn)) in
      (* steady-state working set: packed A block (L2-sized by design) *)
      (256 * 1024, traffic)
  | W_gemv { m; n } ->
      let bytes = 8 * ((m * n) + m + n) in
      (bytes, 8.0 *. float_of_int ((m * n) + (2 * m) + n))
  | W_axpy { n } ->
      let ws = 16 * n in
      (ws, 24.0 *. float_of_int n)
  | W_dot { n } ->
      let ws = 16 * n in
      (ws, 16.0 *. float_of_int n)

let predict ?pipeline_model (arch : Arch.t) (p : Insn.program)
    (w : workload) : estimate =
  let li = analyze_loop ?pipeline_model arch p in
  let flops = workload_flops w in
  (* work accounting: flops when the loop computes, elements when it
     only moves data (DCOPY-style) *)
  let work, units_per_iter =
    if li.Cycle_sim.li_flops > 0 then
      (flops, float_of_int li.Cycle_sim.li_flops)
    else
      ( workload_elements w,
        Float.max 1.0 (float_of_int (li.Cycle_sim.li_load_bytes / 8)) )
  in
  let work_per_cycle = units_per_iter /. li.Cycle_sim.li_cycles in
  let compute =
    (work /. work_per_cycle)
    +.
    match w with
    | W_gemm { m; n; k = _ } ->
        (* one microtile pass per (Mr x Nr) tile per Kc block; the k
           loop is the hot loop, so per-invocation overhead amortizes
           over Kc iterations *)
        let tiles =
          flops /. 2.0 /. float_of_int li.Cycle_sim.li_flops *. 2.0 /. 256.
        in
        ignore (m, n);
        tiles *. tile_overhead ~flops_per_iter:li.Cycle_sim.li_flops
    | W_gemv { n; _ } -> float_of_int n *. 12.0 (* per-column setup *)
    | W_axpy _ | W_dot _ -> 0.0
  in
  let working_set, traffic = memory_profile w in
  let prefetch = li.Cycle_sim.li_prefetches > 0 in
  let memory =
    Mem_model.stream_cycles arch ~working_set ~traffic ~prefetch
  in
  let total = Float.max compute memory +. call_overhead in
  let rate_basis = if li.Cycle_sim.li_flops > 0 then flops else work in
  let mflops = rate_basis *. arch.Arch.turbo_ghz *. 1000.0 /. total in
  {
    e_mflops = mflops;
    e_compute_cycles = compute;
    e_memory_cycles = memory;
    e_flops = flops;
    e_level = Mem_model.stream_level arch ~working_set;
    e_cycles_per_iter = li.Cycle_sim.li_cycles;
    e_flops_per_iter = li.Cycle_sim.li_flops;
  }
