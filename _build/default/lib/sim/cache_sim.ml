(* Set-associative cache hierarchy simulator.  Observes the functional
   simulator's memory accesses (loads, stores, software prefetches) and
   counts hits and misses per level — the measurement companion to the
   analytic bandwidth model in [Mem_model].  Inclusive hierarchy, LRU
   replacement, write-allocate. *)

type cache = {
  c_name : string;
  c_sets : int;
  c_ways : int;
  c_line : int; (* bytes, power of two *)
  tags : int array array; (* [set].[way] = tag, -1 empty *)
  age : int array array; (* LRU counters *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
}

let create_cache ~name ~size_bytes ~ways ~line =
  let sets = max 1 (size_bytes / (ways * line)) in
  {
    c_name = name;
    c_sets = sets;
    c_ways = ways;
    c_line = line;
    tags = Array.init sets (fun _ -> Array.make ways (-1));
    age = Array.init sets (fun _ -> Array.make ways 0);
    tick = 0;
    hits = 0;
    misses = 0;
  }

(* Access one line; returns [true] on hit.  Misses allocate. *)
let access_line (c : cache) (line_addr : int) : bool =
  c.tick <- c.tick + 1;
  let set = line_addr mod c.c_sets in
  let tag = line_addr / c.c_sets in
  let tags = c.tags.(set) and age = c.age.(set) in
  let hit = ref false in
  for w = 0 to c.c_ways - 1 do
    if tags.(w) = tag then begin
      hit := true;
      age.(w) <- c.tick
    end
  done;
  if !hit then c.hits <- c.hits + 1
  else begin
    c.misses <- c.misses + 1;
    (* evict LRU *)
    let victim = ref 0 in
    for w = 1 to c.c_ways - 1 do
      if age.(w) < age.(!victim) then victim := w
    done;
    tags.(!victim) <- tag;
    age.(!victim) <- c.tick
  end;
  !hit

type hierarchy = {
  l1 : cache;
  l2 : cache;
  l3 : cache option;
  mutable dram_accesses : int;
}

(* Build a hierarchy matching an architecture record (64-byte lines;
   representative associativities). *)
let of_arch (arch : Augem_machine.Arch.t) : hierarchy =
  let line = 64 in
  {
    l1 = create_cache ~name:"L1d" ~size_bytes:arch.Augem_machine.Arch.l1_bytes
        ~ways:8 ~line;
    l2 = create_cache ~name:"L2" ~size_bytes:arch.Augem_machine.Arch.l2_bytes
        ~ways:8 ~line;
    l3 =
      (if arch.Augem_machine.Arch.l3_bytes > 0 then
         Some
           (create_cache ~name:"L3"
              ~size_bytes:arch.Augem_machine.Arch.l3_bytes ~ways:16 ~line)
       else None);
    dram_accesses = 0;
  }

(* One memory access of [bytes] at [addr] (stores allocate too). *)
let access (h : hierarchy) ~(addr : int) ~(bytes : int) ~(store : bool) : unit
    =
  ignore store;
  let line = h.l1.c_line in
  let first = addr / line and last = (addr + bytes - 1) / line in
  for la = first to last do
    if not (access_line h.l1 la) then
      if not (access_line h.l2 la) then
        match h.l3 with
        | Some l3 -> if not (access_line l3 la) then h.dram_accesses <- h.dram_accesses + 1
        | None -> h.dram_accesses <- h.dram_accesses + 1
  done

type level_stats = {
  ls_name : string;
  ls_hits : int;
  ls_misses : int;
}

let stats (h : hierarchy) : level_stats list * int =
  let of_cache c = { ls_name = c.c_name; ls_hits = c.hits; ls_misses = c.misses } in
  ( [ of_cache h.l1; of_cache h.l2 ]
    @ (match h.l3 with Some c -> [ of_cache c ] | None -> []),
    h.dram_accesses )

let hit_rate (ls : level_stats) : float =
  let total = ls.ls_hits + ls.ls_misses in
  if total = 0 then 0. else float_of_int ls.ls_hits /. float_of_int total

let pp_stats fmt (h : hierarchy) =
  let levels, dram = stats h in
  List.iter
    (fun ls ->
      Fmt.pf fmt "%-4s %9d hits %9d misses  (%.1f%% hit rate)@\n" ls.ls_name
        ls.ls_hits ls.ls_misses
        (100. *. hit_rate ls))
    levels;
  Fmt.pf fmt "DRAM %9d line fetches@\n" dram
