lib/sim/exec_sim.mli: Augem_machine Hashtbl
