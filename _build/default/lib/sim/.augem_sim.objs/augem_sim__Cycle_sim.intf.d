lib/sim/cycle_sim.mli: Augem_machine
