lib/sim/perf.ml: Arch Augem_machine Cycle_sim Float Insn Mem_model
