lib/sim/exec_sim.ml: Array Augem_machine Float Fmt Hashtbl Insn Int64 List Reg
