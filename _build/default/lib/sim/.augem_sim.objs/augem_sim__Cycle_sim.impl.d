lib/sim/cycle_sim.ml: Arch Array Augem_machine Depgraph Digest Float Hashtbl Insn List Marshal
