lib/sim/mem_model.mli: Augem_machine
