lib/sim/perf.mli: Augem_machine Mem_model
