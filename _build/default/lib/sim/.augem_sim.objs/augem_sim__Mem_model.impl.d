lib/sim/mem_model.ml: Arch Augem_machine
