lib/sim/cache_sim.ml: Array Augem_machine Fmt List
