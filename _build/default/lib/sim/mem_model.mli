(** Cache and bandwidth model.

    Kernels are modelled as streaming computations: the achievable data
    rate is the bandwidth of the smallest cache level holding the
    working set, scaled by a utilization factor that rewards software
    prefetching (the measured effect the paper's prefetch optimization
    exists for), with the no-prefetch case further scaled by the CPU's
    hardware-prefetcher quality. *)

type level =
  | L1
  | L2
  | L3
  | DRAM

val level_name : level -> string

(** The level a working set of the given size lives in once warm. *)
val residency : Augem_machine.Arch.t -> int -> level

val raw_bandwidth : Augem_machine.Arch.t -> level -> float

(** Sustained fraction of raw bandwidth, per level and prefetch mode. *)
val utilization : Augem_machine.Arch.t -> prefetch:bool -> level -> float

(** Cycles to move [traffic] bytes of streaming data whose working set
    is [working_set] bytes. *)
val stream_cycles :
  Augem_machine.Arch.t ->
  working_set:int ->
  traffic:float ->
  prefetch:bool ->
  float

val stream_level : Augem_machine.Arch.t -> working_set:int -> level
