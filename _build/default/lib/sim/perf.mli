(** MFLOPS predictor: combines the cycle-level steady-state cost of a
    kernel's hot loop ({!Cycle_sim}) with the streaming-bandwidth bound
    of the memory system ({!Mem_model}) — the compute-roof /
    bandwidth-roof reasoning that governs dense linear algebra.

    Absolute numbers are those of the modelled microarchitectures; the
    benchmarks compare libraries on the same model, so relative
    positions are what carries over from the paper. *)

type workload =
  | W_gemm of { m : int; n : int; k : int }
  | W_gemv of { m : int; n : int }
  | W_axpy of { n : int }
  | W_dot of { n : int }

val workload_flops : workload -> float

(** Elements touched — the work unit for kernels that perform no
    arithmetic (DCOPY), whose "MFLOPS" figure is then millions of
    elements per second. *)
val workload_elements : workload -> float

type estimate = {
  e_mflops : float;
  e_compute_cycles : float;
  e_memory_cycles : float;
  e_flops : float;
  e_level : Mem_model.level;  (** residency of the working set *)
  e_cycles_per_iter : float;  (** hot loop steady state *)
  e_flops_per_iter : int;
}

exception No_hot_loop of string

(** Predict performance of a generated program on a workload.
    [pipeline_model] selects out-of-order (default) or in-order core
    modelling (see {!Cycle_sim.steady_cycles}). *)
val predict :
  ?pipeline_model:[ `Out_of_order | `In_order ] ->
  Augem_machine.Arch.t ->
  Augem_machine.Insn.program ->
  workload ->
  estimate
