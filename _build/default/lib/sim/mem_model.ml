(* Cache and bandwidth model.  Kernels are modelled as streaming
   computations: the achievable data rate is the bandwidth of the
   smallest cache level that holds the working set, scaled by a
   utilization factor that rewards software prefetching (the measured
   effect the paper's prefetch optimization exists for). *)

open Augem_machine

type level =
  | L1
  | L2
  | L3
  | DRAM

let level_name = function L1 -> "L1" | L2 -> "L2" | L3 -> "L3" | DRAM -> "DRAM"

(* The level a working set of [bytes] lives in once warm. *)
let residency (arch : Arch.t) (bytes : int) : level =
  if bytes <= arch.Arch.l1_bytes then L1
  else if bytes <= arch.Arch.l2_bytes then L2
  else if arch.Arch.l3_bytes > 0 && bytes <= arch.Arch.l3_bytes then L3
  else DRAM

let raw_bandwidth (arch : Arch.t) = function
  | L1 -> arch.Arch.bw_l1
  | L2 -> arch.Arch.bw_l2
  | L3 -> arch.Arch.bw_l3
  | DRAM -> arch.Arch.bw_mem

(* Fraction of the raw bandwidth a streaming kernel sustains.  Software
   prefetch hides most of the access latency beyond L1; without it the
   hardware prefetcher alone leaves a gap that widens further from the
   core. *)
let utilization (arch : Arch.t) ~(prefetch : bool) (lvl : level) : float =
  let hw = arch.Arch.hw_prefetch in
  match (lvl, prefetch) with
  | L1, _ -> 1.0
  | L2, true -> 0.95
  | L2, false -> 0.85 *. hw
  | L3, true -> 0.92
  | L3, false -> 0.75 *. hw
  | DRAM, true -> 0.90
  | DRAM, false -> 0.70 *. hw

(* Cycles to move [traffic] bytes of streaming data whose working set
   is [working_set] bytes. *)
let stream_cycles (arch : Arch.t) ~(working_set : int) ~(traffic : float)
    ~(prefetch : bool) : float =
  let lvl = residency arch working_set in
  let bw = raw_bandwidth arch lvl *. utilization arch ~prefetch lvl in
  traffic /. bw

let stream_level (arch : Arch.t) ~(working_set : int) : level =
  residency arch working_set
