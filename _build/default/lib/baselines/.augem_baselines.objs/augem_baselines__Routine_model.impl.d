lib/baselines/routine_model.ml: Augem_ir Augem_machine Augem_sim Float Library List
