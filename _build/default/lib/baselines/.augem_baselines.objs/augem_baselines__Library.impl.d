lib/baselines/library.ml: Augem_autotune Augem_codegen Augem_ir Augem_machine Augem_sim Augem_transform Hashtbl Kernels Pipeline Printf String
