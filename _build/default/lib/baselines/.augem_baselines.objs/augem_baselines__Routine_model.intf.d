lib/baselines/routine_model.mli: Augem_machine Library
