lib/baselines/library.mli: Augem_ir Augem_machine Augem_sim
