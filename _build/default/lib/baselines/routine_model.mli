(** Performance model for the six higher-level DLA routines of paper
    Table 6, decomposed exactly as the numeric implementations in
    [Augem_blas.Level3]: SYMM/SYRK/SYR2K/TRMM cast their flops onto the
    GEMM kernel (with a small routine-shape factor); TRSM adds the
    diagonal-block solve that AUGEM translates straightforwardly — the
    paper's stated reason it loses TRSM; GER is Level-1-kernel bound. *)

type routine =
  | SYMM
  | SYRK
  | SYR2K
  | TRMM
  | TRSM
  | GER

val all : routine list
val name : routine -> string

(** Fraction of peak a library's small triangular solve sustains. *)
val solve_efficiency : Library.id -> float

(** Predicted MFLOPS of one routine at one size (m = n; k as in the
    paper's sweep). *)
val predict :
  Library.id -> Augem_machine.Arch.t -> routine -> m:int -> k:int -> float

(** Mean over the paper's Table 6 size sweep. *)
val average : Library.id -> Augem_machine.Arch.t -> routine -> float
