(* Performance model for the six higher-level DLA routines of paper
   Table 6.  Each routine is decomposed exactly as the numeric
   implementations in [Augem_blas.Level3] do it (after Goto & van de
   Geijn's Level-3 paper):

     SYMM / SYRK / SYR2K / TRMM : all flops cast onto the GEMM kernel,
       with a small routine-shape factor (extra packing, triangular
       edges);
     TRSM : two steps — the diagonal-block solve, which is translated
       straightforwardly (NOT through the GEMM kernel; this is the
       paper's stated reason AUGEM loses TRSM), and the trailing GEMM
       update;
     GER : a rank-1 update streaming the whole matrix — Level-1-kernel
       bound, like AXPY over m*n elements.

   The GEMM leg reuses each library's modelled GEMM kernel; the solve
   leg uses a per-library triangular-solve efficiency (vendor libraries
   ship optimized small solvers, AUGEM translates the solve
   straightforwardly). *)

module Arch = Augem_machine.Arch
module Kernels = Augem_ir.Kernels
module Perf = Augem_sim.Perf
module Mem = Augem_sim.Mem_model

type routine =
  | SYMM
  | SYRK
  | SYR2K
  | TRMM
  | TRSM
  | GER

let all = [ SYMM; SYRK; SYR2K; TRMM; TRSM; GER ]

let name = function
  | SYMM -> "SYMM"
  | SYRK -> "SYRK"
  | SYR2K -> "SYR2K"
  | TRMM -> "TRMM"
  | TRSM -> "TRSM"
  | GER -> "GER"

(* Routine-shape factor on the GEMM-cast flops: symmetric packing,
   triangular edge tiles, double passes.  Shared by all libraries. *)
let shape_factor = function
  | SYMM -> 1.0
  | SYRK -> 0.975
  | SYR2K -> 0.98
  | TRMM -> 0.965
  | TRSM -> 1.0 (* handled by the two-step decomposition below *)
  | GER -> 1.0

(* Fraction of peak the library's small triangular solve sustains. *)
let solve_efficiency = function
  | Library.AUGEM -> 0.22 (* straightforward translation, the paper's gap *)
  | Library.Vendor -> 0.70
  | Library.ATLAS -> 0.50
  | Library.GotoBLAS -> 0.35

(* TRSM diagonal-block size of the decomposition. *)
let solve_block = 64

let predict (id : Library.id) (arch : Arch.t) (r : routine) ~(m : int)
    ~(k : int) : float =
  match r with
  | GER ->
      (* A += alpha x y^T: the real generated GER kernel, streaming the
         whole m x m matrix (GEMV-like working set and traffic) *)
      let arch', prog = Library.generate id arch Kernels.Ger in
      let est = Perf.predict arch' prog (Perf.W_gemv { m; n = m }) in
      (* GEMV reads the matrix once; GER reads and writes it: halve the
         effective bandwidth of the memory leg *)
      let est_mem = est.Perf.e_memory_cycles *. 2.0 in
      let total =
        Float.max est.Perf.e_compute_cycles est_mem +. 2500.
      in
      est.Perf.e_flops *. arch'.Arch.turbo_ghz *. 1000.0 /. total
      *. Library.efficiency id
  | TRSM ->
      let arch', prog = Library.generate id arch Kernels.Gemm in
      let gemm = Perf.predict arch' prog (Perf.W_gemm { m; n = m; k }) in
      let gemm_rate = gemm.Perf.e_mflops in
      (* solve fraction: nb out of every m rows are solved serially *)
      let frac = Float.min 1.0 (float_of_int solve_block /. float_of_int m) in
      let solve_rate = solve_efficiency id *. Arch.peak_mflops arch' in
      let inv_rate =
        ((1.0 -. frac) /. gemm_rate) +. (frac /. solve_rate)
      in
      1.0 /. inv_rate *. Library.efficiency id
  | SYMM | SYRK | SYR2K | TRMM ->
      let arch', prog = Library.generate id arch Kernels.Gemm in
      let est = Perf.predict arch' prog (Perf.W_gemm { m; n = m; k }) in
      est.Perf.e_mflops *. shape_factor r *. Library.efficiency id

(* Average over the paper's Table 6 size sweep. *)
let table6_sizes = List.init 20 (fun i -> 1024 + (i * 256)) (* 1024..5888 *)

let average (id : Library.id) (arch : Arch.t) (r : routine) : float =
  let k = 256 in
  let ger_sizes = List.init 13 (fun i -> 2048 + (i * 256)) in
  let sizes = match r with GER -> ger_sizes | _ -> table6_sizes in
  let vals = List.map (fun m -> predict id arch r ~m ~k) sizes in
  List.fold_left ( +. ) 0. vals /. float_of_int (List.length vals)
