(** Models of the comparison BLAS libraries (paper section 5): the
    platform vendor library (Intel MKL 11.0 / AMD ACML 5.3), ATLAS
    3.11.8 and GotoBLAS2 1.13.

    MKL and ACML are closed source and GotoBLAS's kernels are
    hand-written assembly, so each library is modelled as a
    kernel-generation policy through our own back end plus structural
    attributes (see DESIGN.md): ISA reach (GotoBLAS2 predates AVX/FMA —
    generated SSE2-only), register blocking quality, per-kernel
    software-prefetch behaviour, and one global software-quality
    factor per library. *)

type id =
  | AUGEM
  | Vendor  (** MKL on Intel platforms, ACML on AMD *)
  | ATLAS
  | GotoBLAS

val all : id list
val display_name : Augem_machine.Arch.t -> id -> string

(** The machine as the library sees it (GotoBLAS: SSE2-only variant). *)
val effective_arch : Augem_machine.Arch.t -> id -> Augem_machine.Arch.t

(** Global software-quality factor (packing, edge handling, interface
    overheads) — the only fitted constant per library. *)
val efficiency : id -> float

(** Does this library's implementation of the kernel software-prefetch? *)
val prefetches : id -> Augem_machine.Arch.t -> Augem_ir.Kernels.name -> bool

(** The modelled library's kernel for an architecture (memoized).
    AUGEM's configuration comes from the auto-tuner; the others use the
    fixed policies above. *)
val generate :
  id ->
  Augem_machine.Arch.t ->
  Augem_ir.Kernels.name ->
  Augem_machine.Arch.t * Augem_machine.Insn.program

(** Predicted MFLOPS of one library on one workload. *)
val predict :
  id ->
  Augem_machine.Arch.t ->
  Augem_ir.Kernels.name ->
  Augem_sim.Perf.workload ->
  float
