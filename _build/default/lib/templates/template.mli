(** The optimization templates of paper Figure 3 as structured
    instances recovered from three-address code, plus the two extension
    templates this reproduction adds (svSCAL, svCOPY).  Parameter names
    follow the paper: mmCOMP(A, idx1, B, idx2, res), mmSTORE(C, idx,
    res), mvCOMP(A, idx1, B, idx2, scal). *)

(** res = res + A[idx1] * B[idx2], through temporaries t0-t2. *)
type mm_comp = {
  mc_a : string;
  mc_idx1 : Augem_ir.Ast.expr;
  mc_b : string;
  mc_idx2 : Augem_ir.Ast.expr;
  mc_res : string;
  mc_t0 : string;
  mc_t1 : string;
  mc_t2 : string;
}

(** C[idx] = C[idx] + res, through t0; res is clobbered. *)
type mm_store = {
  ms_c : string;
  ms_idx : Augem_ir.Ast.expr;
  ms_res : string;
  ms_t0 : string;
}

(** B[idx2] = B[idx2] + A[idx1] * scal, through t0-t1. *)
type mv_comp = {
  mv_a : string;
  mv_idx1 : Augem_ir.Ast.expr;
  mv_b : string;
  mv_idx2 : Augem_ir.Ast.expr;
  mv_scal : string;
  mv_t0 : string;
  mv_t1 : string;
}

(** B[idx] = B[idx] * scal — the DSCAL extension template. *)
type sv_scal = {
  ss_b : string;
  ss_idx : Augem_ir.Ast.expr;
  ss_scal : string;
  ss_t0 : string;
}

(** B[idx2] = A[idx1] — the DCOPY extension template. *)
type sv_copy = {
  sc_a : string;
  sc_idx1 : Augem_ir.Ast.expr;
  sc_b : string;
  sc_idx2 : Augem_ir.Ast.expr;
  sc_t0 : string;
}

(** A tagged region: the unrolled templates are groups of units; a
    singleton group is the unit template itself. *)
type region =
  | Mm_unrolled_comp of mm_comp list
  | Mm_unrolled_store of mm_store list
  | Mv_unrolled_comp of mv_comp list
  | Sv_unrolled_scal of sv_scal list
  | Sv_unrolled_copy of sv_copy list

val region_name : region -> string
val region_size : region -> int

(** The statements one unit stands for, used by the scalar fall-back
    path and for printing. *)
val mm_comp_stmts : mm_comp -> Augem_ir.Ast.stmt list

val mm_store_stmts : mm_store -> Augem_ir.Ast.stmt list
val mv_comp_stmts : mv_comp -> Augem_ir.Ast.stmt list
val sv_scal_stmts : sv_scal -> Augem_ir.Ast.stmt list
val sv_copy_stmts : sv_copy -> Augem_ir.Ast.stmt list
val region_stmts : region -> Augem_ir.Ast.stmt list

(** Constant displacement of an index expression, when static. *)
val disp_of : Augem_ir.Ast.expr -> int option

(** Template parameter bindings for phase-dump tags. *)
val region_params : region -> (string * string) list
