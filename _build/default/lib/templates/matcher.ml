(* The Template Identifier (paper section 2.2): a recursive-descent
   traversal that recognizes code fragments matching the pre-defined
   templates and tags them, recording the global live-range information
   the Template Optimizer needs.

   Matching happens on the three-address form produced by scalar
   replacement.  Consecutive unit templates are merged into the
   corresponding unrolled templates subject to the paper's grouping
   rules: mmCOMPs sharing the A stream, mmSTOREs over one C stream with
   consecutive displacements, mvCOMPs over one A/B stream pair with
   consecutive displacements. *)

module SS = Set.Make (String)

open Augem_ir.Ast
open Template

module Liveness = Augem_analysis.Liveness

(* Annotated statement tree: regions carry their matched template and
   the set of scalars live after the region. *)
type astmt =
  | A_plain of stmt * SS.t (* statement, scalars live after it *)
  | A_region of region * SS.t
  | A_for of loop_header * astmt list
  | A_if of expr * cmpop * expr * astmt list * astmt list

type akernel = {
  ak_name : string;
  ak_params : param list;
  ak_body : astmt list;
}

let distinct names =
  List.length (List.sort_uniq String.compare names) = List.length names

(* --- unit template matchers over (stmt * live_after) suffixes ------- *)

type 'a unit_match = 'a * SS.t * (stmt * SS.t) list

let match_mm_comp (suffix : (stmt * SS.t) list) : mm_comp unit_match option =
  match suffix with
  | (Assign (Lvar t0, Index (a, i1)), _)
    :: (Assign (Lvar t1, Index (b, i2)), _)
    :: (Assign (Lvar t2, Binop (Mul, Var t0', Var t1')), _)
    :: (Assign (Lvar r, Binop (Add, Var r', Var t2')), la)
    :: rest
    when String.equal t0 t0' && String.equal t1 t1' && String.equal t2 t2'
         && String.equal r r'
         && distinct [ t0; t1; t2; r ] ->
      Some
        ( { mc_a = a; mc_idx1 = i1; mc_b = b; mc_idx2 = i2; mc_res = r;
            mc_t0 = t0; mc_t1 = t1; mc_t2 = t2 },
          la,
          rest )
  | _ -> None

let match_mm_store (suffix : (stmt * SS.t) list) : mm_store unit_match option =
  match suffix with
  | (Assign (Lvar t0, Index (c, idx)), _)
    :: (Assign (Lvar r, Binop (Add, Var r', Var t0')), _)
    :: (Assign (Lindex (c', idx'), Var r''), la)
    :: rest
    when String.equal t0 t0' && String.equal r r' && String.equal r r''
         && String.equal c c' && idx = idx'
         && not (String.equal t0 r) ->
      Some ({ ms_c = c; ms_idx = idx; ms_res = r; ms_t0 = t0 }, la, rest)
  | _ -> None

let match_mv_comp (suffix : (stmt * SS.t) list) : mv_comp unit_match option =
  match suffix with
  | (Assign (Lvar t0, Index (a, i1)), _)
    :: (Assign (Lvar t1, Index (b, i2)), _)
    :: (Assign (Lvar t0', Binop (Mul, Var t0'', Var s)), _)
    :: (Assign (Lvar t1', Binop (Add, Var t1'', Var t0''')), _)
    :: (Assign (Lindex (b', i2'), Var t1'''), la)
    :: rest
    when String.equal t0 t0' && String.equal t0 t0'' && String.equal t0 t0'''
         && String.equal t1 t1' && String.equal t1 t1''
         && String.equal t1 t1''' && String.equal b b' && i2 = i2'
         && distinct [ t0; t1; s ]
         (* A and B must be distinct streams: folding n iterations of a
            self-referential update (B[i+1] += B[i]*s) would reorder a
            loop-carried dependence *)
         && not (String.equal a b) ->
      Some
        ( { mv_a = a; mv_idx1 = i1; mv_b = b; mv_idx2 = i2; mv_scal = s;
            mv_t0 = t0; mv_t1 = t1 },
          la,
          rest )
  | _ -> None

let match_sv_scal (suffix : (stmt * SS.t) list) : sv_scal unit_match option =
  match suffix with
  | (Assign (Lvar t0, Index (b, idx)), _)
    :: (Assign (Lvar t0', Binop (Mul, Var t0'', Var s)), _)
    :: (Assign (Lindex (b', idx'), Var t0'''), la)
    :: rest
    when String.equal t0 t0' && String.equal t0 t0''
         && String.equal t0 t0''' && String.equal b b' && idx = idx'
         && not (String.equal t0 s) ->
      Some ({ ss_b = b; ss_idx = idx; ss_scal = s; ss_t0 = t0 }, la, rest)
  | _ -> None

let match_sv_copy (suffix : (stmt * SS.t) list) : sv_copy unit_match option =
  match suffix with
  | (Assign (Lvar t0, Index (a, i1)), _)
    :: (Assign (Lindex (b, i2), Var t0'), la)
    :: rest
    when String.equal t0 t0'
         (* distinct streams: folding a self-copy would reorder a
            loop-carried dependence *)
         && not (String.equal a b) ->
      Some ({ sc_a = a; sc_idx1 = i1; sc_b = b; sc_idx2 = i2; sc_t0 = t0 },
            la, rest)
  | _ -> None

(* --- group compatibility rules -------------------------------------- *)

let mm_comp_compatible (group : mm_comp list) (next : mm_comp) =
  match group with
  | [] -> true
  | first :: _ ->
      String.equal first.mc_a next.mc_a
      && distinct (next.mc_res :: List.map (fun m -> m.mc_res) group)

let mm_store_compatible (group : mm_store list) (next : mm_store) =
  match List.rev group with
  | [] -> true
  | last :: _ -> (
      String.equal last.ms_c next.ms_c
      &&
      match (disp_of last.ms_idx, disp_of next.ms_idx) with
      | Some d1, Some d2 -> d2 = d1 + 1
      | _ -> false)

let mv_comp_compatible (group : mv_comp list) (next : mv_comp) =
  match List.rev group with
  | [] -> true
  | last :: _ -> (
      String.equal last.mv_a next.mv_a
      && String.equal last.mv_b next.mv_b
      && String.equal last.mv_scal next.mv_scal
      &&
      match
        ( disp_of last.mv_idx1, disp_of next.mv_idx1, disp_of last.mv_idx2,
          disp_of next.mv_idx2 )
      with
      | Some a1, Some a2, Some b1, Some b2 -> a2 = a1 + 1 && b2 = b1 + 1
      | _ -> false)

let sv_scal_compatible (group : sv_scal list) (next : sv_scal) =
  match List.rev group with
  | [] -> true
  | last :: _ -> (
      String.equal last.ss_b next.ss_b
      && String.equal last.ss_scal next.ss_scal
      &&
      match (disp_of last.ss_idx, disp_of next.ss_idx) with
      | Some d1, Some d2 -> d2 = d1 + 1
      | _ -> false)

let sv_copy_compatible (group : sv_copy list) (next : sv_copy) =
  match List.rev group with
  | [] -> true
  | last :: _ -> (
      String.equal last.sc_a next.sc_a
      && String.equal last.sc_b next.sc_b
      &&
      match
        ( disp_of last.sc_idx1, disp_of next.sc_idx1, disp_of last.sc_idx2,
          disp_of next.sc_idx2 )
      with
      | Some a1, Some a2, Some b1, Some b2 -> a2 = a1 + 1 && b2 = b1 + 1
      | _ -> false)

(* Collect a maximal group of one kind starting at [suffix]. *)
let collect_group (type a) (match_unit : (stmt * SS.t) list -> a unit_match option)
    (compatible : a list -> a -> bool) (suffix : (stmt * SS.t) list) :
    (a list * SS.t * (stmt * SS.t) list) option =
  match match_unit suffix with
  | None -> None
  | Some (first, la, rest) ->
      let rec grow group la rest =
        match match_unit rest with
        | Some (next, la', rest') when compatible (List.rev group) next ->
            grow (next :: group) la' rest'
        | Some _ | None -> (List.rev group, la, rest)
      in
      let group, la, rest = grow [ first ] la rest in
      if compatible [] first then Some (group, la, rest) else None

(* Temporaries of a region must be dead after it, otherwise the
   specialized optimizers could not eliminate them. *)
let region_temps = function
  | Mm_unrolled_comp l ->
      List.concat_map (fun m -> [ m.mc_t0; m.mc_t1; m.mc_t2 ]) l
  | Mm_unrolled_store l -> List.map (fun m -> m.ms_t0) l
  | Mv_unrolled_comp l ->
      List.concat_map (fun m -> [ m.mv_t0; m.mv_t1 ]) l
  | Sv_unrolled_scal l -> List.map (fun m -> m.ss_t0) l
  | Sv_unrolled_copy l -> List.map (fun m -> m.sc_t0) l

let temps_dead region live_after =
  List.for_all (fun t -> not (SS.mem t live_after)) (region_temps region)

let try_region (suffix : (stmt * SS.t) list) :
    (region * SS.t * (stmt * SS.t) list) option =
  let candidates =
    [
      (fun s ->
        Option.map
          (fun (g, la, rest) -> (Mv_unrolled_comp g, la, rest))
          (collect_group match_mv_comp mv_comp_compatible s));
      (fun s ->
        Option.map
          (fun (g, la, rest) -> (Mm_unrolled_comp g, la, rest))
          (collect_group match_mm_comp mm_comp_compatible s));
      (fun s ->
        Option.map
          (fun (g, la, rest) -> (Mm_unrolled_store g, la, rest))
          (collect_group match_mm_store mm_store_compatible s));
      (fun s ->
        Option.map
          (fun (g, la, rest) -> (Sv_unrolled_scal g, la, rest))
          (collect_group match_sv_scal sv_scal_compatible s));
      (fun s ->
        Option.map
          (fun (g, la, rest) -> (Sv_unrolled_copy g, la, rest))
          (collect_group match_sv_copy sv_copy_compatible s));
    ]
  in
  List.find_map
    (fun f ->
      match f suffix with
      | Some (region, la, rest) when temps_dead region la ->
          Some (region, la, rest)
      | Some _ | None -> None)
    candidates

(* --- the traversal ---------------------------------------------------- *)

let rec match_block (stmts : stmt list) ~(live_out : SS.t) : astmt list =
  let annotated = Liveness.annotate stmts ~live_out in
  let rec go suffix acc =
    match suffix with
    | [] -> List.rev acc
    | (s, live_after) :: rest -> (
        match try_region suffix with
        | Some (region, la, rest') -> go rest' (A_region (region, la) :: acc)
        | None -> (
            match s with
            | For (h, body) ->
                (* conservative live-out for the body: everything live
                   before the loop (covers the back edge) plus after it *)
                let body_lo =
                  SS.union live_after
                    (Liveness.live_stmt s ~live_out:live_after)
                in
                go rest (A_for (h, match_block body ~live_out:body_lo) :: acc)
            | If (a, c, b, t, f) ->
                go rest
                  (A_if
                     ( a, c, b,
                       match_block t ~live_out:live_after,
                       match_block f ~live_out:live_after )
                  :: acc)
            | Tagged (_, body) ->
                (* re-identify pre-tagged regions from scratch *)
                go (Liveness.annotate body ~live_out:live_after @ rest) acc
            | Decl _ | Assign _ | Prefetch _ | Comment _ ->
                go rest (A_plain (s, live_after) :: acc)))
  in
  go annotated []

let identify (k : kernel) : akernel =
  {
    ak_name = k.k_name;
    ak_params = k.k_params;
    ak_body = match_block k.k_body ~live_out:SS.empty;
  }

(* --- views ------------------------------------------------------------ *)

(* Rebuild a plain kernel with [Tagged] markers, for phase dumps. *)
let rec astmt_to_stmt = function
  | A_plain (s, _) -> s
  | A_region (r, live_out) ->
      Tagged
        ( {
            tag_template = region_name r;
            tag_params = region_params r;
            tag_live_out = SS.elements live_out;
          },
          region_stmts r )
  | A_for (h, body) -> For (h, List.map astmt_to_stmt body)
  | A_if (a, c, b, t, f) ->
      If (a, c, b, List.map astmt_to_stmt t, List.map astmt_to_stmt f)

let to_tagged_kernel (ak : akernel) : kernel =
  {
    k_name = ak.ak_name;
    k_params = ak.ak_params;
    k_body = List.map astmt_to_stmt ak.ak_body;
  }

(* All regions in an annotated kernel, in traversal order. *)
let regions (ak : akernel) : region list =
  let rec go acc = function
    | [] -> acc
    | A_region (r, _) :: rest -> go (r :: acc) rest
    | A_for (_, body) :: rest -> go (go acc body) rest
    | A_if (_, _, _, t, f) :: rest -> go (go (go acc t) f) rest
    | A_plain _ :: rest -> go acc rest
  in
  List.rev (go [] ak.ak_body)
