lib/templates/template.mli: Augem_ir
