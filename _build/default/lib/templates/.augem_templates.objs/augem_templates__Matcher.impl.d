lib/templates/matcher.ml: Augem_analysis Augem_ir List Option Set String Template
