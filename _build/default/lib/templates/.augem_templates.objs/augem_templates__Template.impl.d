lib/templates/template.ml: Augem_ir List String
