lib/templates/matcher.mli: Augem_ir Set String Template
