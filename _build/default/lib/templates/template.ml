(* The six optimization templates of paper Figure 3, as structured
   instances recovered from the three-address code.  Parameter names
   follow the paper: mmCOMP(A,idx1,B,idx2,res), mmSTORE(C,idx,res),
   mvCOMP(A,idx1,B,idx2,scal). *)

open Augem_ir.Ast

(* res = res + A[idx1] * B[idx2], through temporaries t0-t2. *)
type mm_comp = {
  mc_a : string;
  mc_idx1 : expr;
  mc_b : string;
  mc_idx2 : expr;
  mc_res : string;
  mc_t0 : string;
  mc_t1 : string;
  mc_t2 : string;
}

(* C[idx] = C[idx] + res, through temporary t0; res is clobbered. *)
type mm_store = {
  ms_c : string;
  ms_idx : expr;
  ms_res : string;
  ms_t0 : string;
}

(* B[idx2] = B[idx2] + A[idx1] * scal, through temporaries t0-t1. *)
type mv_comp = {
  mv_a : string;
  mv_idx1 : expr;
  mv_b : string;
  mv_idx2 : expr;
  mv_scal : string;
  mv_t0 : string;
  mv_t1 : string;
}

(* Extension templates beyond the paper's six (its section 7 proposes
   extending the template set to broader routines): *)

(* B[idx] = B[idx] * scal, through temporary t0 — the DSCAL pattern. *)
type sv_scal = {
  ss_b : string;
  ss_idx : expr;
  ss_scal : string;
  ss_t0 : string;
}

(* B[idx2] = A[idx1], through temporary t0 — the DCOPY pattern. *)
type sv_copy = {
  sc_a : string;
  sc_idx1 : expr;
  sc_b : string;
  sc_idx2 : expr;
  sc_t0 : string;
}

(* A tagged region: the unrolled templates are groups of unit
   templates; a singleton group is the unit template itself. *)
type region =
  | Mm_unrolled_comp of mm_comp list (* mmCOMP / mmUnrolledCOMP *)
  | Mm_unrolled_store of mm_store list (* mmSTORE / mmUnrolledSTORE *)
  | Mv_unrolled_comp of mv_comp list (* mvCOMP / mvUnrolledCOMP *)
  | Sv_unrolled_scal of sv_scal list (* svSCAL / svUnrolledSCAL *)
  | Sv_unrolled_copy of sv_copy list (* svCOPY / svUnrolledCOPY *)

let region_name = function
  | Mm_unrolled_comp [ _ ] -> "mmCOMP"
  | Mm_unrolled_comp _ -> "mmUnrolledCOMP"
  | Mm_unrolled_store [ _ ] -> "mmSTORE"
  | Mm_unrolled_store _ -> "mmUnrolledSTORE"
  | Mv_unrolled_comp [ _ ] -> "mvCOMP"
  | Mv_unrolled_comp _ -> "mvUnrolledCOMP"
  | Sv_unrolled_scal [ _ ] -> "svSCAL"
  | Sv_unrolled_scal _ -> "svUnrolledSCAL"
  | Sv_unrolled_copy [ _ ] -> "svCOPY"
  | Sv_unrolled_copy _ -> "svUnrolledCOPY"

let region_size = function
  | Mm_unrolled_comp l -> List.length l
  | Mm_unrolled_store l -> List.length l
  | Mv_unrolled_comp l -> List.length l
  | Sv_unrolled_scal l -> List.length l
  | Sv_unrolled_copy l -> List.length l

(* The statements a region stands for (used to reconstruct the plain
   code, e.g. for the scalar fall-back path and for printing). *)
let mm_comp_stmts (m : mm_comp) : stmt list =
  [
    Assign (Lvar m.mc_t0, Index (m.mc_a, m.mc_idx1));
    Assign (Lvar m.mc_t1, Index (m.mc_b, m.mc_idx2));
    Assign (Lvar m.mc_t2, Binop (Mul, Var m.mc_t0, Var m.mc_t1));
    Assign (Lvar m.mc_res, Binop (Add, Var m.mc_res, Var m.mc_t2));
  ]

let mm_store_stmts (m : mm_store) : stmt list =
  [
    Assign (Lvar m.ms_t0, Index (m.ms_c, m.ms_idx));
    Assign (Lvar m.ms_res, Binop (Add, Var m.ms_res, Var m.ms_t0));
    Assign (Lindex (m.ms_c, m.ms_idx), Var m.ms_res);
  ]

let mv_comp_stmts (m : mv_comp) : stmt list =
  [
    Assign (Lvar m.mv_t0, Index (m.mv_a, m.mv_idx1));
    Assign (Lvar m.mv_t1, Index (m.mv_b, m.mv_idx2));
    Assign (Lvar m.mv_t0, Binop (Mul, Var m.mv_t0, Var m.mv_scal));
    Assign (Lvar m.mv_t1, Binop (Add, Var m.mv_t1, Var m.mv_t0));
    Assign (Lindex (m.mv_b, m.mv_idx2), Var m.mv_t1);
  ]

let sv_scal_stmts (m : sv_scal) : stmt list =
  [
    Assign (Lvar m.ss_t0, Index (m.ss_b, m.ss_idx));
    Assign (Lvar m.ss_t0, Binop (Mul, Var m.ss_t0, Var m.ss_scal));
    Assign (Lindex (m.ss_b, m.ss_idx), Var m.ss_t0);
  ]

let sv_copy_stmts (m : sv_copy) : stmt list =
  [
    Assign (Lvar m.sc_t0, Index (m.sc_a, m.sc_idx1));
    Assign (Lindex (m.sc_b, m.sc_idx2), Var m.sc_t0);
  ]

let region_stmts = function
  | Mm_unrolled_comp l -> List.concat_map mm_comp_stmts l
  | Mm_unrolled_store l -> List.concat_map mm_store_stmts l
  | Mv_unrolled_comp l -> List.concat_map mv_comp_stmts l
  | Sv_unrolled_scal l -> List.concat_map sv_scal_stmts l
  | Sv_unrolled_copy l -> List.concat_map sv_copy_stmts l

(* Constant displacement of an index expression, when static. *)
let disp_of = function Int_lit n -> Some n | _ -> None

let region_params = function
  | Mm_unrolled_comp (m :: _ as l) ->
      [
        ("A", m.mc_a);
        ("B", m.mc_b);
        ("n", string_of_int (List.length l));
        ("res", String.concat "," (List.map (fun x -> x.mc_res) l));
      ]
  | Mm_unrolled_store (m :: _ as l) ->
      [
        ("C", m.ms_c);
        ("n", string_of_int (List.length l));
        ("res", String.concat "," (List.map (fun x -> x.ms_res) l));
      ]
  | Mv_unrolled_comp (m :: _ as l) ->
      [
        ("A", m.mv_a);
        ("B", m.mv_b);
        ("scal", m.mv_scal);
        ("n", string_of_int (List.length l));
      ]
  | Sv_unrolled_scal (m :: _ as l) ->
      [
        ("B", m.ss_b);
        ("scal", m.ss_scal);
        ("n", string_of_int (List.length l));
      ]
  | Sv_unrolled_copy (m :: _ as l) ->
      [
        ("A", m.sc_a);
        ("B", m.sc_b);
        ("n", string_of_int (List.length l));
      ]
  | Mm_unrolled_comp [] | Mm_unrolled_store [] | Mv_unrolled_comp []
  | Sv_unrolled_scal [] | Sv_unrolled_copy [] ->
      []
