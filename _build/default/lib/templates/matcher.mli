(** The Template Identifier (paper section 2.2): a recursive-descent
    traversal recognizing code fragments that match the pre-defined
    templates, merging consecutive units into the unrolled templates,
    and recording the global live-range information the Template
    Optimizer needs.

    Grouping rules: mmCOMPs share the A stream with distinct
    accumulators; mmSTOREs cover one C stream at consecutive
    displacements; mvCOMPs one A/B stream pair at consecutive
    displacements (with A and B distinct — folding a self-referential
    update would reorder a loop-carried dependence); similarly for the
    svSCAL/svCOPY extension templates.  A region's temporaries must be
    dead after it. *)

module SS : Set.S with type elt = string and type t = Set.Make(String).t

(** Annotated statement tree: plain statements and regions both carry
    the set of scalars live after them. *)
type astmt =
  | A_plain of Augem_ir.Ast.stmt * SS.t
  | A_region of Template.region * SS.t
  | A_for of Augem_ir.Ast.loop_header * astmt list
  | A_if of
      Augem_ir.Ast.expr
      * Augem_ir.Ast.cmpop
      * Augem_ir.Ast.expr
      * astmt list
      * astmt list

type akernel = {
  ak_name : string;
  ak_params : Augem_ir.Ast.param list;
  ak_body : astmt list;
}

(** Identify all template regions in an optimized kernel. *)
val identify : Augem_ir.Ast.kernel -> akernel

(** Rebuild a plain kernel with [Tagged] markers (for phase dumps);
    semantics-preserving. *)
val to_tagged_kernel : akernel -> Augem_ir.Ast.kernel

(** All regions, in traversal order. *)
val regions : akernel -> Template.region list
