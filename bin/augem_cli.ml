(* augem — command-line front end.

     augem generate --kernel gemm --arch sandybridge [--jam j:4,i:8] ...
     augem tune     --kernel gemm --arch piledriver
     augem phases   --kernel gemv --arch sandybridge
     augem verify   --kernel dot  --arch sandybridge
     augem compile  --arch sandybridge file.c
     augem platforms

   [compile] accepts a simple C kernel (the subset of Figures 12/15-17)
   from a file or stdin and prints the generated assembly. *)

open Cmdliner
module A = Augem

let arch_conv =
  let parse s =
    match A.Machine.Arch.by_name_result s with
    | Ok a -> Ok a
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, fun fmt a -> Fmt.string fmt a.A.Machine.Arch.name)

let kernel_conv =
  let parse s =
    match A.Ir.Kernels.name_of_string s with
    | Some k -> Ok k
    | None -> Error (`Msg (Printf.sprintf "unknown kernel %s" s))
  in
  Arg.conv (parse, fun fmt k -> Fmt.string fmt (A.Ir.Kernels.name_to_string k))

let precision_conv =
  let parse s =
    match A.Machine.Etype.of_name s with
    | Some et -> Ok et
    | None ->
        Error
          (`Msg (Printf.sprintf "unknown precision %s (valid: f32, f64)" s))
  in
  Arg.conv (parse, fun fmt et -> Fmt.string fmt (A.Machine.Etype.name et))

let precision_arg =
  Arg.(
    value
    & opt precision_conv A.Machine.Etype.F64
    & info [ "precision" ] ~docv:"PREC"
        ~doc:"Scalar precision: f64 (default) or f32.")

let arch_arg =
  Arg.(
    value
    & opt arch_conv A.Machine.Arch.sandy_bridge
    & info [ "arch"; "a" ] ~docv:"ARCH" ~doc:"Target architecture.")

let kernel_arg =
  Arg.(
    value
    & opt kernel_conv A.Ir.Kernels.Gemm
    & info [ "kernel"; "k" ] ~docv:"KERNEL"
        ~doc:"DLA kernel: gemm, gemv, axpy, dot, ger, scal or copy.")

(* --jam j:4,i:8 *)
let jam_arg =
  let parse s =
    try
      Ok
        (String.split_on_char ',' s
        |> List.map (fun part ->
               match String.split_on_char ':' part with
               | [ v; f ] -> (v, int_of_string f)
               | _ -> failwith "syntax"))
    with _ -> Error (`Msg "expected VAR:FACTOR[,VAR:FACTOR...]")
  in
  let print fmt l =
    Fmt.string fmt
      (String.concat "," (List.map (fun (v, f) -> Printf.sprintf "%s:%d" v f) l))
  in
  Arg.(
    value
    & opt (some (conv (parse, print))) None
    & info [ "jam" ] ~docv:"SPEC" ~doc:"Unroll&jam factors, e.g. j:4,i:8.")

let unroll_arg =
  let parse s =
    match String.split_on_char ':' s with
    | [ v; f ] -> ( try Ok (v, int_of_string f) with _ -> Error (`Msg "bad factor"))
    | _ -> Error (`Msg "expected VAR:FACTOR")
  in
  Arg.(
    value
    & opt (some (conv (parse, fun fmt (v, f) -> Fmt.pf fmt "%s:%d" v f))) None
    & info [ "unroll" ] ~docv:"SPEC" ~doc:"Innermost unroll, e.g. i:8.")

let prefetch_arg =
  Arg.(
    value
    & opt (some int) (Some 8)
    & info [ "prefetch" ] ~docv:"DIST"
        ~doc:"Prefetch distance in iterations (0 disables).")

let script_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "script" ] ~docv:"FILE"
        ~doc:
          "Transformation script (overrides --jam/--unroll/--prefetch); see \
           the directive language in lib/transform/script.ml.")

let load_script = function
  | None -> None
  | Some path ->
      let src = In_channel.with_open_text path In_channel.input_all in
      (match A.Transform.Script.parse src with
      | Ok s -> Some s
      | Error msg ->
          (* msg is "line N: ..." since Script tracks directive lines *)
          Fmt.epr "%s: script error: %s@." path msg;
          exit 1)

let config_of_flags kernel jam unroll prefetch =
  let default_for k =
    match k with
    | A.Ir.Kernels.Gemm -> { A.Transform.Pipeline.default with jam = [ ("j", 4); ("i", 8) ] }
    | A.Ir.Kernels.Gemv ->
        { A.Transform.Pipeline.default with inner_unroll = Some ("j", 8) }
    | A.Ir.Kernels.Axpy ->
        { A.Transform.Pipeline.default with inner_unroll = Some ("i", 8) }
    | A.Ir.Kernels.Dot ->
        { A.Transform.Pipeline.default with inner_unroll = Some ("i", 8);
          expand_reduction = Some 8 }
    | A.Ir.Kernels.Ger | A.Ir.Kernels.Scal | A.Ir.Kernels.Copy
    | A.Ir.Kernels.Pack_a ->
        { A.Transform.Pipeline.default with inner_unroll = Some ("i", 8) }
    | A.Ir.Kernels.Pack_b ->
        { A.Transform.Pipeline.default with inner_unroll = Some ("l", 8) }
  in
  let cfg = default_for kernel in
  let cfg = match jam with None -> cfg | Some j -> { cfg with jam = j } in
  let cfg =
    match unroll with None -> cfg | Some u -> { cfg with inner_unroll = Some u }
  in
  {
    cfg with
    prefetch =
      (match prefetch with
      | None | Some 0 -> None
      | Some d ->
          Some { A.Transform.Prefetch.pf_distance = d; pf_stores = true });
  }

(* --- subcommands -------------------------------------------------------- *)

let native_arg =
  Arg.(
    value & flag
    & info [ "native" ]
        ~doc:
          "Also JIT the kernel to executable memory and run the guarded \
           native path: the asmcheck lint gate, a CPU-feature check, and \
           the three-way differential (native vs simulator vs reference \
           BLAS) over the full harness sweep.  Skips gracefully when the \
           host CPU lacks the required SIMD features.")

let generate_cmd =
  let run arch kernel et jam unroll prefetch script native =
    let g =
      match load_script script with
      | Some s -> A.generate_scripted ~et ~arch ~script:s kernel
      | None ->
          A.generate ~et ~arch
            ~config:(config_of_flags kernel jam unroll prefetch)
            kernel
    in
    print_string (A.assembly g);
    if native then begin
      let st = A.Native_check.check ~arch ~et kernel g.A.g_program in
      Fmt.epr "native: %s@." (A.Native_check.status_to_string st);
      match st with A.Native_check.Fail _ -> exit 1 | _ -> ()
    end
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate an assembly kernel")
    Term.(
      const run $ arch_arg $ kernel_arg $ precision_arg $ jam_arg $ unroll_arg
      $ prefetch_arg $ script_arg $ native_arg)

let jobs_arg =
  Arg.(
    value
    & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Shard the tuning sweep across $(docv) domains.  Results are \
           bit-identical for every job count (candidates are evaluated in \
           parallel; the best-candidate selection stays sequential in \
           candidate order).  0 means the recommended domain count for this \
           machine.")

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Persist tuning results under $(docv) (content-addressed by \
           architecture, kernel, search-space fingerprint and tuner \
           version), and reuse them across runs.  Also settable via \
           AUGEM_CACHE_DIR.  A corrupt cache file is treated as a miss, \
           never an error.")

let json_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json-out" ] ~docv:"FILE"
        ~doc:
          "Write a machine-readable JSON record of the tuning run (best \
           configuration, score, discard histogram, wall-clock, \
           candidates/sec, cache statistics) to $(docv).")

(* Cache-tier accounting for `tune`: the same event stream the serving
   metrics consume (Tuner.set_cache_observer), folded into counters and
   printed — corrupt entries and failed stores surface their structured
   diagnostics instead of being silent. *)
type tune_cache_counts = {
  mutable tc_memory : int;
  mutable tc_disk_hits : int;
  mutable tc_disk_misses : int;
  mutable tc_corrupt : int;
  mutable tc_swept : int;
  mutable tc_stores : int;
  mutable tc_diags : A.Verify.Diag.t list;
}

let tune_native_arg =
  Arg.(
    value & flag
    & info [ "native" ]
        ~doc:
          "Score candidates by measured wall-clock MFLOPS (JIT-compiled, \
           run on this CPU) instead of the cycle model.  Forces a \
           single-domain sweep (timing is serialized to keep measurements \
           stable) and bypasses the tuning caches (wall-clock results are \
           host-specific and must not poison the content-addressed \
           entries).  Candidates the host CPU cannot run fall back to the \
           model score.")

let tune_cmd =
  let run arch kernel et jobs cache_dir json_out native =
    let jobs = if jobs <= 0 then A.Pool.default_jobs () else jobs in
    let jobs = if native then 1 else jobs in
    if native then
      A.Tuner.set_native_measure (Some A.Native_blocked.tuner_measure);
    (match cache_dir with Some _ -> A.Tuner.set_cache_dir cache_dir | None -> ());
    let tc =
      { tc_memory = 0; tc_disk_hits = 0; tc_disk_misses = 0; tc_corrupt = 0;
        tc_swept = 0; tc_stores = 0; tc_diags = [] }
    in
    A.Tuner.set_cache_observer
      (Some
         (fun ~arch:_ ~kernel:_ ev ->
           match ev with
           | A.Tuner.Ev_memory_hit -> tc.tc_memory <- tc.tc_memory + 1
           | A.Tuner.Ev_disk_hit -> tc.tc_disk_hits <- tc.tc_disk_hits + 1
           | A.Tuner.Ev_disk_miss -> tc.tc_disk_misses <- tc.tc_disk_misses + 1
           | A.Tuner.Ev_disk_corrupt d ->
               tc.tc_corrupt <- tc.tc_corrupt + 1;
               tc.tc_diags <- d :: tc.tc_diags
           | A.Tuner.Ev_swept -> tc.tc_swept <- tc.tc_swept + 1
           | A.Tuner.Ev_store -> tc.tc_stores <- tc.tc_stores + 1
           | A.Tuner.Ev_store_error d -> tc.tc_diags <- d :: tc.tc_diags));
    let t0 = A.Jit.Clock.now_s () in
    let r = A.Tuner.tuned ~et ~jobs arch kernel in
    let wall = A.Jit.Clock.now_s () -. t0 in
    Fmt.pr "best configuration: %s@."
      (A.Transform.Pipeline.config_to_string
         r.A.Tuner.best.A.Tuner.cand_config);
    Fmt.pr "%s: %.0f MFLOPS (visited %d configurations, %d discarded)@."
      (if native then "measured" else "predicted")
      r.A.Tuner.best_score r.A.Tuner.visited r.A.Tuner.discarded;
    Fmt.pr "sweep: %.3f s at jobs=%d (%.1f candidates/sec)@." wall jobs
      (float_of_int r.A.Tuner.visited /. Float.max wall 1e-9);
    if cache_dir <> None || A.Tuner.cache_dir () <> None then
      Fmt.pr
        "cache: %d memory hit(s), %d disk hit(s), %d miss(es), %d corrupt, \
         %d sweep(s), %d store(s)@."
        tc.tc_memory tc.tc_disk_hits tc.tc_disk_misses tc.tc_corrupt
        tc.tc_swept tc.tc_stores;
    List.iter
      (fun d -> Fmt.pr "cache diagnostic: %s@." (A.Verify.Diag.to_string d))
      (List.rev tc.tc_diags);
    if r.A.Tuner.fell_back then
      Fmt.pr "WARNING: whole space discarded; safe baseline in use@.";
    if r.A.Tuner.failure_histogram <> [] then
      Fmt.pr "discard reasons:@.%a@." A.Verify.Diag.pp_histogram
        r.A.Tuner.failure_histogram;
    (match json_out with
    | None -> ()
    | Some path ->
        A.Json.to_file path
          (A.Json.Obj
             [
               ("arch", A.Json.String arch.A.Machine.Arch.name);
               ("kernel", A.Json.String (A.Ir.Kernels.name_to_string kernel));
               ("precision", A.Json.String (A.Machine.Etype.name et));
               ("native", A.Json.Bool native);
               ("jobs", A.Json.Int jobs);
               ("visited", A.Json.Int r.A.Tuner.visited);
               ("discarded", A.Json.Int r.A.Tuner.discarded);
               ("fell_back", A.Json.Bool r.A.Tuner.fell_back);
               ( "best_config",
                 A.Json.String
                   (A.Transform.Pipeline.config_to_string
                      r.A.Tuner.best.A.Tuner.cand_config) );
               ("best_mflops", A.Json.Float r.A.Tuner.best_score);
               ("wall_s", A.Json.Float wall);
               ( "candidates_per_sec",
                 A.Json.Float
                   (float_of_int r.A.Tuner.visited /. Float.max wall 1e-9) );
               ( "failure_histogram",
                 A.Json.Obj
                   (List.map
                      (fun (code, n) -> (code, A.Json.Int n))
                      r.A.Tuner.failure_histogram) );
               ( "cache",
                 A.Json.Obj
                   [
                     ("memory_hits", A.Json.Int tc.tc_memory);
                     ("disk_hits", A.Json.Int tc.tc_disk_hits);
                     ("misses", A.Json.Int tc.tc_disk_misses);
                     ("corrupt", A.Json.Int tc.tc_corrupt);
                     ("sweeps", A.Json.Int tc.tc_swept);
                     ("stores", A.Json.Int tc.tc_stores);
                   ] );
             ]);
        Fmt.pr "wrote %s@." path);
    (* regenerate from the winning candidate directly: with the native
       hook installed [A.tuned] bypasses the caches and would redo the
       whole measured sweep *)
    let g =
      A.generate ~et ~arch ~config:r.A.Tuner.best.A.Tuner.cand_config
        ~opts:r.A.Tuner.best.A.Tuner.cand_opts kernel
    in
    let v = A.verify g in
    Fmt.pr "verification: %s@." v.A.Harness.detail
  in
  Cmd.v
    (Cmd.info "tune" ~doc:"Auto-tune a kernel and report the best configuration")
    Term.(
      const run $ arch_arg $ kernel_arg $ precision_arg $ jobs_arg
      $ cache_dir_arg $ json_out_arg $ tune_native_arg)

let phases_cmd =
  let run arch kernel jam unroll prefetch script =
    let g =
      match load_script script with
      | Some s -> A.generate_scripted ~arch ~script:s kernel
      | None ->
          A.generate ~arch ~config:(config_of_flags kernel jam unroll prefetch)
            kernel
    in
    Fmt.pr "=== 1. simple C input ===@.%a@.@." A.Ir.Pp.pp_kernel g.A.g_source;
    Fmt.pr "=== 2. optimized low-level C ===@.%a@.@." A.Ir.Pp.pp_kernel
      g.A.g_optimized;
    Fmt.pr "=== 3. template-tagged ===@.%a@.@." A.Ir.Pp.pp_kernel g.A.g_tagged;
    Fmt.pr "=== 4. assembly ===@.%s@." (A.assembly g)
  in
  Cmd.v
    (Cmd.info "phases" ~doc:"Dump every pipeline phase for a kernel")
    Term.(
      const run $ arch_arg $ kernel_arg $ jam_arg $ unroll_arg $ prefetch_arg
      $ script_arg)

let chaos_arg =
  Arg.(
    value & flag
    & info [ "chaos" ]
        ~doc:
          "After the end-to-end check, run the hardened verification \
           layer: the per-pass differential oracle (pinpoints which \
           transformation pass miscompiles, if any) and the fault-injection \
           sweep (mutates the generated assembly and reports the harness's \
           fault-detection rate).  Exits non-zero if the detection rate \
           drops below 95%.")

let chaos_asm_arg =
  Arg.(
    value & flag
    & info [ "chaos-asm" ]
        ~doc:
          "Measure the static machine-code checker's sensitivity: inject \
           the asm-level fault classes (dropped saves/restores/push/pop, \
           dropped accumulator zeroing, dropped vzeroupper, retargeted \
           jumps, callee-saved clobbers) and report how many mutants the \
           CFG/dataflow lints catch.  Exits non-zero if the static \
           detection rate drops below 95%.")

let max_faults_arg =
  Arg.(
    value & opt int 256
    & info [ "max-faults" ] ~docv:"N"
        ~doc:"Cap on injected faults for $(b,--chaos).")

let verify_cmd =
  let run arch kernel et jam unroll prefetch chaos chaos_asm max_faults =
    let fp =
      match et with
      | A.Machine.Etype.F32 -> Some A.Ir.Ast.Float
      | A.Machine.Etype.F64 -> None
    in
    let config = config_of_flags kernel jam unroll prefetch in
    let g = A.generate ~et ~arch ~config kernel in
    let v = A.verify g in
    Fmt.pr "%s %s on %s: %s@."
      (A.Ir.Kernels.name_to_string ?fp kernel)
      (A.Transform.Pipeline.config_to_string config)
      arch.A.Machine.Arch.name
      (if v.A.Harness.ok then "OK (simulator matches reference BLAS)"
       else "FAILED: " ^ v.A.Harness.detail);
    let chaos_ok =
      if not chaos then true
      else begin
        (* stage 1: per-pass differential oracle over the pipeline *)
        Fmt.pr "@.per-pass differential oracle:@.";
        let source = A.Ir.Kernels.kernel_of_name ?fp kernel in
        let oracle_ok =
          match A.Verify.Oracle.check source config with
          | Ok _ ->
              List.iter
                (fun (name, _) -> Fmt.pr "  pass %-24s ok@." name)
                (A.Transform.Pipeline.passes config);
              true
          | Error d ->
              Fmt.pr "%s@." (A.Verify.Oracle.divergence_to_string d);
              false
        in
        (* stage 2: fault injection against the harness *)
        Fmt.pr "@.fault injection (harness sensitivity):@.";
        let r = A.Chaos.run ~et ~max_faults kernel g.A.g_program in
        Fmt.pr "%a" A.Chaos.pp_report r;
        oracle_ok && A.Chaos.rate r >= 0.95
      end
    in
    let chaos_asm_ok =
      if not chaos_asm then true
      else begin
        (* asm-level fault injection against the static checker *)
        Fmt.pr "@.asm fault injection (static checker sensitivity):@.";
        let r = A.Chaos.run_static ~et ~max_faults ~arch kernel g.A.g_program in
        Fmt.pr "%a" A.Chaos.pp_report r;
        A.Chaos.rate r >= 0.95
      end
    in
    if not (v.A.Harness.ok && chaos_ok && chaos_asm_ok) then exit 1
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Run the generated kernel on the simulator against the reference; \
          with $(b,--chaos) / $(b,--chaos-asm), also measure the \
          verification layer itself")
    Term.(
      const run $ arch_arg $ kernel_arg $ precision_arg $ jam_arg $ unroll_arg
      $ prefetch_arg $ chaos_arg $ chaos_asm_arg $ max_faults_arg)

let lint_json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Emit the findings as a JSON array of objects (code, severity, \
           index, message) on stdout, for CI consumption.  The exit status \
           is unchanged: non-zero iff there are findings.")

let finding_to_json (f : A.Analysis.Asmcheck.finding) : A.Json.t =
  A.Json.Obj
    [
      ("code", A.Json.String (A.Analysis.Asmcheck.lint_name f.A.Analysis.Asmcheck.f_lint));
      ( "severity",
        A.Json.String
          (A.Analysis.Asmcheck.severity_name f.A.Analysis.Asmcheck.f_severity) );
      ("index", A.Json.Int f.A.Analysis.Asmcheck.f_index);
      ("message", A.Json.String f.A.Analysis.Asmcheck.f_detail);
    ]

let lint_cmd =
  let run arch kernel et jam unroll prefetch script json =
    let g =
      match load_script script with
      | Some s -> A.generate_scripted ~et ~arch ~script:s kernel
      | None ->
          A.generate ~et ~arch
            ~config:(config_of_flags kernel jam unroll prefetch)
            kernel
    in
    let fp =
      match et with
      | A.Machine.Etype.F32 -> Some A.Ir.Ast.Float
      | A.Machine.Etype.F64 -> None
    in
    let params = (A.Ir.Kernels.kernel_of_name ?fp kernel).A.Ir.Ast.k_params in
    let findings =
      A.Verify.Oracle.check_static
        ~avx:(arch.A.Machine.Arch.simd = A.Machine.Arch.AVX)
        ~params g.A.g_program
    in
    let n = List.length g.A.g_program.A.Machine.Insn.prog_insns in
    if json then begin
      print_endline
        (A.Json.to_string (A.Json.List (List.map finding_to_json findings)));
      if findings <> [] then exit 1
    end
    else
      match findings with
      | [] ->
          Fmt.pr "%s on %s: %d instructions, no findings@."
            (A.Ir.Kernels.name_to_string kernel)
            arch.A.Machine.Arch.name n
      | fs ->
          Fmt.pr "%s on %s: %d instructions, %d finding(s)@."
            (A.Ir.Kernels.name_to_string kernel)
            arch.A.Machine.Arch.name n (List.length fs);
          List.iter
            (fun f -> Fmt.pr "  %a@." A.Analysis.Asmcheck.pp_finding f)
            fs;
          exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the static machine-code checker (CFG + dataflow lints: \
          undefined reads, ABI/stack discipline, vzeroupper hygiene, SSE \
          encoding invariants, dead/unreachable code) over a generated \
          kernel; exits non-zero if it reports any finding")
    Term.(
      const run $ arch_arg $ kernel_arg $ precision_arg $ jam_arg
      $ unroll_arg $ prefetch_arg $ script_arg $ lint_json_arg)

let compile_cmd =
  let file_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"C source file (defaults to stdin).")
  in
  let run arch file jam unroll prefetch script =
    let source =
      match file with
      | Some f -> In_channel.with_open_text f In_channel.input_all
      | None -> In_channel.input_all In_channel.stdin
    in
    match A.Ir.Parser.parse_kernel_result source with
    | Error msg ->
        Fmt.epr "error: %s@." msg;
        exit 1
    | Ok kernel ->
        let config, opts =
          match load_script script with
          | Some s ->
              (s.A.Transform.Script.sc_config, A.opts_of_script s)
          | None ->
              let config =
                config_of_flags A.Ir.Kernels.Gemm jam unroll prefetch
              in
              (* without explicit flags, only the always-safe passes *)
              let config =
                if jam = None && unroll = None then
                  { config with A.Transform.Pipeline.jam = [];
                    inner_unroll = None }
                else config
              in
              (config, A.Codegen.Emit.default_options)
        in
        let optimized = A.Transform.Pipeline.apply kernel config in
        let prog = A.Codegen.Emit.generate ~arch ~opts optimized in
        let prog = A.Codegen.Schedule.run arch prog in
        print_string
          (A.Machine.Att.program_to_string
             ~avx:(arch.A.Machine.Arch.simd = A.Machine.Arch.AVX)
             prog)
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a simple C kernel from file or stdin")
    Term.(
      const run $ arch_arg $ file_arg $ jam_arg $ unroll_arg $ prefetch_arg
      $ script_arg)

let simulate_cmd =
  let n_arg =
    Arg.(
      value & opt int 64
      & info [ "n" ] ~docv:"N"
          ~doc:"Problem size (vector length; matrix dimension for \
                gemm/gemv/ger).")
  in
  let run arch kernel n =
    let g = A.tuned ~arch kernel in
    let caches = A.Sim.Cache_sim.of_arch arch in
    let on_access = A.Sim.Cache_sim.access caches in
    let fill seed len =
      let state = ref seed in
      Array.init len (fun _ ->
          state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
          (float_of_int !state /. 1073741824.0 *. 2.0) -. 1.0)
    in
    let module E = A.Sim.Exec_sim in
    let args =
      match kernel with
      | A.Ir.Kernels.Gemm ->
          let mc = min n 64 and kc = min n 64 and nc = min n 16 in
          E.[ Aint mc; Aint kc; Aint nc; Aint mc; Abuf (fill 1 (mc * kc));
              Abuf (fill 2 (kc * nc)); Abuf (fill 3 (mc * nc)) ]
      | A.Ir.Kernels.Gemv ->
          E.[ Aint n; Aint n; Aint n; Abuf (fill 1 (n * n)); Abuf (fill 2 n);
              Abuf (fill 3 n) ]
      | A.Ir.Kernels.Axpy ->
          E.[ Aint n; Adouble 1.5; Abuf (fill 1 n); Abuf (fill 2 n) ]
      | A.Ir.Kernels.Dot ->
          E.[ Aint n; Abuf (fill 1 n); Abuf (fill 2 n); Abuf [| 0. |] ]
      | A.Ir.Kernels.Ger ->
          E.[ Aint n; Aint n; Aint n; Adouble 1.5; Abuf (fill 1 n);
              Abuf (fill 2 n); Abuf (fill 3 (n * n)) ]
      | A.Ir.Kernels.Scal -> E.[ Aint n; Adouble 1.5; Abuf (fill 1 n) ]
      | A.Ir.Kernels.Copy ->
          E.[ Aint n; Abuf (fill 1 n); Abuf (Array.make n 0.) ]
      | A.Ir.Kernels.Pack_a ->
          let mc = min n 64 and kc = min n 64 in
          E.[ Aint mc; Aint kc; Aint mc; Abuf (fill 1 (mc * kc));
              Abuf (Array.make (mc * kc) 0.) ]
      | A.Ir.Kernels.Pack_b ->
          let kc = min n 64 and nc = min n 16 in
          E.[ Aint kc; Aint nc; Aint kc; Abuf (fill 1 (kc * nc));
              Abuf (Array.make (kc * nc) 0.) ]
    in
    let r = E.call ~on_access g.A.g_program args in
    Fmt.pr "%s (%s, tuned %s), n=%d:@."
      (A.Ir.Kernels.name_to_string kernel)
      arch.A.Machine.Arch.name
      (A.Transform.Pipeline.config_to_string g.A.g_config)
      n;
    Fmt.pr "instructions executed %d, flops %d, loads %d, stores %d, \
            prefetches %d@."
      r.E.r_executed r.E.r_flops r.E.r_loads r.E.r_stores r.E.r_prefetches;
    Fmt.pr "%a" A.Sim.Cache_sim.pp_stats caches
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:
         "Execute the tuned kernel on the functional simulator with a \
          cache hierarchy attached, reporting dynamic statistics")
    Term.(const run $ arch_arg $ kernel_arg $ n_arg)

let explain_json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Emit the whole trace — stage names, artifact kinds and size \
           counters, wall times, fingerprints, rendered artifacts — as a \
           single JSON object on stdout.")

let explain_cmd =
  let run arch kernel et jam unroll prefetch script json =
    let config, prefer, max_width =
      match load_script script with
      | Some sc ->
          let eo = A.opts_of_script sc in
          ( sc.A.Transform.Script.sc_config,
            eo.A.Codegen.Emit.prefer,
            eo.A.Codegen.Emit.max_width )
      | None ->
          ( config_of_flags kernel jam unroll prefetch,
            A.Codegen.Plan.Prefer_auto,
            None )
    in
    let opts =
      {
        A.Driver.Lower.default_opts with
        A.Driver.Lower.prefer;
        max_width;
        snapshots = true;
      }
    in
    let trace = A.explain ~et ~opts ~arch ~config kernel in
    if json then print_endline (A.Json.to_string (A.trace_to_json trace))
    else begin
      Fmt.pr "lowering %s on %s [%s] (%s): %d stages@.@."
        trace.A.Driver.Trace.tr_kernel trace.A.Driver.Trace.tr_arch
        (A.Machine.Etype.name trace.A.Driver.Trace.tr_et)
        (Option.value ~default:"-" trace.A.Driver.Trace.tr_config)
        (List.length trace.A.Driver.Trace.tr_stages);
      List.iter
        (fun (r : A.Driver.Trace.stage_record) ->
          Fmt.pr "=== stage %d: %s (%s) ===@." r.A.Driver.Trace.sr_index
            r.A.Driver.Trace.sr_name r.A.Driver.Trace.sr_kind;
          Fmt.pr "%s  %.3f ms  fingerprint %s@."
            (String.concat "  "
               (List.map
                  (fun (k, v) -> Printf.sprintf "%s=%d" k v)
                  r.A.Driver.Trace.sr_stats))
            r.A.Driver.Trace.sr_ms
            (String.sub r.A.Driver.Trace.sr_fingerprint 0 12);
          (match r.A.Driver.Trace.sr_artifact with
          | Some a ->
              Fmt.pr "%s@." a
          | None -> ());
          Fmt.pr "@.")
        trace.A.Driver.Trace.tr_stages
    end
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Run the staged-lowering driver and dump every stage's artifact \
          (C after each source pass, the template-annotated kernel, the \
          vectorization plan, the emitted instruction stream, the framed \
          and scheduled program) with per-stage size counters, wall times \
          and content fingerprints; $(b,--json) renders the same trace \
          machine-readably")
    Term.(
      const run $ arch_arg $ kernel_arg $ precision_arg $ jam_arg
      $ unroll_arg $ prefetch_arg $ script_arg $ explain_json_arg)

let cache_clear_arg =
  Arg.(
    value & flag
    & info [ "clear" ] ~doc:"Remove every cache entry under the directory.")

let cache_cmd =
  let run cache_dir clear =
    let dir =
      match cache_dir with Some d -> Some d | None -> A.Tuner.cache_dir ()
    in
    match dir with
    | None ->
        Fmt.epr
          "no cache directory configured (use --cache-dir or \
           AUGEM_CACHE_DIR)@.";
        exit 1
    | Some dir ->
        if clear then begin
          let removed = A.Tuning_cache.clear ~dir in
          Fmt.pr "%s: removed %d entr%s@." dir removed
            (if removed = 1 then "y" else "ies")
        end
        else begin
          let entries = A.Tuning_cache.entries ~dir in
          let valid, corrupt =
            List.partition
              (fun e -> Result.is_ok e.A.Tuning_cache.e_key)
              entries
          in
          let bytes =
            List.fold_left
              (fun acc e -> acc + e.A.Tuning_cache.e_bytes)
              0 entries
          in
          Fmt.pr "%s: %d entr%s (%d valid, %d corrupt), %d bytes on disk@."
            dir (List.length entries)
            (if List.length entries = 1 then "y" else "ies")
            (List.length valid) (List.length corrupt) bytes;
          List.iter
            (fun e ->
              match e.A.Tuning_cache.e_key with
              | Ok key ->
                  Fmt.pr "  %s  %6d B  %s@."
                    (Filename.basename e.A.Tuning_cache.e_file)
                    e.A.Tuning_cache.e_bytes key
              | Error why ->
                  Fmt.pr "  %s  %6d B  CORRUPT: %s@."
                    (Filename.basename e.A.Tuning_cache.e_file)
                    e.A.Tuning_cache.e_bytes why)
            entries;
          let st = A.Tuning_cache.stats in
          Fmt.pr
            "this process: %d hit(s), %d miss(es), %d corrupt, %d store(s)@."
            st.A.Tuning_cache.hits st.A.Tuning_cache.misses
            st.A.Tuning_cache.corrupt st.A.Tuning_cache.stores
        end
  in
  Cmd.v
    (Cmd.info "cache"
       ~doc:
         "Inspect the persistent tuning cache: entries, validity (header \
          and checksum verified without unmarshalling), size on disk and \
          this process's hit/miss counters; $(b,--clear) empties it")
    Term.(const run $ cache_dir_arg $ cache_clear_arg)

(* --- the kernel service -------------------------------------------------- *)

module Service = Augem_service

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path (serve: bind; request: connect).")

let serve_cmd =
  let stdio_arg =
    Arg.(
      value & flag
      & info [ "stdio" ]
          ~doc:
            "Serve stdin/stdout: one JSON request per line, one JSON \
             response per line, EOF shuts down cleanly.  The default when \
             no $(b,--socket) is given.")
  in
  let workers_arg =
    Arg.(
      value & opt int 1
      & info [ "workers" ] ~docv:"N"
          ~doc:"Tuning-worker domains draining the admission queue.")
  in
  let queue_arg =
    Arg.(
      value & opt int 8
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Admission-queue capacity; requests beyond it are rejected \
             with a structured E_overload.")
  in
  let lru_arg =
    Arg.(
      value & opt int 64
      & info [ "lru" ] ~docv:"N"
          ~doc:"In-memory cache tier capacity (entries).")
  in
  let deadline_arg =
    Arg.(
      value & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Default per-request deadline: a tune request still queued \
             after $(docv) is served the safe-baseline kernel with \
             degraded:true instead of waiting for a sweep.  Requests may \
             override with their own deadline_ms.")
  in
  let tune_jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "tune-jobs" ] ~docv:"N"
          ~doc:"Intra-sweep parallelism of one tuning job.")
  in
  let breaker_threshold_arg =
    Arg.(
      value & opt int 3
      & info [ "breaker-threshold" ] ~docv:"N"
          ~doc:
            "Consecutive failures before a key's circuit opens (degraded \
             baseline served until a cooldown probe succeeds); 0 disables \
             circuit breaking.")
  in
  let breaker_cooldown_arg =
    Arg.(
      value & opt float 30_000.
      & info [ "breaker-cooldown-ms" ] ~docv:"MS"
          ~doc:"How long an open circuit waits before admitting a probe.")
  in
  let restart_budget_arg =
    Arg.(
      value & opt int 8
      & info [ "restart-budget" ] ~docv:"N"
          ~doc:
            "Worker-domain respawns allowed over the server's lifetime; a \
             worker that dies beyond the budget is not replaced.")
  in
  let no_recover_arg =
    Arg.(
      value & flag
      & info [ "no-recover" ]
          ~doc:
            "Skip the startup cache-recovery scan (quarantining of write \
             debris left by a crashed instance).")
  in
  let chaos_seed_arg =
    Arg.(
      value & opt (some int) None
      & info [ "chaos-seed" ] ~docv:"SEED"
          ~doc:
            "Instead of serving, run the deterministic chaos driver: \
             scripted serve sessions under injected faults (crashes, \
             worker kills, corruption), reproducible from $(docv) alone.  \
             Exits 0 only if every service invariant held.")
  in
  let run stdio socket workers queue lru cache_dir deadline_ms tune_jobs
      breaker_threshold breaker_cooldown_ms restart_budget no_recover
      chaos_seed =
    match chaos_seed with
    | Some seed ->
        let o =
          Service.Chaos_serve.run ~seed
            ~log:(fun l -> Logs.debug (fun m -> m "%s" l))
            ()
        in
        print_string (Service.Chaos_serve.report o);
        exit (if o.Service.Chaos_serve.co_violations = [] then 0 else 1)
    | None ->
        let config =
          {
            Service.Server.cfg_workers = max 1 workers;
            cfg_queue = max 1 queue;
            cfg_lru = max 1 lru;
            cfg_cache_dir =
              (match cache_dir with
              | Some _ -> cache_dir
              | None -> A.Tuner.cache_dir ());
            cfg_deadline_ms = deadline_ms;
            cfg_tune_jobs = max 1 tune_jobs;
            cfg_breaker_threshold = max 0 breaker_threshold;
            cfg_breaker_cooldown_ms = max 0. breaker_cooldown_ms;
            cfg_restart_budget = max 0 restart_budget;
            cfg_recover = not no_recover;
          }
        in
        (* injected delays must really delay in a live server *)
        Augem_resilience.Faultpoint.set_sleeper (fun ms ->
            Thread.delay (ms /. 1000.));
        let t = Service.Server.create ~config () in
        let stop _ = Service.Server.request_stop t in
        Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
        Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
        (match socket with
        | Some path when not stdio -> Service.Server.serve_socket t path
        | _ -> Service.Server.serve_stdio t)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the kernel service: accept line-delimited JSON tune/stats \
          requests (stdio or a Unix-domain socket) and answer with tuned \
          assembly plus provenance, through the two-tier cache, \
          single-flight deduplication and the bounded admission queue; \
          with $(b,--chaos-seed), run the deterministic fault-injection \
          harness instead")
    Term.(
      const run $ stdio_arg $ socket_arg $ workers_arg $ queue_arg $ lru_arg
      $ cache_dir_arg $ deadline_arg $ tune_jobs_arg $ breaker_threshold_arg
      $ breaker_cooldown_arg $ restart_budget_arg $ no_recover_arg
      $ chaos_seed_arg)

(* Error classes of one request attempt, each with its own exit code so
   scripts can tell a full queue from a bad request from a dead socket. *)
type request_error =
  | Req_transport of string  (* connect/read failure: exit 6, retryable *)
  | Req_code of string * string  (* structured error: (code, response line) *)

let request_exit_code = function
  | Req_transport _ -> 6
  | Req_code (code, _) ->
      if code = Service.Proto.e_bad_request then 3
      else if code = Service.Proto.e_overload then 4
      else if code = Service.Proto.e_shutting_down then 5
      else 1 (* E_internal and anything unknown *)

let request_retryable = function
  | Req_transport _ -> true (* the server may just be (re)starting *)
  | Req_code (code, _) ->
      (* a full queue drains; a bad request never stops being bad *)
      code = Service.Proto.e_overload

let request_cmd =
  let stats_arg =
    Arg.(value & flag & info [ "stats" ] ~doc:"Send a stats request.")
  in
  let ping_arg =
    Arg.(value & flag & info [ "ping" ] ~doc:"Send a ping request.")
  in
  let shutdown_arg =
    Arg.(
      value & flag & info [ "shutdown" ] ~doc:"Ask the server to shut down.")
  in
  let blocked_arg =
    Arg.(
      value & flag
      & info [ "blocked" ]
          ~doc:
            "Request a full blocked-DGEMM plan (tuned micro-kernel, \
             MC/KC/NC blocking and both packing kernels) instead of a \
             single kernel.")
  in
  let size_arg =
    Arg.(
      value & opt int 1024
      & info [ "size" ] ~docv:"N"
          ~doc:
            "Problem size m=n=k the blocked plan's blocking sweep \
             optimizes for (with $(b,--blocked)).")
  in
  let deadline_arg =
    Arg.(
      value & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS" ~doc:"Per-request deadline.")
  in
  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry up to $(docv) times on E_overload or transport errors \
             (never on E_bad_request), with exponential backoff.")
  in
  let backoff_arg =
    Arg.(
      value & opt float 100.
      & info [ "backoff-ms" ] ~docv:"MS"
          ~doc:
            "Backoff envelope of the first retry; doubles per retry \
             (capped at 50x) with deterministic seeded jitter.")
  in
  let retry_seed_arg =
    Arg.(
      value & opt int 0
      & info [ "retry-seed" ] ~docv:"SEED"
          ~doc:
            "Jitter seed: one client replays its exact backoff schedule; \
             differently-seeded clients desynchronize.")
  in
  let run socket kernel arch et stats ping shutdown blocked size deadline_ms
      retries backoff_ms retry_seed =
    let path =
      match socket with
      | Some p -> p
      | None ->
          Fmt.epr "request: --socket PATH is required@.";
          exit 2
    in
    let op =
      if stats then Service.Proto.Op_stats
      else if ping then Service.Proto.Op_ping
      else if shutdown then Service.Proto.Op_shutdown
      else if blocked then
        Service.Proto.Op_blocked
          {
            Service.Proto.bq_arch = arch;
            bq_et = et;
            bq_m = size;
            bq_n = size;
            bq_k = size;
            bq_deadline_ms = deadline_ms;
          }
      else
        Service.Proto.Op_tune
          {
            Service.Proto.tq_kernel = kernel;
            tq_arch = arch;
            tq_et = et;
            tq_space = None;
            tq_deadline_ms = deadline_ms;
          }
    in
    let rq = { Service.Proto.rq_id = A.Json.Int 1; rq_op = op } in
    let attempt () : (string, request_error) result =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with _ -> ());
          Error
            (Req_transport
               (Printf.sprintf "cannot connect to %s: %s" path
                  (Unix.error_message e)))
      | () -> (
          let finally () = try Unix.close fd with _ -> () in
          Fun.protect ~finally (fun () ->
              let oc = Unix.out_channel_of_descr fd in
              let ic = Unix.in_channel_of_descr fd in
              output_string oc
                (A.Json.to_string (Service.Proto.request_to_json rq));
              output_char oc '\n';
              flush oc;
              match In_channel.input_line ic with
              | None -> Error (Req_transport "server closed the connection")
              | exception Sys_error e -> Error (Req_transport e)
              | Some line -> (
                  match A.Json.parse line with
                  | Error e ->
                      Error (Req_transport ("unparsable response: " ^ e))
                  | Ok j ->
                      if A.Json.member "ok" j = Some (A.Json.Bool true) then
                        Ok line
                      else
                        let code =
                          match A.Json.member "error" j with
                          | Some err -> (
                              match A.Json.member "code" err with
                              | Some (A.Json.String c) -> c
                              | _ -> Service.Proto.e_internal)
                          | None -> Service.Proto.e_internal
                        in
                        Error (Req_code (code, line)))))
    in
    let policy =
      {
        Augem_resilience.Retry.r_max = max 0 retries;
        r_base_ms = max 1. backoff_ms;
        r_cap_ms = max 1. backoff_ms *. 50.;
        r_seed = retry_seed;
      }
    in
    let outcome =
      Augem_resilience.Retry.run policy
        ~sleep:(fun ms -> Thread.delay (ms /. 1000.))
        ~on_retry:(fun ~attempt ~delay_ms e ->
          let why =
            match e with
            | Req_transport d -> d
            | Req_code (code, _) -> code
          in
          Fmt.epr "request: attempt %d failed (%s); retrying in %.0f ms@."
            attempt why delay_ms)
        ~retryable:request_retryable attempt
    in
    match outcome with
    | Ok line -> print_endline line
    | Error e ->
        (match e with
        | Req_transport detail -> Fmt.epr "request: %s@." detail
        | Req_code (_, line) -> print_endline line);
        exit (request_exit_code e)
  in
  Cmd.v
    (Cmd.info "request"
       ~doc:
         "Send one request to a running kernel service over its \
          Unix-domain socket and print the JSON response.  Exit codes \
          classify the failure: 0 success, 1 internal error, 2 usage, 3 \
          bad request, 4 overload, 5 server shutting down, 6 transport \
          failure.  $(b,--retries) retries transient classes (overload, \
          transport) with seeded exponential backoff.")
    Term.(
      const run $ socket_arg $ kernel_arg $ arch_arg $ precision_arg
      $ stats_arg $ ping_arg $ shutdown_arg $ blocked_arg $ size_arg
      $ deadline_arg $ retries_arg $ backoff_arg $ retry_seed_arg)

let platforms_cmd =
  let run () =
    Fmt.pr "%-22s %20s %20s@." "" "Intel" "AMD";
    List.iter
      (fun (label, a, b) -> Fmt.pr "%-22s %20s %20s@." label a b)
      (A.Machine.Arch.table5_rows ())
  in
  Cmd.v
    (Cmd.info "platforms" ~doc:"Print the modelled platform configurations")
    Term.(const run $ const ())

let main =
  Cmd.group
    (Cmd.info "augem" ~version:"1.0.0"
       ~doc:
         "Template-based generation of optimized dense linear algebra \
          assembly kernels (AUGEM, SC'13)")
    [ generate_cmd; tune_cmd; phases_cmd; explain_cmd; verify_cmd; lint_cmd;
      compile_cmd; simulate_cmd; cache_cmd; serve_cmd; request_cmd;
      platforms_cmd ]

let () = exit (Cmd.eval main)
