(* Models of the comparison BLAS libraries (paper section 5): Intel MKL
   11.0 / AMD ACML 5.3 (the vendor library of each platform), ATLAS
   3.11.8, and GotoBLAS2 1.13.  MKL and ACML are closed source and
   GotoBLAS's kernels are hand-written assembly, so per DESIGN.md each
   library is modelled as a kernel-generation policy through our own
   back end plus a small set of structural attributes:

     - ISA reach: GotoBLAS2 1.13 predates AVX and FMA (the paper calls
       this out explicitly), so its kernels are generated for an
       SSE2-only variant of the target machine — its ~2x GEMM deficit
       on both CPUs is structural, not a fudge factor.
     - Register blocking: vendor kernels are expert-tuned (near the
       tuner's optimum); ATLAS's generated C relies on a
       general-purpose compiler for register allocation and scheduling,
       modelled as a smaller blocking than optimal.
     - Software prefetch: vendor Level-1 kernels historically rely on
       the hardware prefetcher (visible in the paper's AXPY/DOT gaps);
       ATLAS C kernels carry no prefetch at all.
     - A scalar software-quality factor per library (packing, edge
       handling, threading machinery overheads) calibrated once,
       globally — not per figure. *)

open Augem_ir
open Augem_transform
module Arch = Augem_machine.Arch
module Insn = Augem_machine.Insn

type id =
  | AUGEM
  | Vendor (* MKL on Intel, ACML on AMD *)
  | ATLAS
  | GotoBLAS

let all = [ AUGEM; Vendor; ATLAS; GotoBLAS ]

let display_name (arch : Arch.t) = function
  | AUGEM -> "AUGEM"
  | Vendor ->
      if String.equal arch.Arch.vendor "Intel" then "MKL 11.0"
      else "ACML 5.3.0"
  | ATLAS -> "ATLAS 3.11.8"
  | GotoBLAS -> "GotoBLAS2 1.13"

(* GotoBLAS runs on the same silicon but uses only SSE2 encodings. *)
let effective_arch (arch : Arch.t) = function
  | GotoBLAS ->
      {
        arch with
        Arch.name = arch.Arch.name ^ "-sse";
        simd = Arch.SSE;
        fma = Arch.No_fma;
        vec_bits = 128;
        native_fp_bits = 128;
      }
  | AUGEM | Vendor | ATLAS -> arch

(* Global software-quality factor (fraction of kernel-roofline
   performance the surrounding library machinery sustains). *)
let efficiency = function
  | AUGEM -> 1.00
  | Vendor -> 0.985
  | ATLAS -> 0.955
  | GotoBLAS -> 0.97

(* Does this library's implementation of [kernel] software-prefetch?
   Vendor Level-1 kernels of the era leaned on the hardware prefetcher
   (visible in the paper's AXPY/DOT gaps); ACML additionally shipped a
   generic (non-prefetching) GEMV path for Piledriver.  ATLAS's tuned C
   kernels carry prefetches except in its scalar reduction code. *)
let prefetches (id : id) (arch : Arch.t) (kernel : Kernels.name) =
  let amd = String.equal arch.Arch.vendor "AMD" in
  match (id, kernel) with
  | AUGEM, _ -> true
  | GotoBLAS, _ -> true
  | Vendor, Kernels.Gemm -> true
  | Vendor, Kernels.Gemv -> not amd
  | Vendor, (Kernels.Axpy | Kernels.Dot | Kernels.Ger | Kernels.Scal
            | Kernels.Copy | Kernels.Pack_a | Kernels.Pack_b) ->
      false
  | ATLAS, Kernels.Dot -> false
  | ATLAS, _ -> true

let pf cfg id arch kernel =
  if prefetches id arch kernel then cfg
  else { cfg with Pipeline.prefetch = None }

(* Fixed kernel configurations for the modelled libraries.  AUGEM's own
   configuration comes from the auto-tuner instead. *)
let config_for (id : id) (arch : Arch.t) (kernel : Kernels.name) :
    Pipeline.config =
  let jam j i = { Pipeline.default with jam = [ ("j", j); ("i", i) ] } in
  let unroll v u ~expand =
    {
      Pipeline.default with
      inner_unroll = Some (v, u);
      expand_reduction = (if expand then Some u else None);
    }
  in
  let amd = String.equal arch.Arch.vendor "AMD" in
  let base =
    match (id, kernel) with
    (* vendor: expert blocking, close to the tuned optimum *)
    | Vendor, Kernels.Gemm -> jam 4 8
    (* ATLAS emits good C; the general-purpose compiler sustains a
       smaller register blocking than the hand-allocated kernels *)
    | ATLAS, Kernels.Gemm -> if amd then jam 4 8 else jam 2 8
    | GotoBLAS, Kernels.Gemm -> jam 2 8
    | AUGEM, Kernels.Gemm -> jam 4 8 (* placeholder; tuner overrides *)
    | _, Kernels.Gemv -> unroll "j" 8 ~expand:false
    | _, Kernels.Axpy -> unroll "i" 8 ~expand:false
    | _, Kernels.Ger -> unroll "i" 8 ~expand:false
    | _, Kernels.Scal -> unroll "i" 8 ~expand:false
    | _, Kernels.Copy -> unroll "i" 8 ~expand:false
    (* packing routines: plain unrolled copies in every library *)
    | _, Kernels.Pack_a -> unroll "i" 8 ~expand:false
    | _, Kernels.Pack_b -> unroll "l" 8 ~expand:false
    (* gcc 4.7 vectorizes reductions only partially (no reassociation
       without -ffast-math): model the ATLAS DOT as a short chain *)
    | ATLAS, Kernels.Dot ->
        { Pipeline.default with inner_unroll = Some ("i", 4);
          expand_reduction = Some 2 }
    | _, Kernels.Dot -> unroll "i" 8 ~expand:true
  in
  pf base id arch kernel

(* Generate the modelled library's kernel for [arch]. *)
let generate_uncached (id : id) (arch : Arch.t) (kernel : Kernels.name) :
    Arch.t * Insn.program =
  let arch' = effective_arch arch id in
  match id with
  | AUGEM ->
      let r = Augem_autotune.Tuner.tuned arch' kernel in
      (arch', r.Augem_autotune.Tuner.best_program)
  | Vendor | ATLAS | GotoBLAS ->
      let cfg = config_for id arch' kernel in
      let optimized = Pipeline.apply (Kernels.kernel_of_name kernel) cfg in
      let prog = Augem_driver.Emit.generate ~arch:arch' optimized in
      (arch', Augem_codegen.Schedule.run arch' prog)

let gen_cache : (string, Arch.t * Insn.program) Hashtbl.t = Hashtbl.create 32

let generate (id : id) (arch : Arch.t) (kernel : Kernels.name) :
    Arch.t * Insn.program =
  let key =
    Printf.sprintf "%s/%s/%s" (display_name arch id) arch.Arch.name
      (Kernels.name_to_string kernel)
  in
  match Hashtbl.find_opt gen_cache key with
  | Some v -> v
  | None ->
      let v = generate_uncached id arch kernel in
      Hashtbl.replace gen_cache key v;
      v

(* Predicted MFLOPS of one library on one workload. *)
let predict (id : id) (arch : Arch.t) (kernel : Kernels.name)
    (w : Augem_sim.Perf.workload) : float =
  let arch', prog = generate id arch kernel in
  let est = Augem_sim.Perf.predict arch' prog w in
  est.Augem_sim.Perf.e_mflops *. efficiency id
