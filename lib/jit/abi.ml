(* System V ABI bridge: call a jitted kernel with the same argument
   list the functional simulator's [Exec_sim.call] takes, so one
   harness case drives both execution paths.

   Each [Abuf] argument is staged into a Bigarray of the kernel's
   element type (the copy-in narrows to f32 when the kernel computes in
   single precision, exactly like the simulator's typed memory), padded
   at the tail: the simulator's flat memory silently tolerates a
   vector load that reaches past the last element, but on real pages
   the same read could cross into an unmapped page, so native buffers
   always carry slack.  After the call the first [length] elements are
   copied back into the caller's array — the same observable contract
   as the simulator. *)

open Augem_machine
module Exec = Augem_sim.Exec_sim

exception Abi_error of string

let err fmt = Fmt.kstr (fun s -> raise (Abi_error s)) fmt

(* Tail slack, in elements: enough for one full 256-bit vector past the
   end plus alignment play. *)
let pad_elements = 16

type staged =
  | S64 of (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
  | S32 of (float, Bigarray.float32_elt, Bigarray.c_layout) Bigarray.Array1.t

let stage (et : Etype.t) (data : float array) : staged * int64 =
  let n = Array.length data + pad_elements in
  match et with
  | Etype.F64 ->
      let ba = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
      Bigarray.Array1.fill ba 0.0;
      Array.iteri (fun i x -> Bigarray.Array1.set ba i x) data;
      (S64 ba, Runtime.jit_ba_addr ba)
  | Etype.F32 ->
      let ba = Bigarray.Array1.create Bigarray.float32 Bigarray.c_layout n in
      Bigarray.Array1.fill ba 0.0;
      (* Bigarray float32 storage rounds each element to binary32 *)
      Array.iteri (fun i x -> Bigarray.Array1.set ba i x) data;
      (S32 ba, Runtime.jit_ba_addr ba)

let read_back (s : staged) (data : float array) : unit =
  match s with
  | S64 ba ->
      Array.iteri (fun i _ -> data.(i) <- Bigarray.Array1.get ba i) data
  | S32 ba ->
      Array.iteri (fun i _ -> data.(i) <- Bigarray.Array1.get ba i) data

(* Call the kernel in [buf] with SysV argument passing: integer-class
   arguments ([Aint] and buffer base addresses) bind rdi, rsi, rdx,
   rcx, r8, r9 and then the stack; [Adouble] arguments bind xmm0-3.
   [Abuf] arrays are updated in place after the run, mirroring
   [Exec_sim.call]. *)
let call ?(et = Etype.F64) (buf : Runtime.Exec_buf.t) (args : Exec.arg list) :
    unit =
  let iargs = ref [] and dargs = ref [] and staged = ref [] in
  List.iter
    (fun (a : Exec.arg) ->
      match a with
      | Exec.Aint n -> iargs := Int64.of_int n :: !iargs
      | Exec.Adouble f -> dargs := Etype.round et f :: !dargs
      | Exec.Abuf data ->
          let s, addr = stage et data in
          staged := (s, data) :: !staged;
          iargs := addr :: !iargs)
    args;
  let iargs = Array.of_list (List.rev !iargs) in
  let dargs = Array.of_list (List.rev !dargs) in
  if Array.length iargs > 8 then
    err "kernel takes %d integer-class arguments; the bridge passes at most 8"
      (Array.length iargs);
  if Array.length dargs > 4 then
    err "kernel takes %d FP arguments; the bridge passes at most 4"
      (Array.length dargs);
  Runtime.Exec_buf.invoke buf ~iargs ~dargs ~fp32:(et = Etype.F32);
  List.iter (fun (s, data) -> read_back s data) !staged
