/* Native execution stubs for the JIT backend.
 *
 * Three independent concerns live here, all deliberately tiny:
 *
 *  - executable memory with W^X discipline: a code buffer is mmap'd
 *    read-write, the encoded bytes are copied in, and the mapping is
 *    flipped to read-execute before the first call.  The pages are
 *    never writable and executable at the same time.
 *
 *  - a cpuid-based feature probe (AVX/FMA3/FMA4, with the mandatory
 *    OSXSAVE + XCR0 check for AVX state), so the OCaml side can refuse
 *    to jump into code the host cannot decode.
 *
 *  - the System V AMD64 call bridge: generated kernels take up to
 *    eight integer-class arguments (six in registers, two on the
 *    stack) and up to four FP arguments.  Calling through a C function
 *    pointer of exactly that shape lets the C compiler place every
 *    argument where the ABI demands, including the stack slots.
 *
 * A monotonic-clock read (CLOCK_MONOTONIC, nanoseconds) also lives
 * here so wall-clock measurement does not depend on gettimeofday.
 */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/bigarray.h>

#include <stdint.h>
#include <string.h>

#if defined(__x86_64__) || defined(_M_X64)
#define AUGEM_X86_64 1
#endif

#if defined(__unix__) || defined(__APPLE__)
#define AUGEM_UNIX 1
#include <sys/mman.h>
#include <unistd.h>
#include <time.h>
#endif

/* --- cpuid feature probe ------------------------------------------------ */

#ifdef AUGEM_X86_64
static void augem_cpuid(uint32_t leaf, uint32_t sub, uint32_t *a, uint32_t *b,
                        uint32_t *c, uint32_t *d) {
  __asm__ volatile("cpuid"
                   : "=a"(*a), "=b"(*b), "=c"(*c), "=d"(*d)
                   : "a"(leaf), "c"(sub));
}

static uint64_t augem_xgetbv0(void) {
  uint32_t lo, hi;
  __asm__ volatile("xgetbv" : "=a"(lo), "=d"(hi) : "c"(0));
  return ((uint64_t)hi << 32) | lo;
}
#endif

/* Bitmask: 1 = SSE2, 2 = AVX, 4 = FMA3, 8 = FMA4.  AVX-family bits are
 * only reported when the OS has enabled XMM+YMM state saving (OSXSAVE
 * and XCR0[2:1] = 11), which is the architectural condition for VEX
 * instructions not to #UD. */
CAMLprim value augem_jit_cpu_features(value unit) {
  long f = 0;
#ifdef AUGEM_X86_64
  uint32_t a, b, c, d;
  augem_cpuid(0, 0, &a, &b, &c, &d);
  if (a >= 1) {
    augem_cpuid(1, 0, &a, &b, &c, &d);
    f |= 1; /* SSE2 is architectural on x86-64 */
    int avx_state = 0;
    if ((c >> 27) & 1) /* OSXSAVE */
      avx_state = (augem_xgetbv0() & 0x6) == 0x6;
    if (avx_state && ((c >> 28) & 1)) f |= 2; /* AVX */
    if (avx_state && ((c >> 12) & 1)) f |= 4; /* FMA3 */
    augem_cpuid(0x80000000u, 0, &a, &b, &c, &d);
    if (a >= 0x80000001u) {
      augem_cpuid(0x80000001u, 0, &a, &b, &c, &d);
      if (avx_state && ((c >> 16) & 1)) f |= 8; /* FMA4 */
    }
  }
#endif
  return Val_long(f);
}

/* --- executable memory (W^X) ------------------------------------------- */

/* Map the code bytes into fresh anonymous pages (RW), copy, flip to
 * R|X.  Returns (addr, mapped_size); the OCaml side owns the mapping
 * and must release it with augem_jit_unmap. */
CAMLprim value augem_jit_map(value vcode) {
  CAMLparam1(vcode);
  CAMLlocal1(pair);
#if defined(AUGEM_UNIX)
  size_t len = caml_string_length(vcode);
  size_t page = (size_t)sysconf(_SC_PAGESIZE);
  size_t sz = ((len + page - 1) / page) * page;
  if (sz == 0) sz = page;
  void *p = mmap(NULL, sz, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) caml_failwith("jit: mmap of code buffer failed");
  memcpy(p, String_val(vcode), len);
  if (mprotect(p, sz, PROT_READ | PROT_EXEC) != 0) {
    munmap(p, sz);
    caml_failwith("jit: mprotect(R|X) failed");
  }
  pair = caml_alloc_tuple(2);
  Store_field(pair, 0, caml_copy_nativeint((intnat)p));
  Store_field(pair, 1, Val_long((long)sz));
  CAMLreturn(pair);
#else
  caml_failwith("jit: executable memory is not supported on this platform");
#endif
}

CAMLprim value augem_jit_unmap(value vaddr, value vsize) {
#if defined(AUGEM_UNIX)
  munmap((void *)Nativeint_val(vaddr), (size_t)Long_val(vsize));
#endif
  return Val_unit;
}

/* --- the SysV call bridge ---------------------------------------------- */

typedef void (*augem_kernel_d)(int64_t, int64_t, int64_t, int64_t, int64_t,
                               int64_t, int64_t, int64_t, double, double,
                               double, double);
typedef void (*augem_kernel_f)(int64_t, int64_t, int64_t, int64_t, int64_t,
                               int64_t, int64_t, int64_t, float, float, float,
                               float);

/* viargs: int64 array (8), vdargs: float array (4).  Extra arguments
 * beyond what the kernel's signature binds are harmless under SysV
 * (non-varargs callees ignore surplus registers/stack slots).  When
 * [vfp32] is set, FP arguments are narrowed to C float so an f32
 * kernel reads its scalar from the low 32 bits of the xmm register,
 * exactly as the ABI passes single precision. */
CAMLprim value augem_jit_invoke(value vaddr, value viargs, value vdargs,
                                value vfp32) {
  int64_t ia[8];
  double da[4];
  int i;
  for (i = 0; i < 8; i++) ia[i] = Int64_val(Field(viargs, i));
  for (i = 0; i < 4; i++) da[i] = Double_field(vdargs, i);
  void *fn = (void *)Nativeint_val(vaddr);
  if (Bool_val(vfp32))
    ((augem_kernel_f)fn)(ia[0], ia[1], ia[2], ia[3], ia[4], ia[5], ia[6],
                         ia[7], (float)da[0], (float)da[1], (float)da[2],
                         (float)da[3]);
  else
    ((augem_kernel_d)fn)(ia[0], ia[1], ia[2], ia[3], ia[4], ia[5], ia[6],
                         ia[7], da[0], da[1], da[2], da[3]);
  return Val_unit;
}

/* Base address of a Bigarray's data, as an int64 the encoder-side ABI
 * layer can do element-offset arithmetic on. */
CAMLprim value augem_jit_ba_addr(value vba) {
  return caml_copy_int64((int64_t)(intptr_t)Caml_ba_data_val(vba));
}

/* --- monotonic clock ---------------------------------------------------- */

CAMLprim value augem_jit_monotonic_ns(value unit) {
#if defined(AUGEM_UNIX)
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000LL +
                         (int64_t)ts.tv_nsec);
#else
  return caml_copy_int64(0LL);
#endif
}
