(* Monotonic wall-clock measurement.

   All native (and serving) timing goes through here instead of ad-hoc
   [Unix.gettimeofday] deltas: CLOCK_MONOTONIC cannot jump backwards
   under NTP slew, and the measurement loop does the things a one-shot
   delta cannot — warmup iterations to populate caches and the branch
   predictor, then min-of-N repeats with running statistics (Welford),
   because for a deterministic kernel the *minimum* is the best
   estimate of the true cost and the spread is the noise bar. *)

let now_ns () : int64 = Runtime.monotonic_ns ()

let now_s () : float = Int64.to_float (now_ns ()) /. 1e9

(* Welford running statistics over a stream of samples. *)
module Stat = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () =
    { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

  let push (t : t) (x : float) =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count (t : t) = t.n
  let mean (t : t) = t.mean
  let min (t : t) = t.min
  let max (t : t) = t.max

  let stddev (t : t) =
    if t.n < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.n - 1))
end

type timing = {
  t_runs : int;
  t_min_s : float;  (* the headline number *)
  t_mean_s : float;
  t_max_s : float;
  t_stddev_s : float;
}

(* Time [f]: run it [warmup] times unmeasured, then [repeats] measured
   runs.  Timer resolution is nanoseconds; callers measuring very short
   kernels should batch inside [f] themselves. *)
let measure ?(warmup = 1) ?(repeats = 5) (f : unit -> unit) : timing =
  for _ = 1 to warmup do
    f ()
  done;
  let st = Stat.create () in
  let repeats = Stdlib.max 1 repeats in
  for _ = 1 to repeats do
    let t0 = now_ns () in
    f ();
    let t1 = now_ns () in
    Stat.push st (Int64.to_float (Int64.sub t1 t0) /. 1e9)
  done;
  {
    t_runs = Stat.count st;
    t_min_s = Stat.min st;
    t_mean_s = Stat.mean st;
    t_max_s = Stat.max st;
    t_stddev_s = Stat.stddev st;
  }
