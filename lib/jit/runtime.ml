(* Executable-memory runtime and host-capability probe.

   [Exec_buf] owns one W^X code mapping: the bytes are copied into
   fresh RW pages which are flipped to R|X before any call
   ([jit_stubs.c]); release unmaps.  [Cpu] answers "can this host
   decode the program at all" — the mandatory gate before jumping into
   generated code, because executing an AVX instruction on a host
   without OS-enabled YMM state is an invalid-opcode fault, not a wrong
   answer. *)

open Augem_machine

external jit_map : string -> nativeint * int = "augem_jit_map"
external jit_unmap : nativeint -> int -> unit = "augem_jit_unmap"
external jit_cpu_features : unit -> int = "augem_jit_cpu_features"

external jit_invoke : nativeint -> int64 array -> float array -> bool -> unit
  = "augem_jit_invoke"

external jit_ba_addr :
  ('a, 'b, Bigarray.c_layout) Bigarray.Array1.t -> int64 = "augem_jit_ba_addr"

external monotonic_ns : unit -> int64 = "augem_jit_monotonic_ns"

module Cpu = struct
  type feature =
    | SSE2
    | AVX
    | FMA3
    | FMA4

  let feature_name = function
    | SSE2 -> "sse2"
    | AVX -> "avx"
    | FMA3 -> "fma3"
    | FMA4 -> "fma4"

  let bit = function SSE2 -> 1 | AVX -> 2 | FMA3 -> 4 | FMA4 -> 8

  (* cpuid is stable for the process lifetime; probe once *)
  let mask = lazy (jit_cpu_features ())

  let have (f : feature) = Lazy.force mask land bit f <> 0

  let describe () : (string * bool) list =
    List.map (fun f -> (feature_name f, have f)) [ SSE2; AVX; FMA3; FMA4 ]

  (* Missing features out of a requirement list. *)
  let missing (req : feature list) : feature list =
    List.filter (fun f -> not (have f)) req
end

(* The ISA extensions a program actually needs on this encoding path:
   VEX encodings (the [avx] flag) and any 256-bit register require AVX;
   FMA3/FMA4 come from the instructions themselves.  SSE2 is the x86-64
   baseline and always required. *)
let required_features ~(avx : bool) (p : Insn.program) : Cpu.feature list =
  let needs_avx = ref avx
  and needs_fma3 = ref false
  and needs_fma4 = ref false in
  List.iter
    (fun i ->
      match i with
      | Insn.Vop { op = Insn.Fma231; _ } -> needs_fma3 := true
      | Insn.Vfma4 _ -> needs_fma4 := true
      | Insn.Vop { w = Insn.W256; _ }
      | Insn.Vload { w = Insn.W256; _ }
      | Insn.Vstore { w = Insn.W256; _ }
      | Insn.Vbroadcast { w = Insn.W256; _ }
      | Insn.Vshuf { w = Insn.W256; _ }
      | Insn.Vblend { w = Insn.W256; _ }
      | Insn.Vperm128 _ | Insn.Vextract128 _ | Insn.Vzeroupper ->
          needs_avx := true
      | _ -> ())
    p.Insn.prog_insns;
  Cpu.SSE2 :: (if !needs_avx then [ Cpu.AVX ] else [])
  @ (if !needs_fma3 then [ Cpu.FMA3 ] else [])
  @ if !needs_fma4 then [ Cpu.FMA4 ] else []

module Exec_buf = struct
  type t = {
    addr : nativeint;
    mapped : int;  (* page-rounded mapping size *)
    code_len : int;
    mutable live : bool;
  }

  let release (t : t) =
    if t.live then begin
      t.live <- false;
      jit_unmap t.addr t.mapped
    end

  (* Map [code] executable.  The returned buffer is unmapped by the GC
     finalizer if the caller never releases it explicitly. *)
  let load (code : string) : t =
    let addr, mapped = jit_map code in
    let t = { addr; mapped; code_len = String.length code; live = true } in
    Gc.finalise release t;
    t

  (* Call the entry point with up to 8 integer-class and 4 FP
     arguments (SysV AMD64: 6 integer registers + 2 stack slots,
     xmm0-3).  [fp32] narrows the FP arguments to single precision. *)
  let invoke (t : t) ~(iargs : int64 array) ~(dargs : float array)
      ~(fp32 : bool) : unit =
    if not t.live then failwith "jit: invoke on a released code buffer";
    let ia = Array.make 8 0L in
    let da = Array.make 4 0.0 in
    if Array.length iargs > 8 then
      failwith "jit: more than 8 integer-class arguments";
    if Array.length dargs > 4 then failwith "jit: more than 4 FP arguments";
    Array.blit iargs 0 ia 0 (Array.length iargs);
    Array.blit dargs 0 da 0 (Array.length dargs);
    jit_invoke t.addr ia da fp32
end
