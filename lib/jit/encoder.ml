(* x86-64 machine-code encoder: assembles an [Insn.program] — the same
   IR the AT&T printer renders — into the byte sequence the hardware
   decodes.  Mnemonic selection mirrors [Att] exactly (the printer and
   the encoder are two renderings of one instruction-selection table):
   with [avx] set, VEX prefixes are synthesized throughout; otherwise
   legacy SSE encodings are produced, under the same two-operand
   [dst = src1] invariant the printer enforces.

   Layout of one encoded instruction:

     [legacy prefix] [REX] opcode... ModRM [SIB] [disp] [imm]
     [VEX (2- or 3-byte)] opcode ModRM [SIB] [disp] [imm]

   The 2-byte VEX form (C5) is used whenever the instruction needs
   neither REX.X/B extension bits, nor VEX.W, nor an opcode map beyond
   0F — the same choice the GNU assembler makes, so encodings can be
   cross-checked against a system toolchain.

   One deliberate divergence from the printed mnemonics: the IR's
   add/sub-immediate and register add are emitted as lea.  The IR
   (like the functional simulator) defines flags only at cmp, so the
   scheduler freely places pointer bumps between a cmp and its jcc;
   the x86 add would rewrite the flags there, lea never does.

   Branches are assembled with iterative relaxation: every jump starts
   as its rel8 short form and is widened to rel32 when the (current)
   distance does not fit; widening is monotone, so the loop reaches a
   fixpoint.  The resulting fixup table — one record per branch, with
   the offset and width of the displacement field — is part of the
   public result, so tests can decode the displacements back and prove
   they land on the label offsets. *)

open Augem_machine

exception Encode_error of string

let err fmt = Fmt.kstr (fun s -> raise (Encode_error s)) fmt

(* Hardware register numbers.  [Reg.gpr_index] is the position in the
   allocation list, which is *not* the encoding: rax=0, rcx=1, rdx=2,
   rbx=3, rsp=4, rbp=5, rsi=6, rdi=7, r8..r15=8..15. *)
let gpr_num : Reg.gpr -> int = function
  | Reg.Rax -> 0
  | Reg.Rcx -> 1
  | Reg.Rdx -> 2
  | Reg.Rbx -> 3
  | Reg.Rsp -> 4
  | Reg.Rbp -> 5
  | Reg.Rsi -> 6
  | Reg.Rdi -> 7
  | Reg.R8 -> 8
  | Reg.R9 -> 9
  | Reg.R10 -> 10
  | Reg.R11 -> 11
  | Reg.R12 -> 12
  | Reg.R13 -> 13
  | Reg.R14 -> 14
  | Reg.R15 -> 15

(* The r/m operand: a register (by hardware number) or a memory
   operand. *)
type rm =
  | R of int
  | M of Insn.mem

let fits_i8 n = n >= -128 && n <= 127
let fits_i32 n = n >= -0x8000_0000 && n <= 0x7FFF_FFFF

let add_byte buf n = Buffer.add_char buf (Char.chr (n land 0xFF))

let add_i32 buf n =
  if not (fits_i32 n) then err "displacement/immediate %d exceeds 32 bits" n;
  add_byte buf n;
  add_byte buf (n asr 8);
  add_byte buf (n asr 16);
  add_byte buf (n asr 24)

(* ModRM + optional SIB + displacement for [reg] (full 4-bit hardware
   number; the caller folds bit 3 into REX.R/VEX.R) against [rm].
   Returns (rex_x, rex_b, encoded bytes).  Special cases of the ISA:
   rsp/r12 as a base force a SIB byte; rbp/r13 as a base cannot use the
   no-displacement mod=00 form; rsp can never be an index. *)
let modrm ~reg rm : int * int * string =
  let b = Buffer.create 8 in
  match rm with
  | R r ->
      add_byte b (0xC0 lor ((reg land 7) lsl 3) lor (r land 7));
      (0, r lsr 3, Buffer.contents b)
  | M m ->
      let bn = gpr_num m.Insn.base in
      let disp = m.Insn.disp in
      let need_sib, rex_x, sib =
        match m.Insn.index with
        | None ->
            if bn land 7 = 4 then (true, 0, 0x24 lor (bn land 7) land 0xFF)
            else (false, 0, 0)
        | Some (idx, sc) ->
            let ixn = gpr_num idx in
            if ixn = 4 then err "rsp cannot be an index register";
            let ss =
              match sc with Insn.S1 -> 0 | S2 -> 1 | S4 -> 2 | S8 -> 3
            in
            (true, ixn lsr 3, (ss lsl 6) lor ((ixn land 7) lsl 3) lor (bn land 7))
      in
      let md, disp_kind =
        if disp = 0 && bn land 7 <> 5 then (0b00, `None)
        else if fits_i8 disp then (0b01, `D8)
        else (0b10, `D32)
      in
      let rm_field = if need_sib then 4 else bn land 7 in
      add_byte b ((md lsl 6) lor ((reg land 7) lsl 3) lor rm_field);
      if need_sib then add_byte b sib;
      (match disp_kind with
      | `None -> ()
      | `D8 -> add_byte b disp
      | `D32 -> add_i32 b disp);
      (rex_x, bn lsr 3, Buffer.contents b)

(* Legacy (non-VEX) instruction: optional mandatory prefix (66/F2/F3),
   REX when any extension bit (or REX.W) is needed, the opcode bytes,
   ModRM tail, optional immediates. *)
let legacy ?(prefix = "") ?(rexw = false) ~opc ~reg rm ?imm8 ?imm32 () :
    string =
  let rex_x, rex_b, tail = modrm ~reg rm in
  let rex =
    0x40
    lor (if rexw then 8 else 0)
    lor ((reg lsr 3) lsl 2)
    lor (rex_x lsl 1)
    lor rex_b
  in
  let buf = Buffer.create 16 in
  Buffer.add_string buf prefix;
  if rex <> 0x40 then add_byte buf rex;
  List.iter (add_byte buf) opc;
  Buffer.add_string buf tail;
  (match imm8 with None -> () | Some i -> add_byte buf i);
  (match imm32 with None -> () | Some i -> add_i32 buf i);
  Buffer.contents buf

(* VEX-prefixed instruction.  [pp]: 0 = none, 1 = 66, 2 = F3, 3 = F2;
   [mmap]: 1 = 0F, 2 = 0F38, 3 = 0F3A; [vvvv] is the extra source
   register number (0 when the instruction leaves the field unused —
   the inverted field then reads 1111 as the ISA requires). *)
let vex ~pp ~mmap ~w ~l ~vvvv ~reg rm ~opc ?imm8 () : string =
  let rex_x, rex_b, tail = modrm ~reg rm in
  let r = reg lsr 3 in
  let buf = Buffer.create 16 in
  let vvvv_bits = lnot vvvv land 0xF in
  if rex_x = 0 && rex_b = 0 && w = 0 && mmap = 1 then begin
    add_byte buf 0xC5;
    add_byte buf
      (((r lxor 1) lsl 7) lor (vvvv_bits lsl 3) lor (l lsl 2) lor pp)
  end
  else begin
    add_byte buf 0xC4;
    add_byte buf
      (((r lxor 1) lsl 7)
      lor ((rex_x lxor 1) lsl 6)
      lor ((rex_b lxor 1) lsl 5)
      lor mmap);
    add_byte buf ((w lsl 7) lor (vvvv_bits lsl 3) lor (l lsl 2) lor pp)
  end;
  add_byte buf opc;
  Buffer.add_string buf tail;
  (match imm8 with None -> () | Some i -> add_byte buf i);
  Buffer.contents buf

(* --- mnemonic-selection tables (mirroring [Att]) ----------------------- *)

let scalar_pp = function Etype.F64 -> 3 (* F2 *) | Etype.F32 -> 2 (* F3 *)
let packed_pp = function Etype.F64 -> 1 (* 66 *) | Etype.F32 -> 0

let pp_prefix = function
  | 0 -> ""
  | 1 -> "\x66"
  | 2 -> "\xF3"
  | 3 -> "\xF2"
  | _ -> assert false

(* pp for a width-suffixed op: scalar for W64, packed otherwise. *)
let width_pp et = function
  | Insn.W64 -> scalar_pp et
  | Insn.W128 | Insn.W256 -> packed_pp et

let vex_l = function Insn.W256 -> 1 | Insn.W64 | Insn.W128 -> 0

let arith_opc = function
  | Insn.Fadd -> 0x58
  | Insn.Fsub -> 0x5C
  | Insn.Fmul -> 0x59
  | Insn.Fdiv -> 0x5E
  | _ -> assert false

(* Jcc condition nibble (signed comparisons, matching the simulator's
   [Int64.compare] semantics). *)
let cc_bits = function
  | Insn.Clt -> 0xC
  | Insn.Cle -> 0xE
  | Insn.Cgt -> 0xF
  | Insn.Cge -> 0xD
  | Insn.Ceq -> 0x4
  | Insn.Cne -> 0x5

let require_sse2op ~avx ~what dst src1 =
  if (not avx) && dst <> src1 then
    err "SSE two-operand %s with dst=%d <> src1=%d" what dst src1

let require_avx ~avx what = if not avx then err "%s requires AVX" what

(* rax accumulator short form for add/sub/cmp with a 32-bit immediate:
   REX.W + single opcode + imm32, one byte shorter than the 81 /n
   encoding (and the form gas emits). *)
let acc_imm32 opc n =
  let buf = Buffer.create 6 in
  add_byte buf 0x48;
  add_byte buf opc;
  add_i32 buf n;
  Buffer.contents buf

(* --- one instruction ---------------------------------------------------- *)

(* Encode one non-branch instruction ([Label]/[Jmp]/[Jcc] are resolved
   at the program level; [Comment] encodes to nothing). *)
let rec encode_insn ?(avx = true) ?(et = Etype.F64) (i : Insn.t) : string =
  let sse_wide w what =
    if (not avx) && w = Insn.W256 then err "256-bit %s requires AVX" what
  in
  match i with
  | Insn.Vop { op; w; dst; src1; src2 } -> (
      match op with
      | Insn.Fadd | Insn.Fsub | Insn.Fmul | Insn.Fdiv ->
          sse_wide w "arith";
          let opc = arith_opc op and pp = width_pp et w in
          if avx then
            vex ~pp ~mmap:1 ~w:0 ~l:(vex_l w) ~vvvv:src1 ~reg:dst (R src2)
              ~opc ()
          else begin
            require_sse2op ~avx ~what:"arith" dst src1;
            legacy ~prefix:(pp_prefix pp) ~opc:[ 0x0F; opc ] ~reg:dst (R src2)
              ()
          end
      | Insn.Fxor ->
          sse_wide w "xor";
          let pp = packed_pp et in
          if avx then
            vex ~pp ~mmap:1 ~w:0 ~l:(vex_l w) ~vvvv:src1 ~reg:dst (R src2)
              ~opc:0x57 ()
          else begin
            require_sse2op ~avx ~what:"xor" dst src1;
            legacy ~prefix:(pp_prefix pp) ~opc:[ 0x0F; 0x57 ] ~reg:dst
              (R src2) ()
          end
      | Insn.Fmov ->
          sse_wide w "mova";
          let pp = packed_pp et in
          if avx then
            if src1 >= 8 && dst < 8 then
              (* store form (0x29, reg = src, rm = dst) keeps the rm
                 field below 8, so the two-byte C5 prefix suffices —
                 the same size optimisation gas applies *)
              vex ~pp ~mmap:1 ~w:0 ~l:(vex_l w) ~vvvv:0 ~reg:src1 (R dst)
                ~opc:0x29 ()
            else
              vex ~pp ~mmap:1 ~w:0 ~l:(vex_l w) ~vvvv:0 ~reg:dst (R src1)
                ~opc:0x28 ()
          else
            legacy ~prefix:(pp_prefix pp) ~opc:[ 0x0F; 0x28 ] ~reg:dst
              (R src1) ()
      | Insn.Fma231 ->
          require_avx ~avx "vfmadd231";
          let wbit = match et with Etype.F64 -> 1 | Etype.F32 -> 0 in
          let opc = match w with Insn.W64 -> 0xB9 | _ -> 0xB8 in
          vex ~pp:1 ~mmap:2 ~w:wbit ~l:(vex_l w) ~vvvv:src1 ~reg:dst (R src2)
            ~opc ()
      | Insn.Fhadd ->
          sse_wide w "hadd";
          (* haddpd is 66-prefixed, haddps is F2-prefixed *)
          let pp = match et with Etype.F64 -> 1 | Etype.F32 -> 3 in
          if avx then
            vex ~pp ~mmap:1 ~w:0 ~l:(vex_l w) ~vvvv:src1 ~reg:dst (R src2)
              ~opc:0x7C ()
          else begin
            require_sse2op ~avx ~what:"hadd" dst src1;
            legacy ~prefix:(pp_prefix pp) ~opc:[ 0x0F; 0x7C ] ~reg:dst
              (R src2) ()
          end
      | Insn.Funpckl | Insn.Funpckh ->
          sse_wide w "unpck";
          let pp = packed_pp et in
          let opc = if op = Insn.Funpckl then 0x14 else 0x15 in
          if avx then
            vex ~pp ~mmap:1 ~w:0 ~l:(vex_l w) ~vvvv:src1 ~reg:dst (R src2)
              ~opc ()
          else begin
            require_sse2op ~avx ~what:"unpck" dst src1;
            legacy ~prefix:(pp_prefix pp) ~opc:[ 0x0F; opc ] ~reg:dst (R src2)
              ()
          end)
  | Insn.Vfma4 { w; dst; a; b; c } ->
      require_avx ~avx "vfmadd (FMA4)";
      let opc =
        match (w, et) with
        | Insn.W64, Etype.F64 -> 0x6B (* vfmaddsd *)
        | Insn.W64, Etype.F32 -> 0x6A (* vfmaddss *)
        | _, Etype.F64 -> 0x69 (* vfmaddpd *)
        | _, Etype.F32 -> 0x68 (* vfmaddps *)
      in
      (* VEX.W0: reg = dst, vvvv = src1 (a), rm = src2 (b), imm[7:4] =
         src3 (c) *)
      vex ~pp:1 ~mmap:3 ~w:0 ~l:(vex_l w) ~vvvv:a ~reg:dst (R b) ~opc
        ~imm8:(c lsl 4) ()
  | Insn.Vload { w; dst; src } -> (
      match w with
      | Insn.W64 ->
          let pp = scalar_pp et in
          if avx then
            vex ~pp ~mmap:1 ~w:0 ~l:0 ~vvvv:0 ~reg:dst (M src) ~opc:0x10 ()
          else
            legacy ~prefix:(pp_prefix pp) ~opc:[ 0x0F; 0x10 ] ~reg:dst (M src)
              ()
      | Insn.W128 | Insn.W256 ->
          sse_wide w "movu";
          let pp = packed_pp et in
          if avx then
            vex ~pp ~mmap:1 ~w:0 ~l:(vex_l w) ~vvvv:0 ~reg:dst (M src)
              ~opc:0x10 ()
          else
            legacy ~prefix:(pp_prefix pp) ~opc:[ 0x0F; 0x10 ] ~reg:dst (M src)
              ())
  | Insn.Vstore { w; src; dst } -> (
      match w with
      | Insn.W64 ->
          let pp = scalar_pp et in
          if avx then
            vex ~pp ~mmap:1 ~w:0 ~l:0 ~vvvv:0 ~reg:src (M dst) ~opc:0x11 ()
          else
            legacy ~prefix:(pp_prefix pp) ~opc:[ 0x0F; 0x11 ] ~reg:src (M dst)
              ()
      | Insn.W128 | Insn.W256 ->
          sse_wide w "movu";
          let pp = packed_pp et in
          if avx then
            vex ~pp ~mmap:1 ~w:0 ~l:(vex_l w) ~vvvv:0 ~reg:src (M dst)
              ~opc:0x11 ()
          else
            legacy ~prefix:(pp_prefix pp) ~opc:[ 0x0F; 0x11 ] ~reg:src (M dst)
              ())
  | Insn.Vbroadcast { w; dst; src } -> (
      match (w, et) with
      | Insn.W64, _ ->
          encode_insn ~avx ~et (Insn.Vload { w = Insn.W64; dst; src })
      | Insn.W128, Etype.F64 ->
          (* movddup / vmovddup *)
          if avx then
            vex ~pp:3 ~mmap:1 ~w:0 ~l:0 ~vvvv:0 ~reg:dst (M src) ~opc:0x12 ()
          else legacy ~prefix:"\xF2" ~opc:[ 0x0F; 0x12 ] ~reg:dst (M src) ()
      | Insn.W128, Etype.F32 ->
          require_avx ~avx "vbroadcastss";
          vex ~pp:1 ~mmap:2 ~w:0 ~l:0 ~vvvv:0 ~reg:dst (M src) ~opc:0x18 ()
      | Insn.W256, Etype.F64 ->
          require_avx ~avx "vbroadcastsd";
          vex ~pp:1 ~mmap:2 ~w:0 ~l:1 ~vvvv:0 ~reg:dst (M src) ~opc:0x19 ()
      | Insn.W256, Etype.F32 ->
          require_avx ~avx "vbroadcastss";
          vex ~pp:1 ~mmap:2 ~w:0 ~l:1 ~vvvv:0 ~reg:dst (M src) ~opc:0x18 ())
  | Insn.Vshuf { w; dst; src1; src2; imm } ->
      sse_wide w "shuf";
      let pp = packed_pp et in
      if avx then
        vex ~pp ~mmap:1 ~w:0 ~l:(vex_l w) ~vvvv:src1 ~reg:dst (R src2)
          ~opc:0xC6 ~imm8:imm ()
      else begin
        require_sse2op ~avx ~what:"shuf" dst src1;
        legacy ~prefix:(pp_prefix pp) ~opc:[ 0x0F; 0xC6 ] ~reg:dst (R src2)
          ~imm8:imm ()
      end
  | Insn.Vblend { w; dst; src1; src2; imm } ->
      sse_wide w "blend";
      (* blendpd/blendps are both 66-prefixed 0F3A ops *)
      let opc = match et with Etype.F64 -> 0x0D | Etype.F32 -> 0x0C in
      if avx then
        vex ~pp:1 ~mmap:3 ~w:0 ~l:(vex_l w) ~vvvv:src1 ~reg:dst (R src2) ~opc
          ~imm8:imm ()
      else begin
        require_sse2op ~avx ~what:"blend" dst src1;
        legacy ~prefix:"\x66" ~opc:[ 0x0F; 0x3A; opc ] ~reg:dst (R src2)
          ~imm8:imm ()
      end
  | Insn.Vperm128 { dst; src1; src2; imm } ->
      require_avx ~avx "vperm2f128";
      vex ~pp:1 ~mmap:3 ~w:0 ~l:1 ~vvvv:src1 ~reg:dst (R src2) ~opc:0x06
        ~imm8:imm ()
  | Insn.Vextract128 { dst; src; lane } ->
      require_avx ~avx "vextractf128";
      (* reg = source ymm, rm = destination xmm *)
      vex ~pp:1 ~mmap:3 ~w:0 ~l:1 ~vvvv:0 ~reg:src (R dst) ~opc:0x19
        ~imm8:lane ()
  | Insn.Movq_xr { dst; src } -> (
      let srcn = gpr_num src in
      match et with
      | Etype.F64 ->
          if avx then
            vex ~pp:1 ~mmap:1 ~w:1 ~l:0 ~vvvv:0 ~reg:dst (R srcn) ~opc:0x6E ()
          else
            legacy ~prefix:"\x66" ~rexw:true ~opc:[ 0x0F; 0x6E ] ~reg:dst
              (R srcn) ()
      | Etype.F32 ->
          if avx then
            vex ~pp:1 ~mmap:1 ~w:0 ~l:0 ~vvvv:0 ~reg:dst (R srcn) ~opc:0x6E ()
          else
            legacy ~prefix:"\x66" ~opc:[ 0x0F; 0x6E ] ~reg:dst (R srcn) ())
  | Insn.Movri (r, n) ->
      if fits_i32 n then
        legacy ~rexw:true ~opc:[ 0xC7 ] ~reg:0 (R (gpr_num r)) ~imm32:n ()
      else encode_insn ~avx ~et (Insn.Movabs (r, Int64.of_int n))
  | Insn.Movabs (r, v) ->
      let n = gpr_num r in
      let buf = Buffer.create 10 in
      add_byte buf (0x48 lor (n lsr 3));
      add_byte buf (0xB8 lor (n land 7));
      for i = 0 to 7 do
        add_byte buf (Int64.to_int (Int64.shift_right_logical v (8 * i)))
      done;
      Buffer.contents buf
  | Insn.Movrr (d, s) ->
      legacy ~rexw:true ~opc:[ 0x89 ] ~reg:(gpr_num s) (R (gpr_num d)) ()
  | Insn.Loadq (d, m) ->
      legacy ~rexw:true ~opc:[ 0x8B ] ~reg:(gpr_num d) (M m) ()
  | Insn.Storeq (m, s) ->
      legacy ~rexw:true ~opc:[ 0x89 ] ~reg:(gpr_num s) (M m) ()
  | Insn.Addri (r, n) ->
      (* The IR's add does not define flags — in the simulator's
         semantics only cmp does — but the x86 add rewrites all of
         them, and the scheduler freely places pointer bumps between a
         cmp and its jcc.  lea is the faithful flags-neutral
         encoding. *)
      legacy ~rexw:true ~opc:[ 0x8D ] ~reg:(gpr_num r)
        (M { Insn.base = r; index = None; disp = n }) ()
  | Insn.Addrr (d, s) ->
      (* flags-neutral add: lea (%base,%index,1); rsp cannot be an
         index, so put it in the base slot when it appears *)
      let base, index = if s = Reg.Rsp then (s, d) else (d, s) in
      if gpr_num index = 4 then
        err "addq %%rsp, %%rsp has no flags-neutral encoding";
      legacy ~rexw:true ~opc:[ 0x8D ] ~reg:(gpr_num d)
        (M { Insn.base; index = Some (index, Insn.S1); disp = 0 }) ()
  | Insn.Subri (r, n) ->
      (* flags-neutral sub-immediate: lea with the negated
         displacement *)
      legacy ~rexw:true ~opc:[ 0x8D ] ~reg:(gpr_num r)
        (M { Insn.base = r; index = None; disp = -n }) ()
  | Insn.Subrr (d, s) ->
      legacy ~rexw:true ~opc:[ 0x29 ] ~reg:(gpr_num s) (R (gpr_num d)) ()
  | Insn.Imulrr (d, s) ->
      legacy ~rexw:true ~opc:[ 0x0F; 0xAF ] ~reg:(gpr_num d) (R (gpr_num s)) ()
  | Insn.Imulri (d, s, n) ->
      if fits_i8 n then
        legacy ~rexw:true ~opc:[ 0x6B ] ~reg:(gpr_num d) (R (gpr_num s))
          ~imm8:n ()
      else
        legacy ~rexw:true ~opc:[ 0x69 ] ~reg:(gpr_num d) (R (gpr_num s))
          ~imm32:n ()
  | Insn.Shlri (r, n) ->
      if n = 1 then legacy ~rexw:true ~opc:[ 0xD1 ] ~reg:4 (R (gpr_num r)) ()
      else legacy ~rexw:true ~opc:[ 0xC1 ] ~reg:4 (R (gpr_num r)) ~imm8:n ()
  | Insn.Negr r ->
      legacy ~rexw:true ~opc:[ 0xF7 ] ~reg:3 (R (gpr_num r)) ()
  | Insn.Lea (d, m) ->
      legacy ~rexw:true ~opc:[ 0x8D ] ~reg:(gpr_num d) (M m) ()
  | Insn.Cmprr (a, b) ->
      (* cmp a, b (AT&T: cmpq %b, %a): 39 /r with rm = a, reg = b *)
      legacy ~rexw:true ~opc:[ 0x39 ] ~reg:(gpr_num b) (R (gpr_num a)) ()
  | Insn.Cmpri (a, n) ->
      if fits_i8 n then
        legacy ~rexw:true ~opc:[ 0x83 ] ~reg:7 (R (gpr_num a)) ~imm8:n ()
      else if a = Reg.Rax then acc_imm32 0x3D n
      else legacy ~rexw:true ~opc:[ 0x81 ] ~reg:7 (R (gpr_num a)) ~imm32:n ()
  | Insn.Push r ->
      let n = gpr_num r in
      let buf = Buffer.create 2 in
      if n lsr 3 = 1 then add_byte buf 0x41;
      add_byte buf (0x50 lor (n land 7));
      Buffer.contents buf
  | Insn.Pop r ->
      let n = gpr_num r in
      let buf = Buffer.create 2 in
      if n lsr 3 = 1 then add_byte buf 0x41;
      add_byte buf (0x58 lor (n land 7));
      Buffer.contents buf
  | Insn.Ret -> "\xC3"
  | Insn.Vzeroupper -> "\xC5\xF8\x77"
  | Insn.Prefetch (k, m) ->
      let opc, reg =
        match k with
        | Insn.Pf_t0 -> ([ 0x0F; 0x18 ], 1) (* prefetcht0: /1 *)
        | Insn.Pf_w -> ([ 0x0F; 0x0D ], 1) (* prefetchw: /1 *)
      in
      legacy ~opc ~reg (M m) ()
  | Insn.Comment _ -> ""
  | Insn.Label l -> err "encode_insn: unplaced label %s" l
  | Insn.Jmp l | Insn.Jcc (_, l) ->
      err "encode_insn: unresolved branch to %s" l

(* --- program assembly with branch relaxation --------------------------- *)

type fixup = {
  fx_label : string;  (* branch target *)
  fx_at : int;  (* byte offset of the displacement field *)
  fx_size : int;  (* 1 (rel8) or 4 (rel32) *)
  fx_next : int;  (* offset of the next instruction (the rel base) *)
}

type encoded = {
  enc_code : string;
  enc_labels : (string * int) list;  (* label -> byte offset *)
  enc_offsets : int array;  (* per source instruction, byte offset *)
  enc_fixups : fixup list;
}

type chunk =
  | C_bytes of string
  | C_label of string
  | C_jump of { cond : Insn.cond option; label : string; mutable long : bool }

(* --- flags-hazard audit ------------------------------------------------- *)

(* The IR defines flags only at cmp (the simulator's model); the
   encoder keeps add/sub-immediate/register-add flags-neutral by
   emitting lea, but sub, imul, shl and neg have no flags-neutral
   x86 encoding.  One of those between a cmp and a dependent jcc would
   silently redirect the branch on hardware while the simulator sails
   on — exactly the class of bug native execution must never inherit —
   so it is a hard encode error. *)
let clobbers_flags = function
  | Insn.Subrr _ | Insn.Imulrr _ | Insn.Imulri _ | Insn.Shlri _ | Insn.Negr _
    ->
      true
  | _ -> false

let sets_flags = function
  | Insn.Cmprr _ | Insn.Cmpri _ -> true
  | _ -> false

(* Walking back from each jcc, only flags-neutral straight-line code
   (other jccs included: they read, never write, flags) may separate it
   from its cmp.  A label or jmp in between leaves the flag source
   unprovable on some path, which is equally rejected — conservative,
   and no generated program trips it. *)
let audit_flags (insns : Insn.t array) : unit =
  Array.iteri
    (fun i insn ->
      match insn with
      | Insn.Jcc (_, l) ->
          let rec back j =
            if j < 0 then
              err "jcc %s: no flag-setting cmp in straight-line code" l
            else
              let p = insns.(j) in
              if sets_flags p then ()
              else if clobbers_flags p then
                err "flags clobbered between cmp and jcc %s" l
              else
                match p with
                | Insn.Label _ | Insn.Jmp _ ->
                    err "jcc %s: flag source crosses a control-flow boundary"
                      l
                | _ -> back (j - 1)
          in
          back (i - 1)
      | _ -> ())
    insns

let jump_size c =
  match c with
  | C_bytes s -> String.length s
  | C_label _ -> 0
  | C_jump { cond; long; _ } -> (
      match (cond, long) with
      | _, false -> 2
      | None, true -> 5
      | Some _, true -> 6)

let encode_program ?(avx = true) ?(et = Etype.F64) (p : Insn.program) :
    encoded =
  let insns = Array.of_list p.Insn.prog_insns in
  audit_flags insns;
  let chunks =
    Array.map
      (fun i ->
        match i with
        | Insn.Label l -> C_label l
        | Insn.Jmp l -> C_jump { cond = None; label = l; long = false }
        | Insn.Jcc (c, l) -> C_jump { cond = Some c; label = l; long = false }
        | _ -> C_bytes (encode_insn ~avx ~et i))
      insns
  in
  let n = Array.length chunks in
  let offsets = Array.make n 0 in
  let compute_layout () =
    let labels = Hashtbl.create 16 in
    let off = ref 0 in
    Array.iteri
      (fun i c ->
        offsets.(i) <- !off;
        (match c with
        | C_label l ->
            if Hashtbl.mem labels l then err "duplicate label %s" l;
            Hashtbl.replace labels l !off
        | _ -> ());
        off := !off + jump_size c)
      chunks;
    (labels, !off)
  in
  let target labels l =
    match Hashtbl.find_opt labels l with
    | Some o -> o
    | None -> err "undefined label %s" l
  in
  (* widen out-of-range rel8 branches until a fixpoint; widening only
     grows distances, so no branch ever shrinks back *)
  let changed = ref true in
  while !changed do
    changed := false;
    let labels, _ = compute_layout () in
    Array.iteri
      (fun i c ->
        match c with
        | C_jump ({ long = false; label; _ } as j) ->
            let next = offsets.(i) + jump_size c in
            let rel = target labels label - next in
            if not (fits_i8 rel) then begin
              j.long <- true;
              changed := true
            end
        | _ -> ())
      chunks
  done;
  let labels, total = compute_layout () in
  let buf = Buffer.create (total + 16) in
  let fixups = ref [] in
  Array.iteri
    (fun i c ->
      match c with
      | C_bytes s -> Buffer.add_string buf s
      | C_label _ -> ()
      | C_jump { cond; label; long } ->
          let next = offsets.(i) + jump_size c in
          let rel = target labels label - next in
          let at =
            match (cond, long) with
            | None, false ->
                add_byte buf 0xEB;
                offsets.(i) + 1
            | Some cnd, false ->
                add_byte buf (0x70 lor cc_bits cnd);
                offsets.(i) + 1
            | None, true ->
                add_byte buf 0xE9;
                offsets.(i) + 1
            | Some cnd, true ->
                add_byte buf 0x0F;
                add_byte buf (0x80 lor cc_bits cnd);
                offsets.(i) + 2
          in
          if long then add_i32 buf rel
          else begin
            if not (fits_i8 rel) then err "rel8 overflow to %s" label;
            add_byte buf rel
          end;
          fixups :=
            {
              fx_label = label;
              fx_at = at;
              fx_size = (if long then 4 else 1);
              fx_next = next;
            }
            :: !fixups)
    chunks;
  let code = Buffer.contents buf in
  if String.length code <> total then
    err "layout mismatch: emitted %d bytes, laid out %d" (String.length code)
      total;
  {
    enc_code = code;
    enc_labels =
      Hashtbl.fold (fun l o acc -> (l, o) :: acc) labels []
      |> List.sort compare;
    enc_offsets = offsets;
    enc_fixups = List.rev !fixups;
  }

(* Decode the displacement a fixup points at and return the absolute
   byte offset the branch lands on — the round-trip inverse used by the
   label-fixup tests. *)
let resolve_fixup (e : encoded) (f : fixup) : int =
  let byte i = Char.code e.enc_code.[i] in
  let rel =
    if f.fx_size = 1 then
      let b = byte f.fx_at in
      if b >= 128 then b - 256 else b
    else
      let v =
        byte f.fx_at
        lor (byte (f.fx_at + 1) lsl 8)
        lor (byte (f.fx_at + 2) lsl 16)
        lor (byte (f.fx_at + 3) lsl 24)
      in
      if v land 0x8000_0000 <> 0 then v - (1 lsl 32) else v
  in
  f.fx_next + rel

(* Hex rendering of a byte string, for golden tables. *)
let to_hex (s : string) : string =
  String.concat " "
    (List.init (String.length s) (fun i -> Printf.sprintf "%02x" (Char.code s.[i])))
