(** Retry with exponential backoff and deterministic jitter.

    Purpose-built for the [augem request] client: transient failures
    (transport errors, [E_overload]) are worth retrying, semantic ones
    ([E_bad_request]) never are — the caller supplies the classifier.

    Jitter is {i deterministic}: a hash of (seed, attempt) scales each
    exponential envelope into [0.5 × envelope, 1.0 × envelope].  Two
    clients seeded differently desynchronize; one client replays its
    exact schedule, which is what a reproducible chaos run needs. *)

type policy = {
  r_max : int;  (** retries after the first attempt; 0 = no retry *)
  r_base_ms : float;  (** envelope of the first retry *)
  r_cap_ms : float;  (** envelope ceiling *)
  r_seed : int;  (** jitter seed *)
}

(** [{ r_max = 0; r_base_ms = 100.; r_cap_ms = 5000.; r_seed = 0 }] *)
val default : policy

(** Delay before the [attempt]-th retry (1-based), jitter applied. *)
val delay_ms : policy -> int -> float

(** The full schedule, [r_max] entries. *)
val delays_ms : policy -> float list

(** [run p ~retryable f] calls [f] up to [1 + r_max] times, sleeping
    [delay_ms] between attempts via [sleep] (default: no-op, so tests
    never wait).  Only [Error e] with [retryable e = true] is retried;
    the final result is returned as-is.  [on_retry] observes each
    scheduled retry. *)
val run :
  policy ->
  ?sleep:(float -> unit) ->
  ?on_retry:(attempt:int -> delay_ms:float -> 'e -> unit) ->
  retryable:('e -> bool) ->
  (unit -> ('a, 'e) Stdlib.result) ->
  ('a, 'e) Stdlib.result
