(* Named, injectable fault points.  See faultpoint.mli. *)

exception Injected of string
exception Worker_kill of string

type action = Fail | Kill | Delay_ms of float | Corrupt of int

let action_to_string = function
  | Fail -> "fail"
  | Kill -> "kill"
  | Delay_ms ms -> Printf.sprintf "delay(%.0fms)" ms
  | Corrupt seed -> Printf.sprintf "corrupt(%d)" seed

type trigger = { tr_point : string; tr_hit : int; tr_action : action }

let trigger_to_string t =
  Printf.sprintf "%s@%d:%s" t.tr_point t.tr_hit (action_to_string t.tr_action)

(* One mutex guards all registry state.  Fault points sit on hot paths
   only in chaos/test builds conceptually, but the disarmed fast path
   is a single mutex-protected counter bump — nanoseconds against the
   I/O and sweeps the wrapped operations perform. *)
let m = Mutex.create ()
let catalog : (string, unit) Hashtbl.t = Hashtbl.create 32
let counts : (string, int ref) Hashtbl.t = Hashtbl.create 32
let armed : trigger list ref = ref []
let injected = ref 0
let delayed = ref 0
let sleeper : (float -> unit) ref = ref (fun _ -> ())

let register name =
  Mutex.protect m (fun () -> Hashtbl.replace catalog name ())

let points () =
  Mutex.protect m (fun () ->
      Hashtbl.fold (fun k () acc -> k :: acc) catalog []
      |> List.sort String.compare)

let hit_count name =
  Mutex.protect m (fun () ->
      match Hashtbl.find_opt counts name with Some r -> !r | None -> 0)

let injected_total () = Mutex.protect m (fun () -> !injected)
let delayed_total () = Mutex.protect m (fun () -> !delayed)

let arm triggers = Mutex.protect m (fun () -> armed := triggers)
let disarm () = Mutex.protect m (fun () -> armed := [])
let is_armed () = Mutex.protect m (fun () -> !armed <> [])

let reset_counters () =
  Mutex.protect m (fun () ->
      Hashtbl.reset counts;
      injected := 0;
      delayed := 0)

let set_sleeper f = Mutex.protect m (fun () -> sleeper := f)

(* Record a hit and return the matching armed action, if any.  The
   trigger fires on exactly its [tr_hit]-th hit of the point (1-based),
   so one schedule can target e.g. "the second disk read". *)
let observe (name : string) : action option =
  Mutex.protect m (fun () ->
      Hashtbl.replace catalog name ();
      let n =
        match Hashtbl.find_opt counts name with
        | Some r ->
            incr r;
            !r
        | None ->
            Hashtbl.replace counts name (ref 1);
            1
      in
      match
        List.find_opt
          (fun t -> String.equal t.tr_point name && t.tr_hit = n)
          !armed
      with
      | Some t ->
          (match t.tr_action with
          | Fail | Kill -> incr injected
          | Delay_ms _ -> incr delayed
          | Corrupt _ -> incr injected);
          Some t.tr_action
      | None -> None)

let hit (name : string) : unit =
  match observe name with
  | None -> ()
  | Some Fail -> raise (Injected name)
  | Some Kill -> raise (Worker_kill name)
  | Some (Delay_ms ms) -> !sleeper ms
  | Some (Corrupt _) ->
      (* a corrupt action on a control-flow point degenerates to a
         failure: there are no bytes to mangle *)
      raise (Injected name)

let wrap (name : string) (f : unit -> 'a) : 'a =
  hit name;
  f ()

(* Deterministic byte mangling: truncate to a seed-derived prefix and
   flip one byte, so a checksum over the result cannot hold.  The same
   (seed, input) always yields the same corruption. *)
let mangle ~seed (s : string) : string =
  let n = String.length s in
  if n = 0 then "\xff"
  else begin
    let mix = (seed * 2654435761) land 0x3FFFFFFF in
    let keep = 1 + (mix mod n) in
    let b = Bytes.of_string (String.sub s 0 keep) in
    let i = mix mod keep in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x5A));
    Bytes.to_string b
  end

let corrupting (name : string) (s : string) : string =
  match observe name with
  | None -> s
  | Some (Corrupt seed) -> mangle ~seed s
  | Some Fail -> raise (Injected name)
  | Some Kill -> raise (Worker_kill name)
  | Some (Delay_ms ms) ->
      !sleeper ms;
      s
