(** Named, injectable fault points — the service-runtime counterpart of
    {!Augem_verify.Faults} for generated code.

    A component marks every operation that can fail in production
    (disk reads, fsyncs, renames, worker task pickup, compute calls)
    with a named point:

    {[
      Faultpoint.hit "cache.store.renamed";             (* control point *)
      Faultpoint.wrap "registry.compute" compute;       (* wrapped thunk *)
      Faultpoint.corrupting "cache.read.bytes" contents (* data point *)
    ]}

    Disarmed (the default), a point only bumps a counter.  The chaos
    driver {!arm}s a deterministic schedule of {!trigger}s — "on the
    2nd hit of [cache.read.bytes], corrupt the bytes with seed 7" —
    runs a scripted serve session, and asserts the service invariants
    held.  Every injection is reproducible from the schedule alone: no
    randomness lives here, only exact (point, hit-index, action)
    triples.

    Thread- and domain-safe; all state is process-global so fault
    points deep inside libraries need no plumbing. *)

(** Raised by a [Fail]-triggered point. *)
exception Injected of string

(** Raised by a [Kill]-triggered point: simulates the death of the
    executing worker.  {!Augem_parallel.Taskq} treats it as fatal to
    the worker domain (supervised respawn) rather than as an ordinary
    task exception. *)
exception Worker_kill of string

type action =
  | Fail  (** raise {!Injected} *)
  | Kill  (** raise {!Worker_kill} *)
  | Delay_ms of float  (** invoke the installed sleeper *)
  | Corrupt of int  (** mangle bytes deterministically from this seed *)

val action_to_string : action -> string

(** Fire [tr_action] on exactly the [tr_hit]-th (1-based) hit of
    [tr_point] after arming. *)
type trigger = { tr_point : string; tr_hit : int; tr_action : action }

val trigger_to_string : trigger -> string

(** Install a schedule (replacing any previous one).  Hit counters are
    {i not} reset — call {!reset_counters} first for a fresh session. *)
val arm : trigger list -> unit

val disarm : unit -> unit
val is_armed : unit -> bool

(** Pre-declare a point so {!points} lists it before first use. *)
val register : string -> unit

(** Every point ever registered or hit, sorted. *)
val points : unit -> string list

val hit_count : string -> int
val injected_total : unit -> int
val delayed_total : unit -> int
val reset_counters : unit -> unit

(** The function [Delay_ms] actions call; defaults to a no-op so
    deterministic tests never sleep.  The serve CLI installs a real
    sleeper. *)
val set_sleeper : (float -> unit) -> unit

(** Record a hit of [name]; raise / delay if a trigger matches. *)
val hit : string -> unit

(** [wrap name f] = [hit name; f ()]. *)
val wrap : string -> (unit -> 'a) -> 'a

(** Data-plane point: returns the bytes unchanged unless a [Corrupt]
    trigger matches, in which case they are mangled deterministically
    (truncation + a flipped byte — no checksum can survive it).
    [Fail]/[Kill] triggers raise as for {!hit}. *)
val corrupting : string -> string -> string
