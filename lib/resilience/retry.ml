(* Exponential backoff with deterministic jitter.  See retry.mli. *)

type policy = {
  r_max : int;
  r_base_ms : float;
  r_cap_ms : float;
  r_seed : int;
}

let default = { r_max = 0; r_base_ms = 100.; r_cap_ms = 5000.; r_seed = 0 }

(* splitmix64-style integer mix; good avalanche, no state *)
let mix (a : int) (b : int) : int =
  let z = (a * 0x9E3779B1) lxor (b * 0x85EBCA77) in
  let z = (z lxor (z lsr 15)) * 0xC2B2AE35 in
  (z lxor (z lsr 13)) land 0x3FFFFFFF

(* attempt is 1-based: the delay before the attempt-th retry.
   Full-jitter-lite: exponential envelope, scaled into [0.5, 1.0] by a
   hash of (seed, attempt) so two clients with different seeds do not
   retry in lockstep, yet one client replays identically. *)
let delay_ms (p : policy) (attempt : int) : float =
  let envelope =
    Float.min p.r_cap_ms
      (p.r_base_ms *. Float.pow 2. (float_of_int (attempt - 1)))
  in
  let jitter =
    0.5 +. (0.5 *. float_of_int (mix p.r_seed attempt) /. 1073741823.)
  in
  envelope *. jitter

let delays_ms (p : policy) : float list =
  List.init (max 0 p.r_max) (fun i -> delay_ms p (i + 1))

let run (p : policy) ?(sleep = fun _ -> ())
    ?(on_retry = fun ~attempt:_ ~delay_ms:_ _ -> ())
    ~(retryable : 'e -> bool) (f : unit -> ('a, 'e) Stdlib.result) :
    ('a, 'e) Stdlib.result =
  let rec go attempt =
    match f () with
    | Ok _ as ok -> ok
    | Error e when attempt <= p.r_max && retryable e ->
        let d = delay_ms p attempt in
        on_retry ~attempt ~delay_ms:d e;
        sleep d;
        go (attempt + 1)
    | Error _ as err -> err
  in
  go 1
