(** Per-key circuit breaker: stops one pathological key (kernel ×
    arch × space) from monopolizing the tuning pool.

    State machine, per key:

    {v
      closed --N consecutive failures--> open
      open   --cooldown elapsed, first admit--> half_open (that caller probes)
      half_open --probe success--> closed
      half_open --probe failure--> open (fresh cooldown)
    v}

    While a key is open (or a probe is outstanding), {!admit} answers
    [Reject] immediately — the service serves the safe-baseline kernel
    with an [E_circuit_open] annotation instead of queuing yet another
    doomed sweep.  A success in any state fully closes the key.

    The clock is injectable so cooldown expiry is testable with a fake
    clock, deterministically. *)

(** Raised by callers (e.g. the registry) on a [Reject]ed key; the
    payload is the key description. *)
exception Open_circuit of string

type t

(** [create ~threshold ~cooldown_s ~now ()]: open a key after
    [threshold] consecutive failures (clamped to ≥ 1); allow a probe
    [cooldown_s] after opening.  [now] defaults to
    [Unix.gettimeofday]. *)
val create :
  ?threshold:int -> ?cooldown_s:float -> ?now:(unit -> float) -> unit -> t

val threshold : t -> int
val cooldown_s : t -> float

type decision =
  | Allow  (** closed: proceed normally *)
  | Probe  (** half-open: this caller carries the probe *)
  | Reject  (** open: degrade immediately *)

val decision_to_string : decision -> string

(** Ask to run a compute for [key]; may transition open → half-open. *)
val admit : t -> string -> decision

(** A compute for [key] succeeded: close it (and reset its count). *)
val success : t -> string -> unit

(** A compute for [key] failed: bump its consecutive-failure count,
    opening at the threshold; a failed probe re-opens. *)
val failure : t -> string -> unit

(** ["closed"], ["open"] or ["half_open"] — for stats/tests. *)
val state_name : t -> string -> string

(** Keys currently open or half-open. *)
val open_now : t -> int

(** Times any key transitioned to open, ever. *)
val opened_total : t -> int

(** Admits answered [Reject], ever. *)
val rejected_total : t -> int
