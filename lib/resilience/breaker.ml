(* Per-key circuit breaker.  See breaker.mli. *)

exception Open_circuit of string

type state =
  | Closed of int  (* consecutive failures so far *)
  | Open of float  (* opened at (clock time) *)
  | Half_open  (* cooldown elapsed; one probe is in flight *)

type t = {
  m : Mutex.t;
  keys : (string, state) Hashtbl.t;
  threshold : int;
  cooldown_s : float;
  now : unit -> float;
  mutable opened_total : int;
  mutable rejected_total : int;
}

let create ?(threshold = 3) ?(cooldown_s = 30.) ?(now = Unix.gettimeofday) ()
    : t =
  {
    m = Mutex.create ();
    keys = Hashtbl.create 16;
    threshold = max 1 threshold;
    cooldown_s;
    now;
    opened_total = 0;
    rejected_total = 0;
  }

let threshold t = t.threshold
let cooldown_s t = t.cooldown_s

type decision = Allow | Probe | Reject

let decision_to_string = function
  | Allow -> "allow"
  | Probe -> "probe"
  | Reject -> "reject"

let admit (t : t) (key : string) : decision =
  Mutex.protect t.m (fun () ->
      match Hashtbl.find_opt t.keys key with
      | None | Some (Closed _) -> Allow
      | Some (Open since) ->
          if t.now () -. since >= t.cooldown_s then begin
            (* cooldown over: let exactly one probe through; everyone
               else keeps getting the fast degraded answer until the
               probe reports back *)
            Hashtbl.replace t.keys key Half_open;
            Probe
          end
          else begin
            t.rejected_total <- t.rejected_total + 1;
            Reject
          end
      | Some Half_open ->
          t.rejected_total <- t.rejected_total + 1;
          Reject)

let success (t : t) (key : string) : unit =
  Mutex.protect t.m (fun () -> Hashtbl.remove t.keys key)

let failure (t : t) (key : string) : unit =
  Mutex.protect t.m (fun () ->
      match Hashtbl.find_opt t.keys key with
      | Some (Open _) -> ()
      | Some Half_open ->
          (* the probe failed: straight back to open, new cooldown *)
          t.opened_total <- t.opened_total + 1;
          Hashtbl.replace t.keys key (Open (t.now ()))
      | None | Some (Closed _) ->
          let n =
            match Hashtbl.find_opt t.keys key with
            | Some (Closed n) -> n + 1
            | _ -> 1
          in
          if n >= t.threshold then begin
            t.opened_total <- t.opened_total + 1;
            Hashtbl.replace t.keys key (Open (t.now ()))
          end
          else Hashtbl.replace t.keys key (Closed n))

let state_name (t : t) (key : string) : string =
  Mutex.protect t.m (fun () ->
      match Hashtbl.find_opt t.keys key with
      | None | Some (Closed _) -> "closed"
      | Some (Open _) -> "open"
      | Some Half_open -> "half_open")

let open_now (t : t) : int =
  Mutex.protect t.m (fun () ->
      Hashtbl.fold
        (fun _ s acc ->
          match s with Open _ | Half_open -> acc + 1 | Closed _ -> acc)
        t.keys 0)

let opened_total (t : t) : int = Mutex.protect t.m (fun () -> t.opened_total)

let rejected_total (t : t) : int =
  Mutex.protect t.m (fun () -> t.rejected_total)
