(* Chaos testing of the verification harness.  See chaos.mli. *)

open Augem_ir
module Faults = Augem_verify.Faults
module Insn = Augem_machine.Insn

type entry = {
  e_fault : Faults.fault;
  e_detected : bool;
  e_detail : string;
}

type report = {
  c_kernel : string;
  c_total : int;
  c_detected : int;
  c_entries : entry list;
  c_by_kind : (string * (int * int)) list;
}

let rate r = if r.c_total = 0 then 1.0 else float_of_int r.c_detected /. float_of_int r.c_total

let missed r =
  List.filter_map
    (fun e -> if e.e_detected then None else Some e.e_fault)
    r.c_entries

let by_kind entries =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let k = Faults.kind_to_string e.e_fault.Faults.f_kind in
      let d, t = Option.value ~default:(0, 0) (Hashtbl.find_opt tbl k) in
      Hashtbl.replace tbl k ((d + if e.e_detected then 1 else 0), t + 1))
    entries;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let fp_of_et : Augem_machine.Etype.t -> Ast.dtype option = function
  | Augem_machine.Etype.F32 -> Some Ast.Float
  | Augem_machine.Etype.F64 -> None

let run ?(et = Augem_machine.Etype.F64) ?(fuel = Harness.default_fuel)
    ?(max_faults = 96) ?(seed = 0) (kernel : Kernels.name)
    (prog : Insn.program) : report =
  let faults = Faults.sample ~seed ~max:max_faults prog in
  let entries =
    List.map
      (fun f ->
        let mutant = Faults.apply prog f in
        let detected, detail =
          match Harness.verify ~et ~fuel kernel mutant with
          | { Harness.ok = true; _ } -> (false, "MISSED")
          | { Harness.ok = false; detail; _ } -> (true, detail)
          | exception exn ->
              (* a mutant that makes the harness itself blow up is
                 still a detected mutant *)
              (true, "harness exception: " ^ Printexc.to_string exn)
        in
        { e_fault = f; e_detected = detected; e_detail = detail })
      faults
  in
  {
    c_kernel = Kernels.name_to_string ?fp:(fp_of_et et) kernel;
    c_total = List.length entries;
    c_detected = List.length (List.filter (fun e -> e.e_detected) entries);
    c_entries = entries;
    c_by_kind = by_kind entries;
  }

(* Static counterpart of [run]: the mutants come from the asm-level
   fault classes and the oracle is {!Augem_analysis.Asmcheck}, not the
   execution harness.  This measures the machine-code checker's
   sensitivity the same way [run] measures the differential oracle's. *)
let run_static ?(et = Augem_machine.Etype.F64) ?(max_faults = 96) ?(seed = 0)
    ~(arch : Augem_machine.Arch.t) (kernel : Kernels.name)
    (prog : Insn.program) : report =
  let module Asmcheck = Augem_analysis.Asmcheck in
  let avx = arch.Augem_machine.Arch.simd = Augem_machine.Arch.AVX in
  let params =
    (Kernels.kernel_of_name ?fp:(fp_of_et et) kernel).Ast.k_params
  in
  let config = Asmcheck.config_for ~avx ~params in
  let faults =
    Faults.sample_asm ~seed ~avx ~entry:config.Asmcheck.cfg_entry
      ~max:max_faults prog
  in
  let entries =
    List.map
      (fun f ->
        let mutant = Faults.apply prog f in
        let detected, detail =
          match Asmcheck.check ~config mutant with
          | [] -> (false, "MISSED")
          | fs -> (true, Asmcheck.finding_to_string (List.hd fs))
          | exception exn ->
              (true, "checker exception: " ^ Printexc.to_string exn)
        in
        { e_fault = f; e_detected = detected; e_detail = detail })
      faults
  in
  {
    c_kernel = Kernels.name_to_string ?fp:(fp_of_et et) kernel;
    c_total = List.length entries;
    c_detected = List.length (List.filter (fun e -> e.e_detected) entries);
    c_entries = entries;
    c_by_kind = by_kind entries;
  }

let merge (rs : report list) : report =
  let entries = List.concat_map (fun r -> r.c_entries) rs in
  {
    c_kernel = String.concat "+" (List.map (fun r -> r.c_kernel) rs);
    c_total = List.length entries;
    c_detected = List.length (List.filter (fun e -> e.e_detected) entries);
    c_entries = entries;
    c_by_kind = by_kind entries;
  }

let pp_report fmt r =
  Format.fprintf fmt "fault injection on %s: %d/%d detected (%.1f%%)@\n"
    r.c_kernel r.c_detected r.c_total (100.0 *. rate r);
  List.iter
    (fun (kind, (d, t)) ->
      Format.fprintf fmt "  %-20s %3d/%-3d detected@\n" kind d t)
    r.c_by_kind;
  match missed r with
  | [] -> ()
  | ms ->
      Format.fprintf fmt "  missed:@\n";
      List.iter
        (fun f -> Format.fprintf fmt "    %s@\n" (Faults.describe f))
        ms
