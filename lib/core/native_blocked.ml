(* Natively-executed blocked GEMM and wall-clock kernel measurement.

   [Blocked.gemm] runs the generated packing and micro-kernels on the
   functional simulator, staging every block through [Array.sub] views
   because simulated memory is private per call.  This module runs the
   same plan's kernels as real machine code: the matrices and packing
   buffers live in Bigarrays for the whole loop nest, and blocks are
   addressed by passing interior pointers — no per-call staging, so the
   wall clock measures the kernels, not the harness.

   The loop nest mirrors [Blocked.gemm] exactly (same block schedule,
   same beta-then-alpha handling, scaling rounded to the element type),
   so at f64 the native result must agree bit-exactly with the
   simulated one, and within [Etype.tol] at f32 where the simulator's
   round-after-every-op semantics legitimately double-rounds. *)

module Exec = Augem_sim.Exec_sim
module Mat = Augem_blas.Matrix
module L3 = Augem_blas.Level3
module Insn = Augem_machine.Insn
module Arch = Augem_machine.Arch
module Et = Augem_machine.Etype
module Kernels = Augem_ir.Kernels
module Perf = Augem_sim.Perf
module Mem_model = Augem_sim.Mem_model
module Runtime = Augem_jit.Runtime
module Abi = Augem_jit.Abi
module Clock = Augem_jit.Clock

(* --- element-typed resident buffers ------------------------------------ *)

(* A Bigarray-backed buffer of the kernel's element type with
   elementwise access and interior-pointer addressing.  The closures
   capture the Bigarray, keeping the storage alive for as long as any
   address derived from it can be used. *)
type tensor = {
  t_len : int;  (* logical length, excluding tail padding *)
  t_get : int -> float;
  t_set : int -> float -> unit;
  t_addr : int -> int64;  (* address of element [i] *)
}

let tensor (et : Et.t) (n : int) : tensor =
  let n' = max 1 n + Abi.pad_elements in
  match et with
  | Et.F64 ->
      let ba = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n' in
      Bigarray.Array1.fill ba 0.0;
      let base = Runtime.jit_ba_addr ba in
      {
        t_len = n;
        t_get = Bigarray.Array1.get ba;
        t_set = Bigarray.Array1.set ba;
        t_addr = (fun i -> Int64.add base (Int64.of_int (i * 8)));
      }
  | Et.F32 ->
      let ba = Bigarray.Array1.create Bigarray.float32 Bigarray.c_layout n' in
      Bigarray.Array1.fill ba 0.0;
      let base = Runtime.jit_ba_addr ba in
      {
        t_len = n;
        (* float32 storage narrows on set, exactly like the simulator's
           typed memory *)
        t_get = Bigarray.Array1.get ba;
        t_set = Bigarray.Array1.set ba;
        t_addr = (fun i -> Int64.add base (Int64.of_int (i * 4)));
      }

let stage (et : Et.t) (data : float array) : tensor =
  let t = tensor et (Array.length data) in
  Array.iteri t.t_set data;
  t

let read_back (t : tensor) (data : float array) : unit =
  for i = 0 to Array.length data - 1 do
    data.(i) <- t.t_get i
  done

(* --- the native plan ---------------------------------------------------- *)

type native_plan = {
  np_plan : Blocked.plan;
  np_micro : Runtime.Exec_buf.t;
  np_pack_a : Runtime.Exec_buf.t;
  np_pack_b : Runtime.Exec_buf.t;
}

let release (np : native_plan) =
  Runtime.Exec_buf.release np.np_micro;
  Runtime.Exec_buf.release np.np_pack_a;
  Runtime.Exec_buf.release np.np_pack_b

(* Push all three of the plan's programs through the guarded gates
   (lints, host capability, encoder).  All-or-nothing: a plan whose
   packing kernels cannot run natively is not a native plan. *)
let load (p : Blocked.plan) : native_plan Native_check.gated =
  let avx = p.Blocked.pl_arch.Arch.simd = Arch.AVX in
  let et = p.Blocked.pl_et in
  let rec go acc = function
    | [] -> (
        match List.rev acc with
        | [ micro; pa; pb ] ->
            Native_check.Ready
              {
                np_plan = p;
                np_micro = micro;
                np_pack_a = pa;
                np_pack_b = pb;
              }
        | _ -> assert false)
    | (label, prog) :: rest -> (
        match Native_check.load ~avx ~et prog with
        | Native_check.Ready buf -> go (buf :: acc) rest
        | (Native_check.Unsupported m | Native_check.Rejected m) as g ->
            List.iter Runtime.Exec_buf.release acc;
            let m = label ^ ": " ^ m in
            (match g with
            | Native_check.Unsupported _ -> Native_check.Unsupported m
            | _ -> Native_check.Rejected m))
  in
  go []
    [
      ("micro", p.Blocked.pl_micro);
      ("pack_a", p.Blocked.pl_pack_a);
      ("pack_b", p.Blocked.pl_pack_b);
    ]

(* --- the loop nest ------------------------------------------------------ *)

(* Stage C := alpha*A*B + beta*C over resident buffers and return
   [run] (one full blocked pass; repeatable, each pass re-applies beta
   and accumulates) and [finish] (copy C back into [c] and return it).
   Argument staging happens once, outside the timed region. *)
let gemm_runner ?blocking ?(alpha = 1.0) ?(beta = 1.0) (np : native_plan)
    (a : Mat.t) (b : Mat.t) (c : Mat.t) : (unit -> unit) * (unit -> unit) =
  let p = np.np_plan in
  let et = p.Blocked.pl_et in
  let alpha = Et.round et alpha and beta = Et.round et beta in
  let m = a.Mat.rows and k = a.Mat.cols and n = b.Mat.cols in
  if b.Mat.rows <> k || c.Mat.rows <> m || c.Mat.cols <> n then
    invalid_arg "Native_blocked.gemm: shape mismatch";
  let bl =
    match blocking with Some b -> b | None -> p.Blocked.pl_blocking
  in
  let bl_mc = bl.Mem_model.bl_mc
  and bl_kc = bl.Mem_model.bl_kc
  and bl_nc = bl.Mem_model.bl_nc in
  if bl_mc < 1 || bl_kc < 1 || bl_nc < 1 then
    invalid_arg "Native_blocked.gemm: blocking dimensions must be positive";
  let ta = stage et a.Mat.data in
  let tb = stage et b.Mat.data in
  let tc = stage et c.Mat.data in
  let tpa = tensor et (bl_mc * bl_kc) in
  let tpb = tensor et (bl_kc * bl_nc) in
  let fp32 = et = Et.F32 in
  let invoke buf iargs =
    Runtime.Exec_buf.invoke buf ~iargs ~dargs:[||] ~fp32
  in
  let i64 = Int64.of_int in
  let run () =
    if beta <> 1. then
      for j = 0 to n - 1 do
        for i = 0 to m - 1 do
          let idx = (j * c.Mat.ld) + i in
          tc.t_set idx (beta *. tc.t_get idx)
        done
      done;
    if alpha <> 0. then begin
      let j0 = ref 0 in
      while !j0 < n do
        let nc = min bl_nc (n - !j0) in
        let l0 = ref 0 in
        while !l0 < k do
          let kc = min bl_kc (k - !l0) in
          let b_off = (!j0 * b.Mat.ld) + !l0 in
          invoke np.np_pack_b
            [|
              i64 kc; i64 nc; i64 b.Mat.ld; tb.t_addr b_off; tpb.t_addr 0;
            |];
          if alpha <> 1. then
            for idx = 0 to (kc * nc) - 1 do
              tpb.t_set idx (alpha *. tpb.t_get idx)
            done;
          let i0 = ref 0 in
          while !i0 < m do
            let mc = min bl_mc (m - !i0) in
            let a_off = (!l0 * a.Mat.ld) + !i0 in
            invoke np.np_pack_a
              [|
                i64 mc; i64 kc; i64 a.Mat.ld; ta.t_addr a_off; tpa.t_addr 0;
              |];
            let c_off = (!j0 * c.Mat.ld) + !i0 in
            invoke np.np_micro
              [|
                i64 mc; i64 kc; i64 nc; i64 c.Mat.ld; tpa.t_addr 0;
                tpb.t_addr 0; tc.t_addr c_off;
              |];
            i0 := !i0 + mc
          done;
          l0 := !l0 + kc
        done;
        j0 := !j0 + nc
      done
    end
  in
  let finish () = read_back tc c.Mat.data in
  (run, finish)

(* One native C := alpha*A*B + beta*C, in place in [c]. *)
let gemm ?blocking ?alpha ?beta (np : native_plan) (a : Mat.t) (b : Mat.t)
    (c : Mat.t) : unit =
  let run, finish = gemm_runner ?blocking ?alpha ?beta np a b c in
  run ();
  finish ()

(* --- differential check ------------------------------------------------- *)

(* Native blocked GEMM against (1) the simulated blocked driver on the
   same plan — bit-exact at f64, [Etype.tol]-scaled at f32 — and
   (2) [dgemm_naive] within the usual reduction-scaled tolerance.  The
   native result is never trusted without this. *)
let check ?blocking ?(seed = 42) (np : native_plan) ~m ~n ~k () :
    (unit, string) result =
  let p = np.np_plan in
  let et = p.Blocked.pl_et in
  let nar (mat : Mat.t) =
    Array.iteri
      (fun i x -> mat.Mat.data.(i) <- Et.round et x)
      mat.Mat.data;
    mat
  in
  let a = nar (Mat.random ~seed m k) in
  let b = nar (Mat.random ~seed:(seed + 1) k n) in
  let c0 = nar (Mat.random ~seed:(seed + 2) m n) in
  let c_native = Mat.copy c0 in
  let c_sim = Mat.copy c0 in
  let c_naive = Mat.copy c0 in
  match gemm ?blocking np a b c_native with
  | exception Failure msg -> Error ("native: " ^ msg)
  | () -> (
      match Blocked.gemm ?blocking p a b c_sim with
      | exception Exec.Sim_error msg -> Error ("simulator fault: " ^ msg)
      | _stats ->
          let agree_tol =
            match et with Et.F64 -> 0.0 | Et.F32 -> Et.tol ~k et
          in
          if not (Mat.approx_equal ~tol:agree_tol c_native c_sim) then
            Error
              (Printf.sprintf
                 "m=%d n=%d k=%d: native result diverges from simulator \
                  (max |diff| = %.3g, tol %g)"
                 m n k
                 (Mat.max_abs_diff c_native c_sim)
                 agree_tol)
          else begin
            L3.dgemm_naive ~alpha:1.0 ~beta:1.0 a b c_naive;
            let tol = Et.tol ~k et in
            if not (Mat.approx_equal ~tol c_naive c_native) then
              Error
                (Printf.sprintf
                   "m=%d n=%d k=%d: native result off dgemm_naive by %.3g \
                    (tol %.1g)"
                   m n k
                   (Mat.max_abs_diff c_naive c_native)
                   tol)
            else Ok ()
          end)

(* --- wall-clock benchmark ----------------------------------------------- *)

type bench = {
  nb_m : int;
  nb_n : int;
  nb_k : int;
  nb_timing : Clock.timing;
  nb_mflops : float;  (* 2mnk / min time *)
}

(* Time the staged loop nest (staging excluded).  Repeated passes
   accumulate into C (beta = 1), which is harmless for timing and
   keeps every pass's memory traffic identical. *)
let time_gemm ?(repeats = 5) ?(warmup = 1) ?blocking ?(seed = 42)
    (np : native_plan) ~m ~n ~k () : bench =
  let et = np.np_plan.Blocked.pl_et in
  let nar (mat : Mat.t) =
    Array.iteri
      (fun i x -> mat.Mat.data.(i) <- Et.round et x)
      mat.Mat.data;
    mat
  in
  let a = nar (Mat.random ~seed m k) in
  let b = nar (Mat.random ~seed:(seed + 1) k n) in
  let c = nar (Mat.random ~seed:(seed + 2) m n) in
  let run, _finish = gemm_runner ?blocking np a b c in
  let t = Clock.measure ~warmup ~repeats run in
  let flops = 2.0 *. float_of_int m *. float_of_int n *. float_of_int k in
  {
    nb_m = m;
    nb_n = n;
    nb_k = k;
    nb_timing = t;
    nb_mflops = flops /. t.Clock.t_min_s /. 1e6;
  }

(* --- single-kernel wall-clock measurement (the tuner hook) -------------- *)

(* The reference workloads are sized for the paper's evaluation sweep
   (gigabyte matrices at L2 shapes); a measurement only needs a shape
   big enough to dominate the call overhead while staying
   cache-plausible for the kernel's role — the micro-kernel in
   particular only ever sees MC x KC x NC blocks in real use. *)
let clamp_workload (w : Perf.workload) : Perf.workload =
  match w with
  | Perf.W_gemm { m; n; k } ->
      Perf.W_gemm { m = min m 192; n = min n 192; k = min k 256 }
  | Perf.W_gemv { m; n } -> Perf.W_gemv { m = min m 1024; n = min n 1024 }
  | Perf.W_axpy { n } -> Perf.W_axpy { n = min n 150_000 }
  | Perf.W_dot { n } -> Perf.W_dot { n = min n 150_000 }

(* Kernel-call arguments at a workload's shape, over resident tensors.
   Returns the argument arrays plus the tensors (kept alive for the
   calls) and the flop count of one call. *)
let workload_args (et : Et.t) (kernel : Kernels.name) (w : Perf.workload) :
    (int64 array * float array * tensor list * float) option =
  let i64 = Int64.of_int in
  let data seed n = stage et (Array.map (Et.round et) (Harness.fill seed n)) in
  let flops = max (Perf.workload_flops w) (Perf.workload_elements w) in
  match (kernel, w) with
  | Kernels.Gemm, Perf.W_gemm { m; n; k } ->
      let pa = data 21 (m * k)
      and pb = data 22 (k * n)
      and c = data 23 (m * n) in
      Some
        ( [| i64 m; i64 k; i64 n; i64 m; pa.t_addr 0; pb.t_addr 0;
             c.t_addr 0 |],
          [||],
          [ pa; pb; c ],
          flops )
  | Kernels.Gemv, Perf.W_gemv { m; n } ->
      let a = data 24 (m * n) and x = data 25 n and y = data 26 m in
      Some
        ( [| i64 m; i64 n; i64 m; a.t_addr 0; x.t_addr 0; y.t_addr 0 |],
          [||],
          [ a; x; y ],
          flops )
  | Kernels.Ger, Perf.W_gemv { m; n } ->
      let a = data 27 (m * n) and x = data 28 m and y = data 29 n in
      Some
        ( [| i64 m; i64 n; i64 m; x.t_addr 0; y.t_addr 0; a.t_addr 0 |],
          (* alpha = 1.0: same op count, no drift across repeats *)
          [| 1.0 |],
          [ a; x; y ],
          flops )
  | Kernels.Axpy, (Perf.W_axpy { n } | Perf.W_dot { n }) ->
      let x = data 30 n and y = data 31 n in
      Some ([| i64 n; x.t_addr 0; y.t_addr 0 |], [| 1.0 |], [ x; y ], flops)
  | Kernels.Dot, (Perf.W_axpy { n } | Perf.W_dot { n }) ->
      let x = data 32 n and y = data 33 n and out = data 34 1 in
      Some
        ( [| i64 n; x.t_addr 0; y.t_addr 0; out.t_addr 0 |],
          [||],
          [ x; y; out ],
          flops )
  | Kernels.Scal, (Perf.W_axpy { n } | Perf.W_dot { n }) ->
      let x = data 35 n in
      Some ([| i64 n; x.t_addr 0 |], [| 1.0 |], [ x ], flops)
  | Kernels.Copy, (Perf.W_axpy { n } | Perf.W_dot { n }) ->
      let x = data 36 n and y = data 37 (n + 2) in
      Some ([| i64 n; x.t_addr 0; y.t_addr 0 |], [||], [ x; y ], flops)
  | Kernels.Pack_a, _ ->
      let mc = 192 and kc = 256 in
      let a = data 38 (mc * kc) and buf = data 39 (mc * kc) in
      Some
        ( [| i64 mc; i64 kc; i64 mc; a.t_addr 0; buf.t_addr 0 |],
          [||],
          [ a; buf ],
          float_of_int (mc * kc) )
  | Kernels.Pack_b, _ ->
      let kc = 256 and nc = 192 in
      let b = data 40 (kc * nc) and buf = data 41 (kc * nc) in
      Some
        ( [| i64 kc; i64 nc; i64 kc; b.t_addr 0; buf.t_addr 0 |],
          [||],
          [ b; buf ],
          float_of_int (kc * nc) )
  | _ -> None

(* Wall-clock MFLOPS of one generated kernel on this host, or [None]
   when the program cannot run here (missing ISA extension) or the
   kernel/workload pair has no native harness shape.  Short kernels are
   batched until one timed sample spans at least ~100us, keeping the
   measurement above timer and call-overhead noise.  This is the
   function behind [Tuner.set_native_measure]. *)
let measure_kernel ?(repeats = 3) ~(arch : Arch.t) ~(et : Et.t)
    (kernel : Kernels.name) (prog : Insn.program) (w : Perf.workload) :
    float option =
  let avx = arch.Arch.simd = Arch.AVX in
  match Native_check.load ~avx ~et prog with
  | Native_check.Rejected _ | Native_check.Unsupported _ -> None
  | Native_check.Ready buf -> (
      match workload_args et kernel (clamp_workload w) with
      | None ->
          Runtime.Exec_buf.release buf;
          None
      | Some (iargs, dargs, keepalive, flops) ->
          let fp32 = et = Et.F32 in
          let once () =
            Runtime.Exec_buf.invoke buf ~iargs ~dargs ~fp32
          in
          let probe = Clock.measure ~warmup:1 ~repeats:1 once in
          let batch =
            if probe.Clock.t_min_s >= 1e-4 then 1
            else
              int_of_float (ceil (1e-4 /. max 1e-9 probe.Clock.t_min_s))
          in
          let f () =
            for _ = 1 to batch do
              once ()
            done
          in
          let t = Clock.measure ~warmup:1 ~repeats f in
          ignore (Sys.opaque_identity keepalive);
          Runtime.Exec_buf.release buf;
          Some (flops *. float_of_int batch /. t.Clock.t_min_s /. 1e6))

(* The [Tuner.native_measure] this module provides.  [Skip]-class
   programs return [None] and keep their model score. *)
let tuner_measure : Augem_autotune.Tuner.native_measure =
 fun ~et arch kernel prog w -> measure_kernel ~arch ~et kernel prog w
