(* The blocked DGEMM driver: the Goto jc/pc/ic macro-kernel loop nest
   over NC/KC/MC cache blocks, where *every* inner routine — the two
   packing kernels and the micro-kernel — is AUGEM-generated assembly
   executed on the functional simulator.  This is the full generated
   GEMM the paper deploys inside OpenBLAS: the framework produces the
   Mc x Kc x Nc inner kernel and the packing routines; this module is
   only the loop nest and buffer management around them.

   The loop structure mirrors [Level3.dgemm_blocked] exactly (same
   block order, same beta-then-alpha handling), so a differential run
   against that reference with the same simulated micro-kernel is
   bit-exact: the macro-kernel layer adds no floating-point
   reassociation of its own. *)

module Exec = Augem_sim.Exec_sim
module Mat = Augem_blas.Matrix
module L3 = Augem_blas.Level3
module Insn = Augem_machine.Insn
module Arch = Augem_machine.Arch
module Tuner = Augem_autotune.Tuner
module Mem_model = Augem_sim.Mem_model
module Perf = Augem_sim.Perf
module Kernels = Augem_ir.Kernels
module Pipeline = Augem_transform.Pipeline
module Et = Augem_machine.Etype

type plan = {
  pl_arch : Arch.t;
  pl_et : Et.t;  (* scalar precision the plan's kernels compute in *)
  pl_blocking : Mem_model.blocking;  (* tuned MC/KC/NC *)
  pl_mr : int;
  pl_nr : int;
  pl_micro : Insn.program;
  pl_micro_config : Tuner.candidate;
  pl_pack_a : Insn.program;
  pl_pack_b : Insn.program;
  pl_blocked_mflops : float; (* predicted, blocked driver, ref workload *)
  pl_streamed_mflops : float; (* predicted, unblocked baseline *)
}

(* Build the plan for an architecture: tune the micro-kernel jointly
   with its blocking triple (the cross-product sweep), then tune the
   two packing kernels through the same staged-lowering pipeline
   (validators, asmcheck lints and all). *)
let plan ?(et = Et.F64) ?jobs ?workload (arch : Arch.t) : plan =
  let bb = Tuner.tune_blocked ~et ?jobs ?workload arch in
  let pa = Tuner.tuned ~et ?jobs arch Kernels.Pack_a in
  let pb = Tuner.tuned ~et ?jobs arch Kernels.Pack_b in
  {
    pl_arch = arch;
    pl_et = et;
    pl_blocking = bb.Tuner.bb_blocking;
    pl_mr = bb.Tuner.bb_mr;
    pl_nr = bb.Tuner.bb_nr;
    pl_micro = bb.Tuner.bb_program;
    pl_micro_config = bb.Tuner.bb_candidate;
    pl_pack_a = pa.Tuner.best_program;
    pl_pack_b = pb.Tuner.best_program;
    pl_blocked_mflops = bb.Tuner.bb_blocked_score;
    pl_streamed_mflops = bb.Tuner.bb_streamed_score;
  }

type stats = {
  st_micro_calls : int;
  st_pack_a_calls : int;
  st_pack_b_calls : int;
  st_insns : int;  (* instructions interpreted across all three kernels *)
}

let zero_stats =
  { st_micro_calls = 0; st_pack_a_calls = 0; st_pack_b_calls = 0; st_insns = 0 }

(* Default per-call instruction budget, matching the harness's. *)
let default_fuel = 20_000_000

(* C := alpha * A * B + beta * C with the plan's generated kernels,
   executed on the functional simulator.  [?blocking] overrides the
   plan's triple — the blocking is a runtime parameter of the generated
   code, so small overrides let tests drive multi-block trips and
   remainder blocks on small matrices.  Raises [Exec.Sim_error] if any
   generated kernel faults, [Invalid_argument] on a shape mismatch. *)
let gemm ?(fuel = default_fuel) ?blocking ?(alpha = 1.0) ?(beta = 1.0)
    (p : plan) (a : Mat.t) (b : Mat.t) (c : Mat.t) : stats =
  let et = p.pl_et in
  let alpha = Et.round et alpha and beta = Et.round et beta in
  let m = a.Mat.rows and k = a.Mat.cols and n = b.Mat.cols in
  if b.Mat.rows <> k || c.Mat.rows <> m || c.Mat.cols <> n then
    invalid_arg "Blocked.gemm: shape mismatch";
  let bl = match blocking with Some b -> b | None -> p.pl_blocking in
  let bl_mc = bl.Mem_model.bl_mc
  and bl_kc = bl.Mem_model.bl_kc
  and bl_nc = bl.Mem_model.bl_nc in
  if bl_mc < 1 || bl_kc < 1 || bl_nc < 1 then
    invalid_arg "Blocked.gemm: blocking dimensions must be positive";
  if beta <> 1. then
    for j = 0 to n - 1 do
      for i = 0 to m - 1 do
        Mat.set c i j (Et.round et (beta *. Mat.get c i j))
      done
    done;
  let stats = ref zero_stats in
  if alpha = 0. then !stats
  else begin
    let pabuf = Array.make (max 1 (bl_mc * bl_kc)) 0. in
    let pbbuf = Array.make (max 1 (bl_kc * bl_nc)) 0. in
    let count insns f =
      stats := { !stats with st_insns = !stats.st_insns + insns };
      f !stats
    in
    let j0 = ref 0 in
    while !j0 < n do
      let nc = min bl_nc (n - !j0) in
      let l0 = ref 0 in
      while !l0 < k do
        let kc = min bl_kc (k - !l0) in
        (* pack B: the Kc x Nc panel at (l0, j0), viewed as a flat
           slice of column-major B starting at its first element *)
        let b_off = (!j0 * b.Mat.ld) + !l0 in
        let b_len = ((nc - 1) * b.Mat.ld) + kc in
        let b_view = Array.sub b.Mat.data b_off b_len in
        let r =
          Exec.call ~et ~fuel p.pl_pack_b
            Exec.[ Aint kc; Aint nc; Aint b.Mat.ld; Abuf b_view; Abuf pbbuf ]
        in
        count r.Exec.r_executed (fun s ->
            stats := { s with st_pack_b_calls = s.st_pack_b_calls + 1 });
        if alpha <> 1. then
          for idx = 0 to (kc * nc) - 1 do
            pbbuf.(idx) <- Et.round et (alpha *. pbbuf.(idx))
          done;
        let i0 = ref 0 in
        while !i0 < m do
          let mc = min bl_mc (m - !i0) in
          (* pack A: the Mc x Kc block at (i0, l0) *)
          let a_off = (!l0 * a.Mat.ld) + !i0 in
          let a_len = ((kc - 1) * a.Mat.ld) + mc in
          let a_view = Array.sub a.Mat.data a_off a_len in
          let r =
            Exec.call ~et ~fuel p.pl_pack_a
              Exec.[ Aint mc; Aint kc; Aint a.Mat.ld; Abuf a_view; Abuf pabuf ]
          in
          count r.Exec.r_executed (fun s ->
              stats := { s with st_pack_a_calls = s.st_pack_a_calls + 1 });
          (* micro-kernel on the packed pair, C tile in place *)
          let c_off = (!j0 * c.Mat.ld) + !i0 in
          let c_len = ((nc - 1) * c.Mat.ld) + mc in
          let c_view = Array.sub c.Mat.data c_off c_len in
          let r =
            Exec.call ~et ~fuel p.pl_micro
              Exec.[ Aint mc; Aint kc; Aint nc; Aint c.Mat.ld; Abuf pabuf;
                     Abuf pbbuf; Abuf c_view ]
          in
          count r.Exec.r_executed (fun s ->
              stats := { s with st_micro_calls = s.st_micro_calls + 1 });
          Array.blit c_view 0 c.Mat.data c_off c_len;
          i0 := !i0 + mc
        done;
        l0 := !l0 + kc
      done;
      j0 := !j0 + nc
    done;
    !stats
  end

(* Predicted MFLOPS of the plan's blocked driver / unblocked baseline
   on an arbitrary problem size (the cycle model, not simulation). *)
let predict (p : plan) (w : Perf.workload) : Perf.estimate =
  Perf.predict_blocked ~et:p.pl_et p.pl_arch p.pl_micro
    ~blocking:p.pl_blocking w

let predict_streamed (p : plan) (w : Perf.workload) : Perf.estimate =
  Perf.predict_streamed ~et:p.pl_et p.pl_arch p.pl_micro ~nr:p.pl_nr w

(* Differential check on one problem shape: the generated blocked
   driver against (1) [dgemm_naive] within [tol], and (2) the reference
   macro-kernel loop nest ([dgemm_blocked], reference packing) driving
   the *same* simulated micro-kernel, which must agree bit-exactly —
   same block schedule, same packed layouts, same FP operation order,
   so any deviation is a packing or loop-nest bug, not rounding.

   The naive reference accumulates in f64 regardless of the plan's
   precision, so the default tolerance is relative and scales with
   both the element type's epsilon and the K reduction length
   ({!Et.tol}) — a fixed 1e-9 would spuriously fail every f32 plan at
   large K while being looser than necessary for f64 at small K. *)
let check ?fuel ?blocking ?tol ?(seed = 42) (p : plan) ~m ~n ~k () :
    (stats, string) result =
  let et = p.pl_et in
  let tol = match tol with Some t -> t | None -> Et.tol ~k et in
  (* narrow the random inputs to the plan's precision so reference and
     generated kernels start from identical representable values *)
  let nar (mat : Mat.t) =
    Array.iteri (fun i x -> mat.Mat.data.(i) <- Et.round et x) mat.Mat.data;
    mat
  in
  let a = nar (Mat.random ~seed m k) in
  let b = nar (Mat.random ~seed:(seed + 1) k n) in
  let c0 = nar (Mat.random ~seed:(seed + 2) m n) in
  let c_naive = Mat.copy c0 in
  let c_gen = Mat.copy c0 in
  let c_hybrid = Mat.copy c0 in
  L3.dgemm_naive ~alpha:1.0 ~beta:1.0 a b c_naive;
  match gemm ?fuel ?blocking p a b c_gen with
  | exception Exec.Sim_error msg -> Error ("simulator fault: " ^ msg)
  | stats ->
      let bl = match blocking with Some b -> b | None -> p.pl_blocking in
      let sim_micro ~mc ~kc ~nc ~pa ~pb ~c_data ~c_off ~ldc =
        let len = ((nc - 1) * ldc) + mc in
        let view = Array.sub c_data c_off len in
        ignore
          (Exec.call ~et ?fuel p.pl_micro
             Exec.[ Aint mc; Aint kc; Aint nc; Aint ldc; Abuf pa; Abuf pb;
                    Abuf view ]);
        Array.blit view 0 c_data c_off len
      in
      L3.dgemm_blocked
        ~blocking:
          {
            L3.bk_mc = bl.Mem_model.bl_mc;
            bk_kc = bl.Mem_model.bl_kc;
            bk_nc = bl.Mem_model.bl_nc;
          }
        ~kernel:sim_micro ~alpha:1.0 ~beta:1.0 a b c_hybrid;
      if not (Array.for_all2 Float.equal c_gen.Mat.data c_hybrid.Mat.data)
      then
        Error
          (Printf.sprintf
             "m=%d n=%d k=%d %s: generated packing/loop nest diverges from \
              reference macro-kernel (max |diff| = %.3g)"
             m n k
             (Mem_model.blocking_to_string bl)
             (Mat.max_abs_diff c_gen c_hybrid))
      else if not (Mat.approx_equal ~tol c_naive c_gen) then
        Error
          (Printf.sprintf
             "m=%d n=%d k=%d %s: blocked result off dgemm_naive by %.3g \
              (tol %.1g)"
             m n k
             (Mem_model.blocking_to_string bl)
             (Mat.max_abs_diff c_naive c_gen)
             tol)
      else Ok stats
