(** Table and data-series formatting for the benchmark harness: the
    same rows and series the paper's figures and tables report. *)

type series = {
  s_label : string;
  s_points : (int * float) list;  (** (size, MFLOPS) *)
}

val pp_series_table :
  Format.formatter -> title:string -> x_label:string -> series list -> unit

(** [None] for an empty list — an empty series has no mean (the old
    [0.] answer masqueraded as a measurement downstream). *)
val mean : float list -> float option

val series_mean : series -> float option

(** "AUGEM outperforms X by p%" rows, as the paper's prose quotes.
    Series with no mean (empty) or a non-positive one are skipped. *)
val pp_speedups : Format.formatter -> baseline:string -> series list -> unit

(** Plain named-row table (Tables 5 and 6). *)
val pp_table :
  Format.formatter ->
  title:string ->
  header:string list ->
  (string * string list) list ->
  unit

(** Horizontal mean-value bars: a terminal rendition of a figure. *)
val pp_bars : Format.formatter -> series list -> unit
