(* The guarded native execution path.

   Nothing jumps into jitted machine code without passing three gates,
   in order:

   1. the static machine-code lints (Asmcheck) — a program with a
      [Sev_error] finding is a miscompilation and is rejected outright;
   2. the host-capability probe — a program whose encoding needs an ISA
      extension the CPU (or OS thread state) lacks is *skipped*, never
      failed: the simulator remains authoritative on such hosts;
   3. the encoder itself — an instruction the byte-level backend cannot
      express is a rejection.

   A program that clears the gates still isn't trusted: [check] runs
   the full harness sweep under a differential runner that executes
   every case twice — functional simulator on cloned inputs, native
   code on the originals — and demands the two agree (bit-exactly at
   f64, within [Etype.tol] at f32 where the simulator's
   round-after-every-op semantics legitimately double-rounds) before
   the harness even compares against the reference BLAS.  One sweep
   therefore yields the three-way differential: native vs simulator vs
   reference. *)

module Exec = Augem_sim.Exec_sim
module Et = Augem_machine.Etype
module Arch = Augem_machine.Arch
module Insn = Augem_machine.Insn
module Kernels = Augem_ir.Kernels
module Asmcheck = Augem_analysis.Asmcheck
module Encoder = Augem_jit.Encoder
module Runtime = Augem_jit.Runtime
module Abi = Augem_jit.Abi

type status =
  | Pass
  | Skip of string  (* host cannot run this encoding; not a defect *)
  | Fail of string

let status_to_string = function
  | Pass -> "pass"
  | Skip m -> "skip: " ^ m
  | Fail m -> "FAIL: " ^ m

(* Gate 1: the static lints.  Same checker, same severity split as the
   tuner's candidate filter; warnings pass, errors reject. *)
let lint_gate ~(avx : bool) (prog : Insn.program) : (unit, string) result =
  let findings = Asmcheck.check ~config:(Asmcheck.conservative ~avx) prog in
  match Asmcheck.errors findings with
  | [] -> Ok ()
  | errs ->
      Error
        (Printf.sprintf "asmcheck rejected program (%d error finding%s): %s"
           (List.length errs)
           (if List.length errs = 1 then "" else "s")
           (String.concat "; "
              (List.map Asmcheck.finding_to_string errs)))

type 'a gated =
  | Ready of 'a
  | Unsupported of string
  | Rejected of string

(* All three gates; on success the code is mapped and executable. *)
let load ~(avx : bool) ~(et : Et.t) (prog : Insn.program) :
    Runtime.Exec_buf.t gated =
  match lint_gate ~avx prog with
  | Error m -> Rejected m
  | Ok () -> (
      let req = Runtime.required_features ~avx prog in
      match Runtime.Cpu.missing req with
      | _ :: _ as miss ->
          Unsupported
            (Printf.sprintf "host lacks %s"
               (String.concat ", "
                  (List.map Runtime.Cpu.feature_name miss)))
      | [] -> (
          match Encoder.encode_program ~avx ~et prog with
          | exception Encoder.Encode_error m -> Rejected ("encoder: " ^ m)
          | enc -> Ready (Runtime.Exec_buf.load enc.Encoder.enc_code)))

(* Native-vs-simulator agreement bar: f64 simulation performs the same
   IEEE operations in the same order as the hardware (including fused
   FMA), so the comparison is bit-exact; f32 simulation computes each
   op in double and rounds, which can differ from the hardware's single
   rounding by an ulp per op, so the comparison is tolerance-scaled. *)
let agree_tol (et : Et.t) : float =
  match et with Et.F64 -> 0.0 | Et.F32 -> Et.tol ~k:64 et

(* A harness runner that executes each case on both backends: the
   simulator on cloned buffers, the jitted code on the originals (so
   the harness's own reference comparison sees the *native* outputs),
   then cross-checks the two output sets.  [fuel] applies to the
   simulator half. *)
let differential_with (buf : Runtime.Exec_buf.t) : Harness.runner =
  {
    Harness.run_name = "native+sim";
    run =
      (fun ~et ~fuel prog args ->
        let clones =
          List.map
            (function
              | Exec.Abuf d -> Exec.Abuf (Array.copy d)
              | a -> a)
            args
        in
        match Exec.call ~et ~fuel prog clones with
        | exception Exec.Sim_error m -> Error ("simulator fault: " ^ m)
        | r -> (
            match Abi.call ~et buf args with
            | exception Abi.Abi_error m -> Error ("abi: " ^ m)
            | () ->
                let tol = agree_tol et in
                let rec cmp i = function
                  | [], [] -> Ok (Some r)
                  | Exec.Abuf native :: rest, Exec.Abuf sim :: rest' ->
                      if Harness.arrays_close ~tol native sim then
                        cmp (i + 1) (rest, rest')
                      else
                        Error
                          (Printf.sprintf
                             "native/simulator divergence in buffer \
                              argument %d (%d elements, tol %g)"
                             i (Array.length native) tol)
                  | _ :: rest, _ :: rest' -> cmp (i + 1) (rest, rest')
                  | _ -> Error "native/simulator argument list skew"
                in
                cmp 0 (args, clones)));
  }

(* A runner that executes natively only (no simulator pass): the
   harness still compares the outputs against the reference BLAS, but
   no fuel is consumed.  Used where the simulator has already had its
   say and only the native half is in question. *)
let native_runner (buf : Runtime.Exec_buf.t) : Harness.runner =
  {
    Harness.run_name = "native";
    run =
      (fun ~et ~fuel:_ _prog args ->
        match Abi.call ~et buf args with
        | exception Abi.Abi_error m -> Error ("abi: " ^ m)
        | () -> Ok None);
  }

(* The full guarded check of one generated program: gates, then the
   complete harness sweep (all shapes, remainder cases, degenerate
   shapes) under the differential runner. *)
let check ?fuel ~(arch : Arch.t) ~(et : Et.t) (kernel : Kernels.name)
    (prog : Insn.program) : status =
  let avx = arch.Arch.simd = Arch.AVX in
  match load ~avx ~et prog with
  | Rejected m -> Fail m
  | Unsupported m -> Skip m
  | Ready buf ->
      let runner = differential_with buf in
      let outcome = Harness.verify ~runner ~et ?fuel kernel prog in
      Runtime.Exec_buf.release buf;
      if outcome.Harness.ok then Pass else Fail outcome.Harness.detail

(* Host capability summary, for CLI/service surfaces. *)
let host_features () : (string * bool) list = Runtime.Cpu.describe ()

let host_supported () : bool =
  Runtime.Cpu.have Runtime.Cpu.SSE2 && Runtime.Cpu.have Runtime.Cpu.AVX
