(** Verification harness: runs generated assembly kernels on the
    functional simulator against the reference BLAS on randomized
    inputs — the end-to-end correctness gate for every kernel,
    architecture and tuning configuration. *)

(** Problem shape for the matrix kernels. *)
type shape = {
  sh_m : int;
  sh_n : int;
  sh_k : int;
  sh_ld_slack : int;  (** extra leading-dimension padding *)
}

val default_shape : shape

(** Deterministic pseudo-random inputs in [-1, 1): [fill seed n].  The
    exact sequence is part of the harness contract — independent
    executors reproduce identical inputs from the same seed. *)
val fill : int -> int -> float array

(** Narrow an array to the element type ([Etype.round] per element);
    identity at f64. *)
val nar : Augem_machine.Etype.t -> float array -> float array

(** Relative closeness: |a-b| <= tol * (1 + |a| + |b|).  [tol] 0 demands
    bit-equality. *)
val close : ?tol:float -> float -> float -> bool

val arrays_close : ?tol:float -> float array -> float array -> bool

type outcome = {
  ok : bool;
  detail : string;  (** "ok" or a failure description *)
  sim_result : Augem_sim.Exec_sim.result option;
}

(** Default per-call instruction budget for the functional simulator
    ([fuel] below).  Regular harness shapes execute a few thousand
    instructions; the budget exists so a diverging mutant or
    pathological configuration fails fast instead of hanging. *)
val default_fuel : int

(** How a verify driver executes the kernel under test: the functional
    simulator by default ({!sim_runner}), or a plugged-in backend such
    as the native JIT (or a differential runner that executes both and
    cross-checks the outputs).  [run] receives the element type, the
    instruction budget (meaningful to the simulator only), the program
    and its arguments; it returns the simulator result when one was
    produced. *)
type runner = {
  run_name : string;
  run :
    et:Augem_machine.Etype.t ->
    fuel:int ->
    Augem_machine.Insn.program ->
    Augem_sim.Exec_sim.arg list ->
    (Augem_sim.Exec_sim.result option, string) result;
}

val sim_runner : runner

val verify_gemm :
  ?runner:runner ->
  ?et:Augem_machine.Etype.t ->
  ?fuel:int ->
  ?packed:bool ->
  ?seed:int ->
  ?shape:shape ->
  Augem_machine.Insn.program ->
  outcome

(** [?m]/[?n] override the shape-derived dimensions (used for
    degenerate unit and empty shapes). *)
val verify_gemv :
  ?runner:runner ->
  ?et:Augem_machine.Etype.t ->
  ?fuel:int ->
  ?seed:int ->
  ?shape:shape ->
  ?m:int ->
  ?n:int ->
  Augem_machine.Insn.program ->
  outcome

val verify_axpy :
  ?runner:runner ->
  ?et:Augem_machine.Etype.t ->
  ?fuel:int ->
  ?seed:int ->
  ?n:int ->
  ?alpha:float ->
  Augem_machine.Insn.program ->
  outcome

val verify_dot :
  ?runner:runner ->
  ?et:Augem_machine.Etype.t ->
  ?fuel:int -> ?seed:int -> ?n:int -> Augem_machine.Insn.program -> outcome

val verify_ger :
  ?runner:runner ->
  ?et:Augem_machine.Etype.t ->
  ?fuel:int ->
  ?seed:int ->
  ?shape:shape ->
  ?m:int ->
  ?n:int ->
  Augem_machine.Insn.program ->
  outcome

val verify_scal :
  ?runner:runner ->
  ?et:Augem_machine.Etype.t ->
  ?fuel:int ->
  ?seed:int ->
  ?n:int ->
  ?alpha:float ->
  Augem_machine.Insn.program ->
  outcome

val verify_copy :
  ?runner:runner ->
  ?et:Augem_machine.Etype.t ->
  ?fuel:int -> ?seed:int -> ?n:int -> Augem_machine.Insn.program -> outcome

(** Pack-A panel kernel against {!Augem_blas.Level3.pack_a}:
    mc = [sh_m], kc = [sh_k], lda = mc + [sh_ld_slack]. *)
val verify_pack_a :
  ?runner:runner ->
  ?et:Augem_machine.Etype.t ->
  ?fuel:int -> ?seed:int -> ?shape:shape -> Augem_machine.Insn.program -> outcome

(** Pack-B panel kernel against {!Augem_blas.Level3.pack_b}:
    kc = [sh_k], nc = [sh_n], ldb = kc + [sh_ld_slack]. *)
val verify_pack_b :
  ?runner:runner ->
  ?et:Augem_machine.Etype.t ->
  ?fuel:int -> ?seed:int -> ?shape:shape -> Augem_machine.Insn.program -> outcome

(** The degenerate-shape sweep for a kernel: labelled thunks covering
    unit dimensions and (where the contract allows) zero-length
    vectors.  [verify] runs these after the regular shapes; they are
    exported so the regression suite can exercise them in isolation. *)
val degenerate_cases :
  ?runner:runner ->
  ?et:Augem_machine.Etype.t ->
  ?fuel:int ->
  Augem_ir.Kernels.name ->
  Augem_machine.Insn.program ->
  (string * (unit -> outcome)) list

(** Verify a program implementing the named kernel over several shapes,
    including ones that exercise every remainder loop, plus degenerate
    shapes (unit dimensions, zero-length vectors) where every main loop
    is skipped. *)
val verify :
  ?runner:runner ->
  ?et:Augem_machine.Etype.t ->
  ?fuel:int -> Augem_ir.Kernels.name -> Augem_machine.Insn.program -> outcome
