(** Chaos testing of the verification harness: measure, don't trust.

    Injects single-instruction faults ({!Augem_verify.Faults}) into a
    generated program and runs {!Harness.verify} on every mutant.  A
    mutant that still verifies "ok" is a {i missed} fault — a hole in
    the harness.  The meta-test over the seven paper kernels asserts a
    detection rate of at least 95%, turning the harness's sensitivity
    into a regression-checked number. *)

type entry = {
  e_fault : Augem_verify.Faults.fault;
  e_detected : bool;
  e_detail : string;  (** harness failure detail, or "MISSED" *)
}

type report = {
  c_kernel : string;
  c_total : int;  (** faults injected *)
  c_detected : int;  (** faults the harness caught *)
  c_entries : entry list;  (** per-fault verdicts, in injection order *)
  c_by_kind : (string * (int * int)) list;
      (** fault kind to (detected, total) *)
}

(** Detected / total (1.0 for an empty report). *)
val rate : report -> float

val missed : report -> Augem_verify.Faults.fault list

(** Inject up to [max_faults] (default 96) sampled faults into the
    program and verify every mutant with a [fuel] instruction budget
    (default {!Harness.default_fuel}), so diverging mutants terminate.
    Any exception escaping the harness counts as a detection.  [et]
    selects the scalar precision the mutants are verified at (default
    f64); an f32 run measures whether the harness still catches faults
    under the looser f32 tolerance. *)
val run :
  ?et:Augem_machine.Etype.t ->
  ?fuel:int ->
  ?max_faults:int ->
  ?seed:int ->
  Augem_ir.Kernels.name ->
  Augem_machine.Insn.program ->
  report

(** Like {!run}, but injects the asm-level fault classes
    ({!Augem_verify.Faults.enumerate_asm}) and judges every mutant with
    the static machine-code checker {!Augem_analysis.Asmcheck} instead
    of the execution harness — measuring the {i static} detection rate.
    A mutant with zero findings is a missed fault.  [arch] selects the
    encoding discipline (AVX vs SSE) and the kernel name supplies the
    parameter registers defined at entry. *)
val run_static :
  ?et:Augem_machine.Etype.t ->
  ?max_faults:int ->
  ?seed:int ->
  arch:Augem_machine.Arch.t ->
  Augem_ir.Kernels.name ->
  Augem_machine.Insn.program ->
  report

(** Merge reports (e.g. across kernels) for an aggregate rate. *)
val merge : report list -> report

val pp_report : Format.formatter -> report -> unit
