(* Table and data-series formatting for the benchmark harness: prints
   the same rows and series the paper's figures and tables report. *)

type series = {
  s_label : string;
  s_points : (int * float) list; (* size, MFLOPS *)
}

let pp_series_table fmt ~(title : string) ~(x_label : string)
    (series : series list) =
  Fmt.pf fmt "== %s ==@\n" title;
  Fmt.pf fmt "%-10s" x_label;
  List.iter (fun s -> Fmt.pf fmt " %14s" s.s_label) series;
  Fmt.pf fmt "@\n";
  (* rows = the sorted union of every series' x-values: series measured
     at different sizes each still get all their points printed (the
     first-series-only version silently dropped the others' rows) *)
  let xs =
    List.concat_map (fun s -> List.map fst s.s_points) series
    |> List.sort_uniq compare
  in
  List.iter
    (fun x ->
      Fmt.pf fmt "%-10d" x;
      List.iter
        (fun s ->
          match List.assoc_opt x s.s_points with
          | Some y -> Fmt.pf fmt " %14.1f" y
          | None -> Fmt.pf fmt " %14s" "-")
        series;
      Fmt.pf fmt "@\n")
    xs

(* [None] for an empty list: an empty series has no mean, and the old
   0. answer leaked into BENCH_*.json as a real-looking measurement and
   into speedup ratios as a near-zero denominator. *)
let mean xs =
  match xs with
  | [] -> None
  | _ -> Some (List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs))

let series_mean s = mean (List.map snd s.s_points)

(* "AUGEM outperforms X by p%" rows, as the paper summarizes figures.
   Series without a mean (empty) or with a non-positive one are
   skipped, never divided by. *)
let pp_speedups fmt ~(baseline : string) (series : series list) =
  match List.find_opt (fun s -> String.equal s.s_label baseline) series with
  | None -> ()
  | Some base -> (
      match series_mean base with
      | None -> ()
      | Some b ->
          List.iter
            (fun s ->
              if not (String.equal s.s_label baseline) then
                match series_mean s with
                | Some m when m > 0. ->
                    Fmt.pf fmt "  %s vs %s: %+.1f%%@\n" baseline s.s_label
                      ((b /. m -. 1.) *. 100.)
                | Some _ | None -> ())
            series)

(* Plain named-rows table (Table 5, Table 6). *)
let pp_table fmt ~(title : string) ~(header : string list)
    (rows : (string * string list) list) =
  Fmt.pf fmt "== %s ==@\n" title;
  Fmt.pf fmt "%-22s" "";
  List.iter (fun h -> Fmt.pf fmt " %16s" h) header;
  Fmt.pf fmt "@\n";
  List.iter
    (fun (label, cells) ->
      Fmt.pf fmt "%-22s" label;
      List.iter (fun c -> Fmt.pf fmt " %16s" c) cells;
      Fmt.pf fmt "@\n")
    rows

(* Horizontal mean-value bars: a terminal rendition of a figure's
   message (series means relative to the best). *)
let pp_bars fmt (series : series list) =
  let width = 46 in
  let best =
    List.fold_left
      (fun acc s ->
        match series_mean s with Some m -> Float.max acc m | None -> acc)
      1e-9 series
  in
  List.iter
    (fun s ->
      match series_mean s with
      | None -> Fmt.pf fmt "  %-16s %9s |%s|@\n" s.s_label "-" (String.make width ' ')
      | Some m ->
          let n =
            int_of_float (Float.round (m /. best *. float_of_int width))
          in
          let n = max 0 (min width n) in
          Fmt.pf fmt "  %-16s %9.1f |%s%s|@\n" s.s_label m (String.make n '#')
            (String.make (width - n) ' '))
    series
