(** Minimal JSON: the benchmark harness's machine-readable output
    (`BENCH_*.json`), its validation, and the kernel service's
    line-delimited wire protocol.  No external dependency — the emitter
    and the recursive-descent parser cover standard JSON (RFC 8259).

    String escaping is round-trip safe: the emitter escapes every
    control character (with the [\b \f \n \r \t] shortcuts), the parser
    accepts all RFC escapes including [\uXXXX] with surrogate pairs
    (lone surrogates are rejected), and [parse (to_string v) = Ok v]
    for every finite value — property-tested in [test/test_json.ml].

    Non-finite floats have no JSON encoding; the emitter writes them as
    [null] rather than producing an unparseable file.  Integer literals
    wider than the OCaml [int] range parse as {!Float}. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Compact (single-line) rendering. *)
val to_string : t -> string

(** [parse s] is the value encoded by [s], or [Error msg] with a
    position-annotated message.  Numbers with a fraction or exponent
    parse as {!Float}, others as {!Int}. *)
val parse : string -> (t, string) result

(** Object field lookup; [None] on missing fields and non-objects. *)
val member : string -> t -> t option

(** Write [to_string] plus a trailing newline to a file. *)
val to_file : string -> t -> unit

(** Read and {!parse} a file; I/O errors are also [Error]. *)
val of_file : string -> (t, string) result
