(** Minimal JSON: the benchmark harness's machine-readable output
    (`BENCH_*.json`) and its validation.  No external dependency — the
    emitter and the recursive-descent parser cover standard JSON
    (RFC 8259) over the values the harness produces.

    Non-finite floats have no JSON encoding; the emitter writes them as
    [null] rather than producing an unparseable file. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Compact (single-line) rendering. *)
val to_string : t -> string

(** [parse s] is the value encoded by [s], or [Error msg] with a
    position-annotated message.  Numbers with a fraction or exponent
    parse as {!Float}, others as {!Int}. *)
val parse : string -> (t, string) result

(** Object field lookup; [None] on missing fields and non-objects. *)
val member : string -> t -> t option

(** Write [to_string] plus a trailing newline to a file. *)
val to_file : string -> t -> unit

(** Read and {!parse} a file; I/O errors are also [Error]. *)
val of_file : string -> (t, string) result
