(** The blocked DGEMM driver: Goto's jc/pc/ic macro-kernel loop nest
    over NC/KC/MC cache blocks where every inner routine — pack-A,
    pack-B and the micro-kernel — is AUGEM-generated assembly executed
    on the functional simulator.  The full generated GEMM the paper
    deploys inside OpenBLAS.

    The loop structure mirrors {!Augem_blas.Level3.dgemm_blocked}
    exactly, so a differential run against that reference with the same
    simulated micro-kernel is bit-exact ({!check}). *)

type plan = {
  pl_arch : Augem_machine.Arch.t;
  pl_et : Augem_machine.Etype.t;
      (** scalar precision the plan's kernels compute in *)
  pl_blocking : Augem_sim.Mem_model.blocking;  (** tuned MC/KC/NC *)
  pl_mr : int;
  pl_nr : int;
  pl_micro : Augem_machine.Insn.program;
  pl_micro_config : Augem_autotune.Tuner.candidate;
  pl_pack_a : Augem_machine.Insn.program;
  pl_pack_b : Augem_machine.Insn.program;
  pl_blocked_mflops : float;
      (** predicted MFLOPS of the blocked driver on the tuning workload *)
  pl_streamed_mflops : float;
      (** predicted MFLOPS of the unblocked (streaming) baseline *)
}

(** Tune the micro-kernel jointly with its blocking triple
    ({!Augem_autotune.Tuner.tune_blocked}) and the two packing kernels,
    all through the staged-lowering pipeline.  [?et] selects the scalar
    precision (default f64): an f32 plan generates SGEMM kernels,
    derives its blocking with 4-byte elements, and simulates with f32
    lane semantics. *)
val plan :
  ?et:Augem_machine.Etype.t ->
  ?jobs:int -> ?workload:Augem_sim.Perf.workload -> Augem_machine.Arch.t ->
  plan

type stats = {
  st_micro_calls : int;
  st_pack_a_calls : int;
  st_pack_b_calls : int;
  st_insns : int;  (** instructions interpreted across all three kernels *)
}

val zero_stats : stats
val default_fuel : int

(** [gemm p a b c] computes C := alpha * A * B + beta * C with the
    plan's generated kernels on the simulator.  [?blocking] overrides
    the plan's triple (it is a runtime parameter of the generated code;
    tests use small triples to force multi-block trips on small
    matrices).  Raises [Augem_sim.Exec_sim.Sim_error] on a kernel
    fault, [Invalid_argument] on shape mismatch or a non-positive
    blocking. *)
val gemm :
  ?fuel:int ->
  ?blocking:Augem_sim.Mem_model.blocking ->
  ?alpha:float ->
  ?beta:float ->
  plan ->
  Augem_blas.Matrix.t ->
  Augem_blas.Matrix.t ->
  Augem_blas.Matrix.t ->
  stats

(** Cycle-model prediction of the plan's blocked driver on a workload. *)
val predict : plan -> Augem_sim.Perf.workload -> Augem_sim.Perf.estimate

(** Cycle-model prediction of the unblocked streaming baseline. *)
val predict_streamed :
  plan -> Augem_sim.Perf.workload -> Augem_sim.Perf.estimate

(** Differential check on one shape: the generated blocked driver must
    match {!Augem_blas.Level3.dgemm_naive} within [tol] {i and} agree
    bit-exactly with the reference macro-kernel
    ({!Augem_blas.Level3.dgemm_blocked}, reference packing) driving the
    same simulated micro-kernel — same block schedule, same packed
    layouts, same FP order, so any deviation is a packing or loop-nest
    bug rather than rounding.

    [tol] defaults to the relative, element-type- and K-scaled
    tolerance {!Augem_machine.Etype.tol} (the naive reference
    accumulates in f64, so the rounding gap grows with the reduction
    length and the element epsilon); pass an explicit value to
    override. *)
val check :
  ?fuel:int ->
  ?blocking:Augem_sim.Mem_model.blocking ->
  ?tol:float ->
  ?seed:int ->
  plan ->
  m:int ->
  n:int ->
  k:int ->
  unit ->
  (stats, string) result
