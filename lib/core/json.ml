(* Minimal JSON emitter + parser.  See json.mli. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- emitter ------------------------------------------------------------ *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f (* keep a fraction so it reads back as a float *)
  else Printf.sprintf "%.17g" f

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if not (Float.is_finite f) then Buffer.add_string buf "null"
      else Buffer.add_string buf (float_repr f)
  | String s -> escape_string buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  emit buf v;
  Buffer.contents buf

(* --- parser ------------------------------------------------------------- *)

exception Parse_error of int * string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let utf8_of_code buf c =
    (* enough for \uXXXX escapes (BMP); surrogate pairs are handled by
       the caller merging them before calling us *)
    if c < 0x80 then Buffer.add_char buf (Char.chr c)
    else if c < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (c lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
    end
    else if c < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (c lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (c lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
    end
  in
  let hex4 () =
    (* strict: exactly four hex digits.  [int_of_string "0x…"] alone
       would also accept OCaml numeric-literal syntax (underscores), so
       validate the characters first. *)
    if !pos + 4 > n then fail "truncated \\u escape";
    let digit c =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> fail "bad \\u escape"
    in
    let v =
      (digit s.[!pos] lsl 12)
      lor (digit s.[!pos + 1] lsl 8)
      lor (digit s.[!pos + 2] lsl 4)
      lor digit s.[!pos + 3]
    in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' -> Buffer.add_char buf '"'; go ()
          | '\\' -> Buffer.add_char buf '\\'; go ()
          | '/' -> Buffer.add_char buf '/'; go ()
          | 'b' -> Buffer.add_char buf '\b'; go ()
          | 'f' -> Buffer.add_char buf '\012'; go ()
          | 'n' -> Buffer.add_char buf '\n'; go ()
          | 'r' -> Buffer.add_char buf '\r'; go ()
          | 't' -> Buffer.add_char buf '\t'; go ()
          | 'u' ->
              let c1 = hex4 () in
              let code =
                if c1 >= 0xD800 && c1 <= 0xDBFF then begin
                  (* high surrogate: require the low half *)
                  expect '\\';
                  expect 'u';
                  let c2 = hex4 () in
                  if c2 < 0xDC00 || c2 > 0xDFFF then fail "lone surrogate";
                  0x10000 + ((c1 - 0xD800) lsl 10) + (c2 - 0xDC00)
                end
                else if c1 >= 0xDC00 && c1 <= 0xDFFF then
                  (* a low half with no preceding high half would
                     otherwise encode as invalid UTF-8 *)
                  fail "lone surrogate"
                else c1
              in
              utf8_of_code buf code;
              go ()
          | _ -> fail "bad escape")
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    let is_float =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') lit
    in
    if is_float then
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> fail ("bad number " ^ lit)
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> (
          (* integer literal wider than the OCaml int range: degrade to
             the nearest float rather than rejecting the document *)
          match float_of_string_opt lit with
          | Some f -> Float f
          | None -> fail ("bad number " ^ lit))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (elems [])
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos < n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (p, msg) ->
      Error (Printf.sprintf "JSON parse error at offset %d: %s" p msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_file path v =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string v);
      Out_channel.output_char oc '\n')

let of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> parse contents
  | exception Sys_error msg -> Error msg
