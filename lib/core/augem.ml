(* AUGEM — public API.

   A reproduction of "AUGEM: Automatically Generate High Performance
   Dense Linear Algebra Kernels on x86 CPUs" (Wang, Zhang, Zhang, Yi;
   SC '13): a template-based framework that turns a simple C
   implementation of a dense linear algebra kernel into a fully
   optimized x86-64 assembly kernel, with no manual intervention.

   The pipeline (paper Figure 1):

     simple C --(Optimized C Kernel Generator)--> low-level C
              --(Template Identifier)--> template-tagged C
              --(Template Optimizer + Assembly Kernel Generator)--> asm

   Entry points:
   - [generate]: run the full pipeline under an explicit configuration.
   - [tuned]: let the empirical tuner pick the configuration.
   - [Harness.verify]: execute the generated assembly on the functional
     simulator against the reference BLAS.
   - [Sim.Perf.predict]: cycle-level performance estimate.

   Sub-libraries re-exported for convenience: *)

module Ir = struct
  module Ast = Augem_ir.Ast
  module Pp = Augem_ir.Pp
  module Poly = Augem_ir.Poly
  module Simplify = Augem_ir.Simplify
  module Typecheck = Augem_ir.Typecheck
  module Eval = Augem_ir.Eval
  module Lexer = Augem_ir.Lexer
  module Parser = Augem_ir.Parser
  module Kernels = Augem_ir.Kernels
end

module Analysis = struct
  module Liveness = Augem_analysis.Liveness
  module Arrays = Augem_analysis.Arrays
  module Cfg = Augem_analysis.Cfg
  module Dataflow = Augem_analysis.Dataflow
  module Asmcheck = Augem_analysis.Asmcheck
end

module Transform = struct
  module Unroll = Augem_transform.Unroll
  module Strength_reduction = Augem_transform.Strength_reduction
  module Scalar_repl = Augem_transform.Scalar_repl
  module Prefetch = Augem_transform.Prefetch
  module Pipeline = Augem_transform.Pipeline
  module Script = Augem_transform.Script
  module Names = Augem_transform.Names
end

module Templates = struct
  module Template = Augem_templates.Template
  module Matcher = Augem_templates.Matcher
end

module Machine = struct
  module Etype = Augem_machine.Etype
  module Reg = Augem_machine.Reg
  module Insn = Augem_machine.Insn
  module Arch = Augem_machine.Arch
  module Att = Augem_machine.Att
  module Depgraph = Augem_machine.Depgraph
end

module Codegen = struct
  module Regfile = Augem_codegen.Regfile
  module Gpralloc = Augem_codegen.Gpralloc
  module Plan = Augem_codegen.Plan

  (* The historical [Emit] API is now a compatibility veneer over the
     staged-lowering driver; see {!Driver.Lower}. *)
  module Emit = Augem_driver.Emit
  module Schedule = Augem_codegen.Schedule
end

module Driver = struct
  module Stage = Augem_driver.Stage
  module Trace = Augem_driver.Trace
  module Lower = Augem_driver.Lower
end

module Sim = struct
  module Exec_sim = Augem_sim.Exec_sim
  module Cycle_sim = Augem_sim.Cycle_sim
  module Cache_sim = Augem_sim.Cache_sim
  module Mem_model = Augem_sim.Mem_model
  module Perf = Augem_sim.Perf
end

module Blas = struct
  module Matrix = Augem_blas.Matrix
  module Level1 = Augem_blas.Level1
  module Level2 = Augem_blas.Level2
  module Level3 = Augem_blas.Level3
end

module Verify = struct
  module Diag = Augem_verify.Diag
  module Oracle = Augem_verify.Oracle
  module Faults = Augem_verify.Faults
end

module Tuner = Augem_autotune.Tuner
module Tuning_cache = Augem_autotune.Cache
module Pool = Augem_parallel.Pool
module Library = Augem_baselines.Library
module Harness = Harness
module Blocked = Blocked
module Native_check = Native_check
module Native_blocked = Native_blocked

module Jit = struct
  module Encoder = Augem_jit.Encoder
  module Runtime = Augem_jit.Runtime
  module Abi = Augem_jit.Abi
  module Clock = Augem_jit.Clock
end
module Chaos = Chaos
module Report = Report
module Json = Json

(* --- one-call pipeline -------------------------------------------------- *)

type generated = {
  g_kernel : Ir.Kernels.name;
  g_arch : Machine.Arch.t;
  g_et : Machine.Etype.t; (* scalar precision the kernel computes in *)
  g_config : Transform.Pipeline.config;
  g_source : Ir.Ast.kernel; (* the simple C input *)
  g_optimized : Ir.Ast.kernel; (* after the C kernel generator *)
  g_tagged : Ir.Ast.kernel; (* with template annotations *)
  g_program : Machine.Insn.program;
}

(* The IR precision an element type selects; [None] keeps the built-in
   f64 kernel text, so the default path is unchanged by the precision
   axis. *)
let fp_of_et : Machine.Etype.t -> Ir.Ast.dtype option = function
  | Machine.Etype.F32 -> Some Ir.Ast.Float
  | Machine.Etype.F64 -> None

(* Run the full pipeline on one of the paper's kernels under an
   explicit configuration.  [?et] selects the scalar precision
   (default f64): f32 retypes the kernel source to [float] and the
   whole stack — vector widths, instruction suffixes, simulation
   semantics — follows the parameter types from there. *)
let generate ?(et = Machine.Etype.F64)
    ?(opts = Codegen.Emit.default_options) ~(arch : Machine.Arch.t)
    ~(config : Transform.Pipeline.config) (name : Ir.Kernels.name) : generated
    =
  let source = Ir.Kernels.kernel_of_name ?fp:(fp_of_et et) name in
  let trace =
    Driver.Lower.run
      ~opts:
        {
          Driver.Lower.default_opts with
          Driver.Lower.prefer = opts.Codegen.Emit.prefer;
          max_width = opts.Codegen.Emit.max_width;
        }
      ~arch ~config source
  in
  {
    g_kernel = name;
    g_arch = arch;
    g_et = et;
    g_config = config;
    g_source = source;
    g_optimized =
      (match Driver.Trace.optimized trace with
      | Some k -> k
      | None -> assert false (* full runs always record it *));
    g_tagged = Templates.Matcher.to_tagged_kernel (Driver.Trace.annotated trace);
    g_program = Driver.Trace.program trace;
  }

(* Run the staged-lowering driver on one of the paper's kernels,
   keeping the whole trace (per-stage timings, fingerprints, size
   counters and, when [snapshots], rendered artifacts).  This is what
   `augem explain` renders. *)
let explain ?(et = Machine.Etype.F64) ?(opts = Driver.Lower.default_opts)
    ~(arch : Machine.Arch.t) ~(config : Transform.Pipeline.config)
    (name : Ir.Kernels.name) : Driver.Trace.t =
  Driver.Lower.run ~opts ~arch ~config
    (Ir.Kernels.kernel_of_name ?fp:(fp_of_et et) name)

(* Machine-readable rendering of a lowering trace. *)
let trace_to_json (t : Driver.Trace.t) : Json.t =
  let stage (r : Driver.Trace.stage_record) =
    Json.Obj
      ([
         ("index", Json.Int r.Driver.Trace.sr_index);
         ("name", Json.String r.Driver.Trace.sr_name);
         ("kind", Json.String r.Driver.Trace.sr_kind);
         ("ms", Json.Float r.Driver.Trace.sr_ms);
         ("fingerprint", Json.String r.Driver.Trace.sr_fingerprint);
         ( "stats",
           Json.Obj
             (List.map
                (fun (k, v) -> (k, Json.Int v))
                r.Driver.Trace.sr_stats) );
       ]
      @
      match r.Driver.Trace.sr_artifact with
      | None -> []
      | Some a -> [ ("artifact", Json.String a) ])
  in
  Json.Obj
    [
      ("kernel", Json.String t.Driver.Trace.tr_kernel);
      ("arch", Json.String t.Driver.Trace.tr_arch);
      ("etype", Json.String (Machine.Etype.name t.Driver.Trace.tr_et));
      ( "config",
        match t.Driver.Trace.tr_config with
        | Some c -> Json.String c
        | None -> Json.Null );
      ("stages", Json.List (List.map stage t.Driver.Trace.tr_stages));
    ]

(* Run the pipeline under a transformation script (the mini-POET layer:
   see [Transform.Script] for the directive language). *)
let opts_of_script (s : Transform.Script.t) : Codegen.Emit.options =
  {
    Codegen.Emit.prefer =
      (match s.Transform.Script.sc_prefer with
      | `Auto -> Codegen.Plan.Prefer_auto
      | `Vdup -> Codegen.Plan.Prefer_vdup
      | `Shuf -> Codegen.Plan.Prefer_shuf);
    max_width =
      Option.map
        (function
          | 64 -> Machine.Insn.W64
          | 128 -> Machine.Insn.W128
          | _ -> Machine.Insn.W256)
        s.Transform.Script.sc_width;
  }

let generate_scripted ?et ~(arch : Machine.Arch.t)
    ~(script : Transform.Script.t) (name : Ir.Kernels.name) : generated =
  generate ?et ~arch ~config:script.Transform.Script.sc_config
    ~opts:(opts_of_script script) name

(* Same, with the configuration chosen by the empirical tuner.
   [?jobs] shards the sweep across domains; [?cache_dir] persists the
   tuning result on disk (both also settable process-wide via
   [Tuner.set_jobs] / [Tuner.set_cache_dir] or the AUGEM_JOBS /
   AUGEM_CACHE_DIR environment variables). *)
let tuned ?(et = Machine.Etype.F64) ?jobs ?cache_dir
    ~(arch : Machine.Arch.t) (name : Ir.Kernels.name) : generated =
  let r = Tuner.tuned ~et ?jobs ?cache_dir arch name in
  generate ~et ~arch ~config:r.Tuner.best.Tuner.cand_config
    ~opts:r.Tuner.best.Tuner.cand_opts name

(* Verify a generated kernel end to end (simulator vs reference BLAS). *)
let verify (g : generated) : Harness.outcome =
  Harness.verify ~et:g.g_et g.g_kernel g.g_program

(* The assembly listing, as the Assembly Kernel Generator emits it. *)
let assembly (g : generated) : string =
  Machine.Att.program_to_string ~et:g.g_et
    ~avx:(g.g_arch.Machine.Arch.simd = Machine.Arch.AVX)
    g.g_program

(* Cycle-model MFLOPS estimate on a workload. *)
let predict (g : generated) (w : Sim.Perf.workload) : Sim.Perf.estimate =
  Sim.Perf.predict ~et:g.g_et g.g_arch g.g_program w
