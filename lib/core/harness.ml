(* Verification harness: runs a generated assembly kernel on the
   functional simulator against the reference BLAS on randomized
   inputs.  This is the end-to-end correctness gate for every kernel,
   architecture and tuning configuration. *)

open Augem_ir
module Exec = Augem_sim.Exec_sim
module L1 = Augem_blas.Level1
module L2 = Augem_blas.Level2
module L3 = Augem_blas.Level3
module Mat = Augem_blas.Matrix
module Insn = Augem_machine.Insn
module Et = Augem_machine.Etype

type shape = {
  sh_m : int; (* rows / vector length *)
  sh_n : int;
  sh_k : int;
  sh_ld_slack : int; (* extra leading-dimension padding *)
}

let default_shape = { sh_m = 8; sh_n = 6; sh_k = 16; sh_ld_slack = 2 }

let fill seed n =
  let state = ref (seed land 0x3FFFFFFF) in
  Array.init n (fun _ ->
      state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
      (float_of_int !state /. 1073741824.0 *. 2.0) -. 1.0)

(* Narrow random inputs to the element type so the f64 reference and
   the simulated kernel start from identical values; identity at f64. *)
let nar et a = Array.map (Et.round et) a

let close ?(tol = 1e-9) a b =
  Float.abs (a -. b) <= tol *. (1.0 +. Float.abs a +. Float.abs b)

let arrays_close ?tol a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> close ?tol x y) a b

type outcome = {
  ok : bool;
  detail : string;
  sim_result : Exec.result option;
}

let pass sim_result = { ok = true; detail = "ok"; sim_result }
let fail detail = { ok = false; detail; sim_result = None }

(* Instruction budget for one simulated kernel call.  The harness
   shapes execute a few thousand instructions; anything in the millions
   is a diverging mutant or a pathological configuration, and must fail
   fast instead of hanging a tuning sweep or the chaos suite. *)
let default_fuel = 20_000_000

(* How a verify driver executes the kernel under test.  The default
   runner is the functional simulator; the native JIT path plugs in a
   runner that executes real machine code (or one that runs both and
   cross-checks), so one set of seeds, shapes and degenerate sweeps
   drives every execution backend. *)
type runner = {
  run_name : string;
  run :
    et:Et.t ->
    fuel:int ->
    Insn.program ->
    Exec.arg list ->
    (Exec.result option, string) result;
}

let sim_runner =
  {
    run_name = "sim";
    run =
      (fun ~et ~fuel prog args ->
        match Exec.call ~et ~fuel prog args with
        | r -> Ok (Some r)
        | exception Exec.Sim_error msg -> Error ("simulator fault: " ^ msg));
  }

(* Run the program and catch executor faults as failures. *)
let run_sim ?(runner = sim_runner) ?(et = Et.F64) ?(fuel = default_fuel) prog
    args =
  runner.run ~et ~fuel prog args

(* --- per-kernel drivers ------------------------------------------------- *)

let verify_gemm ?runner ?(et = Et.F64) ?fuel ?(packed = false) ?(seed = 1)
    ?(shape = default_shape) (prog : Insn.program) : outcome =
  let mc = shape.sh_m and kc = shape.sh_k and n = shape.sh_n in
  let ldc = mc + shape.sh_ld_slack in
  let pa = nar et (fill seed (mc * kc)) in
  let pb = nar et (fill (seed + 1) (kc * n)) in
  let c_ref = nar et (fill (seed + 2) (ldc * n)) in
  let c_sim = Array.copy c_ref in
  (* reference through the independent BLAS micro-kernel *)
  (if packed then
     (* interleaved layout: B[l*n + j]; re-pack into stream layout for
        the reference *)
     let pb_stream = Array.make (kc * n) 0. in
     for j = 0 to n - 1 do
       for l = 0 to kc - 1 do
         pb_stream.((j * kc) + l) <- pb.((l * n) + j)
       done
     done;
     L3.micro_kernel_ref ~mc ~kc ~nc:n ~pa ~pb:pb_stream ~c_data:c_ref
       ~c_off:0 ~ldc
   else
     L3.micro_kernel_ref ~mc ~kc ~nc:n ~pa ~pb ~c_data:c_ref ~c_off:0 ~ldc);
  match
    run_sim ?runner ~et ?fuel prog
      Exec.[ Aint mc; Aint kc; Aint n; Aint ldc; Abuf pa; Abuf pb; Abuf c_sim ]
  with
  | Error e -> fail e
  | Ok r ->
      if arrays_close ~tol:(Et.tol ~k:kc et) c_ref c_sim then pass r
      else fail "gemm: output mismatch"

let verify_gemv ?runner ?(et = Et.F64) ?fuel ?(seed = 2) ?(shape = default_shape)
    ?m ?n (prog : Insn.program) : outcome =
  let m = match m with Some m -> m | None -> shape.sh_m + 5 in
  let n = match n with Some n -> n | None -> shape.sh_n in
  let lda = m + shape.sh_ld_slack in
  let a = nar et (fill seed (lda * n)) in
  let x = nar et (fill (seed + 1) n) in
  let y_ref = nar et (fill (seed + 2) m) in
  let y_sim = Array.copy y_ref in
  let mat = Mat.{ data = a; rows = m; cols = n; ld = lda } in
  L2.dgemv ~alpha:1.0 ~beta:1.0 mat x y_ref;
  match
    run_sim ?runner ~et ?fuel prog
      Exec.[ Aint m; Aint n; Aint lda; Abuf a; Abuf x; Abuf y_sim ]
  with
  | Error e -> fail e
  | Ok r ->
      if arrays_close ~tol:(Et.tol ~k:n et) y_ref y_sim then pass r
      else fail "gemv: output mismatch"

let verify_axpy ?runner ?(et = Et.F64) ?fuel ?(seed = 3) ?(n = 37) ?(alpha = 1.7)
    (prog : Insn.program) : outcome =
  let alpha = Et.round et alpha in
  let x = nar et (fill seed n) in
  let y_ref = nar et (fill (seed + 1) n) in
  let y_sim = Array.copy y_ref in
  L1.daxpy n alpha x y_ref;
  match
    run_sim ?runner ~et ?fuel prog Exec.[ Aint n; Adouble alpha; Abuf x; Abuf y_sim ]
  with
  | Error e -> fail e
  | Ok r ->
      if arrays_close ~tol:(Et.tol et) y_ref y_sim then pass r
      else fail "axpy: output mismatch"

let verify_dot ?runner ?(et = Et.F64) ?fuel ?(seed = 4) ?(n = 37)
    (prog : Insn.program) : outcome =
  let x = nar et (fill seed n) in
  let y = nar et (fill (seed + 1) n) in
  let expect = Et.round et 0.5 +. L1.ddot n x y in
  let out = [| 0.5 |] in
  match run_sim ?runner ~et ?fuel prog Exec.[ Aint n; Abuf x; Abuf y; Abuf out ] with
  | Error e -> fail e
  | Ok r ->
      if close ~tol:(Et.tol ~k:(max 1 n) et) expect out.(0) then pass r
      else
        fail
          (Printf.sprintf "dot: expected %.12g, got %.12g" expect out.(0))

let verify_ger ?runner ?(et = Et.F64) ?fuel ?(seed = 5) ?(shape = default_shape) ?m
    ?n (prog : Insn.program) : outcome =
  let m = match m with Some m -> m | None -> shape.sh_m + 3 in
  let n = match n with Some n -> n | None -> shape.sh_n in
  let lda = m + shape.sh_ld_slack in
  let alpha = 1.25 in
  let a_ref = nar et (fill seed (lda * n)) in
  let a_sim = Array.copy a_ref in
  let x = nar et (fill (seed + 1) m) in
  let y = nar et (fill (seed + 2) n) in
  let mat = Mat.{ data = a_ref; rows = m; cols = n; ld = lda } in
  L2.dger ~alpha mat x y;
  match
    run_sim ?runner ~et ?fuel prog
      Exec.[ Aint m; Aint n; Aint lda; Adouble alpha; Abuf x; Abuf y;
             Abuf a_sim ]
  with
  | Error e -> fail e
  | Ok r ->
      if arrays_close ~tol:(Et.tol et) a_ref a_sim then pass r
      else fail "ger: output mismatch"

let verify_scal ?runner ?(et = Et.F64) ?fuel ?(seed = 6) ?(n = 37) ?(alpha = 0.75)
    (prog : Insn.program) : outcome =
  let alpha = Et.round et alpha in
  let x_ref = nar et (fill seed n) in
  let x_sim = Array.copy x_ref in
  L1.dscal n alpha x_ref;
  match run_sim ?runner ~et ?fuel prog Exec.[ Aint n; Adouble alpha; Abuf x_sim ] with
  | Error e -> fail e
  | Ok r ->
      if arrays_close ~tol:(Et.tol et) x_ref x_sim then pass r
      else fail "scal: output mismatch"

let verify_copy ?runner ?(et = Et.F64) ?fuel ?(seed = 7) ?(n = 37)
    (prog : Insn.program) : outcome =
  let x = nar et (fill seed n) in
  let y = nar et (fill (seed + 1) (n + 2)) in
  match run_sim ?runner ~et ?fuel prog Exec.[ Aint n; Abuf x; Abuf y ] with
  | Error e -> fail e
  | Ok r ->
      let copied =
        Array.for_all2 (close ~tol:(Et.tol et)) x (Array.sub y 0 n)
      in
      if copied then pass r else fail "copy: output mismatch"

let verify_pack_a ?runner ?(et = Et.F64) ?fuel ?(seed = 8) ?(shape = default_shape)
    (prog : Insn.program) : outcome =
  let mc = shape.sh_m and kc = shape.sh_k in
  let lda = mc + shape.sh_ld_slack in
  let a = nar et (fill seed (lda * kc)) in
  let mat = Mat.{ data = a; rows = mc; cols = kc; ld = lda } in
  let buf_ref = Array.make (max 1 (mc * kc)) 0. in
  let buf_sim = Array.copy buf_ref in
  L3.pack_a mat ~i0:0 ~l0:0 ~mc ~kc buf_ref;
  match
    run_sim ?runner ~et ?fuel prog
      Exec.[ Aint mc; Aint kc; Aint lda; Abuf a; Abuf buf_sim ]
  with
  | Error e -> fail e
  | Ok r ->
      if arrays_close ~tol:(Et.tol et) buf_ref buf_sim then pass r
      else fail "pack_a: packed panel mismatch"

let verify_pack_b ?runner ?(et = Et.F64) ?fuel ?(seed = 9) ?(shape = default_shape)
    (prog : Insn.program) : outcome =
  let kc = shape.sh_k and nc = shape.sh_n in
  let ldb = kc + shape.sh_ld_slack in
  let b = nar et (fill seed (ldb * nc)) in
  let mat = Mat.{ data = b; rows = kc; cols = nc; ld = ldb } in
  let buf_ref = Array.make (max 1 (kc * nc)) 0. in
  let buf_sim = Array.copy buf_ref in
  L3.pack_b mat ~l0:0 ~j0:0 ~kc ~nc buf_ref;
  match
    run_sim ?runner ~et ?fuel prog
      Exec.[ Aint kc; Aint nc; Aint ldb; Abuf b; Abuf buf_sim ]
  with
  | Error e -> fail e
  | Ok r ->
      if arrays_close ~tol:(Et.tol et) buf_ref buf_sim then pass r
      else fail "pack_b: packed panel mismatch"

(* Degenerate problem shapes: unit dimensions and zero-length vectors.
   These exercise the edge where every main loop is skipped and only
   remainder (or no) code runs — a classic source of miscompiles that
   the "nice" shapes never reach. *)
let degenerate_cases ?runner ?et ?fuel (kernel : Kernels.name)
    (prog : Insn.program) : (string * (unit -> outcome)) list =
  let unit_shape = { sh_m = 1; sh_n = 1; sh_k = 1; sh_ld_slack = 0 } in
  match kernel with
  | Kernels.Gemm ->
      [ ( "m=n=k=1",
          fun () -> verify_gemm ?runner ?et ?fuel ~seed:401 ~shape:unit_shape prog ) ]
  | Kernels.Gemv ->
      [
        ("m=1,n=1", fun () -> verify_gemv ?runner ?et ?fuel ~seed:402 ~m:1 ~n:1 prog);
        ("n=0", fun () -> verify_gemv ?runner ?et ?fuel ~seed:403 ~m:3 ~n:0 prog);
      ]
  | Kernels.Ger ->
      [
        ("m=1,n=1", fun () -> verify_ger ?runner ?et ?fuel ~seed:404 ~m:1 ~n:1 prog);
        ("n=0", fun () -> verify_ger ?runner ?et ?fuel ~seed:405 ~m:3 ~n:0 prog);
      ]
  | Kernels.Axpy ->
      [
        ("n=1", fun () -> verify_axpy ?runner ?et ?fuel ~seed:406 ~n:1 prog);
        ("n=0", fun () -> verify_axpy ?runner ?et ?fuel ~seed:407 ~n:0 prog);
      ]
  | Kernels.Dot ->
      [
        ("n=1", fun () -> verify_dot ?runner ?et ?fuel ~seed:408 ~n:1 prog);
        ("n=0", fun () -> verify_dot ?runner ?et ?fuel ~seed:409 ~n:0 prog);
      ]
  | Kernels.Scal ->
      [
        ("n=1", fun () -> verify_scal ?runner ?et ?fuel ~seed:410 ~n:1 prog);
        ("n=0", fun () -> verify_scal ?runner ?et ?fuel ~seed:411 ~n:0 prog);
      ]
  | Kernels.Copy ->
      [
        ("n=1", fun () -> verify_copy ?runner ?et ?fuel ~seed:412 ~n:1 prog);
        ("n=0", fun () -> verify_copy ?runner ?et ?fuel ~seed:413 ~n:0 prog);
      ]
  | Kernels.Pack_a ->
      [
        ( "mc=kc=1",
          fun () -> verify_pack_a ?runner ?et ?fuel ~seed:414 ~shape:unit_shape prog );
        ( "kc=0",
          fun () ->
            verify_pack_a ?runner ?et ?fuel ~seed:415
              ~shape:{ sh_m = 3; sh_n = 1; sh_k = 0; sh_ld_slack = 1 }
              prog );
      ]
  | Kernels.Pack_b ->
      [
        ( "kc=nc=1",
          fun () -> verify_pack_b ?runner ?et ?fuel ~seed:416 ~shape:unit_shape prog );
        ( "nc=0",
          fun () ->
            verify_pack_b ?runner ?et ?fuel ~seed:417
              ~shape:{ sh_m = 1; sh_n = 0; sh_k = 3; sh_ld_slack = 1 }
              prog );
      ]

(* Verify a program implementing [kernel] (the simple-C kernels of the
   paper) on a few shapes, including non-divisible remainder cases and
   degenerate unit / empty shapes. *)
let verify ?runner ?et ?fuel (kernel : Kernels.name) (prog : Insn.program) :
    outcome =
  let shapes =
    [
      default_shape;
      { sh_m = 16; sh_n = 8; sh_k = 32; sh_ld_slack = 0 };
      { sh_m = 13; sh_n = 5; sh_k = 9; sh_ld_slack = 3 }; (* remainders *)
      (* vector length 11*3+1 = 34 / +2 = 35: several remainder
         iterations after an 8-way unrolled main loop, so a fault in
         the remainder loop's own control flow (increment, pointer
         bump) cannot hide behind a single-trip remainder *)
      { sh_m = 11; sh_n = 7; sh_k = 5; sh_ld_slack = 1 };
    ]
  in
  let rec go seed = function
    | [] ->
        (* all regular shapes passed; sweep the degenerate edge cases *)
        let rec degen = function
          | [] -> { ok = true; detail = "ok"; sim_result = None }
          | (label, case) :: rest -> (
              match case () with
              | { ok = true; _ } -> degen rest
              | o -> { o with detail = "degenerate " ^ label ^ ": " ^ o.detail })
        in
        degen (degenerate_cases ?runner ?et ?fuel kernel prog)
    | shape :: rest -> (
        let outcome =
          match kernel with
          | Kernels.Gemm -> verify_gemm ?runner ?et ?fuel ~seed ~shape prog
          | Kernels.Gemv -> verify_gemv ?runner ?et ?fuel ~seed ~shape prog
          | Kernels.Axpy ->
              verify_axpy ?runner ?et ?fuel ~seed ~n:(shape.sh_m * 3 + 1) prog
          | Kernels.Dot ->
              verify_dot ?runner ?et ?fuel ~seed ~n:(shape.sh_m * 3 + 2) prog
          | Kernels.Ger -> verify_ger ?runner ?et ?fuel ~seed ~shape prog
          | Kernels.Scal ->
              verify_scal ?runner ?et ?fuel ~seed ~n:((shape.sh_m * 3) + 1) prog
          | Kernels.Copy ->
              verify_copy ?runner ?et ?fuel ~seed ~n:((shape.sh_m * 3) + 2) prog
          | Kernels.Pack_a -> verify_pack_a ?runner ?et ?fuel ~seed ~shape prog
          | Kernels.Pack_b -> verify_pack_b ?runner ?et ?fuel ~seed ~shape prog
        in
        match outcome.ok with
        | true -> go (seed + 17) rest
        | false -> outcome)
  in
  go 11 shapes
