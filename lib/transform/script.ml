(* A small transformation-script language playing the role POET plays
   in the paper: the optimization sequence applied by the Optimized C
   Kernel Generator is expressed as a text script, so tuning drivers
   and users can state configurations without writing OCaml.

   Syntax: one directive per line (or ';'-separated); '#' starts a
   comment.

     unroll_jam <var> <factor>     # register blocking of an outer loop
     unroll <var> <factor>         # innermost loop unrolling
     expand <ways>                 # reduction accumulator expansion
     strength_reduce on|off
     scalar_replace on|off
     prefetch <distance>|off       # software prefetch distance
     prefer auto|vdup|shuf         # SIMD vectorization strategy
     width 64|128|256              # cap the vector width

   Directives apply in the fixed pipeline order of the paper (Figure 1);
   [unroll_jam] directives compose in the order written. *)

type preference =
  [ `Auto | `Vdup | `Shuf ]

type t = {
  sc_config : Pipeline.config;
  sc_prefer : preference;
  sc_width : int option; (* bits *)
}

let default =
  { sc_config = Pipeline.default; sc_prefer = `Auto; sc_width = None }

(* line (1-based) of the offending directive, and the message *)
exception Script_error of int * string

let err ~line fmt = Fmt.kstr (fun s -> raise (Script_error (line, s))) fmt

(* Split into directives, each tagged with the 1-based source line it
   came from (';'-separated directives share their line). *)
let split_directives (src : string) : (int * string list) list =
  String.split_on_char '\n' src
  |> List.mapi (fun i line -> (i + 1, line))
  |> List.concat_map (fun (ln, line) ->
         String.split_on_char ';' line |> List.map (fun seg -> (ln, seg)))
  |> List.map (fun (ln, seg) ->
         let seg =
           match String.index_opt seg '#' with
           | Some i -> String.sub seg 0 i
           | None -> seg
         in
         ( ln,
           String.split_on_char ' ' seg
           |> List.concat_map (String.split_on_char '\t')
           |> List.filter (fun w -> w <> "") ))
  |> List.filter (fun (_, words) -> words <> [])

let int_arg ~line name s =
  match int_of_string_opt s with
  | Some n when n >= 1 -> n
  | Some _ | None -> err ~line "%s expects a positive integer, got %S" name s

let onoff ~line name = function
  | "on" -> true
  | "off" -> false
  | s -> err ~line "%s expects on or off, got %S" name s

let apply_directive (t : t) ((line, words) : int * string list) : t =
  let cfg = t.sc_config in
  match words with
  | [ "unroll_jam"; var; f ] ->
      {
        t with
        sc_config =
          { cfg with Pipeline.jam = cfg.Pipeline.jam @ [ (var, int_arg ~line "unroll_jam" f) ] };
      }
  | [ "unroll"; var; f ] ->
      { t with
        sc_config = { cfg with Pipeline.inner_unroll = Some (var, int_arg ~line "unroll" f) } }
  | [ "expand"; w ] ->
      { t with
        sc_config = { cfg with Pipeline.expand_reduction = Some (int_arg ~line "expand" w) } }
  | [ "strength_reduce"; v ] ->
      { t with
        sc_config = { cfg with Pipeline.strength_reduce = onoff ~line "strength_reduce" v } }
  | [ "scalar_replace"; v ] ->
      { t with
        sc_config = { cfg with Pipeline.scalar_replace = onoff ~line "scalar_replace" v } }
  | [ "prefetch"; "off" ] ->
      { t with sc_config = { cfg with Pipeline.prefetch = None } }
  | [ "prefetch"; d ] ->
      {
        t with
        sc_config =
          {
            cfg with
            Pipeline.prefetch =
              Some { Prefetch.pf_distance = int_arg ~line "prefetch" d; pf_stores = true };
          };
      }
  | [ "prefer"; "auto" ] -> { t with sc_prefer = `Auto }
  | [ "prefer"; "vdup" ] -> { t with sc_prefer = `Vdup }
  | [ "prefer"; "shuf" ] -> { t with sc_prefer = `Shuf }
  | [ "width"; w ] -> (
      match w with
      | "64" -> { t with sc_width = Some 64 }
      | "128" -> { t with sc_width = Some 128 }
      | "256" -> { t with sc_width = Some 256 }
      | _ -> err ~line "width expects 64, 128 or 256, got %S" w)
  | cmd :: _ -> err ~line "unknown directive %S" cmd
  | [] -> t

let parse (src : string) : (t, string) result =
  match
    List.fold_left apply_directive default (split_directives src)
  with
  | t -> Ok t
  | exception Script_error (line, msg) ->
      Error (Printf.sprintf "line %d: %s" line msg)

let parse_exn (src : string) : t =
  (* the exception carries the structured (line, message) payload *)
  List.fold_left apply_directive default (split_directives src)

let to_string (t : t) : string =
  let b = Buffer.create 128 in
  let cfg = t.sc_config in
  List.iter
    (fun (v, f) -> Buffer.add_string b (Printf.sprintf "unroll_jam %s %d\n" v f))
    cfg.Pipeline.jam;
  (match cfg.Pipeline.inner_unroll with
  | Some (v, f) -> Buffer.add_string b (Printf.sprintf "unroll %s %d\n" v f)
  | None -> ());
  (match cfg.Pipeline.expand_reduction with
  | Some w -> Buffer.add_string b (Printf.sprintf "expand %d\n" w)
  | None -> ());
  if not cfg.Pipeline.strength_reduce then
    Buffer.add_string b "strength_reduce off\n";
  if not cfg.Pipeline.scalar_replace then
    Buffer.add_string b "scalar_replace off\n";
  (match cfg.Pipeline.prefetch with
  | Some p ->
      Buffer.add_string b
        (Printf.sprintf "prefetch %d\n" p.Prefetch.pf_distance)
  | None -> Buffer.add_string b "prefetch off\n");
  (match t.sc_prefer with
  | `Auto -> ()
  | `Vdup -> Buffer.add_string b "prefer vdup\n"
  | `Shuf -> Buffer.add_string b "prefer shuf\n");
  (match t.sc_width with
  | Some w -> Buffer.add_string b (Printf.sprintf "width %d\n" w)
  | None -> ());
  Buffer.contents b
