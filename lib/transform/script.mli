(** A small transformation-script language playing the role POET plays
    in the paper: the optimization sequence of the Optimized C Kernel
    Generator expressed as text.

    Syntax — one directive per line (or ';'-separated), ['#'] comments:
    {v
      unroll_jam <var> <factor>     # register blocking of an outer loop
      unroll <var> <factor>         # innermost loop unrolling
      expand <ways>                 # reduction accumulator expansion
      strength_reduce on|off
      scalar_replace on|off
      prefetch <distance>|off
      prefer auto|vdup|shuf         # SIMD vectorization strategy
      width 64|128|256              # cap the vector width
    v} *)

type preference = [ `Auto | `Vdup | `Shuf ]

type t = {
  sc_config : Pipeline.config;
  sc_prefer : preference;
  sc_width : int option;  (** vector width cap, in bits *)
}

val default : t

(** 1-based line number of the offending directive, and the message.
    Directives separated by [';'] on one line share that line. *)
exception Script_error of int * string

(** [Error] messages are prefixed with ["line N: "]. *)
val parse : string -> (t, string) result

val parse_exn : string -> t

(** Render back to directive text; [parse (to_string t)] is a
    fixpoint. *)
val to_string : t -> string
