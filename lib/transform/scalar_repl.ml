(* Scalar replacement: lowers compound floating-point assignments into
   the three-address form the Template Identifier matches against.  The
   three canonical shapes (paper Figure 3) are produced exactly:

     res = res + a[i1] * b[i2]      ==>   tmp0 = a[i1]
                                          tmp1 = b[i2]
                                          tmp2 = tmp0 * tmp1
                                          res  = res + tmp2        (mmCOMP)

     c[i] = c[i] + res              ==>   tmp0 = c[i]
                                          res  = res + tmp0
                                          c[i] = res               (mmSTORE)

     b[i2] = b[i2] + a[i1] * scal   ==>   tmp0 = a[i1]
                                          tmp1 = b[i2]
                                          tmp0 = tmp0 * scal
                                          tmp1 = tmp1 + tmp0
                                          b[i2] = tmp1             (mvCOMP)

   Anything else is lowered by a generic recursive three-address
   expansion.  Integer (index/pointer) assignments are left alone. *)

open Augem_ir
open Ast

type state = {
  names : Names.t;
  mutable tmp_decls : stmt list;
  env : (string, dtype) Hashtbl.t;
}

let new_tmp st =
  let v = Names.fresh st.names "tmp" in
  st.tmp_decls <- Decl (Double, v, None) :: st.tmp_decls;
  v

let expr_equal (a : expr) (b : expr) = a = b

(* Generic lowering of a double-typed expression to an operand that is
   a variable or literal, emitting helper statements in order. *)
let rec lower_operand st acc (e : expr) : stmt list * expr =
  match e with
  | Double_lit _ | Var _ -> (acc, e)
  | Index _ ->
      let t = new_tmp st in
      (Assign (Lvar t, e) :: acc, Var t)
  | Neg a ->
      let acc, a' = lower_operand st acc a in
      let t = new_tmp st in
      (Assign (Lvar t, Binop (Sub, Double_lit 0., a')) :: acc, Var t)
  | Binop (op, a, b) ->
      let acc, a' = lower_operand st acc a in
      let acc, b' = lower_operand st acc b in
      let t = new_tmp st in
      (Assign (Lvar t, Binop (op, a', b')) :: acc, Var t)
  | Int_lit _ -> (acc, e)

let is_simple = function
  | Var _ | Double_lit _ | Int_lit _ -> true
  | Index _ | Binop _ | Neg _ -> false

(* Lower one double assignment into canonical three-address form. *)
let lower_double_assign st (lv : lvalue) (e : expr) : stmt list =
  match (lv, e) with
  (* mmCOMP: res = res + x * y, with x/y array loads or scalars *)
  | Lvar r, Binop (Add, Var r', Binop (Mul, x, y))
    when String.equal r r'
         && (match x with Index _ | Var _ -> true | _ -> false)
         && (match y with Index _ | Var _ -> true | _ -> false) ->
      let acc, x' = lower_operand st [] x in
      let acc, y' = lower_operand st acc y in
      let t2 = new_tmp st in
      List.rev acc
      @ [
          Assign (Lvar t2, Binop (Mul, x', y'));
          Assign (Lvar r, Binop (Add, Var r, Var t2));
        ]
  (* mvCOMP: b[i2] = b[i2] + a[i1] * scal  (scal a scalar variable) *)
  | Lindex (b, i2), Binop (Add, Index (b', i2'), Binop (Mul, Index (a, i1), Var s))
    when String.equal b b' && expr_equal i2 i2' ->
      let t0 = new_tmp st and t1 = new_tmp st in
      [
        Assign (Lvar t0, Index (a, i1));
        Assign (Lvar t1, Index (b, i2));
        Assign (Lvar t0, Binop (Mul, Var t0, Var s));
        Assign (Lvar t1, Binop (Add, Var t1, Var t0));
        Assign (Lindex (b, i2), Var t1);
      ]
  (* same with the multiplication written scal * a[i1] *)
  | Lindex (b, i2), Binop (Add, Index (b', i2'), Binop (Mul, Var s, Index (a, i1)))
    when String.equal b b' && expr_equal i2 i2' ->
      let t0 = new_tmp st and t1 = new_tmp st in
      [
        Assign (Lvar t0, Index (a, i1));
        Assign (Lvar t1, Index (b, i2));
        Assign (Lvar t0, Binop (Mul, Var t0, Var s));
        Assign (Lvar t1, Binop (Add, Var t1, Var t0));
        Assign (Lindex (b, i2), Var t1);
      ]
  (* svSCAL: b[i] = b[i] * scal (extension template) *)
  | Lindex (b, i), Binop (Mul, Index (b', i'), Var s)
    when String.equal b b' && expr_equal i i' ->
      let t0 = new_tmp st in
      [
        Assign (Lvar t0, Index (b, i));
        Assign (Lvar t0, Binop (Mul, Var t0, Var s));
        Assign (Lindex (b, i), Var t0);
      ]
  | Lindex (b, i), Binop (Mul, Var s, Index (b', i'))
    when String.equal b b' && expr_equal i i' ->
      let t0 = new_tmp st in
      [
        Assign (Lvar t0, Index (b, i));
        Assign (Lvar t0, Binop (Mul, Var t0, Var s));
        Assign (Lindex (b, i), Var t0);
      ]
  (* mmSTORE: c[i] = c[i] + res *)
  | Lindex (c, i), Binop (Add, Index (c', i'), Var r)
    when String.equal c c' && expr_equal i i' ->
      let t0 = new_tmp st in
      [
        Assign (Lvar t0, Index (c, i));
        Assign (Lvar r, Binop (Add, Var r, Var t0));
        Assign (Lindex (c, i), Var r);
      ]
  (* store of an already-simple value *)
  | Lindex _, e when is_simple e -> [ Assign (lv, e) ]
  | Lvar _, e when is_simple e -> [ Assign (lv, e) ]
  (* scalar = single load *)
  | Lvar _, Index _ -> [ Assign (lv, e) ]
  (* generic fallback *)
  | _, Binop (op, a, b) ->
      let acc, a' = lower_operand st [] a in
      let acc, b' = lower_operand st acc b in
      List.rev acc @ [ Assign (lv, Binop (op, a', b')) ]
  | _, Neg a ->
      let acc, a' = lower_operand st [] a in
      List.rev acc @ [ Assign (lv, Binop (Sub, Double_lit 0., a')) ]
  | _, (Index _ | Var _ | Double_lit _ | Int_lit _) ->
      let acc, e' = lower_operand st [] e in
      List.rev acc @ [ Assign (lv, e') ]

let rec lower_stmt st (s : stmt) : stmt list =
  match s with
  | Decl (t, v, init) ->
      Hashtbl.replace st.env v t;
      [ Decl (t, v, init) ]
  | Assign (lv, e) -> (
      let lv_type =
        match lv with
        | Lvar v -> (
            match Hashtbl.find_opt st.env v with Some t -> t | None -> Int)
        | Lindex (a, _) -> (
            match Hashtbl.find_opt st.env a with
            | Some (Ptr t) -> t
            | _ -> Double)
      in
      match lv_type with
      | Double | Float -> lower_double_assign st lv (Simplify.simplify_expr e)
      | Int | Ptr _ -> [ s ])
  | For (h, body) -> [ For (h, List.concat_map (lower_stmt st) body) ]
  | If (a, c, b, t, f) ->
      [ If (a, c, b, List.concat_map (lower_stmt st) t,
            List.concat_map (lower_stmt st) f) ]
  | Prefetch _ | Comment _ -> [ s ]
  | Tagged (tag, body) -> [ Tagged (tag, List.concat_map (lower_stmt st) body) ]

let run (k : kernel) : kernel =
  let env = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace env p.p_name p.p_type) k.k_params;
  let st = { names = Names.create k; tmp_decls = []; env } in
  let body = List.concat_map (lower_stmt st) k.k_body in
  { k with k_body = List.rev st.tmp_decls @ body }
