(** Strength reduction of array index arithmetic (paper section 4.1.1,
    Figure 13).

    Affine accesses like [A[l*Mc + i]] become accesses through derived
    pointers ([ptr_A0[0]]) that are initialized immediately before the
    loop whose variable they vary with and bumped by the index stride
    at the end of each iteration.  Accesses to the same array whose
    index polynomials differ only by a constant share one pointer with
    constant displacements; symbolic differences (the unrolled C
    columns, [j*LDC] vs [j*LDC + LDC]) get separate pointers —
    reproducing the ptr_A / ptr_B / ptr_C0 / ptr_C1 structure of the
    paper's optimized GEMM. *)

(** Raised when an access's index shape violates the pass's own
    decomposition invariants (a store rewriting to a non-index
    expression, or a group's common term losing linearity in the loop
    variable).  Classified by the tuner as
    [Augem_verify.Diag.E_strength_reduction] so a broken candidate
    lands in the failure histogram instead of aborting the sweep. *)
exception Reduction_error of string

val run : Augem_ir.Ast.kernel -> Augem_ir.Ast.kernel
