(* Strength reduction of array index arithmetic: affine accesses
   [A[l*Mc + i]] become accesses through derived pointers [ptr_A0[0]]
   that are initialized outside the loop and bumped by the index stride
   at the end of each iteration (paper section 4.1.1, Figure 13).

   Loops are processed innermost-first.  At a loop over [v], every
   access whose index is linear in [v] with a [v]-invariant stride is
   grouped by (array, index-minus-constant); each group receives one
   derived pointer:

     - initialization [ptr = A + idx{v := v_init} - disp] is placed
       immediately before the loop,
     - the pointer is incremented by [stride * step] at the end of the
       loop body,
     - each access is rewritten to [ptr[disp]] with its constant
       displacement.

   Outer-loop variables occurring in the initialization expression are
   re-evaluated naturally because the initialization sits inside the
   enclosing loop's body. *)

module SS = Set.Make (String)

open Augem_ir
open Ast

(* An index shape that violates the pass's own decomposition
   invariants.  Raised instead of [assert false] so the tuner can
   classify the failure ([Diag.E_strength_reduction]) and keep sweeping
   instead of aborting. *)
exception Reduction_error of string

type group = {
  g_ptr : string;
  g_array : string;
  g_common : Poly.t; (* index polynomial minus its constant term *)
  g_stride : Poly.t; (* d(common)/dv *)
}

(* Loop variables anywhere in a statement list (used to reject strides
   that vary inside the loop). *)
let rec loop_vars_of stmts =
  List.fold_left
    (fun acc s ->
      match s with
      | For (h, body) -> SS.union (SS.add h.loop_var acc) (loop_vars_of body)
      | If (_, _, _, t, f) ->
          SS.union acc (SS.union (loop_vars_of t) (loop_vars_of f))
      | Tagged (_, body) -> SS.union acc (loop_vars_of body)
      | Decl _ | Assign _ | Prefetch _ | Comment _ -> acc)
    SS.empty stmts

let const_term (p : Poly.t) : int =
  match Poly.Mmap.find_opt [] p with Some c -> c | None -> 0

(* Decompose an access index at loop [v]: returns
   (common, stride, displacement) when reducible. *)
let decompose ~v ~forbidden (idx : expr) :
    (Poly.t * Poly.t * int) option =
  match Poly.of_expr idx with
  | None -> None
  | Some p -> (
      match Poly.split_linear v p with
      | None -> None
      | Some (_, stride) ->
          if Poly.is_zero stride then None
          else if List.exists (fun x -> SS.mem x forbidden) (Poly.vars stride)
          then None
          else
            let disp = const_term p in
            let common = Poly.sub p (Poly.const disp) in
            Some (common, stride, disp))

type registry = {
  names : Names.t;
  counters : (string, int) Hashtbl.t;
  mutable decls : stmt list;
  array_types : (string, dtype) Hashtbl.t;
}

let group_key (array : string) (common : Poly.t) = (array, Poly.to_string common)

let fresh_ptr reg array =
  let n = Option.value ~default:0 (Hashtbl.find_opt reg.counters array) in
  Hashtbl.replace reg.counters array (n + 1);
  Names.claim reg.names (Printf.sprintf "ptr_%s%d" array n)

let elem_type reg array =
  match Hashtbl.find_opt reg.array_types array with
  | Some (Ptr t) -> t
  | Some _ | None -> Double

(* Rewrite all reducible accesses in [e] for loop [v], registering
   groups as they are discovered (in first-occurrence order). *)
let rec rewrite_expr reg tbl ~v ~forbidden e =
  match e with
  | Int_lit _ | Double_lit _ | Var _ -> e
  | Neg a -> Neg (rewrite_expr reg tbl ~v ~forbidden a)
  | Binop (op, a, b) ->
      Binop
        ( op,
          rewrite_expr reg tbl ~v ~forbidden a,
          rewrite_expr reg tbl ~v ~forbidden b )
  | Index (a, idx) -> (
      let idx = rewrite_expr reg tbl ~v ~forbidden idx in
      match decompose ~v ~forbidden idx with
      | None -> Index (a, idx)
      | Some (common, stride, disp) ->
          let key = group_key a common in
          let g =
            match Hashtbl.find_opt tbl key with
            | Some g -> g
            | None ->
                let ptr = fresh_ptr reg a in
                let g =
                  { g_ptr = ptr; g_array = a; g_common = common;
                    g_stride = stride }
                in
                Hashtbl.replace tbl key g;
                reg.decls <- Decl (Ptr (elem_type reg a), ptr, None) :: reg.decls;
                g
          in
          Index (g.g_ptr, Int_lit disp))

let rewrite_lvalue reg tbl ~v ~forbidden = function
  | Lvar x -> Lvar x
  | Lindex (a, idx) -> (
      match rewrite_expr reg tbl ~v ~forbidden (Index (a, idx)) with
      | Index (a', idx') -> Lindex (a', idx')
      | e ->
          raise
            (Reduction_error
               (Printf.sprintf
                  "store %s[%s] rewrote to a non-index expression %s"
                  a (Pp.expr_to_string idx) (Pp.expr_to_string e))))

let rec rewrite_stmt reg tbl ~v ~forbidden s =
  let re = rewrite_expr reg tbl ~v ~forbidden in
  match s with
  | Decl (t, x, init) -> Decl (t, x, Option.map re init)
  | Assign (lv, e) -> Assign (rewrite_lvalue reg tbl ~v ~forbidden lv, re e)
  | For (h, body) ->
      (* Indices under a deeper loop were already reduced; whatever is
         left that varies in [v] still gets rewritten here. *)
      For (h, List.map (rewrite_stmt reg tbl ~v ~forbidden) body)
  | If (a, c, b, t, f) ->
      If
        ( re a,
          c,
          re b,
          List.map (rewrite_stmt reg tbl ~v ~forbidden) t,
          List.map (rewrite_stmt reg tbl ~v ~forbidden) f )
  | Prefetch (h, base, off) -> Prefetch (h, base, re off)
  | Comment _ -> s
  | Tagged (tag, body) ->
      Tagged (tag, List.map (rewrite_stmt reg tbl ~v ~forbidden) body)

(* Process one loop after its body has been processed recursively. *)
let reduce_loop reg (h : loop_header) (body : stmt list) : stmt list =
  let v = h.loop_var in
  let forbidden =
    SS.add v (loop_vars_of body)
    (* strides must also not depend on scalars assigned in the body;
       conservatively forbid everything the body defines *)
    |> SS.union (Augem_analysis.Liveness.defs_block body)
  in
  match (Poly.of_expr h.loop_init, Poly.of_expr h.loop_step) with
  | Some init_p, Some step_p ->
      let tbl = Hashtbl.create 8 in
      let body = List.map (rewrite_stmt reg tbl ~v ~forbidden) body in
      if Hashtbl.length tbl = 0 then [ For (h, body) ]
      else
        let groups =
          Hashtbl.fold (fun _ g acc -> g :: acc) tbl []
          |> List.sort (fun a b -> String.compare a.g_ptr b.g_ptr)
        in
        let init_of g =
          (* ptr = A + common{v := init} *)
          match Poly.split_linear v g.g_common with
          | None ->
              raise
                (Reduction_error
                   (Printf.sprintf
                      "group %s over %s: common term %s is not linear in %s"
                      g.g_ptr g.g_array (Poly.to_string g.g_common) v))
          | Some (base, stride) ->
              let p = Poly.add base (Poly.mul stride init_p) in
              Assign
                ( Lvar g.g_ptr,
                  Simplify.simplify_expr
                    (Binop (Add, Var g.g_array, Poly.to_expr p)) )
        in
        let incr_of g =
          let bump = Poly.mul g.g_stride step_p in
          Assign
            ( Lvar g.g_ptr,
              Simplify.simplify_expr
                (Binop (Add, Var g.g_ptr, Poly.to_expr bump)) )
        in
        List.map init_of groups
        @ [ For (h, body @ List.map incr_of groups) ]
  | _ -> [ For (h, body) ]

let rec reduce_block reg stmts =
  List.concat_map
    (fun s ->
      match s with
      | For (h, body) -> reduce_loop reg h (reduce_block reg body)
      | If (a, c, b, t, f) ->
          [ If (a, c, b, reduce_block reg t, reduce_block reg f) ]
      | Tagged (tag, body) -> [ Tagged (tag, reduce_block reg body) ]
      | Decl _ | Assign _ | Prefetch _ | Comment _ -> [ s ])
    stmts

let run (k : kernel) : kernel =
  let array_types = Hashtbl.create 8 in
  List.iter
    (fun p ->
      match p.p_type with
      | Ptr _ -> Hashtbl.replace array_types p.p_name p.p_type
      | Int | Double | Float -> ())
    k.k_params;
  let rec record_decls = function
    | [] -> ()
    | Decl ((Ptr _ as t), v, _) :: rest ->
        Hashtbl.replace array_types v t;
        record_decls rest
    | (For (_, b) | Tagged (_, b)) :: rest ->
        record_decls b;
        record_decls rest
    | If (_, _, _, t, f) :: rest ->
        record_decls t;
        record_decls f;
        record_decls rest
    | (Decl _ | Assign _ | Prefetch _ | Comment _) :: rest -> record_decls rest
  in
  record_decls k.k_body;
  let reg =
    { names = Names.create k; counters = Hashtbl.create 8; decls = [];
      array_types }
  in
  let body = reduce_block reg k.k_body in
  { k with k_body = List.rev reg.decls @ body }
