(** The Optimized C Kernel Generator (paper section 2.1): applies the
    five source-to-source optimizations in order — loop unroll&jam,
    loop unrolling (with optional reduction-accumulator expansion),
    strength reduction, scalar replacement and data prefetching — under
    a tuning configuration the auto-tuner searches over. *)

type config = {
  jam : (string * int) list;
      (** outer loops to unroll&jam, applied in list order *)
  inner_unroll : (string * int) option;  (** innermost loop unrolling *)
  expand_reduction : int option;
      (** partial-accumulator expansion ways for the unrolled loop's
          reductions; reassociates FP sums as hand-written kernels do *)
  strength_reduce : bool;
  scalar_replace : bool;
  prefetch : Prefetch.config option;
}

(** Strength reduction, scalar replacement and prefetching on; no
    unrolling. *)
val default : config

val config_to_string : config -> string

(** The pass sequence a configuration denotes, in application order,
    each with a human-readable name (e.g. ["unroll&jam j:4"],
    ["scalar-replacement"]).  [apply] folds this list; the per-pass
    differential oracle walks it to localize miscompiles. *)
val passes :
  config -> (string * (Augem_ir.Ast.kernel -> Augem_ir.Ast.kernel)) list

(** Apply the configured passes; the result is simplified and
    type-checked. *)
val apply : Augem_ir.Ast.kernel -> config -> Augem_ir.Ast.kernel
