(* The Optimized C Kernel Generator (paper section 2.1): applies the
   five source-to-source optimizations in order — loop unroll&jam, loop
   unrolling, strength reduction, scalar replacement and data
   prefetching — under a tuning configuration that the auto-tuner
   searches over. *)

open Augem_ir

type config = {
  jam : (string * int) list;
      (* outer loops to unroll&jam, applied in list order *)
  inner_unroll : (string * int) option; (* innermost loop unrolling *)
  expand_reduction : int option;
      (* partial-accumulator expansion of the unrolled loop's
         reductions (ways); reassociates FP sums *)
  strength_reduce : bool;
  scalar_replace : bool;
  prefetch : Prefetch.config option;
}

let default =
  {
    jam = [];
    inner_unroll = None;
    expand_reduction = None;
    strength_reduce = true;
    scalar_replace = true;
    prefetch = Some Prefetch.default_config;
  }

let config_to_string (c : config) : string =
  let jam =
    c.jam |> List.map (fun (v, f) -> Printf.sprintf "%s:%d" v f)
    |> String.concat ","
  in
  Printf.sprintf "jam=[%s] unroll=%s sr=%b scalar=%b pf=%s"
    jam
    (match c.inner_unroll with
    | None -> "-"
    | Some (v, f) -> Printf.sprintf "%s:%d" v f)
    c.strength_reduce c.scalar_replace
    (match c.prefetch with
    | None -> "-"
    | Some p -> string_of_int p.Prefetch.pf_distance)

(* The pass sequence a configuration denotes, as named kernel-to-kernel
   functions.  [apply] folds over this list; the per-pass differential
   oracle (lib/verify/oracle.ml) walks the same list to pinpoint which
   pass miscompiled. *)
let passes (c : config) : (string * (Ast.kernel -> Ast.kernel)) list =
  let jam =
    List.map
      (fun (loop_var, factor) ->
        ( Printf.sprintf "unroll&jam %s:%d" loop_var factor,
          fun k -> Unroll.unroll_and_jam k ~loop_var ~factor ))
      c.jam
  in
  let unroll =
    match c.inner_unroll with
    | None -> []
    | Some (loop_var, factor) ->
        ( Printf.sprintf "unroll %s:%d" loop_var factor,
          fun k -> Unroll.unroll k ~loop_var ~factor )
        ::
        (match c.expand_reduction with
        | None -> []
        | Some ways ->
            [
              ( Printf.sprintf "expand-reduction x%d" ways,
                fun k -> Unroll.expand_accumulators k ~loop_var ~ways );
            ])
  in
  let sr =
    if c.strength_reduce then
      [ ("strength-reduction", Strength_reduction.run) ]
    else []
  in
  let scalar =
    if c.scalar_replace then [ ("scalar-replacement", Scalar_repl.run) ]
    else []
  in
  let pf =
    match c.prefetch with
    | None -> []
    | Some cfg ->
        [
          ( Printf.sprintf "prefetch %d" cfg.Prefetch.pf_distance,
            fun k -> Prefetch.insert k cfg );
        ]
  in
  jam @ unroll @ sr @ scalar @ pf @ [ ("simplify", Simplify.simplify_kernel) ]

let apply (k : Ast.kernel) (c : config) : Ast.kernel =
  let k = List.fold_left (fun k (_name, pass) -> pass k) k (passes c) in
  Typecheck.check_kernel k;
  k
