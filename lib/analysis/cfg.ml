(* Control-flow graph over a generated machine program.  See cfg.mli. *)

module Insn = Augem_machine.Insn

type block = {
  b_id : int;
  b_first : int;
  b_last : int;
  b_succs : int list;
  b_preds : int list;
}

type issue =
  | Undefined_target of { index : int; label : string }
  | Duplicate_label of { index : int; label : string }
  | Falls_off_end of { index : int }

type t = {
  insns : Insn.t array;
  blocks : block array;
  block_of : int array;
  labels : (string, int) Hashtbl.t;
  issues : issue list;
  reachable : bool array;
}

let build (p : Insn.program) : t =
  let insns = Array.of_list p.Insn.prog_insns in
  let n = Array.length insns in
  let issues = ref [] in
  (* label table; the first binding of a duplicated label wins, the
     duplicate is reported *)
  let labels = Hashtbl.create 32 in
  Array.iteri
    (fun i insn ->
      match insn with
      | Insn.Label l ->
          if Hashtbl.mem labels l then
            issues := Duplicate_label { index = i; label = l } :: !issues
          else Hashtbl.replace labels l i
      | _ -> ())
    insns;
  if n = 0 then
    {
      insns;
      blocks = [||];
      block_of = [||];
      labels;
      issues = List.rev !issues;
      reachable = [||];
    }
  else begin
    (* leaders *)
    let leader = Array.make n false in
    leader.(0) <- true;
    Array.iteri
      (fun i insn ->
        match insn with
        | Insn.Label _ -> leader.(i) <- true
        | Insn.Jmp l | Insn.Jcc (_, l) ->
            if i + 1 < n then leader.(i + 1) <- true;
            (match Hashtbl.find_opt labels l with
            | Some t -> leader.(t) <- true
            | None ->
                issues := Undefined_target { index = i; label = l } :: !issues)
        | Insn.Ret -> if i + 1 < n then leader.(i + 1) <- true
        | _ -> ())
      insns;
    (* block spans *)
    let spans = ref [] in
    let start = ref 0 in
    for i = 1 to n - 1 do
      if leader.(i) then begin
        spans := (!start, i - 1) :: !spans;
        start := i
      end
    done;
    spans := (!start, n - 1) :: !spans;
    let spans = Array.of_list (List.rev !spans) in
    let nb = Array.length spans in
    let block_of = Array.make n 0 in
    Array.iteri
      (fun b (first, last) ->
        for i = first to last do
          block_of.(i) <- b
        done)
      spans;
    (* successors *)
    let succs = Array.make nb [] in
    let preds = Array.make nb [] in
    let add_edge src dst =
      if not (List.mem dst succs.(src)) then begin
        succs.(src) <- dst :: succs.(src);
        preds.(dst) <- src :: preds.(dst)
      end
    in
    Array.iteri
      (fun b (_, last) ->
        let fallthrough () =
          if last + 1 < n then add_edge b block_of.(last + 1)
          else issues := Falls_off_end { index = last } :: !issues
        in
        match insns.(last) with
        | Insn.Ret -> ()
        | Insn.Jmp l -> (
            match Hashtbl.find_opt labels l with
            | Some t -> add_edge b block_of.(t)
            | None -> () (* already reported as Undefined_target *))
        | Insn.Jcc (_, l) ->
            (match Hashtbl.find_opt labels l with
            | Some t -> add_edge b block_of.(t)
            | None -> ());
            fallthrough ()
        | _ -> fallthrough ())
      spans;
    let blocks =
      Array.mapi
        (fun b (first, last) ->
          {
            b_id = b;
            b_first = first;
            b_last = last;
            b_succs = List.rev succs.(b);
            b_preds = List.rev preds.(b);
          })
        spans
    in
    (* reachability from the entry block *)
    let reachable = Array.make nb false in
    let rec dfs b =
      if not reachable.(b) then begin
        reachable.(b) <- true;
        List.iter dfs blocks.(b).b_succs
      end
    in
    dfs 0;
    { insns; blocks; block_of; labels; issues = List.rev !issues; reachable }
  end

let iter_insns (t : t) (b : block) (f : int -> Insn.t -> unit) : unit =
  for i = b.b_first to b.b_last do
    f i t.insns.(i)
  done

let insn_indices (b : block) : int list =
  List.init (b.b_last - b.b_first + 1) (fun k -> b.b_first + k)
