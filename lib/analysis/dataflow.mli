(** Generic iterative dataflow over a {!Cfg.t}.

    The framework is direction-agnostic (forward or backward) and
    lattice-agnostic: instantiate {!Make} with a join-semilattice (for
    may-analyses join is union; for must-analyses it is intersection —
    the solver only needs [join] and [equal]).  Transfer functions are
    per instruction; the solver composes them over blocks and iterates
    a worklist to the fixpoint.

    Instantiations in {!Asmcheck} cover machine-register liveness
    (backward, union), reaching definitions (forward, union),
    must-definedness (forward, intersection) and the symbolic
    stack-frame tracker (forward, ad-hoc lattice). *)

module type DOMAIN = sig
  type t

  val equal : t -> t -> bool

  (** The confluence operator at control-flow merges: union for a
      may-analysis, intersection for a must-analysis. *)
  val join : t -> t -> t
end

module Make (D : DOMAIN) : sig
  (** [solve cfg ~dir ~boundary ~top ~transfer] iterates to a fixpoint
      and returns the per-block {i input} values: for [`Forward] the
      value at block entry, for [`Backward] the value at block exit.
      [boundary] seeds the program entry (forward) or every exit block
      (backward); [top] initialises unvisited blocks and must be the
      identity of [join] (so unreachable blocks keep it).
      [transfer i d] is the effect of instruction [i].  Per-instruction
      values are recovered by re-applying [transfer] across a block
      (see {!fold_block}). *)
  val solve :
    Cfg.t ->
    dir:[ `Forward | `Backward ] ->
    boundary:D.t ->
    top:D.t ->
    transfer:(int -> D.t -> D.t) ->
    D.t array

  (** [fold_block ~dir ~transfer block init f] replays [transfer]
      across one block from its input value [init], calling
      [f i value_before_i] (forward) or [f i value_after_i] (backward)
      at every instruction — the reporting pass of a checker.  Returns
      the block's output value. *)
  val fold_block :
    dir:[ `Forward | `Backward ] ->
    transfer:(int -> D.t -> D.t) ->
    Cfg.block ->
    D.t ->
    (int -> D.t -> unit) ->
    D.t
end
