(* Generic iterative dataflow over a CFG.  See dataflow.mli. *)

module type DOMAIN = sig
  type t

  val equal : t -> t -> bool
  val join : t -> t -> t
end

module Make (D : DOMAIN) = struct
  let transfer_block ~dir ~transfer (b : Cfg.block) (d : D.t) : D.t =
    match dir with
    | `Forward ->
        let acc = ref d in
        for i = b.Cfg.b_first to b.Cfg.b_last do
          acc := transfer i !acc
        done;
        !acc
    | `Backward ->
        let acc = ref d in
        for i = b.Cfg.b_last downto b.Cfg.b_first do
          acc := transfer i !acc
        done;
        !acc

  let solve (cfg : Cfg.t) ~dir ~(boundary : D.t) ~(top : D.t)
      ~(transfer : int -> D.t -> D.t) : D.t array =
    let nb = Array.length cfg.Cfg.blocks in
    if nb = 0 then [||]
    else begin
      let input = Array.make nb top in
      let output = Array.make nb top in
      (* neighbour lists in the direction of flow *)
      let sources b =
        match dir with
        | `Forward -> cfg.Cfg.blocks.(b).Cfg.b_preds
        | `Backward -> cfg.Cfg.blocks.(b).Cfg.b_succs
      in
      let is_boundary_block b =
        match dir with
        | `Forward -> b = 0
        | `Backward -> cfg.Cfg.blocks.(b).Cfg.b_succs = []
      in
      (* simple round-robin iteration; kernel CFGs are tiny (tens of
         blocks), so worklist bookkeeping would cost more than it saves *)
      let changed = ref true in
      let rounds = ref 0 in
      while !changed do
        changed := false;
        incr rounds;
        (* a lattice of bounded height converges; the guard is a
           backstop against a non-monotone client transfer *)
        if !rounds > 4 * (nb + 2) then changed := false
        else
          for b = 0 to nb - 1 do
            let from_neighbours =
              List.fold_left
                (fun acc s ->
                  match acc with
                  | None -> Some output.(s)
                  | Some d -> Some (D.join d output.(s)))
                None (sources b)
            in
            let seed = if is_boundary_block b then Some boundary else None in
            let inp =
              match (seed, from_neighbours) with
              | Some s, Some d -> D.join s d
              | Some s, None -> s
              | None, Some d -> d
              | None, None -> top
            in
            let out = transfer_block ~dir ~transfer cfg.Cfg.blocks.(b) inp in
            if not (D.equal inp input.(b)) then begin
              input.(b) <- inp;
              changed := true
            end;
            if not (D.equal out output.(b)) then begin
              output.(b) <- out;
              changed := true
            end
          done
      done;
      input
    end

  let fold_block ~dir ~transfer (b : Cfg.block) (init : D.t)
      (f : int -> D.t -> unit) : D.t =
    match dir with
    | `Forward ->
        let acc = ref init in
        for i = b.Cfg.b_first to b.Cfg.b_last do
          f i !acc;
          acc := transfer i !acc
        done;
        !acc
    | `Backward ->
        let acc = ref init in
        for i = b.Cfg.b_last downto b.Cfg.b_first do
          f i !acc;
          acc := transfer i !acc
        done;
        !acc
end
