(** Control-flow graph over a generated machine program.

    Basic blocks are maximal runs of instructions with one entry (the
    leader) and one exit: leaders are the first instruction, every
    [Label], every branch target, and every instruction following a
    [Jmp]/[Jcc]/[Ret].  Edges follow [Jmp] (unconditional), [Jcc]
    (target + fallthrough) and plain fallthrough; [Ret] ends a path.

    Malformations that make the graph unbuildable as intended —
    branches to labels that do not exist, duplicate labels, control
    falling off the end of the program — are collected as {!issue}s
    rather than raised, so the static checker can report them as
    findings on hostile (e.g. fault-injected) inputs. *)

type block = {
  b_id : int;
  b_first : int;  (** index of the first instruction of the block *)
  b_last : int;  (** index of the last instruction (inclusive) *)
  b_succs : int list;  (** successor block ids *)
  b_preds : int list;  (** predecessor block ids *)
}

type issue =
  | Undefined_target of { index : int; label : string }
      (** a [Jmp]/[Jcc] at [index] names a label that is not defined *)
  | Duplicate_label of { index : int; label : string }
      (** a label bound more than once; the first binding wins *)
  | Falls_off_end of { index : int }
      (** control can reach past the last instruction (no [Ret]) *)

type t = {
  insns : Augem_machine.Insn.t array;
  blocks : block array;
  block_of : int array;  (** instruction index -> owning block id *)
  labels : (string, int) Hashtbl.t;  (** label -> instruction index *)
  issues : issue list;
  reachable : bool array;  (** per block, from the entry block *)
}

val build : Augem_machine.Insn.program -> t

(** Iterate the instructions of one block in program order. *)
val iter_insns : t -> block -> (int -> Augem_machine.Insn.t -> unit) -> unit

(** Instruction indices of one block, in program order. *)
val insn_indices : block -> int list
