(** Machine-code static verifier: CFG + dataflow lints over generated
    kernels.

    Every program the backend emits is a freestanding System V AMD64
    function.  This module checks, without executing it, that the
    function is well-formed machine code: the control-flow graph is
    sound ({!Cfg}), every register read is reached by a definition,
    the ABI contract on callee-saved registers and the stack pointer
    holds on every path to [Ret], 256-bit upper state is clean at the
    boundaries that demand it, and SSE-mode encoding restrictions are
    respected.

    Severities split the catalog in two: [Sev_error] findings are
    genuine miscompilations (the tuner discards such candidates and
    {!check_exn} raises); [Sev_warning] findings are suspicious but
    not unsound (dead writes, unreachable code). *)

type severity =
  | Sev_error
  | Sev_warning

type lint =
  | L_malformed_cfg
      (** undefined branch target, duplicate label, or control falling
          off the end of the function *)
  | L_undef_read
      (** an instruction reads a register with no definition on some
          path from entry *)
  | L_mem_base_undef
      (** a memory operand's base or index register has no reaching
          definition at all *)
  | L_flags_undef  (** a [Jcc] with no flag-setting instruction before it *)
  | L_callee_saved_clobber
      (** a callee-saved GPR is overwritten without a save, or not
          restored on some path to [Ret] *)
  | L_stack_imbalance
      (** push/pop or rsp arithmetic does not rebalance to the entry
          rsp on a path to [Ret], or rsp becomes untrackable *)
  | L_save_slot_clobber
      (** the stack slot holding the only saved copy of a callee-saved
          register is overwritten while that copy is still needed *)
  | L_uninit_slot_load
      (** a load (or pop) reads an own-frame stack cell that is not
          written on every path from entry — a reload without its spill *)
  | L_dirty_upper
      (** 256-bit upper state may be dirty at [Ret] or at an SSE
          instruction (missing [Vzeroupper]) *)
  | L_sse_two_operand
      (** a two-operand SSE encoding with [dst <> src1] — the invariant
          instruction selection must uphold in SSE mode *)
  | L_sse_wide
      (** a 256-bit or VEX-only instruction in SSE mode *)
  | L_unreachable  (** instructions no path from entry reaches *)
  | L_dead_write
      (** a register-only FP write whose destination is dead *)

type finding = {
  f_severity : severity;
  f_lint : lint;
  f_index : int;  (** instruction index in [prog_insns], 0-based *)
  f_detail : string;
}

(** What the checker may assume defined at function entry, and the
    target's SIMD mode. *)
type config = {
  cfg_avx : bool;
  cfg_entry : Augem_machine.Reg.t list;
      (** registers carrying values at entry (arguments, callee-saved,
          rsp); reads of anything else are reported *)
}

(** Every argument register of the ABI defined: safe for programs whose
    signature is unknown. *)
val conservative : avx:bool -> config

(** Precise entry state for a kernel signature: only the argument
    registers the parameter list actually binds (plus callee-saved and
    rsp) are defined, so a read of a dropped accumulator zeroing is
    caught even when the accumulator lands in an argument xmm. *)
val config_for : avx:bool -> params:Augem_ir.Ast.param list -> config

val lint_name : lint -> string
val severity_name : severity -> string
val finding_to_string : finding -> string
val pp_finding : Format.formatter -> finding -> unit

(** Run every lint.  Findings are sorted by instruction index and
    deduplicated.  Never raises. *)
val check : ?config:config -> Augem_machine.Insn.program -> finding list

(** [Sev_error] findings only. *)
val errors : finding list -> finding list

exception Lint_error of string * finding list
(** [(program name, error findings)] *)

(** Raise {!Lint_error} if {!check} yields any [Sev_error] finding. *)
val check_exn : ?config:config -> Augem_machine.Insn.program -> unit

(** Gate for the generation-time postcondition in {!Emit}: off by
    default, enabled by [AUGEM_ASMCHECK=1] in the environment or by
    {!set_postcondition} (tests, debug builds). *)
val postcondition_enabled : unit -> bool

val set_postcondition : bool -> unit
