(* Machine-code static verifier: CFG + dataflow lints over generated
   kernels.  See asmcheck.mli for the lint catalog.

   The register universe is 33 slots packed into one bitmask: 16 GPRs
   (by [Reg.gpr_index]), 16 vector registers (16 + index) and a flags
   pseudo-register (slot 32).  The bitmask analyses (must-definedness
   forward with intersection, liveness backward with union) and the
   reaching-definition analysis (per-slot sets of defining instruction
   indices) instantiate the generic {!Dataflow} solver; the symbolic
   stack tracker runs as a forward analysis over an ad-hoc lattice of
   rsp offsets, rbp states and saved-register slots. *)

module Insn = Augem_machine.Insn
module Reg = Augem_machine.Reg
module Ast = Augem_ir.Ast
module IS = Set.Make (Int)

type severity =
  | Sev_error
  | Sev_warning

type lint =
  | L_malformed_cfg
  | L_undef_read
  | L_mem_base_undef
  | L_flags_undef
  | L_callee_saved_clobber
  | L_stack_imbalance
  | L_save_slot_clobber
  | L_uninit_slot_load
  | L_dirty_upper
  | L_sse_two_operand
  | L_sse_wide
  | L_unreachable
  | L_dead_write

type finding = {
  f_severity : severity;
  f_lint : lint;
  f_index : int;
  f_detail : string;
}

type config = {
  cfg_avx : bool;
  cfg_entry : Reg.t list;
}

(* ------------------------------------------------------------------ *)
(* Register slots                                                      *)

let nslots = 33
let flags_slot = 32
let slot_of = function Reg.Gp g -> Reg.gpr_index g | Reg.Vr v -> 16 + v
let bit s = 1 lsl s
let full_mask = (1 lsl nslots) - 1

let slot_str s =
  if s = flags_slot then "flags"
  else if s < 16 then "%" ^ Reg.gpr_name (List.nth Reg.all_gprs s)
  else Printf.sprintf "%%xmm%d" (s - 16)

let mask_of_regs rs = List.fold_left (fun m r -> m lor bit (slot_of r)) 0 rs

let reads_mask i =
  mask_of_regs (Insn.reads i)
  lor if Insn.reads_flags i then bit flags_slot else 0

let writes_mask i =
  mask_of_regs (Insn.writes i)
  lor if Insn.sets_flags i then bit flags_slot else 0

(* ------------------------------------------------------------------ *)
(* Entry configurations                                                *)

let base_entry =
  List.map (fun g -> Reg.Gp g) Reg.callee_saved @ [ Reg.Gp Reg.Rsp ]

let conservative ~avx =
  {
    cfg_avx = avx;
    cfg_entry =
      List.map (fun g -> Reg.Gp g) Reg.argument_gprs
      @ base_entry
      @ List.init 8 (fun v -> Reg.Vr v);
  }

let rec take n = function
  | [] -> []
  | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

let config_for ~avx ~(params : Ast.param list) =
  (* System V AMD64: integer/pointer arguments bind [argument_gprs] in
     order (the rest spill to the stack above the return address);
     double arguments bind xmm0..7 in order *)
  let is_fp p = match p.Ast.p_type with
    | Ast.Double | Ast.Float -> true
    | _ -> false
  in
  let n_int = List.length (List.filter (fun p -> not (is_fp p)) params) in
  let n_fp = List.length (List.filter is_fp params) in
  {
    cfg_avx = avx;
    cfg_entry =
      List.map (fun g -> Reg.Gp g) (take n_int Reg.argument_gprs)
      @ base_entry
      @ List.init (min 8 n_fp) (fun v -> Reg.Vr v);
  }

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let lint_name = function
  | L_malformed_cfg -> "malformed-cfg"
  | L_undef_read -> "undef-read"
  | L_mem_base_undef -> "mem-base-undef"
  | L_flags_undef -> "flags-undef"
  | L_callee_saved_clobber -> "callee-saved-clobber"
  | L_stack_imbalance -> "stack-imbalance"
  | L_save_slot_clobber -> "save-slot-clobber"
  | L_uninit_slot_load -> "uninit-slot-load"
  | L_dirty_upper -> "dirty-upper"
  | L_sse_two_operand -> "sse-two-operand"
  | L_sse_wide -> "sse-wide-op"
  | L_unreachable -> "unreachable-code"
  | L_dead_write -> "dead-write"

let severity_name = function Sev_error -> "error" | Sev_warning -> "warning"

let finding_to_string f =
  Printf.sprintf "#%04d [%s] %s: %s" f.f_index (severity_name f.f_severity)
    (lint_name f.f_lint) f.f_detail

let pp_finding ppf f = Format.pp_print_string ppf (finding_to_string f)

(* ------------------------------------------------------------------ *)
(* Dataflow instantiations                                             *)

module MayBits = Dataflow.Make (struct
  type t = int

  let equal = Int.equal
  let join = ( lor )
end)

module MustBits = Dataflow.Make (struct
  type t = int

  let equal = Int.equal
  let join = ( land )
end)

let sets_equal a b =
  try
    Array.iter2 (fun x y -> if not (IS.equal x y) then raise Exit) a b;
    true
  with Exit -> false

module ReachFlow = Dataflow.Make (struct
  type t = IS.t array (* per slot: indices of reaching definitions *)

  let equal = sets_equal
  let join a b = Array.init nslots (fun k -> IS.union a.(k) b.(k))
end)

module DirtyFlow = Dataflow.Make (struct
  type t = bool (* 256-bit upper state may be dirty *)

  let equal = ( = )
  let join = ( || )
end)

(* ------------------------------------------------------------------ *)
(* Symbolic stack / frame tracker                                      *)

type rbp_val =
  | Rbp_caller (* still holds the caller's value (entry state) *)
  | Rbp_frame of int (* entry-rsp-relative frame base *)
  | Rbp_unknown

type frame = {
  fr_sp : int option; (* rsp minus entry rsp, bytes; None = untracked *)
  fr_rbp : rbp_val;
  fr_intact : int; (* gpr_index mask: callee-saved regs holding entry value *)
  fr_saved : IS.t array; (* per gpr_index: slots holding the entry value *)
  fr_init : IS.t; (* own-frame slots written on every path from entry *)
}

let is_cs g = List.mem g Reg.callee_saved
let gbit g = 1 lsl Reg.gpr_index g
let callee_mask = List.fold_left (fun m g -> m lor gbit g) 0 Reg.callee_saved

let entry_frame =
  {
    fr_sp = Some 0;
    fr_rbp = Rbp_caller;
    fr_intact = callee_mask;
    fr_saved = Array.make 16 IS.empty;
    fr_init = IS.empty;
  }

let frame_equal a b =
  a.fr_sp = b.fr_sp && a.fr_rbp = b.fr_rbp && a.fr_intact = b.fr_intact
  && sets_equal a.fr_saved b.fr_saved
  && IS.equal a.fr_init b.fr_init

let frame_join a b =
  {
    fr_sp =
      (match (a.fr_sp, b.fr_sp) with
      | Some x, Some y when x = y -> Some x
      | _ -> None);
    fr_rbp = (if a.fr_rbp = b.fr_rbp then a.fr_rbp else Rbp_unknown);
    fr_intact = a.fr_intact land b.fr_intact;
    fr_saved = Array.init 16 (fun k -> IS.inter a.fr_saved.(k) b.fr_saved.(k));
    fr_init = IS.inter a.fr_init b.fr_init;
  }

module FrameFlow = Dataflow.Make (struct
  type t = frame option (* None = not yet reached (the join identity) *)

  let equal a b =
    match (a, b) with
    | None, None -> true
    | Some a, Some b -> frame_equal a b
    | _ -> false

  let join a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some a, Some b -> Some (frame_join a b)
end)

(* entry-rsp-relative address of an 8-byte stack cell, when static *)
let resolve_slot (fr : frame) (m : Insn.mem) : int option =
  if m.Insn.index <> None then None
  else
    match m.Insn.base with
    | Reg.Rsp -> Option.map (fun sp -> sp + m.Insn.disp) fr.fr_sp
    | Reg.Rbp -> (
        match fr.fr_rbp with
        | Rbp_frame o -> Some (o + m.Insn.disp)
        | _ -> None)
    | _ -> None

(* a write that destroys the entry value of [g] *)
let clobber emit fr g what =
  if is_cs g then begin
    if IS.is_empty fr.fr_saved.(Reg.gpr_index g) then
      emit L_callee_saved_clobber
        (Printf.sprintf "%s overwrites callee-saved %%%s with no saved copy"
           what (Reg.gpr_name g));
    { fr with fr_intact = fr.fr_intact land lnot (gbit g) }
  end
  else fr

(* the 8-byte cell at [k] is overwritten, by gpr [src] if given *)
let store_slot emit fr k src =
  let saved = Array.copy fr.fr_saved in
  List.iter
    (fun g ->
      let gi = Reg.gpr_index g in
      if IS.mem k saved.(gi) then begin
        let resave = src = Some g && fr.fr_intact land gbit g <> 0 in
        if not resave then begin
          saved.(gi) <- IS.remove k saved.(gi);
          if IS.is_empty saved.(gi) && fr.fr_intact land gbit g = 0 then
            emit L_save_slot_clobber
              (Printf.sprintf
                 "store overwrites the only saved copy of %%%s (slot %d)"
                 (Reg.gpr_name g) k)
        end
      end)
    Reg.callee_saved;
  (match src with
  | Some g when is_cs g && fr.fr_intact land gbit g <> 0 ->
      let gi = Reg.gpr_index g in
      saved.(gi) <- IS.add k saved.(gi)
  | _ -> ());
  { fr with fr_saved = saved; fr_init = IS.add k fr.fr_init }

(* Own-frame cells (below entry rsp) must be written before they are
   read; cells at or above entry rsp belong to the caller (return
   address, stack-passed arguments) and are out of scope. *)
let check_init emit fr m bytes =
  match resolve_slot fr m with
  | Some k when k < 0 ->
      let off = ref 0 in
      let bad = ref None in
      while !off < bytes do
        if !bad = None && not (IS.mem (k + !off) fr.fr_init) then
          bad := Some (k + !off);
        off := !off + 8
      done;
      Option.iter
        (fun slot ->
          emit L_uninit_slot_load
            (Printf.sprintf
               "load from frame slot %d, not written on every path from entry"
               slot))
        !bad
  | _ -> ()

let generic_gpr_write emit fr g what =
  if g = Reg.Rsp then begin
    emit L_stack_imbalance (what ^ " makes %rsp untrackable");
    { fr with fr_sp = None }
  end
  else
    let fr = clobber emit fr g what in
    if g = Reg.Rbp then { fr with fr_rbp = Rbp_unknown } else fr

let frame_step emit (insn : Insn.t) (fr : frame) : frame =
  match insn with
  | Insn.Push r -> (
      match fr.fr_sp with
      | Some sp ->
          let k = sp - 8 in
          let fr = store_slot emit fr k (Some r) in
          { fr with fr_sp = Some k }
      | None -> fr)
  | Insn.Pop r -> (
      match fr.fr_sp with
      | Some sp ->
          if sp < 0 && not (IS.mem sp fr.fr_init) then
            emit L_uninit_slot_load
              (Printf.sprintf
                 "pop reads frame slot %d, not written on every path from \
                  entry"
                 sp);
          let restored = is_cs r && IS.mem sp fr.fr_saved.(Reg.gpr_index r) in
          let fr =
            if restored then { fr with fr_intact = fr.fr_intact lor gbit r }
            else if is_cs r then clobber emit fr r "pop"
            else fr
          in
          let fr =
            if r = Reg.Rbp then
              { fr with fr_rbp = (if restored then Rbp_caller else Rbp_unknown) }
            else fr
          in
          if r = Reg.Rsp then begin
            emit L_stack_imbalance "pop into %rsp";
            { fr with fr_sp = None }
          end
          else { fr with fr_sp = Some (sp + 8) }
      | None -> if is_cs r then clobber emit fr r "pop" else fr)
  | Insn.Movrr (d, s) when d = Reg.Rbp && s = Reg.Rsp ->
      let fr = clobber emit fr Reg.Rbp "frame setup" in
      {
        fr with
        fr_rbp =
          (match fr.fr_sp with Some sp -> Rbp_frame sp | None -> Rbp_unknown);
      }
  | Insn.Movrr (d, s) when d = Reg.Rsp && s = Reg.Rbp -> (
      match fr.fr_rbp with
      | Rbp_frame o -> { fr with fr_sp = Some o }
      | _ ->
          emit L_stack_imbalance "restoring %rsp from an untracked %rbp";
          { fr with fr_sp = None })
  | Insn.Addri (r, n) when r = Reg.Rsp ->
      { fr with fr_sp = Option.map (fun sp -> sp + n) fr.fr_sp }
  | Insn.Subri (r, n) when r = Reg.Rsp ->
      { fr with fr_sp = Option.map (fun sp -> sp - n) fr.fr_sp }
  | Insn.Storeq (m, s) -> (
      match resolve_slot fr m with
      | Some k -> store_slot emit fr k (Some s)
      | None -> fr)
  | Insn.Vstore { w; dst = m; _ } -> (
      match resolve_slot fr m with
      | Some k ->
          let bytes = Insn.width_bits w / 8 in
          let fr = ref fr in
          let off = ref 0 in
          while !off < bytes do
            fr := store_slot emit !fr (k + !off) None;
            off := !off + 8
          done;
          !fr
      | None -> fr)
  | Insn.Loadq (r, m) ->
      check_init emit fr m 8;
      let restored =
        match resolve_slot fr m with
        | Some k -> is_cs r && IS.mem k fr.fr_saved.(Reg.gpr_index r)
        | None -> false
      in
      if restored then begin
        let fr = { fr with fr_intact = fr.fr_intact lor gbit r } in
        if r = Reg.Rbp then { fr with fr_rbp = Rbp_caller } else fr
      end
      else generic_gpr_write emit fr r "load"
  | Insn.Vload { w; src = m; _ } ->
      check_init emit fr m (Insn.width_bits w / 8);
      fr
  | Insn.Vbroadcast { src = m; _ } ->
      check_init emit fr m 8;
      fr
  | _ ->
      List.fold_left
        (fun fr reg ->
          match reg with
          | Reg.Gp g -> generic_gpr_write emit fr g "write"
          | Reg.Vr _ -> fr)
        fr (Insn.writes insn)

(* ------------------------------------------------------------------ *)
(* Helpers shared by the walks                                         *)

let mems_of = function
  | Insn.Vload { src; _ } | Insn.Vbroadcast { src; _ } -> [ src ]
  | Insn.Vstore { dst; _ } -> [ dst ]
  | Insn.Loadq (_, m) | Insn.Storeq (m, _) | Insn.Lea (_, m)
  | Insn.Prefetch (_, m) ->
      [ m ]
  | _ -> []

let writes_256 = function
  | Insn.Vop { w = Insn.W256; _ }
  | Insn.Vfma4 { w = Insn.W256; _ }
  | Insn.Vload { w = Insn.W256; _ }
  | Insn.Vbroadcast { w = Insn.W256; _ }
  | Insn.Vshuf { w = Insn.W256; _ }
  | Insn.Vblend { w = Insn.W256; _ }
  | Insn.Vperm128 _ ->
      true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* The checker                                                         *)

let check ?(config = conservative ~avx:true) (p : Insn.program) : finding list
    =
  let cfg = Cfg.build p in
  let n = Array.length cfg.Cfg.insns in
  let out = ref [] in
  let add ?(sev = Sev_error) lint index detail =
    out :=
      { f_severity = sev; f_lint = lint; f_index = index; f_detail = detail }
      :: !out
  in
  let insn i = cfg.Cfg.insns.(i) in
  (* 1. CFG soundness *)
  List.iter
    (function
      | Cfg.Undefined_target { index; label } ->
          add L_malformed_cfg index
            (Printf.sprintf "branch to undefined label %S" label)
      | Cfg.Duplicate_label { index; label } ->
          add L_malformed_cfg index
            (Printf.sprintf "label %S bound more than once" label)
      | Cfg.Falls_off_end { index } ->
          add L_malformed_cfg index
            "control can fall off the end of the function")
    cfg.Cfg.issues;
  (* 2. SSE encoding restrictions: purely local, checked on every
     instruction whether reachable or not (the printer emits them all) *)
  if not config.cfg_avx then
    Array.iteri
      (fun i x ->
        let wide detail = add L_sse_wide i detail in
        let two_operand dst src1 =
          if dst <> src1 then
            add L_sse_two_operand i
              (Printf.sprintf
                 "two-operand SSE encoding requires dst = src1 (dst %%xmm%d, \
                  src1 %%xmm%d)"
                 dst src1)
        in
        match x with
        | Insn.Vop { op = Insn.Fma231; _ } -> wide "FMA3 requires VEX encoding"
        | Insn.Vop { w = Insn.W256; _ } -> wide "256-bit operation in SSE mode"
        | Insn.Vop { op = Insn.Fmov; _ } -> () (* movapd is dst, src *)
        | Insn.Vop { dst; src1; _ } -> two_operand dst src1
        | Insn.Vfma4 _ -> wide "FMA4 requires VEX encoding"
        | Insn.Vperm128 _ -> wide "vperm2f128 requires VEX encoding"
        | Insn.Vextract128 _ -> wide "vextractf128 requires VEX encoding"
        | Insn.Vshuf { w = Insn.W256; _ } | Insn.Vblend { w = Insn.W256; _ } ->
            wide "256-bit operation in SSE mode"
        | Insn.Vshuf { dst; src1; _ } | Insn.Vblend { dst; src1; _ } ->
            two_operand dst src1
        | Insn.Vload { w = Insn.W256; _ }
        | Insn.Vstore { w = Insn.W256; _ }
        | Insn.Vbroadcast { w = Insn.W256; _ } ->
            wide "256-bit memory operation in SSE mode"
        | Insn.Vzeroupper -> wide "vzeroupper requires AVX"
        | _ -> ())
      cfg.Cfg.insns;
  if Array.length cfg.Cfg.blocks > 0 then begin
    let entry_mask = mask_of_regs config.cfg_entry in
    (* 3. unreachable code *)
    Array.iter
      (fun b ->
        if not cfg.Cfg.reachable.(b.Cfg.b_id) then begin
          let first = ref (-1) in
          for j = b.Cfg.b_first to b.Cfg.b_last do
            if !first < 0 then
              match insn j with
              | Insn.Label _ | Insn.Comment _ -> ()
              | _ -> first := j
          done;
          if !first >= 0 then
            add ~sev:Sev_warning L_unreachable !first
              (Printf.sprintf "no path from entry reaches this block of %d \
                               instructions"
                 (b.Cfg.b_last - b.Cfg.b_first + 1))
        end)
      cfg.Cfg.blocks;
    (* 4. definedness: must-defined (intersection) decides whether a
       read is sound; reaching definitions (union) distinguish "never
       defined anywhere" from "missing on some path" *)
    let must_tr i d = d lor writes_mask (insn i) in
    let must =
      MustBits.solve cfg ~dir:`Forward ~boundary:entry_mask ~top:full_mask
        ~transfer:must_tr
    in
    let reach_entry =
      Array.init nslots (fun s ->
          if entry_mask land bit s <> 0 then IS.singleton (-1) else IS.empty)
    in
    let reach_top = Array.make nslots IS.empty in
    let reach_tr i d =
      let wm = writes_mask (insn i) in
      if wm = 0 then d
      else begin
        let d' = Array.copy d in
        for s = 0 to nslots - 1 do
          if wm land bit s <> 0 then d'.(s) <- IS.singleton i
        done;
        d'
      end
    in
    let reach =
      ReachFlow.solve cfg ~dir:`Forward ~boundary:reach_entry ~top:reach_top
        ~transfer:reach_tr
    in
    let must_at = Array.make n full_mask in
    let reach_at = Array.make n reach_top in
    Array.iter
      (fun b ->
        if cfg.Cfg.reachable.(b.Cfg.b_id) then begin
          ignore
            (MustBits.fold_block ~dir:`Forward ~transfer:must_tr b
               must.(b.Cfg.b_id)
               (fun i d -> must_at.(i) <- d));
          ignore
            (ReachFlow.fold_block ~dir:`Forward ~transfer:reach_tr b
               reach.(b.Cfg.b_id)
               (fun i d -> reach_at.(i) <- d))
        end)
      cfg.Cfg.blocks;
    Array.iter
      (fun b ->
        if cfg.Cfg.reachable.(b.Cfg.b_id) then
          for i = b.Cfg.b_first to b.Cfg.b_last do
            let x = insn i in
            let mem_slots =
              List.concat_map Insn.mem_reads (mems_of x)
              |> List.map slot_of |> List.sort_uniq compare
            in
            let check_read s =
              if must_at.(i) land bit s = 0 then begin
                let never = IS.is_empty reach_at.(i).(s) in
                if never && List.mem s mem_slots then
                  add L_mem_base_undef i
                    (Printf.sprintf
                       "memory operand register %s is never defined"
                       (slot_str s))
                else if s = flags_slot then
                  add L_flags_undef i
                    (if never then
                       "conditional branch but flags are never set"
                     else "flags are not set on every path to this branch")
                else
                  add L_undef_read i
                    (Printf.sprintf "read of %s, %s" (slot_str s)
                       (if never then "never defined on any path"
                        else "not defined on every path from entry"))
              end
            in
            List.iter check_read
              (List.sort_uniq compare (List.map slot_of (Insn.reads x)));
            if Insn.reads_flags x then check_read flags_slot
          done)
      cfg.Cfg.blocks;
    (* 5. liveness: dead register-only FP writes.  The value at [Ret]
       keeps the ABI-visible state alive (callee-saved, rsp, the
       return registers) so epilogue restores are not flagged. *)
    let ret_live =
      mask_of_regs
        (List.map (fun g -> Reg.Gp g) Reg.callee_saved
        @ [ Reg.Gp Reg.Rsp; Reg.Gp Reg.Rax; Reg.Vr 0 ])
    in
    let live_tr i l =
      let x = insn i in
      l land lnot (writes_mask x) lor reads_mask x
    in
    let live =
      MayBits.solve cfg ~dir:`Backward ~boundary:ret_live ~top:0
        ~transfer:live_tr
    in
    Array.iter
      (fun b ->
        if cfg.Cfg.reachable.(b.Cfg.b_id) then
          ignore
            (MayBits.fold_block ~dir:`Backward ~transfer:live_tr b
               live.(b.Cfg.b_id)
               (fun i l_after ->
                 match insn i with
                 | Insn.Vop _ | Insn.Vfma4 _ | Insn.Vshuf _ | Insn.Vblend _
                 | Insn.Vperm128 _ | Insn.Vextract128 _ | Insn.Movq_xr _ -> (
                     match Insn.writes (insn i) with
                     | [ (Reg.Vr _ as r) ] ->
                         let s = slot_of r in
                         if l_after land bit s = 0 then
                           add ~sev:Sev_warning L_dead_write i
                             (Printf.sprintf "result %s is never read"
                                (slot_str s))
                     | _ -> ())
                 | _ -> ())))
      cfg.Cfg.blocks;
    (* 6. stack discipline and callee-saved contract *)
    let frame_tr_quiet i d =
      match d with
      | None -> None
      | Some fr -> Some (frame_step (fun _ _ -> ()) (insn i) fr)
    in
    let frames =
      FrameFlow.solve cfg ~dir:`Forward ~boundary:(Some entry_frame) ~top:None
        ~transfer:frame_tr_quiet
    in
    Array.iter
      (fun b ->
        if cfg.Cfg.reachable.(b.Cfg.b_id) then begin
          let transfer i d =
            match d with
            | None -> None
            | Some fr ->
                Some (frame_step (fun l msg -> add l i msg) (insn i) fr)
          in
          ignore
            (FrameFlow.fold_block ~dir:`Forward ~transfer b
               frames.(b.Cfg.b_id)
               (fun i d ->
                 match (d, insn i) with
                 | Some fr, Insn.Ret ->
                     (match fr.fr_sp with
                     | Some 0 -> ()
                     | Some off ->
                         add L_stack_imbalance i
                           (Printf.sprintf
                              "%%rsp is %+d bytes from its entry value at ret"
                              off)
                     | None ->
                         add L_stack_imbalance i "%rsp untracked at ret");
                     List.iter
                       (fun g ->
                         if fr.fr_intact land gbit g = 0 then
                           add L_callee_saved_clobber i
                             (Printf.sprintf
                                "callee-saved %%%s not restored on this path \
                                 to ret"
                                (Reg.gpr_name g)))
                       Reg.callee_saved
                 | _ -> ()))
        end)
      cfg.Cfg.blocks;
    (* 7. vzeroupper discipline: 256-bit upper state must be clean at
       every Ret *)
    let dirty_tr i d =
      match insn i with
      | Insn.Vzeroupper -> false
      | x -> d || writes_256 x
    in
    let dirty =
      DirtyFlow.solve cfg ~dir:`Forward ~boundary:false ~top:false
        ~transfer:dirty_tr
    in
    Array.iter
      (fun b ->
        if cfg.Cfg.reachable.(b.Cfg.b_id) then
          ignore
            (DirtyFlow.fold_block ~dir:`Forward ~transfer:dirty_tr b
               dirty.(b.Cfg.b_id)
               (fun i d ->
                 match insn i with
                 | Insn.Ret when d ->
                     add ~sev:Sev_warning L_dirty_upper i
                       "256-bit upper state may be dirty at ret (missing \
                        vzeroupper)"
                 | _ -> ())))
      cfg.Cfg.blocks
  end;
  List.sort_uniq
    (fun a b ->
      Stdlib.compare
        (a.f_index, a.f_lint, a.f_severity, a.f_detail)
        (b.f_index, b.f_lint, b.f_severity, b.f_detail))
    !out

let errors fs = List.filter (fun f -> f.f_severity = Sev_error) fs

exception Lint_error of string * finding list

let () =
  Printexc.register_printer (function
    | Lint_error (name, fs) ->
        Some
          (Printf.sprintf "Lint_error(%s: %s)" name
             (String.concat "; " (List.map finding_to_string fs)))
    | _ -> None)

let check_exn ?config p =
  let errs = errors (check ?config p) in
  if errs <> [] then raise (Lint_error (p.Insn.prog_name, errs))

let postcondition_flag =
  ref
    (match Sys.getenv_opt "AUGEM_ASMCHECK" with
    | Some ("1" | "true" | "on" | "yes") -> true
    | _ -> false)

let postcondition_enabled () = !postcondition_flag
let set_postcondition b = postcondition_flag := b
