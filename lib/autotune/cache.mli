(** Persistent on-disk tuning cache.

    Tuning results are content-addressed: the file name is a digest of
    (format magic, tuner version, architecture name, kernel name,
    search-space fingerprint), so {i any} change to what a sweep would
    explore — a new tuner release, a different candidate space, another
    machine model — lands on a different file and old entries simply
    stop being found.  Nothing is ever invalidated in place.

    The file format is a plain-text header (magic + the full key
    description + an MD5 checksum of the payload) followed by a
    [Marshal] payload.  Loading tolerates every corruption mode —
    truncation, garbage, a foreign key colliding on the digest, an
    unreadable file: each is a {i miss} plus a structured
    {!Augem_verify.Diag.t} ([E_cache_corrupt @ cache]), never an
    exception.

    Stores are atomic (temp file in the same directory + [Sys.rename]),
    so concurrent writers racing on one key leave a valid file — last
    writer wins, and both wrote the same bytes anyway because tuning is
    deterministic.

    The value type is the caller's ([Marshal] is untyped); the header's
    key-description check is what makes reading a foreign value back at
    the wrong type practically impossible.  Callers must only store
    closure-free values. *)

type stats = {
  mutable hits : int;
  mutable misses : int;  (** no file for the digest *)
  mutable corrupt : int;  (** file present but unloadable: also a miss *)
  mutable stores : int;
  mutable store_errors : int;  (** failed writes (also never raised) *)
}

(** Process-wide counters, updated thread-safely. *)
val stats : stats

(** Digest of the full cache key; the content address. *)
val digest :
  version:string -> arch:string -> kernel:string -> fingerprint:string -> string

(** The human-readable key description embedded in (and checked
    against) the file header. *)
val keydesc :
  version:string -> arch:string -> kernel:string -> fingerprint:string -> string

(** The cache file path for a digest under a cache directory. *)
val path : dir:string -> digest:string -> string

type 'v load_result =
  | Hit of 'v
  | Miss  (** no entry for this digest *)
  | Corrupt of Augem_verify.Diag.t  (** unloadable entry: treat as a miss *)

(** [load ~dir ~arch ~kernel ~keydesc ~digest] reads the entry for
    [digest], verifying magic, key description and payload checksum.
    [arch]/[kernel] only label the diagnostic on the corrupt path.
    Never raises. *)
val load :
  dir:string ->
  arch:string ->
  kernel:string ->
  keydesc:string ->
  digest:string ->
  'v load_result

(** [store ~dir ~arch ~kernel ~keydesc ~digest v] writes the entry
    atomically, creating [dir] (and parents) if needed.  Returns a
    diagnostic instead of raising when the write fails (read-only
    directory, disk full, ...): a cache that cannot persist degrades to
    a cache that never hits. *)
val store :
  dir:string ->
  arch:string ->
  kernel:string ->
  keydesc:string ->
  digest:string ->
  'v ->
  Augem_verify.Diag.t option

(** {2 Cache directory inspection}

    Support for the [augem cache] subcommand: enumerate, validate and
    clear the entries under a cache directory without duplicating the
    path or header logic. *)

(** Does this path look like a cache entry ([augem-tune-*.cache])? *)
val is_cache_file : string -> bool

type entry = {
  e_file : string;  (** full path *)
  e_bytes : int;  (** size on disk *)
  e_key : (string, string) result;
      (** the embedded key description, or why the file is unloadable *)
}

(** Verify a cache file's header and payload checksum {i without}
    unmarshalling the payload; returns the embedded key description.
    Never raises. *)
val validate : string -> (string, string) result

(** All cache entries under [dir], sorted by file name; missing or
    unreadable directories yield [[]].  Never raises. *)
val entries : dir:string -> entry list

(** Remove every cache entry under [dir] (other files are untouched);
    returns how many were removed.  Never raises. *)
val clear : dir:string -> int
