(** Persistent on-disk tuning cache.

    Tuning results are content-addressed: the file name is a digest of
    (format magic, tuner version, architecture name, kernel name,
    search-space fingerprint), so {i any} change to what a sweep would
    explore — a new tuner release, a different candidate space, another
    machine model — lands on a different file and old entries simply
    stop being found.  Nothing is ever invalidated in place.

    The file format is a plain-text header (magic + the full key
    description + an MD5 checksum of the payload) followed by a
    [Marshal] payload.  Loading tolerates every corruption mode —
    truncation, garbage, a foreign key colliding on the digest, an
    unreadable file: each is a {i miss} plus a structured
    {!Augem_verify.Diag.t} ([E_cache_corrupt @ cache]), never an
    exception.

    Stores are atomic {i and} crash-consistent: temp file in the same
    directory, [fsync] of the file {i before} [Sys.rename], [fsync] of
    the directory after — a kill at any instruction of the write
    sequence leaves either the old entry, no entry plus an orphaned
    [.tmp], or the complete new entry under the final name; never torn
    bytes under a servable path.  Concurrent writers racing on one key
    leave a valid file — last writer wins, and both wrote the same
    bytes anyway because tuning is deterministic.

    Every step of the load/store/recover protocol is an
    {!Augem_resilience.Faultpoint} (the [cache.*] points in
    {!fault_points}), so the chaos driver and the kill-at-every-step
    torture test can crash or corrupt it deterministically.

    The value type is the caller's ([Marshal] is untyped); the header's
    key-description check is what makes reading a foreign value back at
    the wrong type practically impossible.  Callers must only store
    closure-free values. *)

type stats = {
  mutable hits : int;
  mutable misses : int;  (** no file for the digest *)
  mutable corrupt : int;  (** file present but unloadable: also a miss *)
  mutable stores : int;
  mutable store_errors : int;  (** failed writes (also never raised) *)
}

(** Process-wide counters, updated thread-safely. *)
val stats : stats

(** Digest of the full cache key; the content address. *)
val digest :
  version:string -> arch:string -> kernel:string -> fingerprint:string -> string

(** The human-readable key description embedded in (and checked
    against) the file header. *)
val keydesc :
  version:string -> arch:string -> kernel:string -> fingerprint:string -> string

(** The cache file path for a digest under a cache directory. *)
val path : dir:string -> digest:string -> string

type 'v load_result =
  | Hit of 'v
  | Miss  (** no entry for this digest *)
  | Corrupt of Augem_verify.Diag.t  (** unloadable entry: treat as a miss *)

(** [load ~dir ~arch ~kernel ~keydesc ~digest] reads the entry for
    [digest], verifying magic, key description and payload checksum.
    [arch]/[kernel] only label the diagnostic on the corrupt path.
    Never raises. *)
val load :
  dir:string ->
  arch:string ->
  kernel:string ->
  keydesc:string ->
  digest:string ->
  'v load_result

(** [store ~dir ~arch ~kernel ~keydesc ~digest v] writes the entry
    atomically and durably (tmp → write → fsync file → rename → fsync
    dir), creating [dir] (and parents) if needed.  Returns a
    diagnostic instead of raising when the write fails (read-only
    directory, disk full, ...): a cache that cannot persist degrades to
    a cache that never hits.  Exception: an injected
    {!Augem_resilience.Faultpoint.Injected} crash propagates — it
    simulates a kill, and deliberately leaves the on-disk debris a real
    kill would (callers that must survive it guard the call; the chaos
    registry does). *)
val store :
  dir:string ->
  arch:string ->
  kernel:string ->
  keydesc:string ->
  digest:string ->
  'v ->
  Augem_verify.Diag.t option

(** {2 Cache directory inspection}

    Support for the [augem cache] subcommand: enumerate, validate and
    clear the entries under a cache directory without duplicating the
    path or header logic. *)

(** Does this path look like a cache entry ([augem-tune-*.cache])? *)
val is_cache_file : string -> bool

type entry = {
  e_file : string;  (** full path *)
  e_bytes : int;  (** size on disk *)
  e_key : (string, string) result;
      (** the embedded key description, or why the file is unloadable *)
}

(** Verify a cache file's header and payload checksum {i without}
    unmarshalling the payload; returns the embedded key description.
    Never raises. *)
val validate : string -> (string, string) result

(** All cache entries under [dir], sorted by file name; missing or
    unreadable directories yield [[]].  Never raises. *)
val entries : dir:string -> entry list

(** Remove every cache entry under [dir] (other files are untouched);
    returns how many were removed.  Never raises. *)
val clear : dir:string -> int

(** {2 Crash recovery}

    A daemon that may have been killed mid-store runs {!recover} before
    serving: write debris and unverifiable entries are moved into a
    [quarantine/] subdirectory (falling back to removal), so the
    servable namespace only ever contains entries {!load} would accept.
    A quarantined entry is preserved for post-mortem, never loadable. *)

(** Fault-point names of the cache layer (["cache.read"],
    ["cache.store.*"], ["cache.recover.*"]), pre-registered. *)
val fault_points : string list

(** Name of the quarantine subdirectory under a cache dir. *)
val quarantine_dirname : string

(** Does this path look like store write-debris ([augem-tune-*.tmp])? *)
val is_tmp_file : string -> bool

type recovery = {
  rc_scanned : int;  (** cache entries examined *)
  rc_valid : int;  (** entries whose header + checksum verify *)
  rc_quarantined : int;  (** corrupt entries moved aside *)
  rc_tmp_quarantined : int;  (** orphaned [.tmp] files moved aside *)
  rc_diags : Augem_verify.Diag.t list;
      (** one structured record per action or per failure-to-act *)
}

(** Scan [dir] and quarantine everything {!load} would reject.
    [arch]/[kernel] label the diagnostics (default ["-"]: a startup
    scan is not about any one kernel).  A missing directory is an empty
    recovery.  Never raises — including under injected faults. *)
val recover :
  ?arch:string -> ?kernel:string -> dir:string -> unit -> recovery
