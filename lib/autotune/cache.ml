(* Persistent on-disk tuning cache: content-addressed, checksummed,
   atomic, and crash-proof on every load/store path.  See cache.mli. *)

module Diag = Augem_verify.Diag

let magic = "AUGEM-TUNE-CACHE 1"

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable corrupt : int;
  mutable stores : int;
  mutable store_errors : int;
}

let stats = { hits = 0; misses = 0; corrupt = 0; stores = 0; store_errors = 0 }
let stats_mutex = Mutex.create ()
let bump f = Mutex.protect stats_mutex (fun () -> f stats)

let keydesc ~version ~arch ~kernel ~fingerprint =
  Printf.sprintf "tuner=%s arch=%s kernel=%s space=%s" version arch kernel
    fingerprint

let digest ~version ~arch ~kernel ~fingerprint =
  Digest.to_hex
    (Digest.string (magic ^ "\x00" ^ keydesc ~version ~arch ~kernel ~fingerprint))

let path ~dir ~digest = Filename.concat dir ("augem-tune-" ^ digest ^ ".cache")

let mk_diag ~arch ~kernel detail =
  Diag.make ~code:Diag.E_cache_corrupt ~stage:Diag.S_cache ~kernel ~arch
    ~config:"-" ~detail ()

type 'v load_result =
  | Hit of 'v
  | Miss
  | Corrupt of Diag.t

(* The three header lines preceding the marshalled payload. *)
let header ~keydesc ~payload =
  Printf.sprintf "%s\n%s\n%s\n" magic keydesc (Digest.to_hex (Digest.string payload))

(* Read and verify a cache file's plain-text header — magic, key
   description, payload checksum — WITHOUT unmarshalling the payload
   (safe on arbitrary bytes).  Returns the embedded key description and
   the raw payload. *)
let parse_file (file : string) : (string * string, string) result =
  match In_channel.with_open_bin file In_channel.input_all with
  | exception e -> Error (Printexc.to_string e)
  | contents -> (
      (* split the three header lines off without touching the payload
         bytes (which are binary and may contain '\n') *)
      let line_end from =
        match String.index_from_opt contents from '\n' with
        | Some i -> Some (String.sub contents from (i - from), i + 1)
        | None -> None
      in
      match line_end 0 with
      | None -> Error "missing header"
      | Some (l1, p1) -> (
          match line_end p1 with
          | None -> Error "missing key line"
          | Some (l2, p2) -> (
              match line_end p2 with
              | None -> Error "missing checksum line"
              | Some (l3, p3) ->
                  let payload =
                    String.sub contents p3 (String.length contents - p3)
                  in
                  if not (String.equal l1 magic) then
                    Error (Printf.sprintf "bad magic %S" l1)
                  else if
                    not
                      (String.equal l3 (Digest.to_hex (Digest.string payload)))
                  then Error "payload checksum mismatch"
                  else Ok (l2, payload))))

let load ~dir ~arch ~kernel ~keydesc:kd ~digest =
  let file = path ~dir ~digest in
  if not (Sys.file_exists file) then begin
    bump (fun s -> s.misses <- s.misses + 1);
    Miss
  end
  else
    let corrupt detail =
      bump (fun s -> s.corrupt <- s.corrupt + 1);
      Corrupt (mk_diag ~arch ~kernel (Printf.sprintf "%s: %s" file detail))
    in
    match parse_file file with
    | Error detail -> corrupt detail
    | Ok (kd', payload) ->
        if not (String.equal kd' kd) then
          (* digest collision or hand-edited file: the payload belongs
             to some other key (and maybe some other type) — do not
             unmarshal it *)
          corrupt (Printf.sprintf "key mismatch: %S" kd')
        else begin
          match Marshal.from_string payload 0 with
          | v ->
              bump (fun s -> s.hits <- s.hits + 1);
              Hit v
          | exception e -> corrupt (Printexc.to_string e)
        end

let rec ensure_dir dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if
      (not (String.equal parent dir))
      && not (String.equal parent Filename.current_dir_name)
    then ensure_dir parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir -> () (* lost a racing mkdir *)
  end

let store ~dir ~arch ~kernel ~keydesc:kd ~digest v =
  match
    ensure_dir dir;
    let payload = Marshal.to_string v [] in
    let tmp = Filename.temp_file ~temp_dir:dir "augem-tune-" ".tmp" in
    Fun.protect
      ~finally:(fun () -> if Sys.file_exists tmp then Sys.remove tmp)
      (fun () ->
        Out_channel.with_open_bin tmp (fun oc ->
            Out_channel.output_string oc (header ~keydesc:kd ~payload);
            Out_channel.output_string oc payload);
        Sys.rename tmp (path ~dir ~digest))
  with
  | () ->
      bump (fun s -> s.stores <- s.stores + 1);
      None
  | exception e ->
      bump (fun s -> s.store_errors <- s.store_errors + 1);
      Some (mk_diag ~arch ~kernel ("store failed: " ^ Printexc.to_string e))

(* --- cache directory inspection (the `augem cache` subcommand) --------- *)

let prefix = "augem-tune-"
let suffix = ".cache"

let is_cache_file (name : string) : bool =
  let base = Filename.basename name in
  String.length base > String.length prefix + String.length suffix
  && String.starts_with ~prefix base
  && Filename.check_suffix base suffix

type entry = {
  e_file : string;  (** full path *)
  e_bytes : int;  (** size on disk *)
  e_key : (string, string) result;
      (** the embedded key description, or why the file is unloadable *)
}

(* Header-verify the file without unmarshalling: a [validate]d entry is
   exactly one [load] would accept for its embedded key. *)
let validate (file : string) : (string, string) result =
  Result.map fst (parse_file file)

let entries ~(dir : string) : entry list =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter is_cache_file
      |> List.sort String.compare
      |> List.map (fun name ->
             let file = Filename.concat dir name in
             let bytes =
               try
                 In_channel.with_open_bin file (fun ic ->
                     Int64.to_int (In_channel.length ic))
               with Sys_error _ -> 0
             in
             { e_file = file; e_bytes = bytes; e_key = validate file })

(* Remove every cache entry under [dir]; other files are left alone.
   Returns the number removed; unremovable files are skipped. *)
let clear ~(dir : string) : int =
  List.fold_left
    (fun n e ->
      match Sys.remove e.e_file with
      | () -> n + 1
      | exception Sys_error _ -> n)
    0 (entries ~dir)
