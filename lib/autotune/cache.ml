(* Persistent on-disk tuning cache: content-addressed, checksummed,
   atomic, and crash-proof on every load/store path.  See cache.mli. *)

module Diag = Augem_verify.Diag
module Faultpoint = Augem_resilience.Faultpoint

let magic = "AUGEM-TUNE-CACHE 1"

(* The fault-point catalog of the load/store/recover paths; registered
   up front so the chaos driver can enumerate them before first use. *)
let fp_read = "cache.read"
let fp_read_bytes = "cache.read.bytes"
let fp_store_tmp = "cache.store.tmp_created"
let fp_store_payload = "cache.store.payload"
let fp_store_written = "cache.store.written"
let fp_store_synced = "cache.store.synced"
let fp_store_renamed = "cache.store.renamed"
let fp_recover_scan = "cache.recover.scan"
let fp_recover_entry = "cache.recover.entry"

let fault_points =
  [
    fp_read; fp_read_bytes; fp_store_tmp; fp_store_payload; fp_store_written;
    fp_store_synced; fp_store_renamed; fp_recover_scan; fp_recover_entry;
  ]

let () = List.iter Faultpoint.register fault_points

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable corrupt : int;
  mutable stores : int;
  mutable store_errors : int;
}

let stats = { hits = 0; misses = 0; corrupt = 0; stores = 0; store_errors = 0 }
let stats_mutex = Mutex.create ()
let bump f = Mutex.protect stats_mutex (fun () -> f stats)

let keydesc ~version ~arch ~kernel ~fingerprint =
  Printf.sprintf "tuner=%s arch=%s kernel=%s space=%s" version arch kernel
    fingerprint

let digest ~version ~arch ~kernel ~fingerprint =
  Digest.to_hex
    (Digest.string (magic ^ "\x00" ^ keydesc ~version ~arch ~kernel ~fingerprint))

let path ~dir ~digest = Filename.concat dir ("augem-tune-" ^ digest ^ ".cache")

let mk_diag ~arch ~kernel detail =
  Diag.make ~code:Diag.E_cache_corrupt ~stage:Diag.S_cache ~kernel ~arch
    ~config:"-" ~detail ()

type 'v load_result =
  | Hit of 'v
  | Miss
  | Corrupt of Diag.t

(* The three header lines preceding the marshalled payload. *)
let header ~keydesc ~payload =
  Printf.sprintf "%s\n%s\n%s\n" magic keydesc (Digest.to_hex (Digest.string payload))

(* Read and verify a cache file's plain-text header — magic, key
   description, payload checksum — WITHOUT unmarshalling the payload
   (safe on arbitrary bytes).  Returns the embedded key description and
   the raw payload. *)
let parse_file (file : string) : (string * string, string) result =
  match
    Faultpoint.wrap fp_read (fun () ->
        Faultpoint.corrupting fp_read_bytes
          (In_channel.with_open_bin file In_channel.input_all))
  with
  | exception e -> Error (Printexc.to_string e)
  | contents -> (
      (* split the three header lines off without touching the payload
         bytes (which are binary and may contain '\n') *)
      let line_end from =
        match String.index_from_opt contents from '\n' with
        | Some i -> Some (String.sub contents from (i - from), i + 1)
        | None -> None
      in
      match line_end 0 with
      | None -> Error "missing header"
      | Some (l1, p1) -> (
          match line_end p1 with
          | None -> Error "missing key line"
          | Some (l2, p2) -> (
              match line_end p2 with
              | None -> Error "missing checksum line"
              | Some (l3, p3) ->
                  let payload =
                    String.sub contents p3 (String.length contents - p3)
                  in
                  if not (String.equal l1 magic) then
                    Error (Printf.sprintf "bad magic %S" l1)
                  else if
                    not
                      (String.equal l3 (Digest.to_hex (Digest.string payload)))
                  then Error "payload checksum mismatch"
                  else Ok (l2, payload))))

let load ~dir ~arch ~kernel ~keydesc:kd ~digest =
  let file = path ~dir ~digest in
  if not (Sys.file_exists file) then begin
    bump (fun s -> s.misses <- s.misses + 1);
    Miss
  end
  else
    let corrupt detail =
      bump (fun s -> s.corrupt <- s.corrupt + 1);
      Corrupt (mk_diag ~arch ~kernel (Printf.sprintf "%s: %s" file detail))
    in
    match parse_file file with
    | Error detail -> corrupt detail
    | Ok (kd', payload) ->
        if not (String.equal kd' kd) then
          (* digest collision or hand-edited file: the payload belongs
             to some other key (and maybe some other type) — do not
             unmarshal it *)
          corrupt (Printf.sprintf "key mismatch: %S" kd')
        else begin
          match Marshal.from_string payload 0 with
          | v ->
              bump (fun s -> s.hits <- s.hits + 1);
              Hit v
          | exception e -> corrupt (Printexc.to_string e)
        end

let rec ensure_dir dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if
      (not (String.equal parent dir))
      && not (String.equal parent Filename.current_dir_name)
    then ensure_dir parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir -> () (* lost a racing mkdir *)
  end

let rec write_all fd s off len =
  if len > 0 then begin
    let n = Unix.write_substring fd s off len in
    write_all fd s (off + n) (len - n)
  end

(* fsync the directory so the rename itself is durable; on filesystems
   that refuse to open a directory this is a no-op (rename atomicity
   still protects readers, we only lose durability of the publish). *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

(* The write protocol, fault-pointed at every step so the torture test
   can kill it between any two instructions:

     tmp created -> bytes written -> tmp fsynced -> renamed -> dir fsynced

   A crash before the rename leaves only a [.tmp] (quarantined by
   [recover]); a crash after leaves a fully-checksummed entry.  The
   entry bytes hit the disk before the rename publishes the name, so a
   torn entry can never appear under the final path. *)
let store ~dir ~arch ~kernel ~keydesc:kd ~digest v =
  match
    ensure_dir dir;
    let payload = Marshal.to_string v [] in
    let tmp = Filename.temp_file ~temp_dir:dir "augem-tune-" ".tmp" in
    (try
       Faultpoint.hit fp_store_tmp;
       (* a [Corrupt] trigger here models a torn write: the bytes that
          reach the tmp file are a mangled prefix *)
       let full =
         Faultpoint.corrupting fp_store_payload
           (header ~keydesc:kd ~payload ^ payload)
       in
       let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o644 in
       Fun.protect
         ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
         (fun () ->
           write_all fd full 0 (String.length full);
           Faultpoint.hit fp_store_written;
           Unix.fsync fd);
       Faultpoint.hit fp_store_synced;
       Sys.rename tmp (path ~dir ~digest);
       Faultpoint.hit fp_store_renamed;
       fsync_dir dir
     with
    | Faultpoint.Injected _ as e ->
        (* a simulated kill: leave the debris exactly as a real crash
           would (an orphaned tmp, or a published-but-unsynced entry)
           for [recover] to deal with *)
        raise e
    | e ->
        (if Sys.file_exists tmp then
           try Sys.remove tmp with Sys_error _ -> ());
        raise e)
  with
  | () ->
      bump (fun s -> s.stores <- s.stores + 1);
      None
  | exception (Faultpoint.Injected _ as e) ->
      (* the simulated kill must propagate, not soften into a diag *)
      bump (fun s -> s.store_errors <- s.store_errors + 1);
      raise e
  | exception e ->
      bump (fun s -> s.store_errors <- s.store_errors + 1);
      Some (mk_diag ~arch ~kernel ("store failed: " ^ Printexc.to_string e))

(* --- cache directory inspection (the `augem cache` subcommand) --------- *)

let prefix = "augem-tune-"
let suffix = ".cache"

let is_cache_file (name : string) : bool =
  let base = Filename.basename name in
  String.length base > String.length prefix + String.length suffix
  && String.starts_with ~prefix base
  && Filename.check_suffix base suffix

type entry = {
  e_file : string;  (** full path *)
  e_bytes : int;  (** size on disk *)
  e_key : (string, string) result;
      (** the embedded key description, or why the file is unloadable *)
}

(* Header-verify the file without unmarshalling: a [validate]d entry is
   exactly one [load] would accept for its embedded key. *)
let validate (file : string) : (string, string) result =
  Result.map fst (parse_file file)

let entries ~(dir : string) : entry list =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter is_cache_file
      |> List.sort String.compare
      |> List.map (fun name ->
             let file = Filename.concat dir name in
             let bytes =
               try
                 In_channel.with_open_bin file (fun ic ->
                     Int64.to_int (In_channel.length ic))
               with Sys_error _ -> 0
             in
             { e_file = file; e_bytes = bytes; e_key = validate file })

(* Remove every cache entry under [dir]; other files are left alone.
   Returns the number removed; unremovable files are skipped. *)
let clear ~(dir : string) : int =
  List.fold_left
    (fun n e ->
      match Sys.remove e.e_file with
      | () -> n + 1
      | exception Sys_error _ -> n)
    0 (entries ~dir)

(* --- crash recovery ---------------------------------------------------- *)

let quarantine_dirname = "quarantine"

let is_tmp_file (name : string) : bool =
  let base = Filename.basename name in
  String.starts_with ~prefix base && Filename.check_suffix base ".tmp"

type recovery = {
  rc_scanned : int;
  rc_valid : int;
  rc_quarantined : int;
  rc_tmp_quarantined : int;
  rc_diags : Diag.t list;
}

(* Move a suspect file out of the servable namespace.  Quarantining
   must itself be crash-safe: a rename failure degrades to removal, a
   removal failure to a diagnostic — never an exception. *)
let quarantine_file ~dir ~(diags : Diag.t list ref) ~arch ~kernel file : bool =
  let qdir = Filename.concat dir quarantine_dirname in
  match
    ensure_dir qdir;
    Sys.rename file (Filename.concat qdir (Filename.basename file))
  with
  | () -> true
  | exception _ -> (
      match Sys.remove file with
      | () -> true
      | exception e ->
          diags :=
            mk_diag ~arch ~kernel
              (Printf.sprintf "quarantine failed for %s: %s" file
                 (Printexc.to_string e))
            :: !diags;
          false)

(* Startup scan: quarantine orphaned write debris ([.tmp] files from a
   crashed store) and entries whose header or checksum no longer
   verifies (torn or bit-rotted), so nothing corrupt is ever even
   {i loadable} again.  Structured diagnostics, never an exception —
   an injected fault inside the scan degrades to a diag too. *)
let recover ?(arch = "-") ?(kernel = "-") ~(dir : string) () : recovery =
  let diags = ref [] in
  let quarantined = ref 0 in
  let tmp_quarantined = ref 0 in
  let scanned = ref 0 in
  let valid = ref 0 in
  (match
     Faultpoint.wrap fp_recover_scan (fun () -> Sys.readdir dir)
   with
  | exception Sys_error _ -> () (* no cache directory yet: nothing to do *)
  | exception e ->
      diags :=
        mk_diag ~arch ~kernel ("recover scan failed: " ^ Printexc.to_string e)
        :: !diags
  | names ->
      Array.iter
        (fun name ->
          let file = Filename.concat dir name in
          match
            Faultpoint.hit fp_recover_entry;
            if is_tmp_file name then begin
              if quarantine_file ~dir ~diags ~arch ~kernel file then begin
                incr tmp_quarantined;
                diags :=
                  mk_diag ~arch ~kernel
                    (Printf.sprintf "quarantined orphaned tmp %s" file)
                  :: !diags
              end
            end
            else if is_cache_file name then begin
              incr scanned;
              match validate file with
              | Ok _ -> incr valid
              | Error detail ->
                  if quarantine_file ~dir ~diags ~arch ~kernel file then begin
                    incr quarantined;
                    diags :=
                      mk_diag ~arch ~kernel
                        (Printf.sprintf "quarantined %s: %s" file detail)
                      :: !diags
                  end
            end
          with
          | () -> ()
          | exception e ->
              diags :=
                mk_diag ~arch ~kernel
                  (Printf.sprintf "recover skipped %s: %s" file
                     (Printexc.to_string e))
                :: !diags)
        names);
  {
    rc_scanned = !scanned;
    rc_valid = !valid;
    rc_quarantined = !quarantined;
    rc_tmp_quarantined = !tmp_quarantined;
    rc_diags = List.rev !diags;
  }
