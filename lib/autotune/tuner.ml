(* Empirical tuning of the Optimized C Kernel Generator's parameters
   (paper section 2.1: "our Optimized C Kernel Generator automatically
   experiments with different unrolling and unroll&jam configurations
   and selects the best performing configurations based on the
   performance of their optimized code").

   The performance feedback is the cycle-level model of the generated
   assembly on the target architecture (the substitution for the
   paper's wall-clock measurements, documented in DESIGN.md).

   Robustness contract: the sweep must survive arbitrary broken
   candidates — a tuning run over a hostile search space discards, it
   never crashes and never hangs.  Every discarded candidate is
   recorded as a structured Diag.t (error code, stage, kernel, arch,
   config) instead of a bare counter; candidates whose programs blow a
   step budget are discarded before the (program-length-proportional)
   scoring model runs; and a fully-discarded space degrades to a safe
   baseline configuration instead of raising. *)

open Augem_ir
open Augem_transform
module Arch = Augem_machine.Arch
module Insn = Augem_machine.Insn
module Diag = Augem_verify.Diag

type candidate = {
  cand_config : Pipeline.config;
  cand_opts : Augem_codegen.Emit.options;
}

type result = {
  best : candidate;
  best_program : Insn.program;
  best_score : float; (* predicted MFLOPS on the reference workload *)
  visited : int;
  discarded : int; (* register-pressure or generation failures *)
  fell_back : bool; (* the safe baseline was used (space fully discarded) *)
  failures : Diag.t list; (* one record per discarded candidate *)
  failure_histogram : (string * int) list; (* failure counts by code *)
}

let log_src = Logs.Src.create "augem.tuner" ~doc:"AUGEM auto-tuner"

module Log = (val Logs.src_log log_src)

(* --- search spaces ------------------------------------------------------ *)

(* prefetching variants first: on a score tie (common for
   compute-bound GEMM, where the model's memory leg is negligible) the
   first-seen maximum wins, and hand-written kernels always prefetch *)
let prefetch_opts =
  [ Some { Prefetch.pf_distance = 8; pf_stores = true };
    Some { Prefetch.pf_distance = 4; pf_stores = true };
    None ]

let gemm_space ?(packed = false) () : candidate list =
  let strategies =
    if packed then [ Augem_codegen.Plan.Prefer_auto; Augem_codegen.Plan.Prefer_shuf ]
    else [ Augem_codegen.Plan.Prefer_auto ]
  in
  List.concat_map
    (fun j ->
      List.concat_map
        (fun i ->
          List.concat_map
            (fun pf ->
              List.map
                (fun prefer ->
                  {
                    cand_config =
                      { Pipeline.default with jam = [ ("j", j); ("i", i) ];
                        prefetch = pf };
                    cand_opts =
                      { Augem_codegen.Emit.default_options with prefer };
                  })
                strategies)
            prefetch_opts)
        [ 4; 8; 12; 16 ])
    [ 1; 2; 4; 6 ]

let vector_space loop_var ~expand () : candidate list =
  List.concat_map
    (fun u ->
      List.map
        (fun pf ->
          {
            cand_config =
              {
                Pipeline.default with
                inner_unroll = Some (loop_var, u);
                expand_reduction = (if expand then Some u else None);
                prefetch = pf;
              };
            cand_opts = Augem_codegen.Emit.default_options;
          })
        prefetch_opts)
    [ 2; 4; 8; 16 ]

let space_for (k : Kernels.name) : candidate list =
  match k with
  | Kernels.Gemm -> gemm_space ()
  | Kernels.Gemv -> vector_space "j" ~expand:false ()
  | Kernels.Axpy -> vector_space "i" ~expand:false ()
  | Kernels.Dot -> vector_space "i" ~expand:true ()
  | Kernels.Ger -> vector_space "i" ~expand:false ()
  | Kernels.Scal -> vector_space "i" ~expand:false ()
  | Kernels.Copy -> vector_space "i" ~expand:false ()

(* The graceful-degradation configuration: no unroll&jam, no unrolling,
   no prefetching — just the always-safe scalar passes.  Every kernel
   generates under it on every modelled architecture, so a sweep whose
   whole space is discarded still returns working code. *)
let safe_baseline : candidate =
  {
    cand_config = { Pipeline.default with prefetch = None };
    cand_opts = Augem_codegen.Emit.default_options;
  }

(* Reference workload per kernel (a representative point of the
   evaluation sweeps). *)
let reference_workload (k : Kernels.name) : Augem_sim.Perf.workload =
  match k with
  | Kernels.Gemm -> Augem_sim.Perf.W_gemm { m = 4096; n = 4096; k = 256 }
  | Kernels.Gemv -> Augem_sim.Perf.W_gemv { m = 4096; n = 4096 }
  | Kernels.Axpy -> Augem_sim.Perf.W_axpy { n = 150_000 }
  | Kernels.Dot -> Augem_sim.Perf.W_dot { n = 150_000 }
  | Kernels.Ger -> Augem_sim.Perf.W_gemv { m = 4096; n = 4096 }
  | Kernels.Scal -> Augem_sim.Perf.W_axpy { n = 150_000 }
  | Kernels.Copy -> Augem_sim.Perf.W_axpy { n = 150_000 }

(* --- the loop ----------------------------------------------------------- *)

exception No_viable_configuration of string

(* Step budget: candidates whose generated programs exceed this many
   instructions are discarded before scheduling analysis and the cycle
   model run on them.  Scoring cost is proportional to program length,
   so without the budget one pathological configuration (a huge unroll
   product) can stall the whole sweep. *)
let default_max_insns = 20_000

let diag_of_generation_exn (exn : exn) : Diag.code * string =
  match exn with
  | Augem_codegen.Regfile.Out_of_registers m -> (Diag.E_out_of_registers, m)
  | Augem_codegen.Gpralloc.Gpr_error m -> (Diag.E_gpr_pressure, m)
  | Augem_codegen.Ctx.Codegen_error m -> (Diag.E_codegen, m)
  | Unroll.Unroll_error m -> (Diag.E_unroll, m)
  | Typecheck.Type_error m -> (Diag.E_type_error, m)
  | exn -> (Diag.code_of_exn exn, Printexc.to_string exn)

(* Generate one candidate, classifying every failure — including
   exceptions nobody anticipated — instead of letting them abort the
   sweep. *)
let generate_candidate_diag (arch : Arch.t) ?(max_insns = default_max_insns)
    (kname : Kernels.name) (kernel : Ast.kernel) (c : candidate) :
    (Insn.program, Diag.t) Stdlib.result =
  let mk code stage detail =
    Diag.make ~code ~stage
      ~kernel:(Kernels.name_to_string kname)
      ~arch:arch.Arch.name
      ~config:(Pipeline.config_to_string c.cand_config)
      ~detail
  in
  match
    let optimized = Pipeline.apply kernel c.cand_config in
    let prog =
      Augem_codegen.Emit.generate ~arch ~opts:c.cand_opts optimized
    in
    let len = List.length prog.Insn.prog_insns in
    if len > max_insns then
      Error
        (mk Diag.E_budget_exceeded Diag.S_codegen
           (Printf.sprintf "%d instructions > budget %d" len max_insns))
    else Ok (Augem_codegen.Schedule.run arch prog)
  with
  | r -> r
  | exception exn ->
      let code, detail = diag_of_generation_exn exn in
      let stage =
        match exn with
        | Unroll.Unroll_error _ | Typecheck.Type_error _ -> Diag.S_pipeline
        | _ -> Diag.S_codegen
      in
      Error (mk code stage detail)

(* Back-compatible option view. *)
let generate_candidate (arch : Arch.t) (kernel : Ast.kernel) (c : candidate) :
    Insn.program option =
  match generate_candidate_diag arch Kernels.Gemm kernel c with
  | Ok prog -> Some prog
  | Error _ -> None

let score_diag (arch : Arch.t) (kname : Kernels.name) (c : candidate)
    (prog : Insn.program) (w : Augem_sim.Perf.workload) :
    (float, Diag.t) Stdlib.result =
  let mk code detail =
    Diag.make ~code ~stage:Diag.S_score
      ~kernel:(Kernels.name_to_string kname)
      ~arch:arch.Arch.name
      ~config:(Pipeline.config_to_string c.cand_config)
      ~detail
  in
  match Augem_sim.Perf.predict arch prog w with
  | e -> Ok e.Augem_sim.Perf.e_mflops
  | exception Augem_sim.Perf.No_hot_loop m -> Error (mk Diag.E_no_hot_loop m)
  | exception exn ->
      Error (mk (Diag.code_of_exn exn) (Printexc.to_string exn))

let score (arch : Arch.t) (prog : Insn.program) (w : Augem_sim.Perf.workload) :
    float option =
  match Augem_sim.Perf.predict arch prog w with
  | e -> Some e.Augem_sim.Perf.e_mflops
  | exception Augem_sim.Perf.No_hot_loop _ -> None

let tune ?(workload : Augem_sim.Perf.workload option)
    ?(space : candidate list option) ?(max_insns = default_max_insns)
    (arch : Arch.t) (name : Kernels.name) : result =
  let kernel = Kernels.kernel_of_name name in
  let workload =
    match workload with Some w -> w | None -> reference_workload name
  in
  let space = match space with Some s -> s | None -> space_for name in
  let visited = ref 0 in
  let failures = ref [] in
  let best = ref None in
  let record d =
    failures := d :: !failures;
    Log.debug (fun m -> m "discard: %s" (Diag.to_string d))
  in
  List.iter
    (fun cand ->
      incr visited;
      match generate_candidate_diag arch ~max_insns name kernel cand with
      | Error d -> record d
      | Ok prog -> (
          match score_diag arch name cand prog workload with
          | Error d -> record d
          | Ok s ->
              Log.debug (fun m ->
                  m "%s/%s %s -> %.0f MFLOPS" arch.Arch.name
                    (Kernels.name_to_string name)
                    (Pipeline.config_to_string cand.cand_config)
                    s);
              (match !best with
              | Some (_, _, s') when s' >= s -> ()
              | _ -> best := Some (cand, prog, s))))
    space;
  let failures_list = List.rev !failures in
  let finish ~fell_back (cand, prog, s) =
    {
      best = cand;
      best_program = prog;
      best_score = s;
      visited = !visited;
      discarded = List.length failures_list;
      fell_back;
      failures = failures_list;
      failure_histogram = Diag.histogram failures_list;
    }
  in
  match !best with
  | Some b -> finish ~fell_back:false b
  | None -> (
      (* Graceful degradation: the whole space was discarded.  Fall
         back to the safe baseline rather than raising — a library
         build wants a slow kernel over no kernel. *)
      Log.warn (fun m ->
          m "%s/%s: all %d candidates discarded; falling back to baseline"
            arch.Arch.name
            (Kernels.name_to_string name)
            !visited);
      (* the baseline is generated under the default step budget, not
         the caller's: a tight [max_insns] is a candidate filter, and
         must not take the known-small fallback down with it *)
      match
        generate_candidate_diag arch ~max_insns:default_max_insns name kernel
          safe_baseline
      with
      | Ok prog ->
          let s =
            match score_diag arch name safe_baseline prog workload with
            | Ok s -> s
            | Error _ -> 0.0
          in
          finish ~fell_back:true (safe_baseline, prog, s)
      | Error d ->
          (* even the baseline will not generate: a genuinely broken
             kernel/arch pair, the one case that still raises *)
          raise
            (No_viable_configuration
               (Printf.sprintf "%s on %s (baseline also failed: %s)"
                  (Kernels.name_to_string name)
                  arch.Arch.name (Diag.to_string d))))

(* Memoized tuning: the sweep benchmarks call this per (arch, kernel). *)
let cache : (string * string, result) Hashtbl.t = Hashtbl.create 8

let tuned (arch : Arch.t) (name : Kernels.name) : result =
  let key = (arch.Arch.name, Kernels.name_to_string name) in
  match Hashtbl.find_opt cache key with
  | Some r -> r
  | None ->
      let r = tune arch name in
      Hashtbl.replace cache key r;
      r
