(* Empirical tuning of the Optimized C Kernel Generator's parameters
   (paper section 2.1: "our Optimized C Kernel Generator automatically
   experiments with different unrolling and unroll&jam configurations
   and selects the best performing configurations based on the
   performance of their optimized code").

   The performance feedback is the cycle-level model of the generated
   assembly on the target architecture (the substitution for the
   paper's wall-clock measurements, documented in DESIGN.md).

   Robustness contract: the sweep must survive arbitrary broken
   candidates — a tuning run over a hostile search space discards, it
   never crashes and never hangs.  Every discarded candidate is
   recorded as a structured Diag.t (error code, stage, kernel, arch,
   config) instead of a bare counter; candidates whose programs blow a
   step budget are discarded before the (program-length-proportional)
   scoring model runs; and a fully-discarded space degrades to a safe
   baseline configuration instead of raising. *)

open Augem_ir
open Augem_transform
module Arch = Augem_machine.Arch
module Insn = Augem_machine.Insn
module Etype = Augem_machine.Etype
module Diag = Augem_verify.Diag
module Pool = Augem_parallel.Pool

type candidate = {
  cand_config : Pipeline.config;
  cand_opts : Augem_driver.Emit.options;
}

(* The IR precision a scalar element type selects; [None] keeps the
   built-in (f64) kernel text, so f64 sweeps are bit-identical to the
   pre-precision tuner. *)
let fp_of_et : Etype.t -> Ast.dtype option = function
  | Etype.F32 -> Some Ast.Float
  | Etype.F64 -> None

(* The element type of a kernel's own parameter list: diagnostics and
   the performance model follow the kernel, not a separate flag. *)
let et_of_kernel (kernel : Ast.kernel) : Etype.t =
  match
    Ast.fp_type_of_params kernel.Ast.k_params ~p_type:(fun p -> p.Ast.p_type)
  with
  | Ast.Float -> Etype.F32
  | _ -> Etype.F64

let fp_of_kernel (kernel : Ast.kernel) : Ast.dtype option =
  fp_of_et (et_of_kernel kernel)

type result = {
  best : candidate;
  best_program : Insn.program;
  best_score : float; (* predicted MFLOPS on the reference workload *)
  visited : int;
  discarded : int; (* register-pressure or generation failures *)
  fell_back : bool; (* the safe baseline was used (space fully discarded) *)
  failures : Diag.t list; (* one record per discarded candidate *)
  failure_histogram : (string * int) list; (* failure counts by code *)
}

let log_src = Logs.Src.create "augem.tuner" ~doc:"AUGEM auto-tuner"

module Log = (val Logs.src_log log_src)

(* --- search spaces ------------------------------------------------------ *)

(* prefetching variants first: on a score tie (common for
   compute-bound GEMM, where the model's memory leg is negligible) the
   first-seen maximum wins, and hand-written kernels always prefetch *)
let prefetch_opts =
  [ Some { Prefetch.pf_distance = 8; pf_stores = true };
    Some { Prefetch.pf_distance = 4; pf_stores = true };
    None ]

let gemm_space ?(packed = false) () : candidate list =
  let strategies =
    if packed then [ Augem_codegen.Plan.Prefer_auto; Augem_codegen.Plan.Prefer_shuf ]
    else [ Augem_codegen.Plan.Prefer_auto ]
  in
  List.concat_map
    (fun j ->
      List.concat_map
        (fun i ->
          List.concat_map
            (fun pf ->
              List.map
                (fun prefer ->
                  {
                    cand_config =
                      { Pipeline.default with jam = [ ("j", j); ("i", i) ];
                        prefetch = pf };
                    cand_opts =
                      { Augem_driver.Emit.default_options with prefer };
                  })
                strategies)
            prefetch_opts)
        [ 4; 8; 12; 16 ])
    [ 1; 2; 4; 6 ]

let vector_space loop_var ~expand () : candidate list =
  List.concat_map
    (fun u ->
      List.map
        (fun pf ->
          {
            cand_config =
              {
                Pipeline.default with
                inner_unroll = Some (loop_var, u);
                expand_reduction = (if expand then Some u else None);
                prefetch = pf;
              };
            cand_opts = Augem_driver.Emit.default_options;
          })
        prefetch_opts)
    [ 2; 4; 8; 16 ]

let space_for (k : Kernels.name) : candidate list =
  match k with
  | Kernels.Gemm -> gemm_space ()
  | Kernels.Gemv -> vector_space "j" ~expand:false ()
  | Kernels.Axpy -> vector_space "i" ~expand:false ()
  | Kernels.Dot -> vector_space "i" ~expand:true ()
  | Kernels.Ger -> vector_space "i" ~expand:false ()
  | Kernels.Scal -> vector_space "i" ~expand:false ()
  | Kernels.Copy -> vector_space "i" ~expand:false ()
  (* packing kernels are straight copies: unroll the unit-stride inner
     copy loop (i for pack-A, l for pack-B), no reduction to expand *)
  | Kernels.Pack_a -> vector_space "i" ~expand:false ()
  | Kernels.Pack_b -> vector_space "l" ~expand:false ()

(* The graceful-degradation configuration: no unroll&jam, no unrolling,
   no prefetching — just the always-safe scalar passes.  Every kernel
   generates under it on every modelled architecture, so a sweep whose
   whole space is discarded still returns working code. *)
let safe_baseline : candidate =
  {
    cand_config = { Pipeline.default with prefetch = None };
    cand_opts = Augem_driver.Emit.default_options;
  }

(* Reference workload per kernel (a representative point of the
   evaluation sweeps). *)
let reference_workload (k : Kernels.name) : Augem_sim.Perf.workload =
  match k with
  | Kernels.Gemm -> Augem_sim.Perf.W_gemm { m = 4096; n = 4096; k = 256 }
  | Kernels.Gemv -> Augem_sim.Perf.W_gemv { m = 4096; n = 4096 }
  | Kernels.Axpy -> Augem_sim.Perf.W_axpy { n = 150_000 }
  | Kernels.Dot -> Augem_sim.Perf.W_dot { n = 150_000 }
  | Kernels.Ger -> Augem_sim.Perf.W_gemv { m = 4096; n = 4096 }
  | Kernels.Scal -> Augem_sim.Perf.W_axpy { n = 150_000 }
  | Kernels.Copy -> Augem_sim.Perf.W_axpy { n = 150_000 }
  (* packing is a pure streaming copy; score it like DCOPY *)
  | Kernels.Pack_a -> Augem_sim.Perf.W_axpy { n = 150_000 }
  | Kernels.Pack_b -> Augem_sim.Perf.W_axpy { n = 150_000 }

(* --- the loop ----------------------------------------------------------- *)

exception No_viable_configuration of string

(* Step budget: candidates whose generated programs exceed this many
   instructions are discarded before scheduling analysis and the cycle
   model run on them.  Scoring cost is proportional to program length,
   so without the budget one pathological configuration (a huge unroll
   product) can stall the whole sweep. *)
let default_max_insns = 20_000

let diag_of_generation_exn (exn : exn) : Diag.code * string =
  match exn with
  | Augem_codegen.Regfile.Out_of_registers m -> (Diag.E_out_of_registers, m)
  | Augem_codegen.Gpralloc.Gpr_error m -> (Diag.E_gpr_pressure, m)
  | Augem_codegen.Ctx.Codegen_error m -> (Diag.E_codegen, m)
  | Augem_transform.Strength_reduction.Reduction_error m ->
      (Diag.E_strength_reduction, m)
  | Unroll.Unroll_error m -> (Diag.E_unroll, m)
  | Typecheck.Type_error m -> (Diag.E_type_error, m)
  | Augem_analysis.Asmcheck.Lint_error (name, fs) ->
      ( Diag.E_lint,
        Printf.sprintf "%s: %s" name
          (String.concat "; "
             (List.map Augem_analysis.Asmcheck.finding_to_string fs)) )
  | exn -> (Diag.code_of_exn exn, Printexc.to_string exn)

(* Generate one candidate, classifying every failure — including
   exceptions nobody anticipated — instead of letting them abort the
   sweep. *)
let generate_candidate_diag (arch : Arch.t) ?(max_insns = default_max_insns)
    (kname : Kernels.name) (kernel : Ast.kernel) (c : candidate) :
    (Insn.program, Diag.t) Stdlib.result =
  let fp = fp_of_kernel kernel in
  let mk ?stage_name code stage detail =
    Diag.make ?stage_name ~code ~stage
      ~kernel:(Kernels.name_to_string ?fp kname)
      ~arch:arch.Arch.name
      ~config:(Pipeline.config_to_string c.cand_config)
      ~detail ()
  in
  let opts =
    {
      Augem_driver.Lower.default_opts with
      Augem_driver.Lower.prefer = c.cand_opts.Augem_driver.Emit.prefer;
      max_width = c.cand_opts.Augem_driver.Emit.max_width;
      max_insns = Some max_insns;
      lint = true;
      schedule = true;
    }
  in
  match
    Augem_driver.Lower.run ~opts ~arch ~config:c.cand_config kernel
  with
  | trace -> Ok (Augem_driver.Trace.program trace)
  | exception Augem_driver.Lower.Budget_exceeded { stage; len; budget } ->
      Error
        (mk ~stage_name:stage Diag.E_budget_exceeded Diag.S_codegen
           (Printf.sprintf "%d instructions > budget %d" len budget))
  | exception
      Augem_driver.Lower.Stage_failed
        (sname, Augem_analysis.Asmcheck.Lint_error (_, errs)) ->
      (* the static gate on the scheduled program: a candidate the
         checker rejects is discarded like any other structured
         failure, never an exception out of the sweep *)
      Error
        (mk ~stage_name:sname Diag.E_lint Diag.S_asmcheck
           (String.concat "; "
              (List.map Augem_analysis.Asmcheck.finding_to_string errs)))
  | exception Augem_driver.Lower.Stage_failed (sname, exn) ->
      let code, detail = diag_of_generation_exn exn in
      let stage =
        match exn with
        | Unroll.Unroll_error _ | Typecheck.Type_error _
        | Augem_transform.Strength_reduction.Reduction_error _ ->
            Diag.S_pipeline
        | Augem_analysis.Asmcheck.Lint_error _ -> Diag.S_asmcheck
        | _ -> Diag.S_codegen
      in
      Error (mk ~stage_name:sname code stage detail)
  | exception exn ->
      let code, detail = diag_of_generation_exn exn in
      Error (mk code Diag.S_codegen detail)

(* Back-compatible option view.  The kernel name labelling its
   diagnostics used to be hardcoded to Gemm, mislabelling every
   non-GEMM kernel tuned through this path; it is now inferred from the
   kernel's own function name (or passed explicitly via [?kname] for
   kernels outside the built-in set).  [?on_diag] observes the
   diagnostic the option view would otherwise swallow. *)
let infer_kname (kernel : Ast.kernel) : Kernels.name option =
  List.find_map
    (fun (n, k) ->
      if String.equal k.Ast.k_name kernel.Ast.k_name then Some n else None)
    Kernels.all

let generate_candidate ?kname ?(on_diag = fun (_ : Diag.t) -> ())
    (arch : Arch.t) (kernel : Ast.kernel) (c : candidate) :
    Insn.program option =
  let kname =
    match kname with
    | Some n -> n
    | None -> Option.value ~default:Kernels.Gemm (infer_kname kernel)
  in
  match generate_candidate_diag arch kname kernel c with
  | Ok prog -> Some prog
  | Error d ->
      on_diag d;
      None

(* Optional wall-clock measurement hook (the native JIT path installs
   one): when present, [score_diag] replaces the model's predicted
   MFLOPS with the measured figure whenever the program can actually
   run on this host, and [tuned] bypasses its cache tiers — measured
   scores are host-specific and noisy, so they must not be stored
   under, or answered from, content addresses other processes share. *)
type native_measure =
  et:Etype.t ->
  Arch.t ->
  Kernels.name ->
  Insn.program ->
  Augem_sim.Perf.workload ->
  float option

let native_measure_ref : native_measure option ref = ref None
let set_native_measure (m : native_measure option) = native_measure_ref := m

let native_measure_installed () =
  match !native_measure_ref with Some _ -> true | None -> false

let score_diag ?(et = Etype.F64) (arch : Arch.t) (kname : Kernels.name)
    (c : candidate) (prog : Insn.program) (w : Augem_sim.Perf.workload) :
    (float, Diag.t) Stdlib.result =
  let mk code detail =
    Diag.make ~code ~stage:Diag.S_score
      ~kernel:(Kernels.name_to_string ?fp:(fp_of_et et) kname)
      ~arch:arch.Arch.name
      ~config:(Pipeline.config_to_string c.cand_config)
      ~detail ()
  in
  match Augem_sim.Perf.predict ~et arch prog w with
  | e -> (
      let model = e.Augem_sim.Perf.e_mflops in
      match !native_measure_ref with
      | None -> Ok model
      | Some measure -> (
          (* measured wall-clock wins when the host can execute the
             program; otherwise the model still ranks the candidate *)
          match measure ~et arch kname prog w with
          | Some wall -> Ok wall
          | None -> Ok model
          | exception _ -> Ok model))
  | exception Augem_sim.Perf.No_hot_loop m -> Error (mk Diag.E_no_hot_loop m)
  | exception exn ->
      Error (mk (Diag.code_of_exn exn) (Printexc.to_string exn))

let score (arch : Arch.t) (prog : Insn.program) (w : Augem_sim.Perf.workload) :
    float option =
  match Augem_sim.Perf.predict arch prog w with
  | e -> Some e.Augem_sim.Perf.e_mflops
  | exception Augem_sim.Perf.No_hot_loop _ -> None

(* Process-wide sweep parallelism: [tune ~jobs] overrides per call;
   [set_jobs] (or the AUGEM_JOBS environment variable) sets the default
   for every sweep, including the internal ones behind the library
   models.  1 = fully sequential, no domain ever spawned. *)
let default_jobs_ref =
  ref
    (match Option.bind (Sys.getenv_opt "AUGEM_JOBS") int_of_string_opt with
    | Some j when j >= 1 -> j
    | _ -> 1)

let set_jobs j = default_jobs_ref := max 1 j
let jobs () = !default_jobs_ref

(* One candidate, generated and scored: the unit of parallel work.
   Pure — all pipeline/codegen/model state is per call — so shards of
   the space can evaluate on separate domains. *)
let evaluate_candidate (arch : Arch.t) ~max_insns (name : Kernels.name)
    (kernel : Ast.kernel) (workload : Augem_sim.Perf.workload)
    (cand : candidate) : (Insn.program * float, Diag.t) Stdlib.result =
  match generate_candidate_diag arch ~max_insns name kernel cand with
  | Error d -> Error d
  | Ok prog -> (
      match
        score_diag ~et:(et_of_kernel kernel) arch name cand prog workload
      with
      | Error d -> Error d
      | Ok s -> Ok (prog, s))

let tune ?(et = Etype.F64) ?(workload : Augem_sim.Perf.workload option)
    ?(space : candidate list option) ?(max_insns = default_max_insns)
    ?(jobs : int option) (arch : Arch.t) (name : Kernels.name) : result =
  let kernel = Kernels.kernel_of_name ?fp:(fp_of_et et) name in
  let workload =
    match workload with Some w -> w | None -> reference_workload name
  in
  let space = match space with Some s -> s | None -> space_for name in
  let jobs = match jobs with Some j -> max 1 j | None -> !default_jobs_ref in
  let visited = ref 0 in
  let failures = ref [] in
  let best = ref None in
  let record d =
    failures := d :: !failures;
    Log.debug (fun m -> m "discard: %s" (Diag.to_string d))
  in
  (* Shard the embarrassingly-parallel part (candidate evaluation)
     across domains; Pool.map returns per-candidate outcomes in
     candidate order.  The order-sensitive part — the first-seen-
     maximum tie-break the prefetch_opts ordering depends on, and the
     sweep-ordered failure list — stays a sequential fold over that
     ordered list, so ~jobs:n is bit-identical to ~jobs:1. *)
  let evaluated =
    Pool.map ~jobs (evaluate_candidate arch ~max_insns name kernel workload)
      space
  in
  List.iter2
    (fun cand outcome ->
      incr visited;
      match outcome with
      | Error d -> record d
      | Ok (prog, s) ->
          Log.debug (fun m ->
              m "%s/%s %s -> %.0f MFLOPS" arch.Arch.name
                (Kernels.name_to_string ?fp:(fp_of_et et) name)
                (Pipeline.config_to_string cand.cand_config)
                s);
          (match !best with
          | Some (_, _, s') when s' >= s -> ()
          | _ -> best := Some (cand, prog, s)))
    space evaluated;
  let failures_list = List.rev !failures in
  let finish ~fell_back (cand, prog, s) =
    {
      best = cand;
      best_program = prog;
      best_score = s;
      visited = !visited;
      discarded = List.length failures_list;
      fell_back;
      failures = failures_list;
      failure_histogram = Diag.histogram failures_list;
    }
  in
  match !best with
  | Some b -> finish ~fell_back:false b
  | None -> (
      (* Graceful degradation: the whole space was discarded.  Fall
         back to the safe baseline rather than raising — a library
         build wants a slow kernel over no kernel. *)
      Log.warn (fun m ->
          m "%s/%s: all %d candidates discarded; falling back to baseline"
            arch.Arch.name
            (Kernels.name_to_string ?fp:(fp_of_et et) name)
            !visited);
      (* the baseline is generated under the default step budget, not
         the caller's: a tight [max_insns] is a candidate filter, and
         must not take the known-small fallback down with it *)
      match
        generate_candidate_diag arch ~max_insns:default_max_insns name kernel
          safe_baseline
      with
      | Ok prog ->
          let s =
            match score_diag ~et arch name safe_baseline prog workload with
            | Ok s -> s
            | Error _ -> 0.0
          in
          finish ~fell_back:true (safe_baseline, prog, s)
      | Error d ->
          (* even the baseline will not generate: a genuinely broken
             kernel/arch pair, the one case that still raises *)
          raise
            (No_viable_configuration
               (Printf.sprintf "%s on %s (baseline also failed: %s)"
                  (Kernels.name_to_string ?fp:(fp_of_et et) name)
                  arch.Arch.name (Diag.to_string d))))

(* --- memoized tuning (in-memory L1 + persistent on-disk L2) ------------- *)

(* Bump whenever the sweep's semantics or the marshalled result layout
   change: old on-disk entries then stop being found (their content
   address changes) instead of being misread.  5: blocked-GEMM search
   dimensions and the E_strength_reduction diagnostic code (Diag is
   part of the marshalled result). *)
let tuner_version = "5"

let candidate_fingerprint (c : candidate) : string =
  let prefer =
    match c.cand_opts.Augem_driver.Emit.prefer with
    | Augem_codegen.Plan.Prefer_auto -> "auto"
    | Augem_codegen.Plan.Prefer_vdup -> "vdup"
    | Augem_codegen.Plan.Prefer_shuf -> "shuf"
  in
  let width =
    match c.cand_opts.Augem_driver.Emit.max_width with
    | None -> "native"
    | Some Insn.W64 -> "w64"
    | Some Insn.W128 -> "w128"
    | Some Insn.W256 -> "w256"
  in
  Printf.sprintf "%s|prefer=%s|width=%s"
    (Pipeline.config_to_string c.cand_config)
    prefer width

(* The search-space fingerprint in the cache key: two sweeps share an
   entry only if they would explore the same candidates in the same
   order. *)
let space_fingerprint (space : candidate list) : string =
  Digest.to_hex
    (Digest.string (String.concat "\n" (List.map candidate_fingerprint space)))

(* --- cache-tier accounting ---------------------------------------------- *)

(* One event per tier decision of [tuned] (and of any other cache built
   on the same fingerprint scheme, via [notify_cache_event]): the tune
   CLI and the serving metrics both subscribe here instead of scraping
   their own counters. *)
type cache_event =
  | Ev_memory_hit
  | Ev_disk_hit
  | Ev_disk_miss
  | Ev_disk_corrupt of Diag.t
  | Ev_swept
  | Ev_store
  | Ev_store_error of Diag.t

let cache_event_to_string = function
  | Ev_memory_hit -> "memory-hit"
  | Ev_disk_hit -> "disk-hit"
  | Ev_disk_miss -> "disk-miss"
  | Ev_disk_corrupt d -> "disk-corrupt: " ^ Diag.to_string d
  | Ev_swept -> "swept"
  | Ev_store -> "store"
  | Ev_store_error d -> "store-error: " ^ Diag.to_string d

type cache_observer = arch:string -> kernel:string -> cache_event -> unit

let observer_mutex = Mutex.create ()
let observer : cache_observer option ref = ref None

let set_cache_observer o =
  Mutex.protect observer_mutex (fun () -> observer := o)

let notify_cache_event ~arch ~kernel (ev : cache_event) : unit =
  match Mutex.protect observer_mutex (fun () -> !observer) with
  | None -> ()
  | Some f -> ( try f ~arch ~kernel ev with _ -> ())

(* Process-wide persistent-cache location: [set_cache_dir] (or the
   AUGEM_CACHE_DIR environment variable); None disables the disk
   layer. *)
let cache_dir_ref = ref (Sys.getenv_opt "AUGEM_CACHE_DIR")
let set_cache_dir d = cache_dir_ref := d
let cache_dir () = !cache_dir_ref

(* In-memory memo table, keyed by (arch, kernel, space fingerprint) —
   the fingerprint keeps a caller-supplied space from ever answering
   for the default one.  Guarded by a mutex: [tuned] may be called
   from concurrent domains (two sweeps racing on one key both tune and
   both store — wasteful but correct, because tuning is
   deterministic). *)
let cache : (string * string * string, result) Hashtbl.t = Hashtbl.create 8
let cache_mutex = Mutex.create ()

let tuned ?(et = Etype.F64) ?jobs ?cache_dir:cdir ?space (arch : Arch.t)
    (name : Kernels.name) : result =
  let kernel_s = Kernels.name_to_string ?fp:(fp_of_et et) name in
  let space = match space with Some s -> s | None -> space_for name in
  let fingerprint = space_fingerprint space in
  let key = (arch.Arch.name, kernel_s, fingerprint) in
  let notify ev = notify_cache_event ~arch:arch.Arch.name ~kernel:kernel_s ev in
  if native_measure_installed () then
    (* measured wall-clock scores are host-specific and noisy: never
       answer them from, or store them into, the content-addressed
       tiers that deterministic model scores share *)
    tune ~et ?jobs ~space arch name
  else
  match Mutex.protect cache_mutex (fun () -> Hashtbl.find_opt cache key) with
  | Some r ->
      notify Ev_memory_hit;
      r
  | None -> (
      let dir = match cdir with Some _ as d -> d | None -> !cache_dir_ref in
      let ckey =
        Option.map
          (fun dir ->
            let keydesc =
              Cache.keydesc ~version:tuner_version ~arch:arch.Arch.name
                ~kernel:kernel_s ~fingerprint
            in
            let digest =
              Cache.digest ~version:tuner_version ~arch:arch.Arch.name
                ~kernel:kernel_s ~fingerprint
            in
            (dir, keydesc, digest))
          dir
      in
      let remember (r : result) =
        Mutex.protect cache_mutex (fun () -> Hashtbl.replace cache key r)
      in
      let from_disk =
        match ckey with
        | None -> None
        | Some (dir, keydesc, digest) -> (
            match
              Cache.load ~dir ~arch:arch.Arch.name ~kernel:kernel_s ~keydesc
                ~digest
            with
            | Cache.Hit (r : result) when not r.fell_back ->
                notify Ev_disk_hit;
                remember r;
                Some r
            | Cache.Hit _ | Cache.Miss ->
                (* a persisted fallback result (foreign writer / older
                   version) must not poison this process: re-tune *)
                notify Ev_disk_miss;
                None
            | Cache.Corrupt d ->
                notify (Ev_disk_corrupt d);
                Log.warn (fun m -> m "%s" (Diag.to_string d));
                None)
      in
      match from_disk with
      | Some r -> r
      | None ->
          let r = tune ~et ?jobs ~space arch name in
          notify Ev_swept;
          (* Never memoize or persist a fallback result: a sweep that
             degraded (e.g. under a hostile space or a transient
             budget) must not poison later callers with the slow
             baseline. *)
          if not r.fell_back then begin
            remember r;
            match ckey with
            | None -> ()
            | Some (dir, keydesc, digest) -> (
                match
                  Cache.store ~dir ~arch:arch.Arch.name ~kernel:kernel_s
                    ~keydesc ~digest r
                with
                | None -> notify Ev_store
                | Some d ->
                    notify (Ev_store_error d);
                    Log.warn (fun m -> m "%s" (Diag.to_string d)))
          end;
          r)

(* --- blocked GEMM: micro candidates x MC/KC/NC blocking triples ---------- *)

module Mem_model = Augem_sim.Mem_model

(* The register tile a candidate's unroll&jam configuration produces:
   MR from the i-jam factor, NR from the j-jam factor (the GEMM space
   jams both).  The cache blocks must decompose into this tile. *)
let register_tile (c : candidate) : int * int =
  let factor v =
    match List.assoc_opt v c.cand_config.Pipeline.jam with
    | Some f when f > 0 -> f
    | _ -> 1
  in
  (factor "i", factor "j")

(* Best blocking for one generated micro-kernel under the blocked-GEMM
   performance model: scores every triple in
   {!Mem_model.blocking_candidates} with {!Perf.predict_blocked} and
   keeps the first-seen maximum (the analytically-derived triple is
   first, so it wins score ties). *)
let select_blocking ~(et : Etype.t) (arch : Arch.t) (c : candidate)
    (prog : Insn.program) (w : Augem_sim.Perf.workload) :
    (Mem_model.blocking * float * int, Diag.t) Stdlib.result =
  let mr, nr = register_tile c in
  let blockings = Mem_model.blocking_candidates ~et arch ~mr ~nr in
  let best =
    List.fold_left
      (fun acc b ->
        match Augem_sim.Perf.predict_blocked ~et arch prog ~blocking:b w with
        | e -> (
            let s = e.Augem_sim.Perf.e_mflops in
            match acc with
            | Some (_, s') when s' >= s -> acc
            | _ -> Some (b, s))
        | exception Augem_sim.Perf.No_hot_loop _ -> acc)
      None blockings
  in
  match best with
  | Some (b, s) -> Ok (b, s, List.length blockings)
  | None ->
      Error
        (Diag.make ~code:Diag.E_no_hot_loop ~stage:Diag.S_score
           ~kernel:"gemm_blocked" ~arch:arch.Arch.name
           ~config:(Pipeline.config_to_string c.cand_config)
           ~detail:"no blocking scored: hot loop not analyzable" ())

type blocked_result = {
  bb_candidate : candidate;  (** winning micro-kernel configuration *)
  bb_program : Insn.program;  (** its generated micro-kernel *)
  bb_blocking : Mem_model.blocking;  (** winning MC/KC/NC triple *)
  bb_mr : int;
  bb_nr : int;
  bb_blocked_score : float;
  bb_streamed_score : float;
  bb_micro_visited : int;
  bb_blockings_visited : int;  (** total (candidate, blocking) pairs *)
  bb_discarded : int;
  bb_failures : Diag.t list;
  bb_failure_histogram : (string * int) list;
}

(* One candidate of the blocked cross-product: generate the
   micro-kernel, then pick its best blocking.  Pure, so the space
   shards across domains exactly like [tune]'s. *)
let evaluate_blocked_candidate (arch : Arch.t) ~max_insns
    (kernel : Ast.kernel) (w : Augem_sim.Perf.workload) (cand : candidate) :
    (Insn.program * Mem_model.blocking * float * int, Diag.t) Stdlib.result =
  match generate_candidate_diag arch ~max_insns Kernels.Gemm kernel cand with
  | Error d -> Error d
  | Ok prog -> (
      match select_blocking ~et:(et_of_kernel kernel) arch cand prog w with
      | Error d -> Error d
      | Ok (b, s, visited) -> Ok (prog, b, s, visited))

(* Tune the full blocked DGEMM: the micro-kernel configuration space
   crossed with the cache-blocking triples each configuration's
   register tile admits — the MC/KC/NC dimensions of the search space
   the blocked driver adds.  Selection is the first-seen maximum over
   the cross-product in space order (bit-identical for every [?jobs]),
   scored by {!Augem_sim.Perf.predict_blocked} on [workload]; the
   result also carries the {!Augem_sim.Perf.predict_streamed} score of
   the winner, the unblocked baseline the blocked driver is gated
   against. *)
let tune_blocked ?(et = Etype.F64)
    ?(workload : Augem_sim.Perf.workload option)
    ?(space : candidate list option) ?(max_insns = default_max_insns)
    ?(jobs : int option) (arch : Arch.t) : blocked_result =
  let w =
    match workload with
    | Some w -> w
    | None -> reference_workload Kernels.Gemm
  in
  (match w with
  | Augem_sim.Perf.W_gemm _ -> ()
  | _ -> invalid_arg "Tuner.tune_blocked: workload must be W_gemm");
  let kernel = Kernels.kernel_of_name ?fp:(fp_of_et et) Kernels.Gemm in
  let space =
    match space with Some s -> s | None -> space_for Kernels.Gemm
  in
  let jobs = match jobs with Some j -> max 1 j | None -> !default_jobs_ref in
  let evaluated =
    Pool.map ~jobs (evaluate_blocked_candidate arch ~max_insns kernel w) space
  in
  let failures = ref [] in
  let best = ref None in
  let blockings_visited = ref 0 in
  List.iter2
    (fun cand outcome ->
      match outcome with
      | Error d -> failures := d :: !failures
      | Ok (prog, b, s, visited) -> (
          blockings_visited := !blockings_visited + visited;
          match !best with
          | Some (_, _, _, s') when s' >= s -> ()
          | _ -> best := Some (cand, prog, b, s)))
    space evaluated;
  let failures_list = List.rev !failures in
  let finish (cand, prog, blocking, s) =
    let mr, nr = register_tile cand in
    let streamed =
      match Augem_sim.Perf.predict_streamed ~et arch prog ~nr w with
      | e -> e.Augem_sim.Perf.e_mflops
      | exception Augem_sim.Perf.No_hot_loop _ -> 0.0
    in
    {
      bb_candidate = cand;
      bb_program = prog;
      bb_blocking = blocking;
      bb_mr = mr;
      bb_nr = nr;
      bb_blocked_score = s;
      bb_streamed_score = streamed;
      bb_micro_visited = List.length space;
      bb_blockings_visited = !blockings_visited;
      bb_discarded = List.length failures_list;
      bb_failures = failures_list;
      bb_failure_histogram = Diag.histogram failures_list;
    }
  in
  match !best with
  | Some b -> finish b
  | None -> (
      (* same graceful degradation as [tune]: a discarded cross-product
         falls back to the safe baseline and the derived blocking *)
      Log.warn (fun m ->
          m "%s/gemm blocked: all %d candidates discarded; falling back"
            arch.Arch.name (List.length space));
      match
        generate_candidate_diag arch ~max_insns:default_max_insns Kernels.Gemm
          kernel safe_baseline
      with
      | Ok prog ->
          let mr, nr = register_tile safe_baseline in
          let blocking = Mem_model.derive_blocking ~et arch ~mr ~nr in
          let s =
            match Augem_sim.Perf.predict_blocked ~et arch prog ~blocking w with
            | e -> e.Augem_sim.Perf.e_mflops
            | exception Augem_sim.Perf.No_hot_loop _ -> 0.0
          in
          finish (safe_baseline, prog, blocking, s)
      | Error d ->
          raise
            (No_viable_configuration
               (Printf.sprintf "blocked gemm on %s (baseline also failed: %s)"
                  arch.Arch.name (Diag.to_string d))))
