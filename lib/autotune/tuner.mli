(** Empirical tuning of the Optimized C Kernel Generator's parameters
    (paper section 2.1: the generator "automatically experiments with
    different unrolling and unroll&jam configurations and selects the
    best performing configurations based on the performance of their
    optimized code").

    The performance feedback is the cycle-level model of the generated
    assembly (the substitution for the paper's wall-clock measurements,
    see DESIGN.md).

    Robustness contract: the sweep survives arbitrary broken
    candidates.  Every discarded configuration is recorded as a
    structured {!Augem_verify.Diag.t} (never a bare counter or an
    escaped exception); oversized programs are rejected by a step
    budget before the scoring model runs on them; and a fully-discarded
    space degrades to {!safe_baseline} instead of raising. *)

type candidate = {
  cand_config : Augem_transform.Pipeline.config;
  cand_opts : Augem_driver.Emit.options;
}

type result = {
  best : candidate;
  best_program : Augem_machine.Insn.program;
  best_score : float;  (** predicted MFLOPS on the reference workload *)
  visited : int;
  discarded : int;
  fell_back : bool;
      (** the whole space was discarded and {!safe_baseline} was used *)
  failures : Augem_verify.Diag.t list;
      (** one structured record per discarded candidate, in sweep order *)
  failure_histogram : (string * int) list;
      (** failure counts keyed by diagnostic code, descending *)
}

(** The per-kernel search space. *)
val space_for : Augem_ir.Kernels.name -> candidate list

(** The graceful-degradation configuration: scalar passes only (no
    unroll&jam, no unrolling, no prefetch).  Generates for every kernel
    on every modelled architecture. *)
val safe_baseline : candidate

(** A representative point of the paper's evaluation sweep for each
    kernel. *)
val reference_workload : Augem_ir.Kernels.name -> Augem_sim.Perf.workload

(** Raised only when even {!safe_baseline} fails to generate — a
    genuinely broken kernel/architecture pair.  An exhausted search
    space alone no longer raises. *)
exception No_viable_configuration of string

(** Step budget: candidates whose generated programs exceed this many
    instructions are discarded ({!Augem_verify.Diag.E_budget_exceeded})
    before the program-length-proportional scheduling and scoring
    analyses run. *)
val default_max_insns : int

(** Generate one candidate, classifying {i any} failure — anticipated
    codegen errors and unexpected exceptions alike — as a structured
    diagnostic instead of letting it abort the sweep. *)
val generate_candidate_diag :
  Augem_machine.Arch.t ->
  ?max_insns:int ->
  Augem_ir.Kernels.name ->
  Augem_ir.Ast.kernel ->
  candidate ->
  (Augem_machine.Insn.program, Augem_verify.Diag.t) Stdlib.result

(** The built-in kernel a function name denotes, if any (matches the
    [k_name] of the kernels in {!Augem_ir.Kernels.all}). *)
val infer_kname : Augem_ir.Ast.kernel -> Augem_ir.Kernels.name option

(** Back-compatible view of {!generate_candidate_diag}: [None] when the
    configuration does not fit the machine.  The diagnostic's kernel
    label is inferred from the kernel's function name (override with
    [?kname] for kernels outside the built-in set — it used to be
    hardcoded to GEMM, mislabelling every other kernel); [?on_diag]
    observes the diagnostic this view otherwise drops. *)
val generate_candidate :
  ?kname:Augem_ir.Kernels.name ->
  ?on_diag:(Augem_verify.Diag.t -> unit) ->
  Augem_machine.Arch.t ->
  Augem_ir.Ast.kernel ->
  candidate ->
  Augem_machine.Insn.program option

(** Score a generated program, classifying failures.  [et] selects the
    element type the performance model counts flops in (default f64)
    and the precision label on the diagnostic. *)
val score_diag :
  ?et:Augem_machine.Etype.t ->
  Augem_machine.Arch.t ->
  Augem_ir.Kernels.name ->
  candidate ->
  Augem_machine.Insn.program ->
  Augem_sim.Perf.workload ->
  (float, Augem_verify.Diag.t) Stdlib.result

(** {2 Native measurement hook}

    The native JIT path can install a wall-clock measurement function.
    While one is installed, {!score_diag} (and therefore every sweep)
    replaces the cycle model's predicted MFLOPS with the measured
    figure for any program the host can execute — the hook returns
    [None] for programs it cannot or will not run, which then keep
    their model score — and {!tuned} bypasses both cache tiers, because
    measured scores are host-specific and noisy and must not be stored
    under (or answered from) the content addresses deterministic model
    scores share.  A hook exception falls back to the model score. *)
type native_measure =
  et:Augem_machine.Etype.t ->
  Augem_machine.Arch.t ->
  Augem_ir.Kernels.name ->
  Augem_machine.Insn.program ->
  Augem_sim.Perf.workload ->
  float option

val set_native_measure : native_measure option -> unit
val native_measure_installed : unit -> bool

(** Score a generated program on a workload; [None] when the program
    has no analyzable hot loop. *)
val score :
  Augem_machine.Arch.t ->
  Augem_machine.Insn.program ->
  Augem_sim.Perf.workload ->
  float option

(** Set the process-wide default sweep parallelism (also settable via
    the [AUGEM_JOBS] environment variable); clamped to at least 1.
    Affects every {!tune}/{!tuned} call that does not pass [?jobs],
    including the sweeps behind the library models. *)
val set_jobs : int -> unit

(** The current default sweep parallelism. *)
val jobs : unit -> int

(** Exhaustive search over the (given or default) space.  Never raises
    on a fully-discarded space: the result carries [fell_back = true],
    the baseline program, and the populated failure histogram.

    [?jobs] shards candidate evaluation across that many domains
    (default: {!jobs}).  Results are {i bit-identical} for every job
    count: candidates are generated and scored in parallel, but the
    best-candidate selection (first-seen maximum, the tie-break the
    search-space ordering depends on) and the failure list are reduced
    sequentially in candidate order.

    [?et] selects the scalar precision (default f64): the kernel text
    is retyped to [float], the performance model counts f32 flops, and
    diagnostics carry the s-prefixed kernel name. *)
val tune :
  ?et:Augem_machine.Etype.t ->
  ?workload:Augem_sim.Perf.workload ->
  ?space:candidate list ->
  ?max_insns:int ->
  ?jobs:int ->
  Augem_machine.Arch.t ->
  Augem_ir.Kernels.name ->
  result

(** Cache-key version of the sweep semantics and marshalled result
    layout; part of every persistent-cache content address. *)
val tuner_version : string

(** Digest of a candidate space (configurations, codegen options, and
    their order): two sweeps share a persistent-cache entry only if
    their fingerprints match. *)
val space_fingerprint : candidate list -> string

(** {2 Cache-tier accounting}

    Every tier decision the memoized sweep (or any other two-tier cache
    keyed like it, e.g. the serving registry) makes is reported as one
    of these events, so the [tune] CLI and the service metrics share
    one accounting path instead of each scraping its own counters.
    Corrupt entries and failed stores carry their structured
    {!Augem_verify.Diag.t}. *)
type cache_event =
  | Ev_memory_hit  (** answered from the in-memory tier *)
  | Ev_disk_hit  (** answered from the persistent on-disk tier *)
  | Ev_disk_miss  (** no usable on-disk entry (includes stale fallbacks) *)
  | Ev_disk_corrupt of Augem_verify.Diag.t
      (** on-disk entry failed to load; treated as a miss *)
  | Ev_swept  (** a full tuning sweep ran *)
  | Ev_store  (** the sweep result was persisted *)
  | Ev_store_error of Augem_verify.Diag.t  (** persisting failed (non-fatal) *)

val cache_event_to_string : cache_event -> string

type cache_observer = arch:string -> kernel:string -> cache_event -> unit

(** Install (or clear) the process-wide observer.  [tuned] calls it on
    every tier decision; {!notify_cache_event} lets other caches that
    share the fingerprint scheme report through the same path. *)
val set_cache_observer : cache_observer option -> unit

(** Invoke the installed observer, if any.  Never raises (an observer
    exception is swallowed: accounting must not break tuning). *)
val notify_cache_event : arch:string -> kernel:string -> cache_event -> unit

(** Set the process-wide persistent tuning-cache directory (also
    settable via the [AUGEM_CACHE_DIR] environment variable); [None]
    disables the on-disk layer. *)
val set_cache_dir : string option -> unit

(** The current persistent-cache directory. *)
val cache_dir : unit -> string option

(** Memoized {!tune} on the reference workload: an in-memory table in
    front of the persistent on-disk cache (when a cache directory is
    configured via [?cache_dir], {!set_cache_dir} or
    [AUGEM_CACHE_DIR]).  Both layers key on (arch, kernel, space
    fingerprint, tuner version), so a caller-supplied [?space] never
    answers for the default one.  Fallback results
    ([fell_back = true]) are never memoized or persisted — a degraded
    sweep (e.g. over a hostile space) must not poison later callers —
    and a corrupt cache file is a logged miss, never an error.  Safe to
    call from concurrent domains.

    [?et] selects the scalar precision; f32 results address under the
    s-prefixed kernel name in both tiers, so the f64 content addresses
    are untouched by the precision axis. *)
val tuned :
  ?et:Augem_machine.Etype.t ->
  ?jobs:int ->
  ?cache_dir:string ->
  ?space:candidate list ->
  Augem_machine.Arch.t ->
  Augem_ir.Kernels.name ->
  result

(** {2 Blocked GEMM}

    The blocked driver adds the MC/KC/NC cache-blocking triple as
    search dimensions: the micro-kernel configuration space is crossed
    with every blocking the configuration's register tile admits
    ({!Augem_sim.Mem_model.blocking_candidates}), scored under the
    blocked performance model {!Augem_sim.Perf.predict_blocked}. *)

(** The MR/NR register tile a candidate's unroll&jam configuration
    produces (i-jam and j-jam factors; 1 when absent). *)
val register_tile : candidate -> int * int

(** Best blocking for one generated micro-kernel on a workload:
    first-seen maximum over {!Augem_sim.Mem_model.blocking_candidates}
    (the analytically-derived triple wins ties).  Returns the triple,
    its predicted MFLOPS, and the number of triples scored.  [et] sets
    the element size of the blocking footprints and the flop counts. *)
val select_blocking :
  et:Augem_machine.Etype.t ->
  Augem_machine.Arch.t ->
  candidate ->
  Augem_machine.Insn.program ->
  Augem_sim.Perf.workload ->
  (Augem_sim.Mem_model.blocking * float * int, Augem_verify.Diag.t)
  Stdlib.result

type blocked_result = {
  bb_candidate : candidate;  (** winning micro-kernel configuration *)
  bb_program : Augem_machine.Insn.program;  (** its micro-kernel *)
  bb_blocking : Augem_sim.Mem_model.blocking;  (** winning MC/KC/NC *)
  bb_mr : int;
  bb_nr : int;
  bb_blocked_score : float;  (** predicted MFLOPS, blocked driver *)
  bb_streamed_score : float;  (** predicted MFLOPS, unblocked baseline *)
  bb_micro_visited : int;
  bb_blockings_visited : int;  (** total (candidate, blocking) pairs *)
  bb_discarded : int;
  bb_failures : Augem_verify.Diag.t list;
  bb_failure_histogram : (string * int) list;
}

(** Tune the full blocked DGEMM over the micro-configuration x blocking
    cross-product.  [workload] must be a [W_gemm] (default: the GEMM
    reference workload; raises [Invalid_argument] otherwise).
    Bit-identical for every [?jobs], same sharding contract as
    {!tune}; degrades to {!safe_baseline} with the analytically-derived
    blocking when the whole space is discarded.  [?et] selects the
    scalar precision exactly as in {!tune}; f32 blocking triples are
    derived with 4-byte elements, so the same caches admit larger
    blocks. *)
val tune_blocked :
  ?et:Augem_machine.Etype.t ->
  ?workload:Augem_sim.Perf.workload ->
  ?space:candidate list ->
  ?max_insns:int ->
  ?jobs:int ->
  Augem_machine.Arch.t ->
  blocked_result
