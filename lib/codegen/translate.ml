(* Straightforward translation of untemplated low-level C: integer
   expression evaluation, addressing, scalar doubles, accumulator
   (plan) state, and plain statement emission.  The first layer of the
   assembly generator (paper Figure 2 and section 2.4); the template
   optimizers ([Vectorize]) and control flow ([Control]) build on it.

   Values live as follows: int scalars and pointers in general-purpose
   registers (spillable to stack home slots), double scalars in SIMD
   register lanes (never spilled), vector accumulators in SIMD
   registers bound lane-per-scalar according to the [Plan].

   Internal plumbing of this library (the emitter layers co-evolve),
   deliberately not sealed with an .mli. *)

module SS = Set.Make (String)

open Augem_ir
open Augem_machine
open Ctx

type state = {
  ctx : Ctx.t;
  plan : Plan.t;
  (* concrete accumulator registers per plan (keyed by first res var) *)
  accs : (string, int array * bool array) Hashtbl.t;
  mutable assigned_vars : SS.t; (* scalars ever assigned: not memoizable *)
  mutable vec_width : Insn.vwidth; (* widest width used (for vzeroupper) *)
  mutable used_256 : bool;
}

(* ---------------------------------------------------------------------- *)
(* integer expression evaluation                                           *)
(* ---------------------------------------------------------------------- *)

let pure_expr st e =
  List.for_all (fun v -> not (SS.mem v st.assigned_vars)) (Ast.expr_vars e)

(* Evaluate an integer expression into an owned temporary register.
   Pure parameter expressions are memoized in synthetic variables. *)
let rec eval_int st (e : Ast.expr) : Reg.gpr =
  let ctx = st.ctx in
  match Simplify.simplify_expr e with
  | Ast.Int_lit n ->
      let r = Gpralloc.alloc_temp ctx.gprs () in
      emit ctx (Insn.Movri (r, n));
      r
  | Ast.Var v ->
      let src = Gpralloc.get ctx.gprs v in
      let r = Gpralloc.alloc_temp ctx.gprs ~avoid:[ src ] () in
      emit ctx (Insn.Movrr (r, src));
      r
  | Ast.Binop (op, a, b) as expr -> (
      (* reuse a hoisted loop invariant when one is in scope; never
         create memo definitions here (only [Control.prematerialize]
         may — its definitions dominate their uses) *)
      let memo_name = "$" ^ Pp.expr_to_string expr in
      if
        pure_expr st expr
        && Ast.expr_size expr > 2
        && Gpralloc.is_defined ctx.gprs memo_name
      then begin
        let src = Gpralloc.get ctx.gprs memo_name in
        let r = Gpralloc.alloc_temp ctx.gprs ~avoid:[ src ] () in
        emit ctx (Insn.Movrr (r, src));
        r
      end
      else
        let ra = eval_int st a in
        match (op, Simplify.simplify_expr b) with
        | Ast.Add, Ast.Int_lit n ->
            emit ctx (Insn.Addri (ra, n));
            ra
        | Ast.Sub, Ast.Int_lit n ->
            emit ctx (Insn.Subri (ra, n));
            ra
        | Ast.Mul, Ast.Int_lit n ->
            emit ctx (Insn.Imulri (ra, ra, n));
            ra
        | _, b ->
            let rb = eval_int st b in
            (match op with
            | Ast.Add -> emit ctx (Insn.Addrr (ra, rb))
            | Ast.Sub -> emit ctx (Insn.Subrr (ra, rb))
            | Ast.Mul -> emit ctx (Insn.Imulrr (ra, rb))
            | Ast.Div -> err "integer division is not supported by codegen");
            Gpralloc.free_temp ctx.gprs rb;
            ra)
  | Ast.Neg a ->
      let ra = eval_int st a in
      emit ctx (Insn.Negr ra);
      ra
  | Ast.Double_lit _ | Ast.Index _ ->
      err "expected an integer expression"

(* Memoize a pure parameter expression in a synthetic variable: it is
   computed once, immediately stored to its home slot (so loop
   spill/invalidate discipline never recomputes it), and reloaded like
   any variable afterwards. *)
and memoized st expr : Reg.gpr =
  let ctx = st.ctx in
  let name = "$" ^ Pp.expr_to_string expr in
  if Gpralloc.is_defined ctx.gprs name then begin
    let src = Gpralloc.get ctx.gprs name in
    let r = Gpralloc.alloc_temp ctx.gprs ~avoid:[ src ] () in
    emit ctx (Insn.Movrr (r, src));
    r
  end
  else begin
    let r =
      match expr with
      | Ast.Binop (op, a, b) ->
          let ra = eval_int st a in
          (match (op, Simplify.simplify_expr b) with
          | Ast.Add, Ast.Int_lit n -> emit ctx (Insn.Addri (ra, n))
          | Ast.Sub, Ast.Int_lit n -> emit ctx (Insn.Subri (ra, n))
          | Ast.Mul, Ast.Int_lit n -> emit ctx (Insn.Imulri (ra, ra, n))
          | _, b ->
              let rb = eval_int st b in
              (match op with
              | Ast.Add -> emit ctx (Insn.Addrr (ra, rb))
              | Ast.Sub -> emit ctx (Insn.Subrr (ra, rb))
              | Ast.Mul -> emit ctx (Insn.Imulrr (ra, rb))
              | Ast.Div -> err "integer division is not supported");
              Gpralloc.free_temp ctx.gprs rb);
          ra
      | _ -> eval_int st expr
    in
    (* persist: give the synthetic var a home and store it clean *)
    let s = Gpralloc.state ctx.gprs name in
    let off = Gpralloc.home_slot ctx.gprs s in
    emit ctx (Insn.Storeq (Insn.mem ~disp:off Reg.Rbp, r));
    r
  end

(* ---------------------------------------------------------------------- *)
(* addressing                                                              *)
(* ---------------------------------------------------------------------- *)

(* Build a memory operand for element [base[idx]] (element size and
   index scale from the kernel's element type: 8-byte doubles, 4-byte
   floats) and pass it to [k]; index temporaries are freed
   afterwards. *)
let with_addr st (base : string) (idx : Ast.expr) (k : Insn.mem -> unit) : unit
    =
  let ctx = st.ctx in
  let eb = elem_bytes ctx in
  let escale = elem_scale ctx in
  let rb = Gpralloc.get ctx.gprs base in
  match Simplify.simplify_expr idx with
  | Ast.Int_lit n -> k (Insn.mem ~disp:(eb * n) rb)
  | e -> (
      match Poly.of_expr e with
      | Some p ->
          let c = match Poly.Mmap.find_opt [] p with Some c -> c | None -> 0 in
          let rest = Poly.sub p (Poly.const c) in
          if Poly.is_zero rest then k (Insn.mem ~disp:(eb * c) rb)
          else begin
            let rest_expr = Poly.to_expr rest in
            (* fast path: a live variable or memoized invariant can be
               used as the index register directly *)
            let direct =
              match rest_expr with
              | Ast.Var v when Gpralloc.is_defined ctx.gprs v -> Some v
              | Ast.Binop _ ->
                  let name = "$" ^ Pp.expr_to_string rest_expr in
                  if Gpralloc.is_defined ctx.gprs name then Some name else None
              | _ -> None
            in
            match direct with
            | Some v ->
                let ri = Gpralloc.get ctx.gprs v ~avoid:[ rb ] in
                let rb = Gpralloc.get ctx.gprs base ~avoid:[ ri ] in
                k (Insn.mem ~index:(ri, escale) ~disp:(eb * c) rb)
            | None ->
                let ri = eval_int st rest_expr in
                let rb = Gpralloc.get ctx.gprs base ~avoid:[ ri ] in
                k (Insn.mem ~index:(ri, escale) ~disp:(eb * c) rb);
                Gpralloc.free_temp ctx.gprs ri
          end
      | None ->
          let ri = eval_int st e in
          let rb = Gpralloc.get ctx.gprs base ~avoid:[ ri ] in
          k (Insn.mem ~index:(ri, escale) rb);
          Gpralloc.free_temp ctx.gprs ri)

(* ---------------------------------------------------------------------- *)
(* scalar double expressions                                               *)
(* ---------------------------------------------------------------------- *)

let note_width st (w : Insn.vwidth) =
  if w = Insn.W256 then st.used_256 <- true

(* Read the scalar value of [v] into some register's lane 0.  Returns
   (register, is_temporary). *)
let read_scalar st (v : string) : int * bool =
  let ctx = st.ctx in
  match Regfile.residence ctx.vecs v with
  | Some (Regfile.Lane (r, 0)) | Some (Regfile.Splat r) -> (r, false)
  | Some (Regfile.Lane (r, lane)) ->
      let t = Regfile.alloc_temp ctx.vecs ~cls:"tmp" in
      sel_extract_lane ctx ~dst:t ~src:r ~lane;
      (t, true)
  | None -> err "read of floating-point variable %s before definition" v

let free_if_temp st (r, is_temp) =
  if is_temp then Regfile.free_temp st.ctx.vecs r

(* Evaluate a double expression into a register lane 0 (owned temp
   unless it is a direct variable reference). *)
let rec eval_double st (e : Ast.expr) : int * bool =
  let ctx = st.ctx in
  match e with
  | Ast.Var v -> read_scalar st v
  | Ast.Double_lit 0. ->
      let t = Regfile.alloc_temp ctx.vecs ~cls:"tmp" in
      sel_zero ctx Insn.W128 ~dst:t;
      (t, true)
  | Ast.Double_lit f ->
      let t = Regfile.alloc_temp ctx.vecs ~cls:"tmp" in
      let g = Gpralloc.alloc_temp ctx.gprs () in
      (match ctx.Ctx.et with
      | Etype.F64 -> emit ctx (Insn.Movabs (g, Int64.bits_of_float f))
      | Etype.F32 ->
          (* materialize the f32 bit pattern; Movq_xr prints as movd *)
          emit ctx (Insn.Movri (g, Int32.to_int (Int32.bits_of_float f))));
      emit ctx (Insn.Movq_xr { dst = t; src = g });
      Gpralloc.free_temp ctx.gprs g;
      (t, true)
  | Ast.Index (a, idx) ->
      let t = Regfile.alloc_temp ctx.vecs ~cls:(Augem_analysis.Arrays.base_array_of a) in
      with_addr st a idx (fun m ->
          emit ctx (Insn.Vload { w = Insn.W64; dst = t; src = m }));
      (t, true)
  | Ast.Binop (op, a, b) ->
      let ra = eval_double st a in
      let rb = eval_double st b in
      let t = Regfile.alloc_temp ctx.vecs ~cls:"tmp" in
      let fop =
        match op with
        | Ast.Add -> Insn.Fadd
        | Ast.Sub -> Insn.Fsub
        | Ast.Mul -> Insn.Fmul
        | Ast.Div -> Insn.Fdiv
      in
      sel_vop ctx fop Insn.W64 ~dst:t ~src1:(fst ra) ~src2:(fst rb);
      free_if_temp st ra;
      free_if_temp st rb;
      (t, true)
  | Ast.Neg a ->
      let ra = eval_double st a in
      let z = Regfile.alloc_temp ctx.vecs ~cls:"tmp" in
      sel_zero ctx Insn.W128 ~dst:z;
      sel_vop ctx Insn.Fsub Insn.W64 ~dst:z ~src1:z ~src2:(fst ra);
      free_if_temp st ra;
      (z, true)
  | Ast.Int_lit _ -> err "integer literal in floating-point context"

(* ---------------------------------------------------------------------- *)
(* accumulator (plan) state                                                *)
(* ---------------------------------------------------------------------- *)

let plan_id (gp : Plan.group_plan) =
  match gp.Plan.gp_slots with
  | (v, _) :: _ -> v
  | [] -> "?"

let acc_arrays st (gp : Plan.group_plan) : (int array * bool array) option =
  Hashtbl.find_opt st.accs (plan_id gp)

(* Allocate the accumulator registers of a plan, binding every res
   variable to its (register, lane); called at the zero-init idiom. *)
let ensure_accs st (gp : Plan.group_plan) : int array * bool array =
  match acc_arrays st gp with
  | Some x -> x
  | None ->
      let n = gp.Plan.gp_accs in
      let regs = Array.make n (-1) in
      for i = 0 to n - 1 do
        let vars =
          gp.Plan.gp_slots
          |> List.filter (fun (_, s) -> s.Plan.slot_acc = i)
          |> List.sort (fun (_, a) (_, b) ->
                 compare a.Plan.slot_lane b.Plan.slot_lane)
          |> List.map fst
        in
        regs.(i) <-
          Regfile.alloc_lanes st.ctx.vecs ~cls:gp.Plan.gp_store_class ~vars
      done;
      let zeroed = Array.make n false in
      Hashtbl.replace st.accs (plan_id gp) (regs, zeroed);
      (regs, zeroed)

(* ---------------------------------------------------------------------- *)
(* plain statement emission                                                *)
(* ---------------------------------------------------------------------- *)

let emit_double_assign_var st v (e : Ast.expr) =
  let ctx = st.ctx in
  match (Plan.find_plan st.plan v, e) with
  | Some gp, Ast.Double_lit 0. ->
      (* accumulator zero-init idiom: first lane zeroes the register *)
      let regs, zeroed = ensure_accs st gp in
      let slot = List.assoc v gp.Plan.gp_slots in
      let i = slot.Plan.slot_acc in
      if not (zeroed.(i)) then begin
        note_width st gp.Plan.gp_width;
        sel_zero ctx gp.Plan.gp_width ~dst:regs.(i);
        zeroed.(i) <- true
      end
  | Some _, _ ->
      err "unsupported scalar write to vector accumulator %s" v
  | None, _ -> (
      (* splat variables get broadcast at their defining load *)
      let wants_splat = Plan.needs_splat st.plan v in
      match (wants_splat, e) with
      | true, Ast.Index (a, idx) ->
          let w = full_width ctx in
          note_width st w;
          let r =
            match Regfile.residence ctx.vecs v with
            | Some (Regfile.Splat r) -> r
            | Some (Regfile.Lane _) | None ->
                Regfile.alloc_splat ctx.vecs ~var:v
                  ~cls:(Augem_analysis.Arrays.base_array_of a)
          in
          with_addr st a idx (fun m -> sel_broadcast_mem ctx w ~dst:r m)
      | true, _ ->
          (* splat variable defined by a computed expression (e.g. the
             GER column scalar alpha*y[j]): evaluate scalar, then
             replicate across lanes *)
          let value = eval_double st e in
          let w = full_width ctx in
          note_width st w;
          let dst =
            match Regfile.residence ctx.vecs v with
            | Some (Regfile.Splat r) -> r
            | Some (Regfile.Lane _) | None ->
                Regfile.alloc_splat ctx.vecs ~var:v ~cls:"tmp"
          in
          sel_splat ctx w ~dst ~src:(fst value);
          free_if_temp st value
      | false, _ ->
          let value = eval_double st e in
          let dst =
            match Regfile.residence ctx.vecs v with
            | Some (Regfile.Lane (r, 0)) -> r
            | Some (Regfile.Splat _) | Some (Regfile.Lane _) ->
                (* overwrite kills the old (splat/lane) residence *)
                let r = Regfile.alloc_scalar ctx.vecs ~var:v in
                Regfile.rebind ctx.vecs ~var:v ~res:(Regfile.Lane (r, 0));
                r
            | None ->
                Regfile.set_class ctx.vecs ~var:v ~cls:"tmp";
                Regfile.alloc_scalar ctx.vecs ~var:v
          in
          if fst value <> dst then
            sel_vop ctx Insn.Fmov Insn.W64 ~dst ~src1:(fst value)
              ~src2:(fst value);
          free_if_temp st value)

let emit_int_assign st v (e : Ast.expr) =
  let ctx = st.ctx in
  let e = Simplify.simplify_expr e in
  if is_pointer ctx v then begin
    (* pointer arithmetic is in elements: scale by the element size *)
    let eb = elem_bytes ctx in
    let escale = elem_scale ctx in
    match e with
    | Ast.Var b when is_pointer ctx b ->
        let rb = Gpralloc.get ctx.gprs b in
        let rv = Gpralloc.def ctx.gprs v ~avoid:[ rb ] in
        if rv <> rb then emit ctx (Insn.Movrr (rv, rb))
    | Ast.Binop (Ast.Add, Ast.Var b, off) when is_pointer ctx b -> (
        match Simplify.simplify_expr off with
        | Ast.Int_lit n ->
            let rb = Gpralloc.get ctx.gprs b in
            if String.equal b v then emit ctx (Insn.Addri (rb, eb * n))
            else begin
              let rv = Gpralloc.def ctx.gprs v ~avoid:[ rb ] in
              emit ctx (Insn.Lea (rv, Insn.mem ~disp:(eb * n) rb))
            end;
            ignore (Gpralloc.def ctx.gprs v)
        | Ast.Var o when Gpralloc.is_defined ctx.gprs o ->
            let ri = Gpralloc.get ctx.gprs o in
            let rb = Gpralloc.get ctx.gprs b ~avoid:[ ri ] in
            let rv = Gpralloc.def ctx.gprs v ~avoid:[ rb; ri ] in
            emit ctx (Insn.Lea (rv, Insn.mem ~index:(ri, escale) rb))
        | off ->
            let ri = eval_int st off in
            let rb = Gpralloc.get ctx.gprs b ~avoid:[ ri ] in
            let rv = Gpralloc.def ctx.gprs v ~avoid:[ rb; ri ] in
            emit ctx (Insn.Lea (rv, Insn.mem ~index:(ri, escale) rb));
            Gpralloc.free_temp ctx.gprs ri)
    | Ast.Binop (Ast.Sub, Ast.Var b, off) when is_pointer ctx b -> (
        match Simplify.simplify_expr off with
        | Ast.Int_lit n ->
            let rb = Gpralloc.get ctx.gprs b in
            if String.equal b v then emit ctx (Insn.Addri (rb, -eb * n))
            else begin
              let rv = Gpralloc.def ctx.gprs v ~avoid:[ rb ] in
              emit ctx (Insn.Lea (rv, Insn.mem ~disp:(-eb * n) rb))
            end;
            ignore (Gpralloc.def ctx.gprs v)
        | off ->
            let ri = eval_int st off in
            emit ctx (Insn.Negr ri);
            let rb = Gpralloc.get ctx.gprs b ~avoid:[ ri ] in
            let rv = Gpralloc.def ctx.gprs v ~avoid:[ rb; ri ] in
            emit ctx (Insn.Lea (rv, Insn.mem ~index:(ri, escale) rb));
            Gpralloc.free_temp ctx.gprs ri)
    | _ -> err "unsupported pointer expression for %s" v
  end
  else
    match e with
    | Ast.Binop (Ast.Add, Ast.Var v', Ast.Int_lit n) when String.equal v v' ->
        let r = Gpralloc.get ctx.gprs v in
        let _ = Gpralloc.def ctx.gprs v in
        emit ctx (Insn.Addri (r, n))
    | Ast.Int_lit n ->
        let r = Gpralloc.def ctx.gprs v in
        emit ctx (Insn.Movri (r, n))
    | _ ->
        let rt = eval_int st e in
        let rv = Gpralloc.def ctx.gprs v ~avoid:[ rt ] in
        emit ctx (Insn.Movrr (rv, rt));
        Gpralloc.free_temp ctx.gprs rt

let emit_plain st (s : Ast.stmt) =
  let ctx = st.ctx in
  match s with
  | Ast.Decl (ty, v, init) -> (
      Hashtbl.replace ctx.types v ty;
      match init with
      | None -> ()
      | Some e -> (
          match ty with
          | Ast.Double | Ast.Float -> emit_double_assign_var st v e
          | Ast.Int | Ast.Ptr _ -> emit_int_assign st v e))
  | Ast.Assign (Ast.Lvar v, e) -> (
      match type_of_var ctx v with
      | Ast.Double | Ast.Float -> emit_double_assign_var st v e
      | Ast.Int | Ast.Ptr _ -> emit_int_assign st v e)
  | Ast.Assign (Ast.Lindex (a, idx), e) ->
      let value = eval_double st e in
      with_addr st a idx (fun m ->
          emit ctx (Insn.Vstore { w = Insn.W64; src = fst value; dst = m }));
      free_if_temp st value
  | Ast.Prefetch (hint, base, off) ->
      let kind =
        match hint with
        | Ast.Prefetch_read -> Insn.Pf_t0
        | Ast.Prefetch_write ->
            if String.equal ctx.arch.Arch.vendor "AMD" then Insn.Pf_w
            else Insn.Pf_t0
      in
      with_addr st base off (fun m -> emit ctx (Insn.Prefetch (kind, m)))
  | Ast.Comment c -> emit ctx (Insn.Comment c)
  | Ast.For _ | Ast.If _ | Ast.Tagged _ ->
      err "control statement reached the plain emitter"
