(* The template optimizers (paper sections 3.1-3.6): SIMD vectorization
   of the identified regions by the Vdup / Shuf / elementwise
   strategies, per-array register queues, FMA3/FMA4 or Mul+Add
   instruction selection.  Each [emit_*] returns whether it applied;
   when none does, the region falls back to the scalar path
   ([emit_region_scalar]), statement by statement through [Translate].

   Internal plumbing of this library, deliberately not sealed with an
   .mli. *)

module SS = Set.Make (String)

open Augem_ir
open Augem_machine
open Augem_templates
module T = Template

open Ctx
open Translate

(* Scalar fall-back: translate the template's statements one by one,
   releasing each unit template's dead temporaries before the next so a
   long unrolled group does not exhaust the register file. *)
let emit_region_scalar st (r : T.region) (live_out : SS.t) =
  let release () =
    Regfile.release_dead st.ctx.vecs ~live:(fun v -> SS.mem v live_out)
  in
  let unit_stmts =
    match r with
    | T.Mm_unrolled_comp l -> List.map T.mm_comp_stmts l
    | T.Mm_unrolled_store l -> List.map T.mm_store_stmts l
    | T.Mv_unrolled_comp l -> List.map T.mv_comp_stmts l
    | T.Sv_unrolled_scal l -> List.map T.sv_scal_stmts l
    | T.Sv_unrolled_copy l -> List.map T.sv_copy_stmts l
  in
  List.iter
    (fun stmts ->
      List.iter (emit_plain st) stmts;
      release ())
    unit_stmts

(* The mmUnrolledCOMP optimizer (3.1, 3.4). *)
let emit_mm_comp st (gp : Plan.group_plan) (group : T.mm_comp list) : bool =
  let ctx = st.ctx in
  match acc_arrays st gp with
  | None -> false (* accumulators were never zero-initialized *)
  | Some (acc_regs, _) -> (
      let first = List.hd group in
      let a_ptr = first.T.mc_a in
      let a_cls = Augem_analysis.Arrays.base_array_of a_ptr in
      let d0 =
        match T.disp_of first.T.mc_idx1 with Some d -> d | None -> 0
      in
      (* rotating scratch pool: distinct registers for the Mul results
         of consecutive template instances avoid false dependences
         (the reason for the per-array queues in the first place) *)
      let pool = ref [] in
      let pos = ref 0 in
      let scratch () =
        if List.length !pool < 4 then (
          match Regfile.alloc_temp ctx.vecs ~cls:"tmp" with
          | t ->
              pool := !pool @ [ t ];
              t
          | exception Regfile.Out_of_registers _ when !pool <> [] ->
              pos := (!pos + 1) mod List.length !pool;
              List.nth !pool !pos)
        else begin
          pos := (!pos + 1) mod List.length !pool;
          List.nth !pool !pos
        end
      in
      let free_pool () =
        List.iter (Regfile.free_temp ctx.vecs) !pool;
        pool := []
      in
      match gp.Plan.gp_strategy with
      | Plan.S_scalar -> false
      | Plan.S_vdup { w; n1 = _; chunks; bs } ->
          note_width st w;
          let lanes = Insn.lanes_of ctx.et w in
          (* load the contiguous A vectors once; reuse across B's *)
          let va =
            Array.init chunks (fun c ->
                let r = Regfile.alloc_temp ctx.vecs ~cls:a_cls in
                with_addr st a_ptr (Ast.Int_lit (d0 + (c * lanes))) (fun m ->
                    emit ctx (Insn.Vload { w; dst = r; src = m }));
                r)
          in
          List.iteri
            (fun bi (b_ptr, b_disp) ->
              let b_cls = Augem_analysis.Arrays.base_array_of b_ptr in
              let vb = Regfile.alloc_temp ctx.vecs ~cls:b_cls in
              with_addr st b_ptr (Ast.Int_lit b_disp) (fun m ->
                  sel_broadcast_mem ctx w ~dst:vb m);
              for c = 0 to chunks - 1 do
                let acc = acc_regs.((bi * chunks) + c) in
                sel_fmadd ctx w ~acc ~a:va.(c) ~b:vb ~scratch
              done;
              Regfile.free_temp ctx.vecs vb)
            bs;
          Array.iter (Regfile.free_temp ctx.vecs) va;
          free_pool ();
          true
      | Plan.S_elem { w; chunks } ->
          note_width st w;
          let lanes = Insn.lanes_of ctx.et w in
          let b_ptr = first.T.mc_b in
          let b_cls = Augem_analysis.Arrays.base_array_of b_ptr in
          let d0b =
            match T.disp_of first.T.mc_idx2 with Some d -> d | None -> 0
          in
          for c = 0 to chunks - 1 do
            let va = Regfile.alloc_temp ctx.vecs ~cls:a_cls in
            with_addr st a_ptr (Ast.Int_lit (d0 + (c * lanes))) (fun m ->
                emit ctx (Insn.Vload { w; dst = va; src = m }));
            let vb = Regfile.alloc_temp ctx.vecs ~cls:b_cls in
            with_addr st b_ptr (Ast.Int_lit (d0b + (c * lanes))) (fun m ->
                emit ctx (Insn.Vload { w; dst = vb; src = m }));
            sel_fmadd ctx w ~acc:acc_regs.(c) ~a:va ~b:vb ~scratch;
            Regfile.free_temp ctx.vecs va;
            Regfile.free_temp ctx.vecs vb
          done;
          free_pool ();
          true
      | Plan.S_shuf { w; a_chunks; b_chunks } ->
          note_width st w;
          let lanes = Insn.lanes_of ctx.et w in
          let b_ptr = first.T.mc_b in
          let b_cls = Augem_analysis.Arrays.base_array_of b_ptr in
          let d0b =
            match T.disp_of first.T.mc_idx2 with Some d -> d | None -> 0
          in
          let va =
            Array.init a_chunks (fun c ->
                let r = Regfile.alloc_temp ctx.vecs ~cls:a_cls in
                with_addr st a_ptr (Ast.Int_lit (d0 + (c * lanes))) (fun m ->
                    emit ctx (Insn.Vload { w; dst = r; src = m }));
                r)
          in
          for bc = 0 to b_chunks - 1 do
            let vb = Regfile.alloc_temp ctx.vecs ~cls:b_cls in
            with_addr st b_ptr (Ast.Int_lit (d0b + (bc * lanes))) (fun m ->
                emit ctx (Insn.Vload { w; dst = vb; src = m }));
            let current = ref vb in
            for k = 0 to lanes - 1 do
              if k > 0 then begin
                (* rotate the B vector by one lane: for W128 this is a
                   single swap (shufpd $1) *)
                let rot = Regfile.alloc_temp ctx.vecs ~cls:b_cls in
                emit ctx
                  (Insn.Vshuf { w; dst = rot; src1 = !current; src2 = !current;
                                imm = 1 });
                if !current <> vb then Regfile.free_temp ctx.vecs !current;
                current := rot
              end;
              for ac = 0 to a_chunks - 1 do
                let acc = acc_regs.((((ac * b_chunks) + bc) * lanes) + k) in
                sel_fmadd ctx w ~acc ~a:va.(ac) ~b:!current ~scratch
              done
            done;
            if !current <> vb then Regfile.free_temp ctx.vecs !current;
            Regfile.free_temp ctx.vecs vb
          done;
          Array.iter (Regfile.free_temp ctx.vecs) va;
          free_pool ();
          true)

(* The mmUnrolledSTORE optimizer (3.2, 3.5). *)
let emit_mm_store st (group : T.mm_store list) (live_out : SS.t) : bool =
  let ctx = st.ctx in
  (* all res scalars must be dead after the region and resident in
     vector lanes forming gatherable chunks *)
  if List.exists (fun m -> SS.mem m.T.ms_res live_out) group then false
  else
    let residences =
      List.map
        (fun m ->
          match Regfile.residence ctx.vecs m.T.ms_res with
          | Some (Regfile.Lane (r, l)) -> Some (m, r, l)
          | Some (Regfile.Splat _) | None -> None)
        group
    in
    if List.exists Option.is_none residences then false
    else
      let residences = List.map Option.get residences in
      let n = List.length residences in
      let w_lanes =
        (* width of the accumulators: infer from the plan of the first res *)
        match Plan.find_plan st.plan (List.hd group).T.ms_res with
        | Some gp -> Insn.lanes_of ctx.et gp.Plan.gp_width
        | None -> 1
      in
      if w_lanes < 2 || n mod w_lanes <> 0 then false
      else begin
        let w = Plan.Insn_width.of_lanes ~et:ctx.et w_lanes in
        note_width st w;
        let c_ptr = (List.hd group).T.ms_c in
        let c_cls = Augem_analysis.Arrays.base_array_of c_ptr in
        let d0 =
          match T.disp_of (List.hd group).T.ms_idx with Some d -> d | None -> 0
        in
        let chunk_ok = ref true in
        let chunks = n / w_lanes in
        (* validate gatherability first *)
        let gathered = Array.make chunks None in
        for c = 0 to chunks - 1 do
          let sources =
            List.filteri (fun i _ -> i / w_lanes = c) residences
            |> List.map (fun (_, r, l) -> (r, l))
          in
          let identity =
            List.mapi (fun i (r, l) -> (i, r, l)) sources
            |> List.for_all (fun (i, r, l) ->
                   l = i && r = (match sources with (r0, _) :: _ -> r0 | [] -> r))
          in
          if identity then gathered.(c) <- Some (`Direct (fst (List.hd sources)))
          else if w_lanes = 2 then
            match sources with
            | [ (r0, l0); (r1, l1) ] ->
                gathered.(c) <- Some (`Shuf (r0, l0, r1, l1))
            | _ -> chunk_ok := false
          else chunk_ok := false
        done;
        if not !chunk_ok then false
        else begin
          for c = 0 to chunks - 1 do
            let src, src_temp =
              match gathered.(c) with
              | Some (`Direct r) -> (r, false)
              | Some (`Shuf (r0, l0, r1, l1)) ->
                  let t = Regfile.alloc_temp ctx.vecs ~cls:"tmp" in
                  if avx ctx then
                    emit ctx
                      (Insn.Vshuf { w; dst = t; src1 = r0; src2 = r1;
                                    imm = l0 lor (l1 lsl 1) })
                  else begin
                    emit ctx
                      (Insn.Vop { op = Insn.Fmov; w; dst = t; src1 = r0;
                                  src2 = r0 });
                    emit ctx
                      (Insn.Vshuf { w; dst = t; src1 = t; src2 = r1;
                                    imm = l0 lor (l1 lsl 1) })
                  end;
                  (t, true)
              | None ->
                  (* every chunk was filled by the gather loop above or
                     [chunk_ok] cleared; a hole here means the lane
                     bookkeeping broke — classify, don't abort *)
                  raise
                    (Codegen_error
                       (Printf.sprintf
                          "vectorize: gathered chunk %d of %d has no source"
                          c chunks))
            in
            let vc = Regfile.alloc_temp ctx.vecs ~cls:c_cls in
            with_addr st c_ptr (Ast.Int_lit (d0 + (c * w_lanes))) (fun m ->
                emit ctx (Insn.Vload { w; dst = vc; src = m }));
            sel_vop ctx Insn.Fadd w ~dst:vc ~src1:vc ~src2:src;
            with_addr st c_ptr (Ast.Int_lit (d0 + (c * w_lanes))) (fun m ->
                emit ctx (Insn.Vstore { w; src = vc; dst = m }));
            Regfile.free_temp ctx.vecs vc;
            if src_temp then Regfile.free_temp ctx.vecs src
          done;
          true
        end
      end

(* The mvUnrolledCOMP optimizer (3.3, 3.6). *)
let emit_mv_comp st (group : T.mv_comp list) : bool =
  let ctx = st.ctx in
  let first = List.hd group in
  let n = List.length group in
  let disps_ok =
    List.for_all
      (fun m ->
        Option.is_some (T.disp_of m.T.mv_idx1)
        && Option.is_some (T.disp_of m.T.mv_idx2))
      group
  in
  let lanes = Insn.lanes_of ctx.et (full_width ctx) in
  if (not disps_ok) || n < lanes then false
  else begin
    let w = full_width ctx in
    note_width st w;
    let chunks = n / lanes in
    let leftover = n mod lanes in
    let a_ptr = first.T.mv_a and b_ptr = first.T.mv_b in
    let a_cls = Augem_analysis.Arrays.base_array_of a_ptr in
    let b_cls = Augem_analysis.Arrays.base_array_of b_ptr in
    let d0a = Option.get (T.disp_of first.T.mv_idx1) in
    let d0b = Option.get (T.disp_of first.T.mv_idx2) in
    (* the scalar multiplier must already be replicated: broadcast
       happens at its defining load or, for parameters, at function
       entry — never here, since this code may sit inside a loop *)
    let scal = first.T.mv_scal in
    match Regfile.residence ctx.vecs scal with
    | Some (Regfile.Lane _) | None -> false
    | Some (Regfile.Splat scal_reg) ->
    for c = 0 to chunks - 1 do
      let va = Regfile.alloc_temp ctx.vecs ~cls:a_cls in
      with_addr st a_ptr (Ast.Int_lit (d0a + (c * lanes))) (fun m ->
          emit ctx (Insn.Vload { w; dst = va; src = m }));
      let vb = Regfile.alloc_temp ctx.vecs ~cls:b_cls in
      with_addr st b_ptr (Ast.Int_lit (d0b + (c * lanes))) (fun m ->
          emit ctx (Insn.Vload { w; dst = vb; src = m }));
      let tmp = ref (-1) in
      sel_fmadd ctx w ~acc:vb ~a:va ~b:scal_reg ~scratch:(fun () ->
          let t = Regfile.alloc_temp ctx.vecs ~cls:"tmp" in
          tmp := t;
          t);
      if !tmp >= 0 then Regfile.free_temp ctx.vecs !tmp;
      with_addr st b_ptr (Ast.Int_lit (d0b + (c * lanes))) (fun m ->
          emit ctx (Insn.Vstore { w; src = vb; dst = m }));
      Regfile.free_temp ctx.vecs va;
      Regfile.free_temp ctx.vecs vb
    done;
    (* leftover instances take the scalar path *)
    if leftover > 0 then begin
      let rest = List.filteri (fun i _ -> i >= chunks * lanes) group in
      List.iter (fun m -> List.iter (emit_plain st) (T.mv_comp_stmts m)) rest
    end;
    true
  end

(* The svUnrolledSCAL optimizer (extension template): fold n in-place
   scalings into Vld-Vmul-Vst over the replicated scalar. *)
let emit_sv_scal st (group : T.sv_scal list) : bool =
  let ctx = st.ctx in
  let first = List.hd group in
  let n = List.length group in
  let disps_ok =
    List.for_all (fun m -> Option.is_some (T.disp_of m.T.ss_idx)) group
  in
  let lanes = Insn.lanes_of ctx.et (full_width ctx) in
  if (not disps_ok) || n < lanes then false
  else
    match Regfile.residence ctx.vecs first.T.ss_scal with
    | Some (Regfile.Lane _) | None -> false
    | Some (Regfile.Splat scal_reg) ->
        let w = full_width ctx in
        note_width st w;
        let chunks = n / lanes and leftover = n mod lanes in
        let b_ptr = first.T.ss_b in
        let b_cls = Augem_analysis.Arrays.base_array_of b_ptr in
        let d0 = Option.get (T.disp_of first.T.ss_idx) in
        for c = 0 to chunks - 1 do
          let vb = Regfile.alloc_temp ctx.vecs ~cls:b_cls in
          with_addr st b_ptr (Ast.Int_lit (d0 + (c * lanes))) (fun m ->
              emit ctx (Insn.Vload { w; dst = vb; src = m }));
          sel_vop ctx Insn.Fmul w ~dst:vb ~src1:vb ~src2:scal_reg;
          with_addr st b_ptr (Ast.Int_lit (d0 + (c * lanes))) (fun m ->
              emit ctx (Insn.Vstore { w; src = vb; dst = m }));
          Regfile.free_temp ctx.vecs vb
        done;
        if leftover > 0 then begin
          let rest = List.filteri (fun i _ -> i >= chunks * lanes) group in
          List.iter
            (fun m -> List.iter (emit_plain st) (T.sv_scal_stmts m))
            rest
        end;
        true

(* The svUnrolledCOPY optimizer (extension template): block moves. *)
let emit_sv_copy st (group : T.sv_copy list) : bool =
  let ctx = st.ctx in
  let first = List.hd group in
  let n = List.length group in
  let disps_ok =
    List.for_all
      (fun m ->
        Option.is_some (T.disp_of m.T.sc_idx1)
        && Option.is_some (T.disp_of m.T.sc_idx2))
      group
  in
  let lanes = Insn.lanes_of ctx.et (full_width ctx) in
  if (not disps_ok) || n < lanes then false
  else begin
    let w = full_width ctx in
    note_width st w;
    let chunks = n / lanes and leftover = n mod lanes in
    let a_ptr = first.T.sc_a and b_ptr = first.T.sc_b in
    let a_cls = Augem_analysis.Arrays.base_array_of a_ptr in
    let d0a = Option.get (T.disp_of first.T.sc_idx1) in
    let d0b = Option.get (T.disp_of first.T.sc_idx2) in
    for c = 0 to chunks - 1 do
      let va = Regfile.alloc_temp ctx.vecs ~cls:a_cls in
      with_addr st a_ptr (Ast.Int_lit (d0a + (c * lanes))) (fun m ->
          emit ctx (Insn.Vload { w; dst = va; src = m }));
      with_addr st b_ptr (Ast.Int_lit (d0b + (c * lanes))) (fun m ->
          emit ctx (Insn.Vstore { w; src = va; dst = m }));
      Regfile.free_temp ctx.vecs va
    done;
    if leftover > 0 then begin
      let rest = List.filteri (fun i _ -> i >= chunks * lanes) group in
      List.iter (fun m -> List.iter (emit_plain st) (T.sv_copy_stmts m)) rest
    end;
    true
  end

let emit_region st (r : T.region) (live_out : SS.t) =
  let ctx = st.ctx in
  emit ctx (Insn.Comment (Printf.sprintf "<%s n=%d>" (T.region_name r)
                            (T.region_size r)));
  let vectorized =
    match r with
    | T.Mm_unrolled_comp group -> (
        match Plan.find_plan st.plan (List.hd group).T.mc_res with
        | Some gp
          when gp.Plan.gp_strategy <> Plan.S_scalar
               (* the plan must belong to THIS region: a different group
                  may share an accumulator variable (round-robin
                  expansion leftovers) but have a different shape *)
               && gp.Plan.gp_region = group ->
            emit_mm_comp st gp group
        | Some _ | None -> false)
    | T.Mm_unrolled_store group -> emit_mm_store st group live_out
    | T.Mv_unrolled_comp group -> emit_mv_comp st group
    | T.Sv_unrolled_scal group -> emit_sv_scal st group
    | T.Sv_unrolled_copy group -> emit_sv_copy st group
  in
  if not vectorized then emit_region_scalar st r live_out;
  (* release registers whose residents are dead after the region *)
  Regfile.release_dead ctx.vecs ~live:(fun v -> SS.mem v live_out)
