(* Vectorization planning for the template optimizers (paper sections
   3.4-3.6).  A pre-pass over the identified regions decides, for every
   mmUnrolledCOMP group, which vectorization strategy applies — the
   Vdup method, the Shuf method, the elementwise (dot-product) folding,
   or the scalar fall-back — and assigns each accumulator scalar to a
   (virtual accumulator, lane) slot.  The assignment is global: the
   corresponding mmUnrolledSTORE regions and any scalar code reading
   the accumulators consult the same map, which is what keeps register
   allocation consistent across regions (the paper's reg_table). *)

open Augem_templates.Template

(* Width alias re-exporting [Insn.vwidth]'s constructors. *)
module Insn_width = struct
  module Etype = Augem_machine.Etype

  type t = Augem_machine.Insn.vwidth =
    | W64
    | W128
    | W256

  (* Lane count -> width at an element type.  W64 is one scalar lane
     of either type; packed widths hold [width_bits / Etype.bits]
     lanes, so the valid vector lane counts are {2, 4} for f64 and
     {4, 8} for f32 (there is no 2-lane f32 vector). *)
  let of_lanes ?(et = Etype.F64) n =
    match (n, et) with
    | 1, _ -> W64
    | 2, Etype.F64 | 4, Etype.F32 -> W128
    | 4, Etype.F64 | 8, Etype.F32 -> W256
    | n, et ->
        invalid_arg
          (Printf.sprintf "Insn_width.of_lanes %d (%s)" n (Etype.name et))
end

type strategy =
  | S_vdup of { w : Insn_width.t; n1 : int; chunks : int; bs : (string * int) list }
      (* n1 consecutive A elements x |bs| B elements *)
  | S_shuf of { w : Insn_width.t; a_chunks : int; b_chunks : int }
      (* both arrays contiguous; shuffle-based outer product *)
  | S_elem of { w : Insn_width.t; chunks : int }
      (* elementwise products folded into lane accumulators *)
  | S_scalar

and acc_slot = {
  slot_acc : int; (* accumulator index within the region *)
  slot_lane : int;
}

type group_plan = {
  gp_strategy : strategy;
  gp_region : mm_comp list;
  gp_accs : int; (* number of vector accumulators *)
  gp_width : Insn_width.t;
  gp_slots : (string * acc_slot) list; (* res var -> slot *)
  gp_store_class : string; (* register class for the accumulators *)
}

(* Plans are keyed by the res variables they define. *)
type t = {
  by_res : (string, group_plan) Hashtbl.t;
  splats : (string, unit) Hashtbl.t; (* mv scal vars needing broadcast *)
}

let find_plan t res = Hashtbl.find_opt t.by_res res
let needs_splat t v = Hashtbl.mem t.splats v

(* --- group shape analysis --------------------------------------------- *)

type shape =
  | Outer of { n1 : int; bs : (string * int) list; b_contiguous : bool }
  | Elementwise of { n : int }
  | Irregular

(* Analyze an mmUnrolledCOMP group.  Instances share the A stream by
   construction (matcher rule). *)
let analyze (group : mm_comp list) : shape =
  let disps_of l = List.map disp_of l in
  let a_disps = disps_of (List.map (fun m -> m.mc_idx1) group) in
  let b_ops =
    List.map
      (fun m -> match disp_of m.mc_idx2 with
        | Some d -> Some (m.mc_b, d)
        | None -> None)
      group
  in
  if List.exists Option.is_none a_disps || List.exists Option.is_none b_ops
  then Irregular
  else
    let a_disps = List.map Option.get a_disps in
    let b_ops = List.map Option.get b_ops in
    let n = List.length group in
    let distinct_bs =
      List.fold_left
        (fun acc b -> if List.mem b acc then acc else acc @ [ b ])
        [] b_ops
    in
    let nb = List.length distinct_bs in
    let consecutive l =
      match l with
      | [] -> false
      | d0 :: _ ->
          List.for_all2 (fun d i -> d = d0 + i) l
            (List.init (List.length l) (fun i -> i))
    in
    if nb = n && consecutive a_disps then
      (* every instance has its own B element *)
      let b_disps = List.map snd b_ops in
      let same_bptr =
        match distinct_bs with
        | [] -> false
        | (p, _) :: rest -> List.for_all (fun (q, _) -> String.equal q p) rest
      in
      if consecutive b_disps && same_bptr then
        (* could be elementwise or shuf-outer; for a matched group the
           A indices pair positionally with B indices: elementwise *)
        Elementwise { n }
      else Irregular
    else begin
      (* outer product: instances grouped by B operand, each covering
         the same consecutive run of A displacements, in the same order *)
      let n1 = n / max nb 1 in
      if n1 * nb <> n then Irregular
      else
        let runs =
          List.map
            (fun b ->
              List.filter_map
                (fun (m, bop) -> if bop = b then disp_of m.mc_idx1 else None)
                (List.combine group b_ops))
            distinct_bs
        in
        let expected = List.init n1 (fun i -> i) in
        let base_run = match runs with r :: _ -> r | [] -> [] in
        let aligned =
          List.for_all
            (fun r ->
              List.length r = n1 && r = base_run
              &&
              match r with
              | d0 :: _ -> List.map (fun d -> d - d0) r = expected
              | [] -> false)
            runs
        in
        if aligned then
          let b_contiguous =
            let ds = List.map snd distinct_bs in
            let same_ptr =
              match distinct_bs with
              | (p, _) :: rest -> List.for_all (fun (q, _) -> String.equal q p) rest
              | [] -> false
            in
            same_ptr
            && (match ds with
               | d0 :: _ ->
                   List.mapi (fun i _ -> d0 + i) ds = ds
               | [] -> false)
          in
          Outer { n1; bs = distinct_bs; b_contiguous }
        else Irregular
    end

(* Largest usable chunk width: a lane count that is valid for the
   element type (f64: 4 or 2; f32: 8 or 4 — no 2-lane f32 vectors),
   divides [n], and does not exceed the machine's SIMD lanes. *)
let chunk_lanes ~et ~machine_lanes n =
  let candidates =
    match et with
    | Augem_machine.Etype.F64 -> [ 4; 2 ]
    | Augem_machine.Etype.F32 -> [ 8; 4 ]
  in
  let rec pick = function
    | [] -> 1
    | w :: rest -> if w <= machine_lanes && n mod w = 0 then w else pick rest
  in
  pick candidates

type prefer =
  | Prefer_auto
  | Prefer_vdup
  | Prefer_shuf

(* Decide the strategy and lane layout for one group. *)
let plan_group ~et ~machine_lanes ~(prefer : prefer) (group : mm_comp list) :
    group_plan =
  let width_of_lanes = Insn_width.of_lanes ~et in
  let chunk_lanes = chunk_lanes ~et in
  let res_of i = (List.nth group i).mc_res in
  let scalar () =
    {
      gp_strategy = S_scalar;
      gp_region = group;
      gp_accs = 0;
      gp_width = Insn_width.W64;
      gp_slots = [];
      gp_store_class = "tmp";
    }
  in
  match analyze group with
  | Irregular -> scalar ()
  | Elementwise { n } ->
      let w = chunk_lanes ~machine_lanes n in
      if w < 2 then scalar ()
      else
        let chunks = n / w in
        let slots =
          List.init n (fun i ->
              (res_of i, { slot_acc = i / w; slot_lane = i mod w }))
        in
        {
          gp_strategy = S_elem { w = width_of_lanes w; chunks };
          gp_region = group;
          gp_accs = chunks;
          gp_width = width_of_lanes w;
          gp_slots = slots;
          gp_store_class = "tmp";
        }
  | Outer { n1; bs; b_contiguous } ->
      let w = chunk_lanes ~machine_lanes n1 in
      if w < 2 then scalar ()
      else
        let chunks = n1 / w in
        let nb = List.length bs in
        let use_shuf =
          prefer = Prefer_shuf && b_contiguous && w = 2 && nb mod w = 0
        in
        if use_shuf then begin
          (* accumulator (ac, bc, k) holds, in lane i, the res of
             (a disp ac*w+i, b index bc*w + ((i+k) mod w)) *)
          let a_chunks = chunks and b_chunks = nb / w in
          let slots = ref [] in
          for ac = 0 to a_chunks - 1 do
            for bc = 0 to b_chunks - 1 do
              for k = 0 to w - 1 do
                let acc = (((ac * b_chunks) + bc) * w) + k in
                for i = 0 to w - 1 do
                  let a_pos = (ac * w) + i in
                  let b_pos = (bc * w) + ((i + k) mod w) in
                  (* instance index: group is ordered a-major within
                     each b?  Find the instance with this (a,b) pair. *)
                  let idx =
                    let found = ref (-1) in
                    List.iteri
                      (fun j m ->
                        let da = disp_of m.mc_idx1
                        and db = List.nth bs b_pos in
                        match da with
                        | Some da ->
                            let base_a =
                              match disp_of (List.hd group).mc_idx1 with
                              | Some d -> d
                              | None -> 0
                            in
                            if da - base_a = a_pos && (m.mc_b, Option.value ~default:0 (disp_of m.mc_idx2)) = db
                            then found := j
                        | None -> ())
                      group;
                    !found
                  in
                  if idx >= 0 then
                    slots :=
                      (res_of idx, { slot_acc = acc; slot_lane = i }) :: !slots
                done
              done
            done
          done;
          {
            gp_strategy = S_shuf { w = width_of_lanes w; a_chunks; b_chunks };
            gp_region = group;
            gp_accs = a_chunks * b_chunks * w;
            gp_width = width_of_lanes w;
            gp_slots = List.rev !slots;
            gp_store_class = "tmp";
          }
        end
        else begin
          (* Vdup: accumulator (b index, chunk) lane i holds res of
             (a disp chunk*w+i, that b) *)
          let slots = ref [] in
          List.iteri
            (fun bi b ->
              List.iter
                (fun m ->
                  let da =
                    match (disp_of m.mc_idx1, disp_of (List.hd group).mc_idx1) with
                    | Some d, Some d0 -> d - d0
                    | _ -> 0
                  in
                  let mb =
                    (m.mc_b, Option.value ~default:0 (disp_of m.mc_idx2))
                  in
                  if mb = b then
                    let acc = (bi * chunks) + (da / w) in
                    slots :=
                      (m.mc_res, { slot_acc = acc; slot_lane = da mod w })
                      :: !slots)
                group)
            bs;
          {
            gp_strategy = S_vdup { w = width_of_lanes w; n1; chunks; bs };
            gp_region = group;
            gp_accs = List.length bs * chunks;
            gp_width = width_of_lanes w;
            gp_slots = List.rev !slots;
            gp_store_class = "tmp";
          }
        end

(* --- whole-kernel planning --------------------------------------------- *)

open Augem_templates.Matcher

let rec regions_of_astmts acc = function
  | [] -> List.rev acc
  | A_region (r, _) :: rest -> regions_of_astmts (r :: acc) rest
  | A_for (_, body) :: rest ->
      regions_of_astmts (List.rev_append (regions_of_astmts [] body) acc) rest
  | A_if (_, _, _, a, b) :: rest ->
      let acc = List.rev_append (regions_of_astmts [] a) acc in
      regions_of_astmts (List.rev_append (regions_of_astmts [] b) acc) rest
  | A_plain _ :: rest -> regions_of_astmts acc rest

(* Build the plan for a whole annotated kernel.  [store_class_of] maps
   a res variable to the base array its mmSTORE writes, so accumulators
   draw registers from that array's queue (paper 3.1: "res0 is later
   saved as an element of Array C, so it is allocated with a register
   assigned to C"). *)
let build ~et ~machine_lanes ~prefer (ak : akernel) : t =
  let t = { by_res = Hashtbl.create 16; splats = Hashtbl.create 8 } in
  let regions = regions_of_astmts [] ak.ak_body in
  (* an accumulator written by more than one comp region cannot be
     vector-allocated (its lanes would be owned by two differently
     shaped groups — e.g. the round-robin leftovers of an expansion
     whose ways does not divide the unroll factor): taint it, and let
     every region touching it take the scalar path *)
  let res_regions = Hashtbl.create 16 in
  List.iter
    (function
      | Mm_unrolled_comp group ->
          List.iter
            (fun m ->
              Hashtbl.replace res_regions m.mc_res
                (1 + Option.value ~default:0
                       (Hashtbl.find_opt res_regions m.mc_res)))
            group
      | Mm_unrolled_store _ | Mv_unrolled_comp _ | Sv_unrolled_scal _
      | Sv_unrolled_copy _ ->
          ())
    regions;
  let tainted v =
    Option.value ~default:0 (Hashtbl.find_opt res_regions v) > 1
  in
  (* store class: res -> C array *)
  let store_class = Hashtbl.create 16 in
  List.iter
    (function
      | Mm_unrolled_store l ->
          List.iter
            (fun s ->
              Hashtbl.replace store_class s.ms_res
                (Augem_analysis.Arrays.base_array_of s.ms_c))
            l
      | Mm_unrolled_comp _ | Mv_unrolled_comp _ | Sv_unrolled_scal _
      | Sv_unrolled_copy _ ->
          ())
    regions;
  List.iter
    (function
      | Mm_unrolled_comp group ->
          let plan = plan_group ~et ~machine_lanes ~prefer group in
          let cls =
            match group with
            | m :: _ -> (
                match Hashtbl.find_opt store_class m.mc_res with
                | Some c -> c
                | None -> "tmp")
            | [] -> "tmp"
          in
          let plan = { plan with gp_store_class = cls } in
          if
            plan.gp_strategy <> S_scalar
            && not (List.exists (fun (res, _) -> tainted res) plan.gp_slots)
          then
            List.iter
              (fun (res, _) -> Hashtbl.replace t.by_res res plan)
              plan.gp_slots
      | Mv_unrolled_comp group ->
          List.iter (fun m -> Hashtbl.replace t.splats m.mv_scal ()) group
      | Sv_unrolled_scal group ->
          List.iter (fun m -> Hashtbl.replace t.splats m.ss_scal ()) group
      | Mm_unrolled_store _ | Sv_unrolled_copy _ -> ())
    regions;
  t

(* --- introspection (staged-lowering artifact rendering) ---------------- *)

let strategy_name = function
  | S_vdup _ -> "vdup"
  | S_shuf _ -> "shuf"
  | S_elem _ -> "elem"
  | S_scalar -> "scalar"

let width_name = function
  | Insn_width.W64 -> "64"
  | Insn_width.W128 -> "128"
  | Insn_width.W256 -> "256"

(* The distinct groups of a plan, deduplicated (every res variable of a
   group maps to the same [group_plan]) and in a stable order, so
   renderings and fingerprints are deterministic. *)
let groups (t : t) : group_plan list =
  Hashtbl.fold (fun _ gp acc -> gp :: acc) t.by_res []
  |> List.sort_uniq compare

let splat_vars (t : t) : string list =
  Hashtbl.fold (fun v () acc -> v :: acc) t.splats []
  |> List.sort_uniq String.compare

let group_to_string (gp : group_plan) : string =
  let slots =
    gp.gp_slots
    |> List.map (fun (v, s) ->
           Printf.sprintf "%s->a%d.l%d" v s.slot_acc s.slot_lane)
    |> String.concat " "
  in
  Printf.sprintf "strategy=%s width=%s accs=%d class=%s slots=[%s]"
    (strategy_name gp.gp_strategy)
    (width_name gp.gp_width)
    gp.gp_accs gp.gp_store_class slots

let to_string (t : t) : string =
  let b = Buffer.create 128 in
  List.iteri
    (fun i gp ->
      Buffer.add_string b (Printf.sprintf "group %d: %s\n" i (group_to_string gp)))
    (groups t);
  (match splat_vars t with
  | [] -> ()
  | vs -> Buffer.add_string b ("splat: " ^ String.concat " " vs ^ "\n"));
  if Buffer.length b = 0 then "(no vectorizable groups)\n" else Buffer.contents b
