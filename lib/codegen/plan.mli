(** Vectorization planning for the template optimizers (paper sections
    3.4-3.6).

    A pre-pass over the identified regions decides, for every
    mmUnrolledCOMP group, which strategy applies — the Vdup method, the
    Shuf method, the elementwise (dot-product) folding, or the scalar
    fall-back — and assigns each accumulator scalar a (virtual
    accumulator, lane) slot.  The assignment is global: the mmSTORE
    regions and any scalar code reading the accumulators consult the
    same map (the paper's reg_table discipline).  An accumulator
    written by more than one comp region is tainted and every region
    touching it takes the scalar path. *)

(** Re-export of {!Augem_machine.Insn.vwidth}'s constructors. *)
module Insn_width : sig
  type t = Augem_machine.Insn.vwidth =
    | W64
    | W128
    | W256

  val of_lanes : ?et:Augem_machine.Etype.t -> int -> t
  (** Lane count -> width at an element type (default f64).  Valid
      vector lane counts are [{2, 4}] for f64 and [{4, 8}] for f32;
      [1] is the scalar width [W64] for either. *)
end

type strategy =
  | S_vdup of {
      w : Insn_width.t;
      n1 : int;  (** consecutive A elements per B element *)
      chunks : int;
      bs : (string * int) list;  (** the distinct B operands, in order *)
    }
  | S_shuf of { w : Insn_width.t; a_chunks : int; b_chunks : int }
  | S_elem of { w : Insn_width.t; chunks : int }
  | S_scalar

and acc_slot = {
  slot_acc : int;
  slot_lane : int;
}

type group_plan = {
  gp_strategy : strategy;
  gp_region : Augem_templates.Template.mm_comp list;
  gp_accs : int;  (** number of vector accumulators *)
  gp_width : Insn_width.t;
  gp_slots : (string * acc_slot) list;  (** res variable -> slot *)
  gp_store_class : string;
      (** register class for the accumulators: the array the res is
          later stored to (paper 3.1) *)
}

type t

val find_plan : t -> string -> group_plan option

(** Must this mv/sv scalar be kept replicated across lanes? *)
val needs_splat : t -> string -> bool

type prefer =
  | Prefer_auto
  | Prefer_vdup
  | Prefer_shuf

(** Strategy and lane layout for one group.  [machine_lanes] must be
    the SIMD lane count at the same element type [et]. *)
val plan_group :
  et:Augem_machine.Etype.t ->
  machine_lanes:int ->
  prefer:prefer ->
  Augem_templates.Template.mm_comp list ->
  group_plan

(** Plan a whole annotated kernel. *)
val build :
  et:Augem_machine.Etype.t ->
  machine_lanes:int ->
  prefer:prefer ->
  Augem_templates.Matcher.akernel ->
  t

(** {2 Introspection}

    Deterministic views of a plan for the staged-lowering driver's
    artifact rendering (pretty-printing, size counters, fingerprints). *)

val strategy_name : strategy -> string

(** The distinct groups, deduplicated and in a stable order. *)
val groups : t -> group_plan list

(** Variables the plan keeps replicated across lanes, sorted. *)
val splat_vars : t -> string list

val group_to_string : group_plan -> string

(** Multi-line rendering of the whole plan; deterministic. *)
val to_string : t -> string
