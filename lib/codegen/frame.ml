(* Function-frame emission: emitter-state creation (register
   allocators, callee-save home slots, System V AMD64 parameter
   binding, the entry splat pre-pass) and finalization (frame sizing,
   prologue/epilogue, the generation-time static-checker
   postcondition).  The body between the two is emitted by [Control];
   the staged-lowering driver calls the three steps as separate stages.

   Internal plumbing of this library, deliberately not sealed with an
   .mli. *)

module SS = Set.Make (String)

open Augem_ir
open Augem_machine
open Augem_templates
module M = Matcher

open Ctx

(* Fresh emitter state for one kernel: allocators, declared types,
   callee-save area reservation, incoming-parameter binding, and the
   splat pre-pass replicating double parameters the mv/sv templates
   consume. *)
let create_state ~(arch : Arch.t) ~(plan : Plan.t) (ak : M.akernel) :
    Translate.state =
  let out = ref [] in
  let gprs = Gpralloc.create ~emit:(fun i -> out := i :: !out) in
  (* reserve the callee-save area (6 regs) below %rbp *)
  let _ =
    List.map
      (fun r ->
        let s = Gpralloc.state gprs ("$save_" ^ Reg.gpr_name r) in
        Gpralloc.home_slot gprs s)
      Reg.callee_saved
  in
  let array_classes =
    List.filter_map
      (fun p ->
        match p.Ast.p_type with
        | Ast.Ptr _ -> Some (Augem_analysis.Arrays.base_array_of p.Ast.p_name)
        | _ -> None)
      ak.M.ak_params
    |> List.sort_uniq String.compare
  in
  let vecs = Regfile.create ~nregs:arch.Arch.vregs ~array_classes in
  let types = Hashtbl.create 32 in
  List.iter (fun p -> Hashtbl.replace types p.Ast.p_name p.Ast.p_type)
    ak.M.ak_params;
  Control.record_types types ak.M.ak_body;
  let et =
    match
      Ast.fp_type_of_params ak.M.ak_params ~p_type:(fun p -> p.Ast.p_type)
    with
    | Ast.Float -> Etype.F32
    | _ -> Etype.F64
  in
  let ctx =
    { Ctx.arch; et; out; vecs; gprs; types; label_count = 0;
      scratch_slot = None }
  in
  let st =
    {
      Translate.ctx;
      plan;
      accs = Hashtbl.create 8;
      assigned_vars = Control.assigned_vars_of SS.empty ak.M.ak_body;
      vec_width = Insn.W64;
      used_256 = false;
    }
  in
  ignore st.Translate.vec_width;
  (* parameter binding (System V AMD64) *)
  let int_regs = ref Reg.argument_gprs in
  let fp_regs = ref [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
  let stack_disp = ref 16 in
  List.iter
    (fun p ->
      match p.Ast.p_type with
      | Ast.Int | Ast.Ptr _ -> (
          match !int_regs with
          | r :: rest ->
              int_regs := rest;
              Gpralloc.bind_incoming ctx.gprs ~var:p.Ast.p_name ~reg:r
          | [] ->
              Gpralloc.bind_stack_param ctx.gprs ~var:p.Ast.p_name
                ~disp:!stack_disp;
              stack_disp := !stack_disp + 8)
      | Ast.Double | Ast.Float -> (
          match !fp_regs with
          | r :: rest ->
              fp_regs := rest;
              Regfile.bind_incoming ctx.vecs ~var:p.Ast.p_name ~reg:r;
              Regfile.set_class ctx.vecs ~var:p.Ast.p_name ~cls:"tmp"
          | [] -> err "more than 8 floating-point parameters"))
    ak.M.ak_params;
  (* double parameters consumed by mv templates need their value
     replicated across lanes once, before any loop *)
  List.iter
    (fun p ->
      if
        (p.Ast.p_type = Ast.Double || p.Ast.p_type = Ast.Float)
        && Plan.needs_splat plan p.Ast.p_name
      then
        match Regfile.residence ctx.vecs p.Ast.p_name with
        | Some (Regfile.Lane (r, 0)) ->
            let w = full_width ctx in
            if w = Insn.W256 then st.Translate.used_256 <- true;
            let t = Regfile.alloc_temp ctx.vecs ~cls:"tmp" in
            sel_splat ctx w ~dst:t ~src:r;
            Regfile.rebind ctx.vecs ~var:p.Ast.p_name
              ~res:(Regfile.Splat t);
            Regfile.free_temp ctx.vecs t
        | Some _ | None -> ())
    ak.M.ak_params;
  st

(* The instructions emitted so far, in program order. *)
let body (st : Translate.state) : Insn.t list = List.rev !(st.Translate.ctx.out)

(* Wrap an emitted body in prologue/epilogue: size and align the frame,
   save/restore exactly the callee-saved registers the body writes, and
   clean 256-bit upper state when it was dirtied. *)
let finish (st : Translate.state) (ak : M.akernel) ~(body : Insn.t list) :
    Insn.program =
  let ctx = st.Translate.ctx in
  let frame = Gpralloc.frame_bytes ctx.gprs in
  let frame = (frame + 15) / 16 * 16 in
  let used_callee_saved =
    let written = Hashtbl.create 8 in
    List.iter
      (fun i ->
        List.iter
          (function
            | Reg.Gp g -> Hashtbl.replace written g ()
            | Reg.Vr _ -> ())
          (Insn.writes i))
      body;
    List.filter (fun r -> Hashtbl.mem written r) Reg.callee_saved
    |> List.filter (fun r -> r <> Reg.Rbp)
  in
  let save_mem r =
    let s = Gpralloc.state ctx.gprs ("$save_" ^ Reg.gpr_name r) in
    Insn.mem ~disp:(Gpralloc.home_slot ctx.gprs s) Reg.Rbp
  in
  let prologue =
    [ Insn.Push Reg.Rbp; Insn.Movrr (Reg.Rbp, Reg.Rsp);
      Insn.Subri (Reg.Rsp, frame) ]
    @ List.map (fun r -> Insn.Storeq (save_mem r, r)) used_callee_saved
  in
  let epilogue =
    List.map (fun r -> Insn.Loadq (r, save_mem r)) used_callee_saved
    @ (if st.Translate.used_256 then [ Insn.Vzeroupper ] else [])
    @ [ Insn.Movrr (Reg.Rsp, Reg.Rbp); Insn.Pop Reg.Rbp; Insn.Ret ]
  in
  let program =
    { Insn.prog_name = ak.M.ak_name; prog_insns = prologue @ body @ epilogue }
  in
  (* generation-time postcondition (debug / verify builds): the static
     checker must find nothing wrong with what we just emitted *)
  if Augem_analysis.Asmcheck.postcondition_enabled () then
    Augem_analysis.Asmcheck.check_exn
      ~config:
        (Augem_analysis.Asmcheck.config_for ~avx:(avx ctx)
           ~params:ak.M.ak_params)
      program;
  program
