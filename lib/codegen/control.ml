(* Control-flow emission for the assembly generator: loops (with
   counter pinning, invariant hoisting and spill/invalidate discipline
   at every block boundary), conditionals, and the statement walk that
   dispatches plain statements to [Translate] and template regions to
   [Vectorize].  Also the pre-scans that seed the emitter state
   (declared types, ever-assigned scalars).

   Internal plumbing of this library, deliberately not sealed with an
   .mli. *)

module SS = Set.Make (String)

open Augem_ir
open Augem_machine
open Augem_templates
module T = Template
module M = Matcher

open Ctx
open Translate

let cond_of_cmp = function
  | Ast.Lt -> Insn.Clt
  | Ast.Le -> Insn.Cle
  | Ast.Gt -> Insn.Cgt
  | Ast.Ge -> Insn.Cge
  | Ast.Eq -> Insn.Ceq
  | Ast.Ne -> Insn.Cne

let negate = function
  | Insn.Clt -> Insn.Cge
  | Insn.Cle -> Insn.Cgt
  | Insn.Cgt -> Insn.Cle
  | Insn.Cge -> Insn.Clt
  | Insn.Ceq -> Insn.Cne
  | Insn.Cne -> Insn.Ceq

(* integer/pointer variables referenced directly at this nesting level
   (not inside nested loops), for pinning *)
let hot_vars_of_astmts ctx (stmts : M.astmt list) : string list =
  let of_stmt s =
    match s with
    | Ast.Assign (lv, e) ->
        (match lv with Ast.Lindex (a, _) -> [ a ] | Ast.Lvar v -> [ v ])
        @ Ast.expr_vars e
    | Ast.Prefetch (_, b, off) -> b :: Ast.expr_vars off
    | Ast.Decl (_, _, Some e) -> Ast.expr_vars e
    | _ -> []
  in
  List.concat_map
    (function
      | M.A_plain (s, _) -> of_stmt s
      | M.A_region (r, _) -> List.concat_map of_stmt (T.region_stmts r)
      | M.A_for _ -> []
      | M.A_if _ -> [])
    stmts
  |> List.filter (fun v ->
         match Hashtbl.find_opt ctx.types v with
         | Some (Ast.Int | Ast.Ptr _) -> true
         | _ -> false)
  |> List.sort_uniq String.compare

let rec emit_astmts st (stmts : M.astmt list) =
  List.iter (emit_astmt st) stmts

and emit_astmt st = function
  | M.A_plain (s, live_after) ->
      emit_plain st s;
      (* free vector registers of scalars that just died (e.g. the
         partial accumulators after a reduction's final sums).
         Plan-bound accumulators are exempt: their sibling lanes may
         not have been initialized yet — the release after their store
         region retires them. *)
      Regfile.release_dead st.ctx.vecs ~live:(fun v ->
          SS.mem v live_after || Plan.find_plan st.plan v <> None)
  | M.A_region (r, live_out) -> Vectorize.emit_region st r live_out
  | M.A_for (h, body) -> emit_for st h body
  | M.A_if (a, c, b, t, f) -> emit_if st a c b t f

(* Pre-materialize a pure compound integer expression outside a loop so
   that in-body uses hit the memo table; returns its synthetic name.
   [strip] removes the constant term first — addressing folds constants
   into displacements, so prefetch offsets are looked up const-stripped,
   while loop bounds are looked up whole. *)
and prematerialize ?(strip = true) st (e : Ast.expr) : string option =
  match Poly.of_expr (Simplify.simplify_expr e) with
  | None -> None
  | Some p ->
      let rest =
        if strip then begin
          let c =
            match Poly.Mmap.find_opt [] p with Some c -> c | None -> 0
          in
          Poly.to_expr (Poly.sub p (Poly.const c))
        end
        else Simplify.simplify_expr e
      in
      if
        (match rest with Ast.Binop _ -> true | _ -> false)
        && pure_expr st rest
        && Ast.expr_size rest > 2
      then
        let name = "$" ^ Pp.expr_to_string rest in
        if Gpralloc.is_defined st.ctx.gprs name then None
          (* hoisted by an enclosing loop; that loop owns it *)
        else begin
          let r = memoized st rest in
          Gpralloc.free_temp st.ctx.gprs r;
          Some name
        end
      else None

and emit_for st (h : Ast.loop_header) (body : M.astmt list) =
  let ctx = st.ctx in
  (* counter initialization *)
  emit_int_assign st h.Ast.loop_var h.Ast.loop_init;
  (* hoist loop-invariant prefetch offsets and the loop bound *)
  let hoisted =
    List.filter_map
      (function
        | M.A_plain (Ast.Prefetch (_, _, off), _) -> prematerialize st off
        | _ -> None)
      body
    @ (match prematerialize ~strip:false st h.Ast.loop_bound with
      | Some v -> [ v ]
      | None -> [])
  in
  (* pin the loop counter and the hot scalars of this level: pointers
     before plain ints, keeping at least 4 registers unpinned for
     temporaries and spill traffic *)
  let candidates =
    (h.Ast.loop_var :: Ast.expr_vars h.Ast.loop_bound)
    @ hot_vars_of_astmts ctx body
  in
  let seen = Hashtbl.create 8 in
  let candidates =
    List.filter
      (fun v ->
        if Hashtbl.mem seen v then false
        else begin
          Hashtbl.replace seen v ();
          match Hashtbl.find_opt ctx.types v with
          | Some (Ast.Int | Ast.Ptr _) -> true
          | Some (Ast.Double | Ast.Float) | None -> false
        end)
      candidates
  in
  let pointers, ints = List.partition (fun v -> is_pointer ctx v) candidates in
  let ordered =
    (h.Ast.loop_var :: pointers)
    @ List.sort_uniq String.compare hoisted
    @ List.filter (fun v -> not (String.equal v h.Ast.loop_var)) ints
  in
  let previously_pinned = SS.of_list (Gpralloc.pinned_vars ctx.gprs) in
  (* the innermost loop is the hot one: it gets all remaining pinnable
     registers, while outer loops only pin their counter and bound *)
  let is_innermost =
    not (List.exists (function M.A_for _ -> true | _ -> false) body)
  in
  let remaining = 14 - 4 - SS.cardinal previously_pinned in
  let budget = ref (if is_innermost then remaining else min 1 remaining) in
  let pinned =
    List.filter
      (fun v ->
        if
          !budget > 0
          && (not (SS.mem v previously_pinned))
          && Gpralloc.is_defined ctx.gprs v
        then
          match Gpralloc.get ctx.gprs v with
          | _ ->
              Gpralloc.pin ctx.gprs v;
              decr budget;
              true
          | exception Gpralloc.Gpr_error _ -> false
        else false)
      ordered
  in
  let body_label = fresh_label ctx "body" in
  let end_label = fresh_label ctx "end" in
  (* head test: skip the loop when the trip count is zero *)
  let test target cond =
    (match Simplify.simplify_expr h.Ast.loop_bound with
    | Ast.Int_lit n ->
        let rc = Gpralloc.get ctx.gprs h.Ast.loop_var in
        emit ctx (Insn.Cmpri (rc, n))
    | Ast.Var v when Gpralloc.is_defined ctx.gprs v ->
        let rb = Gpralloc.get ctx.gprs v in
        let rc = Gpralloc.get ctx.gprs h.Ast.loop_var ~avoid:[ rb ] in
        emit ctx (Insn.Cmprr (rc, rb))
    | e -> (
        (* memoized invariant bound *)
        let name = "$" ^ Pp.expr_to_string (Simplify.simplify_expr e) in
        if Gpralloc.is_defined ctx.gprs name then begin
          let rb = Gpralloc.get ctx.gprs name in
          let rc = Gpralloc.get ctx.gprs h.Ast.loop_var ~avoid:[ rb ] in
          emit ctx (Insn.Cmprr (rc, rb))
        end
        else begin
          let rb = eval_int st e in
          let rc = Gpralloc.get ctx.gprs h.Ast.loop_var ~avoid:[ rb ] in
          emit ctx (Insn.Cmprr (rc, rb));
          Gpralloc.free_temp ctx.gprs rb
        end));
    emit ctx (Insn.Jcc (cond, target))
  in
  Gpralloc.spill_all ctx.gprs;
  test end_label (negate (cond_of_cmp h.Ast.loop_cmp));
  Gpralloc.spill_all ctx.gprs;
  Gpralloc.invalidate_all ctx.gprs;
  emit ctx (Insn.Label body_label);
  emit_astmts st body;
  (* counter increment *)
  emit_int_assign st h.Ast.loop_var
    (Ast.Binop (Ast.Add, Ast.Var h.Ast.loop_var, h.Ast.loop_step));
  Gpralloc.spill_all ctx.gprs;
  test body_label (cond_of_cmp h.Ast.loop_cmp);
  emit ctx (Insn.Label end_label);
  Gpralloc.spill_all ctx.gprs;
  Gpralloc.invalidate_all ctx.gprs;
  List.iter (Gpralloc.unpin ctx.gprs) pinned;
  (* memoized invariants go out of scope with the loop that hoisted
     them: their definition would not dominate later uses *)
  List.iter (Gpralloc.forget ctx.gprs) hoisted

and emit_if st a c b tb fb =
  let ctx = st.ctx in
  let else_label = fresh_label ctx "else" in
  let end_label = fresh_label ctx "endif" in
  let ra = eval_int st a in
  let rb = eval_int st b in
  emit ctx (Insn.Cmprr (ra, rb));
  Gpralloc.free_temp ctx.gprs ra;
  Gpralloc.free_temp ctx.gprs rb;
  Gpralloc.spill_all ctx.gprs;
  Gpralloc.invalidate_all ctx.gprs;
  emit ctx (Insn.Jcc (negate (cond_of_cmp c), else_label));
  emit_astmts st tb;
  Gpralloc.spill_all ctx.gprs;
  Gpralloc.invalidate_all ctx.gprs;
  emit ctx (Insn.Jmp end_label);
  emit ctx (Insn.Label else_label);
  emit_astmts st fb;
  Gpralloc.spill_all ctx.gprs;
  Gpralloc.invalidate_all ctx.gprs;
  emit ctx (Insn.Label end_label)

(* ---------------------------------------------------------------------- *)
(* pre-scans                                                               *)
(* ---------------------------------------------------------------------- *)

(* Scan declarations so variable types are known before emission. *)
let rec record_types types = function
  | [] -> ()
  | M.A_plain (Ast.Decl (ty, v, _), _) :: rest ->
      Hashtbl.replace types v ty;
      record_types types rest
  | M.A_for (_, body) :: rest ->
      record_types types body;
      record_types types rest
  | M.A_if (_, _, _, t, f) :: rest ->
      record_types types t;
      record_types types f;
      record_types types rest
  | (M.A_plain _ | M.A_region _) :: rest -> record_types types rest

let rec assigned_vars_of acc = function
  | [] -> acc
  | M.A_plain (Ast.Assign (Ast.Lvar v, _), _) :: rest ->
      assigned_vars_of (SS.add v acc) rest
  | M.A_plain (Ast.Decl (_, v, Some _), _) :: rest ->
      assigned_vars_of (SS.add v acc) rest
  | M.A_for (h, body) :: rest ->
      assigned_vars_of (assigned_vars_of (SS.add h.Ast.loop_var acc) body) rest
  | M.A_if (_, _, _, t, f) :: rest ->
      assigned_vars_of (assigned_vars_of (assigned_vars_of acc t) f) rest
  | M.A_region (r, _) :: rest ->
      let acc =
        List.fold_left
          (fun acc s ->
            match s with
            | Ast.Assign (Ast.Lvar v, _) -> SS.add v acc
            | _ -> acc)
          acc (T.region_stmts r)
      in
      assigned_vars_of acc rest
  | M.A_plain _ :: rest -> assigned_vars_of acc rest
