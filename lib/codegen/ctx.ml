(* Shared emitter context: output buffer, both register allocators,
   variable types, and the instruction-selection helpers that implement
   the mapping rules of paper Tables 1-4 (SSE two-operand fix-ups,
   FMA3/FMA4 selection).

   Internal plumbing of this library (the emitter and its helpers
   co-evolve), deliberately not sealed with an .mli. *)

open Augem_ir
open Augem_machine

exception Codegen_error of string

let err fmt = Fmt.kstr (fun s -> raise (Codegen_error s)) fmt

type t = {
  arch : Arch.t;
  et : Etype.t; (* element type of the kernel being emitted *)
  out : Insn.t list ref; (* reversed; shared with the GPR allocator *)
  mutable vecs : Regfile.t;
  gprs : Gpralloc.t;
  types : (string, Ast.dtype) Hashtbl.t;
  mutable label_count : int;
  mutable scratch_slot : int option; (* stack slot for reg->mem bounces *)
}

let emit t i = t.out := i :: !(t.out)

let fresh_label t prefix =
  t.label_count <- t.label_count + 1;
  Printf.sprintf ".L%s%d" prefix t.label_count

let type_of_var t v =
  match Hashtbl.find_opt t.types v with
  | Some ty -> ty
  | None -> err "unknown variable %s" v

let is_pointer t v =
  match Hashtbl.find_opt t.types v with Some (Ast.Ptr _) -> true | _ -> false

(* The SIMD width the machine natively supports in its widest mode. *)
let full_width (t : t) : Insn.vwidth =
  match t.arch.Arch.simd with Arch.AVX -> Insn.W256 | Arch.SSE -> Insn.W128

let avx t = t.arch.Arch.simd = Arch.AVX

(* Lane count of a width at this kernel's element type. *)
let lanes t (w : Insn.vwidth) = Insn.lanes_of t.et w

(* Element size in bytes, and the matching index scale, for address
   arithmetic (8-byte doubles, 4-byte floats). *)
let elem_bytes t = Etype.bytes t.et
let elem_scale t = match t.et with Etype.F64 -> Insn.S8 | Etype.F32 -> Insn.S4

let width_for_lanes n : Insn.vwidth option =
  match n with 1 -> Some Insn.W64 | 2 -> Some Insn.W128 | 4 -> Some Insn.W256 | _ -> None

(* --- instruction-selection helpers ------------------------------------ *)

(* dst <- src1 op src2 on vectors, legal in both encoding modes: in SSE
   mode a register move is inserted when dst <> src1 (Table 1 line 2). *)
let sel_vop t op w ~dst ~src1 ~src2 =
  if avx t || dst = src1 then emit t (Insn.Vop { op; w; dst; src1; src2 })
  else if dst = src2 && (op = Insn.Fadd || op = Insn.Fmul) then
    (* commutative: flip operands instead of moving *)
    emit t (Insn.Vop { op; w; dst; src1 = src2; src2 = src1 })
  else begin
    emit t (Insn.Vop { op = Insn.Fmov; w; dst; src1; src2 = src1 });
    emit t (Insn.Vop { op; w; dst; src1 = dst; src2 })
  end

(* acc <- acc + a * b: one FMA3/FMA4 instruction when the ISA has it,
   otherwise Mul+Add through a scratch register (Tables 1 and 3). *)
let sel_fmadd t w ~acc ~a ~b ~scratch =
  match t.arch.Arch.fma with
  | Arch.FMA3 -> emit t (Insn.Vop { op = Insn.Fma231; w; dst = acc; src1 = a; src2 = b })
  | Arch.FMA4 -> emit t (Insn.Vfma4 { w; dst = acc; a; b; c = acc })
  | Arch.No_fma ->
      let s = scratch () in
      sel_vop t Insn.Fmul w ~dst:s ~src1:a ~src2:b;
      sel_vop t Insn.Fadd w ~dst:acc ~src1:acc ~src2:s

(* zero a vector register *)
let sel_zero t w ~dst =
  emit t (Insn.Vop { op = Insn.Fxor; w; dst; src1 = dst; src2 = dst })

(* --- lane extraction --------------------------------------------------- *)

(* Copy lane [lane] of [src] into lane 0 of [dst] (dst may equal src
   only when the operation is a pure in-place shuffle).  Lane indices
   are in the kernel's element type: 0-3 for f64, 0-7 for f32. *)
let sel_extract_lane t ~dst ~src ~lane =
  match t.et with
  | Etype.F64 -> (
      match lane with
      | 0 ->
          if dst <> src then
            emit t (Insn.Vop { op = Insn.Fmov; w = Insn.W128; dst; src1 = src; src2 = src })
      | 1 ->
          (* unpckhpd dst, src, src: dst = (src[1], src[1]) *)
          if avx t then
            emit t (Insn.Vop { op = Insn.Funpckh; w = Insn.W128; dst; src1 = src; src2 = src })
          else begin
            emit t (Insn.Vop { op = Insn.Fmov; w = Insn.W128; dst; src1 = src; src2 = src });
            emit t (Insn.Vop { op = Insn.Funpckh; w = Insn.W128; dst; src1 = dst; src2 = dst })
          end
      | 2 | 3 ->
          emit t (Insn.Vextract128 { dst; src; lane = 1 });
          if lane = 3 then
            emit t (Insn.Vop { op = Insn.Funpckh; w = Insn.W128; dst; src1 = dst; src2 = dst })
      | _ -> err "lane %d out of range" lane)
  | Etype.F32 ->
      if lane < 0 || lane > 7 then err "lane %d out of range" lane;
      (* fetch the upper 128-bit half first when needed, then rotate
         the wanted element into position 0 with a shufps *)
      let sub = lane land 3 in
      let base =
        if lane >= 4 then begin
          emit t (Insn.Vextract128 { dst; src; lane = 1 });
          dst
        end
        else src
      in
      if sub = 0 then begin
        if base <> dst then
          emit t (Insn.Vop { op = Insn.Fmov; w = Insn.W128; dst; src1 = base; src2 = base })
      end
      else begin
        let imm = sub lor (sub lsl 2) lor (sub lsl 4) lor (sub lsl 6) in
        if avx t then
          emit t (Insn.Vshuf { w = Insn.W128; dst; src1 = base; src2 = base; imm })
        else begin
          if base <> dst then
            emit t (Insn.Vop { op = Insn.Fmov; w = Insn.W128; dst; src1 = base; src2 = base });
          emit t (Insn.Vshuf { w = Insn.W128; dst; src1 = dst; src2 = dst; imm })
        end
      end

(* --- scratch stack slot ------------------------------------------------ *)

let scratch_mem t : Insn.mem =
  match t.scratch_slot with
  | Some off -> Insn.mem ~disp:off Reg.Rbp
  | None ->
      (* carve 32 bytes below the gpr home area; finalized in prologue *)
      let s = Gpralloc.state t.gprs "$scratch" in
      let off = Gpralloc.home_slot t.gprs s in
      (* widen to 32 bytes for a full ymm bounce *)
      let s2 = Gpralloc.state t.gprs "$scratch2" in
      let _ = Gpralloc.home_slot t.gprs s2 in
      let s3 = Gpralloc.state t.gprs "$scratch3" in
      let _ = Gpralloc.home_slot t.gprs s3 in
      let s4 = Gpralloc.state t.gprs "$scratch4" in
      let _ = Gpralloc.home_slot t.gprs s4 in
      let off = off - 24 in
      t.scratch_slot <- Some off;
      Insn.mem ~disp:off Reg.Rbp

(* Broadcast the scalar in lane 0 of [src] to all lanes of [dst] at
   width [w].  AVX1 has no register-to-register broadcast, so W256 goes
   through the scratch slot.  In-register replication is unpcklpd for
   doubles and shufps $0 for floats. *)
let sel_splat t w ~dst ~src =
  let replicate128 ~dst ~src =
    match t.et with
    | Etype.F64 ->
        emit t (Insn.Vop { op = Insn.Funpckl; w = Insn.W128; dst; src1 = src; src2 = src })
    | Etype.F32 ->
        emit t (Insn.Vshuf { w = Insn.W128; dst; src1 = src; src2 = src; imm = 0 })
  in
  match w with
  | Insn.W64 ->
      if dst <> src then
        emit t (Insn.Vop { op = Insn.Fmov; w = Insn.W128; dst; src1 = src; src2 = src })
  | Insn.W128 ->
      if avx t then replicate128 ~dst ~src
      else begin
        if dst <> src then
          emit t (Insn.Vop { op = Insn.Fmov; w = Insn.W128; dst; src1 = src; src2 = src });
        replicate128 ~dst ~src:dst
      end
  | Insn.W256 ->
      let m = scratch_mem t in
      emit t (Insn.Vstore { w = Insn.W64; src; dst = m });
      emit t (Insn.Vbroadcast { w = Insn.W256; dst; src = m })

(* Broadcast a memory scalar to all lanes of [dst].  One instruction
   everywhere except f32 under SSE, which has no single-instruction
   broadcast (movss + shufps $0). *)
let sel_broadcast_mem t w ~dst (m : Insn.mem) =
  match (t.et, w, avx t) with
  | Etype.F32, (Insn.W128 | Insn.W256), false ->
      emit t (Insn.Vload { w = Insn.W64; dst; src = m });
      emit t (Insn.Vshuf { w = Insn.W128; dst; src1 = dst; src2 = dst; imm = 0 })
  | _ -> emit t (Insn.Vbroadcast { w; dst; src = m })
